# Convenience targets; everything is plain `go` underneath.

.PHONY: build test race bench-core cache-chaos soak-chaos storage-chaos hostile-chaos

build:
	go build ./...

test:
	go test ./...

race:
	go test -race ./...

# Runs the BenchmarkCore_* microbenchmarks and writes BENCH_core.json
# (see scripts/bench_core.sh; BENCHTIME=5x for more stable numbers).
bench-core:
	./scripts/bench_core.sh

# Damages the persistent plan cache in every way a deployment can
# (bit flips, truncation, junk floods, SIGKILL) against a live server.
cache-chaos:
	./scripts/cache_chaos.sh

# Overload soak: mixed seeded traffic (hits, warm starts, cold searches,
# deadlines, a poisoned workload) plus SIGKILL/restart against a live
# server, asserting the serving invariants end to end (RACE=1 for -race).
soak-chaos:
	./scripts/soak_chaos.sh

# Resource-exhaustion chaos: every storage fault class (ENOSPC, torn
# writes, fsync failures, fd exhaustion, rename failures) injected under
# a live server, SIGKILL under a full disk, and the search memory
# governor's graceful stop + idle bit-identity.
storage-chaos:
	./scripts/storage_chaos.sh

# Hostile-traffic chaos: a malformed/adversarial request corpus, a
# slow-loris client, and a single-tenant flood against a live server
# with tight limits — every attack must be a structured 4xx, the good
# client's SLO must hold, and every ledger must drain (RACE=1 for -race).
hostile-chaos:
	./scripts/hostile_chaos.sh
