#!/usr/bin/env bash
# Adversarial hostile-traffic chaos for magis-serve: run the server with
# tight, production-style limits and attack it with `magis-bench hostile`
# — a malformed/hostile request corpus, a slow-loris connection, and a
# single-tenant flood against a well-behaved client — then spot-check the
# boundary behaviors (413, unknown-field 400) directly with curl.
#
#   ./scripts/hostile_chaos.sh            # normal run
#   RACE=1 ./scripts/hostile_chaos.sh     # binaries built with -race
#   FLOOD=400 ./scripts/hostile_chaos.sh
#
# Phases:
#   1. hostile     magis-bench hostile asserts the invariants end to end:
#                  every corpus attack is a structured 4xx (never 5xx,
#                  never admitted); the slow-loris client is evicted by
#                  the socket deadlines; during the flood the good
#                  client's success rate and p95 hold while the bully is
#                  throttled; afterwards a well-formed graph submission
#                  completes full-fidelity and every ledger drains
#   2. curl edge   direct boundary checks: -max-body enforces 413 with a
#                  machine-readable reason, a typo'd field is named in
#                  the 400, and per-client counters appear in /metrics
set -euo pipefail
cd "$(dirname "$0")/.."

command -v jq >/dev/null || { echo "SKIP: jq not installed" >&2; exit 0; }

PORT="${PORT:-$((22000 + RANDOM % 2000))}"
BASE="http://127.0.0.1:$PORT"
FLOOD="${FLOOD:-200}"
GOOD="${GOOD:-8}"
dir="$(mktemp -d)"
SRV=""
cleanup() {
    [ -n "$SRV" ] && kill -9 "$SRV" 2>/dev/null || true
    rm -rf "$dir"
}
trap cleanup EXIT

BUILDFLAGS=()
[ "${RACE:-0}" = "1" ] && BUILDFLAGS+=(-race)
go build "${BUILDFLAGS[@]}" -o "$dir/magis-serve" ./cmd/magis-serve
go build "${BUILDFLAGS[@]}" -o "$dir/magis-bench" ./cmd/magis-bench

# Tight limits: small bodies, per-client rate/share/queue fairness, and
# aggressive socket deadlines so the slow-loris phase bites quickly.
start_server() {
    "$dir/magis-serve" -addr "127.0.0.1:$PORT" -queue 16 -jobs 2 \
        -budget 5s -stall-window 30s \
        -max-body 1MiB \
        -read-header-timeout 2s -read-timeout 10s -write-timeout 30s -idle-timeout 30s \
        -client-rate 20 -client-burst 10 -client-share 0.5 -client-queue 8 \
        >> "$dir/serve.log" 2>&1 &
    SRV=$!
    for _ in $(seq 1 100); do
        curl -fsS "$BASE/healthz" >/dev/null 2>&1 && return 0
        sleep 0.1
    done
    echo "FAIL: server did not come up (log tail follows)" >&2
    tail -20 "$dir/serve.log" >&2
    exit 1
}

metric() { curl -fsS "$BASE/metrics" | jq "$1"; }

echo "== phase 1: adversarial harness (flood $FLOOD vs $GOOD good requests)"
start_server
"$dir/magis-bench" -hostile-url "$BASE" -hostile-flood "$FLOOD" \
    -hostile-good "$GOOD" hostile

echo "== phase 2: boundary spot checks with curl"
# 2a. A body past -max-body is a 413 with reason "too-large".
huge="$dir/huge.json"
{ printf '{"model":"mlp","budget":"'; head -c 2097152 /dev/zero | tr '\0' 'x'; printf '"}'; } > "$huge"
code="$(curl -s -o "$dir/resp413.json" -w '%{http_code}' -X POST --data-binary @"$huge" "$BASE/optimize")"
[ "$code" = "413" ] || { echo "FAIL: oversized body got $code, want 413" >&2; exit 1; }
jq -e '.reason == "too-large"' "$dir/resp413.json" >/dev/null \
    || { echo "FAIL: 413 without reason too-large: $(cat "$dir/resp413.json")" >&2; exit 1; }

# 2b. A typo'd field is a 400 that names the field.
code="$(curl -s -o "$dir/resp400.json" -w '%{http_code}' -X POST \
    -d '{"model":"mlp","bugdet":"5s"}' "$BASE/optimize")"
[ "$code" = "400" ] || { echo "FAIL: typo'd field got $code, want 400" >&2; exit 1; }
jq -e '.reason == "unknown-field" and (.error | contains("bugdet"))' "$dir/resp400.json" >/dev/null \
    || { echo "FAIL: 400 does not name the typo'd field: $(cat "$dir/resp400.json")" >&2; exit 1; }

# 2c. Per-client counters surfaced in /metrics, and the hostile phases
# left the rejection counters non-zero.
jq -e '.clients | has("bully") and has("good")' <(curl -fsS "$BASE/metrics") >/dev/null \
    || { echo "FAIL: per-client metrics missing: $(metric .clients)" >&2; exit 1; }
[ "$(metric .rejected_too_large)" -ge 1 ] \
    || { echo "FAIL: rejected_too_large not counted" >&2; exit 1; }
[ "$(metric .rejected_ingest)" -ge 1 ] \
    || { echo "FAIL: rejected_ingest not counted" >&2; exit 1; }
[ "$(metric .rejected_client_rate)" -ge 1 ] \
    || { echo "FAIL: rejected_client_rate not counted (flood never throttled?)" >&2; exit 1; }

kill -TERM "$SRV" 2>/dev/null || true
wait "$SRV" 2>/dev/null || true
SRV=""

echo "OK: hostile traffic held all invariants (corpus, slow-loris, flood fairness, boundaries)"
