#!/usr/bin/env bash
# Mutation smoke test for the numeric plan verifier: inject an off-by-one
# into one memory-plan offset (magis-bench -mutate verify) and require the
# arena checker to catch it — non-zero exit AND a structured trap or
# mismatch in the report. A verifier that waves a corrupted plan through
# is strictly worse than no verifier, so this script is the verifier's own
# regression test.
#
#   ./scripts/verify_mutation.sh            # all 7 mini workloads
#
# Also runs the clean (unmutated) suite first and requires it to PASS, so
# a detection can't be faked by the verifier simply failing everything.
set -euo pipefail
cd "$(dirname "$0")/.."

dir="$(mktemp -d)"
trap 'rm -rf "$dir"' EXIT

go build -o "$dir/magis-bench" ./cmd/magis-bench

echo "== clean verification (must pass)"
"$dir/magis-bench" -budget 1s verify | tee "$dir/clean.out"
if grep -qE 'FAIL|trap:|mismatch:' "$dir/clean.out"; then
    echo "FAIL: clean plans did not verify — verifier or planner is broken" >&2
    exit 1
fi

echo "== mutated verification (must be caught)"
# NB: flags must precede the target — the Go flag parser stops at the
# first positional argument.
if "$dir/magis-bench" -budget 1s -mutate verify > "$dir/mutated.out" 2>&1; then
    cat "$dir/mutated.out"
    echo "FAIL: verifier exited 0 on plans with a corrupted offset" >&2
    exit 1
fi
cat "$dir/mutated.out"

# The failure must be a structured detection (a trap, an output mismatch,
# or a static overlap report), not an unrelated crash.
if ! grep -qE 'trap:|mismatch:|static:' "$dir/mutated.out"; then
    echo "FAIL: non-zero exit but no structured trap/mismatch report" >&2
    exit 1
fi
if ! grep -q 'FAIL' "$dir/mutated.out"; then
    echo "FAIL: report does not mark any workload as failed" >&2
    exit 1
fi

echo "OK: corrupted offset detected with a structured report"
