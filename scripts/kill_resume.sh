#!/usr/bin/env bash
# Crash-safety smoke test for the search checkpoints: run a fixed-work
# search to completion, then run the same search with checkpointing,
# SIGKILL it mid-flight, resume from the snapshot, and require the resumed
# run to land on the same final result line.
#
#   ./scripts/kill_resume.sh            # mlp at scale 0.05, 40 expansions
#   SCALE=0.1 ITERS=60 ./scripts/kill_resume.sh
#
# Works because the search is deterministic for fixed work (-iters bounds
# expansions; -workers 1 and a generous budget keep timing out of the
# result) and the checkpoint snapshot is bit-exact.
set -euo pipefail
cd "$(dirname "$0")/.."

scale="${SCALE:-0.05}"
iters="${ITERS:-40}"
model="${MODEL:-mlp}"
dir="$(mktemp -d)"
trap 'rm -rf "$dir"' EXIT

run_flags=(-model "$model" -scale "$scale" -iters "$iters" -budget 10m -workers 1)

go build -o "$dir/magis" ./cmd/magis

echo "== reference run (uninterrupted)"
"$dir/magis" "${run_flags[@]}" | tee "$dir/ref.out"

echo "== checkpointed run, SIGKILL mid-search"
ckpt="$dir/search.ckpt"
"$dir/magis" "${run_flags[@]}" -checkpoint "$ckpt" > "$dir/killed.out" 2>&1 &
pid=$!
# Wait for the first snapshot to land, then kill without ceremony. If the
# run finishes before we get to it, that's fine too — resuming a finished
# checkpoint is a no-op that reports the same result.
for _ in $(seq 1 300); do
    [ -s "$ckpt" ] && break
    kill -0 "$pid" 2>/dev/null || break
    sleep 0.1
done
if [ ! -s "$ckpt" ]; then
    echo "FAIL: no checkpoint was written" >&2
    exit 1
fi
sleep 0.2
kill -9 "$pid" 2>/dev/null || true
wait "$pid" 2>/dev/null || true

echo "== resumed run"
"$dir/magis" -resume "$ckpt" | tee "$dir/resumed.out"

ref_result="$(grep '^result:' "$dir/ref.out")"
res_result="$(grep '^result:' "$dir/resumed.out")"
ref_best="$(grep '^best:' "$dir/ref.out")"
res_best="$(grep '^best:' "$dir/resumed.out")"

if [ "$ref_result" != "$res_result" ] || [ "$ref_best" != "$res_best" ]; then
    echo "FAIL: resumed run diverged from the uninterrupted reference" >&2
    echo "  reference: $ref_best / $ref_result" >&2
    echo "  resumed:   $res_best / $res_result" >&2
    exit 1
fi
echo "OK: kill-resume reproduced the reference result"
