#!/usr/bin/env bash
# Chaos harness for resource exhaustion: inject every storage fault class
# a real deployment can hit (disk full, torn writes, fsync failures, fd
# exhaustion, rename failures) underneath a live magis-serve and require
# it to keep answering — degrading to uncached/uncheckpointed serving
# with labeled results, never a 5xx, never temp debris. Then starve the
# search itself with a tiny -mem-budget and require a graceful
# best-so-far stop, and prove the governor is a strict no-op when idle.
#
#   ./scripts/storage_chaos.sh
#
# Phases:
#   1. fault sweep   one server per fault class, all persistence failing:
#                    jobs settle done, serving degrades with labels,
#                    metrics count the faults, no temp files leak
#   2. hard kill     SIGKILL while the disk is "full"; a faultless
#                    restart recovers to healthy storage and caches again
#   3. governor      a search past -mem-budget sheds state and stops
#                    gracefully with reason mem-budget, best-so-far kept
#   4. bit-identity  an idle governor (huge budget) changes nothing:
#                    byte-identical results vs the governor-off run
set -euo pipefail
cd "$(dirname "$0")/.."

command -v jq >/dev/null || { echo "SKIP: jq not installed" >&2; exit 0; }

PORT="${PORT:-$((19000 + RANDOM % 2000))}"
BASE="http://127.0.0.1:$PORT"
dir="$(mktemp -d)"
CKDIR="$dir/ckpt"
CACHEDIR="$dir/plans"
SRV=""
cleanup() {
    [ -n "$SRV" ] && kill -9 "$SRV" 2>/dev/null || true
    rm -rf "$dir"
}
trap cleanup EXIT

go build -o "$dir/magis-serve" ./cmd/magis-serve
go build -o "$dir/magis" ./cmd/magis

start_server() { # [extra flags...]
    "$dir/magis-serve" -addr "127.0.0.1:$PORT" -jobs 1 \
        -checkpoint-dir "$CKDIR" -checkpoint-every 1 -cache-dir "$CACHEDIR" \
        -stall-window=-1s "$@" >> "$dir/serve.log" 2>&1 &
    SRV=$!
    for _ in $(seq 1 100); do
        curl -fsS "$BASE/healthz" >/dev/null 2>&1 && return 0
        sleep 0.1
    done
    echo "FAIL: server did not come up (log tail follows)" >&2
    tail -20 "$dir/serve.log" >&2
    exit 1
}

stop_server() {
    kill -TERM "$SRV" 2>/dev/null || true
    wait "$SRV" 2>/dev/null || true
    SRV=""
}

submit() { # json body -> job id
    curl -fsS -X POST -d "$1" "$BASE/optimize" | jq -r .id
}

wait_done() { # job id -> prints the full job object
    local id="$1" state
    for _ in $(seq 1 1200); do
        state="$(curl -fsS "$BASE/jobs/$id" | jq -r .state)"
        case "$state" in
            done) curl -fsS "$BASE/jobs/$id"; return 0 ;;
            failed|cancelled|shed)
                echo "FAIL: job $id settled $state" >&2
                curl -fsS "$BASE/jobs/$id" >&2
                return 1 ;;
        esac
        sleep 0.1
    done
    echo "FAIL: timed out waiting for job $id" >&2
    return 1
}

wait_storage() { # expected storage state
    local want="$1" got=""
    for _ in $(seq 1 50); do
        got="$(curl -fsS "$BASE/healthz" | jq -r .storage)"
        [ "$got" = "$want" ] && return 0
        sleep 0.1
    done
    echo "FAIL: storage state is $got, want $want" >&2
    return 1
}

metric() { curl -fsS "$BASE/metrics" | jq "$1"; }

no_debris() { # no orphaned temp files may survive anywhere we persist
    local leaked
    leaked="$(find "$CKDIR" "$CACHEDIR" -name '*.tmp-*' 2>/dev/null | wc -l)"
    [ "$leaked" -eq 0 ] || {
        echo "FAIL: $leaked orphaned temp file(s) leaked:" >&2
        find "$CKDIR" "$CACHEDIR" -name '*.tmp-*' >&2
        return 1
    }
}

JOB='{"model":"mlp","scale":0.05,"iterations":2,"workers":1}'

echo "== phase 1: fault sweep — serving survives every storage fault class"
for spec in enospc@1+1 shortwrite@1+1 syncfail@1+1 renamefail@1+1 fdexhaust@1+1; do
    echo "  -- $spec"
    rm -rf "$CKDIR" "$CACHEDIR"
    start_server -chaos-storage-faults "$spec" -storage-threshold 1 -storage-cooloff 1h
    # The first job absorbs the fault: it must still answer (no 5xx, not
    # failed), and its fault trips the health machine.
    wait_done "$(submit "$JOB")" > /dev/null
    wait_storage degraded
    # Subsequent jobs are served degraded: real result, labeled, and no
    # persistence touched.
    job="$(wait_done "$(submit "$JOB")")"
    [ "$(jq -r .result.degraded_storage <<<"$job")" = "true" ] \
        || { echo "FAIL($spec): degraded job not labeled degraded_storage" >&2; exit 1; }
    [ "$(jq -r .result.peak_mem_bytes <<<"$job")" -gt 0 ] \
        || { echo "FAIL($spec): degraded job returned no result" >&2; jq . <<<"$job" >&2; exit 1; }
    [ "$(metric .storage_state)" = '"degraded"' ] || { echo "FAIL($spec): metrics not degraded" >&2; exit 1; }
    [ "$(metric .storage_faults)" -ge 1 ] || { echo "FAIL($spec): no storage faults counted" >&2; exit 1; }
    [ "$(metric .storage_degraded_jobs)" -ge 1 ] || { echo "FAIL($spec): no degraded jobs counted" >&2; exit 1; }
    no_debris
    stop_server
    no_debris
done

echo "== phase 2: SIGKILL under a full disk, faultless restart recovers"
rm -rf "$CKDIR" "$CACHEDIR"
start_server -chaos-storage-faults enospc@1+1 -storage-threshold 1 -storage-cooloff 1h
wait_done "$(submit "$JOB")" > /dev/null
wait_storage degraded
submit '{"model":"mlp","scale":0.05,"budget":"120s","iterations":5000,"workers":1}' >/dev/null
sleep 1
kill -9 "$SRV"; wait "$SRV" 2>/dev/null || true; SRV=""
no_debris
# The "disk" is healthy again: the restarted server must come back clean,
# serve with healthy storage, and persist plans once more.
start_server
curl -fsS "$BASE/healthz" | jq -e '.status == "ok" and .storage == "healthy"' >/dev/null \
    || { echo "FAIL: restart after ENOSPC kill is not healthy" >&2; exit 1; }
job="$(wait_done "$(submit "$JOB")")"
[ "$(jq -r .result.degraded_storage <<<"$job")" = "null" ] \
    || { echo "FAIL: healthy restart still labels jobs degraded" >&2; exit 1; }
[ "$(metric .cache.entries)" -ge 1 ] || { echo "FAIL: healthy restart does not cache plans" >&2; exit 1; }
no_debris
stop_server

echo "== phase 3: memory governor sheds and stops gracefully at -mem-budget"
out="$("$dir/magis" -model mlp -scale 0.05 -iters 400 -workers 1 -mem-budget 1KiB)"
grep -q "search stopped: mem-budget" <<<"$out" \
    || { echo "FAIL: governed search did not stop with reason mem-budget" >&2; echo "$out" >&2; exit 1; }
grep -q "^governor: " <<<"$out" \
    || { echo "FAIL: no governor status line" >&2; echo "$out" >&2; exit 1; }
grep -q "^best: " <<<"$out" \
    || { echo "FAIL: governed search returned no best-so-far plan" >&2; echo "$out" >&2; exit 1; }

echo "== phase 4: an idle governor is a bit-identical no-op"
run_fixed() { # mem-budget flag value ("" = off) -> result lines only
    "$dir/magis" -model mlp -scale 0.05 -iters 6 -workers 1 ${1:+-mem-budget "$1"} \
        | grep -E '^(best|result|fission):'
}
off="$(run_fixed "")"
idle="$(run_fixed 8GiB)"
[ "$off" = "$idle" ] || {
    echo "FAIL: idle governor changed the search result" >&2
    diff <(echo "$off") <(echo "$idle") >&2 || true
    exit 1
}
grep -q "^best: " <<<"$off" || { echo "FAIL: fixed-work run produced no result" >&2; exit 1; }

echo "OK: serving survived every storage fault class, recovered after ENOSPC+SIGKILL, and the governor stops gracefully without perturbing unconstrained runs"
