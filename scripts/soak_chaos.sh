#!/usr/bin/env bash
# End-to-end overload/chaos soak for magis-serve: drive a live server
# through mixed seeded traffic (hot cache hits, warm starts, cold
# searches, deadline-laden requests, a poisoned workload) via
# `magis-bench soak`, then SIGKILL it mid-flight and require the
# restarted server to recover checkpointed work and stay consistent.
#
#   ./scripts/soak_chaos.sh            # normal run
#   RACE=1 ./scripts/soak_chaos.sh     # binaries built with -race
#   SOAK_JOBS=120 ./scripts/soak_chaos.sh
#
# Phases:
#   1. soak        magis-bench soak asserts the invariants end to end:
#                  breaker isolates the poison workload while healthy
#                  traffic serves; every job settles terminal; the queue
#                  conserves jobs; no unverified plan is mislabeled;
#                  cost ledger drains to zero; SLO floors hold
#   2. hard kill   SIGKILL mid-search; the restarted server recovers the
#                  checkpointed job, the books balance again, and a
#                  cached request still hits
set -euo pipefail
cd "$(dirname "$0")/.."

command -v jq >/dev/null || { echo "SKIP: jq not installed" >&2; exit 0; }

PORT="${PORT:-$((20000 + RANDOM % 2000))}"
BASE="http://127.0.0.1:$PORT"
SOAK_JOBS="${SOAK_JOBS:-60}"
SOAK_SEED="${SOAK_SEED:-1}"
POISON="vit"
dir="$(mktemp -d)"
CKDIR="$dir/ckpt"
CACHEDIR="$dir/plans"
SRV=""
cleanup() {
    [ -n "$SRV" ] && kill -9 "$SRV" 2>/dev/null || true
    rm -rf "$dir"
}
trap cleanup EXIT

BUILDFLAGS=()
[ "${RACE:-0}" = "1" ] && BUILDFLAGS+=(-race)
go build "${BUILDFLAGS[@]}" -o "$dir/magis-serve" ./cmd/magis-serve
go build "${BUILDFLAGS[@]}" -o "$dir/magis-bench" ./cmd/magis-bench

start_server() {
    "$dir/magis-serve" -addr "127.0.0.1:$PORT" -queue 8 -jobs 2 \
        -checkpoint-dir "$CKDIR" -cache-dir "$CACHEDIR" \
        -checkpoint-every 5 -budget 5s -stall-window 30s \
        -breaker-threshold 2 -breaker-cooloff 500ms \
        -chaos-poison-model "$POISON" >> "$dir/serve.log" 2>&1 &
    SRV=$!
    for _ in $(seq 1 100); do
        curl -fsS "$BASE/healthz" >/dev/null 2>&1 && return 0
        sleep 0.1
    done
    echo "FAIL: server did not come up (log tail follows)" >&2
    tail -20 "$dir/serve.log" >&2
    exit 1
}

metric() { curl -fsS "$BASE/metrics" | jq "$1"; }

echo "== phase 1: mixed-traffic soak ($SOAK_JOBS submissions, seed $SOAK_SEED, poison $POISON)"
start_server
"$dir/magis-bench" -soak-url "$BASE" -soak-jobs "$SOAK_JOBS" \
    -soak-seed "$SOAK_SEED" -soak-poison "$POISON" soak

echo "== phase 2: SIGKILL mid-search, restart recovers and stays consistent"
long='{"model":"mlp","scale":0.05,"budget":"120s","iterations":5000,"workers":1}'
id="$(curl -fsS -X POST -d "$long" "$BASE/optimize" | jq -r .id)"
# SIGKILL only once the job's checkpoint is actually on disk.
for _ in $(seq 1 200); do
    [ -s "$CKDIR/$id.ckpt" ] && break
    sleep 0.1
done
[ -s "$CKDIR/$id.ckpt" ] || { echo "FAIL: job $id never checkpointed" >&2; exit 1; }
kill -9 "$SRV"; wait "$SRV" 2>/dev/null || true; SRV=""
start_server
curl -fsS "$BASE/healthz" | jq -e '.status == "ok"' >/dev/null \
    || { echo "FAIL: unhealthy after hard kill" >&2; exit 1; }
[ "$(metric .resumed)" -ge 1 ] \
    || { echo "FAIL: checkpointed job not recovered after SIGKILL" >&2; exit 1; }

# The recovered job must settle terminal and the books must balance.
for _ in $(seq 1 600); do
    depth="$(curl -fsS "$BASE/healthz" | jq -r .queue_depth)"
    flight="$(curl -fsS "$BASE/healthz" | jq -r .in_flight)"
    [ "$depth" = "0" ] && [ "$flight" = "0" ] && break
    sleep 0.5
done
[ "$depth" = "0" ] && [ "$flight" = "0" ] \
    || { echo "FAIL: recovered work never settled (depth=$depth in_flight=$flight)" >&2; exit 1; }
[ "$(curl -fsS "$BASE/healthz" | jq -r .cost_in_use_ms)" = "0" ] \
    || { echo "FAIL: admission cost leaked across restart" >&2; exit 1; }
jq -e '.admitted == (.completed + .failed + .cancelled + .shed_expired + .shed_evicted)' \
    <(curl -fsS "$BASE/metrics") >/dev/null \
    || { echo "FAIL: queue conservation violated after restart: $(curl -fsS "$BASE/metrics")" >&2; exit 1; }

# Cached plans still serve after the crash.
warm='{"model":"mlp","scale":0.01,"budget":"5s","iterations":10,"workers":1}'
wid="$(curl -fsS -X POST -d "$warm" "$BASE/optimize" | jq -r .id)"
for _ in $(seq 1 300); do
    state="$(curl -fsS "$BASE/jobs/$wid" | jq -r .state)"
    [ "$state" = "done" ] && break
    case "$state" in failed|cancelled|shed)
        echo "FAIL: post-restart job settled $state" >&2; exit 1 ;; esac
    sleep 0.1
done
[ "$state" = "done" ] || { echo "FAIL: post-restart job never finished" >&2; exit 1; }

kill -TERM "$SRV" 2>/dev/null || true
wait "$SRV" 2>/dev/null || true
SRV=""

echo "OK: soak held all invariants through overload, poison, and SIGKILL"
