#!/usr/bin/env bash
# Chaos harness for the persistent plan cache: damage the cache on disk in
# every way a real deployment can (bit flips, truncation, junk floods,
# renamed keys, SIGKILL mid-run) and require the service to keep answering
# correctly — quarantining what it cannot trust, re-searching on miss, and
# never serving a tampered plan.
#
#   ./scripts/cache_chaos.sh
#
# Phases:
#   1. populate   two jobs optimize and admit their plans into the cache
#   2. exact hit  an identical request is served without search work
#   3. restart    entries persist across a clean restart
#   4. corruption flip/truncate/junk-flood the cache; restart quarantines
#                 the damage, the service re-searches and self-heals
#   5. hard kill  SIGKILL mid-search; a restarted server stays healthy and
#                 its cache still serves
set -euo pipefail
cd "$(dirname "$0")/.."

command -v jq >/dev/null || { echo "SKIP: jq not installed" >&2; exit 0; }

PORT="${PORT:-$((18000 + RANDOM % 2000))}"
BASE="http://127.0.0.1:$PORT"
dir="$(mktemp -d)"
CKDIR="$dir/ckpt"
CACHEDIR="$dir/plans"
SRV=""
cleanup() {
    [ -n "$SRV" ] && kill -9 "$SRV" 2>/dev/null || true
    rm -rf "$dir"
}
trap cleanup EXIT

go build -o "$dir/magis-serve" ./cmd/magis-serve

start_server() {
    "$dir/magis-serve" -addr "127.0.0.1:$PORT" -jobs 1 \
        -checkpoint-dir "$CKDIR" -cache-dir "$CACHEDIR" \
        -stall-window=-1s >> "$dir/serve.log" 2>&1 &
    SRV=$!
    for _ in $(seq 1 100); do
        curl -fsS "$BASE/healthz" >/dev/null 2>&1 && return 0
        sleep 0.1
    done
    echo "FAIL: server did not come up (log tail follows)" >&2
    tail -20 "$dir/serve.log" >&2
    exit 1
}

stop_server() {
    kill -TERM "$SRV" 2>/dev/null || true
    wait "$SRV" 2>/dev/null || true
    SRV=""
}

submit() { # json body -> job id
    curl -fsS -X POST -d "$1" "$BASE/optimize" | jq -r .id
}

wait_done() { # job id -> prints the result object
    local id="$1" state
    for _ in $(seq 1 1200); do
        state="$(curl -fsS "$BASE/jobs/$id" | jq -r .state)"
        case "$state" in
            done) curl -fsS "$BASE/jobs/$id" | jq -c .result; return 0 ;;
            failed|cancelled)
                echo "FAIL: job $id settled $state" >&2
                curl -fsS "$BASE/jobs/$id" >&2
                return 1 ;;
        esac
        sleep 0.1
    done
    echo "FAIL: timed out waiting for job $id" >&2
    return 1
}

metric() { curl -fsS "$BASE/metrics" | jq "$1"; }

JOB_A='{"model":"mlp","scale":0.01,"budget":"120s","iterations":12,"workers":1}'
JOB_B='{"model":"mlp","scale":0.02,"budget":"120s","iterations":12,"workers":1}'

echo "== phase 1: populate the cache"
start_server
resA="$(wait_done "$(submit "$JOB_A")")"
resB="$(wait_done "$(submit "$JOB_B")")"
echo "  A: $resA"
echo "  B: $resB"
[ "$(metric .cache.entries)" -eq 2 ] || { echo "FAIL: want 2 cache entries, have $(metric .cache.entries)" >&2; exit 1; }
peakA="$(jq -r .peak_mem_bytes <<<"$resA")"

echo "== phase 2: exact hit without search work"
hit="$(wait_done "$(submit "$JOB_A")")"
echo "  hit: $hit"
[ "$(jq -r .cache <<<"$hit")" = "hit" ] || { echo "FAIL: repeat request not served from cache" >&2; exit 1; }
[ "$(jq -r .iterations <<<"$hit")" -eq 0 ] || { echo "FAIL: cache hit ran search iterations" >&2; exit 1; }
[ "$(jq -r .peak_mem_bytes <<<"$hit")" = "$peakA" ] || { echo "FAIL: hit served a different plan" >&2; exit 1; }
jq -e '.cache_hit_latency_sec.count >= 1 and .cache_miss_latency_sec.count >= 1' \
    <(curl -fsS "$BASE/metrics") >/dev/null || { echo "FAIL: latency percentiles missing" >&2; exit 1; }

echo "== phase 3: clean restart keeps the cache"
stop_server
start_server
hit="$(wait_done "$(submit "$JOB_A")")"
[ "$(jq -r .cache <<<"$hit")" = "hit" ] || { echo "FAIL: entries did not survive the restart" >&2; exit 1; }

echo "== phase 4: corruption — flip, truncate, junk, renamed key"
stop_server
entries=("$CACHEDIR"/*.plan)
[ "${#entries[@]}" -eq 2 ] || { echo "FAIL: expected 2 entry files, found ${#entries[@]}" >&2; exit 1; }
# Flip one byte mid-file in entry 0 (checksum must catch it).
printf 'X' | dd of="${entries[0]}" bs=1 seek=200 conv=notrunc status=none
# Truncate entry 1 (a torn write that bypassed the atomic path).
truncate -s 33 "${entries[1]}"
# A healthy-looking file under a key it was never written for.
cp "${entries[0]}" "$CACHEDIR/00000000deadbeef-00000000deadbeef.plan"
# Flood of junk and an empty file.
for i in $(seq 1 8); do printf 'junk-%s' "$i" > "$CACHEDIR/junk$i-0000000000000000.plan"; done
: > "$CACHEDIR/0000000000000000-0000000000000000.plan"

start_server
quar="$(metric .cache.quarantined)"
[ "$quar" -ge 11 ] || { echo "FAIL: quarantined $quar files, want >= 11" >&2; exit 1; }
[ "$(metric .cache.entries)" -eq 0 ] || { echo "FAIL: damaged entries still indexed" >&2; exit 1; }
[ "$(ls "$CACHEDIR/quarantine" | wc -l)" -ge 11 ] || { echo "FAIL: quarantine dir not populated" >&2; exit 1; }

# The damaged request must re-search (never serve the tampered bytes)...
res="$(wait_done "$(submit "$JOB_A")")"
[ "$(jq -r .cache <<<"$res")" != "hit" ] || { echo "FAIL: served from a corrupted cache" >&2; exit 1; }
[ "$(jq -r .peak_mem_bytes <<<"$res")" = "$peakA" ] || { echo "FAIL: re-search found a different plan" >&2; exit 1; }
# ...and the fresh result self-heals the cache.
hit="$(wait_done "$(submit "$JOB_A")")"
[ "$(jq -r .cache <<<"$hit")" = "hit" ] || { echo "FAIL: cache did not self-heal after corruption" >&2; exit 1; }

echo "== phase 5: SIGKILL mid-search, restart stays healthy"
big='{"model":"mlp","scale":0.05,"budget":"120s","iterations":5000,"workers":1}'
submit "$big" >/dev/null
sleep 1
kill -9 "$SRV"; wait "$SRV" 2>/dev/null || true; SRV=""
start_server
curl -fsS "$BASE/healthz" | jq -e '.status == "ok"' >/dev/null || { echo "FAIL: unhealthy after hard kill" >&2; exit 1; }
hit="$(wait_done "$(submit "$JOB_A")")"
[ "$(jq -r .cache <<<"$hit")" = "hit" ] || { echo "FAIL: cache lost after hard kill" >&2; exit 1; }
stop_server

echo "OK: plan cache survived corruption, junk floods, renames, and SIGKILL"
