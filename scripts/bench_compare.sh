#!/usr/bin/env bash
# Compares a fresh BenchmarkCore_ run against the committed baseline
# (BENCH_core.json) and exits non-zero on regression: search throughput
# ("evals") dropping, or allocations per op ("allocs/op") growing, by more
# than THRESHOLD percent. This is the CI gate keeping the incremental
# evaluation work (ISSUE 7) from silently eroding.
#
#   ./scripts/bench_compare.sh                 # against BENCH_core.json
#   THRESHOLD=45 ./scripts/bench_compare.sh    # custom tolerance (percent)
#   ./scripts/bench_compare.sh other.json      # custom baseline file
#
# The threshold is deliberately wide: these are fixed-time benchmarks on
# shared CI hardware, so the gate is for step-function regressions (a lost
# fast path, an allocation leak), not single-digit noise. Benchmarks
# present on only one side are reported but never fail the gate, so adding
# a benchmark does not require refreshing the baseline in the same change.
set -euo pipefail
cd "$(dirname "$0")/.."

baseline="${1:-BENCH_core.json}"
threshold="${THRESHOLD:-40}"
if [ ! -f "$baseline" ]; then
    echo "baseline $baseline not found" >&2
    exit 2
fi

tmp="$(mktemp)"
trap 'rm -f "$tmp"' EXIT
echo "running BenchmarkCore_ suite..."
./scripts/bench_core.sh "$tmp" >/dev/null

awk -v thr="$threshold" '
# Pull a quoted string field out of one JSON benchmark line.
function getstr(line, key,    k, s) {
    k = "\"" key "\":\""
    if (!index(line, k)) return ""
    s = substr(line, index(line, k) + length(k))
    return substr(s, 1, index(s, "\"") - 1)
}
# Pull a numeric metric out of one JSON benchmark line ("" when absent).
function getnum(line, key,    k, s) {
    k = "\"" key "\":"
    if (!index(line, k)) return ""
    s = substr(line, index(line, k) + length(k))
    if (match(s, /[,}]/)) s = substr(s, 1, RSTART - 1)
    return s + 0
}
/"name"/ {
    name = getstr($0, "name")
    if (name == "") next
    if (FILENAME == ARGV[1]) {
        base_evals[name] = getnum($0, "evals")
        base_allocs[name] = getnum($0, "allocs/op")
        in_base[name] = 1
    } else {
        cur_evals[name] = getnum($0, "evals")
        cur_allocs[name] = getnum($0, "allocs/op")
        in_cur[name] = 1
        order[n++] = name
    }
}
END {
    fails = 0
    printf "%-48s %14s %14s %9s\n", "benchmark", "baseline", "current", "delta"
    for (i = 0; i < n; i++) {
        name = order[i]
        if (!in_base[name]) {
            printf "%-48s %14s %14s %9s\n", name, "-", "(new)", "skip"
            continue
        }
        if (base_evals[name] != "" && cur_evals[name] != "") {
            d = 100 * (cur_evals[name] / base_evals[name] - 1)
            verdict = "ok"
            if (d < -thr) { verdict = "REGRESSION"; fails++ }
            printf "%-48s %14.1f %14.1f %+8.1f%% %s  (evals, min -%d%%)\n",
                name, base_evals[name], cur_evals[name], d, verdict, thr
        }
        if (base_allocs[name] != "" && cur_allocs[name] != "") {
            d = 100 * (cur_allocs[name] / base_allocs[name] - 1)
            verdict = "ok"
            if (d > thr) { verdict = "REGRESSION"; fails++ }
            printf "%-48s %14d %14d %+8.1f%% %s  (allocs/op, max +%d%%)\n",
                name, base_allocs[name], cur_allocs[name], d, verdict, thr
        }
    }
    for (name in in_base) {
        if (!in_cur[name])
            printf "%-48s %14s %14s %9s\n", name, "(baseline only)", "-", "skip"
    }
    if (fails) {
        printf "\n%d regression(s) beyond +/-%d%%\n", fails, thr
        exit 1
    }
    printf "\nno regressions beyond +/-%d%%\n", thr
}
' "$baseline" "$tmp"
