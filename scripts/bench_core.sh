#!/usr/bin/env bash
# Runs the BenchmarkCore_* microbenchmark suite with allocation reporting
# and writes the results as BENCH_core.json (or the path given as $1).
#
#   ./scripts/bench_core.sh              # BENCH_core.json, -benchtime=1x
#   BENCHTIME=5x ./scripts/bench_core.sh out.json
#
# The JSON is a flat array of {name, iterations, metrics} objects, one per
# benchmark line, with every reported unit (ns/op, B/op, allocs/op, evals,
# ...) as a metrics key — enough structure to diff across commits without
# needing benchstat.
set -euo pipefail
cd "$(dirname "$0")/.."

out="${1:-BENCH_core.json}"
benchtime="${BENCHTIME:-1x}"
tmp="$(mktemp)"
trap 'rm -f "$tmp"' EXIT

go test -run '^$' -bench 'BenchmarkCore_' -benchmem -benchtime "$benchtime" ./... | tee "$tmp"

awk '
BEGIN { print "[" }
/^Benchmark/ {
    if (n++) printf ",\n"
    printf "  {\"name\":\"%s\",\"iterations\":%s,\"metrics\":{", $1, $2
    m = 0
    for (i = 3; i + 1 <= NF; i += 2) {
        if (m++) printf ","
        printf "\"%s\":%s", $(i + 1), $i
    }
    printf "}}"
}
END { print "\n]" }
' "$tmp" > "$out"

echo "wrote $out"
