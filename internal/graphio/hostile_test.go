package graphio

import (
	"bytes"
	"strings"
	"testing"
)

// hostileCorpus is the table of adversarially malformed graph documents
// Load must reject with a descriptive, position-bearing error. The fuzz
// target below seeds from the same table, so every hand-written attack
// also becomes a mutation starting point.
var hostileCorpus = []struct {
	name string
	doc  string
	want string // substring the error must carry
}{
	{
		name: "duplicate node id",
		doc: `{"version":1,"nodes":[
			{"id":3,"op":{"kind":"Input","out":[4],"dtype":0}},
			{"id":3,"op":{"kind":"ReLU","ins":[[4]],"out":[4],"dtype":0},"ins":[3]}]}`,
		want: "duplicate node id",
	},
	{
		name: "dangling input reference",
		doc: `{"version":1,"nodes":[
			{"id":0,"op":{"kind":"ReLU","ins":[[4]],"out":[4],"dtype":0},"ins":[7]}]}`,
		want: "undeclared input 7",
	},
	{
		name: "forward input reference",
		doc: `{"version":1,"nodes":[
			{"id":0,"op":{"kind":"ReLU","ins":[[4]],"out":[4],"dtype":0},"ins":[1]},
			{"id":1,"op":{"kind":"Input","out":[4],"dtype":0}}]}`,
		want: "undeclared input 1",
	},
	{
		name: "negative output dim",
		doc:  `{"version":1,"nodes":[{"id":0,"op":{"kind":"Input","out":[-4],"dtype":0}}]}`,
		want: "extent -4",
	},
	{
		name: "zero output dim",
		doc:  `{"version":1,"nodes":[{"id":0,"op":{"kind":"Input","out":[8,0],"dtype":0}}]}`,
		want: "extent 0",
	},
	{
		name: "negative input dim",
		doc: `{"version":1,"nodes":[
			{"id":0,"op":{"kind":"Input","out":[4],"dtype":0}},
			{"id":1,"op":{"kind":"ReLU","ins":[[-1]],"out":[4],"dtype":0},"ins":[0]}]}`,
		want: "input 0",
	},
	{
		name: "overflowing shape product",
		doc: `{"version":1,"nodes":[
			{"id":0,"op":{"kind":"Input","out":[2147483647,2147483647,2147483647],"dtype":0}}]}`,
		want: "overflows",
	},
	{
		name: "NaN shape dim is not JSON",
		doc:  `{"version":1,"nodes":[{"id":0,"op":{"kind":"Input","out":[NaN],"dtype":0}}]}`,
		want: "graphio:",
	},
	{
		name: "fractional shape dim",
		doc:  `{"version":1,"nodes":[{"id":0,"op":{"kind":"Input","out":[4.5],"dtype":0}}]}`,
		want: "graphio:",
	},
	{
		name: "unknown dtype",
		doc:  `{"version":1,"nodes":[{"id":0,"op":{"kind":"Input","out":[4],"dtype":99}}]}`,
		want: "unknown dtype 99",
	},
	{
		name: "negative reduce extent",
		doc: `{"version":1,"nodes":[
			{"id":0,"op":{"kind":"Input","out":[4],"dtype":0,"reduce":[-2]}}]}`,
		want: "reduce axis has extent -2",
	},
	{
		name: "truncated document",
		doc:  `{"version":1,"nodes":[{"id":0,"op":{"kind":"Inp`,
		want: "graphio:",
	},
}

func TestHostileDecodeCorpus(t *testing.T) {
	for _, tc := range hostileCorpus {
		t.Run(tc.name, func(t *testing.T) {
			_, _, err := Load(strings.NewReader(tc.doc))
			if err == nil {
				t.Fatalf("hostile document accepted: %s", tc.doc)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not carry %q", err, tc.want)
			}
		})
	}
}

// TestHostileErrorsArePositional pins that structural rejections name the
// node and its position in the file — an operator debugging a rejected
// multi-thousand-node upload needs coordinates, not just a verdict.
func TestHostileErrorsArePositional(t *testing.T) {
	doc := `{"version":1,"nodes":[
		{"id":0,"op":{"kind":"Input","out":[4],"dtype":0}},
		{"id":9,"op":{"kind":"Input","out":[4],"dtype":42}}]}`
	_, _, err := Load(strings.NewReader(doc))
	if err == nil {
		t.Fatal("bad dtype accepted")
	}
	for _, want := range []string{"node 9", "file index 1"} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("error %q missing %q", err, want)
		}
	}
}

// FuzzDecode asserts the decode contract under mutation: Load never
// panics, and any document it accepts survives a save/load round trip
// with its structural hash intact.
func FuzzDecode(f *testing.F) {
	for _, tc := range hostileCorpus {
		f.Add(tc.doc)
	}
	f.Add(`{"magic":"magis-graph","version":1,"nodes":[
		{"id":0,"op":{"kind":"Input","out":[4,4],"dtype":0}},
		{"id":1,"op":{"kind":"ReLU","ins":[[4,4]],"out":[4,4],"dtype":0},"ins":[0]}],
		"schedule":[0,1]}`)
	f.Fuzz(func(t *testing.T, doc string) {
		g, order, err := Load(strings.NewReader(doc))
		if err != nil {
			return
		}
		var buf bytes.Buffer
		if err := Save(&buf, g, order); err != nil {
			t.Fatalf("accepted graph failed to save: %v", err)
		}
		g2, _, err := Load(&buf)
		if err != nil {
			t.Fatalf("round trip of accepted graph rejected: %v", err)
		}
		if g.WLHash() != g2.WLHash() {
			t.Fatal("round trip changed the structural hash")
		}
	})
}
