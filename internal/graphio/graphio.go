// Package graphio serializes computation graphs and schedules to JSON so
// optimized programs can be saved, inspected, diffed, and reloaded by
// downstream tooling. Only operator graphs serialize (collapsed fission
// regions are a search-time construct; materialize first).
package graphio

import (
	"encoding/json"
	"fmt"
	"io"

	"magis/internal/graph"
	"magis/internal/ops"
	"magis/internal/sched"
)

// fileFormat is the on-disk envelope.
type fileFormat struct {
	Version  int            `json:"version"`
	Nodes    []nodeFormat   `json:"nodes"`
	Schedule []graph.NodeID `json:"schedule,omitempty"`
}

type nodeFormat struct {
	ID   graph.NodeID   `json:"id"`
	Name string         `json:"name,omitempty"`
	Op   ops.Raw        `json:"op"`
	Ins  []graph.NodeID `json:"ins,omitempty"`
}

// Save writes g (and an optional schedule; pass nil for none) as JSON.
func Save(w io.Writer, g *graph.Graph, order sched.Schedule) error {
	f := fileFormat{Version: 1, Schedule: order}
	for _, v := range g.Topo() {
		n := g.Node(v)
		spec, ok := n.Op.(*ops.Spec)
		if !ok {
			return fmt.Errorf("graphio: node %d has non-serializable payload %q", v, n.Op.Kind())
		}
		f.Nodes = append(f.Nodes, nodeFormat{
			ID:   v,
			Name: n.Name,
			Op:   spec.Marshal(),
			Ins:  n.Ins,
		})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(f)
}

// Load reads a graph (and schedule, possibly nil) written by Save.
// Node IDs are preserved.
func Load(r io.Reader) (*graph.Graph, sched.Schedule, error) {
	var f fileFormat
	if err := json.NewDecoder(r).Decode(&f); err != nil {
		return nil, nil, fmt.Errorf("graphio: %w", err)
	}
	if f.Version != 1 {
		return nil, nil, fmt.Errorf("graphio: unsupported version %d", f.Version)
	}
	g := graph.New()
	remap := make(map[graph.NodeID]graph.NodeID, len(f.Nodes))
	for _, n := range f.Nodes {
		ins := make([]graph.NodeID, len(n.Ins))
		for i, in := range n.Ins {
			m, ok := remap[in]
			if !ok {
				return nil, nil, fmt.Errorf("graphio: node %d references undeclared input %d", n.ID, in)
			}
			ins[i] = m
		}
		remap[n.ID] = g.AddNamed(n.Name, ops.FromRaw(n.Op), ins...)
	}
	var order sched.Schedule
	for _, v := range f.Schedule {
		m, ok := remap[v]
		if !ok {
			return nil, nil, fmt.Errorf("graphio: schedule references unknown node %d", v)
		}
		order = append(order, m)
	}
	if order != nil {
		if err := order.Validate(g); err != nil {
			return nil, nil, fmt.Errorf("graphio: %w", err)
		}
	}
	return g, order, nil
}
