// Package graphio serializes computation graphs and schedules to JSON so
// optimized programs can be saved, inspected, diffed, and reloaded by
// downstream tooling. Only operator graphs serialize (collapsed fission
// regions are a search-time construct; materialize first).
//
// Two encodings live here:
//
//   - Save/Load, the portable interchange format: node IDs are compacted
//     on load, suitable for handing graphs between tools.
//   - Record/GraphRecord.Restore, the snapshot encoding used by search
//     checkpoints (internal/opt): node IDs and the fresh-ID counter are
//     preserved exactly, so a restored graph behaves bit-identically to
//     the snapshotted one (iteration order, future ID allocation).
package graphio

import (
	"encoding/json"
	"fmt"
	"io"

	"magis/internal/graph"
	"magis/internal/ops"
	"magis/internal/sched"
	"magis/internal/tensor"
)

// Magic identifies a graphio file; files written before the header was
// introduced carry an empty magic and remain loadable.
const Magic = "magis-graph"

// FormatVersion is the on-disk format version Save writes and Load
// accepts. Bump it on any incompatible change to the envelope below.
const FormatVersion = 1

// fileFormat is the on-disk envelope.
type fileFormat struct {
	Magic    string         `json:"magic,omitempty"`
	Version  int            `json:"version"`
	Nodes    []nodeFormat   `json:"nodes"`
	Schedule []graph.NodeID `json:"schedule,omitempty"`
}

type nodeFormat struct {
	ID   graph.NodeID   `json:"id"`
	Name string         `json:"name,omitempty"`
	Op   ops.Raw        `json:"op"`
	Ins  []graph.NodeID `json:"ins,omitempty"`
}

// Save writes g (and an optional schedule; pass nil for none) as JSON.
func Save(w io.Writer, g *graph.Graph, order sched.Schedule) error {
	f := fileFormat{Magic: Magic, Version: FormatVersion, Schedule: order}
	nodes, err := encodeNodes(g)
	if err != nil {
		return err
	}
	f.Nodes = nodes
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(f)
}

// Load reads a graph (and schedule, possibly nil) written by Save.
// Node IDs are compacted: the loaded graph allocates them densely in file
// order. Schedules are remapped accordingly.
func Load(r io.Reader) (*graph.Graph, sched.Schedule, error) {
	var f fileFormat
	if err := json.NewDecoder(r).Decode(&f); err != nil {
		return nil, nil, fmt.Errorf("graphio: %w", err)
	}
	if err := checkHeader(f.Magic, f.Version); err != nil {
		return nil, nil, err
	}
	g := graph.New()
	remap := make(map[graph.NodeID]graph.NodeID, len(f.Nodes))
	for pos, n := range f.Nodes {
		if _, dup := remap[n.ID]; dup {
			return nil, nil, fmt.Errorf("graphio: node %d (file index %d): duplicate node id", n.ID, pos)
		}
		if err := checkRawOp(pos, n); err != nil {
			return nil, nil, err
		}
		ins := make([]graph.NodeID, len(n.Ins))
		for i, in := range n.Ins {
			m, ok := remap[in]
			if !ok {
				return nil, nil, fmt.Errorf("graphio: node %d (file index %d) references undeclared input %d", n.ID, pos, in)
			}
			ins[i] = m
		}
		remap[n.ID] = g.AddNamed(n.Name, ops.FromRaw(n.Op), ins...)
	}
	var order sched.Schedule
	for _, v := range f.Schedule {
		m, ok := remap[v]
		if !ok {
			return nil, nil, fmt.Errorf("graphio: schedule references unknown node %d", v)
		}
		order = append(order, m)
	}
	if order != nil {
		if err := order.Validate(g); err != nil {
			return nil, nil, fmt.Errorf("graphio: %w", err)
		}
	}
	return g, order, nil
}

// checkRawOp validates one decoded node's operator payload before it is
// handed to ops.FromRaw. Load feeds the optimizer data it did not build
// itself, and the optimizer's own accessors assume well-formed metadata
// (DType.Size panics on unknown values, Shape.Elems multiplies without
// overflow checks) — so every assumption is re-checked here with an error
// naming the node and its position in the file.
func checkRawOp(pos int, n nodeFormat) error {
	at := func(format string, args ...any) error {
		return fmt.Errorf("graphio: node %d (file index %d): %s", n.ID, pos, fmt.Sprintf(format, args...))
	}
	if !n.Op.DType.Valid() {
		return at("unknown dtype %d", n.Op.DType)
	}
	check := func(what string, s tensor.Shape) error {
		for d, ext := range s {
			if ext < 1 {
				return at("%s dimension %d has extent %d, want >= 1", what, d+1, ext)
			}
		}
		if _, ok := tensor.BytesChecked(s, n.Op.DType); !ok {
			return at("%s shape %v overflows the byte accounting", what, s)
		}
		return nil
	}
	if err := check("output", n.Op.Out); err != nil {
		return err
	}
	for i, in := range n.Op.Ins {
		if err := check(fmt.Sprintf("input %d", i), in); err != nil {
			return err
		}
	}
	for _, ext := range n.Op.Reduce {
		if ext < 1 {
			return at("reduce axis has extent %d, want >= 1", ext)
		}
	}
	return nil
}

// checkHeader validates the magic/version pair with errors that name both
// what was found and what this build supports.
func checkHeader(magic string, version int) error {
	if magic != "" && magic != Magic {
		return fmt.Errorf("graphio: not a graph file: magic %q (want %q)", magic, Magic)
	}
	if version != FormatVersion {
		return fmt.Errorf("graphio: unsupported format version %d (this build reads version %d); re-save the graph with a matching build", version, FormatVersion)
	}
	return nil
}

// GraphRecord is the snapshot encoding of one graph: node IDs and the
// fresh-ID counter are preserved exactly. It marshals to/from JSON and is
// embedded inside search checkpoints.
type GraphRecord struct {
	// Next is the graph's fresh-ID counter (strictly above every ID ever
	// allocated in the lineage, including removed nodes).
	Next graph.NodeID `json:"next"`
	// Nodes lists the live nodes in topological order.
	Nodes []nodeFormat `json:"nodes"`
}

// Record captures g as an ID-exact snapshot. Every payload must be an
// *ops.Spec (logical graphs only; collapsed regions do not serialize).
func Record(g *graph.Graph) (*GraphRecord, error) {
	nodes, err := encodeNodes(g)
	if err != nil {
		return nil, err
	}
	return &GraphRecord{Next: g.NextID(), Nodes: nodes}, nil
}

// Restore rebuilds the recorded graph with identical node IDs and fresh-ID
// counter.
func (r *GraphRecord) Restore() (*graph.Graph, error) {
	g := graph.New()
	for _, n := range r.Nodes {
		if err := g.AddWithID(n.ID, n.Name, ops.FromRaw(n.Op), n.Ins...); err != nil {
			return nil, fmt.Errorf("graphio: restore: %w", err)
		}
	}
	if err := g.SetNextID(r.Next); err != nil {
		return nil, fmt.Errorf("graphio: restore: %w", err)
	}
	return g, nil
}

// encodeNodes serializes the node table in topological order so every
// node's inputs are declared before it (rewrites can produce IDs out of
// topological order, so ascending-ID order would not suffice).
func encodeNodes(g *graph.Graph) ([]nodeFormat, error) {
	var out []nodeFormat
	for _, v := range g.Topo() {
		n := g.Node(v)
		spec, ok := n.Op.(*ops.Spec)
		if !ok {
			return nil, fmt.Errorf("graphio: node %d has non-serializable payload %q", v, n.Op.Kind())
		}
		out = append(out, nodeFormat{
			ID:   v,
			Name: n.Name,
			Op:   spec.Marshal(),
			Ins:  n.Ins,
		})
	}
	return out, nil
}
