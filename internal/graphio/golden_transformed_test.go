package graphio

import (
	"bytes"
	"flag"
	"os"
	"testing"

	"magis/internal/baselines"
	"magis/internal/graph"
	"magis/internal/models"
	"magis/internal/refexec"
	"magis/internal/rules"
	"magis/internal/sched"
	"magis/internal/verify"
)

var updateTransformed = flag.Bool("update-transformed", false,
	"rewrite testdata/transformed-v1.json from the current generators")

const transformedGoldenPath = "testdata/transformed-v1.json"

// buildTransformed deterministically reproduces the transformed golden
// graph: the MLP golden workload put through a whole-graph batch fission
// (leaving Slice/Concat remnants) and one swap rewrite (leaving a
// Store/Load pair). Returns the intermediate fissioned graph too: the
// swap rewrite clones it ID-for-ID, which makes a numeric output
// cross-check between the two possible.
func buildTransformed(t *testing.T) (split, tg *graph.Graph, order sched.Schedule) {
	t.Helper()
	w := models.MLP(8, 4, 8, 4, 2)
	split, err := baselines.SplitBatch(w.G, 2)
	if err != nil {
		t.Fatalf("SplitBatch: %v", err)
	}
	apps := rules.SwapRule{}.Apply(split, &rules.Context{})
	if len(apps) == 0 {
		t.Fatal("SwapRule found no site on the fissioned MLP")
	}
	tg = apps[0].Graph
	sc := &sched.Scheduler{}
	return split, tg, sc.ScheduleGraph(tg)
}

// TestTransformedGoldenRoundTrip pins the on-disk format for graphs the
// optimizer actually emits — containing Store/Load transfer pairs and
// batch-fission remnants — not just pristine constructor output. The
// loaded graph must match the generator structurally AND compute, node
// for node, exactly the values the generator graph computes under the
// reference interpreter. Regenerate with:
//
//	go test ./internal/graphio/ -run TransformedGolden -update-transformed
func TestTransformedGoldenRoundTrip(t *testing.T) {
	split, want, order := buildTransformed(t)
	if *updateTransformed {
		var buf bytes.Buffer
		if err := Save(&buf, want, order); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(transformedGoldenPath, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s (%d bytes)", transformedGoldenPath, buf.Len())
	}
	data, err := os.ReadFile(transformedGoldenPath)
	if err != nil {
		t.Fatal(err)
	}
	g, gorder, err := Load(bytes.NewReader(data))
	if err != nil {
		t.Fatalf("transformed golden file no longer loads: %v", err)
	}
	if g.WLHash() != want.WLHash() {
		t.Error("transformed golden drifted from its generator (rules or fission changed?); re-run with -update-transformed if intentional")
	}
	if err := gorder.Validate(g); err != nil {
		t.Fatalf("golden schedule invalid: %v", err)
	}
	kinds := map[string]int{}
	for _, id := range g.NodeIDs() {
		kinds[g.Node(id).Op.Kind()]++
	}
	for _, k := range []string{"Store", "Load", "Slice", "Concat"} {
		if kinds[k] == 0 {
			t.Errorf("transformed golden contains no %s node — it no longer exercises the transformed-graph format", k)
		}
	}

	// The swap rewrite must not have changed the computed function: the
	// rewritten graph clones the fissioned one ID-for-ID, so the
	// verifier's output pairing applies directly.
	sv, err := refexec.Run(split, nil, 7)
	if err != nil {
		t.Fatal(err)
	}
	wleaves := refexec.SeedLeaves(want, 7)
	wv, err := refexec.Exec(want, order, wleaves)
	if err != nil {
		t.Fatal(err)
	}
	if mms, _, err := verify.MatchOutputs(split, sv, want, wv); err != nil {
		t.Fatal(err)
	} else if len(mms) > 0 {
		t.Fatalf("swapped graph diverges from the fissioned graph: %+v", mms[0])
	}

	// The committed golden must still execute under the reference
	// interpreter: every serialized operator reconstitutes into a node
	// refexec has a kernel for.
	if _, err := refexec.Run(g, gorder, 7); err != nil {
		t.Fatalf("loaded transformed graph does not execute: %v", err)
	}

	// Serialization must preserve numerics exactly. Node IDs inside the
	// transformed graph are not reproducible run-to-run (clone order
	// is), so this check runs on an in-process save/load cycle, where a
	// positional correspondence holds by construction: Load compacts
	// node IDs densely in file order, and Save writes nodes in
	// want.Topo() order, so want.Topo()[i] is the i-th ascending ID of
	// the reloaded graph. Seed the reloaded graph's leaves with the
	// generator's buffers through that correspondence and demand
	// bitwise-equal values at every node.
	var cycle bytes.Buffer
	if err := Save(&cycle, want, order); err != nil {
		t.Fatal(err)
	}
	rg, rorder, err := Load(&cycle)
	if err != nil {
		t.Fatal(err)
	}
	wids := want.Topo()
	rids := rg.NodeIDs()
	if len(wids) != len(rids) {
		t.Fatalf("reloaded graph has %d nodes, generator has %d", len(rids), len(wids))
	}
	rleaves := make(map[graph.NodeID][]float64, len(wleaves))
	for i, wid := range wids {
		wn, rn := want.Node(wid), rg.Node(rids[i])
		if wn.Op.Kind() != rn.Op.Kind() || wn.Name != rn.Name {
			t.Fatalf("node correspondence broken at position %d: generator %s %q vs reloaded %s %q",
				i, wn.Op.Kind(), wn.Name, rn.Op.Kind(), rn.Name)
		}
		if buf, ok := wleaves[wid]; ok {
			rleaves[rids[i]] = buf
		}
	}
	rv, err := refexec.Exec(rg, rorder, rleaves)
	if err != nil {
		t.Fatalf("reloaded transformed graph does not execute: %v", err)
	}
	for i, wid := range wids {
		a, b := wv[wid], rv[rids[i]]
		if len(a) != len(b) {
			t.Fatalf("node %d (%s): generator computed %d elements, reloaded graph %d",
				wid, want.Node(wid).Op.Kind(), len(a), len(b))
		}
		for j := range a {
			if a[j] != b[j] {
				t.Fatalf("node %d (%s) elem %d: generator %v, reloaded graph %v — serialization changed numerics",
					wid, want.Node(wid).Op.Kind(), j, a[j], b[j])
			}
		}
	}

	// Format stability of the committed golden under a save/load cycle.
	var buf bytes.Buffer
	if err := Save(&buf, g, gorder); err != nil {
		t.Fatal(err)
	}
	g2, order2, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if g.WLHash() != g2.WLHash() || len(gorder) != len(order2) {
		t.Error("save/load cycle of the transformed golden is not stable")
	}
}
