package graphio

import (
	"bytes"
	"strings"
	"testing"

	"magis/internal/cost"
	"magis/internal/models"
	"magis/internal/sched"
)

func TestRoundTripPreservesStructureAndCosts(t *testing.T) {
	w := models.MLP(64, 32, 64, 10, 2)
	var sc sched.Scheduler
	order := sc.ScheduleGraph(w.G)

	var buf bytes.Buffer
	if err := Save(&buf, w.G, order); err != nil {
		t.Fatal(err)
	}
	g2, order2, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if g2.Len() != w.G.Len() {
		t.Fatalf("node count %d != %d", g2.Len(), w.G.Len())
	}
	if w.G.WLHash() != g2.WLHash() {
		t.Error("round trip changed the structural hash")
	}
	if len(order2) != len(order) {
		t.Fatal("schedule length changed")
	}
	if err := order2.Validate(g2); err != nil {
		t.Fatal(err)
	}
	// Memory and latency metrics must be identical.
	if sched.PeakOnly(w.G, order) != sched.PeakOnly(g2, order2) {
		t.Error("peak memory changed across round trip")
	}
	m := cost.NewModel(cost.RTX3090())
	if a, b := m.GraphComputeLatency(w.G), m.GraphComputeLatency(g2); a != b {
		t.Errorf("latency changed across round trip: %g vs %g", a, b)
	}
}

func TestRoundTripAllWorkloads(t *testing.T) {
	m := cost.NewModel(cost.RTX3090())
	for _, w := range models.SmallSuite() {
		var buf bytes.Buffer
		if err := Save(&buf, w.G, nil); err != nil {
			t.Fatalf("%s: %v", w.Name, err)
		}
		g2, _, err := Load(&buf)
		if err != nil {
			t.Fatalf("%s: %v", w.Name, err)
		}
		if w.G.WLHash() != g2.WLHash() {
			t.Errorf("%s: hash mismatch after round trip", w.Name)
		}
		// The flops registry must reproduce every constructor's costs.
		if a, b := m.GraphComputeLatency(w.G), m.GraphComputeLatency(g2); a != b {
			t.Errorf("%s: latency %g != %g after round trip (flops registry drift)", w.Name, a, b)
		}
	}
}

func TestLoadRejectsGarbage(t *testing.T) {
	if _, _, err := Load(strings.NewReader("not json")); err == nil {
		t.Error("garbage accepted")
	}
	if _, _, err := Load(strings.NewReader(`{"version": 2}`)); err == nil {
		t.Error("future version accepted")
	}
	if _, _, err := Load(strings.NewReader(
		`{"version":1,"nodes":[{"id":0,"op":{"kind":"ReLU","out":[4],"dtype":0},"ins":[7]}]}`)); err == nil {
		t.Error("dangling input reference accepted")
	}
}
