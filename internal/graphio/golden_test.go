package graphio

import (
	"bytes"
	"os"
	"strings"
	"testing"

	"magis/internal/cost"
	"magis/internal/models"
	"magis/internal/sched"
)

// TestGoldenFileRoundTrip pins the on-disk format: testdata/mlp-v1.json was
// written by a version-1 build and must keep loading — bit-for-bit — into
// the same graph the constructor produces today. If this test breaks, the
// format changed incompatibly: bump FormatVersion instead of editing the
// golden file.
func TestGoldenFileRoundTrip(t *testing.T) {
	data, err := os.ReadFile("testdata/mlp-v1.json")
	if err != nil {
		t.Fatal(err)
	}
	g, order, err := Load(bytes.NewReader(data))
	if err != nil {
		t.Fatalf("golden file no longer loads: %v", err)
	}

	// The golden graph is models.MLP(8, 4, 8, 4, 2) with its canonical
	// schedule; structure and costs must match a freshly built one.
	w := models.MLP(8, 4, 8, 4, 2)
	if g.Len() != w.G.Len() {
		t.Fatalf("golden graph has %d nodes, constructor builds %d", g.Len(), w.G.Len())
	}
	if g.WLHash() != w.G.WLHash() {
		t.Error("golden graph's structural hash drifted from the constructor's")
	}
	if err := order.Validate(g); err != nil {
		t.Fatalf("golden schedule invalid: %v", err)
	}
	m := cost.NewModel(cost.RTX3090())
	if a, b := m.GraphComputeLatency(g), m.GraphComputeLatency(w.G); a != b {
		t.Errorf("golden graph latency %g, constructor %g (cost registry drift)", a, b)
	}
	var sc sched.Scheduler
	ref := sc.ScheduleGraph(w.G)
	if sched.PeakOnly(g, order) != sched.PeakOnly(w.G, ref) {
		t.Error("golden schedule's peak memory drifted from the canonical schedule's")
	}

	// And the loaded graph re-saves into something that loads back equal —
	// the format is stable under a save/load cycle, not just a load.
	var buf bytes.Buffer
	if err := Save(&buf, g, order); err != nil {
		t.Fatal(err)
	}
	g2, order2, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if g.WLHash() != g2.WLHash() || len(order) != len(order2) {
		t.Error("save/load cycle of the golden graph is not stable")
	}
}

// TestLoadVersionMismatchIsDescriptive: refusing a file is only useful if
// the error tells the operator what they have and what the build wants.
func TestLoadVersionMismatchIsDescriptive(t *testing.T) {
	_, _, err := Load(strings.NewReader(`{"magic":"magis-graph","version":99,"nodes":[]}`))
	if err == nil {
		t.Fatal("future version accepted")
	}
	for _, want := range []string{"version 99", "version 1"} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("version error %q does not mention %q", err, want)
		}
	}

	_, _, err = Load(strings.NewReader(`{"magic":"magis-sched","version":1,"nodes":[]}`))
	if err == nil {
		t.Fatal("wrong magic accepted")
	}
	for _, want := range []string{`"magis-sched"`, `"magis-graph"`} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("magic error %q does not mention %q", err, want)
		}
	}
}
