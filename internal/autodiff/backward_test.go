package autodiff

import (
	"testing"

	"magis/internal/graph"
	"magis/internal/ops"
	"magis/internal/sched"
	"magis/internal/tensor"
)

// mlp builds a 2-layer classifier ending in CrossEntropy.
func mlp() (*graph.Graph, graph.NodeID, []graph.NodeID) {
	g := graph.New()
	dt := tensor.F32
	x := g.AddNamed("x", ops.NewInput(tensor.S(32, 64), dt))
	lbl := g.AddNamed("labels", ops.NewInput(tensor.S(32), dt))
	w1 := g.AddNamed("w1", ops.NewParam(tensor.S(64, 128), dt))
	b1 := g.AddNamed("b1", ops.NewParam(tensor.S(128), dt))
	w2 := g.AddNamed("w2", ops.NewParam(tensor.S(128, 10), dt))
	h := g.Add(ops.NewMatmul(tensor.S(32, 64), tensor.S(64, 128), false, false, dt), x, w1)
	hb := g.Add(ops.NewBiasAdd(tensor.S(32, 128), tensor.S(128), dt), h, b1)
	r := g.Add(ops.NewReLU(tensor.S(32, 128), dt), hb)
	logits := g.Add(ops.NewMatmul(tensor.S(32, 128), tensor.S(128, 10), false, false, dt), r, w2)
	loss := g.Add(ops.NewCrossEntropy(tensor.S(32, 10), tensor.S(32), dt), logits, lbl)
	return g, loss, []graph.NodeID{w1, b1, w2}
}

func TestBackwardMLP(t *testing.T) {
	g, loss, params := mlp()
	grads, err := Backward(g, loss)
	if err != nil {
		t.Fatal(err)
	}
	if len(grads) != len(params) {
		t.Fatalf("got %d grads, want %d", len(grads), len(params))
	}
	for _, w := range params {
		gw, ok := grads[w]
		if !ok {
			t.Errorf("param %d has no gradient", w)
			continue
		}
		if !g.Node(gw).Op.OutShape().Equal(g.Node(w).Op.OutShape()) {
			t.Errorf("grad shape %v != weight shape %v",
				g.Node(gw).Op.OutShape(), g.Node(w).Op.OutShape())
		}
	}
	// Graph must remain a valid DAG.
	if err := sched.Schedule(g.Topo()).Validate(g); err != nil {
		t.Fatal(err)
	}
	// Every param must flow into an ApplySGD update.
	for _, w := range params {
		hasUpdate := false
		for _, c := range g.Suc(w) {
			if g.Node(c).Op.Kind() == "ApplySGD" {
				hasUpdate = true
			}
		}
		if !hasUpdate {
			t.Errorf("param %d has no ApplySGD consumer", w)
		}
	}
}

func TestBackwardConvNet(t *testing.T) {
	g := graph.New()
	dt := tensor.F32
	x := g.Add(ops.NewInput(tensor.S(8, 3, 32, 32), dt))
	lbl := g.Add(ops.NewInput(tensor.S(8), dt))
	w := g.AddNamed("conv.w", ops.NewParam(tensor.S(16, 3, 3, 3), dt))
	gmm := g.AddNamed("bn.g", ops.NewParam(tensor.S(16), dt))
	fc := g.AddNamed("fc.w", ops.NewParam(tensor.S(16*16*16, 10), dt))
	c := g.Add(ops.NewConv2d(tensor.S(8, 3, 32, 32), tensor.S(16, 3, 3, 3), 1, 1, dt), x, w)
	bn := g.Add(ops.NewBatchNorm2d(tensor.S(8, 16, 32, 32), tensor.S(16), dt), c, gmm)
	r := g.Add(ops.NewReLU(tensor.S(8, 16, 32, 32), dt), bn)
	p := g.Add(ops.NewPool2d(tensor.S(8, 16, 32, 32), "max", 2, 2, dt), r)
	fl := g.Add(ops.NewReshape(tensor.S(8, 16, 16, 16), tensor.S(8, 16*16*16), dt), p)
	logits := g.Add(ops.NewMatmul(tensor.S(8, 16*16*16), tensor.S(16*16*16, 10), false, false, dt), fl, fc)
	loss := g.Add(ops.NewCrossEntropy(tensor.S(8, 10), tensor.S(8), dt), logits, lbl)
	grads, err := Backward(g, loss)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range []graph.NodeID{w, gmm, fc} {
		if gw, ok := grads[p]; !ok {
			t.Errorf("no grad for param %d", p)
		} else if !g.Node(gw).Op.OutShape().Equal(g.Node(p).Op.OutShape()) {
			t.Errorf("grad shape mismatch for param %d", p)
		}
	}
	if err := sched.Schedule(g.Topo()).Validate(g); err != nil {
		t.Fatal(err)
	}
}

func TestBackwardTransformerPieces(t *testing.T) {
	// LayerNorm + attention-ish softmax path + residual Add.
	g := graph.New()
	dt := tensor.F32
	b, s, c := 4, 16, 32
	x := g.Add(ops.NewInput(tensor.S(b, s, c), dt))
	lbl := g.Add(ops.NewInput(tensor.S(b, s), dt))
	gamma := g.AddNamed("ln.g", ops.NewParam(tensor.S(c), dt))
	beta := g.AddNamed("ln.b", ops.NewParam(tensor.S(c), dt))
	wq := g.AddNamed("wq", ops.NewParam(tensor.S(c, c), dt))
	ln := g.Add(ops.NewLayerNorm(tensor.S(b, s, c), tensor.S(c), tensor.S(c), dt), x, gamma, beta)
	ln2 := g.Add(ops.NewReshape(tensor.S(b, s, c), tensor.S(b*s, c), dt), ln)
	q := g.Add(ops.NewMatmul(tensor.S(b*s, c), tensor.S(c, c), false, false, dt), ln2, wq)
	q3 := g.Add(ops.NewReshape(tensor.S(b*s, c), tensor.S(b, s, c), dt), q)
	att := g.Add(ops.NewBatchMatmul(tensor.S(b, s, c), tensor.S(b, s, c), false, true, dt), q3, q3)
	sm := g.Add(ops.NewSoftmax(tensor.S(b, s, s), 3, dt), att)
	o := g.Add(ops.NewBatchMatmul(tensor.S(b, s, s), tensor.S(b, s, c), false, false, dt), sm, q3)
	res := g.Add(ops.NewAdd(tensor.S(b, s, c), tensor.S(b, s, c), dt), o, ln)
	loss := g.Add(ops.NewCrossEntropy(tensor.S(b, s, c), tensor.S(b, s), dt), res, lbl)
	grads, err := Backward(g, loss)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range []graph.NodeID{gamma, beta, wq} {
		if _, ok := grads[p]; !ok {
			t.Errorf("no grad for param %d", p)
		}
	}
	if err := sched.Schedule(g.Topo()).Validate(g); err != nil {
		t.Fatal(err)
	}
	// ln feeds both the attention path and the residual: its gradient must
	// accumulate via at least one Add combining two contributions.
	// (Indirect check: backward graph contains more Adds than the forward.)
	adds := 0
	for _, v := range g.NodeIDs() {
		if g.Node(v).Op.Kind() == "Add" {
			adds++
		}
	}
	if adds < 2 {
		t.Errorf("expected gradient accumulation Adds, found %d", adds)
	}
}

func TestBackwardTrainingMemoryExceedsForward(t *testing.T) {
	// The whole point of the paper: training graphs hold activations until
	// the backward pass, inflating peak memory well beyond forward-only.
	gFwd, _, _ := mlp()
	fwdPeak := sched.PeakOnly(gFwd, gFwd.Topo())
	gTrain, loss, _ := mlp()
	if _, err := Backward(gTrain, loss); err != nil {
		t.Fatal(err)
	}
	trainPeak := sched.PeakOnly(gTrain, gTrain.Topo())
	if trainPeak <= fwdPeak {
		t.Errorf("training peak %d should exceed forward peak %d", trainPeak, fwdPeak)
	}
}

func TestBackwardErrors(t *testing.T) {
	g := graph.New()
	x := g.Add(ops.NewInput(tensor.S(4), tensor.F32))
	r := g.Add(ops.NewReLU(tensor.S(4), tensor.F32), x)
	if _, err := Backward(g, r); err == nil {
		t.Error("loss without params must error")
	}
	if _, err := Backward(g, graph.NodeID(999)); err == nil {
		t.Error("missing loss must error")
	}
}

func TestEmbeddingGradient(t *testing.T) {
	g := graph.New()
	dt := tensor.F32
	ids := g.Add(ops.NewInput(tensor.S(4, 8), dt))
	lbl := g.Add(ops.NewInput(tensor.S(4, 8), dt))
	table := g.AddNamed("emb", ops.NewParam(tensor.S(100, 16), dt))
	e := g.Add(ops.NewEmbedding(tensor.S(4, 8), tensor.S(100, 16), dt), ids, table)
	loss := g.Add(ops.NewCrossEntropy(tensor.S(4, 8, 16), tensor.S(4, 8), dt), e, lbl)
	grads, err := Backward(g, loss)
	if err != nil {
		t.Fatal(err)
	}
	gw, ok := grads[table]
	if !ok {
		t.Fatal("no embedding grad")
	}
	if g.Node(gw).Op.Kind() != "EmbeddingBwd" {
		t.Errorf("grad kind = %s", g.Node(gw).Op.Kind())
	}
}
