// Package autodiff extends a forward computation graph with its reverse-
// mode backward pass, producing the training graphs all experiments run
// on. Gradients flow only where a Param is reachable; each Param's
// gradient ends in an ApplySGD update so gradient lifetimes close
// realistically.
package autodiff

import (
	"fmt"
	"strings"

	"magis/internal/graph"
	"magis/internal/ops"
	"magis/internal/tensor"
)

// Backward appends the backward pass for scalar loss node `loss` to g and
// returns the gradient node of every Param (keyed by the Param's ID).
// ApplySGD update nodes are appended so gradients are consumed.
func Backward(g *graph.Graph, loss graph.NodeID) (map[graph.NodeID]graph.NodeID, error) {
	if !g.Has(loss) {
		return nil, fmt.Errorf("autodiff: loss node %d missing", loss)
	}
	topo := g.Topo()
	// requiresGrad: Params and anything downstream of one.
	req := make(map[graph.NodeID]bool, len(topo))
	for _, v := range topo {
		n := g.Node(v)
		if n.Op.Kind() == ops.KindParam {
			req[v] = true
			continue
		}
		for _, in := range n.Ins {
			if req[in] {
				req[v] = true
				break
			}
		}
	}
	if !req[loss] {
		return nil, fmt.Errorf("autodiff: loss does not depend on any Param")
	}
	// Restrict to ancestors of loss.
	anc := g.Anc(loss)
	anc[loss] = true

	// grads accumulates contributions per node; summed lazily.
	pending := make(map[graph.NodeID][]graph.NodeID)
	gradOf := func(v graph.NodeID) graph.NodeID {
		parts := pending[v]
		if len(parts) == 0 {
			return graph.Invalid
		}
		acc := parts[0]
		for _, p := range parts[1:] {
			sh := g.Node(acc).Op.OutShape()
			acc = g.Add(ops.NewAdd(sh, sh, g.Node(acc).Op.DType()), acc, p)
		}
		pending[v] = []graph.NodeID{acc}
		return acc
	}

	for i := len(topo) - 1; i >= 0; i-- {
		v := topo[i]
		if !anc[v] || !req[v] {
			continue
		}
		n := g.Node(v)
		kind := n.Op.Kind()
		if ops.IsLeaf(kind) {
			continue
		}
		var dy graph.NodeID
		if v == loss {
			dy = graph.Invalid // loss VJPs take no upstream gradient
		} else {
			dy = gradOf(v)
			if dy == graph.Invalid {
				continue // no gradient path through this node
			}
		}
		contribs, err := vjp(g, v, dy)
		if err != nil {
			return nil, err
		}
		for idx, gr := range contribs {
			if gr == graph.Invalid {
				continue
			}
			in := n.Ins[idx]
			if !req[in] {
				continue
			}
			pending[in] = append(pending[in], gr)
		}
	}

	out := make(map[graph.NodeID]graph.NodeID)
	for _, v := range topo {
		if g.Node(v).Op.Kind() != ops.KindParam {
			continue
		}
		gw := gradOf(v)
		if gw == graph.Invalid {
			continue
		}
		out[v] = gw
		sh := g.Node(v).Op.OutShape()
		g.AddNamed(g.Node(v).Name+".sgd",
			ops.NewApplySGD(sh, g.Node(gw).Op.OutShape(), g.Node(v).Op.DType()), v, gw)
	}
	return out, nil
}

// vjp emits the gradient contribution of node v to each of its inputs.
// Returned slice is indexed by input slot; graph.Invalid marks "no grad".
func vjp(g *graph.Graph, v, dy graph.NodeID) ([]graph.NodeID, error) {
	n := g.Node(v)
	spec, ok := n.Op.(*ops.Spec)
	if !ok {
		return nil, fmt.Errorf("autodiff: node %d is not an ops.Spec", v)
	}
	dt := spec.DType()
	kind := spec.Kind()
	ins := n.Ins
	none := make([]graph.NodeID, len(ins))
	for i := range none {
		none[i] = graph.Invalid
	}
	dyShape := tensor.Shape(nil)
	if dy != graph.Invalid {
		dyShape = g.Node(dy).Op.OutShape()
	} else if kind != ops.KindCrossEnt {
		return nil, fmt.Errorf("autodiff: loss must be a CrossEntropy node, got %q", kind)
	}

	switch kind {
	case ops.KindMatmul, ops.KindBatchMM:
		a, b := spec.InShape(0), spec.InShape(1)
		batch := kind == ops.KindBatchMM
		mk := func(x, y tensor.Shape, tx, ty bool, i0, i1 graph.NodeID) graph.NodeID {
			if batch {
				return g.Add(ops.NewBatchMatmul(x, y, tx, ty, dt), i0, i1)
			}
			return g.Add(ops.NewMatmul(x, y, tx, ty, dt), i0, i1)
		}
		switch spec.Attr() {
		case "NN": // C = A B
			none[0] = mk(dyShape, b, false, true, dy, ins[1])
			none[1] = mk(a, dyShape, true, false, ins[0], dy)
		case "NT": // C = A B^T
			none[0] = mk(dyShape, b, false, false, dy, ins[1])
			none[1] = mk(dyShape, a, true, false, dy, ins[0])
		case "TN": // C = A^T B
			none[0] = mk(b, dyShape, false, true, ins[1], dy)
			none[1] = mk(a, dyShape, false, false, ins[0], dy)
		default:
			return nil, fmt.Errorf("autodiff: unsupported matmul attr %q", spec.Attr())
		}
	case "Linear":
		x, w := spec.InShape(0), spec.InShape(1)
		switch spec.Attr() {
		case "N": // y = x W
			none[0] = g.Add(ops.NewLinear(dyShape, w, true, dt), dy, ins[1])
			none[1] = g.Add(ops.NewLinearBwdW(x, dyShape, dt), ins[0], dy)
		case "T": // y = x W^T
			none[0] = g.Add(ops.NewLinear(dyShape, w, false, dt), dy, ins[1])
			// dW^T accumulates as dy^T x -> [n, k]: swap operands.
			none[1] = g.Add(ops.NewLinearBwdW(dyShape, x, dt), dy, ins[0])
		default:
			return nil, fmt.Errorf("autodiff: unsupported linear attr %q", spec.Attr())
		}
	case "SplitHeads":
		none[0] = g.Add(ops.NewMergeHeads(dyShape, dt), dy)
	case "MergeHeads":
		heads := spec.InShape(0).Dim(2)
		none[0] = g.Add(ops.NewSplitHeads(dyShape, heads, dt), dy)
	case ops.KindConv2d:
		var stride, pad int
		fmt.Sscanf(spec.Attr(), "s%dp%d", &stride, &pad)
		x, w := spec.InShape(0), spec.InShape(1)
		none[0] = g.Add(ops.NewConvBwdData(dyShape, w, x, stride, pad, dt), dy, ins[1])
		none[1] = g.Add(ops.NewConvBwdFilter(x, dyShape, w, stride, pad, dt), ins[0], dy)
	case ops.KindPool2d:
		var pk string
		var k, s int
		parts := strings.SplitN(spec.Attr(), ",", 2)
		pk = parts[0]
		fmt.Sscanf(parts[1], "k%ds%d", &k, &s)
		none[0] = g.Add(ops.NewPoolBwd(spec.InShape(0), dyShape, pk, k, s, dt), ins[0], dy)
	case "Upsample2d":
		var f int
		fmt.Sscanf(spec.Attr(), "f%d", &f)
		none[0] = g.Add(ops.NewUpsampleBwd(spec.InShape(0), dyShape, f, dt), dy)
	case "ReLU", "GELU", "Tanh", "Sigmoid", "Dropout", "Scale":
		none[0] = g.Add(ops.NewEltwiseBwd(kind+"Bwd", spec.InShape(0), dyShape, dt, 2), ins[0], dy)
	case "Add":
		none[0] = dy
		none[1] = dy
	case "Mul":
		none[0] = g.Add(ops.NewMul(spec.InShape(1), dyShape, dt), ins[1], dy)
		none[1] = g.Add(ops.NewMul(spec.InShape(0), dyShape, dt), ins[0], dy)
	case "BiasAdd":
		none[0] = dy
		none[1] = g.Add(ops.NewBiasBwd(dyShape, dt), dy)
	case ops.KindSoftmax:
		var axis int
		fmt.Sscanf(spec.Attr(), "a%d", &axis)
		none[0] = g.Add(ops.NewSoftmaxBwd(spec.OutShape(), dyShape, axis, dt), v, dy)
	case ops.KindLayerNorm:
		x := spec.InShape(0)
		none[0] = g.Add(ops.NewLayerNormBwdX(x, dyShape, spec.InShape(1), dt), ins[0], dy, ins[1])
		none[1] = g.Add(ops.NewLayerNormBwdParams(x, dyShape, dt), ins[0], dy)
		none[2] = g.Add(ops.NewBiasBwd(dyShape, dt), dy)
	case "BatchNorm2d":
		x := spec.InShape(0)
		none[0] = g.Add(ops.NewBatchNorm2dBwdX(x, dyShape, dt), ins[0], dy)
		none[1] = g.Add(ops.NewBatchNorm2dBwdP(x, dyShape, dt), ins[0], dy)
	case ops.KindReduce:
		parts := strings.SplitN(spec.Attr(), ",", 2)
		var axis int
		fmt.Sscanf(parts[1], "a%d", &axis)
		x := spec.InShape(0)
		none[0] = g.Add(ops.NewBroadcast(dyShape, axis, x.Dim(axis), dt), dy)
	case ops.KindSlice:
		dim, start, _, _ := ops.ParseSliceAttr(spec)
		x := spec.InShape(0)
		none[0] = g.Add(ops.NewPad(dyShape, dim, start, x.Dim(dim), dt), dy)
	case ops.KindConcat:
		var dim, cnt int
		fmt.Sscanf(spec.Attr(), "d%d,n%d", &dim, &cnt)
		off := 0
		for i := range ins {
			l := spec.InShape(i).Dim(dim)
			none[i] = g.Add(ops.NewSlice(dyShape, dim, off, l, dt), dy)
			off += l
		}
	case ops.KindTranspose:
		perm := parsePerm(spec.Attr())
		inv := make([]int, len(perm))
		for i, p := range perm {
			inv[p] = i
		}
		none[0] = g.Add(ops.NewTranspose(dyShape, inv, dt), dy)
	case ops.KindReshape:
		none[0] = g.Add(ops.NewReshape(dyShape, spec.InShape(0), dt), dy)
	case ops.KindEmbedding:
		none[1] = g.Add(ops.NewEmbeddingBwd(spec.InShape(0), dyShape, spec.InShape(1), dt), ins[0], dy)
	case ops.KindCrossEnt:
		none[0] = g.Add(ops.NewCrossEntropyBwd(spec.InShape(0), spec.InShape(1), dt), ins[0], ins[1])
	default:
		return nil, fmt.Errorf("autodiff: no VJP for operator %q", kind)
	}
	return none, nil
}

func parsePerm(attr string) []int {
	attr = strings.TrimPrefix(attr, "p[")
	attr = strings.TrimSuffix(attr, "]")
	var perm []int
	for _, f := range strings.Fields(attr) {
		var x int
		fmt.Sscanf(f, "%d", &x)
		perm = append(perm, x)
	}
	return perm
}
