package autodiff

import (
	"math"
	"testing"

	"magis/internal/graph"
	"magis/internal/ops"
	"magis/internal/refexec"
	"magis/internal/sched"
	"magis/internal/tensor"
)

// gradcheck compares every parameter gradient Backward produced against
// central finite differences of the loss under the reference interpreter.
// The perturbation is applied post-quantization and the divisor is the
// actually-applied delta (qplus - qminus), so dtype rounding does not
// masquerade as a wrong derivative. Sampling a handful of elements per
// parameter keeps the 2-executions-per-element cost bounded.
func gradcheck(t *testing.T, g *graph.Graph, loss graph.NodeID, seed uint64) {
	t.Helper()
	grads, err := Backward(g, loss)
	if err != nil {
		t.Fatal(err)
	}
	order := sched.Schedule(g.Topo())
	leaves := refexec.SeedLeaves(g, seed)
	vals, err := refexec.Exec(g, order, leaves)
	if err != nil {
		t.Fatal(err)
	}
	lossAt := func(param graph.NodeID, idx int, v float64) float64 {
		t.Helper()
		perturbed := make(map[graph.NodeID][]float64, len(leaves))
		for id, buf := range leaves {
			perturbed[id] = buf
		}
		buf := append([]float64(nil), leaves[param]...)
		buf[idx] = v
		perturbed[param] = buf
		pv, err := refexec.Exec(g, order, perturbed)
		if err != nil {
			t.Fatal(err)
		}
		return pv[loss][0]
	}
	const eps = 1e-3
	for param, gnode := range grads {
		dt := g.Node(param).Op.DType()
		analytic := vals[gnode]
		n := len(analytic)
		if n != len(leaves[param]) {
			t.Fatalf("param %d: gradient has %d elements, param has %d", param, n, len(leaves[param]))
		}
		stride := n/4 + 1
		for idx := 0; idx < n; idx += stride {
			v := leaves[param][idx]
			qplus := dt.Quantize(v + eps)
			qminus := dt.Quantize(v - eps)
			delta := qplus - qminus
			if delta == 0 {
				continue // eps vanished under this dtype's rounding
			}
			fd := (lossAt(param, idx, qplus) - lossAt(param, idx, qminus)) / delta
			ad := analytic[idx]
			lim := 1e-3 + 2e-2*math.Max(math.Abs(ad), math.Abs(fd))
			if d := math.Abs(ad - fd); d > lim || math.IsNaN(d) {
				t.Errorf("param %s (%d) elem %d: analytic %.6g vs finite-diff %.6g (|Δ|=%.3g > %.3g)",
					g.Node(param).Name, param, idx, ad, fd, d, lim)
			}
		}
	}
}

// TestGradcheckMLP: Linear→BiasAdd→GELU→Linear→CrossEntropy. Covers the
// dense backward kernels (LinearBwdW, BiasBwd, GELUBwd, CrossEntropyBwd).
func TestGradcheckMLP(t *testing.T) {
	g := graph.New()
	dt := tensor.F32
	x := g.AddNamed("x", ops.NewInput(tensor.S(2, 3), dt))
	w1 := g.AddNamed("w1", ops.NewParam(tensor.S(3, 6), dt))
	b1 := g.AddNamed("b1", ops.NewParam(tensor.S(6), dt))
	w2 := g.AddNamed("w2", ops.NewParam(tensor.S(6, 4), dt))
	lbl := g.AddNamed("labels", ops.NewInput(tensor.S(2), dt))
	h := g.Add(ops.NewLinear(tensor.S(2, 3), tensor.S(3, 6), false, dt), x, w1)
	hb := g.Add(ops.NewBiasAdd(tensor.S(2, 6), tensor.S(6), dt), h, b1)
	act := g.Add(ops.NewGELU(tensor.S(2, 6), dt), hb)
	logits := g.Add(ops.NewLinear(tensor.S(2, 6), tensor.S(6, 4), false, dt), act, w2)
	loss := g.AddNamed("loss", ops.NewCrossEntropy(tensor.S(2, 4), tensor.S(2), dt), logits, lbl)
	gradcheck(t, g, loss, 17)
}

// TestGradcheckAttention: a single-head-split attention block
// (SplitHeads, scaled-dot-product scores, Softmax, context matmul,
// MergeHeads, LayerNorm) into a token-level CrossEntropy. Covers the
// attention-path backward kernels (BatchMatmul transposes, SoftmaxBwd,
// LayerNormBwdX/P, ScaleBwd).
func TestGradcheckAttention(t *testing.T) {
	g := graph.New()
	dt := tensor.F32
	const (
		b, s, c, heads, vocab = 1, 4, 8, 2, 5
	)
	xsh := tensor.S(b, s, c)
	hsh := tensor.S(b, heads, s, c/heads)
	ssh := tensor.S(b, heads, s, s)
	csh := tensor.S(c)

	x := g.AddNamed("x", ops.NewInput(xsh, dt))
	wq := g.AddNamed("wq", ops.NewParam(tensor.S(c, c), dt))
	wk := g.AddNamed("wk", ops.NewParam(tensor.S(c, c), dt))
	wv := g.AddNamed("wv", ops.NewParam(tensor.S(c, c), dt))
	q := g.Add(ops.NewLinear(xsh, tensor.S(c, c), false, dt), x, wq)
	k := g.Add(ops.NewLinear(xsh, tensor.S(c, c), false, dt), x, wk)
	v := g.Add(ops.NewLinear(xsh, tensor.S(c, c), false, dt), x, wv)
	qh := g.Add(ops.NewSplitHeads(xsh, heads, dt), q)
	kh := g.Add(ops.NewSplitHeads(xsh, heads, dt), k)
	vh := g.Add(ops.NewSplitHeads(xsh, heads, dt), v)
	scores := g.Add(ops.NewBatchMatmul(hsh, hsh, false, true, dt), qh, kh)
	scaled := g.Add(ops.NewScale(ssh, dt), scores)
	probs := g.Add(ops.NewSoftmax(ssh, 4, dt), scaled)
	ctx := g.Add(ops.NewBatchMatmul(ssh, hsh, false, false, dt), probs, vh)
	merged := g.Add(ops.NewMergeHeads(hsh, dt), ctx)
	gamma := g.AddNamed("ln.g", ops.NewParam(csh, dt))
	beta := g.AddNamed("ln.b", ops.NewParam(csh, dt))
	ln := g.Add(ops.NewLayerNorm(xsh, csh, csh, dt), merged, gamma, beta)
	head := g.AddNamed("head", ops.NewParam(tensor.S(c, vocab), dt))
	logits := g.Add(ops.NewLinear(xsh, tensor.S(c, vocab), false, dt), ln, head)
	lbl := g.AddNamed("labels", ops.NewInput(tensor.S(b, s), dt))
	loss := g.AddNamed("loss", ops.NewCrossEntropy(tensor.S(b, s, vocab), tensor.S(b, s), dt), logits, lbl)
	gradcheck(t, g, loss, 23)
}
