package serve

// Per-client fairness isolation. The overload layer (admission.go) bounds
// the server's total exposure; this file bounds any single client's slice
// of it, so one flooding tenant collects 429s while everybody else keeps
// their SLO. Three independent mechanisms compose:
//
//   - a per-client token bucket on request arrival (ClientRate/ClientBurst):
//     the cheapest gate, charged before any per-request work;
//   - a per-client fair-share cost ledger layered under AdmitBudget
//     (ClientShare): the estimated service time one client may hold
//     concurrently, with the same single-job idle exception the global
//     budget grants;
//   - a per-client occupancy cap in the EDF queue (ClientQueue, enforced
//     by jobQueue.push under the queue lock, so concurrent arrivals
//     cannot jointly overshoot it).
//
// Client identity is declarative (header or request field) — this is a
// fairness mechanism against well-behaved-but-greedy and accidentally
// abusive traffic, not an authentication system; an adversary who forges
// identities per request degrades to the global admission budget, which
// still bounds the server's total exposure.

import (
	"fmt"
	"math"
	"sync"
	"time"
)

// maxTrackedClients bounds the ledger map: past it, the least recently
// seen client with nothing held is evicted. A client-name churn attack
// therefore costs the attacker its own rate-limit state, never server
// memory.
const maxTrackedClients = 4096

// anonClient is the identity of requests that declare none.
const anonClient = "anon"

// clientState is one client's ledger entry. All fields are guarded by
// the ledger mutex.
type clientState struct {
	tokens   float64 // token bucket level
	lastFill time.Time
	held     int64 // admission cost units currently held
	jobs     int   // unsettled jobs (queued + running)
	lastSeen time.Time
	// Counters for /metrics.
	admitted, settled           int64
	rejRate, rejShare, rejQueue int64
}

// clientLedger tracks per-client admission state. A zero-configured
// ledger (no rate, no share, no queue cap) disables all tracking, so
// deployments that never opt in keep their flat memory profile.
type clientLedger struct {
	rate       float64 // tokens (requests) per second; <= 0 disables
	burst      float64
	shareUnits int64 // max cost units held per client; <= 0 disables
	queueCap   int   // informational here; enforced by jobQueue

	mu      sync.Mutex
	clients map[string]*clientState
}

func newClientLedger(cfg Config) *clientLedger {
	l := &clientLedger{
		rate:     cfg.ClientRate,
		burst:    float64(cfg.ClientBurst),
		queueCap: cfg.ClientQueue,
	}
	if cfg.ClientShare > 0 {
		l.shareUnits = int64(cfg.ClientShare * float64(costUnits(cfg.AdmitBudget)))
		if l.shareUnits < 1 {
			l.shareUnits = 1
		}
	}
	if l.enabled() {
		l.clients = make(map[string]*clientState)
	}
	return l
}

func (l *clientLedger) enabled() bool {
	return l.rate > 0 || l.shareUnits > 0 || l.queueCap > 0
}

// share returns the per-client concurrent-cost cap (0 = disabled).
func (l *clientLedger) share() int64 { return l.shareUnits }

// state returns (creating if needed) the entry for name. Caller holds
// l.mu. At the tracking cap, the least recently seen idle client is
// evicted first; a table full of clients with work in flight admits the
// newcomer untracked-equivalent (fresh entry) only after eviction
// succeeds — otherwise the oldest idle entry's slot is reused.
func (l *clientLedger) state(name string, now time.Time) *clientState {
	st, ok := l.clients[name]
	if !ok {
		if len(l.clients) >= maxTrackedClients {
			l.evictIdle()
		}
		st = &clientState{tokens: l.burst, lastFill: now}
		l.clients[name] = st
	}
	st.lastSeen = now
	return st
}

// evictIdle removes the least recently seen client holding no cost and
// no jobs. Caller holds l.mu.
func (l *clientLedger) evictIdle() {
	victim := ""
	var oldest time.Time
	for name, st := range l.clients {
		if st.held != 0 || st.jobs != 0 {
			continue
		}
		if victim == "" || st.lastSeen.Before(oldest) {
			victim = name
			oldest = st.lastSeen
		}
	}
	if victim != "" {
		delete(l.clients, victim)
	}
}

// allow charges one request against the client's token bucket, returning
// whether it may proceed and — when it may not — a Retry-After hint in
// seconds. With no rate configured every request passes.
func (l *clientLedger) allow(name string, now time.Time) (bool, int) {
	if l.rate <= 0 {
		return true, 0
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	st := l.state(name, now)
	st.tokens += now.Sub(st.lastFill).Seconds() * l.rate
	if st.tokens > l.burst {
		st.tokens = l.burst
	}
	st.lastFill = now
	if st.tokens < 1 {
		st.rejRate++
		after := int(math.Ceil((1 - st.tokens) / l.rate))
		if after < 1 {
			after = 1
		}
		return false, after
	}
	st.tokens--
	return true, 0
}

// hold reserves units against name's fair-share ledger and returns the
// post-reservation totals (held units, unsettled jobs). Reserve-then-
// check mirrors the global budget: the mutexed add serializes concurrent
// same-client arrivals so they cannot jointly overshoot the share.
func (l *clientLedger) hold(name string, units int64, now time.Time) (int64, int) {
	if !l.enabled() {
		return 0, 0
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	st := l.state(name, now)
	st.held += units
	st.jobs++
	return st.held, st.jobs
}

// release returns a hold when its job settles.
func (l *clientLedger) release(name string, units int64) {
	if !l.enabled() {
		return
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if st, ok := l.clients[name]; ok {
		st.held -= units
		st.jobs--
		st.settled++
		if st.held < 0 {
			st.held = 0
		}
		if st.jobs < 0 {
			st.jobs = 0
		}
	}
}

// clientCounter names a per-client counter note() can bump.
type clientCounter int

const (
	clientAdmitted clientCounter = iota
	clientRejShare
	clientRejQueue
)

// note bumps a per-client counter.
func (l *clientLedger) note(name string, c clientCounter) {
	if !l.enabled() {
		return
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	st := l.state(name, time.Now())
	switch c {
	case clientAdmitted:
		st.admitted++
	case clientRejShare:
		st.rejShare++
	case clientRejQueue:
		st.rejQueue++
	}
}

// snapshot renders the per-client counters for /metrics.
func (l *clientLedger) snapshot() map[string]any {
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make(map[string]any, len(l.clients))
	for name, st := range l.clients {
		out[name] = map[string]int64{
			"admitted":       st.admitted,
			"settled":        st.settled,
			"cost_held_ms":   st.held,
			"jobs_unsettled": int64(st.jobs),
			"rejected_rate":  st.rejRate,
			"rejected_share": st.rejShare,
			"rejected_queue": st.rejQueue,
		}
	}
	return out
}

// resolveClient derives the request's client identity: the body field
// wins, then the X-Magis-Client header, then the shared anonymous
// identity. Identities are length- and charset-bounded — they become map
// keys, metric labels, and log fields, so hostile bytes are rejected at
// the door.
func resolveClient(bodyClient, headerClient string) (string, error) {
	name := bodyClient
	if name == "" {
		name = headerClient
	}
	if name == "" {
		return anonClient, nil
	}
	if len(name) > 64 {
		return "", fmt.Errorf("client identity longer than 64 bytes")
	}
	for _, c := range name {
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9',
			c == '.', c == '_', c == '-':
		default:
			return "", fmt.Errorf("client identity contains %q: want [A-Za-z0-9._-]", c)
		}
	}
	return name, nil
}
