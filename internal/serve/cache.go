package serve

// The plan-cache path of the service. The flow per fresh (non-resume) job:
//
//	exact hit   -> answer from the verified entry, no search at all
//	miss        -> single-flight: the first request leads a real search,
//	               concurrent identical requests wait and share its result
//	near miss   -> the leader's search warm-starts from the cached plan
//	               (full replay when only the budget differed, fission-only
//	               replay across batch sizes)
//	completion  -> the result is offered back to the cache, which admits it
//	               only after re-verifying the plan numerically
//
// Every degradation is toward a plain cold search: a corrupt entry, a
// collision, a failed replay, or an aborted leader never surfaces as a
// wrong answer, only as more work.

import (
	"context"
	"errors"
	"sort"
	"sync"
	"time"

	"magis/internal/fsatomic"
	"magis/internal/models"
	"magis/internal/opt"
	"magis/internal/plancache"
)

// errFlightAborted is what waiters observe when a leader unwound (panic,
// process drain) without publishing a result.
var errFlightAborted = errors.New("serve: in-flight search aborted before publishing a result")

// cachedSearch is searchJob's fresh-job path when a plan cache is
// configured.
func (s *Server) cachedSearch(ctx context.Context, j *job, w *models.Workload, base *opt.State, o opt.Options) (*opt.Result, error) {
	start := time.Now()
	fp := plancache.FingerprintFor(s.cfg.Model, o)

	if hit, ok := s.cfg.Cache.Get(w.G, fp); ok {
		res, err := s.resultFromHit(j, base, hit)
		if err == nil {
			s.met.CacheHits.Add(1)
			s.hitLat.add(time.Since(start).Seconds())
			s.cfg.Logf("serve: %s served from cache (%s)", j.id, hit.Key)
			return res, nil
		}
		// A verified entry that fails to replay is as good as absent.
		s.cfg.Logf("serve: %s: cached plan %s failed to replay (%v); searching", j.id, hit.Key, err)
	}
	s.met.CacheMisses.Add(1)

	key := s.cfg.Cache.Key(w.G, fp)
	f, leader := s.cfg.Cache.Join(key)
	if !leader {
		s.met.FlightShared.Add(1)
		if res, ok, err := s.awaitFlight(ctx, j, f); ok {
			j.setCacheOutcome("shared")
			if err != nil && res == nil {
				// The waiter's own deadline fired mid-wait. It holds no
				// best-so-far of its own, but the baseline is servable — hand
				// it to the fallback ladder so a deadline-limited job can
				// settle degraded (TierBaseline) instead of failing outright.
				res = &opt.Result{Baseline: base, Stopped: opt.StopCancelled}
			}
			return res, err
		}
		// The leader aborted without a result; degrade to an independent
		// search rather than failing this job for another's death.
		s.cfg.Logf("serve: %s: shared search aborted; running independently", j.id)
		res, err := s.seededSearch(ctx, j, w, fp, o)
		if err == nil {
			s.admitPlan(j, w, fp, res)
		}
		return res, err
	}

	// Leader: publish whatever happens — even a panic unwinding through
	// here — so waiters never hang on a dead flight.
	res, err := (*opt.Result)(nil), errFlightAborted
	defer func() { f.Finish(res, err) }()
	res, err = s.seededSearch(ctx, j, w, fp, o)
	if err == nil {
		s.admitPlan(j, w, fp, res)
		s.missLat.add(time.Since(start).Seconds())
	}
	return res, err
}

// resultFromHit turns a cache hit into a finished search result: the
// recorded plan restored, carrying the metrics evaluated when it was
// admitted. The entry passed numeric verification at Put time and its
// bytes are checksummed on every read, so the hit is served without
// re-verification.
func (s *Server) resultFromHit(j *job, base *opt.State, hit *plancache.Hit) (*opt.Result, error) {
	st, err := hit.Plan.Seed()
	if err != nil {
		return nil, err
	}
	st.PeakMem = hit.PeakMem
	st.Latency = hit.Latency
	j.setCacheOutcome("hit")
	j.mu.Lock()
	j.verified = true
	j.mu.Unlock()
	return &opt.Result{Best: st, Baseline: base, Stopped: opt.StopConverged}, nil
}

// seededSearch runs the real search, warm-started from any near-miss
// cache entries: an entry for the identical graph (different budget)
// replays in full, a same-topology entry (different batch size) replays
// its fission state only. Seed replay is best-effort — failures log and
// the search runs cold.
func (s *Server) seededSearch(ctx context.Context, j *job, w *models.Workload, fp plancache.Fingerprint, o opt.Options) (*opt.Result, error) {
	var seeds []*opt.State
	for _, nh := range s.cfg.Cache.Near(w.G, fp) {
		var (
			st  *opt.State
			err error
		)
		if nh.SameGraph {
			st, err = nh.Plan.Seed()
		} else {
			st, err = nh.Plan.SeedFor(w.G)
		}
		if err != nil {
			s.cfg.Logf("serve: %s: warm seed %s: %v", j.id, nh.Key, err)
			continue
		}
		seeds = append(seeds, st)
	}
	if len(seeds) > 0 {
		s.met.CacheWarmStarts.Add(1)
		j.setCacheOutcome("warm")
	}
	res, err := opt.OptimizeSeeded(ctx, w.G, s.cfg.Model, o, seeds...)
	if err == nil && j.req.Verify {
		err = s.verifyResult(j, w.G, res)
	}
	return res, err
}

// admitPlan offers a finished search's best plan to the cache. Admission
// is gated: only uninterrupted, completed results are offered, and the
// cache re-verifies the plan before persisting. A refusal (failed
// verification, full disk) degrades to an uncached success — but a
// storage refusal also counts against persistence health: transient
// faults (fd exhaustion) get one immediate retry, persistent ones
// (disk full) go straight to the health machine.
func (s *Server) admitPlan(j *job, w *models.Workload, fp plancache.Fingerprint, res *opt.Result) {
	if res == nil || res.Best == nil || j.interruptedReason() != reasonNone {
		return
	}
	err := s.cfg.Cache.Put(w.G, fp, res.Best)
	if err != nil && errors.Is(err, plancache.ErrStorage) && fsatomic.Transient(err) {
		err = s.cfg.Cache.Put(w.G, fp, res.Best)
	}
	switch {
	case err == nil:
		s.storage.onOK()
	case errors.Is(err, plancache.ErrStorage):
		s.noteStorageFault("cache put", err)
	default:
		s.cfg.Logf("serve: %s: cache admission: %v", j.id, err)
	}
}

// awaitFlight waits for another request's in-flight search, touching the
// job's liveness signal so the watchdog does not mistake the wait for a
// stall. ok reports a usable outcome: a published result, or this job's
// own cancellation. A leader that aborted without publishing returns
// ok=false and the caller searches independently.
func (s *Server) awaitFlight(ctx context.Context, j *job, f *plancache.Flight) (*opt.Result, bool, error) {
	t := time.NewTicker(s.cfg.StallPoll)
	defer t.Stop()
	for {
		select {
		case <-f.Done():
			v, err := f.Result()
			if res, k := v.(*opt.Result); k && err == nil && res != nil {
				return res, true, nil
			}
			return nil, false, err
		case <-t.C:
			j.touch()
		case <-ctx.Done():
			return nil, true, ctx.Err()
		}
	}
}

// latRing is a bounded reservoir of recent latency samples; /metrics
// reports its percentiles. Fixed capacity keeps a long-lived server's
// memory flat while tracking the current regime.
type latRing struct {
	mu  sync.Mutex
	buf [256]float64
	n   int // samples stored (<= len(buf))
	idx int // next write position
}

func (r *latRing) add(sec float64) {
	r.mu.Lock()
	r.buf[r.idx] = sec
	r.idx = (r.idx + 1) % len(r.buf)
	if r.n < len(r.buf) {
		r.n++
	}
	r.mu.Unlock()
}

// percentiles reports p50/p90/p99 over the retained samples (zeros when
// empty, so the metrics shape is stable).
func (r *latRing) percentiles() map[string]float64 {
	r.mu.Lock()
	samples := append([]float64(nil), r.buf[:r.n]...)
	r.mu.Unlock()
	out := map[string]float64{"count": float64(len(samples)), "p50": 0, "p90": 0, "p99": 0}
	if len(samples) == 0 {
		return out
	}
	sort.Float64s(samples)
	at := func(p float64) float64 {
		i := int(p * float64(len(samples)-1))
		return samples[i]
	}
	out["p50"] = at(0.50)
	out["p90"] = at(0.90)
	out["p99"] = at(0.99)
	return out
}
