package serve

// Per-workload circuit breaker: a graph that repeatedly fails — verify
// rejections, rule panics, checkpoint corruption, injected faults — must
// not monopolize workers while healthy traffic starves. The breaker
// counts consecutive failures per workload key (model|scale|mode); at
// the threshold it opens, rejecting that workload at admission for a
// cooloff window. After the cooloff one probe request is admitted
// (half-open); its verdict closes the breaker or re-opens it for another
// window. Probes that settle without a verdict (shed, drain-cancelled)
// release the half-open slot so the breaker cannot wedge.

import (
	"fmt"
	"strings"
	"sync"
	"time"
)

type breakerEntry struct {
	fails     int       // consecutive failures while closed
	openUntil time.Time // zero when closed
	probing   bool      // a half-open probe is in flight
}

type breaker struct {
	mu        sync.Mutex
	threshold int // consecutive failures to trip; <=0 disables
	cooloff   time.Duration
	states    map[string]*breakerEntry
}

func newBreaker(threshold int, cooloff time.Duration) *breaker {
	return &breaker{
		threshold: threshold,
		cooloff:   cooloff,
		states:    map[string]*breakerEntry{},
	}
}

// breakerKey groups requests that exercise the same graph and search
// mode — the unit at which a poison workload fails.
func breakerKey(model string, scale float64, mode string) string {
	return fmt.Sprintf("%s|%g|%s", strings.ToLower(model), scale, mode)
}

// blocked reports whether admission must reject this workload now, with
// a Retry-After hint in seconds. When the cooloff has elapsed it admits
// exactly one caller as the half-open probe, reported via probe=true:
// that caller now owns the half-open slot and must settle it with a
// verdict (onSuccess/onFailure) or release it (onAbandon) on every other
// exit — including rejection later in admission — or the breaker wedges
// open forever.
func (b *breaker) blocked(key string, now time.Time) (retryAfter int, open, probe bool) {
	if b == nil || b.threshold <= 0 {
		return 0, false, false
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	e := b.states[key]
	if e == nil || e.openUntil.IsZero() {
		return 0, false, false
	}
	if now.Before(e.openUntil) {
		sec := int(e.openUntil.Sub(now)/time.Second) + 1
		return sec, true, false
	}
	if e.probing {
		// Half-open with a probe already in flight: hold further traffic
		// until the probe settles.
		return int(b.cooloff/time.Second) + 1, true, false
	}
	e.probing = true
	return 0, false, true
}

// onSuccess closes the workload's breaker and resets its failure streak.
func (b *breaker) onSuccess(key string) {
	if b == nil || b.threshold <= 0 {
		return
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	delete(b.states, key)
}

// onFailure records one failed job; it reports true when this failure
// trips (or re-trips) the breaker open.
func (b *breaker) onFailure(key string, now time.Time) bool {
	if b == nil || b.threshold <= 0 {
		return false
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	e := b.states[key]
	if e == nil {
		e = &breakerEntry{}
		b.states[key] = e
	}
	if e.probing {
		// Failed probe: straight back to open for another cooloff.
		e.probing = false
		e.openUntil = now.Add(b.cooloff)
		return true
	}
	e.fails++
	if e.fails >= b.threshold && e.openUntil.IsZero() {
		e.openUntil = now.Add(b.cooloff)
		return true
	}
	return false
}

// onAbandon releases a half-open probe that settled without a verdict
// (shed, cancelled by drain, deadline-expired, or rejected by a later
// admission gate before it ever queued): the breaker stays
// open-but-probeable so the next request becomes the new probe.
func (b *breaker) onAbandon(key string) {
	if b == nil || b.threshold <= 0 {
		return
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if e := b.states[key]; e != nil {
		e.probing = false
	}
}

// openCount reports how many workload breakers are not closed — open or
// half-open — for /metrics.
func (b *breaker) openCount() int {
	if b == nil || b.threshold <= 0 {
		return 0
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	n := 0
	for _, e := range b.states {
		if !e.openUntil.IsZero() {
			n++
		}
	}
	return n
}
