package serve

// Resource-aware admission: instead of counting queue slots, the server
// prices every request up-front — how long will this search actually
// take? — and admits against a concurrent-cost budget. The price depends
// on the workload's size (node count), the requested search budget, and
// what the plan cache already knows (an exact hit costs milliseconds, a
// warm start a fraction of a cold search). Admitted cost is held until
// the job settles, so the budget measures work-in-the-building, not
// arrival rate.

import (
	"fmt"
	"strings"
	"time"

	"magis/internal/graph"
	"magis/internal/models"
	"magis/internal/opt"
	"magis/internal/plancache"
)

// Estimated fixed overheads per admission class: a cache hit reads and
// replays one entry; searches additionally evaluate the baseline twice
// and write checkpoints.
const (
	hitServeCost    = 50 * time.Millisecond
	searchOverhead  = 100 * time.Millisecond
	warmStartFactor = 2 // warm starts are priced at 1/warmStartFactor of cold
)

// wlStats caches the per-(model, scale) facts admission needs: graph
// size, the probe hashes, and the baseline metrics the search limits
// derive from. Building a workload graph and evaluating its baseline
// costs milliseconds — fine once, not on every request of a hot model.
type wlStats struct {
	nodes   int
	wl      uint64
	topo    uint64
	baseMem int64
	baseLat float64
}

func (s *Server) workloadStats(name string, scale float64) (*wlStats, error) {
	key := fmt.Sprintf("%s|%g", strings.ToLower(name), scale)
	s.wlMu.Lock()
	st, ok := s.wlStats[key]
	s.wlMu.Unlock()
	if ok {
		return st, nil
	}
	w, err := models.ByName(name, scale)
	if err != nil {
		return nil, err
	}
	base := opt.Baseline(w.G, s.cfg.Model)
	st = &wlStats{
		nodes:   w.G.Len(),
		wl:      w.G.WLHash(),
		topo:    plancache.TopoHash(w.G),
		baseMem: base.PeakMem,
		baseLat: base.Latency,
	}
	s.wlMu.Lock()
	s.wlStats[key] = st
	s.wlMu.Unlock()
	return st, nil
}

// graphStats prices a direct graph submission. Deliberately NOT memoized:
// the cache key would be client-controlled graph content, and an attacker
// rotating graphs would grow the map without bound. The baseline
// evaluation runs under opt.Guard so a graph that slips past ingestion
// and still panics the evaluator fails its own request, not the server.
func (s *Server) graphStats(g *graph.Graph) (*wlStats, error) {
	var st *wlStats
	err := opt.Guard("serve", "graph-stats", func() error {
		base := opt.Baseline(g, s.cfg.Model)
		st = &wlStats{
			nodes:   g.Len(),
			wl:      g.WLHash(),
			topo:    plancache.TopoHash(g),
			baseMem: base.PeakMem,
			baseLat: base.Latency,
		}
		return nil
	})
	if err != nil {
		return nil, fmt.Errorf("graph baseline evaluation failed: %w", err)
	}
	return st, nil
}

// searchOptions builds the search configuration for a job from the
// workload's baseline metrics. Admission and the search runner share this
// one constructor so the fingerprint admission probes with is the
// fingerprint cachedSearch looks up — estimate and execution can never
// disagree about the cache key.
func (s *Server) searchOptions(j *job, baseMem int64, baseLat float64) opt.Options {
	o := opt.Options{
		TimeBudget:    j.budget,
		Workers:       j.req.Workers,
		MaxIterations: j.req.Iterations,
		// The service-wide memory budget rides into every search: a job
		// that outgrows it sheds frontier state and, at worst, settles
		// with its best-so-far (Stopped = "mem-budget") instead of
		// taking the process down.
		MemBudget: s.cfg.MemBudget,
	}
	switch j.req.Mode {
	case "latency":
		o.Mode = opt.LatencyUnderMemory
		o.MemLimit = int64(j.req.Limit * float64(baseMem))
	default:
		o.Mode = opt.MemoryUnderLatency
		o.LatencyLimit = baseLat * (1 + j.req.Limit)
	}
	return o
}

// estimateJob prices one fresh job: its cache class (index-only probe, no
// disk) and the predicted service time. The estimate errs pessimistic for
// searches (budget-bound searches that converge early cost less) and the
// class can only degrade hit→search at run time, so admission over-
// reserves rather than over-admits.
func (s *Server) estimateJob(j *job) error {
	var st *wlStats
	var err error
	if j.g != nil {
		st, err = s.graphStats(j.g)
	} else {
		st, err = s.workloadStats(j.req.Model, j.req.Scale)
	}
	if err != nil {
		return err
	}
	o := s.searchOptions(j, st.baseMem, st.baseLat)
	class := plancache.ClassCold
	if s.cfg.Cache != nil {
		class = s.cfg.Cache.Probe(st.wl, st.topo, plancache.FingerprintFor(s.cfg.Model, o))
	}
	full := opt.EstimateSearchTime(st.nodes, o)
	var serve time.Duration
	switch class {
	case plancache.ClassHit:
		serve = hitServeCost
	case plancache.ClassWarm:
		serve = full/warmStartFactor + searchOverhead
	default:
		serve = full + searchOverhead
	}
	j.class = class
	j.estServe = serve
	j.estUnits = costUnits(serve)
	// minServe is the floor for deadline feasibility, distinct from the
	// full-search price above: the search is anytime, so any deadline that
	// leaves room for the fixed overhead plus the initial baseline
	// evaluation and one expansion can still be answered — degraded,
	// best-so-far, but answered. Only deadlines below even that floor are
	// truly doomed.
	j.minServe = serve
	if class != plancache.ClassHit {
		j.minServe = searchOverhead + opt.EstimateSearchTime(st.nodes, opt.Options{
			TimeBudget:    -1, // uncapped: the single-expansion term is the cap
			Workers:       o.Workers,
			MaxIterations: 1,
		})
	}
	return nil
}

// costUnits converts a predicted service time to admission cost units
// (milliseconds, floored at 1 so even a free-looking job reserves
// something).
func costUnits(d time.Duration) int64 {
	u := int64(d / time.Millisecond)
	if u < 1 {
		u = 1
	}
	return u
}

// costTotals is the post-reservation snapshot holdCost returns: the
// global total in use plus the holding client's own totals, so admission
// can check both budgets from one reservation.
type costTotals struct {
	total      int64 // global cost units in use
	clientHeld int64 // this client's cost units in use
	clientJobs int   // this client's unsettled jobs
}

// holdCost reserves a job's estimated cost against the admission budget
// (and the per-client ledger) and returns the resulting totals;
// releaseCost returns the hold exactly once when the job settles.
// Reserving and reading the total in one atomic add lets admission check
// the budgets race-free (reserve, check, roll back on overshoot) instead
// of check-then-hold. A stall resume keeps its hold — the work is still
// in the building.
func (s *Server) holdCost(j *job) costTotals {
	j.mu.Lock()
	defer j.mu.Unlock()
	if !j.costHeld {
		j.costHeld = true
		held, jobs := s.clients.hold(j.client, j.estUnits, time.Now())
		return costTotals{
			total:      s.costInUse.Add(j.estUnits),
			clientHeld: held,
			clientJobs: jobs,
		}
	}
	return costTotals{total: s.costInUse.Load()}
}

func (s *Server) releaseCost(j *job) {
	j.mu.Lock()
	if j.costHeld {
		j.costHeld = false
		s.costInUse.Add(-j.estUnits)
		s.clients.release(j.client, j.estUnits)
	}
	j.mu.Unlock()
}

// admitClass bumps the per-class admission counter.
func (s *Server) admitClass(class plancache.Class) {
	switch class {
	case plancache.ClassHit:
		s.met.AdmittedHit.Add(1)
	case plancache.ClassWarm:
		s.met.AdmittedWarm.Add(1)
	default:
		s.met.AdmittedCold.Add(1)
	}
}

// retryAfter estimates when capacity frees up: the queued work divided
// across the workers, clamped to [1s, 60s]. A hint, not a promise — but a
// hint derived from the actual backlog beats a constant.
func (s *Server) retryAfter() int {
	queued := s.costInUse.Load()
	workers := int64(s.cfg.Workers)
	sec := queued / (1000 * workers)
	if sec < 1 {
		sec = 1
	}
	if sec > 60 {
		sec = 60
	}
	return int(sec)
}

// doomed reports that a job's client deadline can no longer be met even
// if a worker picked it up right now — not even by the weakest acceptable
// response (minServe: a hit replay, or a baseline-plus-one-expansion
// degraded answer). Deadline-less jobs are never doomed.
func doomed(j *job, now time.Time) bool {
	if j.deadline.IsZero() {
		return false
	}
	return now.Add(j.minServe).After(j.deadline)
}

// shedKind labels why a queued job was shed.
type shedKind int

const (
	shedExpired shedKind = iota // deadline unmeetable, drained from the queue
	shedEvicted                 // evicted to make room for more urgent work
)

// shedJob settles a queued job as shed without running it. Safe to call
// on a job another path already settled (it no-ops unless still queued).
func (s *Server) shedJob(j *job, kind shedKind) {
	j.mu.Lock()
	if j.state != stateQueued {
		j.mu.Unlock()
		return
	}
	j.state = stateShed
	j.finished = time.Now()
	switch kind {
	case shedEvicted:
		j.err = "shed: evicted under pressure for more urgent work"
	default:
		j.err = "shed: deadline cannot be met"
	}
	j.mu.Unlock()
	switch kind {
	case shedEvicted:
		s.met.ShedEvicted.Add(1)
	default:
		s.met.ShedExpired.Add(1)
	}
	// A shed probe settled without a verdict: release the half-open slot,
	// or the breaker waits forever on a probe that never ran.
	s.abandonProbe(j)
	s.releaseCost(j)
	s.cfg.Logf("serve: %s shed (%s)", j.id, j.err)
}

// shedExpiredQueued sweeps the queue for jobs whose deadline is already
// unmeetable, settling each as shed. Returns how many were removed. Runs
// at admission (to free room before rejecting) and on every watchdog
// tick (so expired work never waits for a worker just to be discarded).
func (s *Server) shedExpiredQueued() int {
	now := time.Now()
	removed := s.queue.removeIf(func(j *job) bool { return doomed(j, now) })
	for _, j := range removed {
		s.shedJob(j, shedExpired)
	}
	return len(removed)
}

// admitQueued pushes an estimated job into the queue, shedding doomed
// work first and — for deadline-urgent jobs — evicting the cheapest
// strictly-laxer queued job when the queue is still full. A per-client
// occupancy rejection short-circuits: the client is over its own slot
// allotment, so nobody else's work should be shed to accommodate it.
func (s *Server) admitQueued(j *job) pushVerdict {
	v := s.queue.push(j)
	if v != pushFull {
		return v
	}
	if s.shedExpiredQueued() > 0 {
		if v = s.queue.push(j); v != pushFull {
			return v
		}
	}
	if !j.deadline.IsZero() {
		// Cheapest-first eviction under pressure: among queued jobs that
		// are strictly less urgent (no deadline, or a later one), the one
		// with the smallest reserved cost is shed to make room.
		victim := s.queue.evictOne(func(q *job) bool {
			return q.deadline.IsZero() || q.deadline.After(j.deadline)
		}, func(q *job) int64 { return q.estUnits })
		if victim != nil {
			s.shedJob(victim, shedEvicted)
			if v = s.queue.push(j); v != pushFull {
				return v
			}
		}
	}
	return pushFull
}
