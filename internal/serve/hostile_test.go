package serve

// Hostile-traffic tests: strict request decoding, bounded bodies,
// untrusted graph ingestion at the /optimize boundary, and the per-client
// fairness gates (rate, fair-share cost, queue occupancy). The headline
// acceptance pin lives in TestGraphSubmissionMatchesNamedModel: a
// well-formed graph pushed through the whole ingestion pipeline must
// produce a plan bit-identical to the same workload requested by name.

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"magis/internal/graphio"
	"magis/internal/ingest"
	"magis/internal/models"
	"magis/internal/opt"
)

// graphDoc serializes a workload's graph as the graphio file envelope —
// the exact bytes a client would put in the request's "graph" field.
func graphDoc(t *testing.T, name string) string {
	t.Helper()
	w, err := models.ByName(name, 1)
	if err != nil {
		t.Fatal(err)
	}
	var buf strings.Builder
	if err := graphio.Save(&buf, w.G, nil); err != nil {
		t.Fatal(err)
	}
	return buf.String()
}

// postAs submits a body with an X-Magis-Client header.
func postAs(t *testing.T, ts *httptest.Server, client, body string) (int, map[string]any) {
	t.Helper()
	req, err := http.NewRequest(http.MethodPost, ts.URL+"/optimize", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	if client != "" {
		req.Header.Set("X-Magis-Client", client)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var m map[string]any
	_ = json.NewDecoder(resp.Body).Decode(&m)
	return resp.StatusCode, m
}

// TestStrictRequestDecode pins the request-body contract: unknown fields
// are named in a 400, syntax errors are 400, and every rejection carries
// a machine-readable reason.
func TestStrictRequestDecode(t *testing.T) {
	s := New(Config{Model: testModel(), StallWindow: -1})
	s.runSearch = func(ctx context.Context, j *job) (*opt.Result, error) {
		return tinyResult(opt.StopConverged), nil
	}
	s.Start()
	defer drainServer(t, s)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	cases := []struct {
		name   string
		body   string
		reason string
	}{
		{"unknown field", `{"model":"mlp","bogus":1}`, "unknown-field"},
		{"syntax error", `{"model":`, "syntax"},
		{"trailing garbage is tolerated by stream decode", `{"model":"nope"}`, "invalid"},
		{"graph and model both", `{"model":"mlp","graph":{"magic":"magis-graph"}}`, "invalid"},
		{"scale on graph job", fmt.Sprintf(`{"graph":%s,"scale":0.5}`, graphDoc(t, "mlp")), "invalid"},
		{"hostile client identity", `{"model":"mlp","client":"a b"}`, "client"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			code, body := post(t, ts, tc.body)
			if code != http.StatusBadRequest {
				t.Fatalf("status %d (%v), want 400", code, body)
			}
			if body["reason"] != tc.reason {
				t.Fatalf("reason %q (%v), want %q", body["reason"], body, tc.reason)
			}
		})
	}

	// The unknown-field error must name the field, so a typo'd request is
	// diagnosable from the response alone.
	_, body := post(t, ts, `{"model":"mlp","bogus":1}`)
	if !strings.Contains(fmt.Sprint(body["error"]), "bogus") {
		t.Fatalf("unknown-field error does not name the field: %v", body["error"])
	}
}

// TestMaxBodyRejectsOversized pins the 413 path: a body past MaxBody is
// refused before the decoder allocates, with reason "too-large".
func TestMaxBodyRejectsOversized(t *testing.T) {
	s := New(Config{Model: testModel(), StallWindow: -1, MaxBody: 512})
	s.Start()
	defer drainServer(t, s)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	big := `{"model":"mlp","budget":"` + strings.Repeat("x", 1024) + `"}`
	code, body := post(t, ts, big)
	if code != http.StatusRequestEntityTooLarge {
		t.Fatalf("status %d (%v), want 413", code, body)
	}
	if body["reason"] != "too-large" {
		t.Fatalf("reason %q, want too-large", body["reason"])
	}
	if s.met.RejectedTooLarge.Load() != 1 {
		t.Fatalf("rejected_too_large = %d, want 1", s.met.RejectedTooLarge.Load())
	}
}

// TestGraphSubmissionMatchesNamedModel is the fidelity acceptance pin: a
// well-formed graph document pushed through ingestion (strict decode,
// limits, preflight) must settle with a plan bit-identical to the same
// workload requested by name. Deterministic search settings (one worker,
// fixed iteration cap) make the comparison exact.
func TestGraphSubmissionMatchesNamedModel(t *testing.T) {
	s := New(Config{Model: testModel(), StallWindow: -1, Workers: 1})
	s.Start()
	defer drainServer(t, s)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	run := func(body string) map[string]any {
		t.Helper()
		code, v := post(t, ts, body)
		if code != http.StatusAccepted {
			t.Fatalf("status %d (%v), want 202", code, v)
		}
		id := v["id"].(string)
		var last map[string]any
		waitFor(t, "job "+id, func() bool {
			_, last = get(t, ts, "/jobs/"+id)
			return last["state"] == stateDone || last["state"] == stateFailed
		})
		if last["state"] != stateDone {
			t.Fatalf("job settled %v: %v", last["state"], last["error"])
		}
		res, _ := last["result"].(map[string]any)
		if res == nil {
			t.Fatalf("job %s has no result: %v", id, last)
		}
		return res
	}

	settings := `"mode":"mem","limit":0.10,"iterations":30,"workers":1,"budget":"30s"`
	named := run(fmt.Sprintf(`{"model":"mlp",%s}`, settings))
	direct := run(fmt.Sprintf(`{"graph":%s,%s}`, graphDoc(t, "mlp"), settings))

	for _, k := range []string{"peak_mem_bytes", "latency_sec", "iterations"} {
		if named[k] != direct[k] {
			t.Fatalf("%s diverged: named %v, graph %v", k, named[k], direct[k])
		}
	}
}

// TestGraphSubmissionRejectsHostileDocuments drives hostile graph bodies
// through /optimize and asserts each is refused with the ingest-assigned
// status and reason — never a 5xx, never an admitted job.
func TestGraphSubmissionRejectsHostileDocuments(t *testing.T) {
	s := New(Config{Model: testModel(), StallWindow: -1})
	s.Start()
	defer drainServer(t, s)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	cases := []struct {
		name   string
		graph  string
		code   int
		reason string
	}{
		{"not an object", `[1,2,3]`, 400, "syntax"},
		{"wrong magic", `{"magic":"evil","version":1,"nodes":[]}`, 400, "header"},
		{"unknown envelope field", `{"magic":"magis-graph","version":1,"nodes":[],"exploit":1}`, 400, "unknown-field"},
		{"duplicate id", `{"magic":"magis-graph","version":1,"nodes":[
			{"id":1,"op":{"kind":"Input","out":[2],"dtype":0}},
			{"id":1,"op":{"kind":"Input","out":[2],"dtype":0}}]}`, 400, "duplicate-id"},
		{"dangling input", `{"magic":"magis-graph","version":1,"nodes":[
			{"id":1,"op":{"kind":"ReLU","ins":[[2]],"out":[2],"dtype":0,"links":[[{"In":1,"Out":1}]]},"ins":[99]}]}`, 400, "dangling-input"},
		{"unknown dtype", `{"magic":"magis-graph","version":1,"nodes":[
			{"id":1,"op":{"kind":"Input","out":[2],"dtype":99}}]}`, 400, "dtype"},
		{"shape overflow", `{"magic":"magis-graph","version":1,"nodes":[
			{"id":1,"op":{"kind":"Input","out":[2147483647,2147483647,2147483647],"dtype":0}}]}`, 400, "bad-shape"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			code, body := post(t, ts, fmt.Sprintf(`{"graph":%s}`, tc.graph))
			if code != tc.code {
				t.Fatalf("status %d (%v), want %d", code, body, tc.code)
			}
			if body["reason"] != tc.reason {
				t.Fatalf("reason %q (%v), want %q", body["reason"], body["error"], tc.reason)
			}
		})
	}
	if got := s.met.Admitted.Load(); got != 0 {
		t.Fatalf("hostile documents admitted %d jobs, want 0", got)
	}
}

// TestGraphSubmissionRejectsSearchBombs pins the preflight: under a tiny
// expansion-cost ceiling every real graph is a "search bomb" and rejects
// with 422 + reason search-bomb before any cost is held.
func TestGraphSubmissionRejectsSearchBombs(t *testing.T) {
	s := New(Config{
		Model:       testModel(),
		StallWindow: -1,
		Ingest:      ingest.Limits{MaxExpansionCost: time.Nanosecond},
	})
	s.Start()
	defer drainServer(t, s)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	code, body := post(t, ts, fmt.Sprintf(`{"graph":%s}`, graphDoc(t, "mlp")))
	if code != http.StatusUnprocessableEntity {
		t.Fatalf("status %d (%v), want 422", code, body)
	}
	if body["reason"] != string(ingest.ReasonSearchBomb) {
		t.Fatalf("reason %q, want %s", body["reason"], ingest.ReasonSearchBomb)
	}
	if s.met.RejectedBomb.Load() != 1 {
		t.Fatalf("rejected_bomb = %d, want 1", s.met.RejectedBomb.Load())
	}
	if held := s.costInUse.Load(); held != 0 {
		t.Fatalf("rejected bomb left %d cost units held", held)
	}
}

// TestClientRateLimit pins the token bucket: a client that exhausts its
// burst collects 429 "client-rate" with a Retry-After hint while a
// different client identity sails through.
func TestClientRateLimit(t *testing.T) {
	s := New(Config{
		Model: testModel(), StallWindow: -1, QueueDepth: 64,
		ClientRate: 0.001, ClientBurst: 2,
	})
	s.runSearch = func(ctx context.Context, j *job) (*opt.Result, error) {
		return tinyResult(opt.StopConverged), nil
	}
	s.Start()
	defer drainServer(t, s)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	for i := 0; i < 2; i++ {
		if code, body := postAs(t, ts, "bully", `{"model":"mlp"}`); code != http.StatusAccepted {
			t.Fatalf("bully request %d: status %d (%v), want 202", i, code, body)
		}
	}
	code, body := postAs(t, ts, "bully", `{"model":"mlp"}`)
	if code != http.StatusTooManyRequests || body["reason"] != "client-rate" {
		t.Fatalf("over-rate bully: status %d reason %q (%v), want 429 client-rate", code, body["reason"], body)
	}
	if code, body := postAs(t, ts, "good", `{"model":"mlp"}`); code != http.StatusAccepted {
		t.Fatalf("good client blocked by bully's rate: status %d (%v)", code, body)
	}
	if s.met.RejectedClientRate.Load() == 0 {
		t.Fatal("rejected_client_rate not counted")
	}
}

// TestClientShareIsolation pins the fair-share ledger: one client may not
// hold more than its configured slice of the admission budget while other
// clients still fit comfortably. The idle-client single-job exception is
// pinned too: the client's first job always lands.
func TestClientShareIsolation(t *testing.T) {
	release := make(chan struct{})
	s := New(Config{
		Model: testModel(), StallWindow: -1, Workers: 1, QueueDepth: 16,
		DefaultBudget: time.Second,
		AdmitBudget:   time.Hour,  // global budget never binds here
		ClientShare:   0.00034,    // ~1.2s of the hour: one ~1.1s job fits, two do not
	})
	s.runSearch = func(ctx context.Context, j *job) (*opt.Result, error) {
		select {
		case <-release:
		case <-ctx.Done():
		}
		return tinyResult(opt.StopConverged), nil
	}
	s.Start()
	defer func() { close(release); drainServer(t, s) }()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	if code, body := postAs(t, ts, "bully", `{"model":"mlp"}`); code != http.StatusAccepted {
		t.Fatalf("bully's first job: status %d (%v), want 202 (idle exception)", code, body)
	}
	code, body := postAs(t, ts, "bully", `{"model":"mlp"}`)
	if code != http.StatusTooManyRequests || body["reason"] != "client-share" {
		t.Fatalf("bully's second job: status %d reason %q (%v), want 429 client-share", code, body["reason"], body)
	}
	if code, body := postAs(t, ts, "good", `{"model":"mlp"}`); code != http.StatusAccepted {
		t.Fatalf("good client blocked by bully's share: status %d (%v)", code, body)
	}

	// The rejected hold must have been rolled back: global cost in use is
	// exactly the two admitted jobs.
	if s.met.RejectedClientShare.Load() != 1 {
		t.Fatalf("rejected_client_share = %d, want 1", s.met.RejectedClientShare.Load())
	}
}

// TestClientQueueCap pins per-client queue occupancy: with ClientQueue=1,
// a client's second queued job is refused ("client-queue") without
// evicting anyone, while another client still gets a slot.
func TestClientQueueCap(t *testing.T) {
	started := make(chan struct{}, 4)
	release := make(chan struct{})
	s := New(Config{
		Model: testModel(), StallWindow: -1, Workers: 1, QueueDepth: 8,
		AdmitBudget: time.Hour, ClientQueue: 1,
	})
	s.runSearch = func(ctx context.Context, j *job) (*opt.Result, error) {
		started <- struct{}{}
		select {
		case <-release:
		case <-ctx.Done():
		}
		return tinyResult(opt.StopConverged), nil
	}
	s.Start()
	defer func() { close(release); drainServer(t, s) }()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	// Job 1 occupies the worker, job 2 takes bully's one queue slot.
	if code, _ := postAs(t, ts, "bully", `{"model":"mlp"}`); code != http.StatusAccepted {
		t.Fatal("bully job 1 not admitted")
	}
	<-started
	if code, _ := postAs(t, ts, "bully", `{"model":"mlp"}`); code != http.StatusAccepted {
		t.Fatal("bully job 2 not admitted")
	}
	code, body := postAs(t, ts, "bully", `{"model":"mlp"}`)
	if code != http.StatusTooManyRequests || body["reason"] != "client-queue" {
		t.Fatalf("bully job 3: status %d reason %q (%v), want 429 client-queue", code, body["reason"], body)
	}
	if code, body := postAs(t, ts, "good", `{"model":"mlp"}`); code != http.StatusAccepted {
		t.Fatalf("good client blocked by bully's queue cap: status %d (%v)", code, body)
	}
	if s.met.ShedEvicted.Load() != 0 {
		t.Fatalf("client-queue rejection evicted %d victims, want 0", s.met.ShedEvicted.Load())
	}
}

// TestFloodFairness floods the server from one client while a well-behaved
// client trickles requests, asserting — under the race detector in CI —
// that the good client's success rate holds at 100% and nobody ever sees
// a 5xx. This is the in-process twin of the magis-bench hostile phase.
func TestFloodFairness(t *testing.T) {
	s := New(Config{
		Model: testModel(), StallWindow: -1, Workers: 2, QueueDepth: 64,
		AdmitBudget: time.Hour,
		ClientRate:  5, ClientBurst: 3, ClientQueue: 4,
	})
	s.runSearch = func(ctx context.Context, j *job) (*opt.Result, error) {
		return tinyResult(opt.StopConverged), nil
	}
	s.Start()
	defer drainServer(t, s)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	var wg sync.WaitGroup
	var server5xx, bullyOK atomic.Int32
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 80; i++ {
			code, _ := postAs(t, ts, "bully", `{"model":"mlp"}`)
			if code >= 500 {
				server5xx.Add(1)
			}
			if code == http.StatusAccepted {
				bullyOK.Add(1)
			}
		}
	}()

	goodOK := 0
	for i := 0; i < 10; i++ {
		// Paced inside the good client's own rate: 5 rps, burst 3.
		time.Sleep(250 * time.Millisecond)
		code, body := postAs(t, ts, "good", `{"model":"mlp"}`)
		if code == http.StatusAccepted {
			goodOK++
		} else if code >= 500 {
			t.Errorf("good client got 5xx %d: %v", code, body)
		}
	}
	wg.Wait()

	if server5xx.Load() != 0 {
		t.Fatalf("flood produced %d server errors", server5xx.Load())
	}
	if goodOK != 10 {
		t.Fatalf("good client succeeded %d/10 during the flood", goodOK)
	}
	// The bully was throttled, not starved: some admitted, many rejected.
	if n := bullyOK.Load(); n == 0 || n >= 80 {
		t.Fatalf("bully admitted %d/80, want throttled middle ground", n)
	}

	// Per-client accounting made it to /metrics.
	_, m := get(t, ts, "/metrics")
	clients, _ := m["clients"].(map[string]any)
	if clients["bully"] == nil || clients["good"] == nil {
		t.Fatalf("per-client metrics missing: %v", m["clients"])
	}
}
