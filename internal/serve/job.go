package serve

import (
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"

	"magis/internal/fsatomic"
	"magis/internal/graph"
	"magis/internal/models"
	"magis/internal/opt"
	"magis/internal/plancache"
	"magis/internal/robust"
	"magis/internal/verify"
)

// searchFn runs one job's search. The Server's default is searchJob; tests
// substitute their own to control timing without real optimization work.
type searchFn func(ctx context.Context, j *job) (*opt.Result, error)

// Job states. A cancelled job whose checkpoint survived is resumable: a
// restarted server re-admits it from the snapshot.
const (
	stateQueued    = "queued"
	stateRunning   = "running"
	stateDone      = "done"
	stateFailed    = "failed"
	stateCancelled = "cancelled"
	// stateShed marks a job removed from the queue without running: its
	// deadline became unmeetable, or it was evicted to make room for more
	// urgent work under pressure.
	stateShed = "shed"
)

// interruptReason distinguishes why a job's context was cancelled, which
// decides its post-mortem: drain leaves a resumable checkpoint behind, a
// first stall re-admits the job to resume immediately.
type interruptReason int

const (
	reasonNone interruptReason = iota
	reasonDrain
	reasonStall
)

func (r interruptReason) String() string {
	switch r {
	case reasonDrain:
		return "draining"
	case reasonStall:
		return "stalled"
	default:
		return "none"
	}
}

type job struct {
	id     string
	req    OptimizeRequest
	budget time.Duration
	// client is the admission identity this job's cost is charged to
	// (anonClient when the request declared none); immutable after
	// admission.
	client string
	// g is the ingested graph for direct graph submissions (nil for
	// built-in model jobs); wlName is the workload identity used for
	// logging, breaker keys, and checkpoint labels — the model name, or
	// graph-<hash> for uploads. Both immutable after admission.
	g      *graph.Graph
	wlName string
	// deadline is the client's absolute response deadline (zero = none);
	// immutable after admission, it orders the EDF queue and drives
	// shedding and degraded responses.
	deadline time.Time
	// seq is the queue admission sequence (set by jobQueue.push; EDF
	// tiebreak).
	seq int64
	// estServe/estUnits are the admission estimate: predicted service time
	// and its cost in budget units; minServe is the feasibility floor (the
	// weakest acceptable response — hit replay or degraded best-so-far);
	// class is the plan-cache classification the estimate was based on.
	// All immutable after estimateJob.
	estServe time.Duration
	estUnits int64
	minServe time.Duration
	class    plancache.Class
	// probe marks the job admitted as its workload's half-open breaker
	// probe (immutable after admission): if it settles without a verdict —
	// shed, cancelled, rejected by a later admission gate, or truncated by
	// the client's deadline — abandonProbe must release the half-open slot
	// or the breaker wedges open forever.
	probe bool

	mu sync.Mutex
	// costHeld tracks whether estUnits is currently counted against the
	// server's admission budget (released exactly once on settle).
	costHeld bool
	// deadlineLimited records that the client deadline — not the search's
	// own budget — bounded the run; only then is a deadline-stopped result
	// a degraded response.
	deadlineLimited bool
	// degradedStorage records that persistence was unavailable when this
	// job ran: it searched uncached and uncheckpointed, and its summary
	// carries the degraded_storage label.
	degradedStorage bool
	// resumePath, when non-empty, tells the runner to continue from an
	// existing snapshot instead of starting a fresh search.
	resumePath   string
	resumes      int
	state        string
	created      time.Time
	started      time.Time
	finished     time.Time
	cancel       context.CancelFunc
	interrupted  interruptReason
	expansions   int
	lastProgress time.Time
	err          string
	verified     bool
	cacheOutcome string
	summary      *jobSummary
}

// jobSummary is the result payload of a finished job.
type jobSummary struct {
	PeakMemBytes int64   `json:"peak_mem_bytes"`
	LatencySec   float64 `json:"latency_sec"`
	Iterations   int     `json:"iterations"`
	Stopped      string  `json:"stopped"`
	// Verified reports that the plan passed numeric verification (only
	// present when the request opted in).
	Verified bool `json:"verified,omitempty"`
	// Cache reports how the plan cache served this job: "hit" (answered
	// from a verified entry, no search), "warm" (search seeded from a
	// near miss), or "shared" (joined another request's in-flight
	// search). Empty means a plain search.
	Cache string `json:"cache,omitempty"`
	// Degraded marks an anytime response: the client deadline truncated
	// the search and this is the strongest servable tier, not a converged
	// plan. DegradedTier names the fallback rung served (see
	// internal/robust: "best-so-far" or "baseline").
	Degraded     bool   `json:"degraded,omitempty"`
	DegradedTier string `json:"degraded_tier,omitempty"`
	// DegradedStorage marks a job that ran while persistence was
	// unhealthy: the answer is a full-fidelity search result, but it was
	// neither cached nor checkpointed (no crash-resume for this run).
	DegradedStorage bool `json:"degraded_storage,omitempty"`
}

// jobView is the JSON shape of /jobs/{id}.
type jobView struct {
	ID         string      `json:"id"`
	State      string      `json:"state"`
	Model      string      `json:"model"`
	Client     string      `json:"client,omitempty"`
	Mode       string      `json:"mode,omitempty"`
	BudgetSec  float64     `json:"budget_sec"`
	Created    time.Time   `json:"created"`
	Started    *time.Time  `json:"started,omitempty"`
	Finished   *time.Time  `json:"finished,omitempty"`
	Expansions int         `json:"expansions"`
	Resumes    int         `json:"resumes,omitempty"`
	Resumable  bool        `json:"resumable,omitempty"`
	Error      string      `json:"error,omitempty"`
	Result     *jobSummary `json:"result,omitempty"`
}

// progress records one completed expansion; the watchdog reads
// lastProgress to tell a working search from a stalled one.
func (j *job) progress(completed int) {
	j.mu.Lock()
	j.expansions = completed
	j.lastProgress = time.Now()
	j.mu.Unlock()
}

// touch refreshes the liveness signal without claiming an expansion; jobs
// waiting on another request's in-flight search use it so the watchdog
// does not read the wait as a stall.
func (j *job) touch() {
	j.mu.Lock()
	j.lastProgress = time.Now()
	j.mu.Unlock()
}

func (j *job) interruptedReason() interruptReason {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.interrupted
}

func (j *job) setCacheOutcome(o string) {
	j.mu.Lock()
	j.cacheOutcome = o
	j.mu.Unlock()
}

// interrupt cancels the job for the given reason. A running job keeps its
// state until the runner observes the cancellation; a still-queued job is
// finished on the spot. Returns whether a queued job was cancelled here.
func (j *job) interrupt(r interruptReason) bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	switch j.state {
	case stateQueued:
		j.state = stateCancelled
		j.interrupted = r
		j.finished = time.Now()
		j.err = "cancelled before start: " + r.String()
		return true
	case stateRunning:
		j.interrupted = r
		if j.cancel != nil {
			j.cancel()
		}
	}
	return false
}

// workloadName is the job's workload identity: the model name for
// built-in jobs, graph-<hash> for direct graph submissions.
func (j *job) workloadName() string {
	if j.wlName != "" {
		return j.wlName
	}
	return j.req.Model
}

// graphWorkloadName derives the workload identity of an uploaded graph
// from its structural hash, so identical uploads share a breaker and a
// log identity without trusting any client-supplied name.
func graphWorkloadName(g *graph.Graph) string {
	return fmt.Sprintf("graph-%016x", g.WLHash())
}

func (s *Server) newJob(req OptimizeRequest, budget time.Duration, client string, g *graph.Graph) *job {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.nextID++
	j := &job{
		id:      fmt.Sprintf("job-%d", s.nextID),
		req:     req,
		budget:  budget,
		client:  client,
		g:       g,
		wlName:  req.Model,
		state:   stateQueued,
		created: time.Now(),
	}
	if g != nil {
		j.wlName = graphWorkloadName(g)
	}
	s.jobs[j.id] = j
	return j
}

// forget unregisters a job that was never admitted (queue full).
func (s *Server) forget(j *job) {
	s.mu.Lock()
	delete(s.jobs, j.id)
	s.mu.Unlock()
}

func (s *Server) jobView(j *job) jobView {
	j.mu.Lock()
	defer j.mu.Unlock()
	v := jobView{
		ID:         j.id,
		State:      j.state,
		Model:      j.workloadName(),
		Client:     j.client,
		Mode:       j.req.Mode,
		BudgetSec:  j.budget.Seconds(),
		Created:    j.created,
		Expansions: j.expansions,
		Resumes:    j.resumes,
		Error:      j.err,
		Result:     j.summary,
	}
	if !j.started.IsZero() {
		t := j.started
		v.Started = &t
	}
	if !j.finished.IsZero() {
		t := j.finished
		v.Finished = &t
	}
	if j.state == stateCancelled {
		v.Resumable = j.resumePath != "" || s.checkpointExists(j)
	}
	return v
}

// worker pops jobs in deadline order until the queue closes (drain). A
// popped job whose deadline became unmeetable while it waited is shed
// here — the queue never hands doomed work to a search.
func (s *Server) worker() {
	defer s.wg.Done()
	for {
		j, ok := s.queue.pop()
		if !ok {
			return
		}
		if doomed(j, time.Now()) {
			s.shedJob(j, shedExpired)
			continue
		}
		s.runJob(j)
	}
}

// flushQueue cancels every still-queued job; safe to call from several
// goroutines.
func (s *Server) flushQueue() {
	for _, j := range s.queue.drainAll() {
		if j.interrupt(reasonDrain) {
			s.met.Cancelled.Add(1)
		}
		s.abandonProbe(j)
		s.releaseCost(j)
	}
}

// abandonProbe releases a job's half-open breaker slot when — and only
// when — this job was admitted as its workload's probe and settled
// without delivering a verdict. Gating on j.probe keeps an abandoned
// non-probe job of the same workload from releasing a slot a different
// in-flight probe still owns. Safe to call repeatedly.
func (s *Server) abandonProbe(j *job) {
	if j.probe {
		s.brk.onAbandon(breakerKey(j.workloadName(), j.req.Scale, j.req.Mode))
	}
}

// runJob executes one job under panic isolation with a deadline derived
// from its requested budget (the search's own TimeBudget plus slack for
// baseline evaluation and checkpoint writes), tightened to the client
// deadline when one is set.
func (s *Server) runJob(j *job) {
	start := time.Now()
	natural := start.Add(j.budget + j.budget/2 + 5*time.Second)
	deadline := natural
	// deadlineLimited is recorded only when the client deadline undercuts
	// the search's own TimeBudget: then — and only then — a
	// deadline-stopped result means the client truncated the search, not
	// that the budget ran its course.
	deadlineLimited := false
	if !j.deadline.IsZero() && j.deadline.Before(natural) {
		deadline = j.deadline
		deadlineLimited = j.deadline.Before(start.Add(j.budget))
	}
	ctx, cancel := context.WithDeadline(context.Background(), deadline)
	defer cancel()

	j.mu.Lock()
	if j.state != stateQueued { // cancelled while queued, drain race
		j.mu.Unlock()
		return
	}
	j.state = stateRunning
	j.started = start
	j.lastProgress = j.started
	j.cancel = cancel
	j.deadlineLimited = deadlineLimited
	j.mu.Unlock()

	// Storage gate: while persistence is degraded the job still runs — it
	// just skips the cache and checkpointing, and says so in its summary.
	// The gate sits here (not inside searchJob) so every searchFn,
	// including test doubles, observes the same decision.
	if !s.storageAllowed() {
		j.mu.Lock()
		j.degradedStorage = true
		j.mu.Unlock()
		s.met.StorageDegradedJobs.Add(1)
		s.cfg.Logf("serve: %s running with degraded storage (uncached, uncheckpointed)", j.id)
	}

	s.inFlight.Add(1)
	defer s.inFlight.Add(-1)

	// opt.Guard converts a panicking search into an error: the job fails,
	// the service survives.
	var res *opt.Result
	err := opt.Guard("serve", "job "+j.id, func() error {
		var serr error
		res, serr = s.runSearch(ctx, j)
		return serr
	})
	s.finishJob(j, res, err)
}

// finishJob settles a job's final state and decides whether an interrupted
// one comes back: a first stall with a checkpoint is re-admitted to resume;
// drain leaves the checkpoint for the next incarnation of the server. Every
// settle path reports the workload's verdict to its circuit breaker:
// failure, success, or — when the settle carries no verdict (shed, drained,
// or cut short by the client's own deadline rather than by the workload) —
// an abandoned probe, so the half-open state can never wedge. It also
// releases the job's admission cost exactly once;
// only a successful stall re-queue keeps the cost held, because the work is
// still in the building.
func (s *Server) finishJob(j *job, res *opt.Result, err error) {
	j.mu.Lock()
	reason := j.interrupted
	resumes := j.resumes
	j.cancel = nil
	j.finished = time.Now()
	j.mu.Unlock()
	s.noteSearchTelemetry(res)
	bkey := breakerKey(j.workloadName(), j.req.Scale, j.req.Mode)

	switch {
	case err != nil:
		if errors.Is(err, context.DeadlineExceeded) || errors.Is(err, context.Canceled) {
			// The client's clock (or a cancellation) bit, not the workload:
			// a tight-deadline client on a healthy slow workload is no
			// failure streak. No verdict either way — just release the
			// half-open slot if this job was the probe.
			s.abandonProbe(j)
		} else if s.brk.onFailure(bkey, time.Now()) {
			// Genuine search/verify failures count regardless of what
			// happens next: a workload that only ever limps home on a
			// fallback tier must still trip.
			s.met.BreakerTrips.Add(1)
			s.cfg.Logf("serve: breaker opened for %s", bkey)
		}
		// A deadline-limited search that errored (typically: best-so-far
		// failed verification after truncation) may still hold a servable
		// tier; degradedFallback re-verifies before letting it out.
		if any := s.degradedFallback(j, res, err); any != nil {
			s.settleDegraded(j, res, any)
			s.releaseCost(j)
			s.cfg.Logf("serve: %s degraded to %s after error: %v", j.id, any.Tier, err)
			return
		}
		j.mu.Lock()
		j.state = stateFailed
		j.err = err.Error()
		j.mu.Unlock()
		s.met.Failed.Add(1)
		s.releaseCost(j)
		s.cfg.Logf("serve: %s failed: %v", j.id, err)

	case reason == reasonStall && resumes < 1 && s.checkpointExists(j):
		s.met.Stalled.Add(1)
		if s.requeueResume(j) {
			return
		}
		s.setCancelled(j, "stalled; could not re-admit for resume")
		s.abandonProbe(j)
		s.releaseCost(j)

	case reason != reasonNone:
		if reason == reasonStall {
			s.met.Stalled.Add(1)
		}
		s.setCancelled(j, "cancelled: "+reason.String())
		s.abandonProbe(j)
		s.releaseCost(j)

	default:
		if any := s.degradedFallback(j, res, nil); any != nil {
			s.settleDegraded(j, res, any)
			s.brk.onSuccess(bkey)
			s.releaseCost(j)
			s.removeCheckpoint(j)
			s.cfg.Logf("serve: %s done (degraded: %s)", j.id, any.Tier)
			return
		}
		j.mu.Lock()
		j.state = stateDone
		if res != nil && res.Best != nil {
			stopped := res.Stopped.String()
			if j.cacheOutcome == "hit" {
				stopped = "cache-hit"
			}
			j.summary = &jobSummary{
				PeakMemBytes:    res.Best.PeakMem,
				LatencySec:      res.Best.Latency,
				Iterations:      res.Stats.Iterations,
				Stopped:         stopped,
				Verified:        j.verified,
				Cache:           j.cacheOutcome,
				DegradedStorage: j.degradedStorage,
			}
		}
		j.mu.Unlock()
		s.met.Completed.Add(1)
		s.brk.onSuccess(bkey)
		s.releaseCost(j)
		s.removeCheckpoint(j)
		s.cfg.Logf("serve: %s done", j.id)
	}
}

// settleDegraded finishes a job as done with a degraded anytime summary:
// the served plan is a fallback tier, labeled as such, never passed off as
// a converged result.
func (s *Server) settleDegraded(j *job, res *opt.Result, any *robust.Anytime) {
	j.mu.Lock()
	j.state = stateDone
	j.err = ""
	sum := &jobSummary{
		Stopped:         "deadline",
		Verified:        any.Verified,
		Cache:           j.cacheOutcome,
		Degraded:        true,
		DegradedTier:    any.Tier,
		DegradedStorage: j.degradedStorage,
	}
	if any.State != nil {
		sum.PeakMemBytes = any.State.PeakMem
		sum.LatencySec = any.State.Latency
	}
	if res != nil {
		sum.Iterations = res.Stats.Iterations
		if res.Stopped != opt.StopUnknown {
			sum.Stopped = res.Stopped.String()
		}
	}
	j.summary = sum
	j.mu.Unlock()
	s.met.Completed.Add(1)
	s.met.Degraded.Add(1)
}

func (s *Server) setCancelled(j *job, msg string) {
	j.mu.Lock()
	j.state = stateCancelled
	j.err = msg
	j.mu.Unlock()
	s.met.Cancelled.Add(1)
	if s.checkpointExists(j) {
		s.cfg.Logf("serve: %s cancelled; checkpoint retained for resume", j.id)
	} else {
		s.cfg.Logf("serve: %s cancelled", j.id)
	}
}

// requeueResume re-admits a stalled job to continue from its checkpoint.
// Admission stays non-blocking: a full queue or a draining server refuses,
// and the job settles as cancelled-but-resumable instead.
func (s *Server) requeueResume(j *job) bool {
	if s.draining.Load() {
		return false
	}
	j.mu.Lock()
	j.state = stateQueued
	j.resumePath = s.checkpointPath(j.id)
	j.resumes++
	j.interrupted = reasonNone
	j.err = ""
	j.mu.Unlock()
	if s.queue.push(j) == pushOK {
		s.met.Resumed.Add(1)
		s.cfg.Logf("serve: %s stalled; resuming from checkpoint", j.id)
		return true
	}
	return false
}

// searchJob is the production searchFn: fresh jobs build their workload and
// optimize with per-job checkpointing; interrupted jobs resume from their
// snapshot (opt.Resume restores options, elapsed budget, and search state).
// Resumed jobs run before any cache involvement, so the kill-resume
// determinism guarantee is independent of cache state.
func (s *Server) searchJob(ctx context.Context, j *job) (*opt.Result, error) {
	// Chaos-soak fault injection: the configured poison model fails every
	// attempt, exercising the circuit breaker path end to end.
	if s.cfg.FailModel != "" && strings.EqualFold(j.req.Model, s.cfg.FailModel) {
		return nil, fmt.Errorf("injected failure: model %q is poisoned (FailModel)", j.req.Model)
	}
	onExp := func(completed int) {
		j.progress(completed)
		s.met.Expansions.Add(1)
	}
	if path := j.resumeFrom(); path != "" {
		res, err := opt.Resume(ctx, path, s.cfg.Model, func(o *opt.Options) {
			o.OnExpansion = onExp
			// Checkpoint.FS is runtime wiring, not snapshot state: a
			// resumed run writes through the server's filesystem again.
			o.Checkpoint.FS = s.cfg.FS
		})
		if err == nil && j.req.Verify {
			// A snapshot carries no input graph; verification degrades to
			// the arena-safety self-check.
			err = s.verifyResult(j, nil, res)
		}
		return res, err
	}

	// Direct graph submissions carry their (already ingested and
	// validated) graph; built-in jobs construct their workload by name.
	// Both run the same search, cache, and verification machinery — the
	// fidelity pin in hostile_test.go holds the two paths bit-identical.
	var w *models.Workload
	if j.g != nil {
		w = &models.Workload{Name: j.workloadName(), G: j.g}
	} else {
		var err error
		w, err = models.ByName(j.req.Model, j.req.Scale)
		if err != nil {
			return nil, err
		}
	}
	base := opt.Baseline(w.G, s.cfg.Model)
	// searchOptions is shared with the admission estimator so the
	// fingerprint probed at admission matches the one used here.
	o := s.searchOptions(j, base.PeakMem, base.Latency)
	o.OnExpansion = onExp
	// A storage-degraded job skips every persistence surface: no snapshot
	// writes to a sick disk, no cache reads that would dirty the health
	// verdict mid-probe. The search itself is unchanged.
	useStorage := !j.storageDegraded()
	if s.cfg.CheckpointDir != "" && useStorage {
		o.Checkpoint = opt.Checkpoint{
			Path:   s.checkpointPath(j.id),
			EveryN: s.cfg.CheckpointEveryN,
			Label:  j.workloadName(),
			FS:     s.cfg.FS,
		}
	}
	if s.cfg.Cache != nil && useStorage {
		return s.cachedSearch(ctx, j, w, base, o)
	}
	res, err := opt.OptimizeCtx(ctx, w.G, s.cfg.Model, o)
	if err == nil && j.req.Verify {
		err = s.verifyResult(j, w.G, res)
	}
	return res, err
}

// verifyResult is the opt-in verification gate: before a job settles as
// done, its best plan is materialized, executed against the memory
// plan's arena offsets, and cross-checked against the input graph (see
// internal/verify). A dirty report fails the job — a plan that corrupts
// memory or changes the computed function must not be returned to a
// client as a success.
func (s *Server) verifyResult(j *job, input *graph.Graph, res *opt.Result) error {
	if res == nil || res.Best == nil {
		return nil
	}
	mg, err := res.Best.FT.Materialize(res.Best.G)
	if err != nil {
		return fmt.Errorf("verify: materialize: %w", err)
	}
	rep := verify.Check(input, mg, j.req.VerifySeed)
	if !rep.OK() {
		return fmt.Errorf("verification failed: %s", strings.TrimSpace(rep.String()))
	}
	j.mu.Lock()
	j.verified = true
	j.mu.Unlock()
	return nil
}

func (j *job) resumeFrom() string {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.resumePath
}

func (j *job) storageDegraded() bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.degradedStorage
}

func (s *Server) checkpointPath(id string) string {
	return filepath.Join(s.cfg.CheckpointDir, id+".ckpt")
}

func (s *Server) checkpointExists(j *job) bool {
	if s.cfg.CheckpointDir == "" {
		return false
	}
	_, err := s.fsys.Stat(s.checkpointPath(j.id))
	return err == nil
}

func (s *Server) removeCheckpoint(j *job) {
	if s.cfg.CheckpointDir == "" {
		return
	}
	if err := s.fsys.Remove(s.checkpointPath(j.id)); err != nil && !os.IsNotExist(err) {
		s.cfg.Logf("serve: removing checkpoint of %s: %v", j.id, err)
	}
}

// quarantineCheckpoint moves a checkpoint that failed to read back into
// CheckpointDir/quarantine, keeping its name (suffixed on collision) for
// the operator to inspect. Moving — rather than skipping in place — keeps
// every later restart from re-parsing a file that is known bad, and makes
// "something was corrupted here" visible as a non-empty directory.
func (s *Server) quarantineCheckpoint(name string, cause error) {
	qdir := filepath.Join(s.cfg.CheckpointDir, "quarantine")
	if err := s.fsys.MkdirAll(qdir, 0o755); err != nil {
		s.cfg.Logf("serve: quarantine dir: %v", err)
		return
	}
	dst := filepath.Join(qdir, name)
	for i := 1; ; i++ {
		if _, err := s.fsys.Stat(dst); os.IsNotExist(err) {
			break
		}
		dst = filepath.Join(qdir, fmt.Sprintf("%s.%d", name, i))
	}
	if err := s.fsys.Rename(filepath.Join(s.cfg.CheckpointDir, name), dst); err != nil {
		s.cfg.Logf("serve: quarantining checkpoint %s: %v (cause: %v)", name, err, cause)
		return
	}
	s.met.CkptQuarantined.Add(1)
	s.cfg.Logf("serve: quarantined unreadable checkpoint %s -> %s: %v", name, dst, cause)
}

// gcCheckpoints applies the retention bounds to the orphaned checkpoints
// found at restart, returning the names that survive. Snapshots older
// than CheckpointGCAge are stale by definition — nobody resumed them
// across that many restarts — and beyond CheckpointGCMax the oldest go
// first, mirroring the plan cache's quarantine cap. GC'd files are
// deleted, not quarantined: they are healthy-but-abandoned, so there is
// nothing for an operator to inspect.
func (s *Server) gcCheckpoints(names []string) []string {
	if s.cfg.CheckpointGCAge <= 0 && s.cfg.CheckpointGCMax <= 0 {
		return names
	}
	type orphan struct {
		name string
		mod  time.Time
	}
	var orphans []orphan
	keep := names[:0]
	now := time.Now()
	gc := func(o orphan, why string) {
		if err := s.fsys.Remove(filepath.Join(s.cfg.CheckpointDir, o.name)); err != nil {
			s.cfg.Logf("serve: checkpoint gc (%s): %v", why, err)
			return
		}
		s.met.CkptGCed.Add(1)
		s.cfg.Logf("serve: gc'd orphaned checkpoint %s (%s)", o.name, why)
	}
	for _, name := range names {
		info, err := s.fsys.Stat(filepath.Join(s.cfg.CheckpointDir, name))
		if err != nil {
			keep = append(keep, name) // let recovery decide its fate
			continue
		}
		o := orphan{name: name, mod: info.ModTime()}
		if s.cfg.CheckpointGCAge > 0 && now.Sub(o.mod) > s.cfg.CheckpointGCAge {
			gc(o, fmt.Sprintf("older than %v", s.cfg.CheckpointGCAge))
			continue
		}
		orphans = append(orphans, o)
		keep = append(keep, name)
	}
	if max := s.cfg.CheckpointGCMax; max > 0 && len(orphans) > max {
		sort.Slice(orphans, func(i, j int) bool { return orphans[i].mod.Before(orphans[j].mod) })
		doomed := make(map[string]bool, len(orphans)-max)
		for _, o := range orphans[:len(orphans)-max] {
			gc(o, fmt.Sprintf("over the %d-checkpoint cap", max))
			doomed[o.name] = true
		}
		kept := keep[:0]
		for _, name := range keep {
			if !doomed[name] {
				kept = append(kept, name)
			}
		}
		keep = kept
	}
	return keep
}

// recoverCheckpoints re-admits jobs a previous incarnation left
// checkpointed (drained or crashed mid-search). Unreadable snapshots are
// quarantined — moved aside with a log line, never deleted — so recovery
// proceeds with the healthy ones and the operator decides the rest.
// Before any re-admission, recovery sweeps write debris (orphaned temp
// files from a crash mid-write) and garbage-collects orphans past the
// age/count retention bounds, so a crash-looping deployment cannot grow
// the directory without limit.
func (s *Server) recoverCheckpoints() int {
	if s.cfg.CheckpointDir == "" {
		return 0
	}
	if err := s.fsys.MkdirAll(s.cfg.CheckpointDir, 0o755); err != nil {
		s.cfg.Logf("serve: checkpoint dir: %v", err)
		return 0
	}
	if n := fsatomic.SweepTemps(s.fsys, s.cfg.CheckpointDir); n > 0 {
		s.cfg.Logf("serve: swept %d orphaned temp file(s) from %s", n, s.cfg.CheckpointDir)
	}
	entries, err := s.fsys.ReadDir(s.cfg.CheckpointDir)
	if err != nil {
		s.cfg.Logf("serve: checkpoint dir: %v", err)
		return 0
	}
	var names []string
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasPrefix(name, "job-") || !strings.HasSuffix(name, ".ckpt") {
			continue
		}
		names = append(names, name)
	}
	names = s.gcCheckpoints(names)
	sort.Strings(names)

	n := 0
	for _, name := range names {
		id := strings.TrimSuffix(name, ".ckpt")
		path := filepath.Join(s.cfg.CheckpointDir, name)
		info, err := opt.ReadCheckpointInfo(path)
		if err != nil {
			s.quarantineCheckpoint(name, err)
			continue
		}
		s.mu.Lock()
		// Keep fresh job IDs clear of recovered ones.
		var seq int64
		if _, serr := fmt.Sscanf(id, "job-%d", &seq); serr == nil && seq > s.nextID {
			s.nextID = seq
		}
		if _, dup := s.jobs[id]; dup {
			s.mu.Unlock()
			continue
		}
		j := &job{
			id:         id,
			req:        OptimizeRequest{Model: info.Label},
			budget:     s.cfg.DefaultBudget,
			client:     anonClient,
			resumePath: path,
			resumes:    1,
			state:      stateQueued,
			created:    time.Now(),
			// Recovered snapshots carry no admission estimate; price them
			// at the default budget so they still count against the
			// concurrent-cost ledger.
			estServe: s.cfg.DefaultBudget,
			estUnits: costUnits(s.cfg.DefaultBudget),
		}
		s.jobs[id] = j
		s.mu.Unlock()
		s.holdCost(j)
		if s.queue.push(j) == pushOK {
			s.met.Admitted.Add(1)
			s.met.Resumed.Add(1)
			s.cfg.Logf("serve: recovered %s (%s, %d expansions so far)", id, info.Label, info.Iterations)
			n++
		} else {
			// Queue smaller than the backlog: leave the snapshot for the
			// next restart rather than over-admitting.
			s.releaseCost(j)
			s.forget(j)
			s.cfg.Logf("serve: queue full; %s stays checkpointed on disk", id)
		}
	}
	return n
}
