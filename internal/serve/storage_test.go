package serve

import (
	"context"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"testing"
	"time"

	"magis/internal/errfs"
	"magis/internal/opt"
)

// TestStorageHealthMachine pins the state machine itself: degrade at the
// threshold, refuse during the window, grant exactly one probe after the
// cooloff, re-degrade on a failed probe, recover on a good one.
func TestStorageHealthMachine(t *testing.T) {
	now := time.Now()
	h := newStorageHealth(2, time.Minute)
	if h.current() != storageHealthy {
		t.Fatalf("initial state %q", h.current())
	}
	if ok, _ := h.allow(now); !ok {
		t.Fatal("healthy machine refused persistence")
	}
	if h.onFault(now) {
		t.Fatal("degraded below threshold")
	}
	if !h.onFault(now) {
		t.Fatal("did not degrade at threshold")
	}
	if h.current() != storageDegraded {
		t.Fatalf("state %q after threshold faults", h.current())
	}
	// Inside the window: no persistence, no probe.
	if ok, probe := h.allow(now.Add(30 * time.Second)); ok || probe {
		t.Fatalf("allow inside window = %v/%v", ok, probe)
	}
	// Past the window: exactly one probe.
	late := now.Add(2 * time.Minute)
	if ok, probe := h.allow(late); !ok || !probe {
		t.Fatalf("first allow past window = %v/%v, want probe", ok, probe)
	}
	if ok, _ := h.allow(late); ok {
		t.Fatal("second caller got persistence while the probe is out")
	}
	// Failed probe: straight back into a fresh window.
	if h.onFault(late) {
		t.Fatal("probe failure is a window restart, not a new degradation")
	}
	if ok, _ := h.allow(late.Add(30 * time.Second)); ok {
		t.Fatal("window did not restart after failed probe")
	}
	// Abandoned probe frees the slot for the next caller.
	later := late.Add(3 * time.Minute)
	if ok, probe := h.allow(later); !ok || !probe {
		t.Fatalf("probe not re-granted after restart: %v/%v", ok, probe)
	}
	h.onAbandon()
	if ok, probe := h.allow(later); !ok || !probe {
		t.Fatalf("abandoned probe slot not released: %v/%v", ok, probe)
	}
	// Successful probe recovers.
	if !h.onOK() {
		t.Fatal("successful probe did not report recovery")
	}
	if h.current() != storageRecovered {
		t.Fatalf("state %q after recovery", h.current())
	}
	if ok, probe := h.allow(later); !ok || probe {
		t.Fatalf("recovered allow = %v/%v", ok, probe)
	}
	// Disabled machine never interferes.
	off := newStorageHealth(-1, time.Minute)
	for i := 0; i < 10; i++ {
		off.onFault(now)
	}
	if ok, _ := off.allow(now); !ok {
		t.Fatal("disabled machine degraded")
	}
}

// TestStorageDegradedServing is the tentpole serving contract, end to end
// with real searches: when every checkpoint write hits ENOSPC, jobs keep
// completing — never a 5xx from storage — and once the fault streak trips
// the health machine, later jobs run uncheckpointed with the
// degraded_storage label while /healthz and /metrics say why.
func TestStorageDegradedServing(t *testing.T) {
	dir := t.TempDir()
	fsys := errfs.New(nil, 0, errfs.Rule{Class: errfs.ENOSPC, After: 1, Every: 1})
	s := New(Config{
		Model:            testModel(),
		Workers:          1,
		QueueDepth:       8,
		CheckpointDir:    dir,
		CheckpointEveryN: 1,
		FS:               fsys,
		StorageThreshold: 2,
		StorageCooloff:   time.Hour, // no probe during this test
		StallWindow:      -1,
		Logf:             t.Logf,
	})
	s.Start()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	runOne := func() map[string]any {
		t.Helper()
		code, body := post(t, ts, `{"model":"mlp","scale":0.05,"iterations":2,"workers":1}`)
		if code != http.StatusAccepted {
			t.Fatalf("submit: %d %v", code, body)
		}
		id := body["id"].(string)
		waitFor(t, id+" to settle", func() bool {
			_, v := get(t, ts, "/jobs/"+id)
			if v["state"] == stateFailed {
				t.Fatalf("storage fault failed the job: %v", v)
			}
			return v["state"] == stateDone
		})
		_, v := get(t, ts, "/jobs/"+id)
		return v
	}

	// The first jobs eat the faults: they complete, their checkpoint
	// failures count against storage health, their answers are not yet
	// labeled (the verdict lands at finish, after the search ran with
	// persistence enabled).
	for i := 0; i < 2; i++ {
		v := runOne()
		res := v["result"].(map[string]any)
		if res["degraded_storage"] == true {
			t.Fatalf("job %d labeled degraded before the machine tripped: %v", i, v)
		}
	}
	_, hz := get(t, ts, "/healthz")
	if hz["storage"] != storageDegraded {
		t.Fatalf("healthz storage = %v after %d faults, want degraded", hz["storage"], 2)
	}

	// Past the threshold: jobs run uncached/uncheckpointed and say so.
	v := runOne()
	res := v["result"].(map[string]any)
	if res["degraded_storage"] != true {
		t.Fatalf("degraded-era job missing degraded_storage label: %v", v)
	}
	if res["peak_mem_bytes"].(float64) <= 0 {
		t.Fatalf("degraded job has no real result: %v", res)
	}
	if _, err := os.Stat(s.checkpointPath(v["id"].(string))); !os.IsNotExist(err) {
		t.Error("degraded job wrote a checkpoint through the gate")
	}

	_, mets := get(t, ts, "/metrics")
	if mets["storage_state"] != storageDegraded {
		t.Errorf("metrics storage_state = %v", mets["storage_state"])
	}
	if mets["storage_faults"].(float64) < 2 {
		t.Errorf("storage_faults = %v, want >= 2", mets["storage_faults"])
	}
	if mets["storage_degraded_jobs"].(float64) != 1 {
		t.Errorf("storage_degraded_jobs = %v, want 1", mets["storage_degraded_jobs"])
	}
	drainServer(t, s)

	// No temp debris: every failed atomic write cleaned up after itself.
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range ents {
		t.Logf("left behind: %s", e.Name())
	}
}

// TestStorageRecoversViaProbe: once the disk heals, the cooloff expires,
// the next job's probe succeeds, and persistence comes back — state
// "recovered", checkpoints flowing again, no lingering degraded labels.
func TestStorageRecoversViaProbe(t *testing.T) {
	dir := t.TempDir()
	// Exactly two faulted writes (one final checkpoint flush per job with
	// EveryN above the iteration count), then a healthy disk.
	fsys := errfs.New(nil, 0, errfs.Rule{Class: errfs.ENOSPC, After: 1, Every: 1, Count: 2})
	s := New(Config{
		Model:            testModel(),
		Workers:          1,
		QueueDepth:       8,
		CheckpointDir:    dir,
		CheckpointEveryN: 8,
		FS:               fsys,
		StorageThreshold: 2,
		StorageCooloff:   30 * time.Millisecond,
		StallWindow:      -1,
		Logf:             t.Logf,
	})
	s.Start()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	runOne := func() map[string]any {
		t.Helper()
		code, body := post(t, ts, `{"model":"mlp","scale":0.05,"iterations":2,"workers":1}`)
		if code != http.StatusAccepted {
			t.Fatalf("submit: %d %v", code, body)
		}
		id := body["id"].(string)
		waitFor(t, id+" to settle", func() bool {
			_, v := get(t, ts, "/jobs/"+id)
			return v["state"] == stateDone
		})
		_, v := get(t, ts, "/jobs/"+id)
		return v
	}

	runOne() // fault 1
	runOne() // fault 2 -> degraded
	if got := s.storage.current(); got != storageDegraded {
		t.Fatalf("storage state %q after two faults", got)
	}
	time.Sleep(60 * time.Millisecond) // let the cooloff expire

	// The next job probes the (now healthy) disk, recovers persistence,
	// and runs fully checkpointed.
	v := runOne()
	res := v["result"].(map[string]any)
	if res["degraded_storage"] == true {
		t.Fatalf("post-recovery job still degraded: %v", v)
	}
	_, hz := get(t, ts, "/healthz")
	if hz["storage"] != storageRecovered {
		t.Fatalf("healthz storage = %v, want recovered", hz["storage"])
	}
	_, mets := get(t, ts, "/metrics")
	if mets["storage_recoveries"].(float64) != 1 {
		t.Errorf("storage_recoveries = %v, want 1", mets["storage_recoveries"])
	}
	drainServer(t, s)
}

// TestCheckpointGCOnRestart: restart recovery garbage-collects orphaned
// checkpoints past the age and count bounds (oldest first), then
// quarantines what is left if unreadable — the directory cannot grow
// without limit across crash loops.
func TestCheckpointGCOnRestart(t *testing.T) {
	dir := t.TempDir()
	now := time.Now()
	write := func(name string, age time.Duration) {
		path := filepath.Join(dir, name)
		if err := os.WriteFile(path, []byte("not a checkpoint"), 0o644); err != nil {
			t.Fatal(err)
		}
		mod := now.Add(-age)
		if err := os.Chtimes(path, mod, mod); err != nil {
			t.Fatal(err)
		}
	}
	// Two stale by age; three fresh, one over the count cap.
	write("job-1.ckpt", 48*time.Hour)
	write("job-2.ckpt", 30*time.Hour)
	write("job-3.ckpt", 3*time.Hour)
	write("job-4.ckpt", 2*time.Hour)
	write("job-5.ckpt", 1*time.Hour)
	// Crash debris from a write that never finished.
	if err := os.WriteFile(filepath.Join(dir, "job-6.ckpt.tmp-123"), []byte("torn"), 0o644); err != nil {
		t.Fatal(err)
	}

	s := New(Config{
		Model:           testModel(),
		QueueDepth:      8,
		CheckpointDir:   dir,
		CheckpointGCAge: 24 * time.Hour,
		CheckpointGCMax: 2,
		StallWindow:     -1,
		Logf:            t.Logf,
	})
	if n := s.Start(); n != 0 {
		t.Fatalf("recovered %d jobs from junk checkpoints, want 0", n)
	}
	defer drainServer(t, s)

	if got := s.met.CkptGCed.Load(); got != 3 {
		t.Errorf("checkpoints_gced = %d, want 3 (2 by age, 1 over cap)", got)
	}
	for _, name := range []string{"job-1.ckpt", "job-2.ckpt", "job-3.ckpt"} {
		if _, err := os.Stat(filepath.Join(dir, name)); !os.IsNotExist(err) {
			t.Errorf("%s survived GC", name)
		}
	}
	if _, err := os.Stat(filepath.Join(dir, "job-6.ckpt.tmp-123")); !os.IsNotExist(err) {
		t.Error("temp debris survived the startup sweep")
	}
	// The two survivors are unreadable -> quarantined, not deleted.
	if got := s.met.CkptQuarantined.Load(); got != 2 {
		t.Errorf("ckpt_quarantined = %d, want 2", got)
	}
	for _, name := range []string{"job-4.ckpt", "job-5.ckpt"} {
		if _, err := os.Stat(filepath.Join(dir, "quarantine", name)); err != nil {
			t.Errorf("%s not quarantined: %v", name, err)
		}
	}
}

// TestGovernorCountersSurfaceInMetrics: a search stopped by the memory
// governor settles done with Stopped "mem-budget" and its shed activity
// lands on /metrics.
func TestGovernorCountersSurfaceInMetrics(t *testing.T) {
	s := New(Config{Model: testModel(), QueueDepth: 4, Workers: 1, StallWindow: -1})
	s.runSearch = func(ctx context.Context, j *job) (*opt.Result, error) {
		res := tinyResult(opt.StopMemBudget)
		res.Governor = &opt.GovernorStatus{Budget: 1 << 20, EvictedStates: 7, Stage: 4}
		return res, nil
	}
	s.Start()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	_, body := post(t, ts, `{"model":"mlp"}`)
	id := body["id"].(string)
	waitFor(t, "governed job to settle", func() bool {
		_, v := get(t, ts, "/jobs/"+id)
		return v["state"] == stateDone
	})
	_, v := get(t, ts, "/jobs/"+id)
	res := v["result"].(map[string]any)
	if res["stopped"] != "mem-budget" {
		t.Errorf("stopped = %v, want mem-budget", res["stopped"])
	}
	_, mets := get(t, ts, "/metrics")
	if mets["governor_stops"].(float64) != 1 {
		t.Errorf("governor_stops = %v, want 1", mets["governor_stops"])
	}
	if mets["governor_evicted_states"].(float64) != 7 {
		t.Errorf("governor_evicted_states = %v, want 7", mets["governor_evicted_states"])
	}
	drainServer(t, s)
}
