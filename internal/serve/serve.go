// Package serve is the supervised service front-end for long-running
// MAGIS searches: an HTTP API over a bounded job queue with admission
// control, per-job panic isolation, a stall watchdog, and crash-safe
// drain built on the search checkpoints of internal/opt.
//
// Operational posture:
//
//   - Admission is non-blocking and resource-aware: every request is
//     priced up-front (graph size, search budget, plan-cache class) and
//     admitted against a concurrent-cost budget; a full queue or an
//     exhausted budget rejects with 429 and a backlog-derived Retry-After
//     hint before any work starts; a draining server rejects with 503.
//   - Client deadlines ride into an earliest-deadline-first queue: jobs
//     whose deadline becomes unmeetable are shed before they occupy a
//     worker, and a search truncated by its deadline settles done with the
//     best-so-far plan explicitly marked degraded (internal/robust picks
//     the strongest servable tier).
//   - A per-workload circuit breaker (model|scale|mode) opens after
//     repeated failures, rejecting that workload for a cooloff and then
//     admitting a single half-open probe — a poison graph cannot
//     monopolize workers while healthy traffic starves.
//   - Every job runs under opt.Guard, so a panicking search marks one job
//     failed instead of killing the process.
//   - A watchdog cancels jobs that stop making expansion progress for a
//     stall window; a stalled job with a checkpoint is re-admitted once to
//     resume from its last snapshot.
//   - Drain (SIGTERM in cmd/magis-serve) stops admission, cancels
//     in-flight searches — each writes a final checkpoint on the way out —
//     and waits for the workers. A restarted server pointed at the same
//     checkpoint directory re-admits those jobs and resumes them.
package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"magis/internal/cost"
	"magis/internal/fsatomic"
	"magis/internal/graph"
	"magis/internal/ingest"
	"magis/internal/models"
	"magis/internal/opt"
	"magis/internal/plancache"
)

// Config configures a Server. Model is required; everything else has
// serviceable defaults.
type Config struct {
	// Model prices every search (required).
	Model *cost.Model
	// QueueDepth bounds the number of admitted-but-not-running jobs
	// (default 8). Beyond it, /optimize returns 429.
	QueueDepth int
	// Workers is the number of jobs run concurrently (default 1; each
	// search parallelizes internally via its own Workers option).
	Workers int
	// DefaultBudget is the search budget when a request omits one
	// (default 10s); MaxBudget caps what a request may ask for
	// (default 5m).
	DefaultBudget time.Duration
	MaxBudget     time.Duration
	// CheckpointDir enables crash-safe jobs: each search checkpoints into
	// <dir>/<job-id>.ckpt, and Start re-admits any checkpoints found there
	// (jobs interrupted by a previous drain or crash). Empty disables
	// checkpointing, stall resume, and restart recovery.
	CheckpointDir string
	// CheckpointEveryN is the snapshot flush cadence in expansions
	// (0 = the opt default).
	CheckpointEveryN int
	// StallWindow is how long a running job may go without completing an
	// expansion before the watchdog cancels it (default 30s; negative
	// disables the watchdog). StallPoll is the scan interval (default
	// StallWindow/4).
	StallWindow time.Duration
	StallPoll   time.Duration
	// Cache, when set, serves verified plans from the persistent plan
	// cache: exact hits answer without running a search, near misses
	// warm-start the search, and concurrent identical requests share one
	// in-flight search. Resumed jobs bypass the cache entirely, so the
	// kill-resume determinism guarantee is unchanged. Nil disables
	// caching.
	Cache *plancache.Cache
	// AdmitBudget bounds the total estimated service time (see
	// opt.EstimateSearchTime) held by admitted-but-unsettled jobs: beyond
	// it /optimize rejects with 429 even when queue slots remain, so a few
	// enormous cold searches cannot promise more work than the server can
	// deliver. Default 2×(QueueDepth+Workers)×DefaultBudget. An otherwise
	// idle server always admits one job regardless of its size.
	AdmitBudget time.Duration
	// BreakerThreshold is the consecutive-failure count that opens a
	// workload's circuit breaker (default 3; negative disables breakers).
	// BreakerCooloff is how long an open breaker rejects its workload
	// before admitting a half-open probe (default 30s).
	BreakerThreshold int
	BreakerCooloff   time.Duration
	// FailModel, when non-empty, makes every search of the named model fail
	// (fault injection for the chaos soak: a deterministic poison workload
	// that must trip its breaker without starving healthy traffic).
	FailModel string
	// FS is the filesystem checkpoints, recovery, and storage probes go
	// through; nil means the real OS. The chaos harness injects faults here
	// (internal/errfs) — note the plan cache carries its own FS in its own
	// Config.
	FS fsatomic.FS
	// MemBudget, when positive, runs every search under the opt memory
	// governor (opt.Options.MemBudget): past the budget the search sheds
	// frontier state and, if still over, stops with its best-so-far.
	MemBudget int64
	// StorageThreshold is the consecutive persistence-fault count that
	// flips storage health to degraded (default 3; negative disables the
	// machine). StorageCooloff is how long degraded holds before a
	// recovery probe (default 30s). While degraded, jobs run uncached and
	// uncheckpointed with a degraded_storage label instead of erroring.
	StorageThreshold int
	StorageCooloff   time.Duration
	// CheckpointGCAge and CheckpointGCMax bound restart recovery's
	// retention of orphaned checkpoints: snapshots older than the age
	// (default 24h) or beyond the count cap (default 64, oldest first) are
	// garbage-collected instead of re-admitted. Negative disables the
	// respective bound.
	CheckpointGCAge time.Duration
	CheckpointGCMax int
	// MaxBody bounds the /optimize request body in bytes (default 8 MiB).
	// Oversized bodies reject with 413 before the JSON decoder runs.
	MaxBody int64
	// Ingest bounds direct graph submissions (see internal/ingest); zero
	// fields take ingest.DefaultLimits. Only consulted when a request
	// carries a graph.
	Ingest ingest.Limits
	// ClientRate / ClientBurst configure the per-client request token
	// bucket (requests per second / bucket size). Zero rate disables it;
	// burst defaults to 8 when a rate is set.
	ClientRate  float64
	ClientBurst int
	// ClientShare is one client's fair-share fraction of AdmitBudget in
	// (0,1]: the estimated service time a single client identity may hold
	// concurrently. Zero disables per-client cost isolation.
	ClientShare float64
	// ClientQueue caps how many queued (not yet running) jobs one client
	// identity may hold. Zero disables the cap.
	ClientQueue int
	// Logf receives operational log lines (nil = silent).
	Logf func(format string, args ...any)
}

func (c Config) withDefaults() Config {
	if c.QueueDepth <= 0 {
		c.QueueDepth = 8
	}
	if c.Workers <= 0 {
		c.Workers = 1
	}
	if c.DefaultBudget <= 0 {
		c.DefaultBudget = 10 * time.Second
	}
	if c.MaxBudget <= 0 {
		c.MaxBudget = 5 * time.Minute
	}
	if c.StallWindow == 0 {
		c.StallWindow = 30 * time.Second
	}
	if c.StallPoll <= 0 {
		c.StallPoll = c.StallWindow / 4
		if c.StallPoll <= 0 {
			c.StallPoll = time.Second
		}
	}
	if c.AdmitBudget <= 0 {
		c.AdmitBudget = 2 * time.Duration(c.QueueDepth+c.Workers) * c.DefaultBudget
	}
	if c.BreakerThreshold == 0 {
		c.BreakerThreshold = 3
	}
	if c.BreakerCooloff <= 0 {
		c.BreakerCooloff = 30 * time.Second
	}
	if c.StorageThreshold == 0 {
		c.StorageThreshold = 3
	}
	if c.StorageCooloff <= 0 {
		c.StorageCooloff = 30 * time.Second
	}
	if c.CheckpointGCAge == 0 {
		c.CheckpointGCAge = 24 * time.Hour
	}
	if c.CheckpointGCMax == 0 {
		c.CheckpointGCMax = 64
	}
	if c.MaxBody <= 0 {
		c.MaxBody = 8 << 20
	}
	if c.ClientRate > 0 && c.ClientBurst <= 0 {
		c.ClientBurst = 8
	}
	if c.Logf == nil {
		c.Logf = func(string, ...any) {}
	}
	return c
}

// metrics are the service-level counters exposed by /metrics.
type metrics struct {
	Admitted         atomic.Int64
	RejectedFull     atomic.Int64
	RejectedDraining atomic.Int64
	RejectedInvalid  atomic.Int64
	Completed        atomic.Int64
	Failed           atomic.Int64
	Cancelled        atomic.Int64
	Stalled          atomic.Int64
	Resumed          atomic.Int64
	Expansions       atomic.Int64
	// Plan-cache outcomes, counted per job: answered from an exact entry,
	// missed, warm-started from a near miss, or shared another request's
	// in-flight search.
	CacheHits       atomic.Int64
	CacheMisses     atomic.Int64
	CacheWarmStarts atomic.Int64
	FlightShared    atomic.Int64
	// CkptQuarantined counts restart-recovery checkpoints that failed to
	// read back and were moved aside.
	CkptQuarantined atomic.Int64
	// Per-class admissions: how the admission estimator classified each
	// accepted job against the plan cache.
	AdmittedHit  atomic.Int64
	AdmittedWarm atomic.Int64
	AdmittedCold atomic.Int64
	// Overload-protection outcomes: rejections by reason, queued jobs shed
	// before running, degraded anytime responses, breaker trips.
	RejectedCost     atomic.Int64
	RejectedBreaker  atomic.Int64
	RejectedDeadline atomic.Int64
	ShedExpired      atomic.Int64
	ShedEvicted      atomic.Int64
	Degraded         atomic.Int64
	BreakerTrips     atomic.Int64
	// Storage-robustness outcomes: persistence faults observed, jobs run
	// with persistence disabled, successful recovery probes, and orphaned
	// checkpoints garbage-collected at restart.
	StorageFaults       atomic.Int64
	StorageDegradedJobs atomic.Int64
	StorageRecoveries   atomic.Int64
	CkptGCed            atomic.Int64
	// Memory-governor outcomes across all searches: runs stopped at the
	// budget and frontier states shed.
	GovernorStops   atomic.Int64
	GovernorEvicted atomic.Int64
	// Hostile-traffic outcomes: oversized bodies, graphs rejected at
	// ingestion, search bombs caught by the preflight, and per-client
	// fairness rejections (rate, fair-share cost, queue occupancy).
	RejectedTooLarge    atomic.Int64
	RejectedIngest      atomic.Int64
	RejectedBomb        atomic.Int64
	RejectedClientRate  atomic.Int64
	RejectedClientShare atomic.Int64
	RejectedClientQueue atomic.Int64
}

// Server is the service. Create with New, wire Handler into an HTTP
// server, call Start, and Drain on shutdown.
type Server struct {
	cfg Config

	mu     sync.Mutex
	jobs   map[string]*job
	nextID int64

	queue    *jobQueue
	stop     chan struct{}
	wg       sync.WaitGroup
	draining atomic.Bool
	inFlight atomic.Int64
	met      metrics

	// costInUse is the admission budget spent: estimated cost units
	// (milliseconds of predicted service time) held by jobs admitted but
	// not yet settled.
	costInUse atomic.Int64
	// brk isolates repeatedly failing workloads (per model|scale|mode).
	brk *breaker
	// storage is the persistence health state machine; fsys is the
	// filesystem all serve-owned persistence goes through.
	storage *storageHealth
	fsys    fsatomic.FS
	// wlStats memoizes per-(model, scale) workload facts for admission
	// estimates.
	wlMu    sync.Mutex
	wlStats map[string]*wlStats
	// clients is the per-client fairness ledger (rate, fair-share cost,
	// counters); a zero-configured ledger tracks nothing.
	clients *clientLedger

	// runSearch executes one job's search; replaced by tests to control
	// timing without real optimization work.
	runSearch searchFn

	// hitLat/missLat sample per-job service latency by cache outcome for
	// the /metrics percentiles.
	hitLat  latRing
	missLat latRing
}

// New builds a Server; call Start to launch its workers.
func New(cfg Config) *Server {
	s := &Server{
		cfg:     cfg.withDefaults(),
		jobs:    make(map[string]*job),
		wlStats: make(map[string]*wlStats),
	}
	s.queue = newJobQueue(s.cfg.QueueDepth, s.cfg.ClientQueue)
	s.clients = newClientLedger(s.cfg)
	s.stop = make(chan struct{})
	s.brk = newBreaker(s.cfg.BreakerThreshold, s.cfg.BreakerCooloff)
	s.storage = newStorageHealth(s.cfg.StorageThreshold, s.cfg.StorageCooloff)
	s.fsys = fsatomic.Or(s.cfg.FS)
	s.runSearch = s.searchJob
	return s
}

// Start launches the worker pool and the stall watchdog, and — when a
// checkpoint directory is configured — re-admits jobs a previous
// incarnation left checkpointed. It returns the number of recovered jobs.
func (s *Server) Start() int {
	recovered := s.recoverCheckpoints()
	for i := 0; i < s.cfg.Workers; i++ {
		s.wg.Add(1)
		go s.worker()
	}
	if s.cfg.StallWindow > 0 {
		s.wg.Add(1)
		go s.watchdog()
	}
	return recovered
}

// Drain stops admission, cancels every in-flight search (each writes its
// final checkpoint on the way out), marks still-queued jobs cancelled, and
// waits for the workers — or for ctx, whichever ends first.
func (s *Server) Drain(ctx context.Context) error {
	if s.draining.CompareAndSwap(false, true) {
		close(s.stop)
		// Settle everything still queued before closing the queue, so the
		// workers see closed-and-empty and exit instead of popping work.
		s.flushQueue()
		s.queue.close()
		s.mu.Lock()
		jobs := make([]*job, 0, len(s.jobs))
		for _, j := range s.jobs {
			jobs = append(jobs, j)
		}
		s.mu.Unlock()
		for _, j := range jobs {
			if j.interrupt(reasonDrain) {
				s.met.Cancelled.Add(1)
				s.abandonProbe(j)
				s.releaseCost(j)
			}
		}
	}
	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		// Anything admitted in the instant between the draining check and
		// the workers exiting is cancelled, not silently stranded.
		s.flushQueue()
		return nil
	case <-ctx.Done():
		return fmt.Errorf("serve: drain interrupted: %w", ctx.Err())
	}
}

// Handler returns the service's HTTP routes.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/optimize", s.handleOptimize)
	mux.HandleFunc("/jobs/", s.handleJob)
	mux.HandleFunc("/healthz", s.handleHealthz)
	mux.HandleFunc("/metrics", s.handleMetrics)
	return mux
}

// OptimizeRequest is the /optimize POST body.
type OptimizeRequest struct {
	// Model names the workload (see internal/models.Names).
	Model string `json:"model"`
	// Graph, when present, submits an untrusted graph document (the
	// graphio file envelope) instead of naming a built-in model. It is
	// decoded and validated by internal/ingest — structural limits, dtype
	// and shape bounds, search-cost preflight — before any search work is
	// priced. Mutually exclusive with Model.
	Graph json.RawMessage `json:"graph,omitempty"`
	// Client declares the caller's identity for per-client fairness
	// (rate limits, fair-share cost, queue occupancy). The X-Magis-Client
	// header is the fallback; empty means the shared anonymous identity.
	Client string `json:"client,omitempty"`
	// Scale is the batch-size scale factor in (0,1] (default 1).
	Scale float64 `json:"scale,omitempty"`
	// Mode is "mem" (minimize memory under a latency limit, the default)
	// or "latency" (minimize latency under a memory limit).
	Mode string `json:"mode,omitempty"`
	// Limit is the constraint: allowed latency overhead for mode "mem"
	// (default 0.10), memory ratio vs baseline for mode "latency".
	Limit float64 `json:"limit,omitempty"`
	// Budget is the search time budget as a Go duration string
	// (default Config.DefaultBudget, capped at Config.MaxBudget).
	Budget string `json:"budget,omitempty"`
	// Deadline is how long the client will wait for the answer, as a Go
	// duration string measured from admission. The queue is
	// earliest-deadline-first; a job whose deadline becomes unmeetable is
	// shed instead of run, and a search truncated by its deadline returns
	// the verified best-so-far plan marked degraded. Empty means no
	// deadline (never shed, never degraded).
	Deadline string `json:"deadline,omitempty"`
	// Workers is the search's parallel evaluation width (0 = GOMAXPROCS).
	Workers int `json:"workers,omitempty"`
	// Iterations caps the number of search expansions (0 = budget-bound
	// only). Useful for smoke tests and fixed-work benchmark jobs.
	Iterations int `json:"iterations,omitempty"`
	// Verify numerically verifies the optimized plan (arena-safe
	// execution plus output cross-check against the unoptimized graph)
	// before the job settles; a failed verification fails the job.
	Verify bool `json:"verify,omitempty"`
	// VerifySeed seeds the verification inputs (default 0 stream).
	VerifySeed uint64 `json:"verify_seed,omitempty"`
}

// normalize validates the request and resolves defaults, returning the
// search budget and the client deadline (0 = none) measured from now.
func (r *OptimizeRequest) normalize(cfg Config) (time.Duration, time.Duration, error) {
	if len(r.Graph) > 0 {
		// Direct graph submission: the graph document is the workload.
		if r.Model != "" {
			return 0, 0, fmt.Errorf("request carries both graph and model: pick one")
		}
		if r.Scale != 0 && r.Scale != 1 {
			return 0, 0, fmt.Errorf("invalid scale %v: scale applies to named models only", r.Scale)
		}
		r.Scale = 1
	} else {
		known := false
		for _, n := range models.Names() {
			if strings.EqualFold(r.Model, n) {
				known = true
				break
			}
		}
		if !known {
			return 0, 0, fmt.Errorf("unknown model %q (want %s)", r.Model, strings.Join(models.Names(), "|"))
		}
		if r.Scale == 0 {
			r.Scale = 1
		}
		if r.Scale < 0 || r.Scale > 1 {
			return 0, 0, fmt.Errorf("invalid scale %v: must be in (0,1]", r.Scale)
		}
	}
	switch r.Mode {
	case "":
		r.Mode = "mem"
	case "mem", "latency":
	default:
		return 0, 0, fmt.Errorf("unknown mode %q: want mem or latency", r.Mode)
	}
	if r.Limit == 0 {
		r.Limit = 0.10
	}
	if r.Limit < 0 {
		return 0, 0, fmt.Errorf("invalid limit %v: must be >= 0", r.Limit)
	}
	if r.Workers < 0 {
		return 0, 0, fmt.Errorf("invalid workers %d: must be >= 0", r.Workers)
	}
	// Clamp to the cores actually available: workers is client-supplied,
	// and an absurd value would both oversubscribe the search and drive the
	// per-expansion admission estimate toward zero — a client-controlled
	// bypass of the cost budget and the deadline-feasibility check.
	if max := runtime.GOMAXPROCS(0); r.Workers > max {
		r.Workers = max
	}
	if r.Iterations < 0 {
		return 0, 0, fmt.Errorf("invalid iterations %d: must be >= 0", r.Iterations)
	}
	budget := cfg.DefaultBudget
	if r.Budget != "" {
		d, err := time.ParseDuration(r.Budget)
		if err != nil {
			return 0, 0, fmt.Errorf("invalid budget %q: %v", r.Budget, err)
		}
		if d <= 0 {
			return 0, 0, fmt.Errorf("invalid budget %q: must be positive", r.Budget)
		}
		budget = d
	}
	if budget > cfg.MaxBudget {
		budget = cfg.MaxBudget
	}
	var wait time.Duration
	if r.Deadline != "" {
		d, err := time.ParseDuration(r.Deadline)
		if err != nil {
			return 0, 0, fmt.Errorf("invalid deadline %q: %v", r.Deadline, err)
		}
		if d <= 0 {
			return 0, 0, fmt.Errorf("invalid deadline %q: must be positive", r.Deadline)
		}
		wait = d
	}
	return budget, wait, nil
}

func (s *Server) handleOptimize(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		httpError(w, http.StatusMethodNotAllowed, "POST only")
		return
	}
	if s.draining.Load() {
		s.met.RejectedDraining.Add(1)
		httpReject(w, http.StatusServiceUnavailable, "draining", "draining: not admitting new jobs")
		return
	}

	// The body is untrusted: bound its size before the decoder allocates
	// anything, and reject unknown fields so a typo'd request fails loudly
	// instead of silently running with defaults.
	var req OptimizeRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, s.cfg.MaxBody))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			s.met.RejectedTooLarge.Add(1)
			httpReject(w, http.StatusRequestEntityTooLarge, "too-large",
				"request body exceeds %d bytes", s.cfg.MaxBody)
			return
		}
		s.met.RejectedInvalid.Add(1)
		if strings.Contains(err.Error(), "unknown field") {
			httpReject(w, http.StatusBadRequest, "unknown-field", "bad request body: %v", err)
		} else {
			httpReject(w, http.StatusBadRequest, "syntax", "bad request body: %v", err)
		}
		return
	}

	client, err := resolveClient(req.Client, r.Header.Get("X-Magis-Client"))
	if err != nil {
		s.met.RejectedInvalid.Add(1)
		httpReject(w, http.StatusBadRequest, "client", "invalid client identity: %v", err)
		return
	}

	budget, wait, err := req.normalize(s.cfg)
	if err != nil {
		s.met.RejectedInvalid.Add(1)
		httpReject(w, http.StatusBadRequest, "invalid", "%v", err)
		return
	}

	// Per-client rate limit: the cheapest gate, charged before any
	// per-request pricing or ingestion work runs on the client's behalf.
	if ok, after := s.clients.allow(client, time.Now()); !ok {
		s.met.RejectedClientRate.Add(1)
		w.Header().Set("Retry-After", fmt.Sprint(after))
		httpReject(w, http.StatusTooManyRequests, "client-rate",
			"client %q over its request rate: retry later", client)
		return
	}

	// Untrusted graph ingestion: strict decode under structural limits,
	// then the search-cost preflight. Everything here is bounded by
	// Config.Ingest, so a hostile document is refused with a structured
	// reason before it can cost the server anything.
	var g *graphHolder
	if len(req.Graph) > 0 {
		decoded, _, err := ingest.Decode(bytes.NewReader(req.Graph), s.cfg.Ingest)
		if err == nil {
			err = ingest.Preflight(decoded, opt.Options{Workers: req.Workers}, s.cfg.Ingest)
		}
		if err != nil {
			ie := ingest.AsError(err)
			code, reason := http.StatusBadRequest, "ingest"
			if ie != nil {
				code, reason = ie.HTTPStatus(), string(ie.Reason)
			}
			switch {
			case code == http.StatusRequestEntityTooLarge:
				s.met.RejectedTooLarge.Add(1)
			case ie != nil && ie.Reason == ingest.ReasonSearchBomb:
				s.met.RejectedBomb.Add(1)
			default:
				s.met.RejectedIngest.Add(1)
			}
			httpReject(w, code, reason, "graph rejected: %v", err)
			return
		}
		g = &graphHolder{g: decoded}
	}

	// Circuit breaker: a workload that keeps failing is rejected outright
	// (except the half-open probe) so it cannot monopolize workers. A
	// request admitted here as the probe owns the half-open slot from this
	// point on: every later rejection path must hand the slot back
	// (abandonProbe), or the breaker stays wedged waiting on a probe that
	// never ran. Graph submissions key the breaker by content hash, so a
	// poison graph resubmitted verbatim trips its own breaker.
	wlname := req.Model
	if g != nil {
		wlname = graphWorkloadName(g.g)
	}
	bkey := breakerKey(wlname, req.Scale, req.Mode)
	after, open, probe := s.brk.blocked(bkey, time.Now())
	if open {
		s.met.RejectedBreaker.Add(1)
		w.Header().Set("Retry-After", fmt.Sprint(after))
		httpReject(w, http.StatusServiceUnavailable, "breaker",
			"workload %s is circuit-broken after repeated failures: retry later", bkey)
		return
	}

	j := s.newJob(req, budget, client, g.graph())
	j.probe = probe
	if wait > 0 {
		j.deadline = j.created.Add(wait)
	}
	if err := s.estimateJob(j); err != nil {
		s.abandonProbe(j)
		s.forget(j)
		s.met.RejectedInvalid.Add(1)
		httpReject(w, http.StatusBadRequest, "invalid", "%v", err)
		return
	}

	// Doomed on arrival: the deadline cannot be met even if a worker were
	// free right now — shed at the door, before any queue slot is spent.
	if doomed(j, time.Now()) {
		s.abandonProbe(j)
		s.forget(j)
		s.met.RejectedDeadline.Add(1)
		httpReject(w, http.StatusUnprocessableEntity, "deadline",
			"deadline %v is below the minimum feasible service time %v", wait, j.minServe)
		return
	}

	// Resource-aware admission: the job's estimated cost must fit both the
	// client's fair share and the global concurrent-cost budget. Reserve
	// first, check after — holdCost's serialized adds mean concurrent
	// arrivals cannot all read the same pre-reservation total and jointly
	// overshoot either budget. The one deliberate exception survives at
	// both levels: an otherwise idle server (or idle client) admits one
	// job regardless of size, so an oversized request degrades to
	// one-at-a-time service instead of permanent rejection.
	budgetUnits := costUnits(s.cfg.AdmitBudget)
	tot := s.holdCost(j)
	if share := s.clients.share(); share > 0 && tot.clientHeld > share && tot.clientHeld != j.estUnits {
		s.releaseCost(j)
		s.abandonProbe(j)
		s.forget(j)
		s.met.RejectedClientShare.Add(1)
		s.clients.note(client, clientRejShare)
		w.Header().Set("Retry-After", fmt.Sprint(s.retryAfter()))
		httpReject(w, http.StatusTooManyRequests, "client-share",
			"client %q over its fair share (%dms held + %dms requested > %dms): retry later",
			client, tot.clientHeld-j.estUnits, j.estUnits, share)
		return
	}
	if tot.total > budgetUnits && tot.total != j.estUnits {
		s.releaseCost(j)
		s.abandonProbe(j)
		s.forget(j)
		s.met.RejectedCost.Add(1)
		w.Header().Set("Retry-After", fmt.Sprint(s.retryAfter()))
		httpReject(w, http.StatusTooManyRequests, "budget",
			"admission budget exhausted (%dms held + %dms requested > %dms): retry later",
			tot.total-j.estUnits, j.estUnits, budgetUnits)
		return
	}

	// Non-blocking admission: a full queue sheds (expired first, then the
	// cheapest laxer victim for deadline-urgent work) or rejects before
	// any search starts, so overload never builds an unbounded backlog.
	// The cost hold already landed above: once queued, a worker may
	// settle (and release) the job at any moment. A per-client occupancy
	// rejection is the client's own doing and evicts nobody.
	switch s.admitQueued(j) {
	case pushClientFull:
		s.releaseCost(j)
		s.abandonProbe(j)
		s.forget(j)
		s.met.RejectedClientQueue.Add(1)
		s.clients.note(client, clientRejQueue)
		w.Header().Set("Retry-After", fmt.Sprint(s.retryAfter()))
		httpReject(w, http.StatusTooManyRequests, "client-queue",
			"client %q holds its full queue allotment (%d): retry later", client, s.cfg.ClientQueue)
		return
	case pushFull:
		s.releaseCost(j)
		s.abandonProbe(j)
		s.forget(j)
		s.met.RejectedFull.Add(1)
		w.Header().Set("Retry-After", fmt.Sprint(s.retryAfter()))
		httpReject(w, http.StatusTooManyRequests, "queue-full",
			"queue full (%d queued): retry later", s.cfg.QueueDepth)
		return
	}
	s.met.Admitted.Add(1)
	s.admitClass(j.class)
	s.clients.note(client, clientAdmitted)
	s.cfg.Logf("serve: admitted %s (%s, client %s, budget %v, class %s, est %v)",
		j.id, j.workloadName(), client, budget, j.class, j.estServe)
	w.Header().Set("Location", "/jobs/"+j.id)
	writeJSON(w, http.StatusAccepted, s.jobView(j))
}

// graphHolder lets the graph-vs-model branches above share one nilable
// handle without sprinkling nil checks on a typed *graph.Graph.
type graphHolder struct{ g *graph.Graph }

func (h *graphHolder) graph() *graph.Graph {
	if h == nil {
		return nil
	}
	return h.g
}

func (s *Server) handleJob(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		httpError(w, http.StatusMethodNotAllowed, "GET only")
		return
	}
	id := strings.TrimPrefix(r.URL.Path, "/jobs/")
	s.mu.Lock()
	j := s.jobs[id]
	s.mu.Unlock()
	if j == nil {
		httpError(w, http.StatusNotFound, "no job %q", id)
		return
	}
	writeJSON(w, http.StatusOK, s.jobView(j))
}

// handleHealthz reports liveness plus the load picture an orchestrator
// needs for readiness decisions: queue occupancy and in-flight work.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	status := "ok"
	code := http.StatusOK
	if s.draining.Load() {
		status = "draining"
		code = http.StatusServiceUnavailable
	}
	s.mu.Lock()
	total := len(s.jobs)
	s.mu.Unlock()
	writeJSON(w, code, map[string]any{
		"status":         status,
		"queue_depth":    s.queue.Len(),
		"queue_capacity": s.queue.Cap(),
		"in_flight":      s.inFlight.Load(),
		"jobs":           total,
		"cost_in_use_ms": s.costInUse.Load(),
		"cost_budget_ms": costUnits(s.cfg.AdmitBudget),
		"breaker_open":   s.brk.openCount(),
		"storage":        s.storage.current(),
	})
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	out := map[string]any{
		"admitted":          s.met.Admitted.Load(),
		"rejected_full":     s.met.RejectedFull.Load(),
		"rejected_draining": s.met.RejectedDraining.Load(),
		"rejected_invalid":  s.met.RejectedInvalid.Load(),
		"completed":         s.met.Completed.Load(),
		"failed":            s.met.Failed.Load(),
		"cancelled":         s.met.Cancelled.Load(),
		"stalled":           s.met.Stalled.Load(),
		"resumed":           s.met.Resumed.Load(),
		"expansions":        s.met.Expansions.Load(),
		"in_flight":         s.inFlight.Load(),
		"queue_depth":       int64(s.queue.Len()),
		"ckpt_quarantined":  s.met.CkptQuarantined.Load(),
		// Overload-protection counters.
		"admitted_hit":      s.met.AdmittedHit.Load(),
		"admitted_warm":     s.met.AdmittedWarm.Load(),
		"admitted_cold":     s.met.AdmittedCold.Load(),
		"rejected_cost":     s.met.RejectedCost.Load(),
		"rejected_breaker":  s.met.RejectedBreaker.Load(),
		"rejected_deadline": s.met.RejectedDeadline.Load(),
		"shed_expired":      s.met.ShedExpired.Load(),
		"shed_evicted":      s.met.ShedEvicted.Load(),
		"degraded":          s.met.Degraded.Load(),
		"breaker_trips":     s.met.BreakerTrips.Load(),
		"breaker_open":      int64(s.brk.openCount()),
		"cost_in_use_ms":    s.costInUse.Load(),
		"cost_budget_ms":    costUnits(s.cfg.AdmitBudget),
		// Storage-robustness and memory-governor counters.
		"storage_state":           s.storage.current(),
		"storage_faults":          s.met.StorageFaults.Load(),
		"storage_degraded_jobs":   s.met.StorageDegradedJobs.Load(),
		"storage_recoveries":      s.met.StorageRecoveries.Load(),
		"checkpoints_gced":        s.met.CkptGCed.Load(),
		"governor_stops":          s.met.GovernorStops.Load(),
		"governor_evicted_states": s.met.GovernorEvicted.Load(),
		// Hostile-traffic counters.
		"rejected_too_large":    s.met.RejectedTooLarge.Load(),
		"rejected_ingest":       s.met.RejectedIngest.Load(),
		"rejected_bomb":         s.met.RejectedBomb.Load(),
		"rejected_client_rate":  s.met.RejectedClientRate.Load(),
		"rejected_client_share": s.met.RejectedClientShare.Load(),
		"rejected_client_queue": s.met.RejectedClientQueue.Load(),
	}
	if s.clients.enabled() {
		out["clients"] = s.clients.snapshot()
	}
	if s.cfg.Cache != nil {
		out["cache_hits"] = s.met.CacheHits.Load()
		out["cache_misses"] = s.met.CacheMisses.Load()
		out["cache_warm_starts"] = s.met.CacheWarmStarts.Load()
		out["flight_shared"] = s.met.FlightShared.Load()
		out["cache"] = s.cfg.Cache.Stats()
		out["cache_hit_latency_sec"] = s.hitLat.percentiles()
		out["cache_miss_latency_sec"] = s.missLat.percentiles()
	}
	writeJSON(w, http.StatusOK, out)
}

func httpError(w http.ResponseWriter, code int, format string, args ...any) {
	writeJSON(w, code, map[string]string{"error": fmt.Sprintf(format, args...)})
}

// httpReject writes a structured rejection: the human-readable error plus
// a stable machine-readable reason code clients (and the hostile chaos
// harness) can branch on without parsing prose.
func httpReject(w http.ResponseWriter, code int, reason string, format string, args ...any) {
	writeJSON(w, code, map[string]string{
		"error":  fmt.Sprintf(format, args...),
		"reason": reason,
	})
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(v)
}
