package serve

// Degraded anytime responses: a search truncated by a client deadline still
// holds a best-so-far plan (the search is anytime), so instead of reporting
// a timeout the job settles done with the strongest servable tier from the
// internal/robust fallback ladder, explicitly marked degraded.

import (
	"magis/internal/opt"
	"magis/internal/robust"
)

// degradedFallback decides whether a deadline-limited job can settle as a
// degraded success, and picks the tier. Returns nil when the job should
// take its natural outcome (not deadline-limited, ran to completion in
// time, or nothing servable survives).
//
// Two paths lead here:
//
//   - err == nil, search truncated by the client deadline: the best-so-far
//     state already passed any requested verification in searchJob, so it
//     is served as TierBest without re-verifying.
//   - err != nil on an uninterrupted deadline-limited job (typically the
//     truncated best-so-far failing verification): descend the ladder, but
//     on this path a tier must verify before it is served — a failure
//     already happened, so nothing unvetted leaves the building.
func (s *Server) degradedFallback(j *job, res *opt.Result, err error) *robust.Anytime {
	if res == nil || !j.isDeadlineLimited() {
		return nil
	}
	if err == nil {
		if res.Stopped != opt.StopDeadline && res.Stopped != opt.StopCancelled {
			return nil
		}
		any, ferr := robust.Fallback(nil, res, false, j.req.VerifySeed)
		if ferr != nil {
			return nil
		}
		any.Verified = j.verifiedOK()
		return any
	}
	if j.interruptedReason() != reasonNone {
		return nil
	}
	any, ferr := robust.Fallback(nil, res, true, j.req.VerifySeed)
	if ferr != nil {
		return nil
	}
	return any
}

func (j *job) isDeadlineLimited() bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.deadlineLimited
}

func (j *job) verifiedOK() bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.verified
}
