package serve

// Tests for the overload-protection layer: resource-aware admission,
// deadline-aware shedding, degraded anytime responses, the per-workload
// circuit breaker, and the requeue/drain race. Run with -race in CI.

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"os"
	"runtime"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"magis/internal/opt"
	"magis/internal/plancache"
)

// metricsOf fetches /metrics as float64s for the keys under test.
func metricsOf(t *testing.T, ts *httptest.Server) map[string]any {
	t.Helper()
	_, m := get(t, ts, "/metrics")
	return m
}

// assertConservation checks the queue-conservation invariant once the
// server is quiet: every admitted job settled in exactly one terminal
// bucket, and all admission cost was returned.
func assertConservation(t *testing.T, s *Server, ts *httptest.Server) {
	t.Helper()
	waitFor(t, "server to go quiet", func() bool {
		return s.queue.Len() == 0 && s.inFlight.Load() == 0
	})
	m := metricsOf(t, ts)
	admitted := m["admitted"].(float64)
	settled := m["completed"].(float64) + m["failed"].(float64) + m["cancelled"].(float64) +
		m["shed_expired"].(float64) + m["shed_evicted"].(float64)
	if admitted != settled {
		t.Errorf("conservation violated: admitted %v != settled %v (%v)", admitted, settled, m)
	}
	if held := s.costInUse.Load(); held != 0 {
		t.Errorf("admission cost leaked: %d units still held after all jobs settled", held)
	}
}

// TestResourceAwareAdmission: jobs are priced up-front and admitted against
// the cost budget, not just queue slots; an idle server admits any single
// job (no permanent rejection of oversized work); rejections carry
// backlog-derived Retry-After hints.
func TestResourceAwareAdmission(t *testing.T) {
	release := make(chan struct{})
	s := New(Config{
		Model:       testModel(),
		QueueDepth:  8,
		Workers:     1,
		StallWindow: -1,
		// Default budget 10s prices one cold mlp job at ~10.1s; a 15s
		// admission budget fits one such job but not two.
		AdmitBudget: 15 * time.Second,
	})
	s.runSearch = func(ctx context.Context, j *job) (*opt.Result, error) {
		select {
		case <-release:
		case <-ctx.Done():
		}
		return tinyResult(opt.StopConverged), nil
	}
	s.Start()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	// First job: admitted even though its price alone fills most of the
	// budget (idle-server exception is not even needed here).
	if code, body := post(t, ts, `{"model":"mlp"}`); code != http.StatusAccepted {
		t.Fatalf("first job: %d %v", code, body)
	}
	if got := s.costInUse.Load(); got <= 0 {
		t.Fatalf("no admission cost held after admit: %d", got)
	}

	// Second identical job: the held cost plus its price exceeds the
	// budget — rejected 429 with a Retry-After hint, even though seven
	// queue slots are free.
	resp, err := http.Post(ts.URL+"/optimize", "application/json", strings.NewReader(`{"model":"mlp"}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("over-budget job: status %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("cost rejection without Retry-After header")
	}

	m := metricsOf(t, ts)
	if m["rejected_cost"].(float64) != 1 {
		t.Errorf("rejected_cost %v, want 1", m["rejected_cost"])
	}
	if m["admitted_cold"].(float64) != 1 {
		t.Errorf("admitted_cold %v, want 1 (no cache configured: every job is cold)", m["admitted_cold"])
	}
	if m["cost_in_use_ms"].(float64) <= 0 || m["cost_budget_ms"].(float64) != 15000 {
		t.Errorf("cost gauges %v/%v, want positive/15000", m["cost_in_use_ms"], m["cost_budget_ms"])
	}

	// Once the first job settles its cost is returned, and the next
	// admission — still bigger than the remaining headroom alone — goes
	// through because the server is idle.
	close(release)
	waitFor(t, "first job to settle", func() bool { return s.costInUse.Load() == 0 })
	if code, body := post(t, ts, `{"model":"mlp"}`); code != http.StatusAccepted {
		t.Fatalf("idle-server admission: %d %v", code, body)
	}

	drainServer(t, s)
	assertConservation(t, s, ts)
}

// TestAdmissionClasses: with a plan cache wired in, the admission
// estimator classifies jobs hit/warm/cold via the index-only Probe and the
// per-class counters move accordingly. Uses real searches (tiny workload)
// so the cache actually fills.
func TestAdmissionClasses(t *testing.T) {
	s := New(cacheServerConfig(t, 1))
	s.Start()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	defer drainServer(t, s)

	run := func(body string) {
		t.Helper()
		code, resp := post(t, ts, body)
		if code != http.StatusAccepted {
			t.Fatalf("submit %s: %d %v", body, code, resp)
		}
		id := resp["id"].(string)
		waitFor(t, "job "+id, func() bool {
			_, v := get(t, ts, "/jobs/"+id)
			if v["state"] == stateFailed || v["state"] == stateCancelled {
				t.Fatalf("job settled badly: %v", v)
			}
			return v["state"] == stateDone
		})
	}

	// Cold: empty cache.
	run(cacheReq)
	if m := metricsOf(t, ts); m["admitted_cold"].(float64) != 1 {
		t.Fatalf("after first job: admitted_cold=%v, want 1 (%v)", m["admitted_cold"], m)
	}

	// Hit: identical request, entry now cached.
	run(cacheReq)
	if m := metricsOf(t, ts); m["admitted_hit"].(float64) != 1 {
		t.Errorf("after identical job: admitted_hit=%v, want 1", m["admitted_hit"])
	}

	// Warm: same graph, different budget — a near miss, not an exact hit.
	run(`{"model":"mlp","scale":0.01,"budget":"29s","iterations":12,"workers":1}`)
	if m := metricsOf(t, ts); m["admitted_warm"].(float64) != 1 {
		t.Errorf("after near-miss job: admitted_warm=%v, want 1", m["admitted_warm"])
	}
}

// TestDeadlineShedding: a queued job whose deadline becomes unmeetable is
// shed by the sweep before any worker runs it, and an arriving request
// whose deadline is below even the minimum feasible service time is
// rejected at the door.
func TestDeadlineShedding(t *testing.T) {
	block := make(chan struct{})
	s := New(Config{
		Model:       testModel(),
		QueueDepth:  4,
		Workers:     1,
		StallWindow: time.Hour, // watchdog on (shed sweep), stall scan inert
		StallPoll:   10 * time.Millisecond,
	})
	started := make(chan string, 8)
	s.runSearch = func(ctx context.Context, j *job) (*opt.Result, error) {
		started <- j.id
		select {
		case <-block:
		case <-ctx.Done():
		}
		return tinyResult(opt.StopConverged), nil
	}
	s.Start()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	// Occupy the worker.
	if code, body := post(t, ts, `{"model":"mlp"}`); code != http.StatusAccepted {
		t.Fatalf("blocker: %d %v", code, body)
	}
	<-started

	// Queue a job that can only meet its deadline if it starts almost
	// immediately: a short search budget keeps the service estimate small
	// so admission accepts it, and the blocked worker then dooms it.
	code, body := post(t, ts, `{"model":"mlp","budget":"100ms","deadline":"400ms"}`)
	if code != http.StatusAccepted {
		t.Fatalf("deadline job: %d %v", code, body)
	}
	id := body["id"].(string)

	// The sweep sheds it without running it.
	waitFor(t, "doomed job to be shed", func() bool {
		_, v := get(t, ts, "/jobs/"+id)
		return v["state"] == stateShed
	})
	_, v := get(t, ts, "/jobs/"+id)
	if !strings.Contains(v["error"].(string), "shed") {
		t.Errorf("shed job error %q, want a shed explanation", v["error"])
	}
	if m := metricsOf(t, ts); m["shed_expired"].(float64) != 1 {
		t.Errorf("shed_expired %v, want 1", m["shed_expired"])
	}
	select {
	case got := <-started:
		t.Fatalf("shed job reached a worker (%s)", got)
	default:
	}

	// Doomed on arrival: deadline below the minimum feasible service time.
	code, body = post(t, ts, `{"model":"mlp","deadline":"1ms"}`)
	if code != http.StatusUnprocessableEntity {
		t.Fatalf("infeasible deadline: %d %v, want 422", code, body)
	}
	if m := metricsOf(t, ts); m["rejected_deadline"].(float64) != 1 {
		t.Errorf("rejected_deadline %v, want 1", m["rejected_deadline"])
	}

	close(block)
	drainServer(t, s)
	assertConservation(t, s, ts)
}

// TestDeadlineQueueOrderAndEviction: the queue is earliest-deadline-first,
// and under a full queue a deadline-urgent arrival evicts the cheapest
// strictly-laxer queued job instead of being rejected.
func TestDeadlineQueueOrderAndEviction(t *testing.T) {
	block := make(chan struct{})
	s := New(Config{Model: testModel(), QueueDepth: 2, Workers: 1, StallWindow: -1})
	started := make(chan string, 8)
	s.runSearch = func(ctx context.Context, j *job) (*opt.Result, error) {
		started <- j.id
		select {
		case <-block:
		case <-ctx.Done():
		}
		return tinyResult(opt.StopConverged), nil
	}
	s.Start()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	submit := func(body string) string {
		t.Helper()
		code, resp := post(t, ts, body)
		if code != http.StatusAccepted {
			t.Fatalf("submit %s: %d %v", body, code, resp)
		}
		return resp["id"].(string)
	}

	blocker := submit(`{"model":"mlp"}`)
	if got := <-started; got != blocker {
		t.Fatalf("started %s, want blocker %s", got, blocker)
	}
	// Fill the queue: one deadline-less job, one with a lax deadline.
	lazy := submit(`{"model":"mlp"}`)
	laxed := submit(`{"model":"mlp","deadline":"2h"}`)

	// Queue full + urgent arrival: the deadline-less job (cheapest laxer
	// victim) is evicted to make room.
	urgent := submit(`{"model":"mlp","deadline":"1h"}`)
	_, v := get(t, ts, "/jobs/"+lazy)
	if v["state"] != stateShed {
		t.Fatalf("deadline-less job not evicted under pressure: %v", v)
	}
	if m := metricsOf(t, ts); m["shed_evicted"].(float64) != 1 {
		t.Errorf("shed_evicted %v, want 1", m["shed_evicted"])
	}

	// EDF pop order: the 1h deadline runs before the 2h deadline.
	close(block)
	first, second := <-started, <-started
	if first != urgent || second != laxed {
		t.Errorf("pop order (%s, %s), want urgent %s before lax %s", first, second, urgent, laxed)
	}

	drainServer(t, s)
	assertConservation(t, s, ts)
}

// TestDegradedAnytimeResponse: a search truncated by its client deadline
// settles done with the best-so-far plan explicitly marked degraded — not
// an error, not an unlabeled success.
func TestDegradedAnytimeResponse(t *testing.T) {
	s := New(Config{Model: testModel(), QueueDepth: 4, Workers: 1, StallWindow: -1})
	s.runSearch = func(ctx context.Context, j *job) (*opt.Result, error) {
		<-ctx.Done() // run until the deadline trips
		return tinyResult(opt.StopDeadline), nil
	}
	s.Start()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	// Deadline (300ms) far below the search budget (10s): the client
	// deadline is the binding constraint.
	code, body := post(t, ts, `{"model":"mlp","budget":"10s","deadline":"300ms"}`)
	if code != http.StatusAccepted {
		t.Fatalf("submit: %d %v", code, body)
	}
	id := body["id"].(string)
	waitFor(t, "deadline-limited job to settle", func() bool {
		_, v := get(t, ts, "/jobs/"+id)
		return v["state"] == stateDone
	})
	_, v := get(t, ts, "/jobs/"+id)
	res := v["result"].(map[string]any)
	if res["degraded"] != true {
		t.Fatalf("truncated response not marked degraded: %v", res)
	}
	if res["degraded_tier"] != "best-so-far" {
		t.Errorf("degraded_tier %v, want best-so-far", res["degraded_tier"])
	}
	if m := metricsOf(t, ts); m["degraded"].(float64) != 1 {
		t.Errorf("degraded counter %v, want 1", m["degraded"])
	}

	// Control: the same search WITHOUT a client deadline settles as a
	// plain (non-degraded) result even though it also stopped on its own
	// deadline — budget exhaustion is normal anytime behavior, not
	// degradation.
	code, body = post(t, ts, `{"model":"mlp","budget":"50ms"}`)
	if code != http.StatusAccepted {
		t.Fatalf("control submit: %d %v", code, body)
	}
	id = body["id"].(string)
	waitFor(t, "control job to settle", func() bool {
		_, v := get(t, ts, "/jobs/"+id)
		return v["state"] == stateDone
	})
	_, v = get(t, ts, "/jobs/"+id)
	if res := v["result"].(map[string]any); res["degraded"] == true {
		t.Errorf("budget-bound search wrongly marked degraded: %v", res)
	}

	drainServer(t, s)
	assertConservation(t, s, ts)
}

// TestDegradedFallbackOnVerifyFailure: when the truncated best-so-far
// errors (e.g. fails verification), the response descends the fallback
// ladder to a verified baseline instead of failing the job.
func TestDegradedFallbackOnVerifyFailure(t *testing.T) {
	s := New(Config{Model: testModel(), QueueDepth: 4, Workers: 1, StallWindow: -1})
	s.runSearch = func(ctx context.Context, j *job) (*opt.Result, error) {
		<-ctx.Done()
		// Result carries a baseline but no best: the error path must fall
		// back to the (verifiable) baseline tier.
		r := tinyResult(opt.StopDeadline)
		r.Best = nil
		return r, errors.New("synthetic: best-so-far failed verification")
	}
	s.Start()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	code, body := post(t, ts, `{"model":"mlp","budget":"10s","deadline":"300ms"}`)
	if code != http.StatusAccepted {
		t.Fatalf("submit: %d %v", code, body)
	}
	id := body["id"].(string)
	waitFor(t, "job to settle", func() bool {
		_, v := get(t, ts, "/jobs/"+id)
		return v["state"] == stateDone || v["state"] == stateFailed
	})
	_, v := get(t, ts, "/jobs/"+id)
	if v["state"] != stateDone {
		t.Fatalf("job settled %v, want done via baseline fallback (%v)", v["state"], v)
	}
	res := v["result"].(map[string]any)
	if res["degraded"] != true || res["degraded_tier"] != "baseline" {
		t.Errorf("fallback summary %v, want degraded baseline tier", res)
	}
	if res["verified"] != true {
		t.Errorf("error-path fallback must be verified before serving: %v", res)
	}

	drainServer(t, s)
	assertConservation(t, s, ts)
}

// TestBreakerIsolatesPoisonWorkload: repeated failures of one workload
// open its breaker — that workload is rejected at admission while other
// workloads keep serving — and after the cooloff a half-open probe decides
// between closing and re-opening.
func TestBreakerIsolatesPoisonWorkload(t *testing.T) {
	var poisoned atomic.Bool
	poisoned.Store(true)
	s := New(Config{
		Model:            testModel(),
		QueueDepth:       8,
		Workers:          1,
		StallWindow:      -1,
		BreakerThreshold: 2,
		BreakerCooloff:   150 * time.Millisecond,
	})
	s.runSearch = func(ctx context.Context, j *job) (*opt.Result, error) {
		if strings.EqualFold(j.req.Model, "vit") && poisoned.Load() {
			return nil, errors.New("injected failure: poison graph")
		}
		return tinyResult(opt.StopConverged), nil
	}
	s.Start()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	runToState := func(body, want string) {
		t.Helper()
		code, resp := post(t, ts, body)
		if code != http.StatusAccepted {
			t.Fatalf("submit %s: %d %v", body, code, resp)
		}
		id := resp["id"].(string)
		waitFor(t, "job "+id, func() bool {
			_, v := get(t, ts, "/jobs/"+id)
			return v["state"] == want
		})
	}

	// Two consecutive failures trip the breaker for vit|1|mem.
	runToState(`{"model":"vit"}`, stateFailed)
	runToState(`{"model":"vit"}`, stateFailed)
	waitFor(t, "breaker to open", func() bool {
		return metricsOf(t, ts)["breaker_trips"].(float64) == 1
	})

	// The poisoned workload is now rejected at the door...
	resp, err := http.Post(ts.URL+"/optimize", "application/json", strings.NewReader(`{"model":"vit"}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("open breaker: status %d, want 503", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("breaker rejection without Retry-After header")
	}
	m := metricsOf(t, ts)
	if m["rejected_breaker"].(float64) != 1 || m["breaker_open"].(float64) != 1 {
		t.Errorf("breaker metrics rejected=%v open=%v, want 1/1", m["rejected_breaker"], m["breaker_open"])
	}

	// ...while healthy traffic on another workload serves normally.
	runToState(`{"model":"mlp"}`, stateDone)

	// After the cooloff, one probe is admitted; still poisoned, it re-trips.
	time.Sleep(200 * time.Millisecond)
	runToState(`{"model":"vit"}`, stateFailed)
	waitFor(t, "probe failure to re-trip", func() bool {
		return metricsOf(t, ts)["breaker_trips"].(float64) == 2
	})

	// Heal the workload; after another cooloff the next probe succeeds and
	// the breaker closes — subsequent requests flow freely.
	poisoned.Store(false)
	time.Sleep(200 * time.Millisecond)
	runToState(`{"model":"vit"}`, stateDone)
	if m := metricsOf(t, ts); m["breaker_open"].(float64) != 0 {
		t.Errorf("breaker still open after successful probe: %v", m["breaker_open"])
	}
	runToState(`{"model":"vit"}`, stateDone)

	drainServer(t, s)
	assertConservation(t, s, ts)
}

// TestBreakerProbeRejectedAtAdmission: a request admitted as the half-open
// probe but rejected by a later admission gate (here: an infeasible
// deadline) must hand the probe slot back — the next request of that
// workload becomes the new probe instead of hitting a permanently wedged
// 503.
func TestBreakerProbeRejectedAtAdmission(t *testing.T) {
	var poisoned atomic.Bool
	poisoned.Store(true)
	s := New(Config{
		Model:            testModel(),
		QueueDepth:       8,
		Workers:          1,
		StallWindow:      -1,
		BreakerThreshold: 2,
		BreakerCooloff:   100 * time.Millisecond,
	})
	s.runSearch = func(ctx context.Context, j *job) (*opt.Result, error) {
		if poisoned.Load() {
			return nil, errors.New("injected failure: poison graph")
		}
		return tinyResult(opt.StopConverged), nil
	}
	s.Start()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	runToState := func(body, want string) {
		t.Helper()
		code, resp := post(t, ts, body)
		if code != http.StatusAccepted {
			t.Fatalf("submit %s: %d %v", body, code, resp)
		}
		id := resp["id"].(string)
		waitFor(t, "job "+id, func() bool {
			_, v := get(t, ts, "/jobs/"+id)
			return v["state"] == want
		})
	}

	// Trip the breaker for vit|1|mem, then let the cooloff elapse.
	runToState(`{"model":"vit"}`, stateFailed)
	runToState(`{"model":"vit"}`, stateFailed)
	waitFor(t, "breaker to open", func() bool {
		return metricsOf(t, ts)["breaker_trips"].(float64) == 1
	})
	poisoned.Store(false)
	time.Sleep(150 * time.Millisecond)

	// This request is admitted past the breaker as the probe, then rejected
	// by the doomed-deadline gate. The probe slot must come back with it.
	code, body := post(t, ts, `{"model":"vit","deadline":"1ms"}`)
	if code != http.StatusUnprocessableEntity {
		t.Fatalf("infeasible-deadline probe: %d %v, want 422", code, body)
	}

	// The workload heals on the very next request: it must be admitted as
	// the new probe (not 503 forever) and close the breaker.
	runToState(`{"model":"vit"}`, stateDone)
	if m := metricsOf(t, ts); m["breaker_open"].(float64) != 0 {
		t.Errorf("breaker still open after successful probe: %v", m["breaker_open"])
	}

	drainServer(t, s)
}

// TestBreakerProbeShedReleasesSlot: a half-open probe that is shed from
// the queue (deadline became unmeetable behind a busy worker) settles
// without a verdict and must release the probe slot, so the workload stays
// probeable instead of wedging open.
func TestBreakerProbeShedReleasesSlot(t *testing.T) {
	var poisoned atomic.Bool
	poisoned.Store(true)
	block := make(chan struct{})
	s := New(Config{
		Model:            testModel(),
		QueueDepth:       8,
		Workers:          1,
		StallWindow:      time.Hour, // watchdog on: its tick runs the shed sweep
		StallPoll:        10 * time.Millisecond,
		BreakerThreshold: 2,
		BreakerCooloff:   100 * time.Millisecond,
	})
	started := make(chan string, 8)
	s.runSearch = func(ctx context.Context, j *job) (*opt.Result, error) {
		if strings.EqualFold(j.req.Model, "vit") && poisoned.Load() {
			return nil, errors.New("injected failure: poison graph")
		}
		started <- j.id
		select {
		case <-block:
		case <-ctx.Done():
		}
		return tinyResult(opt.StopConverged), nil
	}
	s.Start()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	submit := func(body string) (string, map[string]any) {
		t.Helper()
		code, resp := post(t, ts, body)
		if code != http.StatusAccepted {
			t.Fatalf("submit %s: %d %v", body, code, resp)
		}
		return resp["id"].(string), resp
	}

	// Trip the breaker for vit|1|mem.
	for i := 0; i < 2; i++ {
		id, _ := submit(`{"model":"vit"}`)
		waitFor(t, "poison job "+id, func() bool {
			_, v := get(t, ts, "/jobs/"+id)
			return v["state"] == stateFailed
		})
	}
	poisoned.Store(false)

	// Wedge the worker on a healthy workload, let the cooloff elapse, and
	// queue the vit probe with a deadline it cannot meet behind the
	// blocker: the sweep sheds it before it ever runs.
	blocker, _ := submit(`{"model":"mlp"}`)
	<-started
	time.Sleep(150 * time.Millisecond)
	probeID, _ := submit(`{"model":"vit","budget":"100ms","deadline":"400ms"}`)
	waitFor(t, "probe to be shed", func() bool {
		_, v := get(t, ts, "/jobs/"+probeID)
		return v["state"] == stateShed
	})

	// The shed probe released its slot: the next vit request is admitted as
	// the new probe, succeeds once the worker frees up, and closes the
	// breaker.
	healID, _ := submit(`{"model":"vit"}`)
	close(block)
	waitFor(t, "blocker "+blocker+" and probe "+healID+" to finish", func() bool {
		_, v := get(t, ts, "/jobs/"+healID)
		return v["state"] == stateDone
	})
	if m := metricsOf(t, ts); m["breaker_open"].(float64) != 0 {
		t.Errorf("breaker still open after successful probe: %v", m["breaker_open"])
	}

	drainServer(t, s)
	assertConservation(t, s, ts)
}

// TestDeadlineErrorIsNotBreakerFailure: jobs that die of the client's own
// deadline (context.DeadlineExceeded surfacing from the search or a
// shared-flight wait) are the client's clock, not the workload failing —
// they must not accumulate into a breaker trip that 503s healthy traffic.
func TestDeadlineErrorIsNotBreakerFailure(t *testing.T) {
	s := New(Config{
		Model:            testModel(),
		QueueDepth:       8,
		Workers:          1,
		StallWindow:      -1,
		BreakerThreshold: 2,
		BreakerCooloff:   time.Hour, // a wrongful trip would be obvious: 503 until the test times out
	})
	s.runSearch = func(ctx context.Context, j *job) (*opt.Result, error) {
		<-ctx.Done() // a healthy-but-slow search: only the client's deadline ends it
		return nil, ctx.Err()
	}
	s.Start()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	// Several tight-deadline clients in a row, well past the threshold.
	for i := 0; i < 3; i++ {
		code, body := post(t, ts, `{"model":"mlp","budget":"10s","deadline":"200ms"}`)
		if code != http.StatusAccepted {
			t.Fatalf("tight-deadline job %d: %d %v", i, code, body)
		}
		id := body["id"].(string)
		waitFor(t, "job "+id, func() bool {
			_, v := get(t, ts, "/jobs/"+id)
			return v["state"] == stateFailed
		})
	}

	// The workload's breaker never tripped: the next request sails in.
	if m := metricsOf(t, ts); m["breaker_trips"].(float64) != 0 || m["breaker_open"].(float64) != 0 {
		t.Fatalf("deadline deaths tripped the breaker: trips=%v open=%v",
			m["breaker_trips"], m["breaker_open"])
	}
	if code, body := post(t, ts, `{"model":"mlp","deadline":"10s"}`); code != http.StatusAccepted {
		t.Fatalf("healthy workload rejected after deadline deaths: %d %v", code, body)
	}

	drainServer(t, s)
	assertConservation(t, s, ts)
}

// TestNormalizeClampsWorkers: a client-supplied Workers beyond the cores
// that exist is clamped at normalize time, so it cannot shrink the
// admission estimate (and with it the cost-budget and deadline checks)
// toward zero.
func TestNormalizeClampsWorkers(t *testing.T) {
	cfg := Config{Model: testModel()}.withDefaults()
	req := OptimizeRequest{Model: "mlp", Workers: 1 << 20}
	if _, _, err := req.normalize(cfg); err != nil {
		t.Fatal(err)
	}
	if max := runtime.GOMAXPROCS(0); req.Workers != max {
		t.Errorf("workers %d not clamped to GOMAXPROCS %d", req.Workers, max)
	}
	// Negative is still rejected outright, not clamped.
	bad := OptimizeRequest{Model: "mlp", Workers: -1}
	if _, _, err := bad.normalize(cfg); err == nil {
		t.Error("negative workers passed normalize")
	}
}

// TestFailModelInjection: the chaos-soak poison flag makes the named model
// fail deterministically inside the real search path.
func TestFailModelInjection(t *testing.T) {
	s := New(Config{
		Model:       testModel(),
		QueueDepth:  4,
		Workers:     1,
		StallWindow: -1,
		FailModel:   "vit",
	})
	s.Start()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	defer drainServer(t, s)

	code, body := post(t, ts, `{"model":"vit"}`)
	if code != http.StatusAccepted {
		t.Fatalf("submit: %d %v", code, body)
	}
	id := body["id"].(string)
	waitFor(t, "poisoned job to fail", func() bool {
		_, v := get(t, ts, "/jobs/"+id)
		return v["state"] == stateFailed
	})
	_, v := get(t, ts, "/jobs/"+id)
	if !strings.Contains(v["error"].(string), "injected failure") {
		t.Errorf("poison error %q, want injected-failure marker", v["error"])
	}
}

// TestRequeueResumeDrainRace: a stalled job re-admitted for resume while
// the server drains — or while the queue is full — must settle in exactly
// one place: finished as cancelled (resumable, checkpoint on disk) or
// completed by its resume. Never lost, never stuck queued, never double-
// settled.
func TestRequeueResumeDrainRace(t *testing.T) {
	// Deterministic half: queue full at requeue time. QueueDepth 1 with
	// the single worker wedged on the stalling job and the queue slot
	// occupied leaves no room for the resume.
	t.Run("queue-full", func(t *testing.T) {
		dir := t.TempDir()
		block := make(chan struct{})
		s := New(Config{
			Model:         testModel(),
			QueueDepth:    1,
			Workers:       1,
			CheckpointDir: dir,
			StallWindow:   50 * time.Millisecond,
			StallPoll:     10 * time.Millisecond,
		})
		s.runSearch = func(ctx context.Context, j *job) (*opt.Result, error) {
			if j.resumeFrom() != "" {
				return tinyResult(opt.StopConverged), nil
			}
			if j.id == "job-1" {
				// Stall: write a snapshot, then wedge without progress.
				if err := os.WriteFile(s.checkpointPath(j.id), []byte("snapshot"), 0o644); err != nil {
					return nil, err
				}
				<-ctx.Done()
				return tinyResult(opt.StopCancelled), nil
			}
			// The queue occupant: keep progress fresh so only job-1 stalls.
			for {
				select {
				case <-block:
					return tinyResult(opt.StopConverged), nil
				case <-ctx.Done():
					return tinyResult(opt.StopCancelled), nil
				case <-time.After(5 * time.Millisecond):
					j.progress(1)
				}
			}
		}
		s.Start()
		ts := httptest.NewServer(s.Handler())
		defer ts.Close()

		code, body := post(t, ts, `{"model":"mlp"}`) // job-1: will stall
		if code != http.StatusAccepted {
			t.Fatalf("submit staller: %d %v", code, body)
		}
		staller := body["id"].(string)
		code, _ = post(t, ts, `{"model":"mlp"}`) // job-2: fills the only queue slot
		if code != http.StatusAccepted {
			t.Fatal("submit queue filler failed")
		}

		// The watchdog cancels job-1; requeueResume finds the queue full and
		// the job must settle as cancelled-but-resumable, exactly once.
		waitFor(t, "stalled job to settle", func() bool {
			_, v := get(t, ts, "/jobs/"+staller)
			return v["state"] == stateCancelled
		})
		_, v := get(t, ts, "/jobs/"+staller)
		if v["resumable"] != true {
			t.Errorf("cancelled stalled job not resumable: %v", v)
		}
		if _, err := os.Stat(s.checkpointPath(staller)); err != nil {
			t.Errorf("checkpoint missing for cancelled job: %v", err)
		}
		close(block)
		drainServer(t, s)
		assertConservation(t, s, ts)
	})

	// Racy half: drain lands around the stall-resume decision. Loop the
	// race; whatever interleaving occurs, the job must end terminal —
	// done (resume won) or cancelled with its checkpoint on disk (drain
	// won) — and the books must balance.
	t.Run("drain-race", func(t *testing.T) {
		for i := 0; i < 10; i++ {
			dir := t.TempDir()
			s := New(Config{
				Model:         testModel(),
				QueueDepth:    4,
				Workers:       1,
				CheckpointDir: dir,
				StallWindow:   20 * time.Millisecond,
				StallPoll:     5 * time.Millisecond,
			})
			stallStarted := make(chan struct{}, 1)
			s.runSearch = func(ctx context.Context, j *job) (*opt.Result, error) {
				if j.resumeFrom() != "" {
					return tinyResult(opt.StopConverged), nil
				}
				if err := os.WriteFile(s.checkpointPath(j.id), []byte("snapshot"), 0o644); err != nil {
					return nil, err
				}
				select {
				case stallStarted <- struct{}{}:
				default:
				}
				<-ctx.Done()
				return tinyResult(opt.StopCancelled), nil
			}
			s.Start()
			ts := httptest.NewServer(s.Handler())

			code, body := post(t, ts, `{"model":"mlp"}`)
			if code != http.StatusAccepted {
				t.Fatalf("iter %d: submit: %d %v", i, code, body)
			}
			id := body["id"].(string)
			<-stallStarted
			// Race drain against the watchdog's stall->requeue path.
			time.Sleep(time.Duration(i) * 7 * time.Millisecond)
			drainServer(t, s)

			_, v := get0(t, s, "/jobs/"+id)
			switch v["state"] {
			case stateDone:
				// Resume won the race and completed before drain.
			case stateCancelled:
				// Drain won; the checkpoint must be on disk for the next
				// incarnation.
				if _, err := os.Stat(s.checkpointPath(id)); err != nil {
					t.Errorf("iter %d: cancelled without checkpoint: %v", i, err)
				}
				if v["resumable"] != true {
					t.Errorf("iter %d: cancelled job not resumable: %v", i, v)
				}
			default:
				t.Fatalf("iter %d: job stuck in state %v (%v)", i, v["state"], v)
			}
			if held := s.costInUse.Load(); held != 0 {
				t.Errorf("iter %d: %d cost units leaked", i, held)
			}
			ts.Close()
		}
	})
}

// TestProbeClassMatchesCacheFlow: the fingerprint the admission estimator
// probes with is the fingerprint the cache flow uses — a Probe hit implies
// the Get hits too (modulo concurrent eviction).
func TestProbeClassMatchesCacheFlow(t *testing.T) {
	s := New(cacheServerConfig(t, 1))
	s.Start()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	defer drainServer(t, s)

	code, resp := post(t, ts, cacheReq)
	if code != http.StatusAccepted {
		t.Fatalf("seed job: %d %v", code, resp)
	}
	id := resp["id"].(string)
	waitFor(t, "seed job", func() bool {
		_, v := get(t, ts, "/jobs/"+id)
		return v["state"] == stateDone
	})

	var req OptimizeRequest
	if err := json.Unmarshal([]byte(cacheReq), &req); err != nil {
		t.Fatal(err)
	}
	budget, _, err := req.normalize(s.cfg)
	if err != nil {
		t.Fatal(err)
	}
	j := s.newJob(req, budget, anonClient, nil)
	defer s.forget(j)
	if err := s.estimateJob(j); err != nil {
		t.Fatal(err)
	}
	if j.class != plancache.ClassHit {
		t.Fatalf("estimator classified cached request as %v, want hit", j.class)
	}
	if j.estServe != hitServeCost {
		t.Errorf("hit-class estimate %v, want %v", j.estServe, hitServeCost)
	}
}
