package serve

// jobQueue is the deadline-aware admission queue: a bounded,
// earliest-deadline-first priority queue replacing the plain FIFO channel.
// Jobs with a client deadline pop before jobs without one; among equals,
// admission order wins. The queue never blocks producers — push is a
// reject-on-full admission decision — and supports the shedding sweeps
// the overload layer runs (removing doomed jobs, evicting a victim to
// make room for more urgent work).
import (
	"sync"
	"time"
)

type jobQueue struct {
	mu    sync.Mutex
	cond  *sync.Cond
	items []*job // EDF order: items[0] pops next
	limit int
	// clientCap bounds how many queued jobs one client identity may hold
	// (0 = unlimited). Enforced inside push, under the queue lock, so
	// concurrent same-client arrivals cannot jointly overshoot it.
	clientCap int
	closed    bool
	seq       int64
}

// pushVerdict is push's admission decision: the queue distinguishes "no
// room for anyone" from "no room for *this client*" because the two
// reject with different reasons and only the former justifies eviction.
type pushVerdict int

const (
	pushOK pushVerdict = iota
	pushFull
	pushClientFull
)

func newJobQueue(limit, clientCap int) *jobQueue {
	q := &jobQueue{limit: limit, clientCap: clientCap}
	q.cond = sync.NewCond(&q.mu)
	return q
}

// edfBefore orders a ahead of b: earlier deadline first, deadline-less
// jobs last, admission sequence as the tiebreak. Caller holds no job
// locks; deadline and seq are immutable after admission.
func edfBefore(a, b *job) bool {
	switch {
	case a.deadline.IsZero() && b.deadline.IsZero():
		return a.seq < b.seq
	case a.deadline.IsZero():
		return false
	case b.deadline.IsZero():
		return true
	case !a.deadline.Equal(b.deadline):
		return a.deadline.Before(b.deadline)
	default:
		return a.seq < b.seq
	}
}

// push admits j, keeping EDF order. It rejects — without blocking — when
// the queue is full or closed, or when j's client already holds its full
// per-client allotment of slots. Queue depths are small (tens), so an
// ordered insert and a linear client count beat heap bookkeeping.
func (q *jobQueue) push(j *job) pushVerdict {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.closed || len(q.items) >= q.limit {
		return pushFull
	}
	if q.clientCap > 0 && j.client != "" {
		n := 0
		for _, it := range q.items {
			if it.client == j.client {
				n++
			}
		}
		if n >= q.clientCap {
			return pushClientFull
		}
	}
	q.seq++
	j.seq = q.seq
	i := len(q.items)
	for i > 0 && edfBefore(j, q.items[i-1]) {
		i--
	}
	q.items = append(q.items, nil)
	copy(q.items[i+1:], q.items[i:])
	q.items[i] = j
	q.cond.Signal()
	return pushOK
}

// pop blocks until a job is available or the queue closes; ok=false means
// closed-and-empty (worker shutdown).
func (q *jobQueue) pop() (*job, bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	for len(q.items) == 0 && !q.closed {
		q.cond.Wait()
	}
	if len(q.items) == 0 {
		return nil, false
	}
	j := q.items[0]
	q.items = q.items[1:]
	return j, true
}

// close stops pops permanently. Remaining items are left for drainAll, so
// a drain can settle them as cancelled instead of silently dropping them.
func (q *jobQueue) close() {
	q.mu.Lock()
	q.closed = true
	q.mu.Unlock()
	q.cond.Broadcast()
}

// drainAll removes and returns everything queued.
func (q *jobQueue) drainAll() []*job {
	q.mu.Lock()
	defer q.mu.Unlock()
	out := q.items
	q.items = nil
	return out
}

// removeIf removes every queued job matching pred, preserving order among
// the rest. The shedding sweep uses it to drop jobs whose deadline can no
// longer be met before they ever occupy a worker.
func (q *jobQueue) removeIf(pred func(*job) bool) []*job {
	q.mu.Lock()
	defer q.mu.Unlock()
	var removed []*job
	kept := q.items[:0]
	for _, j := range q.items {
		if pred(j) {
			removed = append(removed, j)
		} else {
			kept = append(kept, j)
		}
	}
	q.items = kept
	return removed
}

// evictOne removes and returns the queued job minimizing cost among those
// matching pred (cheapest-first eviction under pressure), or nil when no
// job matches. Cost ties resolve to the later queue position — the queue
// is EDF-ordered, so among equally cheap victims the laxest one is shed.
func (q *jobQueue) evictOne(pred func(*job) bool, cost func(*job) int64) *job {
	q.mu.Lock()
	defer q.mu.Unlock()
	best := -1
	for i, j := range q.items {
		if !pred(j) {
			continue
		}
		if best < 0 || cost(j) <= cost(q.items[best]) {
			best = i
		}
	}
	if best < 0 {
		return nil
	}
	victim := q.items[best]
	q.items = append(q.items[:best], q.items[best+1:]...)
	return victim
}

// Len and Cap report queue occupancy for /healthz and /metrics.
func (q *jobQueue) Len() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return len(q.items)
}

func (q *jobQueue) Cap() int { return q.limit }

// nextDeadline reports the earliest queued deadline (zero time when the
// queue is empty or deadline-less); Retry-After hints use it.
func (q *jobQueue) nextDeadline() time.Time {
	q.mu.Lock()
	defer q.mu.Unlock()
	if len(q.items) == 0 {
		return time.Time{}
	}
	return q.items[0].deadline
}
