package serve

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"magis/internal/cost"
	"magis/internal/models"
	"magis/internal/opt"
)

func testModel() *cost.Model { return cost.NewModel(cost.RTX3090()) }

// tinyResult is a well-formed search result for fake searchFns.
func tinyResult(stopped opt.StopReason) *opt.Result {
	w := models.MLP(8, 4, 8, 4, 1)
	base := opt.Baseline(w.G, testModel())
	return &opt.Result{Best: base, Baseline: base, Stopped: stopped}
}

func drainServer(t *testing.T, s *Server) {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := s.Drain(ctx); err != nil {
		t.Fatalf("drain: %v", err)
	}
}

// post submits a body to /optimize and returns status code + decoded JSON.
func post(t *testing.T, ts *httptest.Server, body string) (int, map[string]any) {
	t.Helper()
	resp, err := http.Post(ts.URL+"/optimize", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var m map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&m); err != nil {
		t.Fatalf("decode response: %v", err)
	}
	return resp.StatusCode, m
}

func get(t *testing.T, ts *httptest.Server, path string) (int, map[string]any) {
	t.Helper()
	resp, err := http.Get(ts.URL + path)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var m map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&m); err != nil {
		t.Fatalf("decode response: %v", err)
	}
	return resp.StatusCode, m
}

// waitFor polls until cond holds or the deadline passes.
func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

// TestAdmissionControl pins the overload contract: with the worker busy and
// the queue full, /optimize rejects with 429 + Retry-After without starting
// any work, /healthz reports the load picture, and a draining server
// rejects with 503.
func TestAdmissionControl(t *testing.T) {
	started := make(chan string, 16)
	release := make(chan struct{})
	s := New(Config{Model: testModel(), QueueDepth: 2, Workers: 1, StallWindow: -1})
	s.runSearch = func(ctx context.Context, j *job) (*opt.Result, error) {
		started <- j.id
		select {
		case <-release:
		case <-ctx.Done():
		}
		return tinyResult(opt.StopConverged), nil
	}
	s.Start()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	// One job occupies the worker, two fill the queue.
	for i := 0; i < 3; i++ {
		if code, body := post(t, ts, `{"model":"mlp"}`); code != http.StatusAccepted {
			t.Fatalf("job %d: status %d (%v), want 202", i, code, body)
		}
	}
	<-started
	waitFor(t, "queue to fill", func() bool { return s.queue.Len() == 2 })

	// The next request is shed before any work starts.
	resp, err := http.Post(ts.URL+"/optimize", "application/json", strings.NewReader(`{"model":"mlp"}`))
	if err != nil {
		t.Fatal(err)
	}
	var rejected map[string]any
	_ = json.NewDecoder(resp.Body).Decode(&rejected)
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("full queue: status %d (%v), want 429", resp.StatusCode, rejected)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("429 without Retry-After header")
	}
	select {
	case id := <-started:
		t.Fatalf("rejected request started work (%s)", id)
	default:
	}
	if code, _ := get(t, ts, "/jobs/job-4"); code != http.StatusNotFound {
		t.Errorf("rejected job registered: /jobs/job-4 = %d, want 404", code)
	}

	// /healthz reports queue depth and in-flight jobs.
	code, hz := get(t, ts, "/healthz")
	if code != http.StatusOK || hz["status"] != "ok" {
		t.Fatalf("/healthz = %d %v", code, hz)
	}
	if hz["queue_depth"].(float64) != 2 || hz["queue_capacity"].(float64) != 2 {
		t.Errorf("healthz queue %v/%v, want 2/2", hz["queue_depth"], hz["queue_capacity"])
	}
	if hz["in_flight"].(float64) != 1 {
		t.Errorf("healthz in_flight %v, want 1", hz["in_flight"])
	}

	if _, mets := get(t, ts, "/metrics"); mets["rejected_full"].(float64) != 1 {
		t.Errorf("metrics rejected_full %v, want 1", mets["rejected_full"])
	}

	// Bad requests are rejected with 400 before admission.
	for _, body := range []string{
		`{"model":"nope"}`,
		`{"model":"mlp","scale":2}`,
		`{"model":"mlp","budget":"yesterday"}`,
		`not json`,
	} {
		if code, _ := post(t, ts, body); code != http.StatusBadRequest {
			t.Errorf("body %s: status %d, want 400", body, code)
		}
	}

	close(release)
	drainServer(t, s)

	// Draining: admission closed with 503.
	if code, body := post(t, ts, `{"model":"mlp"}`); code != http.StatusServiceUnavailable {
		t.Errorf("draining: status %d (%v), want 503", code, body)
	}
	if code, hz := get(t, ts, "/healthz"); code != http.StatusServiceUnavailable || hz["status"] != "draining" {
		t.Errorf("draining healthz = %d %v", code, hz)
	}
}

// TestDrainCheckpointsAndRestartResumes is the crash-safety acceptance
// path end-to-end with a real search: drain cancels an in-flight job, the
// search's final checkpoint lands on disk, and a fresh server on the same
// directory re-admits the job and runs it to completion.
func TestDrainCheckpointsAndRestartResumes(t *testing.T) {
	dir := t.TempDir()
	cfg := Config{
		Model:            testModel(),
		QueueDepth:       4,
		Workers:          1,
		DefaultBudget:    30 * time.Second,
		CheckpointDir:    dir,
		CheckpointEveryN: 1,
		StallWindow:      -1,
	}
	s := New(cfg)
	s.Start()
	ts := httptest.NewServer(s.Handler())

	code, body := post(t, ts, `{"model":"mlp","scale":0.05,"budget":"30s","iterations":25,"workers":1}`)
	if code != http.StatusAccepted {
		t.Fatalf("submit: %d %v", code, body)
	}
	id := body["id"].(string)

	// Let the search make checkpointed progress, then pull the plug.
	waitFor(t, "search progress", func() bool {
		_, v := get(t, ts, "/jobs/"+id)
		return v["expansions"].(float64) >= 3
	})
	drainServer(t, s)
	ts.Close()

	ckpt := filepath.Join(dir, id+".ckpt")
	if _, err := os.Stat(ckpt); err != nil {
		t.Fatalf("drained job left no checkpoint: %v", err)
	}
	_, v := get0(t, s, "/jobs/"+id)
	if v["state"] != stateCancelled || v["resumable"] != true {
		t.Fatalf("drained job view %v, want cancelled+resumable", v)
	}

	// Restart on the same directory: the job comes back and finishes.
	s2 := New(cfg)
	if n := s2.Start(); n != 1 {
		t.Fatalf("recovered %d jobs, want 1", n)
	}
	ts2 := httptest.NewServer(s2.Handler())
	defer ts2.Close()
	waitFor(t, "resumed job to finish", func() bool {
		_, v := get(t, ts2, "/jobs/"+id)
		if v["state"] == stateFailed || v["state"] == stateCancelled {
			t.Fatalf("resumed job settled badly: %v", v)
		}
		return v["state"] == stateDone
	})
	_, v = get(t, ts2, "/jobs/"+id)
	res := v["result"].(map[string]any)
	if res["iterations"].(float64) != 25 {
		t.Errorf("resumed job ran %v iterations total, want 25", res["iterations"])
	}
	if res["peak_mem_bytes"].(float64) <= 0 {
		t.Errorf("resumed job result %v", res)
	}
	if _, err := os.Stat(ckpt); !os.IsNotExist(err) {
		t.Errorf("finished job's checkpoint not removed (err=%v)", err)
	}
	drainServer(t, s2)
}

// get0 hits a handler directly (for a server whose listener is closed).
func get0(t *testing.T, s *Server, path string) (int, map[string]any) {
	t.Helper()
	rec := httptest.NewRecorder()
	s.Handler().ServeHTTP(rec, httptest.NewRequest(http.MethodGet, path, nil))
	var m map[string]any
	if err := json.NewDecoder(rec.Body).Decode(&m); err != nil {
		t.Fatalf("decode response: %v", err)
	}
	return rec.Code, m
}

// TestWatchdogResumesStalledJob: a search that stops reporting expansion
// progress is cancelled by the watchdog and re-admitted once from its
// checkpoint; the second incarnation completes.
func TestWatchdogResumesStalledJob(t *testing.T) {
	dir := t.TempDir()
	s := New(Config{
		Model:         testModel(),
		QueueDepth:    4,
		Workers:       1,
		CheckpointDir: dir,
		StallWindow:   50 * time.Millisecond,
		StallPoll:     10 * time.Millisecond,
	})
	var runs atomic.Int32
	var resumedWithPath atomic.Bool
	s.runSearch = func(ctx context.Context, j *job) (*opt.Result, error) {
		if runs.Add(1) == 1 {
			// First incarnation: leave a snapshot behind, then wedge
			// without ever reporting progress.
			if err := os.WriteFile(s.checkpointPath(j.id), []byte("snapshot"), 0o644); err != nil {
				return nil, err
			}
			<-ctx.Done()
			return tinyResult(opt.StopCancelled), nil
		}
		resumedWithPath.Store(j.resumeFrom() != "")
		return tinyResult(opt.StopConverged), nil
	}
	s.Start()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	code, body := post(t, ts, `{"model":"mlp"}`)
	if code != http.StatusAccepted {
		t.Fatalf("submit: %d %v", code, body)
	}
	id := body["id"].(string)

	waitFor(t, "stalled job to resume and finish", func() bool {
		_, v := get(t, ts, "/jobs/"+id)
		return v["state"] == stateDone
	})
	if got := runs.Load(); got != 2 {
		t.Fatalf("search ran %d times, want 2 (stall + resume)", got)
	}
	if !resumedWithPath.Load() {
		t.Error("second incarnation had no resume path")
	}
	_, v := get(t, ts, "/jobs/"+id)
	if v["resumes"].(float64) != 1 {
		t.Errorf("job view resumes %v, want 1", v["resumes"])
	}
	_, mets := get(t, ts, "/metrics")
	if mets["stalled"].(float64) != 1 || mets["resumed"].(float64) != 1 {
		t.Errorf("metrics stalled=%v resumed=%v, want 1/1", mets["stalled"], mets["resumed"])
	}
	drainServer(t, s)
}

// TestJobPanicIsolation: a panicking search fails its own job and nothing
// else — the server keeps serving.
func TestJobPanicIsolation(t *testing.T) {
	s := New(Config{Model: testModel(), QueueDepth: 4, Workers: 1, StallWindow: -1})
	var n atomic.Int32
	s.runSearch = func(ctx context.Context, j *job) (*opt.Result, error) {
		if n.Add(1) == 1 {
			panic(fmt.Sprintf("synthetic wedge in %s", j.id))
		}
		return tinyResult(opt.StopConverged), nil
	}
	s.Start()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	_, first := post(t, ts, `{"model":"mlp"}`)
	_, second := post(t, ts, `{"model":"mlp"}`)
	waitFor(t, "both jobs to settle", func() bool {
		_, a := get(t, ts, "/jobs/"+first["id"].(string))
		_, b := get(t, ts, "/jobs/"+second["id"].(string))
		return a["state"] == stateFailed && b["state"] == stateDone
	})
	_, a := get(t, ts, "/jobs/"+first["id"].(string))
	if !strings.Contains(a["error"].(string), "panic") {
		t.Errorf("failed job error %q, want it to mention the panic", a["error"])
	}
	drainServer(t, s)
}
