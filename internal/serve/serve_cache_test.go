package serve

import (
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"magis/internal/plancache"
)

func testCache(t *testing.T) *plancache.Cache {
	t.Helper()
	c, err := plancache.Open(plancache.Config{Dir: t.TempDir(), Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// cacheServerConfig is a server wired for real (tiny) searches with a
// plan cache in front.
func cacheServerConfig(t *testing.T, workers int) Config {
	return Config{
		Model:       testModel(),
		QueueDepth:  8,
		Workers:     workers,
		StallWindow: -1,
		Cache:       testCache(t),
		Logf:        t.Logf,
	}
}

const cacheReq = `{"model":"mlp","scale":0.01,"budget":"30s","iterations":12,"workers":1}`

// TestCacheHitSkipsSearch: the second identical request is answered from
// the cache — zero search iterations, summary marked cache-hit and
// verified (admission re-verified the plan), hit counters and latency
// percentiles populated.
func TestCacheHitSkipsSearch(t *testing.T) {
	s := New(cacheServerConfig(t, 1))
	s.Start()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	defer drainServer(t, s)

	runCacheJob := func() map[string]any {
		code, body := post(t, ts, cacheReq)
		if code != http.StatusAccepted {
			t.Fatalf("submit: %d %v", code, body)
		}
		id := body["id"].(string)
		waitFor(t, "job "+id, func() bool {
			_, v := get(t, ts, "/jobs/"+id)
			if v["state"] == stateFailed || v["state"] == stateCancelled {
				t.Fatalf("job settled badly: %v", v)
			}
			return v["state"] == stateDone
		})
		_, v := get(t, ts, "/jobs/"+id)
		return v["result"].(map[string]any)
	}

	first := runCacheJob()
	if c, _ := first["cache"].(string); c == "hit" {
		t.Fatalf("first request cannot be a hit: %v", first)
	}
	if first["iterations"].(float64) <= 0 {
		t.Fatalf("first request did not search: %v", first)
	}

	second := runCacheJob()
	if second["cache"] != "hit" || second["stopped"] != "cache-hit" {
		t.Fatalf("second request not served from cache: %v", second)
	}
	if second["iterations"].(float64) != 0 {
		t.Errorf("cache hit ran %v search iterations, want 0", second["iterations"])
	}
	if second["verified"] != true {
		t.Errorf("cache hit not marked verified: %v", second)
	}
	if second["peak_mem_bytes"] != first["peak_mem_bytes"] {
		t.Errorf("hit peak %v differs from the plan that was cached (%v)", second["peak_mem_bytes"], first["peak_mem_bytes"])
	}

	_, mets := get(t, ts, "/metrics")
	if mets["cache_hits"].(float64) != 1 || mets["cache_misses"].(float64) != 1 {
		t.Errorf("metrics hits=%v misses=%v, want 1/1", mets["cache_hits"], mets["cache_misses"])
	}
	hl := mets["cache_hit_latency_sec"].(map[string]any)
	ml := mets["cache_miss_latency_sec"].(map[string]any)
	if hl["count"].(float64) != 1 || ml["count"].(float64) != 1 {
		t.Errorf("latency percentile counts hit=%v miss=%v, want 1/1", hl["count"], ml["count"])
	}
	if hl["p50"].(float64) >= ml["p50"].(float64) {
		t.Errorf("hit p50 %v not faster than miss p50 %v", hl["p50"], ml["p50"])
	}
}

// TestCacheStampede: concurrent identical requests never each run a full
// search — every job settles done with the same plan, and each is either
// the one leader, a shared waiter, or (if it arrived after completion) a
// plain hit. Run with -race in CI.
func TestCacheStampede(t *testing.T) {
	const n = 3
	s := New(cacheServerConfig(t, n))
	s.Start()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	defer drainServer(t, s)

	ids := make([]string, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			code, body := post(t, ts, cacheReq)
			if code != http.StatusAccepted {
				t.Errorf("submit %d: %d %v", i, code, body)
				return
			}
			ids[i] = body["id"].(string)
		}(i)
	}
	wg.Wait()

	peaks := make(map[float64]bool)
	var searched float64
	for _, id := range ids {
		if id == "" {
			t.Fatal("a submission failed")
		}
		waitFor(t, "job "+id, func() bool {
			_, v := get(t, ts, "/jobs/"+id)
			if v["state"] == stateFailed || v["state"] == stateCancelled {
				t.Fatalf("job %s settled badly: %v", id, v)
			}
			return v["state"] == stateDone
		})
		_, v := get(t, ts, "/jobs/"+id)
		res := v["result"].(map[string]any)
		peaks[res["peak_mem_bytes"].(float64)] = true
		switch res["cache"] {
		case "hit", "shared":
		default:
			searched++
		}
	}
	if len(peaks) != 1 {
		t.Errorf("stampede produced %d distinct plans, want 1: %v", len(peaks), peaks)
	}
	if searched < 1 {
		t.Error("no job actually searched")
	}
	_, mets := get(t, ts, "/metrics")
	hits := mets["cache_hits"].(float64)
	shared := mets["flight_shared"].(float64)
	if hits+shared+searched < n {
		t.Errorf("outcomes do not cover the stampede: hits=%v shared=%v searched=%v", hits, shared, searched)
	}
}

// TestCacheWarmStartAcrossBudgets: a request for the same model under a
// different search budget misses the exact key but warm-starts from the
// near-miss entry.
func TestCacheWarmStartAcrossBudgets(t *testing.T) {
	s := New(cacheServerConfig(t, 1))
	s.Start()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	defer drainServer(t, s)

	run := func(req string) map[string]any {
		code, body := post(t, ts, req)
		if code != http.StatusAccepted {
			t.Fatalf("submit: %d %v", code, body)
		}
		id := body["id"].(string)
		waitFor(t, "job "+id, func() bool {
			_, v := get(t, ts, "/jobs/"+id)
			if v["state"] == stateFailed || v["state"] == stateCancelled {
				t.Fatalf("job settled badly: %v", v)
			}
			return v["state"] == stateDone
		})
		_, v := get(t, ts, "/jobs/"+id)
		return v["result"].(map[string]any)
	}

	run(cacheReq)
	other := run(`{"model":"mlp","scale":0.01,"budget":"30s","iterations":6,"workers":1}`)
	if other["cache"] != "warm" {
		t.Fatalf("different-budget request = %v, want a warm start", other)
	}
	_, mets := get(t, ts, "/metrics")
	if mets["cache_warm_starts"].(float64) != 1 {
		t.Errorf("cache_warm_starts = %v, want 1", mets["cache_warm_starts"])
	}
}

// TestRecoveryQuarantinesCorruptCheckpoint: restart recovery moves a
// truncated checkpoint to CheckpointDir/quarantine — logged and counted,
// never deleted, never re-admitted — and still serves.
func TestRecoveryQuarantinesCorruptCheckpoint(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "job-7.ckpt"), []byte(`{"magic":"magis-ckpt","version":`), 0o644); err != nil {
		t.Fatal(err)
	}
	s := New(Config{Model: testModel(), CheckpointDir: dir, StallWindow: -1, Logf: t.Logf})
	if n := s.Start(); n != 0 {
		t.Fatalf("recovered %d jobs from garbage, want 0", n)
	}
	defer drainServer(t, s)

	if _, err := os.Stat(filepath.Join(dir, "job-7.ckpt")); !os.IsNotExist(err) {
		t.Error("corrupt checkpoint left in the serving directory")
	}
	qents, err := os.ReadDir(filepath.Join(dir, "quarantine"))
	if err != nil || len(qents) != 1 || qents[0].Name() != "job-7.ckpt" {
		t.Fatalf("quarantine dir: %v, %v — want the one corrupt checkpoint", qents, err)
	}
	_, mets := get0(t, s, "/metrics")
	if mets["ckpt_quarantined"].(float64) != 1 {
		t.Errorf("ckpt_quarantined = %v, want 1", mets["ckpt_quarantined"])
	}
	// A second restart on the same directory stays clean: nothing left to
	// quarantine, nothing resurrected.
	s2 := New(Config{Model: testModel(), CheckpointDir: dir, StallWindow: -1, Logf: t.Logf})
	if n := s2.Start(); n != 0 {
		t.Fatalf("second restart recovered %d jobs, want 0", n)
	}
	drainServer(t, s2)
	_, mets2 := get0(t, s2, "/metrics")
	if mets2["ckpt_quarantined"].(float64) != 0 {
		t.Errorf("second restart re-quarantined: %v", mets2["ckpt_quarantined"])
	}
}

// TestResumeDeterminismWithCache re-runs the kill-resume acceptance path
// with the plan cache enabled: a drained job's resume bypasses the cache
// and still completes exactly its 25 iterations.
func TestResumeDeterminismWithCache(t *testing.T) {
	dir := t.TempDir()
	cacheDir := t.TempDir()
	mkCfg := func() Config {
		c, err := plancache.Open(plancache.Config{Dir: cacheDir, Logf: t.Logf})
		if err != nil {
			t.Fatal(err)
		}
		return Config{
			Model:            testModel(),
			QueueDepth:       4,
			Workers:          1,
			DefaultBudget:    30 * time.Second,
			CheckpointDir:    dir,
			CheckpointEveryN: 1,
			StallWindow:      -1,
			Cache:            c,
			Logf:             t.Logf,
		}
	}
	s := New(mkCfg())
	s.Start()
	ts := httptest.NewServer(s.Handler())

	code, body := post(t, ts, `{"model":"mlp","scale":0.05,"budget":"30s","iterations":25,"workers":1}`)
	if code != http.StatusAccepted {
		t.Fatalf("submit: %d %v", code, body)
	}
	id := body["id"].(string)
	waitFor(t, "search progress", func() bool {
		_, v := get(t, ts, "/jobs/"+id)
		return v["expansions"].(float64) >= 3
	})
	drainServer(t, s)
	ts.Close()

	s2 := New(mkCfg())
	if n := s2.Start(); n != 1 {
		t.Fatalf("recovered %d jobs, want 1", n)
	}
	ts2 := httptest.NewServer(s2.Handler())
	defer ts2.Close()
	waitFor(t, "resumed job to finish", func() bool {
		_, v := get(t, ts2, "/jobs/"+id)
		if v["state"] == stateFailed || v["state"] == stateCancelled {
			t.Fatalf("resumed job settled badly: %v", v)
		}
		return v["state"] == stateDone
	})
	_, v := get(t, ts2, "/jobs/"+id)
	res := v["result"].(map[string]any)
	if res["iterations"].(float64) != 25 {
		t.Errorf("resumed job ran %v iterations total, want 25", res["iterations"])
	}
	if c, _ := res["cache"].(string); c != "" {
		t.Errorf("resumed job touched the cache: %v", res)
	}
	drainServer(t, s2)
}
