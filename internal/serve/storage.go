package serve

// Storage-degraded serving: the service must outlive its disk. Every
// persistence surface — plan-cache writes, search checkpoints, restart
// recovery — runs through an injectable filesystem (internal/fsatomic,
// faulted in tests by internal/errfs), and a persistence health state
// machine decides whether jobs may touch it at all:
//
//	healthy   -> degraded    after StorageThreshold consecutive faults
//	degraded  -> (probe)     after StorageCooloff, one caller probes the
//	                         disk with a real write; failure restarts the
//	                         degraded window
//	(probe)   -> recovered   a successful probe re-enables persistence
//
// While degraded, jobs keep running — uncached and uncheckpointed, their
// results labeled degraded_storage — instead of erroring: a full disk
// costs durability and cache hits, never answers. The machine mirrors
// the circuit-breaker idiom (breaker.go): a cooloff window, a single
// half-open probe, and abandon-safety so the probe slot cannot wedge.

import (
	"errors"
	"path/filepath"
	"sync"
	"time"

	"magis/internal/fsatomic"
	"magis/internal/opt"
)

// Persistence health states, as reported by /healthz and /metrics.
const (
	storageHealthy   = "healthy"
	storageDegraded  = "degraded"
	storageRecovered = "recovered"
)

// storageHealth is the persistence health state machine. All persistence
// shares one machine (unlike the per-workload breaker): a full disk is
// full for everyone.
type storageHealth struct {
	mu        sync.Mutex
	threshold int // consecutive faults to degrade; <=0 disables
	cooloff   time.Duration
	state     string
	faults    int       // consecutive faults while not degraded
	until     time.Time // degraded holds until this instant, then probes
	probing   bool      // a recovery probe is in flight
}

func newStorageHealth(threshold int, cooloff time.Duration) *storageHealth {
	return &storageHealth{threshold: threshold, cooloff: cooloff, state: storageHealthy}
}

// current reports the state name.
func (h *storageHealth) current() string {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.state
}

// allow reports whether persistence may be used right now. During the
// degraded window it refuses; once the cooloff elapses it grants exactly
// one caller the recovery probe (probe=true). That caller must settle
// the probe with onOK or onFault — like the breaker's half-open slot —
// or release it with onAbandon.
func (h *storageHealth) allow(now time.Time) (ok, probe bool) {
	if h.threshold <= 0 {
		return true, false
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.state != storageDegraded {
		return true, false
	}
	if now.Before(h.until) || h.probing {
		return false, false
	}
	h.probing = true
	return true, true
}

// onOK records a successful storage interaction; it reports true when
// that success was the recovery probe closing the degraded state.
func (h *storageHealth) onOK() bool {
	if h.threshold <= 0 {
		return false
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	h.faults = 0
	if h.state == storageDegraded && h.probing {
		h.probing = false
		h.state = storageRecovered
		return true
	}
	return false
}

// onFault records one storage fault; it reports true when this fault
// flips persistence to degraded. A fault while degraded (the probe, or a
// straggler job that was already mid-write) restarts the window.
func (h *storageHealth) onFault(now time.Time) bool {
	if h.threshold <= 0 {
		return false
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.state == storageDegraded {
		h.probing = false
		h.until = now.Add(h.cooloff)
		return false
	}
	h.faults++
	if h.faults >= h.threshold {
		h.state = storageDegraded
		h.until = now.Add(h.cooloff)
		h.probing = false
		return true
	}
	return false
}

// onAbandon releases a probe slot whose owner settled without a verdict.
func (h *storageHealth) onAbandon() {
	h.mu.Lock()
	h.probing = false
	h.mu.Unlock()
}

// noteStorageFault counts one persistence fault against the health
// machine and logs the transition when it degrades.
func (s *Server) noteStorageFault(op string, err error) {
	s.met.StorageFaults.Add(1)
	if s.storage.onFault(time.Now()) {
		s.cfg.Logf("serve: storage degraded after repeated faults (%s: %v); serving uncached and uncheckpointed", op, err)
	} else {
		s.cfg.Logf("serve: storage fault (%s): %v", op, err)
	}
}

// storageAllowed decides whether a job may touch persistence, running
// the recovery probe inline when one is due. Persistence that is not
// configured (no checkpoint dir, no cache) never degrades anything.
func (s *Server) storageAllowed() bool {
	if s.cfg.CheckpointDir == "" && s.cfg.Cache == nil {
		return true
	}
	ok, probe := s.storage.allow(time.Now())
	if !ok {
		return false
	}
	if !probe {
		return true
	}
	if err := s.probeStorage(); err != nil {
		s.noteStorageFault("probe", err)
		return false
	}
	if s.storage.onOK() {
		s.met.StorageRecoveries.Add(1)
		s.cfg.Logf("serve: storage recovered after successful probe")
	}
	return true
}

// probeStorage exercises the real write path — temp file, sync, rename,
// remove — through the server's (possibly fault-injected) filesystem.
// With no checkpoint directory to write into, the probe degrades to
// optimistic: the next real cache write delivers the verdict.
func (s *Server) probeStorage() error {
	if s.cfg.CheckpointDir == "" {
		return nil
	}
	path := filepath.Join(s.cfg.CheckpointDir, ".storage-probe")
	if err := fsatomic.WriteFileFS(s.fsys, path, []byte("probe\n"), 0o644); err != nil {
		return err
	}
	return s.fsys.Remove(path)
}

// noteSearchTelemetry settles a finished search's storage and governor
// evidence: a checkpoint write failure is a storage fault (transient or
// not — the flush already retried nothing, and a degraded machine probes
// its way back), successful flushes are health signals, and governor
// activity lands on the /metrics counters.
func (s *Server) noteSearchTelemetry(res *opt.Result) {
	if res == nil {
		return
	}
	if ck := res.Checkpoint; ck != nil {
		if ck.Err != "" {
			s.noteStorageFault("checkpoint", errors.New(ck.Err))
		} else if ck.Writes > 0 {
			s.storage.onOK()
		}
	}
	if g := res.Governor; g != nil {
		s.met.GovernorEvicted.Add(int64(g.EvictedStates))
		if res.Stopped == opt.StopMemBudget {
			s.met.GovernorStops.Add(1)
		}
	}
}
