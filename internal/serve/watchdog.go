package serve

import "time"

// The watchdog is the supervision half of the service: a search that stops
// completing expansions — wedged in a pathological candidate evaluation,
// or starved by the host — is cancelled after StallWindow without
// progress. Cancellation is safe because the search is anytime and
// checkpointed: finishJob then re-admits the job once from its last
// snapshot (skipping whatever the snapshot's frontier orders after the
// wedged candidate is a non-goal — the snapshot replays the same frontier,
// so a deterministic wedge fails again and the job settles as cancelled
// rather than ping-ponging forever).

func (s *Server) watchdog() {
	defer s.wg.Done()
	t := time.NewTicker(s.cfg.StallPoll)
	defer t.Stop()
	for {
		select {
		case <-s.stop:
			return
		case <-t.C:
			s.scanStalls()
			// Shedding sweep: queued jobs whose deadline became unmeetable
			// while they waited are settled now, not when a worker finally
			// pops them — expired work never blocks live work.
			s.shedExpiredQueued()
		}
	}
}

// scanStalls cancels running jobs with no expansion progress inside the
// stall window. Collect-then-interrupt keeps the lock ordering one-way
// (Server.mu before job.mu, interrupt takes only job.mu).
func (s *Server) scanStalls() {
	now := time.Now()
	var stalled []*job
	s.mu.Lock()
	for _, j := range s.jobs {
		j.mu.Lock()
		if j.state == stateRunning && j.interrupted == reasonNone &&
			now.Sub(j.lastProgress) > s.cfg.StallWindow {
			stalled = append(stalled, j)
		}
		j.mu.Unlock()
	}
	s.mu.Unlock()
	for _, j := range stalled {
		s.cfg.Logf("serve: %s made no progress for %v; cancelling", j.id, s.cfg.StallWindow)
		j.interrupt(reasonStall)
	}
}
