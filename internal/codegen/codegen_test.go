package codegen

import (
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"

	"magis/internal/graph"
	"magis/internal/models"
	"magis/internal/ops"
	"magis/internal/sched"
	"magis/internal/tensor"
)

func TestEmitMLPTrainingScript(t *testing.T) {
	w := models.MLP(8, 16, 32, 10, 2)
	src, err := PyTorch(w.G, w.G.Topo(), Options{Label: "mlp"})
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"import torch",
		"def step():",
		"torch.matmul",    // Linear
		"F.cross_entropy", // loss
		"torch.einsum",    // LinearBwdW
		"1e-4 *",          // ApplySGD
		"del t",           // basic memory saving
		"max_memory_allocated",
		"def main():",
	} {
		if !strings.Contains(src, want) {
			t.Errorf("script missing %q", want)
		}
	}
	if strings.Contains(src, "TODO: unknown operator") {
		t.Error("script contains unhandled operators")
	}
}

func TestEmitAllWorkloadOperatorsCovered(t *testing.T) {
	// Every operator appearing in the full workload suite must have an
	// emission rule (no TODO fallbacks).
	for _, w := range models.SmallSuite() {
		src, err := PyTorch(w.G, w.G.Topo(), Options{})
		if err != nil {
			t.Fatalf("%s: %v", w.Name, err)
		}
		if i := strings.Index(src, "TODO: unknown operator"); i >= 0 {
			end := i + 60
			if end > len(src) {
				end = len(src)
			}
			t.Errorf("%s: unhandled operator: ...%s...", w.Name, src[i:end])
		}
	}
}

func TestEmitSwapUsesSideStream(t *testing.T) {
	g := graph.New()
	sh := tensor.S(64, 64)
	x := g.Add(ops.NewInput(sh, tensor.F32))
	st := g.Add(ops.NewStore(sh, tensor.F32), x)
	ld := g.Add(ops.NewLoad(sh, tensor.F32), st)
	g.Add(ops.NewReLU(sh, tensor.F32), ld)
	src, err := PyTorch(g, g.Topo(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"torch.cuda.stream(copy_stream)",
		".to('cpu', non_blocking=True)",
		"wait_stream(copy_stream)",
		"torch.cuda.Event()",
	} {
		if !strings.Contains(src, want) {
			t.Errorf("swap codegen missing %q", want)
		}
	}
}

func TestEmitRespectsScheduleOrder(t *testing.T) {
	g := graph.New()
	sh := tensor.S(4, 4)
	x := g.Add(ops.NewInput(sh, tensor.F32))
	a := g.Add(ops.NewReLU(sh, tensor.F32), x)
	b := g.Add(ops.NewGELU(sh, tensor.F32), x)
	g.Add(ops.NewAdd(sh, sh, tensor.F32), a, b)
	// Schedule b before a; emission must follow.
	order := sched.Schedule{x, b, a, g.Outputs()[0]}
	src, err := PyTorch(g, order, Options{})
	if err != nil {
		t.Fatal(err)
	}
	ia := strings.Index(src, "torch.relu")
	ib := strings.Index(src, "F.gelu")
	if ia < 0 || ib < 0 || ib > ia {
		t.Errorf("emission order does not follow schedule (relu@%d gelu@%d)", ia, ib)
	}
}

func TestEmitRejectsInvalidSchedule(t *testing.T) {
	g := graph.New()
	x := g.Add(ops.NewInput(tensor.S(4), tensor.F32))
	a := g.Add(ops.NewReLU(tensor.S(4), tensor.F32), x)
	if _, err := PyTorch(g, sched.Schedule{a, x}, Options{}); err == nil {
		t.Error("invalid schedule accepted")
	}
}

func TestEmitIndexTensorsAreLong(t *testing.T) {
	g := graph.New()
	ids := g.Add(ops.NewInput(tensor.S(4, 8), tensor.F32))
	table := g.Add(ops.NewParam(tensor.S(100, 16), tensor.F32))
	g.Add(ops.NewEmbedding(tensor.S(4, 8), tensor.S(100, 16), tensor.F32), ids, table)
	src, err := PyTorch(g, g.Topo(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(src, "dtype=torch.long") {
		t.Error("embedding indices must be integer tensors")
	}
}

func TestEmitFreesDeadTensors(t *testing.T) {
	w := models.MLP(8, 16, 32, 10, 2)
	src, err := PyTorch(w.G, w.G.Topo(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if strings.Count(src, "del ") < 3 {
		t.Error("too few frees for a training graph")
	}
	// Outputs must not be freed (they are returned).
	lines := strings.Split(src, "\n")
	var returned string
	for _, l := range lines {
		if strings.Contains(l, "return (") {
			returned = l
		}
	}
	if returned == "" {
		t.Fatal("no return statement")
	}
}

func TestEmittedScriptIsValidPython(t *testing.T) {
	if _, err := exec.LookPath("python3"); err != nil {
		t.Skip("python3 not available")
	}
	for _, w := range []*models.Workload{
		models.MLP(8, 16, 32, 10, 2),
		models.UNetConfig(1, 32, 8, 2),
	} {
		src, err := PyTorch(w.G, w.G.Topo(), Options{Label: w.Name})
		if err != nil {
			t.Fatal(err)
		}
		dir := t.TempDir()
		path := filepath.Join(dir, "gen.py")
		if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
		out, err := exec.Command("python3", "-m", "py_compile", path).CombinedOutput()
		if err != nil {
			t.Fatalf("%s: emitted script does not compile: %v\n%s", w.Name, err, out)
		}
	}
}
