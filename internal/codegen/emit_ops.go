package codegen

import (
	"fmt"
	"strings"

	"magis/internal/graph"
	"magis/internal/ops"
)

// emitOp writes the Python statement computing node v.
func (e *emitter) emitOp(v graph.NodeID) {
	n := e.g.Node(v)
	spec, ok := n.Op.(*ops.Spec)
	if !ok {
		e.pf("    %s = None  # non-operator payload %q\n", name(v), n.Op.Kind())
		return
	}
	in := func(i int) string { return name(n.Ins[i]) }
	out := name(v)
	kind := spec.Kind()
	attr := spec.Attr()

	switch kind {
	case ops.KindMatmul, ops.KindBatchMM, "Linear":
		a, b := in(0), in(1)
		switch attr {
		case "NT":
			b += ".transpose(-1, -2)"
		case "TN", "T":
			if kind == "Linear" {
				b += ".t()"
			} else {
				a += ".transpose(-1, -2)"
			}
		}
		e.pf("    %s = torch.matmul(%s, %s)\n", out, a, b)
	case "LinearBwdW":
		e.pf("    %s = torch.einsum('...i,...j->ij', %s, %s)\n", out, in(0), in(1))
	case ops.KindConv2d:
		s, p := convAttr(attr)
		e.pf("    %s = F.conv2d(%s, %s, stride=%d, padding=%d)\n", out, in(0), in(1), s, p)
	case "ConvBwdData":
		s, p := convAttr(attr)
		e.pf("    %s = torch.nn.grad.conv2d_input(%s, %s, %s, stride=%d, padding=%d)\n",
			out, pyShape(spec.OutShape()), in(1), in(0), s, p)
	case "ConvBwdFilter":
		s, p := convAttr(attr)
		e.pf("    %s = torch.nn.grad.conv2d_weight(%s, %s, %s, stride=%d, padding=%d)\n",
			out, in(0), pyShape(spec.OutShape()), in(1), s, p)
	case ops.KindPool2d:
		pk, k, s := poolAttr(attr)
		fn := "F.max_pool2d"
		if pk == "avg" {
			fn = "F.avg_pool2d"
		}
		e.pf("    %s = %s(%s, kernel_size=%d, stride=%d)\n", out, fn, in(0), k, s)
	case "PoolBwd":
		_, k, _ := poolAttr(attr)
		// Surrogate: redistribute the gradient uniformly over the window.
		e.pf("    %s = F.interpolate(%s, size=%s[2:], mode='nearest') / %d  # surrogate PoolBwd\n",
			out, in(1), in(0)+".shape", k*k)
	case "Upsample2d":
		f := intAttr(attr, "f%d")
		e.pf("    %s = F.interpolate(%s, scale_factor=%d, mode='nearest')\n", out, in(0), f)
	case "UpsampleBwd":
		f := intAttr(attr, "f%d")
		e.pf("    %s = F.avg_pool2d(%s, %d) * %d  # gradient of nearest upsample\n", out, in(0), f, f*f)
	case "ReLU":
		e.pf("    %s = torch.relu(%s)\n", out, in(0))
	case "GELU":
		e.pf("    %s = F.gelu(%s)\n", out, in(0))
	case "Tanh":
		e.pf("    %s = torch.tanh(%s)\n", out, in(0))
	case "Sigmoid":
		e.pf("    %s = torch.sigmoid(%s)\n", out, in(0))
	case "Dropout":
		e.pf("    %s = F.dropout(%s, p=0.1, training=True)\n", out, in(0))
	case "Scale":
		e.pf("    %s = %s * 0.125\n", out, in(0))
	case "Add":
		e.pf("    %s = %s + %s\n", out, in(0), in(1))
	case "Mul":
		e.pf("    %s = %s * %s\n", out, in(0), in(1))
	case "BiasAdd":
		e.pf("    %s = %s + %s\n", out, in(0), in(1))
	case ops.KindSoftmax:
		axis := intAttr(attr, "a%d")
		e.pf("    %s = F.softmax(%s, dim=%d)\n", out, in(0), axis-1)
	case "SoftmaxBwd":
		axis := intAttr(attr, "a%d")
		e.pf("    %s = (%s - (%s * %s).sum(dim=%d, keepdim=True)) * %s\n",
			out, in(1), in(1), in(0), axis-1, in(0))
	case ops.KindLayerNorm:
		c := spec.InShape(1).Dim(1)
		e.pf("    %s = F.layer_norm(%s, (%d,), %s, %s)\n", out, in(0), c, in(1), in(2))
	case "LayerNormBwdX":
		// Surrogate with matching arithmetic volume.
		e.pf("    %s = (%s - %s.mean(dim=-1, keepdim=True)) * %s  # surrogate LayerNormBwdX\n",
			out, in(1), in(1), in(2))
	case "LayerNormBwdP":
		e.pf("    %s = (%s * %s).reshape(-1, %s.shape[-1]).sum(dim=0)  # d(gamma)\n",
			out, in(0), in(1), in(0))
	case "BiasBwd":
		e.pf("    %s = %s.reshape(-1, %s.shape[-1]).sum(dim=0)\n", out, in(0), in(0))
	case "BatchNorm2d":
		e.pf("    %s = F.batch_norm(%s, None, None, weight=%s, training=True)\n", out, in(0), in(1))
	case "BatchNormBwdX":
		e.pf("    %s = %s - %s.mean(dim=(0, 2, 3), keepdim=True)  # surrogate BatchNormBwdX\n",
			out, in(1), in(1))
	case "BatchNormBwdP":
		e.pf("    %s = (%s * %s).sum(dim=(0, 2, 3))  # d(gamma)\n", out, in(0), in(1))
	case "ReLUBwd", "GELUBwd", "TanhBwd", "SigmoidBwd", "DropoutBwd", "ScaleBwd":
		e.pf("    %s = %s * (%s > 0).to(%s.dtype)  # surrogate %s\n", out, in(1), in(0), in(1), kind)
	case ops.KindReduce:
		rk, axis := reduceAttr(attr)
		fn := "sum"
		if rk == "Mean" {
			fn = "mean"
		}
		e.pf("    %s = %s.%s(dim=%d)\n", out, in(0), fn, axis-1)
	case "Broadcast":
		var axis, extent int
		fmt.Sscanf(attr, "a%d,n%d", &axis, &extent)
		e.pf("    %s = %s.unsqueeze(%d).expand(%s).contiguous()\n",
			out, in(0), axis-1, pyShape(spec.OutShape()))
	case ops.KindSlice:
		dim, start, length, _ := ops.ParseSliceAttr(spec)
		e.pf("    %s = %s.narrow(%d, %d, %d)\n", out, in(0), dim-1, start, length)
	case "Pad":
		var dim, start, total int
		fmt.Sscanf(attr, "d%d,%d+%d", &dim, &start, &total)
		l := spec.InShape(0).Dim(dim)
		e.pf("    %s = torch.zeros(%s, dtype=%s.dtype, device=dev); %s.narrow(%d, %d, %d).copy_(%s)\n",
			out, pyShape(spec.OutShape()), in(0), out, dim-1, start, l, in(0))
	case ops.KindConcat:
		var dim, cnt int
		fmt.Sscanf(attr, "d%d,n%d", &dim, &cnt)
		parts := make([]string, len(n.Ins))
		for i := range n.Ins {
			parts[i] = in(i)
		}
		e.pf("    %s = torch.cat([%s], dim=%d)\n", out, strings.Join(parts, ", "), dim-1)
	case ops.KindTranspose:
		perm := strings.Trim(strings.TrimPrefix(attr, "p"), "[]")
		e.pf("    %s = %s.permute(%s).contiguous()\n", out, in(0), strings.Join(strings.Fields(perm), ", "))
	case ops.KindReshape:
		e.pf("    %s = %s.reshape(%s)\n", out, in(0), pyShape(spec.OutShape()))
	case "SplitHeads":
		o := spec.OutShape()
		e.pf("    %s = %s.view(%d, %d, %d, %d).permute(0, 2, 1, 3).contiguous()\n",
			out, in(0), o[0], o[2], o[1], o[3])
	case "MergeHeads":
		o := spec.OutShape()
		e.pf("    %s = %s.permute(0, 2, 1, 3).reshape(%d, %d, %d)\n", out, in(0), o[0], o[1], o[2])
	case ops.KindEmbedding:
		e.pf("    %s = F.embedding(%s, %s)\n", out, in(0), in(1))
	case "EmbeddingBwd":
		o := spec.OutShape()
		e.pf("    %s = torch.zeros(%s, dtype=%s.dtype, device=dev).index_add_(0, %s.flatten(), %s.reshape(-1, %d))\n",
			out, pyShape(o), in(1), in(0), in(1), o[1])
	case ops.KindCrossEnt:
		vdim := spec.InShape(0).Dim(spec.InShape(0).Rank())
		e.pf("    %s = F.cross_entropy(%s.reshape(-1, %d).float(), %s.reshape(-1))\n",
			out, in(0), vdim, in(1))
	case "CrossEntropyBwd":
		e.pf("    %s = F.softmax(%s, dim=-1)  # surrogate CE grad (softmax - onehot)\n", out, in(0))
	case "ApplySGD":
		e.pf("    %s = %s - 1e-4 * %s\n", out, in(0), in(1))
	case ops.KindStore:
		e.pf("    with torch.cuda.stream(copy_stream):\n")
		e.pf("        %s = %s.to('cpu', non_blocking=True)\n", out, in(0))
		e.pf("    ev_%s = torch.cuda.Event(); ev_%s.record(copy_stream)\n", out, out)
	case ops.KindLoad:
		e.pf("    with torch.cuda.stream(copy_stream):\n")
		e.pf("        ev_%s.wait(copy_stream)\n", in(0))
		e.pf("        %s = %s.to(dev, non_blocking=True)\n", out, in(0))
		e.pf("    torch.cuda.current_stream().wait_stream(copy_stream)\n")
	default:
		// An operator without an emission rule must fail loudly: a clone
		// placeholder would silently change the computed function, which
		// the numeric verifier (internal/verify) exists to rule out.
		if e.err == nil {
			e.err = fmt.Errorf("codegen: no emission rule for operator kind %q", kind)
		}
	}
}

func convAttr(attr string) (stride, pad int) {
	fmt.Sscanf(attr, "s%dp%d", &stride, &pad)
	return
}

func poolAttr(attr string) (kind string, k, s int) {
	parts := strings.SplitN(attr, ",", 2)
	kind = parts[0]
	fmt.Sscanf(parts[1], "k%ds%d", &k, &s)
	return
}

func intAttr(attr, format string) int {
	var x int
	fmt.Sscanf(attr, format, &x)
	return x
}

func reduceAttr(attr string) (kind string, axis int) {
	parts := strings.SplitN(attr, ",", 2)
	kind = parts[0]
	fmt.Sscanf(parts[1], "a%d", &axis)
	return
}
