package codegen

import (
	"strings"
	"testing"

	"magis/internal/graph"
	"magis/internal/ops"
	"magis/internal/tensor"
	"magis/internal/verify"
)

// TestEveryKindEmits: every registered operator kind has an emission
// rule. The catalog graph (internal/verify) contains one node of each
// kind, so a kind falling through to the default case surfaces here as
// a hard error rather than as a silent clone in generated scripts.
func TestEveryKindEmits(t *testing.T) {
	g := verify.CatalogGraph()
	src, err := PyTorch(g, g.Topo(), Options{Label: "catalog"})
	if err != nil {
		t.Fatalf("catalog graph does not emit: %v", err)
	}
	if strings.Contains(src, "TODO") || strings.Contains(src, "unknown operator") {
		t.Fatal("emitted script contains a placeholder for an unhandled operator")
	}
}

// TestUnknownKindFailsEmission: an unregistered operator kind must fail
// code generation instead of degrading to a clone placeholder.
func TestUnknownKindFailsEmission(t *testing.T) {
	g := graph.New()
	x := g.Add(ops.NewInput(tensor.S(2, 2), tensor.F32))
	g.Add(ops.FromRaw(ops.Raw{
		Kind:  "Bogus",
		Ins:   []tensor.Shape{tensor.S(2, 2)},
		Out:   tensor.S(2, 2),
		DType: tensor.F32,
	}), x)
	if _, err := PyTorch(g, g.Topo(), Options{}); err == nil {
		t.Fatal("emission of an unknown operator kind succeeded; want hard error")
	} else if !strings.Contains(err.Error(), "Bogus") {
		t.Fatalf("error does not name the offending kind: %v", err)
	}
}
