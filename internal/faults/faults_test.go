package faults

import (
	"math"
	"reflect"
	"testing"

	"magis/internal/cost"
	"magis/internal/graph"
	"magis/internal/models"
	"magis/internal/ops"
	"magis/internal/sched"
	"magis/internal/sim"
	"magis/internal/tensor"
)

// swapChain builds a tiny plan with one Store/Load pair, so transfer
// faults have somewhere to land.
func swapChain() (*graph.Graph, sched.Schedule) {
	g := graph.New()
	sh := tensor.S(1 << 16)
	x := g.Add(ops.NewInput(sh, tensor.F32))
	a := g.Add(ops.NewGELU(sh, tensor.F32), x)
	st := g.Add(ops.NewStore(sh, tensor.F32), a)
	b := g.Add(ops.NewGELU(sh, tensor.F32), a)
	c := g.Add(ops.NewGELU(sh, tensor.F32), b)
	ld := g.Add(ops.NewLoad(sh, tensor.F32), st)
	g.Add(ops.NewAdd(sh, sh, tensor.F32), c, ld)
	return g, g.Topo()
}

func TestInjectorDeterministicAndSeedSensitive(t *testing.T) {
	g, _ := swapChain()
	cfg := Defaults(42, 4)
	a, b := NewInjector(cfg), NewInjector(cfg)
	other := NewInjector(Defaults(43, 4))
	differs := false
	for i := 0; i < 4; i++ {
		sa, sb, so := a.Scenario(i), b.Scenario(i), other.Scenario(i)
		for _, id := range g.NodeIDs() {
			n := g.Node(id)
			if sa.LatencyScale(n) != sb.LatencyScale(n) {
				t.Fatalf("scenario %d node %d: LatencyScale not deterministic", i, id)
			}
			if sa.TransferFailures(n) != sb.TransferFailures(n) {
				t.Fatalf("scenario %d node %d: TransferFailures not deterministic", i, id)
			}
			if sa.LatencyScale(n) != so.LatencyScale(n) {
				differs = true
			}
		}
		for _, tt := range []float64{0, 0.25, 0.5, 0.75, 1} {
			if sa.BudgetAt(tt, 1, 1<<30) != sb.BudgetAt(tt, 1, 1<<30) {
				t.Fatalf("scenario %d: BudgetAt not deterministic", i)
			}
		}
	}
	if !differs {
		t.Error("seed 42 and 43 produced identical perturbations everywhere")
	}
}

func TestLatencyScaleBounds(t *testing.T) {
	g, _ := swapChain()
	cfg := Defaults(7, 16)
	in := NewInjector(cfg)
	for i := 0; i < 16; i++ {
		sc := in.Scenario(i)
		for _, id := range g.NodeIDs() {
			n := g.Node(id)
			f := sc.LatencyScale(n)
			lo, hi := 1-cfg.CostNoise, 1+cfg.CostNoise
			if ops.IsTransfer(n.Op.Kind()) {
				hi *= 1 + cfg.SwapDegrade
			}
			if f < lo || f > hi {
				t.Errorf("scenario %d node %d: scale %v outside [%v,%v]", i, id, f, lo, hi)
			}
		}
	}
}

func TestSimRetryWithBackoffAndAbort(t *testing.T) {
	g, order := swapChain()
	m := cost.NewModel(cost.RTX3090())
	clean := sim.Run(g, order, sim.Config{Model: m})
	if clean.Retries != 0 || clean.TransferAborts != 0 || clean.Faults != nil {
		t.Fatalf("pristine run reported faults: %+v", clean)
	}

	// Force 2 transient failures on every transfer: absorbed by retries.
	twoFails := &sim.FaultHooks{
		TransferFailures: func(n *graph.Node) int { return 2 },
		MaxRetries:       3,
		RetryBackoff:     1e-4,
	}
	r := sim.Run(g, order, sim.Config{Model: m, Faults: twoFails})
	if r.Retries != 4 { // 2 transfers x 2 retries
		t.Errorf("want 4 retries, got %d", r.Retries)
	}
	if r.TransferAborts != 0 {
		t.Errorf("retries within MaxRetries must not abort, got %d", r.TransferAborts)
	}
	if r.Latency <= clean.Latency {
		t.Errorf("retries must cost time: %v <= %v", r.Latency, clean.Latency)
	}
	if r.RetryTime <= 0 {
		t.Error("RetryTime not surfaced")
	}
	if len(r.Faults) != 2 {
		t.Errorf("want 2 fault points on the timeline, got %d", len(r.Faults))
	}

	// Force more failures than MaxRetries: the transfer aborts.
	tooMany := &sim.FaultHooks{
		TransferFailures: func(n *graph.Node) int { return 9 },
		MaxRetries:       3,
	}
	r = sim.Run(g, order, sim.Config{Model: m, Faults: tooMany})
	if r.TransferAborts != 2 {
		t.Errorf("want 2 aborts, got %d", r.TransferAborts)
	}
	for _, fp := range r.Faults {
		if !fp.Aborted {
			t.Errorf("fault point %+v should be marked aborted", fp)
		}
	}
}

func TestReplayZeroFaultsPasses(t *testing.T) {
	w := models.MLP(64, 32, 64, 10, 2)
	m := cost.NewModel(cost.RTX3090())
	order := sched.Schedule(w.G.Topo())
	peak := sched.Simulate(w.G, order).Peak
	rep := Replay(w.G, order, m, peak*2, Config{Seed: 1, Scenarios: 4})
	if !rep.OK() {
		t.Fatalf("zero-magnitude faults must pass: %s", rep)
	}
	if len(rep.Results) != 4 {
		t.Fatalf("want 4 scenarios, got %d", len(rep.Results))
	}
}

func TestReplayBudgetSqueezeFails(t *testing.T) {
	w := models.MLP(64, 32, 64, 10, 2)
	m := cost.NewModel(cost.RTX3090())
	order := sched.Schedule(w.G.Topo())
	peak := sched.Simulate(w.G, order).Peak
	// Budget exactly at peak: any squeeze window overlapping the peak
	// violates. Many scenarios and wide squeezes make a hit certain.
	cfg := Config{Seed: 5, Scenarios: 8, BudgetSqueeze: 0.5, SqueezeWindows: 4}
	rep := Replay(w.G, order, m, peak, cfg)
	if rep.OK() {
		t.Fatal("budget squeeze at zero headroom should fail some scenario")
	}
	f := rep.FirstFailure()
	if f == nil || f.Violation == nil {
		t.Fatal("failure must carry a budget violation")
	}
	if f.Violation.Budget >= peak {
		t.Errorf("violation budget %d not squeezed below peak %d", f.Violation.Budget, peak)
	}
}

func TestReplayDeterministic(t *testing.T) {
	w := models.MLP(64, 32, 64, 10, 2)
	m := cost.NewModel(cost.RTX3090())
	order := sched.Schedule(w.G.Topo())
	peak := sched.Simulate(w.G, order).Peak
	cfg := Defaults(11, 6)
	a := Replay(w.G, order, m, peak, cfg)
	b := Replay(w.G, order, cost.NewModel(cost.RTX3090()), peak, cfg)
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("replay not deterministic:\n%+v\nvs\n%+v", a, b)
	}
}

// TestHooksJitterSeededPerScenario: Defaults enables retry jitter, each
// scenario gets its own jitter seed derived from (Seed, index) — so two
// injectors with the same config hand out identical hooks, different
// scenarios hand out different streams, and replay stays deterministic.
func TestHooksJitterSeededPerScenario(t *testing.T) {
	cfg := Defaults(42, 4)
	if cfg.RetryJitter <= 0 {
		t.Fatal("Defaults must enable retry jitter")
	}
	a, b := NewInjector(cfg), NewInjector(cfg)
	seeds := map[int64]bool{}
	for i := 0; i < 4; i++ {
		ha, hb := a.Scenario(i).Hooks(), b.Scenario(i).Hooks()
		if ha.RetryJitter != cfg.RetryJitter {
			t.Errorf("scenario %d: hooks dropped RetryJitter", i)
		}
		if ha.JitterSeed != hb.JitterSeed {
			t.Errorf("scenario %d: jitter seed not deterministic", i)
		}
		seeds[ha.JitterSeed] = true
	}
	if len(seeds) != 4 {
		t.Errorf("want 4 distinct per-scenario jitter seeds, got %d", len(seeds))
	}
	if NewInjector(Defaults(43, 4)).Scenario(0).Hooks().JitterSeed == a.Scenario(0).Hooks().JitterSeed {
		t.Error("jitter seed insensitive to Config.Seed")
	}
}

func TestScenarioLatencyPerturbsRun(t *testing.T) {
	g, order := swapChain()
	m := cost.NewModel(cost.RTX3090())
	clean := sim.Run(g, order, sim.Config{Model: m})
	sc := NewInjector(Config{Seed: 3, Scenarios: 1, CostNoise: 0.3}).Scenario(0)
	r := sim.Run(g, order, sim.Config{Model: m, Faults: sc.Hooks()})
	if math.Abs(r.Latency-clean.Latency) < 1e-12 {
		t.Error("cost noise left the latency bit-identical")
	}
}
