package faults

import (
	"reflect"
	"testing"

	"magis/internal/cost"
	"magis/internal/models"
	"magis/internal/sched"
)

func auditFind(t *testing.T, r *AuditReport, name string) Check {
	t.Helper()
	for _, c := range r.Checks {
		if c.Name == name {
			return c
		}
	}
	t.Fatalf("check %q missing from report:\n%s", name, r)
	return Check{}
}

func TestAuditPassesOnBaselinePlan(t *testing.T) {
	w := models.MLP(64, 32, 64, 10, 2)
	order := sched.Schedule(w.G.Topo())
	m := cost.NewModel(cost.RTX3090())
	r := Audit(w.G, order, AuditConfig{Model: m})
	if !r.OK() {
		t.Fatalf("baseline plan must audit clean:\n%s", r)
	}
	for _, name := range []string{
		"graph-valid", "schedule-valid", "peak-sched-vs-memplan",
		"peak-sched-vs-sim", "memplan-nonoverlap", "arena-vs-lifetime",
		"fragmentation",
	} {
		auditFind(t, r, name)
	}
	if r.SchedPeak <= 0 || r.SimPeak <= 0 || r.ArenaSize <= 0 {
		t.Errorf("peaks not populated: %+v", r)
	}
	if c := auditFind(t, r, "peak-sched-vs-memplan"); c.Status != Pass {
		t.Errorf("lifetime models must agree exactly: %+v", c)
	}
}

func TestAuditFlagsCorruptSchedule(t *testing.T) {
	w := models.MLP(64, 32, 64, 10, 2)
	order := sched.Schedule(w.G.Topo())
	// Swap the first and last steps: consumers now run before producers.
	bad := append(sched.Schedule(nil), order...)
	bad[0], bad[len(bad)-1] = bad[len(bad)-1], bad[0]
	r := Audit(w.G, bad, AuditConfig{Model: cost.NewModel(cost.RTX3090())})
	if r.OK() {
		t.Fatalf("corrupt schedule must fail the audit:\n%s", r)
	}
	if c := auditFind(t, r, "schedule-valid"); c.Status != Fail {
		t.Errorf("schedule-valid should be the failing check, got %+v", c)
	}
}

func TestAuditBudgetHeadroom(t *testing.T) {
	w := models.MLP(64, 32, 64, 10, 2)
	order := sched.Schedule(w.G.Topo())
	m := cost.NewModel(cost.RTX3090())
	loose := Audit(w.G, order, AuditConfig{Model: m, Budget: 1 << 40})
	if c := auditFind(t, loose, "budget-headroom"); c.Status != Pass {
		t.Errorf("1TB budget must pass: %+v", c)
	}
	tight := Audit(w.G, order, AuditConfig{Model: m, Budget: 1})
	if c := auditFind(t, tight, "budget-headroom"); c.Status != Fail {
		t.Errorf("1-byte budget must fail: %+v", c)
	}
	if tight.OK() {
		t.Error("a failing check must fail the report")
	}
	none := Audit(w.G, order, AuditConfig{Model: m})
	for _, c := range none.Checks {
		if c.Name == "budget-headroom" {
			t.Error("budget check must be skipped when no budget is set")
		}
	}
}

func TestAuditDeterministic(t *testing.T) {
	w := models.MLP(32, 16, 32, 10, 2)
	order := sched.Schedule(w.G.Topo())
	a := Audit(w.G, order, AuditConfig{Model: cost.NewModel(cost.RTX3090()), Budget: 1 << 30})
	b := Audit(w.G, order, AuditConfig{Model: cost.NewModel(cost.RTX3090()), Budget: 1 << 30})
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("audit not deterministic:\n%s\nvs\n%s", a, b)
	}
}
