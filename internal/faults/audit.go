package faults

import (
	"fmt"
	"sort"
	"strings"

	"magis/internal/cost"
	"magis/internal/graph"
	"magis/internal/memplan"
	"magis/internal/sched"
	"magis/internal/sim"
)

// The differential plan audit. The repo computes peak memory three
// independent ways — the §2.1 per-step lifetime model (internal/sched),
// the continuous-time event simulation (internal/sim), and the offline
// arena allocator (internal/memplan). A correct plan keeps all three in
// agreement within explicit bounds; divergence means one of the models
// (or the plan itself) is wrong, exactly the cross-check a production
// service needs before trusting a simulated peak.

// CheckStatus grades one audit check.
type CheckStatus int

const (
	// Pass: the invariant holds.
	Pass CheckStatus = iota
	// Warn: within the extended tolerance band; worth inspecting.
	Warn
	// Fail: the invariant is violated; the plan must not be trusted.
	Fail
)

// String renders the status for reports.
func (s CheckStatus) String() string {
	switch s {
	case Pass:
		return "pass"
	case Warn:
		return "warn"
	case Fail:
		return "FAIL"
	default:
		return "unknown"
	}
}

// Check is one named audit check with its diagnostic, mirroring the
// per-rule record style of opt.Diagnostics.
type Check struct {
	// Name identifies the check ("schedule-valid", "peak-sched-vs-sim", ...).
	Name string
	// Status grades the outcome.
	Status CheckStatus
	// Detail explains the measurement behind the grade.
	Detail string
}

// AuditConfig bounds the audit.
type AuditConfig struct {
	// Model prices the simulation estimator (required).
	Model *cost.Model
	// Budget enables the budget-headroom check when positive.
	Budget int64
	// PeakTolerance is the allowed relative divergence between the
	// lifetime-step peak and the continuous-time sim peak; up to twice the
	// tolerance grades Warn, beyond that Fail (default 0.25).
	PeakTolerance float64
	// FragWarn is the fragmentation fraction above which the arena layout
	// grades Warn (default 0.5).
	FragWarn float64
}

func (c AuditConfig) withDefaults() AuditConfig {
	if c.PeakTolerance <= 0 {
		c.PeakTolerance = 0.25
	}
	if c.FragWarn <= 0 {
		c.FragWarn = 0.5
	}
	return c
}

// AuditReport is the structured outcome of one differential plan audit.
type AuditReport struct {
	// Checks holds every check run, in a fixed order.
	Checks []Check
	// SchedPeak is the §2.1 per-step lifetime peak (sched.Simulate).
	SchedPeak int64
	// SimPeak is the continuous-time event-simulation peak (sim.Run).
	SimPeak int64
	// ArenaSize is the offline allocator's arena span (memplan.Build).
	ArenaSize int64
	// LifetimePeak is memplan's recomputed lifetime lower bound.
	LifetimePeak int64
	// Fragmentation is the allocator overhead beyond the lifetime peak.
	Fragmentation float64
}

// OK reports that no check failed (warnings allowed).
func (r *AuditReport) OK() bool {
	for _, c := range r.Checks {
		if c.Status == Fail {
			return false
		}
	}
	return true
}

// Failed returns the failing checks.
func (r *AuditReport) Failed() []Check {
	var out []Check
	for _, c := range r.Checks {
		if c.Status == Fail {
			out = append(out, c)
		}
	}
	return out
}

// String renders the full per-check report.
func (r *AuditReport) String() string {
	var b strings.Builder
	for _, c := range r.Checks {
		fmt.Fprintf(&b, "  [%s] %-22s %s\n", c.Status, c.Name, c.Detail)
	}
	return b.String()
}

func (r *AuditReport) add(name string, status CheckStatus, format string, args ...any) {
	r.Checks = append(r.Checks, Check{Name: name, Status: status, Detail: fmt.Sprintf(format, args...)})
}

func mb(b int64) float64 { return float64(b) / (1 << 20) }

// blockPeak is the true lower bound on the arena: the maximum total size
// of simultaneously live placed blocks, by step-indexed sweep.
func blockPeak(blocks []memplan.Block) int64 {
	type ev struct {
		step  int
		delta int64
	}
	events := make([]ev, 0, 2*len(blocks))
	for _, b := range blocks {
		events = append(events, ev{b.Start, b.Size}, ev{b.End + 1, -b.Size})
	}
	sort.Slice(events, func(i, j int) bool {
		if events[i].step != events[j].step {
			return events[i].step < events[j].step
		}
		return events[i].delta < events[j].delta
	})
	var cur, peak int64
	for _, e := range events {
		cur += e.delta
		if cur > peak {
			peak = cur
		}
	}
	return peak
}

// Audit cross-validates the plan (g, order) across the three peak
// estimators and the arena layout invariants. It never returns an error:
// an unusable plan surfaces as failed checks in the report, and checks
// that depend on a failed prerequisite are skipped.
func Audit(g *graph.Graph, order sched.Schedule, cfg AuditConfig) *AuditReport {
	cfg = cfg.withDefaults()
	r := &AuditReport{}

	// Structural prerequisites: a malformed graph or order makes every
	// downstream estimate meaningless.
	if err := graph.Validate(g); err != nil {
		r.add("graph-valid", Fail, "%v", err)
		return r
	}
	r.add("graph-valid", Pass, "%d nodes", g.Len())
	if err := order.Validate(g); err != nil {
		r.add("schedule-valid", Fail, "%v", err)
		return r
	}
	r.add("schedule-valid", Pass, "%d steps", len(order))

	// Estimator 1: per-step lifetime model.
	prof := sched.Simulate(g, order)
	r.SchedPeak = prof.Peak

	// Estimator 2: continuous-time two-stream simulation.
	sr := sim.Run(g, order, sim.Config{Model: cfg.Model})
	r.SimPeak = sr.Peak

	// Estimator 3: offline arena allocation.
	plan, err := memplan.Build(g, order)
	if err != nil {
		r.add("memplan-build", Fail, "%v", err)
		return r
	}
	r.ArenaSize = plan.ArenaSize
	r.LifetimePeak = plan.LifetimePeak
	r.Fragmentation = plan.Fragmentation()

	// Cross-check 1: the two lifetime analyses (sched.Simulate runs inside
	// memplan.Build too) must agree exactly — they implement the same model.
	if r.SchedPeak == r.LifetimePeak {
		r.add("peak-sched-vs-memplan", Pass, "both lifetime models report %.2f MB", mb(r.SchedPeak))
	} else {
		r.add("peak-sched-vs-memplan", Fail,
			"sched lifetime peak %.2f MB != memplan lifetime peak %.2f MB",
			mb(r.SchedPeak), mb(r.LifetimePeak))
	}

	// Cross-check 2: the continuous-time peak may diverge from the step
	// model (copy-stream overlap shifts allocation times) but only within
	// tolerance.
	ref := r.SchedPeak
	if ref < 1 {
		ref = 1
	}
	div := float64(r.SimPeak-r.SchedPeak) / float64(ref)
	if div < 0 {
		div = -div
	}
	switch {
	case div <= cfg.PeakTolerance:
		r.add("peak-sched-vs-sim", Pass, "sim %.2f MB vs sched %.2f MB (%.1f%% apart)",
			mb(r.SimPeak), mb(r.SchedPeak), 100*div)
	case div <= 2*cfg.PeakTolerance:
		r.add("peak-sched-vs-sim", Warn, "sim %.2f MB vs sched %.2f MB (%.1f%% apart, tolerance %.0f%%)",
			mb(r.SimPeak), mb(r.SchedPeak), 100*div, 100*cfg.PeakTolerance)
	default:
		r.add("peak-sched-vs-sim", Fail, "sim %.2f MB vs sched %.2f MB (%.1f%% apart, tolerance %.0f%%)",
			mb(r.SimPeak), mb(r.SchedPeak), 100*div, 100*cfg.PeakTolerance)
	}

	// Arena invariants: no two lifetime-overlapping blocks may share
	// addresses, and the arena can never undercut the peak of its own
	// placed blocks. (LifetimePeak also counts exec-transient bytes, which
	// the arena deliberately does not place, so the lower bound is computed
	// from the blocks themselves.)
	if err := plan.Verify(); err != nil {
		r.add("memplan-nonoverlap", Fail, "%v", err)
	} else {
		r.add("memplan-nonoverlap", Pass, "%d blocks disjoint under lifetime conflicts", len(plan.Blocks))
	}
	if bp := blockPeak(plan.Blocks); plan.ArenaSize >= bp {
		r.add("arena-vs-lifetime", Pass, "arena %.2f MB >= placed-block peak %.2f MB",
			mb(plan.ArenaSize), mb(bp))
	} else {
		r.add("arena-vs-lifetime", Fail, "arena %.2f MB < placed-block peak %.2f MB",
			mb(plan.ArenaSize), mb(bp))
	}
	if r.Fragmentation <= cfg.FragWarn {
		r.add("fragmentation", Pass, "%.1f%% over the lifetime peak", 100*r.Fragmentation)
	} else {
		r.add("fragmentation", Warn, "%.1f%% over the lifetime peak (warn at %.0f%%)",
			100*r.Fragmentation, 100*cfg.FragWarn)
	}

	// Budget headroom: the most pessimistic estimator must still fit.
	if cfg.Budget > 0 {
		worst := r.SchedPeak
		if r.SimPeak > worst {
			worst = r.SimPeak
		}
		if r.ArenaSize > worst {
			worst = r.ArenaSize
		}
		if worst <= cfg.Budget {
			r.add("budget-headroom", Pass, "worst estimator %.2f MB fits budget %.2f MB (%.1f%% headroom)",
				mb(worst), mb(cfg.Budget), 100*(1-float64(worst)/float64(cfg.Budget)))
		} else {
			r.add("budget-headroom", Fail, "worst estimator %.2f MB exceeds budget %.2f MB",
				mb(worst), mb(cfg.Budget))
		}
	}
	return r
}
