package faults

import (
	"fmt"
	"strings"

	"magis/internal/cost"
	"magis/internal/graph"
	"magis/internal/sched"
	"magis/internal/sim"
)

// BudgetViolation pinpoints the first time a scenario's available budget
// was exceeded.
type BudgetViolation struct {
	// Time is seconds into the simulated execution.
	Time float64
	// Mem is the device memory in use at Time.
	Mem int64
	// Budget is the (possibly squeezed) budget available at Time.
	Budget int64
}

// ScenarioResult is one scenario's replay outcome.
type ScenarioResult struct {
	// Scenario is the scenario index (0-based).
	Scenario int
	// Latency and Peak are the perturbed execution's measurements.
	Latency float64
	Peak    int64
	// Retries counts transfer attempts absorbed by retry-with-backoff.
	Retries int
	// Aborts counts transfers that failed past MaxRetries.
	Aborts int
	// Violation is the first budget excess, nil if the plan always fit.
	Violation *BudgetViolation
	// Pass reports that the plan survived: no aborts and no violation.
	Pass bool
}

// ReplayReport aggregates a plan's behaviour across all fault scenarios.
type ReplayReport struct {
	// Budget is the nominal device budget the plan was checked against
	// (0 = only abort-freedom was checked).
	Budget int64
	// Results holds one entry per scenario, in scenario order.
	Results []ScenarioResult
	// Passed and Failed count scenarios.
	Passed, Failed int
}

// OK reports that the plan survived every scenario.
func (r *ReplayReport) OK() bool { return r.Failed == 0 }

// FirstFailure returns the first failing scenario, or nil.
func (r *ReplayReport) FirstFailure() *ScenarioResult {
	for i := range r.Results {
		if !r.Results[i].Pass {
			return &r.Results[i]
		}
	}
	return nil
}

// String renders a one-line summary for logs and CLI output.
func (r *ReplayReport) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "replay: %d/%d scenarios passed", r.Passed, r.Passed+r.Failed)
	if f := r.FirstFailure(); f != nil {
		if f.Aborts > 0 {
			fmt.Fprintf(&b, "; scenario %d: %d transfer abort(s)", f.Scenario, f.Aborts)
		}
		if f.Violation != nil {
			fmt.Fprintf(&b, "; scenario %d: %.2f MB over the %.2f MB budget at t=%.2fms",
				f.Scenario, float64(f.Violation.Mem-f.Violation.Budget)/(1<<20),
				float64(f.Violation.Budget)/(1<<20), f.Violation.Time*1e3)
		}
	}
	return b.String()
}

// Replay executes the plan (g, order) under every scenario of cfg and
// checks it against budget: at every timeline point the device memory in
// use must fit the scenario's (transiently squeezed) budget, and no
// transfer may abort. budget <= 0 skips the budget check.
//
// The replay is deterministic: identical reports for identical
// (g, order, cfg), independent of wall-clock and of how the plan was found.
func Replay(g *graph.Graph, order sched.Schedule, model *cost.Model, budget int64, cfg Config) *ReplayReport {
	in := NewInjector(cfg)
	cfg = in.Config()
	rep := &ReplayReport{Budget: budget}
	for i := 0; i < cfg.Scenarios; i++ {
		sc := in.Scenario(i)
		r := sim.Run(g, order, sim.Config{Model: model, Timeline: true, Faults: sc.Hooks()})
		sr := ScenarioResult{
			Scenario: i,
			Latency:  r.Latency,
			Peak:     r.Peak,
			Retries:  r.Retries,
			Aborts:   r.TransferAborts,
		}
		sr.Pass = sr.Aborts == 0
		if budget > 0 {
			for _, p := range r.Timeline {
				if b := sc.BudgetAt(p.Time, r.Latency, budget); p.Mem > b {
					sr.Violation = &BudgetViolation{Time: p.Time, Mem: p.Mem, Budget: b}
					sr.Pass = false
					break
				}
			}
		}
		if sr.Pass {
			rep.Passed++
		} else {
			rep.Failed++
		}
		rep.Results = append(rep.Results, sr)
	}
	return rep
}
