// Package faults is the execution-feasibility layer: it hardens the
// *plan* the way internal/opt's guard/quarantine machinery hardens the
// *search*. A seeded, deterministic Injector perturbs the simulated
// execution — multiplicative cost-model noise, degraded swap bandwidth,
// transient Store/Load failures, and transient device-budget squeezes
// simulating co-tenant pressure — and Replay re-runs an optimized plan
// under N such scenarios through internal/sim. Audit cross-validates the
// repo's three independent peak-memory estimators (sched lifetime peak,
// sim continuous-time peak, memplan arena peak) against each other with
// explicit tolerance bounds.
//
// Determinism contract: every perturbation is a pure hash of
// (seed, scenario index, node ID), never a function of evaluation order,
// so a fixed seed reproduces the exact same scenarios across runs, across
// schedules of the same graph, and across any opt.Options.Workers value.
package faults

import (
	"magis/internal/graph"
	"magis/internal/ops"
	"magis/internal/sim"
)

// Config parameterizes the fault model. The zero value of any field means
// "that fault class is disabled"; Defaults returns the standard scenario
// mix used by the CLIs.
type Config struct {
	// Seed drives every scenario's perturbations.
	Seed int64
	// Scenarios is the number of seeded fault scenarios a Replay runs.
	Scenarios int
	// CostNoise is the half-width of the multiplicative latency noise on
	// every operator: latencies scale by a factor in [1-CostNoise,
	// 1+CostNoise] (cost-model error).
	CostNoise float64
	// SwapDegrade is the maximum extra slowdown of Store/Load transfers:
	// transfer latencies scale by up to 1+SwapDegrade on top of CostNoise
	// (contended host link).
	SwapDegrade float64
	// TransferFailRate is the per-attempt probability that a Store/Load
	// suffers a transient failure (absorbed by the simulator's bounded
	// retry-with-backoff model).
	TransferFailRate float64
	// BudgetSqueeze is the maximum fraction of the device budget
	// transiently taken away by co-tenant pressure.
	BudgetSqueeze float64
	// SqueezeWindows is how many transient squeeze windows each scenario
	// places on the execution timeline.
	SqueezeWindows int
	// MaxRetries bounds absorbed failures per transfer (sim.FaultHooks).
	MaxRetries int
	// RetryBackoff is the base retry backoff in seconds.
	RetryBackoff float64
	// RetryJitter spreads retry backoffs by a factor in [1-j, 1+j] so
	// transfers that fail together do not retry in lock-step. Seeded per
	// scenario, so replay stays deterministic.
	RetryJitter float64
}

// Defaults returns the standard scenario mix: ±20% cost noise, up to +50%
// swap slowdown, 5% transient transfer failures with ±25% retry jitter,
// and two squeeze windows taking up to 15% of the budget.
func Defaults(seed int64, scenarios int) Config {
	return Config{
		Seed:             seed,
		Scenarios:        scenarios,
		CostNoise:        0.20,
		SwapDegrade:      0.50,
		TransferFailRate: 0.05,
		RetryJitter:      0.25,
		BudgetSqueeze:    0.15,
		SqueezeWindows:   2,
	}
}

func (c Config) withDefaults() Config {
	if c.Scenarios <= 0 {
		c.Scenarios = 8
	}
	if c.SqueezeWindows <= 0 && c.BudgetSqueeze > 0 {
		c.SqueezeWindows = 2
	}
	if c.MaxRetries <= 0 {
		c.MaxRetries = 3
	}
	if c.RetryBackoff <= 0 {
		c.RetryBackoff = 50e-6
	}
	return c
}

// Injector derives deterministic fault scenarios from a Config.
type Injector struct {
	cfg Config
}

// NewInjector returns an injector for cfg (defaults applied).
func NewInjector(cfg Config) *Injector {
	return &Injector{cfg: cfg.withDefaults()}
}

// Config returns the effective (defaulted) configuration.
func (in *Injector) Config() Config { return in.cfg }

// Scenario returns the i-th seeded fault scenario. Scenarios are
// independent of each other and stable across calls.
func (in *Injector) Scenario(i int) *Scenario {
	return &Scenario{cfg: in.cfg, idx: i}
}

// Scenario is one deterministic assignment of faults. Its methods plug
// directly into sim.FaultHooks and the Replay budget check.
type Scenario struct {
	cfg Config
	idx int
}

// Hash salts separating the independent fault channels.
const (
	saltNoise  uint64 = 0xA24BAED4963EE407
	saltSwap   uint64 = 0x9FB21C651E98DF25
	saltFail   uint64 = 0xD6E8FEB86659FD93
	saltWin    uint64 = 0x589965CC75374CC3
	saltJitter uint64 = 0xC2B2AE3D27D4EB4F
)

// mix hashes (seed, scenario, key, salt) to a uniform uint64 with a
// splitmix64 finalizer — schedule-order independent by construction.
func mix(seed int64, scenario int, key int64, salt uint64) uint64 {
	x := uint64(seed) ^ salt
	x += uint64(scenario+1) * 0x9E3779B97F4A7C15
	x += uint64(key+1) * 0xBF58476D1CE4E5B9
	x += 0x9E3779B97F4A7C15
	z := x
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// unit maps a hash to [0,1).
func unit(h uint64) float64 { return float64(h>>11) / float64(1<<53) }

func (s *Scenario) unit(key int64, salt uint64) float64 {
	return unit(mix(s.cfg.Seed, s.idx, key, salt))
}

// LatencyScale implements sim.FaultHooks.LatencyScale: multiplicative
// cost-model noise on every operator, plus swap-bandwidth degradation on
// transfers.
func (s *Scenario) LatencyScale(n *graph.Node) float64 {
	f := 1.0
	if s.cfg.CostNoise > 0 {
		f *= 1 + s.cfg.CostNoise*(2*s.unit(int64(n.ID), saltNoise)-1)
	}
	if s.cfg.SwapDegrade > 0 && ops.IsTransfer(n.Op.Kind()) {
		f *= 1 + s.cfg.SwapDegrade*s.unit(int64(n.ID), saltSwap)
	}
	if f <= 0 {
		f = 1e-3 // latencies never vanish, whatever the config says
	}
	return f
}

// TransferFailures implements sim.FaultHooks.TransferFailures: the number
// of consecutive transient failures the transfer suffers, geometrically
// distributed with rate TransferFailRate and capped one past MaxRetries
// (so an unlucky transfer can still abort).
func (s *Scenario) TransferFailures(n *graph.Node) int {
	if s.cfg.TransferFailRate <= 0 || !ops.IsTransfer(n.Op.Kind()) {
		return 0
	}
	k := 0
	for k <= s.cfg.MaxRetries {
		if s.unit(int64(n.ID)*257+int64(k), saltFail) >= s.cfg.TransferFailRate {
			break
		}
		k++
	}
	return k
}

// BudgetAt returns the device budget available at time t of an execution
// spanning [0, horizon]: the nominal budget minus any active transient
// squeeze window. Windows are placed deterministically per scenario; each
// covers 5–25% of the horizon and takes between half and all of
// BudgetSqueeze.
func (s *Scenario) BudgetAt(t, horizon float64, budget int64) int64 {
	if s.cfg.BudgetSqueeze <= 0 || horizon <= 0 || budget <= 0 {
		return budget
	}
	b := budget
	for j := 0; j < s.cfg.SqueezeWindows; j++ {
		center := s.unit(int64(j)*3+0, saltWin) * horizon
		width := (0.05 + 0.20*s.unit(int64(j)*3+1, saltWin)) * horizon
		depth := s.cfg.BudgetSqueeze * (0.5 + 0.5*s.unit(int64(j)*3+2, saltWin))
		if t >= center-width/2 && t <= center+width/2 {
			if sq := int64(float64(budget) * (1 - depth)); sq < b {
				b = sq
			}
		}
	}
	return b
}

// Hooks bundles the scenario into the simulator's fault interface. The
// jitter stream is seeded per (Config.Seed, scenario index) so scenarios
// stay independent and each one replays bit-identically.
func (s *Scenario) Hooks() *sim.FaultHooks {
	return &sim.FaultHooks{
		LatencyScale:     s.LatencyScale,
		TransferFailures: s.TransferFailures,
		MaxRetries:       s.cfg.MaxRetries,
		RetryBackoff:     s.cfg.RetryBackoff,
		RetryJitter:      s.cfg.RetryJitter,
		JitterSeed:       int64(mix(s.cfg.Seed, s.idx, 0, saltJitter)),
	}
}
