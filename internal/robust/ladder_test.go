package robust

import (
	"context"
	"reflect"
	"testing"

	"magis/internal/cost"
	"magis/internal/faults"
	"magis/internal/models"
	"magis/internal/opt"
)

func testModel() *cost.Model { return cost.NewModel(cost.RTX3090()) }

// fatMLP mirrors the opt package's test workload: activations dominate
// weights, so re-mat and scheduling have real slack to cut the peak.
func fatMLP() *models.Workload { return models.MLP(4096, 128, 256, 10, 3) }

// deterministicOpt bounds the search by iterations instead of wall-clock,
// the same contract opt's parallel determinism tests rely on.
func deterministicOpt(workers int) opt.Options {
	return opt.Options{
		Mode:          opt.LatencyUnderMemory,
		TimeBudget:    -1, // disabled: MaxIterations is the only bound
		MaxIterations: 12,
		Workers:       workers,
	}
}

// worstEstimator is the budget the differential audit holds a plan to.
func worstEstimator(r *faults.AuditReport) int64 {
	w := r.SchedPeak
	if r.SimPeak > w {
		w = r.SimPeak
	}
	if r.ArenaSize > w {
		w = r.ArenaSize
	}
	return w
}

// squeezeOptions is the shared end-to-end scenario: a budget exactly at the
// baseline plan's worst estimator (zero headroom), perturbed by transient
// co-tenant squeezes taking up to 30% of it.
func squeezeOptions(workers int, budget int64, base *opt.State) Options {
	return Options{
		Opt:      deterministicOpt(workers),
		Budget:   budget,
		Headroom: 0.30,
		Faults: faults.Config{
			Seed:           9,
			Scenarios:      6,
			BudgetSqueeze:  0.30,
			SqueezeWindows: 4,
		},
		ReplayFaults: true,
		Initial:      &opt.Result{Best: base, Stopped: opt.StopConverged},
	}
}

// TestLadderRepairsBudgetSqueeze is the end-to-end graceful-degradation
// contract: the baseline plan audits clean and survives a zero-magnitude
// replay, fails replay once transient budget squeezes are injected, and a
// later ladder rung repairs it — with the surviving rung recorded.
func TestLadderRepairsBudgetSqueeze(t *testing.T) {
	w := fatMLP()
	m := testModel()
	base := opt.Baseline(w.G, m)
	audit := faults.Audit(base.EvalG, base.Sched, faults.AuditConfig{Model: m})
	if !audit.OK() {
		t.Fatalf("baseline must audit clean:\n%s", audit)
	}
	budget := worstEstimator(audit)

	// Step 1: with zero-magnitude faults the plan fits its budget.
	clean := faults.Replay(base.EvalG, base.Sched, m, budget, faults.Config{Seed: 9, Scenarios: 4})
	if !clean.OK() {
		t.Fatalf("plan must pass a fault-free replay: %s", clean)
	}

	// Step 2: transient squeezes push the (zero-headroom) plan over.
	o := squeezeOptions(1, budget, base)
	squeezed := faults.Replay(base.EvalG, base.Sched, m, budget, o.Faults)
	if squeezed.OK() {
		t.Fatal("budget squeeze at zero headroom should fail the replay")
	}

	// Step 3: the ladder escalates until a rung survives.
	res, err := Reoptimize(context.Background(), w.G, m, o)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Attempts) == 0 {
		t.Fatal("no attempts recorded")
	}
	first := res.Attempts[0]
	if first.Rung != RungAsIs || first.Feasible {
		t.Fatalf("as-is rung should have been attempted and failed, got %+v", first)
	}
	if first.Replay == nil || first.Replay.OK() {
		t.Fatal("as-is failure must come from the fault replay")
	}
	if !first.Audit.OK() {
		t.Fatalf("as-is plan should fail replay, not audit:\n%s", first.Audit)
	}
	if !res.Survived {
		for _, a := range res.Attempts {
			t.Logf("rung %s: feasible=%v err=%q\n%s", a.Rung, a.Feasible, a.Err, a.Audit)
		}
		t.Fatal("no rung produced a feasible plan")
	}
	if !res.Repaired || res.Rung == RungAsIs {
		t.Fatalf("repair must need escalation, got rung %s", res.Rung)
	}
	last := res.Attempts[len(res.Attempts)-1]
	if last.Rung != res.Rung || !last.Feasible {
		t.Fatalf("surviving rung %s not recorded as the last feasible attempt %+v", res.Rung, last)
	}
	if last.Replay == nil || !last.Replay.OK() || !last.Audit.OK() {
		t.Fatal("surviving attempt must carry passing audit and replay reports")
	}
	if res.Best == nil || res.Best.PeakMem > budget {
		t.Fatalf("surviving plan peak %d exceeds budget %d", res.Best.PeakMem, budget)
	}
}

// ladderSummary flattens the run for cross-worker comparison: everything
// except wall-clock timers must be bit-identical.
type ladderSummary struct {
	survived, repaired bool
	rung               Rung
	bestHash           uint64
	bestPeak           int64
	bestLatency        float64
	rungs              []Rung
	memLimits          []int64
	feasible           []bool
	audits             []*faults.AuditReport
	replays            []*faults.ReplayReport
}

func summarize(t *testing.T, workers int) ladderSummary {
	t.Helper()
	w := fatMLP()
	m := testModel()
	base := opt.Baseline(w.G, m)
	audit := faults.Audit(base.EvalG, base.Sched, faults.AuditConfig{Model: m})
	res, err := Reoptimize(context.Background(), w.G, m, squeezeOptions(workers, worstEstimator(audit), base))
	if err != nil {
		t.Fatalf("workers=%d: %v", workers, err)
	}
	s := ladderSummary{
		survived:    res.Survived,
		repaired:    res.Repaired,
		rung:        res.Rung,
		bestHash:    res.Best.EvalG.WLHash(),
		bestPeak:    res.Best.PeakMem,
		bestLatency: res.Best.Latency,
	}
	for _, a := range res.Attempts {
		s.rungs = append(s.rungs, a.Rung)
		s.memLimits = append(s.memLimits, a.MemLimit)
		s.feasible = append(s.feasible, a.Feasible)
		s.audits = append(s.audits, a.Audit)
		s.replays = append(s.replays, a.Replay)
	}
	return s
}

// TestLadderDeterministicAcrossWorkers is the reproducibility contract the
// ISSUE pins: for a fixed fault seed the full ladder outcome — every
// attempt's AuditReport and ReplayReport included — is identical across
// runs and across opt worker counts.
func TestLadderDeterministicAcrossWorkers(t *testing.T) {
	ref := summarize(t, 1)
	again := summarize(t, 1)
	if !reflect.DeepEqual(ref, again) {
		t.Fatalf("ladder not deterministic across runs:\n%+v\nvs\n%+v", ref, again)
	}
	got := summarize(t, 4)
	if !reflect.DeepEqual(ref, got) {
		t.Fatalf("ladder outcome differs between Workers=1 and Workers=4:\n%+v\nvs\n%+v", ref, got)
	}
}

// TestLadderInitialReused: a pre-computed search result short-circuits the
// as-is rung, so a CLI can feed its finished run straight into the ladder.
func TestLadderInitialReused(t *testing.T) {
	w := fatMLP()
	m := testModel()
	base := opt.Baseline(w.G, m)
	audit := faults.Audit(base.EvalG, base.Sched, faults.AuditConfig{Model: m})
	budget := worstEstimator(audit) * 2 // generous: as-is must survive untouched
	res, err := Reoptimize(context.Background(), w.G, m, Options{
		Opt:     deterministicOpt(1),
		Budget:  budget,
		Initial: &opt.Result{Best: base, Stopped: opt.StopConverged},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Survived || res.Rung != RungAsIs || res.Repaired {
		t.Fatalf("generous budget must pass as-is, got %s", res.Summary())
	}
	if res.Best != base {
		t.Error("as-is rung must reuse the provided initial state")
	}
	if res.Attempts[0].Audit == nil || !res.Attempts[0].Audit.OK() {
		t.Error("as-is attempt must still be audited")
	}
}

// TestLadderCancellation: cancelling the context stops escalation but the
// attempts so far stay recorded and the best-effort fallback is returned.
func TestLadderCancellation(t *testing.T) {
	w := fatMLP()
	m := testModel()
	base := opt.Baseline(w.G, m)
	audit := faults.Audit(base.EvalG, base.Sched, faults.AuditConfig{Model: m})
	ctx, cancel := context.WithCancel(context.Background())
	cancel() // already cancelled: only the (Initial-backed) as-is rung runs
	o := squeezeOptions(1, worstEstimator(audit), base)
	res, err := Reoptimize(ctx, w.G, m, o)
	if err != nil {
		t.Fatal(err)
	}
	if res.Survived {
		t.Fatal("cancelled ladder cannot have escalated to a repair")
	}
	if len(res.Attempts) == 0 {
		t.Fatal("the as-is attempt must be recorded despite cancellation")
	}
	if res.Best == nil {
		t.Fatal("graceful degradation requires a best-effort fallback state")
	}
}
