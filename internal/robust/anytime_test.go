package robust

import (
	"errors"
	"testing"

	"magis/internal/cost"
	"magis/internal/models"
	"magis/internal/opt"
)

// fallbackFixture is a small workload with its baseline state — the raw
// material every Fallback call needs.
func fallbackFixture() (*models.Workload, *opt.State) {
	w := models.MLP(64, 32, 64, 10, 2)
	base := opt.Baseline(w.G, cost.NewModel(cost.RTX3090()))
	return w, base
}

func TestFallbackPrefersBestSoFar(t *testing.T) {
	w, base := fallbackFixture()
	res := &opt.Result{Best: base, Baseline: base, Stopped: opt.StopDeadline}

	any, err := Fallback(w.G, res, false, 1)
	if err != nil {
		t.Fatalf("Fallback: %v", err)
	}
	if any.Tier != TierBest {
		t.Errorf("tier %q, want %q", any.Tier, TierBest)
	}
	if any.State != base {
		t.Error("Fallback did not return the best-so-far state")
	}
	if any.Verified {
		t.Error("doVerify=false must not claim verification")
	}
}

func TestFallbackVerifiesWhenAsked(t *testing.T) {
	w, base := fallbackFixture()
	res := &opt.Result{Best: base, Baseline: base, Stopped: opt.StopDeadline}

	any, err := Fallback(w.G, res, true, 1)
	if err != nil {
		t.Fatalf("Fallback with verify: %v", err)
	}
	if !any.Verified {
		t.Error("verified fallback not marked Verified")
	}
	if any.Tier != TierBest {
		t.Errorf("tier %q, want %q", any.Tier, TierBest)
	}
}

// TestFallbackDescendsToBaseline: with no best-so-far state (interrupted
// before the first evaluation), the ladder serves the baseline rung.
func TestFallbackDescendsToBaseline(t *testing.T) {
	w, base := fallbackFixture()
	res := &opt.Result{Best: nil, Baseline: base, Stopped: opt.StopCancelled}

	any, err := Fallback(w.G, res, true, 1)
	if err != nil {
		t.Fatalf("Fallback: %v", err)
	}
	if any.Tier != TierBaseline {
		t.Errorf("tier %q, want %q", any.Tier, TierBaseline)
	}
	if !any.Verified {
		t.Error("baseline tier should verify (it is the input graph)")
	}
}

// TestFallbackBaselineHasNilFT: opt.Baseline leaves FT nil; verification of
// that tier must not panic and must pass (nothing fused means nothing to
// materialize).
func TestFallbackBaselineHasNilFT(t *testing.T) {
	w, base := fallbackFixture()
	if base.FT != nil {
		t.Fatal("fixture expectation broken: baseline state has a fission tree")
	}
	res := &opt.Result{Baseline: base, Stopped: opt.StopDeadline}
	any, err := Fallback(w.G, res, true, 7)
	if err != nil {
		t.Fatalf("Fallback on nil-FT baseline: %v", err)
	}
	if any.Tier != TierBaseline || !any.Verified {
		t.Errorf("got tier=%q verified=%v, want verified baseline", any.Tier, any.Verified)
	}
}

func TestFallbackNothingServable(t *testing.T) {
	if _, err := Fallback(nil, nil, false, 0); !errors.Is(err, ErrNoFallback) {
		t.Errorf("nil result: err=%v, want ErrNoFallback", err)
	}
	res := &opt.Result{Stopped: opt.StopCancelled} // no Best, no Baseline
	if _, err := Fallback(nil, res, false, 0); !errors.Is(err, ErrNoFallback) {
		t.Errorf("empty result: err=%v, want ErrNoFallback", err)
	}
}
