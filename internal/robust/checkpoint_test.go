package robust

import (
	"context"
	"os"
	"path/filepath"
	"testing"
	"time"

	"magis/internal/faults"
	"magis/internal/opt"
)

// ladderScenario is a squeeze hard enough that RungAsIs fails and the
// ladder has to escalate — so an interrupted run has rungs both behind and
// ahead of it.
func ladderScenario(t *testing.T) (Options, *opt.State) {
	t.Helper()
	w := fatMLP()
	m := testModel()
	base := opt.Baseline(w.G, m)
	audit := faults.Audit(base.EvalG, base.Sched, faults.AuditConfig{Model: m})
	return squeezeOptions(1, worstEstimator(audit), base), base
}

// TestLadderCheckpointResume interrupts a checkpointed ladder between
// rungs and re-runs it on the same directory: recorded attempts replay
// without re-searching, the escalation continues, and the final outcome
// matches an uninterrupted ladder.
func TestLadderCheckpointResume(t *testing.T) {
	o, _ := ladderScenario(t)
	w := fatMLP()
	m := testModel()

	ref, err := Reoptimize(context.Background(), w.G, m, o)
	if err != nil {
		t.Fatal(err)
	}
	if !ref.Survived || ref.Rung == RungAsIs {
		t.Fatalf("scenario must need escalation (survived=%v rung=%v)", ref.Survived, ref.Rung)
	}

	dir := t.TempDir()
	o.CheckpointDir = dir

	// Interrupt after the first completed rung: cancel the context from a
	// hook the second rung's search will hit.
	ctx, cancel := context.WithCancel(context.Background())
	o.Opt.OnExpansion = func(completed int) {
		if completed >= 2 {
			cancel()
		}
	}
	// The interrupted incarnation may still report an anytime (partial)
	// outcome; what matters for crash-safety is what it persisted.
	if _, err := Reoptimize(ctx, w.G, m, o); err != nil {
		t.Fatal(err)
	}
	man, err := loadManifest(nil, dir)
	if err != nil {
		t.Fatal(err)
	}
	if man == nil || len(man.Attempts) == 0 {
		t.Fatal("interrupted ladder persisted no manifest")
	}
	if got := len(man.Attempts); got >= len(ref.Attempts) {
		t.Fatalf("manifest records %d attempts, want fewer than the full ladder's %d", got, len(ref.Attempts))
	}

	// Second incarnation: no cancellation, same directory.
	o.Opt.OnExpansion = nil
	res, err := Reoptimize(context.Background(), w.G, m, o)
	if err != nil {
		t.Fatal(err)
	}
	if res.CheckpointErr != "" {
		t.Fatalf("checkpoint error: %s", res.CheckpointErr)
	}
	if !res.Survived || res.Rung != ref.Rung {
		t.Fatalf("resumed ladder: survived=%v rung=%v, want survived at rung %v", res.Survived, res.Rung, ref.Rung)
	}
	if len(res.Attempts) != len(ref.Attempts) {
		t.Fatalf("resumed ladder ran %d attempts, reference %d", len(res.Attempts), len(ref.Attempts))
	}
	for i := range res.Attempts {
		if res.Attempts[i].Rung != ref.Attempts[i].Rung || res.Attempts[i].Feasible != ref.Attempts[i].Feasible {
			t.Errorf("attempt %d: resumed (%v, feasible=%v), reference (%v, feasible=%v)",
				i, res.Attempts[i].Rung, res.Attempts[i].Feasible,
				ref.Attempts[i].Rung, ref.Attempts[i].Feasible)
		}
	}
	if res.Best.PeakMem != ref.Best.PeakMem {
		t.Errorf("resumed best peak %d, reference %d", res.Best.PeakMem, ref.Best.PeakMem)
	}

	// The directory documents the full escalation after success.
	man, err = loadManifest(nil, dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(man.Attempts) != len(res.Attempts) {
		t.Errorf("final manifest records %d attempts, want %d", len(man.Attempts), len(res.Attempts))
	}
}

// TestManifestReplayFreezesReconstruction: replaying a recorded feasible
// attempt must restore exactly the snapshot's plan, even when the rung's
// snapshot still has frontier states and leftover TimeBudget — the audit
// verdict in the manifest applies to that plan, and a reconstruction that
// kept searching could silently swap in an unaudited one.
func TestManifestReplayFreezesReconstruction(t *testing.T) {
	w := fatMLP()
	m := testModel()
	base := opt.Baseline(w.G, m)
	dir := t.TempDir()
	path := rungCheckpointPath(dir, RungAsIs)

	// Build a mid-flight snapshot: generous time budget, cancelled after a
	// few expansions, so the checkpoint holds a non-empty frontier with
	// most of the budget unspent.
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	if _, err := opt.OptimizeCtx(ctx, w.G, m, opt.Options{
		Mode:       opt.LatencyUnderMemory,
		MemLimit:   base.PeakMem,
		TimeBudget: time.Minute,
		Workers:    1,
		Checkpoint: opt.Checkpoint{Path: path, EveryN: 1},
		OnExpansion: func(completed int) {
			if completed >= 3 {
				cancel()
			}
		},
	}); err != nil {
		t.Fatal(err)
	}
	info, err := opt.ReadCheckpointInfo(path)
	if err != nil {
		t.Fatal(err)
	}
	if info.Frontier == 0 || info.Iterations == 0 {
		t.Fatalf("scenario needs a resumable mid-flight snapshot, got frontier=%d iterations=%d", info.Frontier, info.Iterations)
	}

	// Pretend a prior incarnation recorded this rung as its feasible
	// outcome, then replay the ladder on the directory.
	if err := saveManifest(nil, dir, []Attempt{{Rung: RungAsIs, PeakMem: info.BestPeakMem, Feasible: true}}); err != nil {
		t.Fatal(err)
	}
	res, err := Reoptimize(context.Background(), w.G, m, Options{
		Opt:           deterministicOpt(1),
		CheckpointDir: dir,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Survived || res.Rung != RungAsIs {
		t.Fatalf("replay: survived=%v rung=%v, want the recorded rung", res.Survived, res.Rung)
	}
	if got := res.Opt.Stats.Iterations; got != info.Iterations {
		t.Errorf("reconstruction ran %d iterations, snapshot recorded %d — resume was not frozen", got, info.Iterations)
	}
	if res.Best.PeakMem != info.BestPeakMem {
		t.Errorf("reconstructed best peak %d, snapshot recorded %d", res.Best.PeakMem, info.BestPeakMem)
	}
}

// TestLadderManifestRejectsCorruption: a mangled manifest is a hard,
// descriptive error, not a silent restart.
func TestLadderManifestRejectsCorruption(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "ladder.json"), []byte(`{"magic":"nope","version":1}`), 0o644); err != nil {
		t.Fatal(err)
	}
	o, _ := ladderScenario(t)
	o.CheckpointDir = dir
	w := fatMLP()
	if _, err := Reoptimize(context.Background(), w.G, testModel(), o); err == nil {
		t.Fatal("corrupt manifest accepted")
	}
}
