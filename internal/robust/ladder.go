// Package robust is the adaptive re-optimization ladder: given a plan
// that fails the differential audit or the fault-injected replay
// (internal/faults), it re-runs the M-Optimizer through an escalating
// sequence of degradation rungs until a plan survives. Each rung trades a
// little more latency for a lot more safety margin:
//
//	as-is       the plan exactly as the base search produced it
//	headroom    re-optimize with the effective budget shrunk by a
//	            headroom margin, so transient co-tenant squeezes fit
//	aggressive  additionally raise re-mat/swap aggressiveness (more rule
//	            sites and candidates per expansion, more iterations)
//	micro-batch additionally pre-split the whole graph into sequential
//	            micro-batches (the §7.2.4 whole-graph F-Trans) before
//	            searching — the last-resort memory floor
//
// The ladder reuses the search hardening of internal/opt unchanged:
// context cancellation layers under each rung's TimeBudget, rule panics
// stay quarantined per run, and Options.Workers parallelizes candidate
// evaluation. Because both the search (for any worker count) and the
// fault injector are deterministic, the surviving rung and every attached
// report are reproducible for a fixed fault seed.
package robust

import (
	"context"
	"fmt"
	"os"
	"time"

	"magis/internal/baselines"
	"magis/internal/cost"
	"magis/internal/faults"
	"magis/internal/fsatomic"
	"magis/internal/ftree"
	"magis/internal/graph"
	"magis/internal/opt"
	"magis/internal/verify"
)

// Rung identifies one level of the degradation ladder.
type Rung int

const (
	// RungAsIs evaluates the plan the base options produce.
	RungAsIs Rung = iota
	// RungHeadroom shrinks the effective memory budget by the headroom
	// margin before re-optimizing.
	RungHeadroom
	// RungAggressive also raises rule aggressiveness: twice the rule sites
	// and F-Tree candidates per expansion and twice the iteration budget.
	RungAggressive
	// RungMicroBatch also pre-splits the whole graph into sequential
	// micro-batches before searching.
	RungMicroBatch

	numRungs
)

// String names the rung for reports.
func (r Rung) String() string {
	switch r {
	case RungAsIs:
		return "as-is"
	case RungHeadroom:
		return "headroom"
	case RungAggressive:
		return "aggressive"
	case RungMicroBatch:
		return "micro-batch"
	default:
		return fmt.Sprintf("rung(%d)", int(r))
	}
}

// Options configures the ladder.
type Options struct {
	// Opt is the base search configuration; rungs above RungAsIs override
	// its Mode/MemLimit (and, higher up, aggressiveness knobs).
	Opt opt.Options
	// Budget is the device budget every plan must fit. 0 defaults to
	// Opt.MemLimit (LatencyUnderMemory mode) or the device capacity.
	Budget int64
	// Headroom is the fractional budget margin RungHeadroom reserves
	// (default 0.10; RungAggressive and RungMicroBatch reserve 1.5x).
	Headroom float64
	// Faults configures the replay; Scenarios <= 0 with all magnitudes
	// zero still runs the audit but skips fault replay.
	Faults faults.Config
	// ReplayFaults enables fault-injected replay as a feasibility gate.
	ReplayFaults bool
	// Verify adds numeric plan verification (internal/verify) as a
	// feasibility gate: every rung's plan — in particular a repaired one —
	// is executed against its memory plan's arena offsets and
	// cross-checked against the input graph before it may survive.
	Verify bool
	// VerifySeed seeds the verification inputs.
	VerifySeed uint64
	// Audit bounds the differential audit (Model and Budget are filled in
	// by the ladder).
	Audit faults.AuditConfig
	// MicroBatchFactor is the whole-graph fission factor of RungMicroBatch
	// (default 2).
	MicroBatchFactor int
	// MaxRung caps escalation (default RungMicroBatch).
	MaxRung Rung
	// Initial, when set, is reused as RungAsIs's search result instead of
	// re-running the base search (the CLI passes its already-finished run).
	Initial *opt.Result
	// CheckpointDir makes the ladder crash-safe: rung searches checkpoint
	// into the directory and completed attempts are recorded in an atomic
	// manifest, so a Reoptimize on the same directory after a crash skips
	// finished rungs and resumes the interrupted one. Empty disables
	// checkpointing. See internal/robust/checkpoint.go for the layout.
	CheckpointDir string
	// FS is the filesystem the manifest and rung checkpoints are written
	// through; nil means the real OS. Chaos harnesses inject storage
	// faults here.
	FS fsatomic.FS
}

func (o Options) withDefaults(model *cost.Model) Options {
	if o.Headroom <= 0 {
		o.Headroom = 0.10
	}
	if o.MicroBatchFactor < 2 {
		o.MicroBatchFactor = 2
	}
	if o.MaxRung <= 0 || o.MaxRung >= numRungs {
		o.MaxRung = RungMicroBatch
	}
	if o.Budget <= 0 {
		if o.Opt.Mode == opt.LatencyUnderMemory && o.Opt.MemLimit > 0 {
			o.Budget = o.Opt.MemLimit
		} else if model != nil && model.Dev != nil {
			o.Budget = model.Dev.Capacity
		}
	}
	return o
}

// Attempt records one rung's outcome.
type Attempt struct {
	// Rung is the ladder level attempted.
	Rung Rung
	// MemLimit is the effective memory limit the rung searched under.
	MemLimit int64
	// PeakMem and Latency are the rung's best-plan measurements.
	PeakMem int64
	Latency float64
	// Stopped is why the rung's search ended.
	Stopped opt.StopReason
	// Audit is the differential audit of the rung's plan.
	Audit *faults.AuditReport
	// Replay is the fault-injected replay report (nil when replay is off).
	Replay *faults.ReplayReport
	// Verify is the numeric verification report (nil when verification is
	// off — including in manifests written before the gate existed).
	Verify *verify.Report `json:",omitempty"`
	// Feasible reports that the plan survived audit, replay, and
	// verification.
	Feasible bool
	// Err is set when the rung itself could not run (e.g. the micro-batch
	// split found no batch dimension); the ladder then escalates past it.
	Err string
}

// Result is the ladder's outcome.
type Result struct {
	// Attempts lists every rung tried, in order.
	Attempts []Attempt
	// Survived reports that some rung produced a feasible plan.
	Survived bool
	// Rung is the surviving rung (valid only when Survived).
	Rung Rung
	// Repaired reports that the surviving plan needed escalation beyond
	// the base search.
	Repaired bool
	// Best is the surviving plan's state (or the base plan when nothing
	// survived, so callers still degrade gracefully).
	Best *opt.State
	// Opt is the surviving (or fallback) search result.
	Opt *opt.Result
	// CheckpointErr records the first ladder-manifest write failure (empty
	// on a clean run or when checkpointing is off); the ladder itself
	// continues un-checkpointed.
	CheckpointErr string
}

// Summary renders the ladder outcome for logs and CLI output.
func (r *Result) Summary() string {
	if r.Survived {
		return fmt.Sprintf("plan feasible at rung %q after %d attempt(s)", r.Rung, len(r.Attempts))
	}
	return fmt.Sprintf("no feasible plan after %d attempt(s); returning best effort", len(r.Attempts))
}

// Reoptimize walks the ladder until a rung's plan passes the differential
// audit and (when enabled) the fault-injected replay. The search hardening
// of opt.OptimizeCtx applies per rung; cancelling ctx stops the ladder at
// the current rung with the attempts recorded so far.
func Reoptimize(ctx context.Context, g *graph.Graph, model *cost.Model, o Options) (*Result, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	o = o.withDefaults(model)
	res := &Result{}
	startRung := RungAsIs
	if o.CheckpointDir != "" {
		if err := fsatomic.Or(o.FS).MkdirAll(o.CheckpointDir, 0o755); err != nil {
			return nil, fmt.Errorf("robust: checkpoint dir: %w", err)
		}
		man, err := loadManifest(o.FS, o.CheckpointDir)
		if err != nil {
			return nil, err
		}
		if man != nil {
			// Replay the prior incarnation's completed rungs without
			// re-running them. States are recovered from the rungs' search
			// checkpoints via frozenResume, which restores the snapshot's
			// best plan without spending any leftover TimeBudget — the
			// recorded attempt was audited against exactly that plan.
			res.Attempts = man.Attempts
			startRung = Rung(len(man.Attempts))
			restored := false
			for i, a := range man.Attempts {
				if a.Err != "" {
					continue
				}
				if !a.Feasible {
					// Earliest successful rung = graceful-degradation
					// fallback.
					if !restored {
						if or, err := frozenResume(ctx, rungCheckpointPath(o.CheckpointDir, a.Rung), model); err == nil {
							res.Best, res.Opt = or.Best, or
						}
						restored = true
					}
					continue
				}
				// A recorded feasible attempt means the prior incarnation
				// finished the ladder: reconstruct its outcome instead of
				// escalating past the surviving rung.
				or, err := frozenResume(ctx, rungCheckpointPath(o.CheckpointDir, a.Rung), model)
				if err != nil && a.Rung == RungAsIs && o.Initial != nil {
					or, err = o.Initial, nil // as-is ran off Initial, no snapshot
				}
				if err != nil {
					// Surviving plan unrecoverable (deleted snapshot):
					// deterministically re-run from that rung.
					res.Attempts = man.Attempts[:i]
					startRung = a.Rung
					break
				}
				res.Survived = true
				res.Rung = a.Rung
				res.Repaired = a.Rung > RungAsIs
				res.Best, res.Opt = or.Best, or
				return res, nil
			}
		}
	}
	for rung := startRung; rung <= o.MaxRung; rung++ {
		att := Attempt{Rung: rung}
		or, err := runRung(ctx, g, model, o, rung, &att)
		if err != nil {
			att.Err = err.Error()
			res.Attempts = append(res.Attempts, att)
			if ctx.Err() != nil {
				break
			}
			persistLadder(o, res)
			continue
		}
		st := or.Best
		att.PeakMem = st.PeakMem
		att.Latency = st.Latency
		att.Stopped = or.Stopped
		ac := o.Audit
		ac.Model = model
		if ac.Budget <= 0 {
			ac.Budget = o.Budget
		}
		att.Audit = faults.Audit(st.EvalG, st.Sched, ac)
		feasible := att.Audit.OK()
		if o.ReplayFaults {
			att.Replay = faults.Replay(st.EvalG, st.Sched, model, o.Budget, o.Faults)
			feasible = feasible && att.Replay.OK()
		}
		if o.Verify {
			att.Verify = verifyAttempt(g, st, o.VerifySeed)
			feasible = feasible && att.Verify.OK()
		}
		att.Feasible = feasible
		res.Attempts = append(res.Attempts, att)
		if res.Best == nil {
			res.Best, res.Opt = st, or // graceful-degradation fallback
		}
		if feasible {
			res.Survived = true
			res.Rung = rung
			res.Repaired = rung > RungAsIs
			res.Best, res.Opt = st, or
			// A feasible-but-cancelled rung still returns (the search is
			// anytime) but stays out of the manifest: its snapshot holds a
			// half-finished search, so the next incarnation re-enters the
			// rung rather than trusting a partial result as final.
			if ctx.Err() == nil {
				persistLadder(o, res)
			}
			return res, nil
		}
		if ctx.Err() != nil {
			// Interrupted mid-rung: leave this attempt out of the manifest
			// so the next incarnation re-enters the rung through its search
			// checkpoint instead of skipping it half-done.
			break
		}
		persistLadder(o, res)
	}
	return res, nil
}

// verifyAttempt numerically verifies one rung's plan against the input
// graph (see internal/verify). input may be nil (e.g. a resumed search):
// the cross-check then degrades to the arena-safety self-check. A
// materialization failure is itself a verification failure — a plan that
// cannot be lowered to a concrete graph is not executable.
func verifyAttempt(input *graph.Graph, st *opt.State, seed uint64) *verify.Report {
	ft := st.FT
	if ft == nil { // baseline states carry no F-Tree
		ft = &ftree.Tree{}
	}
	mg, err := ft.Materialize(st.G)
	if err != nil {
		return &verify.Report{Err: fmt.Sprintf("materialize: %v", err)}
	}
	return verify.Check(input, mg, seed)
}

// frozenResume restores a completed rung's snapshot without continuing
// the search. A plain Resume of a time-budget-bound rung would keep
// searching under the leftover budget and could silently swap in a plan
// the recorded audit never saw; shrinking the budget to a nanosecond makes
// the resume exit at the loop gate with exactly the snapshot's best.
func frozenResume(ctx context.Context, path string, model *cost.Model) (*opt.Result, error) {
	return opt.Resume(ctx, path, model, func(o *opt.Options) { o.TimeBudget = time.Nanosecond })
}

// persistLadder records the completed attempts in the manifest. A write
// failure degrades the ladder to un-checkpointed (mirroring the search's
// checkpoint semantics) and is reported via Result.CheckpointErr.
func persistLadder(o Options, res *Result) {
	if o.CheckpointDir == "" {
		return
	}
	if err := saveManifest(o.FS, o.CheckpointDir, res.Attempts); err != nil && res.CheckpointErr == "" {
		res.CheckpointErr = err.Error()
	}
}

// runRung configures and executes one rung's search. With checkpointing
// on, a rung whose snapshot file already exists (a prior incarnation
// crashed inside it) is resumed instead of restarted.
func runRung(ctx context.Context, g *graph.Graph, model *cost.Model, o Options, rung Rung, att *Attempt) (*opt.Result, error) {
	oo := o.Opt
	gg := g
	switch rung {
	case RungAsIs:
		att.MemLimit = oo.MemLimit
		if o.Initial != nil {
			if o.Initial.Best == nil {
				return nil, fmt.Errorf("robust: initial result has no best state")
			}
			return o.Initial, nil
		}
	case RungHeadroom:
		att.MemLimit = shrink(o.Budget, o.Headroom)
		oo.Mode = opt.LatencyUnderMemory
		oo.MemLimit = att.MemLimit
	case RungAggressive, RungMicroBatch:
		att.MemLimit = shrink(o.Budget, 1.5*o.Headroom)
		oo.Mode = opt.LatencyUnderMemory
		oo.MemLimit = att.MemLimit
		oo.MaxSites = raised(oo.MaxSites, 8)
		oo.MaxCandidates = raised(oo.MaxCandidates, 64)
		if oo.MaxIterations > 0 {
			oo.MaxIterations *= 2
		}
		if rung == RungMicroBatch {
			split, err := baselines.SplitBatch(g, o.MicroBatchFactor)
			if err != nil {
				return nil, fmt.Errorf("robust: micro-batch fission: %w", err)
			}
			gg = split
		}
	}
	if o.CheckpointDir != "" {
		path := rungCheckpointPath(o.CheckpointDir, rung)
		if _, err := os.Stat(path); err == nil {
			return opt.Resume(ctx, path, model, nil)
		}
		oo.Checkpoint = opt.Checkpoint{
			Path:     path,
			EveryN:   o.Opt.Checkpoint.EveryN,
			Interval: o.Opt.Checkpoint.Interval,
			Label:    "ladder " + rung.String(),
			FS:       o.FS,
		}
	}
	return opt.OptimizeCtx(ctx, gg, model, oo)
}

// shrink reserves a fractional margin off the budget.
func shrink(budget int64, margin float64) int64 {
	if budget <= 0 {
		return budget
	}
	if margin > 0.9 {
		margin = 0.9
	}
	return int64(float64(budget) * (1 - margin))
}

// raised doubles a knob from its explicit or default value.
func raised(v, def int) int {
	if v <= 0 {
		v = def
	}
	return 2 * v
}
