package robust

// The serving-side face of the ladder: where Reoptimize escalates *search
// effort* until a plan survives, Fallback descends *response quality* when
// there is no time left to escalate anything. A deadline or overload trip
// mid-search leaves an anytime search result holding a best-so-far state;
// Fallback picks the strongest tier that is still sound to serve, so the
// caller returns a degraded plan instead of an error.

import (
	"errors"

	"magis/internal/graph"
	"magis/internal/opt"
)

// Fallback tiers, strongest first. These are the serving-side rungs: each
// step down trades optimization quality for certainty.
const (
	// TierBest is the search's best-so-far state — optimized, possibly
	// short of convergence.
	TierBest = "best-so-far"
	// TierBaseline is the unoptimized input plan: no memory savings, but
	// trivially sound (it is the graph the client asked about, scheduled
	// in program order).
	TierBaseline = "baseline"
)

// ErrNoFallback reports a result holding nothing servable at any tier.
var ErrNoFallback = errors.New("robust: interrupted search holds no servable state")

// Anytime is a degraded serving response assembled from an interrupted
// search.
type Anytime struct {
	// State is the plan to serve.
	State *opt.State
	// Tier labels the fallback level (TierBest or TierBaseline).
	Tier string
	// Verified reports that State passed numeric verification here. False
	// when verification was not requested (the caller may have verified
	// upstream already).
	Verified bool
}

// Fallback picks the strongest servable tier from an interrupted search:
// the best-so-far state when it exists (verified against input when
// doVerify is set), else the baseline. A best-so-far state that fails
// verification falls through to the baseline rather than failing the
// response — mirroring how the Reoptimize ladder keeps descending until
// something survives. input may be nil (e.g. a resumed search snapshot);
// verification then degrades to the arena-safety self-check, exactly as
// in verifyAttempt.
func Fallback(input *graph.Graph, res *opt.Result, doVerify bool, seed uint64) (*Anytime, error) {
	if res == nil {
		return nil, ErrNoFallback
	}
	tiers := []struct {
		st   *opt.State
		tier string
	}{
		{res.Best, TierBest},
		{res.Baseline, TierBaseline},
	}
	for _, t := range tiers {
		if t.st == nil {
			continue
		}
		if !doVerify {
			return &Anytime{State: t.st, Tier: t.tier}, nil
		}
		if verifyAttempt(input, t.st, seed).OK() {
			return &Anytime{State: t.st, Tier: t.tier, Verified: true}, nil
		}
	}
	return nil, ErrNoFallback
}
