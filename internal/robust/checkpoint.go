package robust

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"

	"magis/internal/fsatomic"
)

// Ladder checkpointing: with Options.CheckpointDir set, each rung's search
// checkpoints into <dir>/rung-<n>.ckpt (the internal/opt snapshot format)
// and a manifest at <dir>/ladder.json records the completed attempts,
// rewritten atomically between rungs. After a crash, Reoptimize on the
// same directory replays the recorded attempts without re-running them,
// resumes a half-finished rung from its search checkpoint, and continues
// the escalation from there. Only attempts that ran to completion are
// persisted — a rung interrupted by cancellation stays un-recorded so the
// next incarnation re-enters it through its search checkpoint.
//
// The directory is operator-owned: files are left in place after a
// successful ladder (the manifest then documents the full escalation) and
// may be deleted wholesale to restart from scratch.

// manifestVersion is the ladder manifest format version.
const manifestVersion = 1

const manifestMagic = "magis-ladder"

type ladderManifest struct {
	Magic    string    `json:"magic"`
	Version  int       `json:"version"`
	Attempts []Attempt `json:"attempts"`
}

func manifestPath(dir string) string { return filepath.Join(dir, "ladder.json") }

// rungCheckpointPath is where the given rung's search snapshot lives.
func rungCheckpointPath(dir string, rung Rung) string {
	return filepath.Join(dir, fmt.Sprintf("rung-%d.ckpt", int(rung)))
}

// loadManifest reads a prior incarnation's progress; a missing file means
// a fresh ladder. A present-but-invalid manifest is a hard error — the
// operator must decide between deleting the directory and fixing it.
func loadManifest(fsys fsatomic.FS, dir string) (*ladderManifest, error) {
	data, err := fsatomic.Or(fsys).ReadFile(manifestPath(dir))
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, fmt.Errorf("robust: ladder manifest: %w", err)
	}
	var m ladderManifest
	if err := json.Unmarshal(data, &m); err != nil {
		return nil, fmt.Errorf("robust: ladder manifest: %w", err)
	}
	if m.Magic != manifestMagic {
		return nil, fmt.Errorf("robust: %s is not a ladder manifest (magic %q)", manifestPath(dir), m.Magic)
	}
	if m.Version != manifestVersion {
		return nil, fmt.Errorf("robust: ladder manifest version %d (this build reads version %d)", m.Version, manifestVersion)
	}
	return &m, nil
}

// saveManifest atomically rewrites the manifest with the attempts so far.
func saveManifest(fsys fsatomic.FS, dir string, attempts []Attempt) error {
	data, err := json.Marshal(ladderManifest{
		Magic:    manifestMagic,
		Version:  manifestVersion,
		Attempts: attempts,
	})
	if err != nil {
		return fmt.Errorf("robust: ladder manifest: %w", err)
	}
	if err := fsatomic.WriteFileFS(fsys, manifestPath(dir), data, 0o644); err != nil {
		return fmt.Errorf("robust: ladder manifest: %w", err)
	}
	return nil
}
