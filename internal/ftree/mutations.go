package ftree

import (
	"fmt"

	"magis/internal/graph"
)

// RuleKind identifies one of the four F-Tree mutation rules of §5.1.
type RuleKind int

const (
	// Enable splits a candidate: a disabled leaf without enabled
	// ancestors, or the disabled parent of a top-level enabled node
	// (creating nested fission).
	Enable RuleKind = iota
	// Lift moves fission one level up: disable a top-level enabled node
	// and enable its parent.
	Lift
	// Disable un-splits an enabled node with no enabled descendants.
	Disable
	// Mutate increases an enabled node's fission number to the next
	// divisor of the dimension length.
	Mutate
)

// String names the rule.
func (k RuleKind) String() string {
	switch k {
	case Enable:
		return "Enable"
	case Lift:
		return "Lift"
	case Disable:
		return "Disable"
	case Mutate:
		return "Mutate"
	}
	return fmt.Sprintf("RuleKind(%d)", int(k))
}

// Mutation is one applicable rule application. Nodes are addressed by
// child-index paths from the forest roots so mutations survive Clone.
type Mutation struct {
	Kind RuleKind
	Path []int
	// NewN is the fission number the target (or, for Lift, the parent)
	// takes after the mutation.
	NewN int
}

// NodeAt resolves a path to its node, or nil.
func (t *Tree) NodeAt(path []int) *Node {
	if len(path) == 0 || path[0] >= len(t.Roots) {
		return nil
	}
	n := t.Roots[path[0]]
	for _, i := range path[1:] {
		if i >= len(n.Children) {
			return nil
		}
		n = n.Children[i]
	}
	return n
}

// smallestParts returns the smallest legal fission number >= 2 for n's
// candidate, or 0 when none exists.
func smallestParts(g *graph.Graph, n *Node) int {
	m := n.T.MaxParts(g)
	for k := 2; k <= m; k++ {
		if m%k == 0 {
			return k
		}
	}
	return 0
}

// validOn reports whether the candidate is still applicable on g: its
// nodes exist and the transformation survives full re-validation
// (connectivity, convexity, dimension coverage). Graph rewrites elsewhere
// can strand or corrupt dormant candidates; those are skipped rather than
// mutated.
func (n *Node) validOn(g *graph.Graph) bool {
	for v := range n.T.S {
		if !g.Has(v) {
			return false
		}
	}
	for v := range n.T.Choice {
		if !g.Has(v) {
			return false
		}
	}
	return n.T.ValidateOn(g) == nil
}

// Mutations enumerates every applicable mutation on the current tree.
func (t *Tree) Mutations(g *graph.Graph) []Mutation {
	var out []Mutation
	var rec func(n *Node, path []int)
	rec = func(n *Node, path []int) {
		p := append([]int(nil), path...)
		if !n.validOn(g) {
			for i, c := range n.Children {
				rec(c, append(path, i))
			}
			return
		}
		switch {
		case !n.Enabled():
			// Enable a disabled candidate with no enabled ancestor and no
			// enabled descendant. The paper enables leaves only and climbs
			// with Lift; enabling any free candidate directly is the
			// transitive closure of Enable+Lift chains and reaches large
			// regions in one search step (the collapsed evaluation makes
			// the wider step cheap).
			if !n.HasEnabledAncestor() && !n.HasEnabledDescendant() {
				if k := smallestParts(g, n); k > 0 {
					out = append(out, Mutation{Enable, p, k})
				}
			}
			// The disabled parent of a top-level enabled child can also be
			// enabled, nesting fission (Fig. 7a, second case).
			if !n.HasEnabledAncestor() && n.HasEnabledDescendant() {
				for _, c := range n.Children {
					if c.Enabled() {
						if k := smallestParts(g, n); k > 0 {
							out = append(out, Mutation{Enable, p, k})
						}
						break
					}
				}
			}
		default: // enabled
			if !n.HasEnabledAncestor() && n.Parent != nil && !n.Parent.Enabled() && n.Parent.validOn(g) {
				if k := smallestParts(g, n.Parent); k > 0 {
					out = append(out, Mutation{Lift, p, k})
				}
			}
			if !n.HasEnabledDescendant() {
				out = append(out, Mutation{Disable, p, 1})
			}
			if next := n.T.NextParts(g, n.N); next > 0 {
				out = append(out, Mutation{Mutate, p, next})
			}
		}
		for i, c := range n.Children {
			rec(c, append(path, i))
		}
	}
	for i, r := range t.Roots {
		rec(r, []int{i})
	}
	return out
}

// Apply performs the mutation in place. The caller clones the tree first
// when exploring alternatives.
func (t *Tree) Apply(m Mutation) error {
	n := t.NodeAt(m.Path)
	if n == nil {
		return fmt.Errorf("ftree: no node at path %v", m.Path)
	}
	switch m.Kind {
	case Enable:
		if n.Enabled() {
			return fmt.Errorf("ftree: Enable on enabled node")
		}
		n.N = m.NewN
	case Lift:
		if !n.Enabled() || n.Parent == nil {
			return fmt.Errorf("ftree: Lift needs an enabled non-root node")
		}
		n.N = 1
		n.Parent.N = m.NewN
	case Disable:
		if !n.Enabled() {
			return fmt.Errorf("ftree: Disable on disabled node")
		}
		n.N = 1
	case Mutate:
		if !n.Enabled() {
			return fmt.Errorf("ftree: Mutate on disabled node")
		}
		n.N = m.NewN
	default:
		return fmt.Errorf("ftree: unknown rule %v", m.Kind)
	}
	return nil
}
