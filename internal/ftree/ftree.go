// Package ftree implements the Fission Hierarchy Tree of §4.3: a
// hierarchical representation of fission transformations that avoids
// materializing split graphs during search. Tree nodes are fission
// candidates (S, D, n); n = 1 marks a disabled candidate, n > 1 a
// sub-graph already split into n parts. Construction follows Algorithm 1
// (memory heat scoring over the dominator tree); the mutation rules of
// §5.1 (Enable, Lift, Disable, Mutate) drive the search.
package ftree

import (
	"fmt"
	"sort"

	"magis/internal/dgraph"
	"magis/internal/fission"
	"magis/internal/graph"
	"magis/internal/sched"
)

// Node is one F-Tree node: a fission candidate with its current state.
type Node struct {
	// T is the resolved transformation (S, Choice); immutable and shared
	// across tree clones.
	T *fission.Trans
	// N is the current fission number: 1 = disabled, >1 = enabled with N
	// sequentially executed parts.
	N int
	// Score is the Equation (4) score the candidate was selected with.
	Score float64
	// Level is the score bucket (1..L) from Algorithm 1.
	Level int

	Parent   *Node
	Children []*Node
}

// Enabled reports whether the node's sub-graph is currently split.
func (n *Node) Enabled() bool { return n.N > 1 }

// HasEnabledAncestor reports whether any ancestor is enabled.
func (n *Node) HasEnabledAncestor() bool {
	for p := n.Parent; p != nil; p = p.Parent {
		if p.Enabled() {
			return true
		}
	}
	return false
}

// HasEnabledDescendant reports whether any descendant is enabled.
func (n *Node) HasEnabledDescendant() bool {
	for _, c := range n.Children {
		if c.Enabled() || c.HasEnabledDescendant() {
			return true
		}
	}
	return false
}

// Tree is the fission hierarchy tree: a forest, one or more roots per
// graph-level dimension.
type Tree struct {
	Roots []*Node

	// domCache retains, per dominator-analysis component (keyed by its
	// main entry node), the derived dominator graph and tree the build
	// computed. BuildFrom seeds the next build's dominator computation
	// from it (graph.DominatorsFrom), re-solving only nodes a rewrite
	// touched. Immutable after Build and shared across Clone.
	domCache map[graph.NodeID]domEntry
}

// domEntry is one cached dominator computation: the pruned component
// subgraph it ran on and the resulting tree.
type domEntry struct {
	g  *graph.Graph
	dt *graph.DomTree
}

// Clone deep-copies the tree structure (sharing the immutable Trans).
func (t *Tree) Clone() *Tree {
	if t == nil {
		return nil
	}
	c := &Tree{domCache: t.domCache}
	var cp func(n *Node, parent *Node) *Node
	cp = func(n *Node, parent *Node) *Node {
		m := &Node{T: n.T, N: n.N, Score: n.Score, Level: n.Level, Parent: parent}
		for _, ch := range n.Children {
			m.Children = append(m.Children, cp(ch, m))
		}
		return m
	}
	for _, r := range t.Roots {
		c.Roots = append(c.Roots, cp(r, nil))
	}
	return c
}

// Walk visits every node depth-first.
func (t *Tree) Walk(f func(*Node)) {
	var rec func(*Node)
	rec = func(n *Node) {
		f(n)
		for _, c := range n.Children {
			rec(c)
		}
	}
	for _, r := range t.Roots {
		rec(r)
	}
}

// Size returns the number of candidates in the tree.
func (t *Tree) Size() int {
	n := 0
	t.Walk(func(*Node) { n++ })
	return n
}

// EnabledNodes returns every enabled node, outermost first.
func (t *Tree) EnabledNodes() []*Node {
	var out []*Node
	t.Walk(func(n *Node) {
		if n.Enabled() {
			out = append(out, n)
		}
	})
	return out
}

// EnabledCover returns the union of sub-graphs covered by enabled nodes.
// Transformation rules must not pick sub-graphs that partly intersect this
// region (§3).
func (t *Tree) EnabledCover() graph.Set {
	cover := make(graph.Set)
	for _, n := range t.EnabledNodes() {
		for v := range n.T.S {
			cover[v] = true
		}
	}
	return cover
}

// Options configures F-Tree construction.
type Options struct {
	// MaxLevel is the hyper-parameter L of Algorithms 1 and 3 (default 4).
	MaxLevel int
	// MaxCandidates caps the number of tree nodes (0 = unlimited).
	MaxCandidates int
	// NaiveFission disables Algorithm 1's heat-based selection and instead
	// picks arbitrary valid dominator sub-trees (the naive-fission ablation
	// of §7.2.5).
	NaiveFission bool
}

func (o Options) maxLevel() int {
	if o.MaxLevel > 0 {
		return o.MaxLevel
	}
	return 4
}

// Build constructs the F-Tree for g (Algorithm 1). hot is the memory
// hot-spot set H from the current schedule's memory profile.
func Build(g *graph.Graph, hot graph.Set, opt Options) *Tree {
	return BuildFrom(g, hot, opt, nil)
}

// BuildFrom is Build warm-started from a previous state's tree: each
// component's dominator computation reuses prev's cached result for the
// matching component (same main entry node), re-solving only the nodes
// the intervening rewrite dirtied. The result is identical to a cold
// Build — DominatorsFrom is exact — only cheaper.
func BuildFrom(g *graph.Graph, hot graph.Set, opt Options, prev *Tree) *Tree {
	L := opt.maxLevel()
	d := dgraph.Build(g)
	var cands []*Node
	domCache := make(map[graph.NodeID]domEntry)
	for _, comp := range d.Components() {
		compNodes := graph.NewSet(comp.GraphNodes()...)
		sub := g.Subgraph(compNodes)
		if sub.Len() < 2 {
			continue
		}
		// §2.1: the dominator tree takes THE input tensor as entry.
		// Secondary entries of the component (labels, positions, sliced
		// side inputs) must not break domination, so the tree is computed
		// with their edges removed; the nodes themselves remain available
		// as sliced inputs of candidates.
		domGraph := sub
		key := graph.Invalid
		if entries := sub.Inputs(); len(entries) == 1 {
			key = entries[0]
		} else if len(entries) > 1 {
			main := entries[0]
			best := -1
			for _, e := range entries {
				if n := len(sub.Des(e)); n > best {
					best = n
					main = e
				}
			}
			pruned := compNodes.Clone()
			for _, e := range entries {
				if e != main {
					delete(pruned, e)
				}
			}
			domGraph = g.Subgraph(pruned)
			key = main
		}
		var dt *graph.DomTree
		if prev != nil && key != graph.Invalid {
			if ent, ok := prev.domCache[key]; ok {
				dt = graph.DominatorsFrom(ent.dt, ent.g, domGraph)
			}
		}
		if dt == nil {
			dt = graph.Dominators(domGraph)
		}
		if key != graph.Invalid {
			domCache[key] = domEntry{g: domGraph, dt: dt}
		}
		scores := heatScores(g, domGraph, dt, hot, opt.NaiveFission)
		smax := 0.0
		for _, s := range scores {
			if s > smax {
				smax = s
			}
		}
		if smax <= 0 {
			continue
		}
		for i := 1; i <= L; i++ {
			lo, hi := float64(i)/float64(L), float64(i+1)/float64(L)
			bucket := make(graph.Set)
			for v, s := range scores {
				r := s / smax
				if r >= lo && r < hi {
					bucket[v] = true
				}
			}
			// Select dominators whose dominated set contains no other
			// bucket member (Algorithm 1 line 11): walk each member's
			// dominator chain marking proper ancestors as non-innermost.
			notInnermost := make(graph.Set)
			for w := range bucket {
				for p := dt.Parent[w]; p != graph.Invalid && !notInnermost[p]; p = dt.Parent[p] {
					notInnermost[p] = true
				}
			}
			for vdom := range bucket {
				if notInnermost[vdom] {
					continue
				}
				s := dt.Des(vdom)
				if len(s) == 0 {
					continue
				}
				tr, err := fission.Resolve(g, d, comp, s, 1)
				if err != nil {
					continue
				}
				if tr.MaxParts(g) < 2 {
					continue
				}
				cands = append(cands, &Node{T: tr, N: 1, Score: scores[vdom], Level: i})
			}
		}
	}
	sort.Slice(cands, func(i, j int) bool {
		if len(cands[i].T.S) != len(cands[j].T.S) {
			return len(cands[i].T.S) > len(cands[j].T.S)
		}
		return cands[i].Score > cands[j].Score
	})
	if opt.MaxCandidates > 0 && len(cands) > opt.MaxCandidates {
		cands = cands[:opt.MaxCandidates]
	}
	// Nest by set containment into a LAMINAR family: each candidate hangs
	// under the smallest candidate strictly containing it; candidates that
	// partially overlap an already-kept candidate are dropped (enabling
	// two interleaved regions would make collapsed evaluation cyclic).
	t := &Tree{domCache: domCache}
	var kept []*Node
	for _, c := range cands {
		laminar := true
		for _, k := range kept {
			if partiallyOverlaps(c.T.S, k.T.S) {
				laminar = false
				break
			}
		}
		if !laminar {
			continue
		}
		kept = append(kept, c)
		parent := t.smallestContainer(c)
		if parent == nil {
			t.Roots = append(t.Roots, c)
		} else {
			c.Parent = parent
			parent.Children = append(parent.Children, c)
		}
	}
	return t
}

// partiallyOverlaps reports whether a and b intersect without either
// containing the other.
func partiallyOverlaps(a, b graph.Set) bool {
	inter, onlyA, onlyB := 0, 0, 0
	for v := range a {
		if b[v] {
			inter++
		} else {
			onlyA++
		}
	}
	if inter == 0 {
		return false
	}
	for v := range b {
		if !a[v] {
			onlyB++
		}
	}
	return onlyA > 0 && onlyB > 0
}

func (t *Tree) smallestContainer(c *Node) *Node {
	var best *Node
	t.Walk(func(n *Node) {
		if n == c || len(n.T.S) <= len(c.T.S) {
			return
		}
		for v := range c.T.S {
			if !n.T.S[v] {
				return
			}
		}
		if best == nil || len(n.T.S) < len(best.T.S) {
			best = n
		}
	})
	return best
}

// heatScores computes Equation (3)/(4)'s memory-heat score for every node
// in one O(V) post-order pass over the dominator tree:
//
//	heat(v) = sum of hot-spot bytes strictly dominated by v
//	score(v) = (1 - 1/n) * heat(v)  with n = 2
//
// The exact Equation (4) additionally subtracts the candidate's input
// residency; computing inps(des(v)) for every node is Theta(V^2), so the
// input term is deferred to candidate validation (fission.Resolve) and the
// optimizer's measured evaluation, which subsume it. With naive = true
// every node with a non-trivial dominated set scores 1 (the naive-fission
// ablation).
func heatScores(g, domGraph *graph.Graph, dt *graph.DomTree, hot graph.Set, naive bool) map[graph.NodeID]float64 {
	order := dt.Nodes() // reverse postorder: parents before children
	sub := make(map[graph.NodeID]int64, len(order))
	for i := len(order) - 1; i >= 0; i-- {
		v := order[i]
		var s int64
		if hot[v] {
			s = sched.OutDeviceBytes(g.Node(v))
		}
		for _, c := range dt.Children(v) {
			s += sub[c]
		}
		sub[v] = s
	}
	scores := make(map[graph.NodeID]float64, len(order))
	for _, v := range order {
		hasChild := len(dt.Children(v)) > 0
		if !hasChild {
			scores[v] = 0
			continue
		}
		if naive {
			scores[v] = 1
			continue
		}
		own := int64(0)
		if hot[v] {
			own = sched.OutDeviceBytes(g.Node(v))
		}
		scores[v] = 0.5 * float64(sub[v]-own)
	}
	return scores
}

// String renders the tree for debugging.
func (t *Tree) String() string {
	var b []byte
	var rec func(n *Node, depth int)
	rec = func(n *Node, depth int) {
		for i := 0; i < depth; i++ {
			b = append(b, "  "...)
		}
		b = append(b, fmt.Sprintf("|S|=%d n=%d score=%.0f level=%d\n", len(n.T.S), n.N, n.Score, n.Level)...)
		for _, c := range n.Children {
			rec(c, depth+1)
		}
	}
	for _, r := range t.Roots {
		rec(r, 0)
	}
	return string(b)
}
