package ftree

import (
	"fmt"
	"sort"

	"magis/internal/dgraph"
	"magis/internal/fission"
	"magis/internal/graph"
)

// Materialize expands every enabled fission node into an explicit split
// graph, innermost first, and returns the resulting graph. The search
// itself never materializes (it evaluates collapsed regions); this is used
// to emit the final optimized graph and for validation.
//
// Nested fission along the same graph-level dimension cannot always be
// re-resolved after the inner expansion (the inner Slice nodes block the
// dimension); such cases return an error.
func (t *Tree) Materialize(g *graph.Graph) (*graph.Graph, error) {
	enabled := t.EnabledNodes()
	if len(enabled) == 0 {
		return g.Clone(), nil
	}
	// Innermost (deepest) first.
	depth := func(n *Node) int {
		d := 0
		for p := n.Parent; p != nil; p = p.Parent {
			d++
		}
		return d
	}
	sort.SliceStable(enabled, func(i, j int) bool { return depth(enabled[i]) > depth(enabled[j]) })

	cur := g.Clone()
	repl := make(map[graph.NodeID][]graph.NodeID)
	sliceOrigin := make(map[graph.NodeID]graph.NodeID)
	for _, n := range enabled {
		s, probe, err := expandSet(cur, n, repl, sliceOrigin)
		if err != nil {
			return nil, err
		}
		d := dgraph.Build(cur)
		comp := componentWith(d, probe)
		if comp == nil {
			return nil, fmt.Errorf("ftree: materialize: dimension of %v vanished", probe)
		}
		tr, err := fission.Resolve(cur, d, comp, s, n.N)
		if err != nil {
			return nil, fmt.Errorf("ftree: materialize: %v", err)
		}
		res, err := tr.Apply(cur)
		if err != nil {
			return nil, fmt.Errorf("ftree: materialize: %v", err)
		}
		// Record replacements: every member of s maps to the created
		// replicas and merges (the coarse union suffices — outer regions
		// always absorb the entire inner expansion).
		created := append([]graph.NodeID(nil), res.Replicas...)
		for _, m := range res.Merged {
			created = append(created, m)
		}
		for v := range s {
			repl[v] = created
		}
		for sl, src := range res.Slices {
			sliceOrigin[sl] = src
		}
		cur = res.Graph
	}
	return cur, nil
}

// expandSet maps an F-Tree node's original member set onto the current
// graph, following replacements made by deeper materializations, and
// returns a probe dimension for component lookup.
func expandSet(cur *graph.Graph, n *Node, repl map[graph.NodeID][]graph.NodeID, sliceOrigin map[graph.NodeID]graph.NodeID) (graph.Set, dgraph.DimNode, error) {
	s := make(graph.Set)
	var stack []graph.NodeID
	for v := range n.T.S {
		stack = append(stack, v)
	}
	seen := make(map[graph.NodeID]bool)
	for len(stack) > 0 {
		v := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if seen[v] {
			continue
		}
		seen[v] = true
		if cur.Has(v) {
			s[v] = true
			continue
		}
		if rs, ok := repl[v]; ok {
			stack = append(stack, rs...)
		}
	}
	// Anchor the graph-level dimension at a surviving original member.
	var probe dgraph.DimNode
	found := false
	for _, v := range s.Slice() {
		if a, ok := n.T.Choice[v]; ok && n.T.S[v] {
			probe = dgraph.DimNode{Node: v, Axis: a}
			found = true
			break
		}
	}
	if !found {
		return nil, probe, fmt.Errorf("ftree: no surviving member to anchor dimension")
	}
	// Pull in inner slice nodes whose source landed inside the region;
	// leaving them out would break convexity.
	for {
		added := false
		for sl, src := range sliceOrigin {
			if cur.Has(sl) && !s[sl] && s[src] {
				s[sl] = true
				added = true
			}
		}
		if !added {
			break
		}
	}
	return s, probe, nil
}

func componentWith(d *dgraph.DGraph, probe dgraph.DimNode) dgraph.Component {
	for _, c := range d.Components() {
		if c[probe] {
			return c
		}
	}
	return nil
}
