package ftree

import (
	"testing"

	"magis/internal/graph"
	"magis/internal/ops"
	"magis/internal/sched"
	"magis/internal/tensor"
)

// bottleneck builds x -> mm1 -> relu -> mm2 with a fat hidden layer, the
// classic fission target: hidden activations dominate peak memory.
func bottleneck() *graph.Graph {
	g := graph.New()
	x := g.AddNamed("x", ops.NewInput(tensor.S(64, 32), tensor.F32))
	w1 := g.AddNamed("w1", ops.NewParam(tensor.S(32, 4096), tensor.F32))
	w2 := g.AddNamed("w2", ops.NewParam(tensor.S(4096, 32), tensor.F32))
	h := g.AddNamed("h", ops.NewMatmul(tensor.S(64, 32), tensor.S(32, 4096), false, false, tensor.F32), x, w1)
	r := g.AddNamed("r", ops.NewReLU(tensor.S(64, 4096), tensor.F32), h)
	g.AddNamed("y", ops.NewMatmul(tensor.S(64, 4096), tensor.S(4096, 32), false, false, tensor.F32), r, w2)
	return g
}

func hotspots(g *graph.Graph) graph.Set {
	return sched.Simulate(g, g.Topo()).Hotspots
}

func TestBuildFindsCandidates(t *testing.T) {
	g := bottleneck()
	tr := Build(g, hotspots(g), Options{})
	if tr.Size() == 0 {
		t.Fatal("no fission candidates found")
	}
	tr.Walk(func(n *Node) {
		if n.Enabled() {
			t.Error("fresh tree must be fully disabled")
		}
		if n.T.MaxParts(g) < 2 {
			t.Error("candidate cannot be split")
		}
		if n.Parent != nil {
			for v := range n.T.S {
				if !n.Parent.T.S[v] {
					t.Error("child set not contained in parent set")
				}
			}
			if len(n.T.S) >= len(n.Parent.T.S) {
				t.Error("child set not strictly smaller")
			}
		}
	})
}

func TestBuildRespectsMaxCandidates(t *testing.T) {
	g := bottleneck()
	tr := Build(g, hotspots(g), Options{MaxCandidates: 1})
	if tr.Size() > 1 {
		t.Errorf("size = %d, want <= 1", tr.Size())
	}
}

func TestMutationLifecycle(t *testing.T) {
	g := bottleneck()
	tr := Build(g, hotspots(g), Options{})
	muts := tr.Mutations(g)
	if len(muts) == 0 {
		t.Fatal("no mutations on fresh tree")
	}
	for _, m := range muts {
		if m.Kind != Enable {
			t.Errorf("fresh tree offers only Enable, got %v", m.Kind)
		}
	}
	// Enable the first candidate.
	if err := tr.Apply(muts[0]); err != nil {
		t.Fatal(err)
	}
	n := tr.NodeAt(muts[0].Path)
	if !n.Enabled() || n.N != muts[0].NewN {
		t.Fatalf("enable failed: n=%d", n.N)
	}
	// Now Disable and Mutate must be available for that node.
	var sawDisable, sawMutate bool
	for _, m := range tr.Mutations(g) {
		if tr.NodeAt(m.Path) == n {
			switch m.Kind {
			case Disable:
				sawDisable = true
			case Mutate:
				sawMutate = true
				if m.NewN <= n.N {
					t.Errorf("Mutate must increase n: %d -> %d", n.N, m.NewN)
				}
			}
		}
	}
	if !sawDisable || !sawMutate {
		t.Errorf("missing follow-up rules: disable=%v mutate=%v", sawDisable, sawMutate)
	}
	// Lift appears iff the node has a disabled parent.
	if n.Parent != nil {
		found := false
		for _, m := range tr.Mutations(g) {
			if m.Kind == Lift && tr.NodeAt(m.Path) == n {
				found = true
			}
		}
		if !found {
			t.Error("Lift missing for enabled child with disabled parent")
		}
	}
}

func TestCloneIndependence(t *testing.T) {
	g := bottleneck()
	tr := Build(g, hotspots(g), Options{})
	muts := tr.Mutations(g)
	if len(muts) == 0 {
		t.Skip("no candidates")
	}
	c := tr.Clone()
	if err := c.Apply(muts[0]); err != nil {
		t.Fatal(err)
	}
	if tr.NodeAt(muts[0].Path).Enabled() {
		t.Error("mutating clone affected original")
	}
	if len(c.EnabledNodes()) != 1 || len(tr.EnabledNodes()) != 0 {
		t.Error("enabled bookkeeping wrong after clone")
	}
}

func TestEnabledCover(t *testing.T) {
	g := bottleneck()
	tr := Build(g, hotspots(g), Options{})
	muts := tr.Mutations(g)
	if len(muts) == 0 {
		t.Skip("no candidates")
	}
	if len(tr.EnabledCover()) != 0 {
		t.Error("fresh tree covers nothing")
	}
	tr.Apply(muts[0])
	n := tr.NodeAt(muts[0].Path)
	cover := tr.EnabledCover()
	if len(cover) != len(n.T.S) {
		t.Errorf("cover = %d nodes, want %d", len(cover), len(n.T.S))
	}
}

func TestMaterializeReducesPeak(t *testing.T) {
	g := bottleneck()
	tr := Build(g, hotspots(g), Options{})
	// Enable the largest candidate (first root).
	if len(tr.Roots) == 0 {
		t.Fatal("no roots")
	}
	// The root is the largest candidate (whole pipeline, batch fission).
	target := tr.Roots[0]
	k := smallestParts(g, target)
	if k == 0 {
		t.Fatal("unsplittable target")
	}
	target.N = 4
	if !target.T.DivisibleBy(g, 4) {
		target.N = k
	}
	mg, err := tr.Materialize(g)
	if err != nil {
		t.Fatal(err)
	}
	sc := &sched.Scheduler{}
	ms := sc.ScheduleGraph(mg)
	if err := ms.Validate(mg); err != nil {
		t.Fatal(err)
	}
	before := sched.PeakOnly(g, sc.ScheduleGraph(g))
	after := sched.PeakOnly(mg, ms)
	if after >= before {
		t.Errorf("materialized fission did not reduce peak: %d -> %d", before, after)
	}
}

func TestMaterializeNoEnabledIsClone(t *testing.T) {
	g := bottleneck()
	tr := Build(g, hotspots(g), Options{})
	mg, err := tr.Materialize(g)
	if err != nil {
		t.Fatal(err)
	}
	if mg.WLHash() != g.WLHash() {
		t.Error("materializing a disabled tree must be the identity")
	}
}

func TestNaiveFissionOption(t *testing.T) {
	g := bottleneck()
	tr := Build(g, hotspots(g), Options{NaiveFission: true})
	// Naive mode still produces a structurally valid tree.
	tr.Walk(func(n *Node) {
		if n.T == nil || len(n.T.S) == 0 {
			t.Error("invalid naive candidate")
		}
	})
}
