package tensor

import (
	"encoding/binary"
	"math"
)

// This file gives tensors real contents for the reference executor
// (internal/refexec) and the arena-safety checker (internal/verify). The
// rest of the optimizer never materializes data; numeric verification
// does, and it needs two things from the dtype: value semantics (Quantize)
// and a byte encoding (PutElem/GetElem) so a value can round-trip through
// a planned arena exactly.
//
// All computation happens in float64; Quantize is applied after every
// operator so the reference semantics match what a real kernel at that
// precision would retain. The invariant tying the two halves together is
//
//	GetElem(PutElem(Quantize(v))) == Quantize(v)
//
// for every finite v — storing a quantized value is lossless.

// Quantize rounds v to the nearest value representable in the dtype and
// returns it as float64. Integer dtypes truncate toward zero; Bool maps
// any non-zero value to 1.
func (d DType) Quantize(v float64) float64 {
	switch d {
	case F32, TF32:
		// TF32 keeps f32 range; its reduced mantissa only applies inside
		// tensor-core matmuls, so storage-wise it is f32.
		return float64(float32(v))
	case BF16:
		return bf16ToF64(bf16FromF32(float32(v)))
	case F16:
		return f16ToF64(f16FromF32(float32(v)))
	case I64:
		return float64(clampInt(v, math.MinInt64, math.MaxInt64))
	case I32:
		return float64(int32(clampInt(v, math.MinInt32, math.MaxInt32)))
	case Bool:
		if v != 0 {
			return 1
		}
		return 0
	}
	return v
}

// PutElem encodes one quantized element into b[:d.Size()], little-endian.
func (d DType) PutElem(b []byte, v float64) {
	switch d {
	case F32, TF32:
		binary.LittleEndian.PutUint32(b, math.Float32bits(float32(v)))
	case BF16:
		binary.LittleEndian.PutUint16(b, bf16FromF32(float32(v)))
	case F16:
		binary.LittleEndian.PutUint16(b, f16FromF32(float32(v)))
	case I64:
		binary.LittleEndian.PutUint64(b, uint64(clampInt(v, math.MinInt64, math.MaxInt64)))
	case I32:
		binary.LittleEndian.PutUint32(b, uint32(int32(clampInt(v, math.MinInt32, math.MaxInt32))))
	case Bool:
		if v != 0 {
			b[0] = 1
		} else {
			b[0] = 0
		}
	}
}

// GetElem decodes one element from b[:d.Size()].
func (d DType) GetElem(b []byte) float64 {
	switch d {
	case F32, TF32:
		return float64(math.Float32frombits(binary.LittleEndian.Uint32(b)))
	case BF16:
		return bf16ToF64(binary.LittleEndian.Uint16(b))
	case F16:
		return f16ToF64(binary.LittleEndian.Uint16(b))
	case I64:
		return float64(int64(binary.LittleEndian.Uint64(b)))
	case I32:
		return float64(int32(binary.LittleEndian.Uint32(b)))
	case Bool:
		if b[0] != 0 {
			return 1
		}
		return 0
	}
	return 0
}

// clampInt converts v to an integer, truncating toward zero and saturating
// at the given bounds (Go's float→int conversion is implementation-defined
// out of range). NaN maps to 0.
func clampInt(v, lo, hi float64) int64 {
	switch {
	case math.IsNaN(v):
		return 0
	case v <= lo:
		return int64(lo)
	case v >= hi:
		return int64(hi)
	}
	return int64(v)
}

// bf16FromF32 rounds f to bfloat16 (round-to-nearest-even on the dropped
// 16 mantissa bits). NaN keeps a quiet payload; rounding may overflow to
// infinity, matching hardware.
func bf16FromF32(f float32) uint16 {
	b := math.Float32bits(f)
	if f != f {
		return uint16(b>>16) | 0x0040 // quiet NaN
	}
	b += 0x7FFF + (b>>16)&1
	return uint16(b >> 16)
}

func bf16ToF64(h uint16) float64 {
	return float64(math.Float32frombits(uint32(h) << 16))
}

// f16FromF32 rounds f to IEEE 754 binary16 with round-to-nearest-even,
// handling subnormals, overflow to infinity, and NaN.
func f16FromF32(f float32) uint16 {
	b := math.Float32bits(f)
	sign := uint16(b >> 16 & 0x8000)
	abs := b & 0x7FFFFFFF
	if abs >= 0x7F800000 { // Inf or NaN
		if abs > 0x7F800000 {
			return sign | 0x7E00
		}
		return sign | 0x7C00
	}
	e := int32(abs >> 23) // biased f32 exponent
	if e >= 143 {         // >= 2^16: overflows f16
		return sign | 0x7C00
	}
	if e >= 113 { // normal f16
		m := abs & 0x7FFFFF
		out := uint32(e-112)<<10 | m>>13
		rem := m & 0x1FFF
		if rem > 0x1000 || (rem == 0x1000 && out&1 == 1) {
			out++ // carry into the exponent yields the correct next binade
		}
		return sign | uint16(out)
	}
	if e < 102 { // < 2^-25: underflows to zero
		return sign
	}
	// Subnormal: shift the 24-bit significand down to units of 2^-24.
	full := abs&0x7FFFFF | 0x800000
	shift := uint32(126 - e) // 14..24
	out := full >> shift
	rem := full & (1<<shift - 1)
	half := uint32(1) << (shift - 1)
	if rem > half || (rem == half && out&1 == 1) {
		out++
	}
	return sign | uint16(out)
}

func f16ToF64(h uint16) float64 {
	sign := 1.0
	if h&0x8000 != 0 {
		sign = -1
	}
	exp := int(h >> 10 & 0x1F)
	man := int(h & 0x3FF)
	switch exp {
	case 0:
		return sign * math.Ldexp(float64(man), -24)
	case 0x1F:
		if man != 0 {
			return math.NaN()
		}
		return sign * math.Inf(1)
	}
	return sign * math.Ldexp(float64(man|0x400), exp-25)
}
