package tensor

import (
	"math"
	"testing"
)

// TestQuantizeRoundTrip pins the invariant the arena checker depends on:
// storing a quantized value through the byte encoding is lossless.
func TestQuantizeRoundTrip(t *testing.T) {
	vals := []float64{0, 1, -1, 0.5, -0.25, 3.14159265358979, 1e-3, -1e-3,
		65504, 70000, 1e-8, -2.5e-8, 255, 256, 257, 1e6, -1e6, 0.1}
	buf := make([]byte, 8)
	for _, dt := range []DType{F32, TF32, BF16, F16, I64, I32, Bool} {
		for _, v := range vals {
			q := dt.Quantize(v)
			dt.PutElem(buf, q)
			got := dt.GetElem(buf)
			if got != q && !(math.IsNaN(got) && math.IsNaN(q)) {
				t.Errorf("%v: PutElem/GetElem(%g) = %g, want quantized %g", dt, v, got, q)
			}
			// Quantize must be idempotent.
			if q2 := dt.Quantize(q); q2 != q && !(math.IsNaN(q2) && math.IsNaN(q)) {
				t.Errorf("%v: Quantize not idempotent on %g: %g then %g", dt, v, q, q2)
			}
		}
	}
}

func TestQuantizeKnownValues(t *testing.T) {
	cases := []struct {
		dt   DType
		in   float64
		want float64
	}{
		{F32, 0.1, float64(float32(0.1))},
		{BF16, 1.0, 1.0},
		{BF16, math.Pi, 3.140625},
		{F16, math.Pi, 3.140625},
		{F16, 65504, 65504},          // max finite f16
		{F16, 65520, math.Inf(1)},    // rounds past max finite
		{F16, math.Ldexp(1, -24), math.Ldexp(1, -24)}, // min subnormal
		{F16, math.Ldexp(1, -26), 0}, // underflow
		{I64, 3.9, 3},
		{I64, -3.9, -3},
		{I32, math.NaN(), 0},
		{Bool, 0.3, 1},
		{Bool, 0, 0},
	}
	for _, c := range cases {
		if got := c.dt.Quantize(c.in); got != c.want {
			t.Errorf("%v.Quantize(%g) = %g, want %g", c.dt, c.in, got, c.want)
		}
	}
}

func TestF16BF16RoundToNearestEven(t *testing.T) {
	// 1 + 2^-11 is exactly halfway between 1 and the next f16 (1+2^-10):
	// ties to even → 1. Just above the tie rounds up.
	if got := F16.Quantize(1 + math.Ldexp(1, -11)); got != 1 {
		t.Errorf("f16 tie: got %g, want 1", got)
	}
	if got := F16.Quantize(1 + math.Ldexp(1, -11) + math.Ldexp(1, -13)); got != 1+math.Ldexp(1, -10) {
		t.Errorf("f16 above tie: got %g, want %g", got, 1+math.Ldexp(1, -10))
	}
	// Same structure for bf16 (8 mantissa bits): tie at 1 + 2^-9.
	if got := BF16.Quantize(1 + math.Ldexp(1, -9)); got != 1 {
		t.Errorf("bf16 tie: got %g, want 1", got)
	}
}
