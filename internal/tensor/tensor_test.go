package tensor

import (
	"testing"
	"testing/quick"
)

func TestDTypeSizes(t *testing.T) {
	cases := map[DType]int64{
		F32: 4, TF32: 4, I32: 4, BF16: 2, F16: 2, I64: 8, Bool: 1,
	}
	for dt, want := range cases {
		if got := dt.Size(); got != want {
			t.Errorf("%v.Size() = %d, want %d", dt, got, want)
		}
	}
}

func TestDTypeStrings(t *testing.T) {
	if F32.String() != "f32" || BF16.String() != "bf16" || TF32.String() != "tf32" {
		t.Error("dtype names wrong")
	}
}

func TestShapeBasics(t *testing.T) {
	s := S(2, 3, 4)
	if s.Rank() != 3 || s.Elems() != 24 {
		t.Fatalf("rank/elems wrong: %v", s)
	}
	if s.Dim(1) != 2 || s.Dim(3) != 4 {
		t.Error("1-based Dim wrong")
	}
	if !s.Equal(S(2, 3, 4)) || s.Equal(S(2, 3)) || s.Equal(S(2, 3, 5)) {
		t.Error("Equal wrong")
	}
	if s.String() != "[2, 3, 4]" {
		t.Errorf("String = %q", s.String())
	}
}

func TestScalarShape(t *testing.T) {
	s := S()
	if s.Rank() != 0 || s.Elems() != 1 {
		t.Errorf("scalar: rank %d elems %d", s.Rank(), s.Elems())
	}
	if Bytes(s, F32) != 4 {
		t.Error("scalar bytes wrong")
	}
}

func TestCloneIndependence(t *testing.T) {
	s := S(2, 3)
	c := s.Clone()
	c[0] = 9
	if s[0] != 2 {
		t.Error("Clone shares backing array")
	}
	if Shape(nil).Clone() != nil {
		t.Error("nil clone should be nil")
	}
}

func TestWithDim(t *testing.T) {
	s := S(2, 3, 4)
	w := s.WithDim(2, 7)
	if !w.Equal(S(2, 7, 4)) || !s.Equal(S(2, 3, 4)) {
		t.Errorf("WithDim wrong: %v / %v", w, s)
	}
	defer func() {
		if recover() == nil {
			t.Error("out-of-range WithDim must panic")
		}
	}()
	s.WithDim(4, 1)
}

func TestQuickBytesConsistent(t *testing.T) {
	f := func(a, b uint8) bool {
		s := S(int(a)%16+1, int(b)%16+1)
		return Bytes(s, F32) == s.Elems()*4 && Bytes(s, BF16) == s.Elems()*2
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
