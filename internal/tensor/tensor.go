// Package tensor provides lightweight tensor metadata: shapes and data
// types. MAGIS never materializes tensor contents; every algorithm in the
// paper consumes only shapes (for memory accounting and dimension analysis)
// and element sizes (for byte counts), so this package is deliberately
// value-oriented and allocation-free where possible.
package tensor

import (
	"fmt"
	"strings"
)

// DType identifies the element type of a tensor.
type DType uint8

// Supported element types. TF32 occupies 4 bytes in memory (it is a
// compute format, not a storage format), matching how the paper accounts
// tf32 workloads.
const (
	F32 DType = iota
	TF32
	BF16
	F16
	I64
	I32
	Bool
)

// Size returns the number of bytes one element occupies in device memory.
func (d DType) Size() int64 {
	switch d {
	case F32, TF32, I32:
		return 4
	case BF16, F16:
		return 2
	case I64:
		return 8
	case Bool:
		return 1
	}
	panic(fmt.Sprintf("tensor: unknown dtype %d", d))
}

// Valid reports whether d is one of the supported element types. Decoders
// of untrusted graph bytes must check it before calling Size, which
// panics on unknown values by design (an unknown dtype inside the
// optimizer is a bug, not an input error).
func (d DType) Valid() bool { return d <= Bool }

// String returns the conventional lowercase name of the dtype.
func (d DType) String() string {
	switch d {
	case F32:
		return "f32"
	case TF32:
		return "tf32"
	case BF16:
		return "bf16"
	case F16:
		return "f16"
	case I64:
		return "i64"
	case I32:
		return "i32"
	case Bool:
		return "bool"
	}
	return fmt.Sprintf("dtype(%d)", d)
}

// Shape is the extent of each tensor dimension, outermost first.
// A nil or empty Shape denotes a scalar.
type Shape []int

// S is a convenience constructor: S(2, 3, 4) == Shape{2, 3, 4}.
func S(dims ...int) Shape { return Shape(dims) }

// Rank returns the number of dimensions.
func (s Shape) Rank() int { return len(s) }

// Elems returns the total number of elements (1 for a scalar).
func (s Shape) Elems() int64 {
	n := int64(1)
	for _, d := range s {
		n *= int64(d)
	}
	return n
}

// Clone returns an independent copy of the shape.
func (s Shape) Clone() Shape {
	if s == nil {
		return nil
	}
	c := make(Shape, len(s))
	copy(c, s)
	return c
}

// Equal reports whether two shapes have identical rank and extents.
func (s Shape) Equal(t Shape) bool {
	if len(s) != len(t) {
		return false
	}
	for i := range s {
		if s[i] != t[i] {
			return false
		}
	}
	return true
}

// WithDim returns a copy of s with 1-based dimension dim replaced by n.
// It panics if dim is out of range.
func (s Shape) WithDim(dim, n int) Shape {
	if dim < 1 || dim > len(s) {
		panic(fmt.Sprintf("tensor: dim %d out of range for rank %d", dim, len(s)))
	}
	c := s.Clone()
	c[dim-1] = n
	return c
}

// Dim returns the extent of the 1-based dimension dim.
func (s Shape) Dim(dim int) int {
	if dim < 1 || dim > len(s) {
		panic(fmt.Sprintf("tensor: dim %d out of range for rank %d", dim, len(s)))
	}
	return s[dim-1]
}

// String renders the shape as "[a, b, c]".
func (s Shape) String() string {
	var b strings.Builder
	b.WriteByte('[')
	for i, d := range s {
		if i > 0 {
			b.WriteString(", ")
		}
		fmt.Fprintf(&b, "%d", d)
	}
	b.WriteByte(']')
	return b.String()
}

// Bytes returns the device-memory footprint of a tensor with shape s and
// element type d.
func Bytes(s Shape, d DType) int64 { return s.Elems() * d.Size() }

// BytesChecked is the overflow-aware form of Bytes for untrusted shapes:
// it multiplies the dimension extents and the element size with explicit
// overflow checks, returning ok=false when any dimension is < 1, the
// dtype is unknown, or the product exceeds int64. Trusted in-optimizer
// code keeps using Bytes; decoders of hostile inputs must use this, since
// a silently wrapped product turns a graph bomb into a tiny-looking
// tensor that passes every byte budget.
func BytesChecked(s Shape, d DType) (n int64, ok bool) {
	if !d.Valid() {
		return 0, false
	}
	n = d.Size()
	for _, dim := range s {
		if dim < 1 {
			return 0, false
		}
		if n > int64(1)<<62/int64(dim) {
			return 0, false
		}
		n *= int64(dim)
	}
	return n, true
}
