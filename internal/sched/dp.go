package sched

import (
	"sort"

	"magis/internal/graph"
)

// Scheduler finds memory-minimizing topological orders. Small sub-problems
// are solved exactly with the dynamic program over scheduled-sets used by
// Serenity (the paper's DpSchedule, Algorithm 2 line 11); medium ones fall
// back to beam search over the same state space; large ones to a greedy
// beam of width 1. The zero value is ready to use with sensible defaults.
type Scheduler struct {
	// MaxExact is the largest sub-problem solved with the exact DP.
	MaxExact int
	// BeamLimit is the largest sub-problem solved with beam search.
	BeamLimit int
	// BeamWidth is the beam width for medium sub-problems.
	BeamWidth int

	// scratch is reused across scheduling calls; a Scheduler is therefore
	// not safe for concurrent use (the search gives each worker its own).
	scratch Scratch

	// Reused work storage. The beam scheduler prices every fission region
	// of every search candidate, so its per-step state lives in slots that
	// persist across calls instead of per-entry allocations.
	pb    problem
	topo  graph.TopoScratch
	slots []beamEntry
	cands []beamCand
	blist []*beamEntry
}

func (sc *Scheduler) maxExact() int {
	if sc.MaxExact > 0 {
		return sc.MaxExact
	}
	return 16
}

func (sc *Scheduler) beamLimit() int {
	if sc.BeamLimit > 0 {
		return sc.BeamLimit
	}
	return 400
}

func (sc *Scheduler) beamWidth() int {
	if sc.BeamWidth > 0 {
		return sc.BeamWidth
	}
	return 8
}

// DpSchedule returns a peak-memory-minimizing execution order for the
// standalone graph g (exact for small g, approximate beyond MaxExact).
func (sc *Scheduler) DpSchedule(g *graph.Graph) Schedule {
	n := g.Len()
	switch {
	case n == 0:
		return nil
	case n == 1:
		return Schedule{g.NodeIDs()[0]}
	case n <= sc.maxExact():
		return sc.exact(g)
	case n <= sc.beamLimit():
		return sc.beam(g, sc.beamWidth())
	default:
		return sc.beam(g, 1)
	}
}

// problem is the indexed form of a scheduling sub-problem. All per-node
// tables and both adjacency arenas are reused across calls.
type problem struct {
	ids      []graph.NodeID // index -> node, topo order
	idx      []int32        // NodeID -> index
	preds    [][]int32      // distinct predecessors, arena-backed
	sucs     [][]int32      // distinct consumers, arena-backed
	size     []int64
	trans    []int64
	hasCons  []bool
	predMask []uint64 // exact DP only, n <= 64
	sucMask  []uint64

	predArena, sucArena, cnt []int32
}

func ensureI32(s []int32, n int) []int32 {
	if cap(s) < n {
		return make([]int32, n)
	}
	return s[:n]
}

func ensureI64(s []int64, n int) []int64 {
	if cap(s) < n {
		return make([]int64, n)
	}
	return s[:n]
}

func ensureU64(s []uint64, n int) []uint64 {
	if cap(s) < n {
		return make([]uint64, n)
	}
	return s[:n]
}

// problemFor (re)builds sc.pb for g. The result is valid until the next
// problemFor call on the same Scheduler.
func (sc *Scheduler) problemFor(g *graph.Graph) *problem {
	p := &sc.pb
	order, err := g.TopoInto(&sc.topo)
	if err != nil {
		panic(err.Error())
	}
	n := len(order)
	if cap(p.ids) < n {
		p.ids = make([]graph.NodeID, n)
	} else {
		p.ids = p.ids[:n]
	}
	copy(p.ids, order)
	maxID := 0
	for _, v := range p.ids {
		if int(v) > maxID {
			maxID = int(v)
		}
	}
	p.idx = ensureI32(p.idx, maxID+1)
	for i, v := range p.ids {
		p.idx[v] = int32(i)
	}
	if cap(p.preds) < n {
		p.preds = make([][]int32, n)
		p.sucs = make([][]int32, n)
	} else {
		p.preds = p.preds[:n]
		p.sucs = p.sucs[:n]
	}
	p.size = ensureI64(p.size, n)
	p.trans = ensureI64(p.trans, n)
	if cap(p.hasCons) < n {
		p.hasCons = make([]bool, n)
	} else {
		p.hasCons = p.hasCons[:n]
	}
	small := n <= 64
	if small {
		p.predMask = ensureU64(p.predMask, n)
		p.sucMask = ensureU64(p.sucMask, n)
		for i := 0; i < n; i++ {
			p.predMask[i] = 0
			p.sucMask[i] = 0
		}
	} else {
		p.predMask, p.sucMask = p.predMask[:0], p.sucMask[:0]
	}
	// Distinct predecessors, deduplicated by linear scan (input lists are
	// tiny) into one arena.
	arena := p.predArena[:0]
	for i, v := range p.ids {
		node := g.Node(v)
		p.size[i] = OutDeviceBytes(node)
		p.trans[i] = ExecTransientBytes(node)
		p.hasCons[i] = g.SucEdges(v) > 0
		base := len(arena)
	ins:
		for _, pr := range node.Ins {
			j := p.idx[pr]
			for _, e := range arena[base:] {
				if e == j {
					continue ins
				}
			}
			arena = append(arena, j)
		}
		p.preds[i] = arena[base:len(arena):len(arena)]
		if small {
			for _, j := range arena[base:] {
				p.predMask[i] |= 1 << j
				p.sucMask[j] |= 1 << i
			}
		}
	}
	p.predArena = arena
	// Distinct consumers: preds are deduplicated, so each (u, v) pair
	// occurs once; counting pass sizes the arena sub-slices.
	cnt := ensureI32(p.cnt, n)
	p.cnt = cnt
	for i := range cnt {
		cnt[i] = 0
	}
	total := 0
	for i := range p.preds {
		for _, u := range p.preds[i] {
			cnt[u]++
			total++
		}
	}
	sa := ensureI32(p.sucArena, total)
	p.sucArena = sa
	off := int32(0)
	for u := 0; u < n; u++ {
		p.sucs[u] = sa[off : off : off+cnt[u]]
		off += cnt[u]
	}
	for i := range p.preds {
		for _, u := range p.preds[i] {
			p.sucs[u] = append(p.sucs[u], int32(i))
		}
	}
	return p
}

type dpEntry struct {
	peak  int64
	alive int64
	prev  uint64
	last  int8
}

// exact runs the exponential DP over subsets (n <= 64 by construction).
func (sc *Scheduler) exact(g *graph.Graph) Schedule {
	// Upper bound from greedy to prune the DP — computed first because the
	// greedy beam shares sc.pb.
	greedy := sc.beam(g, 1)
	bound := sc.scratch.PeakOnly(g, greedy)

	p := sc.problemFor(g)
	n := len(p.ids)
	memo := map[uint64]dpEntry{0: {}}
	frontier := []uint64{0}
	full := uint64(1)<<n - 1
	for layer := 0; layer < n; layer++ {
		next := make(map[uint64]bool)
		for _, mask := range frontier {
			e := memo[mask]
			for v := 0; v < n; v++ {
				bit := uint64(1) << v
				if mask&bit != 0 || p.predMask[v]&mask != p.predMask[v] {
					continue
				}
				nm := mask | bit
				execMem := e.alive + p.size[v] + p.trans[v]
				peak := e.peak
				if execMem > peak {
					peak = execMem
				}
				if peak > bound {
					continue
				}
				alive := e.alive + p.size[v]
				// Free predecessors fully consumed by nm (and only those:
				// adding v can complete only its own predecessors).
				for _, u := range p.preds[v] {
					if p.sucMask[u] != 0 && p.sucMask[u]&nm == p.sucMask[u] {
						alive -= p.size[u]
					}
				}
				old, ok := memo[nm]
				if !ok || peak < old.peak || (peak == old.peak && alive < old.alive) {
					memo[nm] = dpEntry{peak: peak, alive: alive, prev: mask, last: int8(v)}
					next[nm] = true
				}
			}
		}
		frontier = frontier[:0]
		for m := range next {
			frontier = append(frontier, m)
		}
		sort.Slice(frontier, func(i, j int) bool { return frontier[i] < frontier[j] })
	}
	if _, ok := memo[full]; !ok {
		// Pruning removed every path (bound was already optimal): fall back.
		return greedy
	}
	order := make(Schedule, n)
	for mask := full; mask != 0; {
		e := memo[mask]
		order[popcount64(mask)-1] = p.ids[e.last]
		mask = e.prev
	}
	return order
}

// beamEntry is one scheduled-prefix state, living in a persistent slot.
type beamEntry struct {
	mask  []uint64
	rem   []int32 // unscheduled distinct-consumer count per node
	ready []int32 // unscheduled predecessor count per node
	order []int32
	alive int64
	peak  int64
}

func (b *beamEntry) has(v int) bool { return b.mask[v/64]&(1<<(v%64)) != 0 }

// freedIf returns bytes released when v executes on top of e: v's
// predecessors for which v is the last unscheduled consumer.
func (e *beamEntry) freedIf(p *problem, v int) int64 {
	var freed int64
	for _, u := range p.preds[v] {
		if p.hasCons[u] && e.rem[u] == 1 {
			freed += p.size[u]
		}
	}
	return freed
}

type beamCand struct {
	from  *beamEntry
	v     int
	peak  int64
	delta int64 // net alive change; lower is better
}

type beamCands []beamCand

func (c beamCands) Len() int      { return len(c) }
func (c beamCands) Swap(i, j int) { c[i], c[j] = c[j], c[i] }
func (c beamCands) Less(i, j int) bool {
	if c[i].peak != c[j].peak {
		return c[i].peak < c[j].peak
	}
	if c[i].delta != c[j].delta {
		return c[i].delta < c[j].delta
	}
	return c[i].v < c[j].v
}

// beam runs width-w beam search over the DP state space; w = 1 is the
// greedy list scheduler used for very large partitions. Beam states live
// in 2w persistent slots (parents in one half, children built in the
// other), so a whole run performs no per-step allocation.
func (sc *Scheduler) beam(g *graph.Graph, w int) Schedule {
	p := sc.problemFor(g)
	n := len(p.ids)
	words := (n + 63) / 64
	if cap(sc.slots) < 2*w {
		sc.slots = make([]beamEntry, 2*w)
	} else {
		sc.slots = sc.slots[:2*w]
	}
	for i := range sc.slots {
		e := &sc.slots[i]
		e.mask = ensureU64(e.mask, words)
		e.rem = ensureI32(e.rem, n)
		e.ready = ensureI32(e.ready, n)
		if cap(e.order) < n {
			e.order = make([]int32, 0, n)
		} else {
			e.order = e.order[:0]
		}
	}
	start := &sc.slots[0]
	for i := 0; i < words; i++ {
		start.mask[i] = 0
	}
	for v := 0; v < n; v++ {
		start.rem[v] = int32(len(p.sucs[v]))
		start.ready[v] = int32(len(p.preds[v]))
	}
	start.alive, start.peak = 0, 0
	start.order = start.order[:0]

	beam := append(sc.blist[:0], start)
	cands := sc.cands[:0]
	half := 0
	for step := 0; step < n; step++ {
		cands = cands[:0]
		for _, e := range beam {
			for v := 0; v < n; v++ {
				if e.has(v) || e.ready[v] != 0 {
					continue
				}
				peak := e.peak
				if m := e.alive + p.size[v] + p.trans[v]; m > peak {
					peak = m
				}
				cands = append(cands, beamCand{e, v, peak, p.size[v] - e.freedIf(p, v)})
			}
		}
		sort.Sort(beamCands(cands))
		if len(cands) > w {
			cands = cands[:w]
		}
		half = 1 - half
		next := sc.slots[half*w : half*w+len(cands)]
		beam = beam[:0]
		for k := range cands {
			c := &cands[k]
			e, ne := c.from, &next[k]
			copy(ne.mask, e.mask)
			copy(ne.rem, e.rem)
			copy(ne.ready, e.ready)
			ne.order = append(ne.order[:0], e.order...)
			ne.order = append(ne.order, int32(c.v))
			ne.alive = e.alive + c.delta
			ne.peak = c.peak
			ne.mask[c.v/64] |= 1 << (c.v % 64)
			for _, u := range p.preds[c.v] {
				ne.rem[u]--
			}
			for _, s := range p.sucs[c.v] {
				ne.ready[s]--
			}
			beam = append(beam, ne)
		}
	}
	sc.cands = cands[:0]
	best := beam[0]
	for _, e := range beam[1:] {
		if e.peak < best.peak {
			best = e
		}
	}
	order := make(Schedule, n)
	for i, v := range best.order {
		order[i] = p.ids[v]
	}
	sc.blist = beam[:0]
	return order
}

func popcount64(x uint64) int {
	n := 0
	for x != 0 {
		x &= x - 1
		n++
	}
	return n
}
