package sched

import (
	"sort"

	"magis/internal/graph"
)

// Scheduler finds memory-minimizing topological orders. Small sub-problems
// are solved exactly with the dynamic program over scheduled-sets used by
// Serenity (the paper's DpSchedule, Algorithm 2 line 11); medium ones fall
// back to beam search over the same state space; large ones to a greedy
// beam of width 1. The zero value is ready to use with sensible defaults.
type Scheduler struct {
	// MaxExact is the largest sub-problem solved with the exact DP.
	MaxExact int
	// BeamLimit is the largest sub-problem solved with beam search.
	BeamLimit int
	// BeamWidth is the beam width for medium sub-problems.
	BeamWidth int

	// scratch is reused across scheduling calls; a Scheduler is therefore
	// not safe for concurrent use (the search gives each worker its own).
	scratch Scratch
}

func (sc *Scheduler) maxExact() int {
	if sc.MaxExact > 0 {
		return sc.MaxExact
	}
	return 16
}

func (sc *Scheduler) beamLimit() int {
	if sc.BeamLimit > 0 {
		return sc.BeamLimit
	}
	return 400
}

func (sc *Scheduler) beamWidth() int {
	if sc.BeamWidth > 0 {
		return sc.BeamWidth
	}
	return 8
}

// DpSchedule returns a peak-memory-minimizing execution order for the
// standalone graph g (exact for small g, approximate beyond MaxExact).
func (sc *Scheduler) DpSchedule(g *graph.Graph) Schedule {
	n := g.Len()
	switch {
	case n == 0:
		return nil
	case n == 1:
		return Schedule{g.NodeIDs()[0]}
	case n <= sc.maxExact():
		return sc.exact(g)
	case n <= sc.beamLimit():
		return sc.beam(g, sc.beamWidth())
	default:
		return sc.beam(g, 1)
	}
}

// problem is the indexed form of a scheduling sub-problem.
type problem struct {
	ids      []graph.NodeID // index -> node, topo order
	preds    [][]int
	sucMask  []uint64 // consumers as bitmask (exact DP only, n <= 64)
	size     []int64
	trans    []int64
	hasCons  []bool
	predMask []uint64
}

func newProblem(g *graph.Graph) *problem {
	ids := g.Topo()
	idx := make(map[graph.NodeID]int, len(ids))
	for i, v := range ids {
		idx[v] = i
	}
	p := &problem{
		ids:      ids,
		preds:    make([][]int, len(ids)),
		size:     make([]int64, len(ids)),
		trans:    make([]int64, len(ids)),
		hasCons:  make([]bool, len(ids)),
		predMask: make([]uint64, len(ids)),
	}
	small := len(ids) <= 64
	if small {
		p.sucMask = make([]uint64, len(ids))
	}
	for i, v := range ids {
		node := g.Node(v)
		p.size[i] = OutDeviceBytes(node)
		p.trans[i] = ExecTransientBytes(node)
		for _, pr := range g.Pre(v) {
			j := idx[pr]
			p.preds[i] = append(p.preds[i], j)
			if small {
				p.predMask[i] |= 1 << j
				p.sucMask[j] |= 1 << i
			}
		}
		p.hasCons[i] = len(g.Suc(v)) > 0
	}
	return p
}

type dpEntry struct {
	peak  int64
	alive int64
	prev  uint64
	last  int8
}

// exact runs the exponential DP over subsets (n <= 64 by construction).
func (sc *Scheduler) exact(g *graph.Graph) Schedule {
	p := newProblem(g)
	n := len(p.ids)
	// Upper bound from greedy to prune the DP.
	bound := sc.scratch.PeakOnly(g, sc.beam(g, 1))

	memo := map[uint64]dpEntry{0: {}}
	frontier := []uint64{0}
	full := uint64(1)<<n - 1
	for layer := 0; layer < n; layer++ {
		next := make(map[uint64]bool)
		for _, mask := range frontier {
			e := memo[mask]
			for v := 0; v < n; v++ {
				bit := uint64(1) << v
				if mask&bit != 0 || p.predMask[v]&mask != p.predMask[v] {
					continue
				}
				nm := mask | bit
				execMem := e.alive + p.size[v] + p.trans[v]
				peak := e.peak
				if execMem > peak {
					peak = execMem
				}
				if peak > bound {
					continue
				}
				alive := e.alive + p.size[v]
				// Free predecessors fully consumed by nm (and only those:
				// adding v can complete only its own predecessors).
				for _, u := range p.preds[v] {
					if p.sucMask[u] != 0 && p.sucMask[u]&nm == p.sucMask[u] {
						alive -= p.size[u]
					}
				}
				old, ok := memo[nm]
				if !ok || peak < old.peak || (peak == old.peak && alive < old.alive) {
					memo[nm] = dpEntry{peak: peak, alive: alive, prev: mask, last: int8(v)}
					next[nm] = true
				}
			}
		}
		frontier = frontier[:0]
		for m := range next {
			frontier = append(frontier, m)
		}
		sort.Slice(frontier, func(i, j int) bool { return frontier[i] < frontier[j] })
	}
	if _, ok := memo[full]; !ok {
		// Pruning removed every path (bound was already optimal): fall back.
		return sc.beam(g, 1)
	}
	order := make(Schedule, n)
	for mask := full; mask != 0; {
		e := memo[mask]
		order[popcount64(mask)-1] = p.ids[e.last]
		mask = e.prev
	}
	return order
}

type beamEntry struct {
	mask  []uint64
	rem   []int32 // unscheduled distinct-consumer count per node
	ready []int32 // unscheduled predecessor count per node
	alive int64
	peak  int64
	order []int
}

func (b *beamEntry) has(v int) bool { return b.mask[v/64]&(1<<(v%64)) != 0 }

// freedIf returns bytes released when v executes on top of e: v's
// predecessors for which v is the last unscheduled consumer.
func (e *beamEntry) freedIf(p *problem, v int) int64 {
	var freed int64
	for _, u := range p.preds[v] {
		if p.hasCons[u] && e.rem[u] == 1 {
			freed += p.size[u]
		}
	}
	return freed
}

// beam runs width-w beam search over the DP state space; w = 1 is the
// greedy list scheduler used for very large partitions.
func (sc *Scheduler) beam(g *graph.Graph, w int) Schedule {
	p := newProblem(g)
	n := len(p.ids)
	words := (n + 63) / 64
	sucs := make([][]int, n) // distinct consumers per node index
	for v := 0; v < n; v++ {
		seen := make(map[int]bool, len(p.preds[v]))
		for _, u := range p.preds[v] {
			if !seen[u] {
				seen[u] = true
				sucs[u] = append(sucs[u], v)
			}
		}
	}
	start := &beamEntry{
		mask:  make([]uint64, words),
		rem:   make([]int32, n),
		ready: make([]int32, n),
	}
	for v := 0; v < n; v++ {
		start.rem[v] = int32(len(sucs[v]))
		seen := make(map[int]bool, len(p.preds[v]))
		for _, u := range p.preds[v] {
			if !seen[u] {
				seen[u] = true
				start.ready[v]++
			}
		}
	}
	beam := []*beamEntry{start}
	type cand struct {
		from  *beamEntry
		v     int
		peak  int64
		delta int64 // net alive change; lower is better
	}
	cands := make([]cand, 0, 64)
	for step := 0; step < n; step++ {
		cands = cands[:0]
		for _, e := range beam {
			for v := 0; v < n; v++ {
				if e.has(v) || e.ready[v] != 0 {
					continue
				}
				peak := e.peak
				if m := e.alive + p.size[v] + p.trans[v]; m > peak {
					peak = m
				}
				cands = append(cands, cand{e, v, peak, p.size[v] - e.freedIf(p, v)})
			}
		}
		sort.Slice(cands, func(i, j int) bool {
			if cands[i].peak != cands[j].peak {
				return cands[i].peak < cands[j].peak
			}
			if cands[i].delta != cands[j].delta {
				return cands[i].delta < cands[j].delta
			}
			return cands[i].v < cands[j].v
		})
		if len(cands) > w {
			cands = cands[:w]
		}
		next := make([]*beamEntry, 0, len(cands))
		for _, c := range cands {
			e := c.from
			ne := &beamEntry{
				mask:  append([]uint64(nil), e.mask...),
				rem:   append([]int32(nil), e.rem...),
				ready: append([]int32(nil), e.ready...),
				alive: e.alive + c.delta,
				peak:  c.peak,
				order: append(append([]int(nil), e.order...), c.v),
			}
			ne.mask[c.v/64] |= 1 << (c.v % 64)
			seen := make(map[int]bool, len(p.preds[c.v]))
			for _, u := range p.preds[c.v] {
				if !seen[u] {
					seen[u] = true
					ne.rem[u]--
				}
			}
			for _, s := range sucs[c.v] {
				ne.ready[s]--
			}
			next = append(next, ne)
		}
		beam = next
	}
	best := beam[0]
	for _, e := range beam[1:] {
		if e.peak < best.peak {
			best = e
		}
	}
	order := make(Schedule, n)
	for i, v := range best.order {
		order[i] = p.ids[v]
	}
	return order
}

func popcount64(x uint64) int {
	n := 0
	for x != 0 {
		x &= x - 1
		n++
	}
	return n
}
