// Package sched implements graph scheduling: execution orders, the memory
// lifetime simulation of §2.1 (peak memory and memory hot-spots), the
// Serenity-style dynamic-programming re-ordering used as DpSchedule, the
// narrow-waist graph partitioning of §6.1, and the incremental scheduling
// of Algorithm 2.
package sched

import (
	"fmt"

	"magis/internal/graph"
	"magis/internal/ops"
)

// Schedule is an execution order over a graph's nodes.
type Schedule []graph.NodeID

// Clone returns an independent copy.
func (s Schedule) Clone() Schedule { return append(Schedule(nil), s...) }

// Validate checks that s is a permutation of g's nodes respecting
// dependencies.
func (s Schedule) Validate(g *graph.Graph) error {
	if len(s) != g.Len() {
		return fmt.Errorf("sched: schedule has %d nodes, graph has %d", len(s), g.Len())
	}
	pos := make(map[graph.NodeID]int, len(s))
	for i, v := range s {
		if _, dup := pos[v]; dup {
			return fmt.Errorf("sched: node %d appears twice", v)
		}
		if !g.Has(v) {
			return fmt.Errorf("sched: node %d not in graph", v)
		}
		pos[v] = i
	}
	for _, v := range s {
		for _, p := range g.Pre(v) {
			if pos[p] > pos[v] {
				return fmt.Errorf("sched: node %d scheduled before producer %d", v, p)
			}
		}
	}
	return nil
}

// DeviceSizer lets special node payloads (e.g. collapsed fission regions)
// override memory accounting: OutDeviceBytes is the footprint of the
// node's output while alive, ExecTransientBytes is extra memory occupied
// only while the node executes.
type DeviceSizer interface {
	OutDeviceBytes() int64
	ExecTransientBytes() int64
}

// OutDeviceBytes returns the device bytes the node's output holds while
// alive. Store outputs live in host memory and cost nothing on device.
func OutDeviceBytes(n *graph.Node) int64 {
	if ds, ok := n.Op.(DeviceSizer); ok {
		return ds.OutDeviceBytes()
	}
	if ops.IsStore(n.Op.Kind()) {
		return 0
	}
	return n.OutBytes()
}

// ExecTransientBytes returns extra device bytes held only during the
// node's execution.
func ExecTransientBytes(n *graph.Node) int64 {
	if ds, ok := n.Op.(DeviceSizer); ok {
		return ds.ExecTransientBytes()
	}
	return 0
}

// MemProfile is the result of simulating a schedule's memory behaviour
// under the lifetime model of §2.1.
type MemProfile struct {
	// Peak is the peak memory usage M_peak in bytes.
	Peak int64
	// PerStep[i] is M_{i+1}: active memory during execution of step i.
	PerStep []int64
	// PeakStep is the first step at which Peak is reached.
	PeakStep int
	// Hotspots is H: all tensors active at some peak step.
	Hotspots graph.Set
}

// Simulate computes the memory profile of executing g in the given order.
func Simulate(g *graph.Graph, order Schedule) *MemProfile {
	n := len(order)
	pos := make(map[graph.NodeID]int, n)
	for i, v := range order {
		pos[v] = i
	}
	// free[i] lists nodes whose output can be freed after step i completes.
	freeAt := make([][]graph.NodeID, n)
	last := make([]int, n)
	for i, v := range order {
		f := i // if never consumed, freed at end (kept alive through i=own)
		for _, c := range g.Suc(v) {
			if p, ok := pos[c]; ok && p > f {
				f = p
			}
		}
		if len(g.Suc(v)) == 0 {
			f = n - 1 // graph outputs stay alive to the end
		}
		last[i] = f
		freeAt[f] = append(freeAt[f], v)
	}
	prof := &MemProfile{PerStep: make([]int64, n), PeakStep: -1}
	var cur int64
	for i, v := range order {
		node := g.Node(v)
		cur += OutDeviceBytes(node)
		m := cur + ExecTransientBytes(node)
		prof.PerStep[i] = m
		if m > prof.Peak {
			prof.Peak = m
			prof.PeakStep = i
		}
		for _, dead := range freeAt[i] {
			cur -= OutDeviceBytes(g.Node(dead))
		}
	}
	// Hotspots: tensors alive at any step attaining the peak.
	prof.Hotspots = make(graph.Set)
	for i := range order {
		if prof.PerStep[i] != prof.Peak {
			continue
		}
		for j := 0; j <= i; j++ {
			if last[j] >= i {
				prof.Hotspots[order[j]] = true
			}
		}
	}
	return prof
}

// PeakOnly computes only the peak memory of the order — the hot loop of
// the DP scheduler and search, kept allocation-light.
func PeakOnly(g *graph.Graph, order Schedule) int64 {
	n := len(order)
	pos := make(map[graph.NodeID]int, n)
	for i, v := range order {
		pos[v] = i
	}
	freeAt := make([][]graph.NodeID, n)
	for i, v := range order {
		f := i
		for _, c := range g.Suc(v) {
			if p, ok := pos[c]; ok && p > f {
				f = p
			}
		}
		if len(g.Suc(v)) == 0 {
			f = n - 1
		}
		freeAt[f] = append(freeAt[f], v)
	}
	var cur, peak int64
	for i, v := range order {
		node := g.Node(v)
		cur += OutDeviceBytes(node)
		if m := cur + ExecTransientBytes(node); m > peak {
			peak = m
		}
		for _, dead := range freeAt[i] {
			cur -= OutDeviceBytes(g.Node(dead))
		}
	}
	return peak
}
