// Package sched implements graph scheduling: execution orders, the memory
// lifetime simulation of §2.1 (peak memory and memory hot-spots), the
// Serenity-style dynamic-programming re-ordering used as DpSchedule, the
// narrow-waist graph partitioning of §6.1, and the incremental scheduling
// of Algorithm 2.
package sched

import (
	"fmt"

	"magis/internal/graph"
	"magis/internal/ops"
)

// Schedule is an execution order over a graph's nodes.
type Schedule []graph.NodeID

// Clone returns an independent copy.
func (s Schedule) Clone() Schedule { return append(Schedule(nil), s...) }

// Validate checks that s is a permutation of g's nodes respecting
// dependencies.
func (s Schedule) Validate(g *graph.Graph) error {
	if len(s) != g.Len() {
		return fmt.Errorf("sched: schedule has %d nodes, graph has %d", len(s), g.Len())
	}
	pos := make(map[graph.NodeID]int, len(s))
	for i, v := range s {
		if _, dup := pos[v]; dup {
			return fmt.Errorf("sched: node %d appears twice", v)
		}
		if !g.Has(v) {
			return fmt.Errorf("sched: node %d not in graph", v)
		}
		pos[v] = i
	}
	for _, v := range s {
		for _, p := range g.Pre(v) {
			if pos[p] > pos[v] {
				return fmt.Errorf("sched: node %d scheduled before producer %d", v, p)
			}
		}
	}
	return nil
}

// DeviceSizer lets special node payloads (e.g. collapsed fission regions)
// override memory accounting: OutDeviceBytes is the footprint of the
// node's output while alive, ExecTransientBytes is extra memory occupied
// only while the node executes.
type DeviceSizer interface {
	OutDeviceBytes() int64
	ExecTransientBytes() int64
}

// OutDeviceBytes returns the device bytes the node's output holds while
// alive. Store outputs live in host memory and cost nothing on device.
func OutDeviceBytes(n *graph.Node) int64 {
	if ds, ok := n.Op.(DeviceSizer); ok {
		return ds.OutDeviceBytes()
	}
	if ops.IsStore(n.Op.Kind()) {
		return 0
	}
	return n.OutBytes()
}

// ExecTransientBytes returns extra device bytes held only during the
// node's execution.
func ExecTransientBytes(n *graph.Node) int64 {
	if ds, ok := n.Op.(DeviceSizer); ok {
		return ds.ExecTransientBytes()
	}
	return 0
}

// MemProfile is the result of simulating a schedule's memory behaviour
// under the lifetime model of §2.1.
type MemProfile struct {
	// Peak is the peak memory usage M_peak in bytes.
	Peak int64
	// PerStep[i] is M_{i+1}: active memory during execution of step i.
	PerStep []int64
	// PeakStep is the first step at which Peak is reached.
	PeakStep int
	// Hotspots is H: all tensors active at some peak step.
	Hotspots graph.Set
}

// Scratch holds reusable lifetime-analysis buffers for Simulate and
// PeakOnly. The search simulates every surviving candidate, so
// per-evaluator scratch structs keep this hot path off the allocator. The
// zero value is ready to use; a Scratch must not be shared between
// goroutines.
type Scratch struct {
	pos    map[graph.NodeID]int
	freeAt [][]graph.NodeID
	last   []int
}

// lifetimes fills pos, freeAt, and last for (g, order): freeAt[i] lists
// nodes whose output can be freed after step i completes, last[i] is the
// step through which order[i]'s output stays alive.
func (sc *Scratch) lifetimes(g *graph.Graph, order Schedule) {
	n := len(order)
	if sc.pos == nil {
		sc.pos = make(map[graph.NodeID]int, n)
	} else {
		clear(sc.pos)
	}
	for i, v := range order {
		sc.pos[v] = i
	}
	if cap(sc.freeAt) < n {
		sc.freeAt = make([][]graph.NodeID, n)
	} else {
		sc.freeAt = sc.freeAt[:n]
	}
	for i := range sc.freeAt {
		sc.freeAt[i] = sc.freeAt[i][:0]
	}
	if cap(sc.last) < n {
		sc.last = make([]int, n)
	} else {
		sc.last = sc.last[:n]
	}
	for i, v := range order {
		f := i // if never consumed, freed at end (kept alive through i=own)
		g.EachSucEdge(v, func(c graph.NodeID) {
			if p, ok := sc.pos[c]; ok && p > f {
				f = p
			}
		})
		if g.SucEdges(v) == 0 {
			f = n - 1 // graph outputs stay alive to the end
		}
		sc.last[i] = f
		sc.freeAt[f] = append(sc.freeAt[f], v)
	}
}

// Simulate computes the memory profile of executing g in the given order.
func Simulate(g *graph.Graph, order Schedule) *MemProfile {
	return (&Scratch{}).Simulate(g, order)
}

// Simulate is the package-level Simulate with reused work buffers. The
// returned profile owns fresh PerStep and Hotspots storage and stays valid
// after the scratch is reused.
func (sc *Scratch) Simulate(g *graph.Graph, order Schedule) *MemProfile {
	sc.lifetimes(g, order)
	prof := &MemProfile{PerStep: make([]int64, len(order)), PeakStep: -1}
	var cur int64
	for i, v := range order {
		node := g.Node(v)
		cur += OutDeviceBytes(node)
		m := cur + ExecTransientBytes(node)
		prof.PerStep[i] = m
		if m > prof.Peak {
			prof.Peak = m
			prof.PeakStep = i
		}
		for _, dead := range sc.freeAt[i] {
			cur -= OutDeviceBytes(g.Node(dead))
		}
	}
	// Hotspots: tensors alive at any step attaining the peak.
	prof.Hotspots = make(graph.Set)
	for i := range order {
		if prof.PerStep[i] != prof.Peak {
			continue
		}
		for j := 0; j <= i; j++ {
			if sc.last[j] >= i {
				prof.Hotspots[order[j]] = true
			}
		}
	}
	return prof
}

// PeakOnly computes only the peak memory of the order — the hot loop of
// the DP scheduler and search, kept allocation-light.
func PeakOnly(g *graph.Graph, order Schedule) int64 {
	return (&Scratch{}).PeakOnly(g, order)
}

// PeakOnly is the package-level PeakOnly with reused work buffers.
func (sc *Scratch) PeakOnly(g *graph.Graph, order Schedule) int64 {
	sc.lifetimes(g, order)
	var cur, peak int64
	for i, v := range order {
		node := g.Node(v)
		cur += OutDeviceBytes(node)
		if m := cur + ExecTransientBytes(node); m > peak {
			peak = m
		}
		for _, dead := range sc.freeAt[i] {
			cur -= OutDeviceBytes(g.Node(dead))
		}
	}
	return peak
}
