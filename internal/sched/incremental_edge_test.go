package sched

import (
	"math/rand"
	"testing"

	"magis/internal/graph"
)

// Edge cases of the incremental reschedule splice (Algorithm 2): mutation
// sites at the extreme schedule positions, where the interval logic has no
// slack on one side, plus a randomized property sweep. These complement
// the mid-schedule cases in sched_test.go.

// dupConsumer rematerializes v into a clone of g and rewires its first
// consumer, returning the new graph and the old-graph mutation hint.
func dupConsumer(g *graph.Graph, v graph.NodeID) (*graph.Graph, []graph.NodeID) {
	gNew := g.Clone()
	n := gNew.Node(v)
	suc := gNew.Suc(v)
	if len(suc) == 0 {
		return nil, nil
	}
	dup := gNew.Add(n.Op, n.Ins...)
	gNew.ReplaceInput(suc[0], v, dup)
	return gNew, []graph.NodeID{v, suc[0]}
}

// chainN builds a linear chain of n compute nodes after one input leaf.
func chainN(n int) (*graph.Graph, []graph.NodeID) {
	g := graph.New()
	prev := g.Add(leaf(4))
	ids := []graph.NodeID{prev}
	for i := 0; i < n; i++ {
		prev = g.Add(sized("C", 4), prev)
		ids = append(ids, prev)
	}
	return g, ids
}

// TestIncrementalMutationAtScheduleStart mutates the node at schedule
// position 0: the interval around the site has no predecessor context and
// must clamp at the front rather than index off the schedule.
func TestIncrementalMutationAtScheduleStart(t *testing.T) {
	g, _ := chainN(60)
	sc := &Scheduler{}
	psi := sc.ScheduleGraph(g)
	first := psi[0]
	gNew, hint := dupConsumer(g, first)
	if gNew == nil {
		t.Fatalf("schedule head %d has no consumer to rewire", first)
	}
	out, n := sc.IncrementalR(g, gNew, hint, psi, nil)
	if err := out.Validate(gNew); err != nil {
		t.Fatalf("invalid schedule after head mutation: %v", err)
	}
	if n == 0 {
		t.Fatal("head mutation rescheduled nothing")
	}
	if n >= gNew.Len() {
		t.Errorf("head mutation degenerated to a full reschedule (%d of %d)", n, gNew.Len())
	}
}

// TestIncrementalMutationAtScheduleEnd mutates the node at the last
// schedule position: the interval must clamp at the back, and the
// rematerialized tail node lands after everything it depends on.
func TestIncrementalMutationAtScheduleEnd(t *testing.T) {
	// A chain whose last scheduled node still has a consumer to rewire:
	// fork the tail so the penultimate node feeds two sinks.
	g, ids := chainN(60)
	tail := ids[len(ids)-1]
	g.Add(sized("Sink", 4), tail)
	g.Add(sized("Sink", 4), tail)
	sc := &Scheduler{}
	psi := sc.ScheduleGraph(g)
	last := psi[len(psi)-1]
	target := last
	if len(g.Suc(last)) == 0 {
		target = g.Node(last).Ins[0] // last is a sink: mutate its producer instead
	}
	gNew, hint := dupConsumer(g, target)
	if gNew == nil {
		t.Fatalf("tail target %d has no consumer to rewire", target)
	}
	out, n := sc.IncrementalR(g, gNew, hint, psi, nil)
	if err := out.Validate(gNew); err != nil {
		t.Fatalf("invalid schedule after tail mutation: %v", err)
	}
	if n == 0 {
		t.Fatal("tail mutation rescheduled nothing")
	}
}

// TestIncrementalREmptyMutation pins the documented contract for an empty
// hint on the R variant directly: no sites means a full reschedule, with
// or without a caller-provided reach index.
func TestIncrementalREmptyMutation(t *testing.T) {
	r := rand.New(rand.NewSource(17))
	g := randomDAG(r, 40)
	sc := &Scheduler{}
	psi := sc.ScheduleGraph(g)
	for _, reach := range []*graph.ReachIndex{nil, graph.NewReachIndex(g)} {
		out, n := sc.IncrementalR(g, g, nil, psi, reach)
		if err := out.Validate(g); err != nil {
			t.Fatal(err)
		}
		if n != g.Len() {
			t.Errorf("empty hint should fully reschedule, got %d of %d", n, g.Len())
		}
	}
}

// TestIncrementalRPropertyValidWithinWindow is the randomized property:
// for arbitrary DAGs and remat-style mutations, IncrementalR always
// returns a valid schedule whose peak is within a constant window of a
// full ScheduleGraph reschedule (the paper's locality claim: splicing
// trades bounded peak slack for not rescheduling the whole program).
func TestIncrementalRPropertyValidWithinWindow(t *testing.T) {
	const window = 2.0
	trials := 120
	if testing.Short() {
		trials = 30
	}
	sc := &Scheduler{}
	for trial := 0; trial < trials; trial++ {
		r := rand.New(rand.NewSource(int64(3000 + trial)))
		g := randomDAG(r, 20+r.Intn(80))
		psi := sc.ScheduleGraph(g)
		if err := psi.Validate(g); err != nil {
			t.Fatalf("trial %d: base schedule invalid: %v", trial, err)
		}
		// Random remat site; positions are drawn across the whole schedule
		// so the sweep also hits the boundary cases above.
		var gNew *graph.Graph
		var hint []graph.NodeID
		for _, i := range r.Perm(len(psi)) {
			if gNew, hint = dupConsumer(g, psi[i]); gNew != nil {
				break
			}
		}
		if gNew == nil {
			continue
		}
		reach := graph.NewReachIndex(g)
		out, n := sc.IncrementalR(g, gNew, hint, psi, reach)
		if err := out.Validate(gNew); err != nil {
			t.Fatalf("trial %d: invalid incremental schedule: %v", trial, err)
		}
		if n == 0 {
			t.Fatalf("trial %d: rescheduled nothing for a real mutation", trial)
		}
		incPeak := PeakOnly(gNew, out)
		fullPeak := PeakOnly(gNew, sc.ScheduleGraph(gNew))
		if float64(incPeak) > window*float64(fullPeak) {
			t.Fatalf("trial %d: incremental peak %d exceeds %.1fx full peak %d",
				trial, incPeak, window, fullPeak)
		}
	}
}
