package sched

import "magis/internal/graph"

// Incremental implements Algorithm 2: derive a schedule for gNew from the
// previous schedule psiOld of gOld, rescheduling only intervals around the
// mutated sub-graph. oldMutated lists the gOld nodes touched by the
// transformation (removed nodes included; new nodes need not be listed —
// they are picked up as members of gNew outside the kept regions).
//
// Transformations like Swap touch a producer and a far-away consumer; a
// single contiguous interval spanning both would reschedule most of the
// program. Mutation sites further apart than a narrow-waist-sized gap are
// therefore rescheduled as separate local intervals, with newly created
// operators assigned to the interval their neighbours live in.
//
// It returns the new schedule and the number of rescheduled operators.
// When the splice cannot produce a valid order, it falls back to full
// scheduling of gNew.
func (sc *Scheduler) Incremental(gOld, gNew *graph.Graph, oldMutated []graph.NodeID, psiOld Schedule) (Schedule, int) {
	return sc.IncrementalR(gOld, gNew, oldMutated, psiOld, nil)
}

// clusterGap is the schedule distance beyond which mutation sites are
// rescheduled as independent intervals.
const clusterGap = 48

// IncrementalR is Incremental with a caller-provided (cacheable)
// reachability index over gOld; pass nil to compute one. Expanding one
// M-State evaluates dozens of candidates against the same parent graph,
// so callers that cache the index avoid the dominant O(V^2) term.
//
// The splice is best-effort by contract (it already falls back to full
// scheduling on an invalid order); a panic while splicing — a transformed
// graph whose shape the interval logic never anticipated — degrades the
// same way instead of killing the caller's search. A panic in the full
// scheduler itself still propagates: there is nothing left to fall back
// to, and the optimizer's per-candidate guard owns that failure.
func (sc *Scheduler) IncrementalR(gOld, gNew *graph.Graph, oldMutated []graph.NodeID, psiOld Schedule, reach *graph.ReachIndex) (psi Schedule, n int) {
	defer func() {
		if r := recover(); r != nil {
			full := sc.ScheduleGraph(gNew)
			psi, n = full, len(full)
		}
	}()
	mutated := graph.NewSet(oldMutated...)
	var sites []int
	for i, v := range psiOld {
		if mutated[v] {
			sites = append(sites, i)
		}
	}
	if len(sites) == 0 {
		full := sc.ScheduleGraph(gNew)
		return full, len(full)
	}
	if reach == nil {
		reach = graph.NewReachIndex(gOld)
	}

	// Cluster sites and extend each cluster to narrow waists.
	type interval struct{ beg, end int }
	var ivs []interval
	cur := interval{beg: sites[0], end: sites[0] + 1}
	for _, s := range sites[1:] {
		if s-cur.end > clusterGap {
			ivs = append(ivs, cur)
			cur = interval{beg: s, end: s + 1}
		} else {
			cur.end = s + 1
		}
	}
	ivs = append(ivs, cur)
	for i := range ivs {
		ivs[i].beg = extendBound(psiOld, reach, ivs[i].beg, -1)
		ivs[i].end = extendBound(psiOld, reach, ivs[i].end-1, +1)
	}
	// Merge overlaps after extension.
	merged := ivs[:1]
	for _, iv := range ivs[1:] {
		last := &merged[len(merged)-1]
		if iv.beg <= last.end {
			if iv.end > last.end {
				last.end = iv.end
			}
		} else {
			merged = append(merged, iv)
		}
	}

	inInterval := func(pos int) int {
		for i, iv := range merged {
			if pos >= iv.beg && pos < iv.end {
				return i
			}
		}
		return -1
	}
	// Partition old positions into kept runs and per-interval member sets.
	members := make([]graph.Set, len(merged))
	for i := range members {
		members[i] = make(graph.Set)
	}
	oldPos := make(map[graph.NodeID]int, len(psiOld))
	for i, v := range psiOld {
		oldPos[v] = i
		if !gNew.Has(v) {
			continue
		}
		if k := inInterval(i); k >= 0 {
			members[k][v] = true
		}
	}
	// Assign new nodes (absent from psiOld) to the interval holding one of
	// their neighbours, defaulting to the last interval.
	for _, v := range gNew.NodeIDs() {
		if _, old := oldPos[v]; old {
			continue
		}
		k := len(merged) - 1
		assign := func(u graph.NodeID) bool {
			if p, ok := oldPos[u]; ok {
				if i := inInterval(p); i >= 0 {
					k = i
					return true
				}
			}
			return false
		}
		done := false
		for _, u := range gNew.Pre(v) {
			if assign(u) {
				done = true
				break
			}
		}
		if !done {
			for _, u := range gNew.Suc(v) {
				if assign(u) {
					break
				}
			}
		}
		members[k][v] = true
	}

	// Schedule each interval's member set and splice.
	out := make(Schedule, 0, gNew.Len())
	rescheduled := 0
	prevEnd := 0
	for k, iv := range merged {
		for _, v := range psiOld[prevEnd:iv.beg] {
			if gNew.Has(v) {
				out = append(out, v)
			}
		}
		for _, seg := range GraphPartition(gNew, members[k]) {
			mid := sc.DpSchedule(gNew.Subgraph(seg))
			out = append(out, mid...)
			rescheduled += len(mid)
		}
		prevEnd = iv.end
	}
	for _, v := range psiOld[prevEnd:] {
		if gNew.Has(v) {
			out = append(out, v)
		}
	}
	if err := out.Validate(gNew); err != nil {
		full := sc.ScheduleGraph(gNew)
		return full, len(full)
	}
	return out, rescheduled
}

// extendBound walks the old schedule away from the mutated interval until
// it finds a suitably narrow waist, limiting both walk length and waist
// width with the paper's empirical constants (Algorithm 2 lines 2-6).
func extendBound(psi Schedule, reach *graph.ReachIndex, i, d int) int {
	wHat := int(^uint(0) >> 1) // +inf
	l := 0
	for i >= 0 && i < len(psi) {
		nw := reach.NW(psi[i])
		if !(l < 20 && (wHat > 10 || nw < 4) && nw < wHat) {
			break
		}
		wHat = nw
		i += d
		l++
	}
	if i < 0 {
		return 0
	}
	if i > len(psi) {
		return len(psi)
	}
	return i
}
