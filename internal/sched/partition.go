package sched

import (
	"sort"

	"magis/internal/graph"
)

// GraphPartition splits the node set w of g into segments that can be
// scheduled independently and concatenated (§6.1): within each weakly
// connected component of G[w], nodes whose narrow-waist value is at most 1
// act as dividing points — everything not descending from a divider is
// sequenced before it, everything descending after. Returned segments are
// topologically ordered.
func GraphPartition(g *graph.Graph, w graph.Set) []graph.Set {
	var segs []graph.Set
	for _, comp := range g.Components(w) {
		compSet := graph.NewSet(comp...)
		sub := g.Subgraph(compSet)
		reach := graph.NewReachIndex(sub)
		var dividers []graph.NodeID
		for _, v := range comp {
			if reach.NW(v) <= 1 {
				dividers = append(dividers, v)
			}
		}
		sort.Slice(dividers, func(i, j int) bool {
			ai, aj := reach.NumAnc(dividers[i]), reach.NumAnc(dividers[j])
			if ai != aj {
				return ai < aj
			}
			return dividers[i] < dividers[j]
		})
		remaining := compSet.Clone()
		for _, d := range dividers {
			if !remaining[d] {
				continue
			}
			seg := make(graph.Set)
			for v := range remaining {
				if !reach.IsDes(d, v) {
					seg[v] = true
				}
			}
			if len(seg) == 0 || len(seg) == len(remaining) {
				continue
			}
			segs = append(segs, seg)
			next := make(graph.Set)
			for v := range remaining {
				if reach.IsDes(d, v) {
					next[v] = true
				}
			}
			remaining = next
		}
		if len(remaining) > 0 {
			segs = append(segs, remaining)
		}
	}
	return segs
}

// ScheduleGraph computes a full memory-minimizing schedule for g:
// partition at narrow waists, DpSchedule each segment, concatenate.
func (sc *Scheduler) ScheduleGraph(g *graph.Graph) Schedule {
	all := graph.NewSet(g.NodeIDs()...)
	var out Schedule
	for _, seg := range GraphPartition(g, all) {
		sub := g.Subgraph(seg)
		out = append(out, sc.DpSchedule(sub)...)
	}
	// Segments from different components may interleave arbitrarily; the
	// concatenation above is already a valid topological order within each
	// component, but cross-component producer/consumer links cannot exist.
	// A final validity check guards the divider logic.
	if err := out.Validate(g); err != nil {
		return g.Topo()
	}
	return out
}
