package sched

import (
	"math/rand"
	"testing"

	"magis/internal/graph"
	"magis/internal/ops"
	"magis/internal/tensor"
)

// sized returns an op whose output occupies 4*n bytes.
func sized(kind string, n int) graph.Op {
	return ops.NewEltwise(kind, tensor.S(n), tensor.F32, 1)
}

func leaf(n int) graph.Op { return ops.NewInput(tensor.S(n), tensor.F32) }

func TestSimulateChain(t *testing.T) {
	// in(10) -> a(20) -> b(5): peak while executing b = 20+5 (in freed
	// after a executes... in is consumed by a only, freed after a).
	g := graph.New()
	in := g.Add(leaf(10))
	a := g.Add(sized("A", 20), in)
	b := g.Add(sized("B", 5), a)
	prof := Simulate(g, Schedule{in, a, b})
	if got := prof.PerStep[1]; got != 4*(10+20) {
		t.Errorf("step a mem = %d, want %d", got, 4*30)
	}
	if got := prof.PerStep[2]; got != 4*(20+5) {
		t.Errorf("step b mem = %d, want %d", got, 4*25)
	}
	if prof.Peak != 4*30 {
		t.Errorf("peak = %d", prof.Peak)
	}
}

func TestSimulateSkipConnection(t *testing.T) {
	// in feeds both a and the final add: it stays alive across the chain.
	g := graph.New()
	in := g.Add(leaf(10))
	a := g.Add(sized("A", 10), in)
	b := g.Add(sized("B", 10), a)
	add := g.Add(ops.NewAdd(tensor.S(10), tensor.S(10), tensor.F32), b, in)
	prof := Simulate(g, Schedule{in, a, b, add})
	// During add: in, b alive plus add's own output (a freed after b).
	if got := prof.PerStep[3]; got != 4*30 {
		t.Errorf("add step mem = %d, want %d", got, 4*30)
	}
	if !prof.Hotspots[in] {
		t.Error("skip input should be a hot-spot")
	}
}

func TestSimulateStoreZeroBytes(t *testing.T) {
	g := graph.New()
	in := g.Add(leaf(100))
	st := g.Add(ops.NewStore(tensor.S(100), tensor.F32), in)
	prof := Simulate(g, Schedule{in, st})
	// Store's output is host-resident: only the input's 400 bytes count.
	if prof.Peak != 400 {
		t.Errorf("peak = %d, want 400", prof.Peak)
	}
}

func TestValidate(t *testing.T) {
	g := graph.New()
	in := g.Add(leaf(1))
	a := g.Add(sized("A", 1), in)
	if err := (Schedule{in, a}).Validate(g); err != nil {
		t.Errorf("valid schedule rejected: %v", err)
	}
	if err := (Schedule{a, in}).Validate(g); err == nil {
		t.Error("dependency violation accepted")
	}
	if err := (Schedule{in}).Validate(g); err == nil {
		t.Error("short schedule accepted")
	}
	if err := (Schedule{in, in}).Validate(g); err == nil {
		t.Error("duplicate accepted")
	}
}

// bruteMinPeak enumerates every topological order (small graphs only).
func bruteMinPeak(g *graph.Graph) int64 {
	ids := g.NodeIDs()
	n := len(ids)
	best := int64(1) << 62
	var rec func(order Schedule, used graph.Set)
	rec = func(order Schedule, used graph.Set) {
		if len(order) == n {
			if p := PeakOnly(g, order); p < best {
				best = p
			}
			return
		}
		for _, v := range ids {
			if used[v] {
				continue
			}
			ok := true
			for _, p := range g.Pre(v) {
				if !used[p] {
					ok = false
					break
				}
			}
			if !ok {
				continue
			}
			used[v] = true
			rec(append(order, v), used)
			delete(used, v)
		}
	}
	rec(Schedule{}, graph.Set{})
	return best
}

// randomDAG builds a random layered DAG with random tensor sizes.
func randomDAG(r *rand.Rand, n int) *graph.Graph {
	g := graph.New()
	var ids []graph.NodeID
	for i := 0; i < n; i++ {
		size := 1 + r.Intn(50)
		if len(ids) == 0 || r.Intn(4) == 0 {
			ids = append(ids, g.Add(leaf(size)))
			continue
		}
		k := 1 + r.Intn(2)
		var ins []graph.NodeID
		for j := 0; j < k; j++ {
			ins = append(ins, ids[r.Intn(len(ids))])
		}
		ids = append(ids, g.Add(sized("Op", size), ins...))
	}
	return g
}

func TestExactDPOptimal(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	sc := &Scheduler{MaxExact: 10}
	for trial := 0; trial < 30; trial++ {
		g := randomDAG(r, 4+r.Intn(5))
		got := sc.DpSchedule(g)
		if err := got.Validate(g); err != nil {
			t.Fatalf("trial %d: invalid schedule: %v", trial, err)
		}
		want := bruteMinPeak(g)
		if p := PeakOnly(g, got); p != want {
			t.Errorf("trial %d: DP peak %d != optimal %d", trial, p, want)
		}
	}
}

func TestDPBeatsNaiveOrder(t *testing.T) {
	// Two branches off one input: a heavy branch and a light branch that
	// must be interleaved carefully. DP should not exceed the default
	// topo-order peak.
	g := graph.New()
	in := g.Add(leaf(10))
	var outs []graph.NodeID
	for i := 0; i < 4; i++ {
		h := g.Add(sized("H", 100), in)
		s := g.Add(sized("S", 1), h)
		outs = append(outs, s)
	}
	var acc graph.NodeID = outs[0]
	for _, o := range outs[1:] {
		acc = g.Add(ops.NewAdd(tensor.S(1), tensor.S(1), tensor.F32), acc, o)
	}
	sc := &Scheduler{}
	dp := sc.DpSchedule(g)
	if err := dp.Validate(g); err != nil {
		t.Fatal(err)
	}
	if pd, pt := PeakOnly(g, dp), PeakOnly(g, g.Topo()); pd > pt {
		t.Errorf("DP peak %d worse than topo %d", pd, pt)
	}
}

func TestBeamValidOnLargerGraphs(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	sc := &Scheduler{MaxExact: 8, BeamLimit: 100, BeamWidth: 8}
	for trial := 0; trial < 5; trial++ {
		g := randomDAG(r, 60)
		got := sc.DpSchedule(g)
		if err := got.Validate(g); err != nil {
			t.Fatalf("beam produced invalid schedule: %v", err)
		}
	}
}

func TestGraphPartitionChain(t *testing.T) {
	// A pure chain: every node has nw = 0, so partitioning produces many
	// small segments whose concatenation is the chain itself.
	g := graph.New()
	prev := g.Add(leaf(1))
	all := []graph.NodeID{prev}
	for i := 0; i < 10; i++ {
		prev = g.Add(sized("C", 1), prev)
		all = append(all, prev)
	}
	segs := GraphPartition(g, graph.NewSet(all...))
	if len(segs) < 2 {
		t.Fatalf("chain should partition, got %d segments", len(segs))
	}
	total := 0
	for _, s := range segs {
		total += len(s)
	}
	if total != len(all) {
		t.Errorf("segments cover %d of %d nodes", total, len(all))
	}
	sc := &Scheduler{}
	if err := sc.ScheduleGraph(g).Validate(g); err != nil {
		t.Error(err)
	}
}

func TestScheduleGraphValidRandom(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	sc := &Scheduler{}
	for trial := 0; trial < 10; trial++ {
		g := randomDAG(r, 80)
		s := sc.ScheduleGraph(g)
		if err := s.Validate(g); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
	}
}

func TestIncrementalAfterMutation(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	sc := &Scheduler{}
	g := randomDAG(r, 60)
	psi := sc.ScheduleGraph(g)
	if err := psi.Validate(g); err != nil {
		t.Fatal(err)
	}
	// Mutate: pick a non-leaf node with a consumer and re-materialize it.
	var target graph.NodeID = graph.Invalid
	for _, v := range g.NodeIDs() {
		if len(g.Pre(v)) > 0 && g.NumConsumers(v) >= 2 {
			target = v
			break
		}
	}
	if target == graph.Invalid {
		t.Skip("no rematerializable node in random graph")
	}
	gNew := g.Clone()
	n := gNew.Node(target)
	dup := gNew.Add(n.Op, n.Ins...)
	consumer := gNew.Suc(target)[0]
	gNew.ReplaceInput(consumer, target, dup)

	psiNew, rescheduled := sc.Incremental(g, gNew, []graph.NodeID{target, consumer}, psi)
	if err := psiNew.Validate(gNew); err != nil {
		t.Fatalf("incremental schedule invalid: %v", err)
	}
	if rescheduled >= gNew.Len() {
		t.Errorf("incremental rescheduled everything (%d of %d)", rescheduled, gNew.Len())
	}
}

func TestIncrementalFallbackOnEmptyMutation(t *testing.T) {
	r := rand.New(rand.NewSource(9))
	sc := &Scheduler{}
	g := randomDAG(r, 20)
	psi := sc.ScheduleGraph(g)
	out, n := sc.Incremental(g, g, nil, psi)
	if err := out.Validate(g); err != nil {
		t.Fatal(err)
	}
	if n != g.Len() {
		t.Errorf("empty mutation should fully reschedule, got %d", n)
	}
}

func TestPeakOnlyMatchesSimulate(t *testing.T) {
	r := rand.New(rand.NewSource(13))
	for trial := 0; trial < 20; trial++ {
		g := randomDAG(r, 30)
		s := g.Topo()
		if PeakOnly(g, s) != Simulate(g, s).Peak {
			t.Fatalf("trial %d: PeakOnly disagrees with Simulate", trial)
		}
	}
}

func TestIncrementalMultiIntervalClusters(t *testing.T) {
	// Two mutation sites far apart in a long chain must be rescheduled as
	// separate local intervals, not one giant span.
	g := graph.New()
	prev := g.Add(leaf(4))
	var chain []graph.NodeID
	for i := 0; i < 200; i++ {
		prev = g.Add(sized("C", 4), prev)
		chain = append(chain, prev)
	}
	sc := &Scheduler{}
	psi := sc.ScheduleGraph(g)
	// Mutate near both ends: duplicate two distant nodes' consumers.
	gNew := g.Clone()
	early, late := chain[10], chain[180]
	dupE := gNew.Add(gNew.Node(early).Op, gNew.Node(early).Ins...)
	gNew.ReplaceInput(chain[11], early, dupE)
	dupL := gNew.Add(gNew.Node(late).Op, gNew.Node(late).Ins...)
	gNew.ReplaceInput(chain[181], late, dupL)

	out, n := sc.Incremental(g, gNew, []graph.NodeID{early, chain[11], late, chain[181]}, psi)
	if err := out.Validate(gNew); err != nil {
		t.Fatal(err)
	}
	if n > gNew.Len()/2 {
		t.Errorf("rescheduled %d of %d ops: clusters not localized", n, gNew.Len())
	}
}

func TestSelfCostedPayloadSkipsDP(t *testing.T) {
	// DeviceSizer payloads flow through memory simulation.
	g := graph.New()
	in := g.Add(leaf(10))
	r := g.Add(regionStub{out: 400, trans: 800}, in)
	prof := Simulate(g, Schedule{in, r})
	if prof.PerStep[1] != 40+400+800 {
		t.Errorf("region accounting wrong: %d", prof.PerStep[1])
	}
	if prof.Peak != 1240 {
		t.Errorf("peak = %d", prof.Peak)
	}
}

// regionStub is a minimal DeviceSizer payload for accounting tests.
type regionStub struct {
	out, trans int64
}

func (r regionStub) Kind() string              { return "stub" }
func (r regionStub) OutShape() tensor.Shape    { return tensor.S() }
func (r regionStub) DType() tensor.DType       { return tensor.F32 }
func (r regionStub) AttrKey() string           { return "" }
func (r regionStub) OutDeviceBytes() int64     { return r.out }
func (r regionStub) ExecTransientBytes() int64 { return r.trans }
