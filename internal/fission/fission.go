// Package fission implements Fission Transformation (§4.2): splitting a
// convex, weakly connected sub-graph S along a graph-level dimension into
// n sequentially executed parts. Inputs with a dimension in the chosen
// D-graph are sliced per part, other inputs are shared; outputs with a
// split dimension are merged by Concat, outputs chosen on a reduce axis by
// Add (partial-sum accumulation).
package fission

import (
	"fmt"
	"sort"

	"magis/internal/dgraph"
	"magis/internal/graph"
	"magis/internal/ops"
	"magis/internal/tensor"
)

// Trans is one fission transformation f = (S, D, n). Choice is the
// resolved per-node axis assignment within the component (the concrete
// sub-D-graph D of the paper).
type Trans struct {
	S      graph.Set
	Choice dgraph.Choice
	N      int
}

// Resolve builds a Trans for sub-graph s of g along component comp,
// checking the paper's three constraints: weak connectivity, convexity,
// and exact axis coverage. n may be 1 (a disabled candidate in the F-Tree).
func Resolve(g *graph.Graph, d *dgraph.DGraph, comp dgraph.Component, s graph.Set, n int) (*Trans, error) {
	if len(s) == 0 {
		return nil, fmt.Errorf("fission: empty sub-graph")
	}
	if !g.IsWeaklyConnected(s) {
		return nil, fmt.Errorf("fission: sub-graph not weakly connected")
	}
	if !g.IsConvex(s) {
		return nil, fmt.Errorf("fission: sub-graph not convex")
	}
	choice, ok := dgraph.ChoiceFor(d, g, comp, s)
	if !ok {
		return nil, fmt.Errorf("fission: no consistent axis assignment")
	}
	t := &Trans{S: s, Choice: choice, N: n}
	if n > 1 && !t.DivisibleBy(g, n) {
		return nil, fmt.Errorf("fission: axes not divisible by %d", n)
	}
	return t, nil
}

// ValidateOn re-checks the transformation against the CURRENT graph:
// members exist, S is weakly connected and convex, every chosen axis still
// exists, and every internal edge is still covered by a dimension link
// from the producer's chosen axis to the consumer's. Graph rewrites made
// after Resolve can silently invalidate a dormant candidate; callers must
// re-validate before enabling or materializing it.
func (t *Trans) ValidateOn(g *graph.Graph) error {
	for v := range t.S {
		if !g.Has(v) {
			return fmt.Errorf("fission: member %d no longer exists", v)
		}
	}
	for v, axis := range t.Choice {
		if !g.Has(v) {
			return fmt.Errorf("fission: choice node %d no longer exists", v)
		}
		spec, ok := g.Node(v).Op.(*ops.Spec)
		if !ok || !spec.HasAxis(axis) {
			return fmt.Errorf("fission: node %d lost axis %d", v, axis)
		}
	}
	if !g.IsWeaklyConnected(t.S) {
		return fmt.Errorf("fission: sub-graph no longer weakly connected")
	}
	if !g.IsConvex(t.S) {
		return fmt.Errorf("fission: sub-graph no longer convex")
	}
	for v := range t.S {
		node := g.Node(v)
		spec := node.Op.(*ops.Spec)
		for idx, u := range node.Ins {
			if !t.S[u] {
				continue
			}
			covered := false
			for _, lk := range spec.DimLinks(idx) {
				if lk.In == t.Choice[u] && lk.Out == t.Choice[v] {
					covered = true
					break
				}
			}
			if !covered {
				return fmt.Errorf("fission: edge %d->%d no longer covered by dimension %d->%d",
					u, v, t.Choice[u], t.Choice[v])
			}
		}
	}
	return nil
}

// axisLen returns the extent of the chosen axis of v.
func axisLen(g *graph.Graph, v graph.NodeID, axis int) int {
	spec := g.Node(v).Op.(*ops.Spec)
	return spec.AxisLen(axis)
}

// MaxParts returns the GCD of all chosen axis extents: every legal fission
// number divides it.
func (t *Trans) MaxParts(g *graph.Graph) int {
	gcd := 0
	for v, axis := range t.Choice {
		gcd = gcdInt(gcd, axisLen(g, v, axis))
	}
	return gcd
}

// DivisibleBy reports whether every chosen axis extent is divisible by n.
func (t *Trans) DivisibleBy(g *graph.Graph, n int) bool {
	m := t.MaxParts(g)
	return m > 0 && m%n == 0
}

// NextParts returns the smallest legal fission number greater than n, or 0
// if none exists (the Mutating rule of §5.1).
func (t *Trans) NextParts(g *graph.Graph, n int) int {
	m := t.MaxParts(g)
	for k := n + 1; k <= m; k++ {
		if m%k == 0 {
			return k
		}
	}
	return 0
}

func gcdInt(a, b int) int {
	for b != 0 {
		a, b = b, a%b
	}
	return a
}

// PartSpecs returns, for one split part, the operator of each member of S
// (v's axis divided by t.N). Nodes fail if their axis is not divisible.
func (t *Trans) PartSpecs(g *graph.Graph) (map[graph.NodeID]*ops.Spec, error) {
	out := make(map[graph.NodeID]*ops.Spec, len(t.S))
	for v := range t.S {
		spec := g.Node(v).Op.(*ops.Spec)
		part, err := spec.SplitAxis(t.Choice[v], t.N)
		if err != nil {
			return nil, fmt.Errorf("fission: node %d: %v", v, err)
		}
		out[v] = part
	}
	return out, nil
}

// ApplyResult describes a materialized fission.
type ApplyResult struct {
	// Graph is the expanded graph (the input graph is not modified).
	Graph *graph.Graph
	// Merged maps each original output of S to the node merging its parts.
	Merged map[graph.NodeID]graph.NodeID
	// Slices maps each created input-slice node to the input it slices.
	Slices map[graph.NodeID]graph.NodeID
	// Replicas lists the per-part copies of S's members.
	Replicas []graph.NodeID
}

// Apply materializes the fission on a clone of g. The original members of
// S are removed from the result.
func (t *Trans) Apply(g *graph.Graph) (*ApplyResult, error) {
	if t.N < 2 {
		return nil, fmt.Errorf("fission: Apply needs n >= 2, got %d", t.N)
	}
	parts, err := t.PartSpecs(g)
	if err != nil {
		return nil, err
	}
	ng := g.Clone()
	res := &ApplyResult{
		Graph:  ng,
		Merged: make(map[graph.NodeID]graph.NodeID),
		Slices: make(map[graph.NodeID]graph.NodeID),
	}
	// Slice shared inputs that carry a split dimension.
	sliced := make(map[graph.NodeID][]graph.NodeID) // input -> per-part slice
	for u, axis := range t.Choice {
		if t.S[u] || axis <= 0 {
			continue
		}
		spec := ng.Node(u).Op.(*ops.Spec)
		l := spec.OutShape().Dim(axis)
		step := l / t.N
		for p := 0; p < t.N; p++ {
			s := ops.NewSlice(spec.OutShape(), axis, p*step, step, spec.DType())
			id := ng.Add(s, u)
			sliced[u] = append(sliced[u], id)
			res.Slices[id] = u
		}
	}
	// Replicate the sub-graph per part, topologically.
	order := topoWithin(g, t.S)
	replica := make([]map[graph.NodeID]graph.NodeID, t.N)
	for p := 0; p < t.N; p++ {
		replica[p] = make(map[graph.NodeID]graph.NodeID, len(t.S))
		for _, v := range order {
			spec := parts[v]
			var ins []graph.NodeID
			for _, in := range g.Node(v).Ins {
				switch {
				case t.S[in]:
					ins = append(ins, replica[p][in])
				case sliced[in] != nil:
					ins = append(ins, sliced[in][p])
				default:
					ins = append(ins, in)
				}
			}
			id := ng.AddNamed(fmt.Sprintf("%s#%d", g.Node(v).Name, p), spec, ins...)
			replica[p][v] = id
			res.Replicas = append(res.Replicas, id)
		}
	}
	// Merge outputs and rewire external consumers.
	merged := res.Merged
	for v := range g.Outs(t.S) {
		pieces := make([]graph.NodeID, t.N)
		for p := 0; p < t.N; p++ {
			pieces[p] = replica[p][v]
		}
		axis := t.Choice[v]
		var m graph.NodeID
		if axis > 0 {
			shapes := make([]tensor.Shape, t.N)
			for p := range pieces {
				shapes[p] = ng.Node(pieces[p]).Op.OutShape()
			}
			m = ng.Add(ops.NewConcat(shapes, axis, ng.Node(pieces[0]).Op.DType()), pieces...)
		} else {
			// Partial reductions accumulate with an Add chain, preserving
			// the sequential part order. Intermediate accumulation steps
			// count as replicas for nesting purposes.
			m = pieces[0]
			for p := 1; p < t.N; p++ {
				sh := ng.Node(m).Op.OutShape()
				m = ng.Add(ops.NewAdd(sh, sh, ng.Node(m).Op.DType()), m, pieces[p])
				if p < t.N-1 {
					res.Replicas = append(res.Replicas, m)
				}
			}
		}
		ng.RedirectConsumers(v, m)
		merged[v] = m
	}
	// Remove the replaced originals (and anything now dead). Liveness is
	// anchored at the ORIGINAL graph's outputs (mapped through the merge),
	// not ng.Outputs(): the detached originals would otherwise appear as
	// outputs themselves and survive.
	var keep []graph.NodeID
	for _, v := range g.Outputs() {
		if m, ok := merged[v]; ok {
			keep = append(keep, m)
		} else {
			keep = append(keep, v)
		}
	}
	ng.RemoveDead(keep)
	for v := range t.S {
		if ng.Has(v) {
			return nil, fmt.Errorf("fission: original node %d still live after apply", v)
		}
	}
	return res, nil
}

// topoWithin returns the members of s in g's topological order.
func topoWithin(g *graph.Graph, s graph.Set) []graph.NodeID {
	var out []graph.NodeID
	for _, v := range g.Topo() {
		if s[v] {
			out = append(out, v)
		}
	}
	return out
}

// Inputs returns the sliced and shared inputs of the transformation.
func (t *Trans) Inputs(g *graph.Graph) (slicedIn, sharedIn []graph.NodeID) {
	for u := range g.Inps(t.S) {
		if axis, ok := t.Choice[u]; ok && axis > 0 {
			slicedIn = append(slicedIn, u)
		} else {
			sharedIn = append(sharedIn, u)
		}
	}
	sort.Slice(slicedIn, func(i, j int) bool { return slicedIn[i] < slicedIn[j] })
	sort.Slice(sharedIn, func(i, j int) bool { return sharedIn[i] < sharedIn[j] })
	return
}
