package fission

import (
	"testing"

	"magis/internal/dgraph"
	"magis/internal/graph"
	"magis/internal/ops"
	"magis/internal/sched"
	"magis/internal/tensor"
)

// mlpTrain reproduces the Fig. 5 structure: a forward matmul + ReLU with a
// weight-gradient matmul reducing over batch, ending in an SGD update.
func mlpTrain() (*graph.Graph, map[string]graph.NodeID) {
	g := graph.New()
	x := g.AddNamed("x", ops.NewInput(tensor.S(32, 64), tensor.F32))
	w := g.AddNamed("w", ops.NewParam(tensor.S(64, 16), tensor.F32))
	h := g.AddNamed("h", ops.NewMatmul(tensor.S(32, 64), tensor.S(64, 16), false, false, tensor.F32), x, w)
	y := g.AddNamed("y", ops.NewReLU(tensor.S(32, 16), tensor.F32), h)
	gy := g.AddNamed("gy", ops.NewEltwiseBwd("ReLUBwd", tensor.S(32, 16), tensor.S(32, 16), tensor.F32, 1), h, y)
	gw := g.AddNamed("gw", ops.NewMatmul(tensor.S(32, 64), tensor.S(32, 16), true, false, tensor.F32), x, gy)
	upd := g.AddNamed("upd", ops.NewApplySGD(tensor.S(64, 16), tensor.S(64, 16), tensor.F32), w, gw)
	return g, map[string]graph.NodeID{"x": x, "w": w, "h": h, "y": y, "gy": gy, "gw": gw, "upd": upd}
}

func batchComponent(t *testing.T, g *graph.Graph, probe dgraph.DimNode) (*dgraph.DGraph, dgraph.Component) {
	t.Helper()
	d := dgraph.Build(g)
	for _, c := range d.Components() {
		if c[probe] {
			return d, c
		}
	}
	t.Fatal("component not found")
	return nil, nil
}

func TestResolveValidCandidate(t *testing.T) {
	g, n := mlpTrain()
	d, comp := batchComponent(t, g, dgraph.DimNode{Node: n["h"], Axis: 1})
	s := graph.NewSet(n["h"], n["y"], n["gy"], n["gw"])
	tr, err := Resolve(g, d, comp, s, 2)
	if err != nil {
		t.Fatal(err)
	}
	if tr.MaxParts(g) != 32 {
		t.Errorf("MaxParts = %d, want 32 (batch)", tr.MaxParts(g))
	}
	if tr.NextParts(g, 2) != 4 {
		t.Errorf("NextParts(2) = %d, want 4", tr.NextParts(g, 2))
	}
	if tr.NextParts(g, 32) != 0 {
		t.Error("no divisor beyond the axis length")
	}
	slicedIn, sharedIn := tr.Inputs(g)
	if len(slicedIn) != 1 || slicedIn[0] != n["x"] {
		t.Errorf("sliced inputs = %v, want [x]", slicedIn)
	}
	if len(sharedIn) != 1 || sharedIn[0] != n["w"] {
		t.Errorf("shared inputs = %v, want [w]", sharedIn)
	}
}

func TestResolveRejectsNonConvex(t *testing.T) {
	g, n := mlpTrain()
	d, comp := batchComponent(t, g, dgraph.DimNode{Node: n["h"], Axis: 1})
	// {h, gy} is not convex: h -> y -> gy passes outside the set.
	if _, err := Resolve(g, d, comp, graph.NewSet(n["h"], n["gy"]), 2); err == nil {
		t.Error("non-convex sub-graph accepted")
	}
}

func TestResolveRejectsDisconnected(t *testing.T) {
	g := graph.New()
	a := g.Add(ops.NewInput(tensor.S(4, 4), tensor.F32))
	b := g.Add(ops.NewReLU(tensor.S(4, 4), tensor.F32), a)
	c := g.Add(ops.NewInput(tensor.S(4, 4), tensor.F32))
	e := g.Add(ops.NewReLU(tensor.S(4, 4), tensor.F32), c)
	d := dgraph.Build(g)
	comps := d.Components()
	if len(comps) == 0 {
		t.Fatal("no components")
	}
	for _, comp := range comps {
		if comp[dgraph.DimNode{Node: b, Axis: 1}] && comp[dgraph.DimNode{Node: e, Axis: 1}] {
			if _, err := Resolve(g, d, comp, graph.NewSet(b, e), 2); err == nil {
				t.Error("disconnected sub-graph accepted")
			}
			return
		}
	}
}

func TestApplyExpandsCorrectly(t *testing.T) {
	g, n := mlpTrain()
	d, comp := batchComponent(t, g, dgraph.DimNode{Node: n["h"], Axis: 1})
	s := graph.NewSet(n["h"], n["y"], n["gy"], n["gw"])
	tr, err := Resolve(g, d, comp, s, 2)
	if err != nil {
		t.Fatal(err)
	}
	res, err := tr.Apply(g)
	if err != nil {
		t.Fatal(err)
	}
	ng, merged := res.Graph, res.Merged
	if err != nil {
		t.Fatal(err)
	}
	// Original S nodes are gone; x, w, upd survive.
	for _, name := range []string{"h", "y", "gy", "gw"} {
		if ng.Has(n[name]) {
			t.Errorf("original %s still present", name)
		}
	}
	for _, name := range []string{"x", "w", "upd"} {
		if !ng.Has(n[name]) {
			t.Errorf("%s missing after fission", name)
		}
	}
	// gw was a reduce-merged output: its merged node is an Add of full
	// weight-gradient shape, consumed by upd.
	m := merged[n["gw"]]
	if ng.Node(m).Op.Kind() != "Add" {
		t.Errorf("gw merge kind = %s, want Add", ng.Node(m).Op.Kind())
	}
	if !ng.Node(m).Op.OutShape().Equal(tensor.S(64, 16)) {
		t.Errorf("gw merge shape = %v", ng.Node(m).Op.OutShape())
	}
	if pre := ng.Pre(n["upd"]); len(pre) != 2 || (pre[0] != m && pre[1] != m) {
		t.Errorf("upd not rewired to merged gradient: %v", pre)
	}
	// x is sliced: two Slice consumers of x plus the original gw ... gone,
	// so x's consumers are all Slices.
	for _, c := range ng.Suc(n["x"]) {
		if ng.Node(c).Op.Kind() != ops.KindSlice {
			t.Errorf("x consumer %s, want Slice", ng.Node(c).Op.Kind())
		}
	}
	// w is shared: consumed directly by both replica matmuls and upd.
	if got := len(ng.Suc(n["w"])); got != 3 {
		t.Errorf("w consumers = %d, want 3 (2 replicas + upd)", got)
	}
	// The expanded graph is a valid DAG with a valid topo schedule.
	if err := sched.Schedule(ng.Topo()).Validate(ng); err != nil {
		t.Fatal(err)
	}
}

func TestApplyReducesPeakMemory(t *testing.T) {
	// A bottleneck MLP whose intermediates dwarf its input and output:
	// splitting the expansion along batch should reduce peak memory.
	g := graph.New()
	x := g.Add(ops.NewInput(tensor.S(64, 16), tensor.F32))
	w1 := g.Add(ops.NewParam(tensor.S(16, 4096), tensor.F32))
	w2 := g.Add(ops.NewParam(tensor.S(4096, 16), tensor.F32))
	a := g.Add(ops.NewMatmul(tensor.S(64, 16), tensor.S(16, 4096), false, false, tensor.F32), x, w1)
	b := g.Add(ops.NewReLU(tensor.S(64, 4096), tensor.F32), a)
	c := g.Add(ops.NewMatmul(tensor.S(64, 4096), tensor.S(4096, 16), false, false, tensor.F32), b, w2)
	d := dgraph.Build(g)
	var comp dgraph.Component
	for _, cc := range d.Components() {
		if cc[dgraph.DimNode{Node: a, Axis: 1}] {
			comp = cc
		}
	}
	tr, err := Resolve(g, d, comp, graph.NewSet(a, b, c), 4)
	if err != nil {
		t.Fatal(err)
	}
	res, err := tr.Apply(g)
	if err != nil {
		t.Fatal(err)
	}
	ng := res.Graph
	if err != nil {
		t.Fatal(err)
	}
	sc := &sched.Scheduler{}
	before := sched.PeakOnly(g, sc.ScheduleGraph(g))
	after := sched.PeakOnly(ng, sc.ScheduleGraph(ng))
	if after >= before {
		t.Errorf("fission did not reduce peak: before=%d after=%d", before, after)
	}
}

func TestApplyConcatOutputShape(t *testing.T) {
	g := graph.New()
	x := g.Add(ops.NewInput(tensor.S(8, 16), tensor.F32))
	r := g.Add(ops.NewReLU(tensor.S(8, 16), tensor.F32), x)
	sink := g.Add(ops.NewGELU(tensor.S(8, 16), tensor.F32), r)
	_ = sink
	d := dgraph.Build(g)
	var comp dgraph.Component
	for _, cc := range d.Components() {
		if cc[dgraph.DimNode{Node: r, Axis: 1}] {
			comp = cc
		}
	}
	tr, err := Resolve(g, d, comp, graph.NewSet(r), 2)
	if err != nil {
		t.Fatal(err)
	}
	res, err := tr.Apply(g)
	if err != nil {
		t.Fatal(err)
	}
	ng, merged := res.Graph, res.Merged
	if err != nil {
		t.Fatal(err)
	}
	m := ng.Node(merged[r])
	if m.Op.Kind() != ops.KindConcat || !m.Op.OutShape().Equal(tensor.S(8, 16)) {
		t.Errorf("merged = %s %v", m.Op.Kind(), m.Op.OutShape())
	}
}

func TestPartSpecsHalveSizes(t *testing.T) {
	g, n := mlpTrain()
	d, comp := batchComponent(t, g, dgraph.DimNode{Node: n["h"], Axis: 1})
	s := graph.NewSet(n["h"], n["y"], n["gy"], n["gw"])
	tr, err := Resolve(g, d, comp, s, 4)
	if err != nil {
		t.Fatal(err)
	}
	parts, err := tr.PartSpecs(g)
	if err != nil {
		t.Fatal(err)
	}
	if !parts[n["h"]].OutShape().Equal(tensor.S(8, 16)) {
		t.Errorf("h part shape = %v", parts[n["h"]].OutShape())
	}
	// gw keeps its full output (reduce merge) but reads a quarter batch.
	if !parts[n["gw"]].OutShape().Equal(tensor.S(64, 16)) {
		t.Errorf("gw part shape = %v", parts[n["gw"]].OutShape())
	}
	if !parts[n["gw"]].InShape(0).Equal(tensor.S(8, 64)) {
		t.Errorf("gw part input = %v", parts[n["gw"]].InShape(0))
	}
}
