package expr

import (
	"fmt"
	"math"
	"strings"

	"magis/internal/baselines"
	"magis/internal/models"
	"magis/internal/opt"
)

// Fig11Curve is one system's memory/latency trade-off curve for one
// workload (Fig. 11's axes: memory ratio vs latency overhead).
type Fig11Curve struct {
	Workload string
	System   string
	Points   []opt.ParetoPoint
}

// Fig11 traces trade-off curves for the four case-study workloads.
// ratios is the memory-constraint grid (default 0.9 .. 0.3).
func Fig11(cfg Config, ws []*models.Workload, ratios []float64) []Fig11Curve {
	cfg = cfg.defaults()
	if ws == nil {
		all := cfg.Workloads()
		ws = []*models.Workload{all[0], all[1], all[3], all[5]} // ResNet, BERT, UNet, GPT-Neo
	}
	if ratios == nil {
		ratios = []float64{0.9, 0.8, 0.7, 0.6, 0.5, 0.4, 0.3}
	}
	var curves []Fig11Curve
	for _, w := range ws {
		if cfg.Ctx.Err() != nil {
			return curves
		}
		m := cfg.Model()
		base := opt.Baseline(w.G, m)
		pts, err := opt.SweepCtx(cfg.Ctx, w.G, m, ratios, cfg.Budget, opt.Options{Workers: cfg.Workers, StrictHash: cfg.StrictHash})
		if err == nil {
			curves = append(curves, Fig11Curve{w.Name, "MAGIS", pts})
		}
		for _, name := range SystemNames[1:] {
			o := systemByName(name)
			var pts []opt.ParetoPoint
			for _, r := range append([]float64{1.0}, ratios...) {
				if cfg.Ctx.Err() != nil {
					break
				}
				limit := int64(r * float64(base.PeakMem))
				res := o.OptimizeMem(w.G, m, limit)
				if !res.OK {
					continue
				}
				pts = append(pts, opt.ParetoPoint{
					MemRatio:    float64(res.PeakMem) / float64(base.PeakMem),
					LatOverhead: res.Latency/base.Latency - 1,
				})
			}
			curves = append(curves, Fig11Curve{w.Name, name, opt.Pareto(pts)})
		}
	}
	return curves
}

// Fig12Point is one point of the micro-batching comparison (Fig. 12):
// system (POFO, POFO with micro-batch factor, or MAGIS) at one memory
// limit.
type Fig12Point struct {
	System      string
	MemRatio    float64
	LatOverhead float64
	OK          bool
}

// Fig12 reproduces the Fig. 12 study on ViT: POFO with whole-graph
// micro-batching (factors 32/16/8) against plain POFO and MAGIS across a
// grid of memory limits.
func Fig12(cfg Config, w *models.Workload, ratios []float64, factors []int) []Fig12Point {
	cfg = cfg.defaults()
	if w == nil {
		w = cfg.Workloads()[2] // ViT-base
	}
	if ratios == nil {
		ratios = []float64{0.8, 0.6, 0.4, 0.3}
	}
	if factors == nil {
		factors = []int{32, 16, 8}
	}
	m := cfg.Model()
	base := opt.Baseline(w.G, m)
	var pts []Fig12Point
	run := func(name string, o baselines.Optimizer) {
		for _, r := range ratios {
			if cfg.Ctx.Err() != nil {
				return
			}
			limit := int64(r * float64(base.PeakMem))
			res := o.OptimizeMem(w.G, m, limit)
			p := Fig12Point{System: name, MemRatio: math.NaN(), LatOverhead: math.NaN(), OK: res.OK}
			if res.OK {
				p.MemRatio = float64(res.PeakMem) / float64(base.PeakMem)
				p.LatOverhead = res.Latency/base.Latency - 1
			}
			pts = append(pts, p)
		}
	}
	run("POFO", baselines.POFO{})
	for _, f := range factors {
		if f > w.Batch {
			continue
		}
		run(fmt.Sprintf("POFO(mb=%d)", f), baselines.MicroBatch{Inner: baselines.POFO{}, Factor: f})
	}
	for _, r := range ratios {
		limit := int64(r * float64(base.PeakMem))
		p := Fig12Point{System: "MAGIS", MemRatio: math.NaN(), LatOverhead: math.NaN()}
		if res, err := magisMinLat(cfg, w, limit); err == nil && res.Best.PeakMem <= limit {
			p.OK = true
			p.MemRatio = float64(res.Best.PeakMem) / float64(base.PeakMem)
			p.LatOverhead = res.Best.Latency/base.Latency - 1
		}
		pts = append(pts, p)
	}
	return pts
}

// RenderFig12 formats the micro-batching comparison.
func RenderFig12(pts []Fig12Point) string {
	cols := []string{"system", "mem-ratio", "lat-overhead"}
	var rows [][]string
	for _, p := range pts {
		rows = append(rows, []string{p.System, Cell(p.MemRatio, "FAIL"), Cell(p.LatOverhead, "FAIL")})
	}
	return FormatTable("Fig 12: MAGIS vs POFO with micro-batching (ViT)", cols, rows)
}

// RenderFig11 formats the curves as point lists.
func RenderFig11(curves []Fig11Curve) string {
	var b strings.Builder
	b.WriteString("== Fig 11: memory/latency trade-off curves ==\n")
	for _, c := range curves {
		fmt.Fprintf(&b, "%-14s %-6s:", c.Workload, c.System)
		for _, p := range c.Points {
			fmt.Fprintf(&b, " (%.2f, %+.2f)", p.MemRatio, p.LatOverhead)
		}
		b.WriteByte('\n')
	}
	return b.String()
}
