package expr

import (
	"fmt"
	"strings"
	"time"

	"magis/internal/models"
	"magis/internal/opt"
)

// Fig13Curve is one ablation setting's convergence history under one
// constraint mode (Fig. 13).
type Fig13Curve struct {
	Setting    string
	Constraint string
	History    []opt.HistoryPoint
	// Final best values.
	PeakRatio   float64
	LatOverhead float64
}

// Fig13Settings are the five ablation settings of §7.2.5.
func fig13Settings() []struct {
	name string
	o    opt.Options
} {
	return []struct {
		name string
		o    opt.Options
	}{
		{"naive-fission", opt.Options{NaiveFission: true}},
		{"naive-sch-rule", opt.Options{NaiveSchedRules: true}},
		{"max-level=2", opt.Options{MaxLevel: 2}},
		{"max-level=4", opt.Options{MaxLevel: 4}},
		{"max-level=8", opt.Options{MaxLevel: 8}},
	}
}

// Fig13 runs the heuristic ablation on BERT under the four constraints of
// §7.2.1/§7.2.2 (latency overhead < 10%/5%, memory ratio < 80%/40%).
func Fig13(cfg Config, w *models.Workload) []Fig13Curve {
	cfg = cfg.defaults()
	if w == nil {
		w = cfg.Workloads()[1] // BERT-base
	}
	m := cfg.Model()
	base := opt.Baseline(w.G, m)
	var curves []Fig13Curve
	for _, s := range fig13Settings() {
		if cfg.Ctx.Err() != nil {
			return curves
		}
		for _, mode := range []struct {
			name string
			o    opt.Options
		}{
			{"lat<10%", opt.Options{Mode: opt.MemoryUnderLatency, LatencyLimit: base.Latency * 1.10}},
			{"lat<5%", opt.Options{Mode: opt.MemoryUnderLatency, LatencyLimit: base.Latency * 1.05}},
			{"mem<80%", opt.Options{Mode: opt.LatencyUnderMemory, MemLimit: int64(0.8 * float64(base.PeakMem))}},
			{"mem<40%", opt.Options{Mode: opt.LatencyUnderMemory, MemLimit: int64(0.4 * float64(base.PeakMem))}},
		} {
			o := mode.o
			o.NaiveFission = s.o.NaiveFission
			o.NaiveSchedRules = s.o.NaiveSchedRules
			o.MaxLevel = s.o.MaxLevel
			o.TimeBudget = cfg.Budget
			o.Workers = cfg.Workers
			res, err := opt.OptimizeCtx(cfg.ctx(), w.G, m, o)
			if err != nil {
				continue
			}
			curves = append(curves, Fig13Curve{
				Setting:     s.name,
				Constraint:  mode.name,
				History:     res.History,
				PeakRatio:   float64(res.Best.PeakMem) / float64(base.PeakMem),
				LatOverhead: res.Best.Latency/base.Latency - 1,
			})
		}
	}
	return curves
}

// RenderFig13 formats final ablation results per constraint.
func RenderFig13(curves []Fig13Curve) string {
	cols := []string{"setting", "constraint", "mem-ratio", "lat-overhead", "improvements"}
	var rows [][]string
	for _, c := range curves {
		rows = append(rows, []string{
			c.Setting, c.Constraint,
			Cell(c.PeakRatio, "-"), Cell(c.LatOverhead, "-"),
			fmt.Sprintf("%d", len(c.History)),
		})
	}
	return FormatTable("Fig 13: heuristic ablation (BERT)", cols, rows)
}

// Fig15Breakdown is the optimization-time cost breakdown of Fig. 15.
type Fig15Breakdown struct {
	Total                           time.Duration
	Stats                           opt.Stats
	TransPct, SchedPct, SimulPct    float64
	HashPct                         float64
	FilteredShare                   float64
	Iterations, Transformations     int
	Schedules, Simulations, HashOps int
}

// Fig15 runs MAGIS on ViT for the configured budget and reports where the
// time went.
func Fig15(cfg Config, w *models.Workload) Fig15Breakdown {
	cfg = cfg.defaults()
	if w == nil {
		w = cfg.Workloads()[2] // ViT-base
	}
	m := cfg.Model()
	base := opt.Baseline(w.G, m)
	start := time.Now()
	res, err := opt.OptimizeCtx(cfg.ctx(), w.G, m, opt.Options{
		Mode:         opt.MemoryUnderLatency,
		LatencyLimit: base.Latency * 1.10,
		TimeBudget:   cfg.Budget,
		Workers:      cfg.Workers,
		StrictHash:   cfg.StrictHash,
	})
	total := time.Since(start)
	out := Fig15Breakdown{Total: total}
	if err != nil {
		return out
	}
	s := res.Stats
	out.Stats = s
	pct := func(d time.Duration) float64 { return 100 * float64(d) / float64(total) }
	out.TransPct = pct(s.TransTime)
	out.SchedPct = pct(s.SchedTime)
	out.SimulPct = pct(s.SimulTime)
	out.HashPct = pct(s.HashTime)
	if s.Trans > 0 {
		out.FilteredShare = float64(s.Filtered) / float64(s.Trans)
	}
	out.Iterations = s.Iterations
	out.Transformations = s.Trans
	out.Schedules = s.Sched
	out.Simulations = s.Simul
	out.HashOps = s.Hash
	return out
}

// RenderFig15 formats the breakdown table.
func RenderFig15(b Fig15Breakdown) string {
	var sb strings.Builder
	sb.WriteString("== Fig 15: optimization time breakdown (ViT) ==\n")
	fmt.Fprintf(&sb, "total %v over %d iterations\n", b.Total.Round(time.Millisecond), b.Iterations)
	fmt.Fprintf(&sb, "%-10s count=%6d  time=%8v (%4.1f%%)\n", "Trans.", b.Transformations, b.Stats.TransTime.Round(time.Millisecond), b.TransPct)
	fmt.Fprintf(&sb, "%-10s count=%6d  time=%8v (%4.1f%%)\n", "Sched.", b.Schedules, b.Stats.SchedTime.Round(time.Millisecond), b.SchedPct)
	fmt.Fprintf(&sb, "%-10s count=%6d  time=%8v (%4.1f%%)\n", "Simul.", b.Simulations, b.Stats.SimulTime.Round(time.Millisecond), b.SimulPct)
	fmt.Fprintf(&sb, "%-10s count=%6d  time=%8v (%4.1f%%)\n", "Hash", b.HashOps, b.Stats.HashTime.Round(time.Millisecond), b.HashPct)
	fmt.Fprintf(&sb, "%-10s count=%6d (%.0f%% of generated states)\n", "Filtered", b.Stats.Filtered, 100*b.FilteredShare)
	return sb.String()
}
