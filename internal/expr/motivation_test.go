package expr

import (
	"testing"
	"time"

	"magis/internal/models"
	"magis/internal/opt"
)

// TestMotivationFigure2 reproduces the paper's motivation example (Fig. 2):
// a long skip-connection chain where all forward tensors are alive at the
// turning point. Scheduling alone (swap/remat, no fission) can meet a
// tight memory limit only by paying transfer/recompute latency; adding
// fission transformation reaches the same limit cheaper — the coordinated
// optimizer must therefore dominate the fission-disabled one.
func TestMotivationFigure2(t *testing.T) {
	// 32 forward tensors of 256 KB each, mirrored consumption.
	g, _ := models.SkipChain(32, 64*1024)
	m := (Config{}).defaults().Model()
	base := opt.Baseline(g, m)

	limit := int64(float64(base.PeakMem) * 0.35)
	budget := 2 * time.Second

	full, err := opt.Optimize(g, m, opt.Options{
		Mode: opt.LatencyUnderMemory, MemLimit: limit, TimeBudget: budget,
	})
	if err != nil {
		t.Fatal(err)
	}
	schedOnly, err := opt.Optimize(g, m, opt.Options{
		Mode: opt.LatencyUnderMemory, MemLimit: limit, TimeBudget: budget,
		DisableFission: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("baseline: %.1f MB / %.2f ms", mbf(base.PeakMem), base.Latency*1e3)
	t.Logf("full MAGIS:  %.1f MB / %.2f ms", mbf(full.Best.PeakMem), full.Best.Latency*1e3)
	t.Logf("sched-only:  %.1f MB / %.2f ms", mbf(schedOnly.Best.PeakMem), schedOnly.Best.Latency*1e3)

	if full.Best.PeakMem > limit {
		t.Errorf("coordinated optimizer missed the limit: %d > %d", full.Best.PeakMem, limit)
	}
	// Dominance: at equal-or-better memory, full MAGIS must not be slower;
	// or it reaches strictly lower memory.
	if full.Best.PeakMem >= schedOnly.Best.PeakMem && full.Best.Latency >= schedOnly.Best.Latency &&
		!(full.Best.PeakMem == schedOnly.Best.PeakMem && full.Best.Latency == schedOnly.Best.Latency) {
		t.Errorf("fission-enabled dominated by scheduling-only: (%d, %g) vs (%d, %g)",
			full.Best.PeakMem, full.Best.Latency, schedOnly.Best.PeakMem, schedOnly.Best.Latency)
	}
}

func mbf(b int64) float64 { return float64(b) / (1 << 20) }
