package expr

import (
	"math"
	"testing"
	"time"

	"magis/internal/models"
)

// fastCfg keeps experiment smoke tests quick: tiny workloads, short budget.
func fastCfg() Config {
	return Config{Scale: 1, Budget: 300 * time.Millisecond}
}

// tinySuite is a reduced workload set for harness tests.
func tinySuite() []*models.Workload {
	return []*models.Workload{
		models.MLP(2048, 128, 512, 10, 3),
		models.UNetConfig(2, 64, 16, 3),
	}
}

func TestFig9Smoke(t *testing.T) {
	rows := Fig9(fastCfg(), []float64{0.10}, tinySuite())
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		magis := r.Ratio["MAGIS"]
		if math.IsNaN(magis) {
			t.Errorf("%s: MAGIS failed", r.Workload)
			continue
		}
		if magis <= 0 || magis > 1.01 {
			t.Errorf("%s: MAGIS ratio %f out of range", r.Workload, magis)
		}
		for _, s := range SystemNames {
			if _, ok := r.Ratio[s]; !ok {
				t.Errorf("%s: missing system %s", r.Workload, s)
			}
		}
	}
	out := RenderFig9(rows)
	if len(out) == 0 {
		t.Error("empty render")
	}
}

func TestFig10Smoke(t *testing.T) {
	rows := Fig10(fastCfg(), []float64{0.8}, tinySuite()[:1])
	if len(rows) != 1 {
		t.Fatalf("rows = %d", len(rows))
	}
	m := rows[0].Overhead["MAGIS"]
	if math.IsNaN(m) {
		t.Fatal("MAGIS failed at 80%")
	}
	if m < -0.5 || m > 2 {
		t.Errorf("overhead %f implausible", m)
	}
	_ = RenderFig10(rows)
}

func TestFig11Smoke(t *testing.T) {
	curves := Fig11(fastCfg(), tinySuite()[:1], []float64{0.8, 0.6})
	if len(curves) != len(SystemNames) {
		t.Fatalf("curves = %d, want %d", len(curves), len(SystemNames))
	}
	for _, c := range curves {
		if c.System == "MAGIS" && len(c.Points) == 0 {
			t.Error("MAGIS produced no Pareto points")
		}
	}
	_ = RenderFig11(curves)
}

func TestFig12Smoke(t *testing.T) {
	w := models.MLP(2048, 128, 512, 10, 3)
	pts := Fig12(fastCfg(), w, []float64{0.6}, []int{4})
	// POFO, POFO(mb=4), MAGIS at one ratio each.
	if len(pts) != 3 {
		t.Fatalf("points = %d", len(pts))
	}
	_ = RenderFig12(pts)
}

func TestFig13Smoke(t *testing.T) {
	w := models.MLP(2048, 128, 512, 10, 3)
	cfg := fastCfg()
	cfg.Budget = 150 * time.Millisecond
	curves := Fig13(cfg, w)
	if len(curves) != 5*4 {
		t.Fatalf("curves = %d, want 20", len(curves))
	}
	_ = RenderFig13(curves)
}

func TestFig14Study(t *testing.T) {
	samples := Fig14(fastCfg(), 3, 4)
	if len(samples) == 0 {
		t.Fatal("no samples")
	}
	sum := Summarize(samples)
	if sum.MeanSpeedup < 1 {
		t.Errorf("incremental scheduling slower than full: %.2fx", sum.MeanSpeedup)
	}
	if sum.QualityPctSame < 50 {
		t.Errorf("incremental quality degraded in most samples: %.0f%%", sum.QualityPctSame)
	}
	_ = RenderFig14(sum)
}

func TestFig15Smoke(t *testing.T) {
	w := models.MLP(2048, 128, 512, 10, 3)
	b := Fig15(fastCfg(), w)
	if b.Iterations == 0 || b.Simulations == 0 {
		t.Fatalf("breakdown empty: %+v", b)
	}
	total := b.TransPct + b.SchedPct + b.SimulPct + b.HashPct
	if total > 101 {
		t.Errorf("percentages exceed 100: %f", total)
	}
	_ = RenderFig15(b)
}

func TestFig16Smoke(t *testing.T) {
	w := models.UNetConfig(2, 64, 16, 3)
	series := Fig16(fastCfg(), w)
	if len(series) < 2 {
		t.Fatalf("series = %d", len(series))
	}
	if series[0].Name != "PyTorch" {
		t.Error("first series should be the baseline")
	}
	for _, s := range series[1:] {
		if s.Peak >= series[0].Peak {
			t.Errorf("%s peak %d not below baseline %d", s.Name, s.Peak, series[0].Peak)
		}
	}
	_ = RenderFig16(series)
}

func TestTable2Small(t *testing.T) {
	cfg := Config{Scale: 0.05, Budget: time.Millisecond}
	rows := Table2(cfg)
	if len(rows) != 7 {
		t.Fatalf("rows = %d, want 7", len(rows))
	}
	for _, r := range rows {
		if r.Nodes == 0 || r.Peak == 0 || r.Latency == 0 {
			t.Errorf("%s: empty row", r.Name)
		}
	}
	_ = RenderTable2(rows)
}
