package expr

import (
	"fmt"
	"math"
	"strings"
	"time"

	"magis/internal/graph"
	"magis/internal/models"
	"magis/internal/opt"
	"magis/internal/rules"
	"magis/internal/sched"
	"magis/internal/sim"
)

// Fig14Sample is one transformation round's incremental-vs-full
// scheduling comparison (§7.3).
type Fig14Sample struct {
	DNN, Round int
	// Speedup is fullTime / incrementalTime.
	Speedup float64
	// Quality is incremental peak / full peak (1.0 = same optimality).
	Quality float64
	// Rescheduled is the number of operators the incremental pass redid.
	Rescheduled int
}

// Fig14 runs the §7.3 study: DNNs random graphs resembling NASNet, each
// transformed `rounds` times; every transformation is scheduled both
// incrementally and from scratch.
func Fig14(cfg Config, dnns, rounds int) []Fig14Sample {
	cfg = cfg.defaults()
	if dnns == 0 {
		dnns = 10
	}
	if rounds == 0 {
		rounds = 10
	}
	sc := &sched.Scheduler{}
	var out []Fig14Sample
	for d := 0; d < dnns; d++ {
		if cfg.Ctx.Err() != nil {
			return out
		}
		w := models.RandomNASNet(int64(d+1), 6, 16, 16, 4)
		g := w.G
		psi := sc.ScheduleGraph(g)
		for r := 0; r < rounds; r++ {
			app := firstApplication(g, psi)
			if app == nil {
				break
			}
			t0 := time.Now()
			full := sc.ScheduleGraph(app.Graph)
			fullTime := time.Since(t0)

			t1 := time.Now()
			inc, n := sc.Incremental(g, app.Graph, app.OldMutated, psi)
			incTime := time.Since(t1)

			fullPeak := sched.PeakOnly(app.Graph, full)
			incPeak := sched.PeakOnly(app.Graph, inc)
			sample := Fig14Sample{
				DNN: d + 1, Round: r + 1,
				Speedup:     float64(fullTime) / float64(incTime),
				Quality:     float64(incPeak) / float64(fullPeak),
				Rescheduled: n,
			}
			out = append(out, sample)
			g, psi = app.Graph, inc
		}
	}
	return out
}

// firstApplication picks a deterministic transformation for the Fig. 14
// study, preferring structure-changing rules.
func firstApplication(g *graph.Graph, psi sched.Schedule) *rules.Application {
	prof := sched.Simulate(g, psi)
	ctx := &rules.Context{Hot: prof.Hotspots, MaxSites: 2, UseHotFilter: true}
	for _, r := range rules.All() {
		apps := r.Apply(g, ctx)
		if len(apps) > 0 {
			return &apps[0]
		}
	}
	return nil
}

// Fig14Summary aggregates the §7.3 headline numbers.
type Fig14Summary struct {
	Samples        int
	MeanSpeedup    float64
	MinSpeedup     float64
	MaxSpeedup     float64
	SameQuality    int // samples where incremental matched full optimality
	QualityPctSame float64
}

// Summarize computes the Fig. 14 aggregate statistics.
func Summarize(samples []Fig14Sample) Fig14Summary {
	s := Fig14Summary{Samples: len(samples), MinSpeedup: 1e18}
	if len(samples) == 0 {
		return s
	}
	prod := 1.0
	for _, x := range samples {
		prod *= x.Speedup
		if x.Speedup < s.MinSpeedup {
			s.MinSpeedup = x.Speedup
		}
		if x.Speedup > s.MaxSpeedup {
			s.MaxSpeedup = x.Speedup
		}
		if x.Quality <= 1.0 {
			s.SameQuality++
		}
	}
	s.MeanSpeedup = math.Pow(prod, 1/float64(len(samples)))
	s.QualityPctSame = 100 * float64(s.SameQuality) / float64(len(samples))
	return s
}

// RenderFig14 formats the summary.
func RenderFig14(sum Fig14Summary) string {
	var b strings.Builder
	b.WriteString("== Fig 14: incremental vs full scheduling ==\n")
	fmt.Fprintf(&b, "samples: %d\n", sum.Samples)
	fmt.Fprintf(&b, "speedup: %.1fx mean (%.1fx min, %.1fx max)\n", sum.MeanSpeedup, sum.MinSpeedup, sum.MaxSpeedup)
	fmt.Fprintf(&b, "quality: %d/%d (%.0f%%) reach full-scheduling optimality\n", sum.SameQuality, sum.Samples, sum.QualityPctSame)
	return b.String()
}

// Fig16Series is one system's execution timeline for the UNet case study.
type Fig16Series struct {
	Name     string
	Timeline []sim.Point
	Peak     int64
	Latency  float64
}

// Fig16 reproduces the UNet case study: memory-over-time curves for
// unoptimized PyTorch and MAGIS at 80% and 60% memory limits.
func Fig16(cfg Config, w *models.Workload) []Fig16Series {
	cfg = cfg.defaults()
	if w == nil {
		w = cfg.Workloads()[3] // UNet
	}
	m := cfg.Model()
	base := opt.Baseline(w.G, m)
	series := []Fig16Series{timelineOf("PyTorch", w.G, base.Sched, cfg)}
	for i, frac := range []float64{0.8, 0.6} {
		limit := int64(frac * float64(base.PeakMem))
		res, err := magisMinLat(cfg, w, limit)
		if err != nil {
			continue
		}
		name := fmt.Sprintf("MAGIS-%d", i+1)
		// Prefer the fully materialized graph for an honest timeline, but
		// keep the search's own schedule when the fresh full re-schedule
		// of the expansion is worse (the collapsed evaluation is the
		// fallback in both cases).
		chosen := timelineOf(name, res.Best.EvalG, res.Best.Sched, cfg)
		if mg, err := res.Best.FT.Materialize(res.Best.G); err == nil {
			// The one-off case study affords a wider scheduling effort
			// than the search's inner loop.
			sc := &sched.Scheduler{BeamWidth: 32, MaxExact: 18}
			if mat := timelineOf(name, mg, sc.ScheduleGraph(mg), cfg); mat.Peak < chosen.Peak {
				chosen = mat
			}
		}
		series = append(series, chosen)
	}
	return series
}

func timelineOf(name string, g *graph.Graph, order sched.Schedule, cfg Config) Fig16Series {
	r := sim.Run(g, order, sim.Config{Model: cfg.Model(), Timeline: true})
	return Fig16Series{Name: name, Timeline: r.Timeline, Peak: r.Peak, Latency: r.Latency}
}

// RenderFig16 formats the timelines as coarse sampled curves.
func RenderFig16(series []Fig16Series) string {
	var b strings.Builder
	b.WriteString("== Fig 16: UNet execution timeline (memory vs time) ==\n")
	for _, s := range series {
		fmt.Fprintf(&b, "%-10s peak=%6.2f GB  latency=%7.1f ms  |", s.Name,
			float64(s.Peak)/(1<<30), s.Latency*1e3)
		// Sample 12 evenly spaced TIME points (events cluster at the
		// stream boundaries, so index sampling misses the plateau).
		if n := len(s.Timeline); n > 0 {
			for i := 0; i < 12; i++ {
				target := s.Latency * float64(i) / 11
				var mem int64
				for _, p := range s.Timeline {
					if p.Time > target {
						break
					}
					mem = p.Mem
				}
				fmt.Fprintf(&b, " %.1f", float64(mem)/(1<<30))
			}
		}
		b.WriteString(" (GB)\n")
	}
	return b.String()
}
