package expr

import (
	"math"

	"magis/internal/baselines"
	"magis/internal/models"
	"magis/internal/opt"
)

// Fig9Row is one bar group of Fig. 9: peak-memory ratios vs the
// unoptimized PyTorch baseline under a latency-overhead constraint.
// NaN marks OOM/failure.
type Fig9Row struct {
	Workload string
	Overhead float64
	Ratio    map[string]float64
	// BaselinePeak and BaselineLatency anchor the ratios.
	BaselinePeak    int64
	BaselineLatency float64
	// OOM reports whether the unoptimized workload exceeds device memory
	// (the paper measures those baselines with MAGIS's simulator, as here).
	OOM bool
}

// Fig9 reproduces Fig. 9: memory optimization with latency constraints of
// +10% and +5% across the Table 2 workloads and all systems.
func Fig9(cfg Config, overheads []float64, ws []*models.Workload) []Fig9Row {
	cfg = cfg.defaults()
	if overheads == nil {
		overheads = []float64{0.10, 0.05}
	}
	if ws == nil {
		ws = cfg.Workloads()
	}
	var rows []Fig9Row
	for _, ovh := range overheads {
		for _, w := range ws {
			if cfg.Ctx.Err() != nil {
				return rows // interrupted: render the rows finished so far
			}
			m := cfg.Model()
			base := opt.Baseline(w.G, m)
			row := Fig9Row{
				Workload:        w.Name,
				Overhead:        ovh,
				Ratio:           make(map[string]float64),
				BaselinePeak:    base.PeakMem,
				BaselineLatency: base.Latency,
				OOM:             base.PeakMem > cfg.Device.Capacity,
			}
			limit := base.Latency * (1 + ovh)
			if res, err := magisMinMem(cfg, w, limit); err == nil {
				row.Ratio["MAGIS"] = float64(res.Best.PeakMem) / float64(base.PeakMem)
			} else {
				row.Ratio["MAGIS"] = math.NaN()
			}
			for _, name := range SystemNames[1:] {
				if cfg.Ctx.Err() != nil {
					row.Ratio[name] = math.NaN()
					continue
				}
				r := baselines.MinimizeMemUnderLatency(systemByName(name), w.G, m, limit)
				if r.OK {
					row.Ratio[name] = float64(r.PeakMem) / float64(base.PeakMem)
				} else {
					row.Ratio[name] = math.NaN()
				}
			}
			rows = append(rows, row)
		}
	}
	return rows
}

// Fig10Row is one bar group of Fig. 10: latency overheads under a peak-
// memory-ratio constraint. NaN marks FAILURE.
type Fig10Row struct {
	Workload string
	MemRatio float64
	Overhead map[string]float64
}

// Fig10 reproduces Fig. 10: latency optimization with memory constraints
// of 80% and 40% of the unoptimized peak.
func Fig10(cfg Config, ratios []float64, ws []*models.Workload) []Fig10Row {
	cfg = cfg.defaults()
	if ratios == nil {
		ratios = []float64{0.8, 0.4}
	}
	if ws == nil {
		ws = cfg.Workloads()
	}
	var rows []Fig10Row
	for _, ratio := range ratios {
		for _, w := range ws {
			if cfg.Ctx.Err() != nil {
				return rows
			}
			m := cfg.Model()
			base := opt.Baseline(w.G, m)
			limit := int64(ratio * float64(base.PeakMem))
			row := Fig10Row{Workload: w.Name, MemRatio: ratio, Overhead: make(map[string]float64)}
			if res, err := magisMinLat(cfg, w, limit); err == nil && res.Best.PeakMem <= limit {
				row.Overhead["MAGIS"] = res.Best.Latency/base.Latency - 1
			} else {
				row.Overhead["MAGIS"] = math.NaN()
			}
			for _, name := range SystemNames[1:] {
				if cfg.Ctx.Err() != nil {
					row.Overhead[name] = math.NaN()
					continue
				}
				r := systemByName(name).OptimizeMem(w.G, m, limit)
				if r.OK {
					row.Overhead[name] = r.Latency/base.Latency - 1
				} else {
					row.Overhead[name] = math.NaN()
				}
			}
			rows = append(rows, row)
		}
	}
	return rows
}

// RenderFig9 formats Fig. 9 rows as a text table.
func RenderFig9(rows []Fig9Row) string {
	cols := append([]string{"workload", "lat-ovh<"}, SystemNames...)
	var out [][]string
	for _, r := range rows {
		row := []string{r.Workload, Cell(r.Overhead, "")}
		for _, s := range SystemNames {
			row = append(row, Cell(r.Ratio[s], "OOM"))
		}
		out = append(out, row)
	}
	return FormatTable("Fig 9: memory ratio vs PyTorch (lower is better)", cols, out)
}

// RenderFig10 formats Fig. 10 rows as a text table.
func RenderFig10(rows []Fig10Row) string {
	cols := append([]string{"workload", "mem-ratio<"}, SystemNames...)
	var out [][]string
	for _, r := range rows {
		row := []string{r.Workload, Cell(r.MemRatio, "")}
		for _, s := range SystemNames {
			row = append(row, Cell(r.Overhead[s], "FAILURE"))
		}
		out = append(out, row)
	}
	return FormatTable("Fig 10: latency overhead vs PyTorch (lower is better)", cols, out)
}
