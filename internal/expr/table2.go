package expr

import (
	"fmt"

	"magis/internal/ops"
	"magis/internal/opt"
	"magis/internal/sched"
)

// Table2Row describes one evaluation workload.
type Table2Row struct {
	Name       string
	Batch      int
	DType      string
	Nodes      int
	ParamBytes int64
	Peak       int64
	Latency    float64
}

// Table2 instantiates the workloads and measures their unoptimized
// baselines (the anchor of every figure).
func Table2(cfg Config) []Table2Row {
	cfg = cfg.defaults()
	var rows []Table2Row
	for _, w := range cfg.Workloads() {
		m := cfg.Model()
		base := opt.Baseline(w.G, m)
		var params int64
		for _, v := range w.G.NodeIDs() {
			if w.G.Node(v).Op.Kind() == ops.KindParam {
				params += sched.OutDeviceBytes(w.G.Node(v))
			}
		}
		rows = append(rows, Table2Row{
			Name:       w.Name,
			Batch:      w.Batch,
			DType:      w.DType.String(),
			Nodes:      w.G.Len(),
			ParamBytes: params,
			Peak:       base.PeakMem,
			Latency:    base.Latency,
		})
	}
	return rows
}

// RenderTable2 formats the workload table.
func RenderTable2(rows []Table2Row) string {
	cols := []string{"workload", "batch", "dtype", "nodes", "params(GB)", "peak(GB)", "latency(ms)"}
	var out [][]string
	for _, r := range rows {
		out = append(out, []string{
			r.Name,
			fmt.Sprintf("%d", r.Batch),
			r.DType,
			fmt.Sprintf("%d", r.Nodes),
			fmt.Sprintf("%.2f", float64(r.ParamBytes)/(1<<30)),
			fmt.Sprintf("%.2f", float64(r.Peak)/(1<<30)),
			fmt.Sprintf("%.1f", r.Latency*1e3),
		})
	}
	return FormatTable("Table 2: evaluation workloads", cols, out)
}
