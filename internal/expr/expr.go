// Package expr is the experiment harness: one runner per table and figure
// of the paper's evaluation (§7), producing the same rows/series the paper
// reports. Runners are scale- and budget-parameterized so the full
// reproduction (cmd/magis-bench) and the fast benchmark suite
// (bench_test.go) share one code path.
package expr

import (
	"context"
	"fmt"
	"math"
	"strings"
	"time"

	"magis/internal/baselines"
	"magis/internal/cost"
	"magis/internal/models"
	"magis/internal/opt"
)

// Config controls experiment scale.
type Config struct {
	// Scale shrinks workload batch sizes ((0,1]; 1 = paper configuration).
	Scale float64
	// Budget is MAGIS's per-run search budget (the paper uses 3 minutes).
	Budget time.Duration
	// Device is the simulated accelerator (default RTX3090).
	Device *cost.Device
	// Ctx cancels in-flight optimizations (default context.Background()).
	// A cancelled run still contributes its best-so-far state, so an
	// interrupted experiment renders partial but valid rows.
	Ctx context.Context
	// Workers is the search's candidate-evaluation parallelism
	// (opt.Options.Workers; 0 = GOMAXPROCS). It changes only how fast the
	// budget is spent, not which states a given amount of search reaches.
	Workers int
	// StrictHash disables incremental WL hashing in every search
	// (opt.Options.StrictHash): the escape hatch for ruling the
	// incremental path out while debugging a suspect run.
	StrictHash bool
	// MemBudget is a soft live-memory budget for each search
	// (opt.Options.MemBudget; 0 = off): a long experiment sweep on a
	// constrained host sheds search state instead of getting OOM-killed,
	// and its rows reflect best-so-far plans.
	MemBudget int64
}

func (c Config) defaults() Config {
	if c.Scale == 0 {
		c.Scale = 1
	}
	if c.Budget == 0 {
		c.Budget = 3 * time.Second
	}
	if c.Device == nil {
		c.Device = cost.RTX3090()
	}
	if c.Ctx == nil {
		c.Ctx = context.Background()
	}
	return c
}

// Model returns a fresh cost model for the configured device.
func (c Config) Model() *cost.Model { return cost.NewModel(c.Device) }

// Workloads instantiates the Table 2 suite at the configured scale.
func (c Config) Workloads() []*models.Workload {
	return models.Table2(c.Scale)
}

// SystemNames is the comparison order used in every figure.
var SystemNames = []string{"MAGIS", "POFO", "DTR", "XLA", "TVM", "TI"}

// magisMinMem runs MAGIS in memory-minimization mode under a latency cap.
func magisMinMem(cfg Config, w *models.Workload, latLimit float64) (*opt.Result, error) {
	return opt.OptimizeCtx(cfg.ctx(), w.G, cfg.Model(), opt.Options{
		Mode:         opt.MemoryUnderLatency,
		LatencyLimit: latLimit,
		TimeBudget:   cfg.Budget,
		Workers:      cfg.Workers,
		StrictHash:   cfg.StrictHash,
		MemBudget:    cfg.MemBudget,
	})
}

// magisMinLat runs MAGIS in latency-minimization mode under a memory cap.
func magisMinLat(cfg Config, w *models.Workload, memLimit int64) (*opt.Result, error) {
	return opt.OptimizeCtx(cfg.ctx(), w.G, cfg.Model(), opt.Options{
		Mode:       opt.LatencyUnderMemory,
		MemLimit:   memLimit,
		TimeBudget: cfg.Budget,
		Workers:    cfg.Workers,
		StrictHash: cfg.StrictHash,
		MemBudget:  cfg.MemBudget,
	})
}

// ctx returns the configured context, tolerating un-defaulted Configs.
func (c Config) ctx() context.Context {
	if c.Ctx == nil {
		return context.Background()
	}
	return c.Ctx
}

// FormatTable renders rows of labelled float cells as an aligned text
// table; NaN renders as the given failure marker.
func FormatTable(title string, cols []string, rows [][]string) string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s ==\n", title)
	widths := make([]int, len(cols))
	for i, c := range cols {
		widths[i] = len(c)
	}
	for _, r := range rows {
		for i, cell := range r {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	line := func(cells []string) {
		for i, cell := range cells {
			fmt.Fprintf(&b, "%-*s  ", widths[i], cell)
		}
		b.WriteByte('\n')
	}
	line(cols)
	for _, r := range rows {
		line(r)
	}
	return b.String()
}

// Cell formats a ratio/overhead value, with markers for failures.
func Cell(v float64, marker string) string {
	if math.IsNaN(v) {
		return marker
	}
	return fmt.Sprintf("%.2f", v)
}

func systemByName(name string) baselines.Optimizer {
	switch name {
	case "POFO":
		return baselines.POFO{}
	case "DTR":
		return baselines.DTR{}
	case "XLA":
		return baselines.XLA{}
	case "TVM":
		return baselines.TVM{}
	case "TI":
		return baselines.TorchInductor{}
	}
	return nil
}
