// Package errfs is a fault-injecting fsatomic.FS: it wraps a real (or
// fake) filesystem and makes chosen operations fail with realistic
// storage errors — ENOSPC, short writes, sync failures, rename failures,
// fd exhaustion, remove failures — at deterministic operation counts.
// Like internal/faults, injection is reproducible: a (seed, rule) pair
// always fails the same operations in the same order, so a chaos failure
// replays exactly from its seed and spec string.
//
// Rules are count-based or rate-based; either way each fault class
// keeps its own counter of the operations it applies to (writes for
// ENOSPC and short writes, syncs for sync failures, renames for rename
// failures, opens for fd exhaustion, removes for remove failures). A
// counted rule fires first at operation After (1-based), then every
// Every operations after that, at most Count times; a rate rule fails
// each matching operation with probability Rate, decided by a pure
// splitmix hash of (seed, class, operation index) exactly like
// internal/faults, so a seed replays the same fault sequence. The CLI
// spec forms are "class@after[+every][#count]" and "class~rate[#count]",
// e.g. "enospc@3+2#5,renamefail@1" or "syncfail~0.25".
package errfs

import (
	"fmt"
	"os"
	"strconv"
	"strings"
	"sync"
	"syscall"

	"magis/internal/fsatomic"
)

// Class enumerates the injectable fault classes.
type Class int

const (
	// ENOSPC fails writes with syscall.ENOSPC (persistent: disk full).
	ENOSPC Class = iota
	// ShortWrite makes a write accept only half its bytes, reporting no
	// error — the torn-write case atomic replacement must mask.
	ShortWrite
	// SyncFail fails fsync with EIO: the data may or may not be durable.
	SyncFail
	// RenameFail fails the publishing rename with EIO.
	RenameFail
	// FDExhaust fails file opens (CreateTemp, ReadFile) with EMFILE
	// (transient: descriptors free up as others close).
	FDExhaust
	// RemoveFail fails removals with EIO, which is how atomic-write temp
	// cleanup itself can fail and leave debris for the startup sweep.
	RemoveFail

	numClasses
)

var classNames = [numClasses]string{
	ENOSPC:     "enospc",
	ShortWrite: "shortwrite",
	SyncFail:   "syncfail",
	RenameFail: "renamefail",
	FDExhaust:  "fdexhaust",
	RemoveFail: "removefail",
}

func (c Class) String() string {
	if c >= 0 && int(c) < len(classNames) {
		return classNames[c]
	}
	return fmt.Sprintf("class(%d)", int(c))
}

// ClassByName resolves a spec-string class name.
func ClassByName(name string) (Class, error) {
	for i, n := range classNames {
		if n == name {
			return Class(i), nil
		}
	}
	return 0, fmt.Errorf("errfs: unknown fault class %q", name)
}

// Rule schedules one class's faults against that class's own operation
// counter.
type Rule struct {
	Class Class
	// After is the 1-based index of the first matching operation that
	// fails. Zero disables the rule.
	After int
	// Every repeats the fault every Every matching operations after the
	// first; zero means the fault fires only once (unless Count says
	// otherwise, Every is what makes it recurring).
	Every int
	// Count caps how many times the rule fires; zero means unlimited
	// (given Every > 0 or Rate > 0).
	Count int
	// Rate, when > 0, replaces the counted schedule: each matching
	// operation fails with probability Rate, decided by a pure hash of
	// (seed, class, operation index). The same seed always fails the same
	// operations. After/Every are ignored; Count still caps.
	Rate float64
}

// fires reports whether the rule fails the op-th (1-based) matching
// operation, given it has already fired `fired` times under seed.
func (r Rule) fires(seed int64, op, fired int) bool {
	if r.Count > 0 && fired >= r.Count {
		return false
	}
	if r.Rate > 0 {
		return unit(mix(seed, int64(r.Class), int64(op))) < r.Rate
	}
	if r.After <= 0 || op < r.After {
		return false
	}
	if op == r.After {
		return true
	}
	return r.Every > 0 && (op-r.After)%r.Every == 0
}

// mix hashes (seed, class, op) to a uniform uint64 with a splitmix64
// finalizer — the internal/faults determinism idiom.
func mix(seed, class, op int64) uint64 {
	const salt uint64 = 0x7F4A7C15D6E8FEB8
	x := uint64(seed) ^ salt
	x += uint64(class+1) * 0x9E3779B97F4A7C15
	x += uint64(op+1) * 0xBF58476D1CE4E5B9
	z := x
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// unit maps a hash to [0,1).
func unit(h uint64) float64 { return float64(h>>11) / float64(1<<53) }

// FS wraps an underlying fsatomic.FS with fault injection. Safe for
// concurrent use; the per-class operation counters are global to the FS,
// so concurrent callers share one deterministic fault schedule only if
// their operations are themselves ordered (single-writer tests) — chaos
// sweeps that just need "faults happen" don't care.
type FS struct {
	under fsatomic.FS
	seed  int64

	mu    sync.Mutex
	rules []Rule
	ops   [numClasses]int // matching operations seen, per class
	fired [numClasses]int // faults injected, per class
}

// New wraps under (nil = the real OS filesystem) with the given rules.
// The seed only matters for Rate rules.
func New(under fsatomic.FS, seed int64, rules ...Rule) *FS {
	return &FS{under: fsatomic.Or(under), seed: seed, rules: rules}
}

// Injected returns how many faults each class has injected so far.
func (f *FS) Injected() map[Class]int {
	f.mu.Lock()
	defer f.mu.Unlock()
	m := map[Class]int{}
	for c, n := range f.fired {
		if n > 0 {
			m[Class(c)] = n
		}
	}
	return m
}

// InjectedTotal returns the total number of injected faults.
func (f *FS) InjectedTotal() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	n := 0
	for _, c := range f.fired {
		n += c
	}
	return n
}

// hit counts one operation of class c and reports whether a rule fails
// it.
func (f *FS) hit(c Class) bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.ops[c]++
	for _, r := range f.rules {
		if r.Class == c && r.fires(f.seed, f.ops[c], f.fired[c]) {
			f.fired[c]++
			return true
		}
	}
	return false
}

func (f *FS) CreateTemp(dir, pattern string) (fsatomic.File, error) {
	if f.hit(FDExhaust) {
		return nil, &os.PathError{Op: "open", Path: dir, Err: syscall.EMFILE}
	}
	file, err := f.under.CreateTemp(dir, pattern)
	if err != nil {
		return nil, err
	}
	return &faultFile{under: file, fs: f}, nil
}

func (f *FS) Rename(oldpath, newpath string) error {
	if f.hit(RenameFail) {
		return &os.LinkError{Op: "rename", Old: oldpath, New: newpath, Err: syscall.EIO}
	}
	return f.under.Rename(oldpath, newpath)
}

func (f *FS) Remove(name string) error {
	if f.hit(RemoveFail) {
		return &os.PathError{Op: "remove", Path: name, Err: syscall.EIO}
	}
	return f.under.Remove(name)
}

func (f *FS) ReadFile(name string) ([]byte, error) {
	if f.hit(FDExhaust) {
		return nil, &os.PathError{Op: "open", Path: name, Err: syscall.EMFILE}
	}
	return f.under.ReadFile(name)
}

func (f *FS) ReadDir(name string) ([]os.DirEntry, error) { return f.under.ReadDir(name) }

func (f *FS) MkdirAll(path string, perm os.FileMode) error { return f.under.MkdirAll(path, perm) }

func (f *FS) Stat(name string) (os.FileInfo, error) { return f.under.Stat(name) }

// faultFile intercepts the write-path operations of one open temp file.
type faultFile struct {
	under fsatomic.File
	fs    *FS
}

func (ff *faultFile) Write(p []byte) (int, error) {
	if ff.fs.hit(ENOSPC) {
		return 0, &os.PathError{Op: "write", Path: ff.under.Name(), Err: syscall.ENOSPC}
	}
	if ff.fs.hit(ShortWrite) && len(p) > 0 {
		n, err := ff.under.Write(p[:len(p)/2])
		if err != nil {
			return n, err
		}
		// A short write with no error: exactly what a full pipe-backed or
		// interrupted write looks like to the caller.
		return n, nil
	}
	return ff.under.Write(p)
}

func (ff *faultFile) Sync() error {
	if ff.fs.hit(SyncFail) {
		return &os.PathError{Op: "sync", Path: ff.under.Name(), Err: syscall.EIO}
	}
	return ff.under.Sync()
}

func (ff *faultFile) Chmod(mode os.FileMode) error { return ff.under.Chmod(mode) }
func (ff *faultFile) Close() error                 { return ff.under.Close() }
func (ff *faultFile) Name() string                 { return ff.under.Name() }

// ParseSpecs parses a comma-separated fault spec list. Each item is
// "class@after[+every][#count]" or "class~rate[#count]": enospc@3 fails
// the 3rd write once, "renamefail@1+2#4" fails renames 1,3,5,7, and
// "syncfail~0.25" fails a seeded-deterministic quarter of syncs. An
// empty string yields no rules.
func ParseSpecs(spec string) ([]Rule, error) {
	spec = strings.TrimSpace(spec)
	if spec == "" {
		return nil, nil
	}
	var rules []Rule
	for _, item := range strings.Split(spec, ",") {
		item = strings.TrimSpace(item)
		if item == "" {
			continue
		}
		sep := "@"
		name, rest, ok := strings.Cut(item, sep)
		if !ok {
			sep = "~"
			name, rest, ok = strings.Cut(item, sep)
		}
		if !ok {
			return nil, fmt.Errorf("errfs: spec %q: want class@after[+every][#count] or class~rate[#count]", item)
		}
		c, err := ClassByName(strings.ToLower(strings.TrimSpace(name)))
		if err != nil {
			return nil, err
		}
		r := Rule{Class: c}
		if rest, r.Count, err = cutInt(rest, "#"); err != nil {
			return nil, fmt.Errorf("errfs: spec %q: %w", item, err)
		}
		if sep == "~" {
			if r.Rate, err = strconv.ParseFloat(strings.TrimSpace(rest), 64); err != nil || r.Rate <= 0 || r.Rate > 1 {
				return nil, fmt.Errorf("errfs: spec %q: bad rate %q", item, rest)
			}
		} else {
			if rest, r.Every, err = cutInt(rest, "+"); err != nil {
				return nil, fmt.Errorf("errfs: spec %q: %w", item, err)
			}
			if r.After, err = strconv.Atoi(strings.TrimSpace(rest)); err != nil || r.After < 1 {
				return nil, fmt.Errorf("errfs: spec %q: bad after %q", item, rest)
			}
		}
		rules = append(rules, r)
	}
	return rules, nil
}

// cutInt splits "prefix<sep>n" and parses n; absent sep leaves 0.
func cutInt(s, sep string) (string, int, error) {
	head, tail, ok := strings.Cut(s, sep)
	if !ok {
		return s, 0, nil
	}
	n, err := strconv.Atoi(strings.TrimSpace(tail))
	if err != nil || n < 1 {
		return head, 0, fmt.Errorf("bad %q value %q", sep, tail)
	}
	return head, n, nil
}
