package errfs

import (
	"errors"
	"os"
	"path/filepath"
	"syscall"
	"testing"

	"magis/internal/fsatomic"
)

// TestClassesInjectExpectedErrnos drives WriteFileFS through each fault
// class and checks that the caller sees the classified sentinel (or, for
// short writes, the fsatomic short-write sentinel) while the target path
// stays untouched.
func TestClassesInjectExpectedErrnos(t *testing.T) {
	cases := []struct {
		rule Rule
		want error
	}{
		{Rule{Class: ENOSPC, After: 1}, fsatomic.ErrDiskFull},
		{Rule{Class: ShortWrite, After: 1}, fsatomic.ErrShortWrite},
		{Rule{Class: SyncFail, After: 1}, syscall.EIO},
		{Rule{Class: RenameFail, After: 1}, syscall.EIO},
		{Rule{Class: FDExhaust, After: 1}, fsatomic.ErrFDExhausted},
	}
	for _, tc := range cases {
		t.Run(tc.rule.Class.String(), func(t *testing.T) {
			dir := t.TempDir()
			fsys := New(nil, 0, tc.rule)
			path := filepath.Join(dir, "x.dat")
			err := fsatomic.WriteFileFS(fsys, path, []byte("payload"), 0o644)
			if err == nil {
				t.Fatalf("write succeeded despite %s fault", tc.rule.Class)
			}
			if !errors.Is(err, tc.want) {
				t.Fatalf("%s: error %v does not match %v", tc.rule.Class, err, tc.want)
			}
			if _, serr := os.Stat(path); !os.IsNotExist(serr) {
				t.Fatalf("%s: target exists after failed write", tc.rule.Class)
			}
			if got := fsys.InjectedTotal(); got != 1 {
				t.Fatalf("%s: injected %d faults, want 1", tc.rule.Class, got)
			}
			// After the fault is spent, writes succeed again.
			if err := fsatomic.WriteFileFS(fsys, path, []byte("payload"), 0o644); err != nil {
				t.Fatalf("%s: write after spent fault: %v", tc.rule.Class, err)
			}
		})
	}
}

// TestCountedSchedule checks the After/Every/Count arithmetic against a
// known schedule.
func TestCountedSchedule(t *testing.T) {
	r := Rule{Class: RenameFail, After: 2, Every: 3, Count: 3}
	var got []int
	fired := 0
	for op := 1; op <= 15; op++ {
		if r.fires(0, op, fired) {
			fired++
			got = append(got, op)
		}
	}
	want := []int{2, 5, 8}
	if len(got) != len(want) {
		t.Fatalf("fired at %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("fired at %v, want %v", got, want)
		}
	}
}

// TestRateDeterminism: the same seed fails the same operations; a
// different seed fails a different set; the empirical rate is sane.
func TestRateDeterminism(t *testing.T) {
	pattern := func(seed int64) []bool {
		r := Rule{Class: SyncFail, Rate: 0.3}
		var p []bool
		for op := 1; op <= 200; op++ {
			p = append(p, r.fires(seed, op, 0))
		}
		return p
	}
	a, b := pattern(7), pattern(7)
	hits := 0
	diff := false
	other := pattern(8)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at op %d", i+1)
		}
		if a[i] {
			hits++
		}
		if a[i] != other[i] {
			diff = true
		}
	}
	if hits < 30 || hits > 90 {
		t.Fatalf("rate 0.3 over 200 ops fired %d times", hits)
	}
	if !diff {
		t.Fatalf("seeds 7 and 8 produced identical fault patterns")
	}
}

func TestParseSpecs(t *testing.T) {
	rules, err := ParseSpecs(" enospc@3+2#5, renamefail@1 ,syncfail~0.25#2")
	if err != nil {
		t.Fatal(err)
	}
	want := []Rule{
		{Class: ENOSPC, After: 3, Every: 2, Count: 5},
		{Class: RenameFail, After: 1},
		{Class: SyncFail, Rate: 0.25, Count: 2},
	}
	if len(rules) != len(want) {
		t.Fatalf("got %d rules, want %d", len(rules), len(want))
	}
	for i := range want {
		if rules[i] != want[i] {
			t.Fatalf("rule %d = %+v, want %+v", i, rules[i], want[i])
		}
	}
	if r, err := ParseSpecs(""); err != nil || r != nil {
		t.Fatalf("empty spec: %v, %v", r, err)
	}
	for _, bad := range []string{"nope@1", "enospc", "enospc@0", "enospc@x", "enospc~1.5", "enospc@1+0", "enospc~0.2+3"} {
		if _, err := ParseSpecs(bad); err == nil {
			t.Fatalf("spec %q parsed without error", bad)
		}
	}
}

// TestInjectedPerClass: counters are tracked per class.
func TestInjectedPerClass(t *testing.T) {
	dir := t.TempDir()
	fsys := New(nil, 0,
		Rule{Class: ENOSPC, After: 1},
		Rule{Class: RenameFail, After: 1},
	)
	p := filepath.Join(dir, "f")
	fsatomic.WriteFileFS(fsys, p, []byte("a"), 0o644) // eats ENOSPC
	fsatomic.WriteFileFS(fsys, p, []byte("a"), 0o644) // eats RenameFail
	inj := fsys.Injected()
	if inj[ENOSPC] != 1 || inj[RenameFail] != 1 {
		t.Fatalf("injected = %v, want one ENOSPC and one RenameFail", inj)
	}
}
