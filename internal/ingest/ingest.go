// Package ingest is the trust boundary for graphs the service did not
// build itself. Everything inside the optimizer assumes well-formed
// inputs — DType.Size panics on unknown values, Shape.Elems multiplies
// without overflow checks, DimLinks indexes without bounds checks, and
// search cost is super-linear in wiring complexity — so an uploaded graph
// must earn its way in before any of that code touches it.
//
// The pipeline has two halves:
//
//   - Decode: strict JSON decoding of the graphio interchange format
//     (unknown fields rejected, one document only) plus structural
//     validation with positional errors — duplicate and dangling node
//     IDs, unregistered operator kinds, dtype allowlist, dimension and
//     rank sanity, overflow-checked shape-product byte bounds, and
//     dimension-link ranges. Accepted documents are canonicalized into a
//     graph.Graph with densely compacted IDs (bit-identical to
//     graphio.Load on the same bytes, pinned by test) and re-checked
//     against the full graph.Validate invariants.
//
//   - Preflight: a search-cost classification that rejects "search
//     bombs" — graphs whose shape would make even a single optimizer
//     expansion exceed the operator-set cost ceiling (opt.EstimateSearchTime),
//     or whose depth or fan-out is past the structural limits that keep
//     rewrite-site enumeration bounded.
//
// Every rejection is an *Error carrying a machine-readable Reason, the
// offending node's file position when one exists, and an HTTP status
// class (400 malformed, 413 too large, 422 structurally hostile), so
// front-ends answer attacks with structured verdicts instead of 5xx.
package ingest

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"strings"
	"time"

	"magis/internal/graph"
	"magis/internal/graphio"
	"magis/internal/ops"
	"magis/internal/opt"
	"magis/internal/sched"
	"magis/internal/tensor"
)

// Reason is the machine-readable rejection class carried by every
// ingestion error; clients and the chaos harness dispatch on it.
type Reason string

const (
	// ReasonSyntax: the bytes are not one well-formed JSON document.
	ReasonSyntax Reason = "syntax"
	// ReasonUnknownField: strict decoding found a field the format does
	// not define (typo or smuggling attempt — both rejected).
	ReasonUnknownField Reason = "unknown-field"
	// ReasonHeader: magic/version mismatch.
	ReasonHeader Reason = "header"
	// ReasonDuplicateID: two nodes claim the same ID.
	ReasonDuplicateID Reason = "duplicate-id"
	// ReasonDanglingInput: a node consumes an ID not declared before it.
	ReasonDanglingInput Reason = "dangling-input"
	// ReasonUnknownOp: an operator kind outside the registered catalog.
	ReasonUnknownOp Reason = "unknown-op"
	// ReasonDType: an element type outside the allowlist.
	ReasonDType Reason = "dtype"
	// ReasonBadShape: non-positive dims, absurd rank, or a shape product
	// that overflows the byte accounting.
	ReasonBadShape Reason = "bad-shape"
	// ReasonBadLink: dimension links that index outside their tensor's
	// rank or reduce axes (would crash fission's axis splitting).
	ReasonBadLink Reason = "bad-link"
	// ReasonTooLarge: over a structural budget — nodes, edges, bytes,
	// name/attr length, or the raw document size.
	ReasonTooLarge Reason = "too-large"
	// ReasonInvariant: decoded cleanly but violates a whole-graph
	// invariant (shape agreement, acyclicity, Store/Load pairing).
	ReasonInvariant Reason = "invariant"
	// ReasonSearchBomb: structurally valid but shaped to blow up the
	// optimizer — depth, fan-out, or single-expansion cost past the
	// preflight ceiling.
	ReasonSearchBomb Reason = "search-bomb"
)

// Error is a structured ingestion rejection.
type Error struct {
	// Reason classifies the rejection for machine dispatch.
	Reason Reason
	// Index is the offending node's position in the document (-1 when
	// the error is not tied to one node); ID is that node's declared ID.
	Index int
	ID    graph.NodeID
	// Detail is the human-readable specifics.
	Detail string
}

func (e *Error) Error() string {
	if e.Index >= 0 {
		return fmt.Sprintf("ingest: node %d (file index %d): %s [%s]", e.ID, e.Index, e.Detail, e.Reason)
	}
	return fmt.Sprintf("ingest: %s [%s]", e.Detail, e.Reason)
}

// HTTPStatus maps the rejection class to its response code: 413 for size
// budgets, 422 for well-formed-but-hostile shapes, 400 for everything
// malformed.
func (e *Error) HTTPStatus() int {
	switch e.Reason {
	case ReasonTooLarge:
		return 413
	case ReasonSearchBomb:
		return 422
	default:
		return 400
	}
}

// AsError unwraps an ingestion rejection from err (nil when err carries
// none).
func AsError(err error) *Error {
	var ie *Error
	if errors.As(err, &ie) {
		return ie
	}
	return nil
}

// Limits are the structural budgets Decode and Preflight enforce. Zero
// fields take the defaults below; a negative count disables that bound
// (trusted-operator escape hatch, never the serving default).
type Limits struct {
	// MaxBytes caps the raw document size Decode will buffer.
	MaxBytes int64
	// MaxNodes and MaxEdges cap graph size; search cost is super-linear
	// in both.
	MaxNodes int
	MaxEdges int
	// MaxDepth caps the longest producer chain (preflight; deep chains
	// serialize scheduling and recomputation analysis).
	MaxDepth int
	// MaxFanOut caps one tensor's consumer count (preflight; fan-out
	// multiplies rewrite-site enumeration).
	MaxFanOut int
	// MaxRank caps tensor rank; MaxTensorBytes caps one tensor's
	// footprint; MaxTotalBytes caps the sum of all output tensors.
	MaxRank        int
	MaxTensorBytes int64
	MaxTotalBytes  int64
	// MaxNameLen and MaxAttrLen cap the free-form strings.
	MaxNameLen int
	MaxAttrLen int
	// MaxExpansionCost caps the predicted wall-clock of a single search
	// expansion over the graph (preflight): a graph too big to expand
	// even once within it cannot be searched interactively at all.
	MaxExpansionCost time.Duration
}

// DefaultLimits are serviceable for every built-in workload at full
// scale while still bounding adversarial inputs.
func DefaultLimits() Limits {
	return Limits{
		MaxBytes:         64 << 20, // 64 MiB of JSON
		MaxNodes:         100_000,
		MaxEdges:         400_000,
		MaxDepth:         50_000,
		MaxFanOut:        4096,
		MaxRank:          16,
		MaxTensorBytes:   1 << 38, // 256 GiB: one tensor bigger than any device
		MaxTotalBytes:    1 << 42, // 4 TiB across the graph
		MaxNameLen:       256,
		MaxAttrLen:       1024,
		MaxExpansionCost: 30 * time.Second,
	}
}

func (l Limits) withDefaults() Limits {
	d := DefaultLimits()
	if l.MaxBytes == 0 {
		l.MaxBytes = d.MaxBytes
	}
	if l.MaxNodes == 0 {
		l.MaxNodes = d.MaxNodes
	}
	if l.MaxEdges == 0 {
		l.MaxEdges = d.MaxEdges
	}
	if l.MaxDepth == 0 {
		l.MaxDepth = d.MaxDepth
	}
	if l.MaxFanOut == 0 {
		l.MaxFanOut = d.MaxFanOut
	}
	if l.MaxRank == 0 {
		l.MaxRank = d.MaxRank
	}
	if l.MaxTensorBytes == 0 {
		l.MaxTensorBytes = d.MaxTensorBytes
	}
	if l.MaxTotalBytes == 0 {
		l.MaxTotalBytes = d.MaxTotalBytes
	}
	if l.MaxNameLen == 0 {
		l.MaxNameLen = d.MaxNameLen
	}
	if l.MaxAttrLen == 0 {
		l.MaxAttrLen = d.MaxAttrLen
	}
	if l.MaxExpansionCost == 0 {
		l.MaxExpansionCost = d.MaxExpansionCost
	}
	return l
}

// fileDoc mirrors the graphio interchange envelope exactly (same fields,
// same JSON tags) so strict decoding sees the same wire format Load
// does. The bit-identity test in this package pins the two against each
// other: any drift between this mirror and graphio's envelope fails CI.
type fileDoc struct {
	Magic    string         `json:"magic,omitempty"`
	Version  int            `json:"version"`
	Nodes    []nodeDoc      `json:"nodes"`
	Schedule []graph.NodeID `json:"schedule,omitempty"`
}

type nodeDoc struct {
	ID   graph.NodeID   `json:"id"`
	Name string         `json:"name,omitempty"`
	Op   ops.Raw        `json:"op"`
	Ins  []graph.NodeID `json:"ins,omitempty"`
}

// reject builds a node-positioned rejection.
func reject(reason Reason, pos int, id graph.NodeID, format string, args ...any) error {
	return &Error{Reason: reason, Index: pos, ID: id, Detail: fmt.Sprintf(format, args...)}
}

// rejectDoc builds a whole-document rejection.
func rejectDoc(reason Reason, format string, args ...any) error {
	return &Error{Reason: reason, Index: -1, Detail: fmt.Sprintf(format, args...)}
}

// Decode reads one untrusted graph document, validates it against lim,
// and returns the canonicalized graph (IDs compacted densely in file
// order, exactly as graphio.Load allocates them) plus the optional
// schedule. Every rejection is an *Error.
func Decode(r io.Reader, lim Limits) (*graph.Graph, sched.Schedule, error) {
	lim = lim.withDefaults()
	raw, err := readBounded(r, lim.MaxBytes)
	if err != nil {
		return nil, nil, err
	}
	dec := json.NewDecoder(bytes.NewReader(raw))
	dec.DisallowUnknownFields()
	var f fileDoc
	if err := dec.Decode(&f); err != nil {
		return nil, nil, decodeError(err)
	}
	if t, err := dec.Token(); err != io.EOF {
		return nil, nil, rejectDoc(ReasonSyntax, "trailing data after the graph document (next token %v)", t)
	}
	if f.Magic != "" && f.Magic != graphio.Magic {
		return nil, nil, rejectDoc(ReasonHeader, "not a graph document: magic %q (want %q)", f.Magic, graphio.Magic)
	}
	if f.Version != graphio.FormatVersion {
		return nil, nil, rejectDoc(ReasonHeader, "unsupported format version %d (this build reads version %d)", f.Version, graphio.FormatVersion)
	}
	if lim.MaxNodes > 0 && len(f.Nodes) > lim.MaxNodes {
		return nil, nil, rejectDoc(ReasonTooLarge, "%d nodes over the %d-node limit", len(f.Nodes), lim.MaxNodes)
	}

	g := graph.New()
	remap := make(map[graph.NodeID]graph.NodeID, len(f.Nodes))
	edges := 0
	var totalBytes int64
	for pos, n := range f.Nodes {
		if _, dup := remap[n.ID]; dup {
			return nil, nil, reject(ReasonDuplicateID, pos, n.ID, "duplicate node id")
		}
		if lim.MaxNameLen > 0 && len(n.Name) > lim.MaxNameLen {
			return nil, nil, reject(ReasonTooLarge, pos, n.ID, "name of %d bytes over the %d-byte limit", len(n.Name), lim.MaxNameLen)
		}
		outBytes, err := checkOp(pos, n, lim)
		if err != nil {
			return nil, nil, err
		}
		totalBytes += outBytes
		if lim.MaxTotalBytes > 0 && totalBytes > lim.MaxTotalBytes {
			return nil, nil, reject(ReasonTooLarge, pos, n.ID, "cumulative output footprint exceeds the %d-byte limit", lim.MaxTotalBytes)
		}
		edges += len(n.Ins)
		if lim.MaxEdges > 0 && edges > lim.MaxEdges {
			return nil, nil, reject(ReasonTooLarge, pos, n.ID, "%d+ edges over the %d-edge limit", edges, lim.MaxEdges)
		}
		ins := make([]graph.NodeID, len(n.Ins))
		for i, in := range n.Ins {
			m, ok := remap[in]
			if !ok {
				return nil, nil, reject(ReasonDanglingInput, pos, n.ID, "references undeclared input %d", in)
			}
			ins[i] = m
		}
		remap[n.ID] = g.AddNamed(n.Name, ops.FromRaw(n.Op), ins...)
	}
	var order sched.Schedule
	for _, v := range f.Schedule {
		m, ok := remap[v]
		if !ok {
			return nil, nil, rejectDoc(ReasonDanglingInput, "schedule references unknown node %d", v)
		}
		order = append(order, m)
	}
	if order != nil {
		if err := order.Validate(g); err != nil {
			return nil, nil, rejectDoc(ReasonInvariant, "schedule: %v", err)
		}
	}
	// The whole-graph invariants (shape agreement along every edge,
	// acyclicity, Store/Load pairing) are the same contract every
	// optimizer-internal graph satisfies; a decoded document gets no
	// weaker a check.
	if err := graph.Validate(g); err != nil {
		return nil, nil, rejectDoc(ReasonInvariant, "%v", err)
	}
	return g, order, nil
}

// readBounded buffers at most max+1 bytes and rejects documents past the
// cap with a too-large verdict instead of a misleading truncation error.
func readBounded(r io.Reader, max int64) ([]byte, error) {
	if max <= 0 {
		b, err := io.ReadAll(r)
		if err != nil {
			return nil, rejectDoc(ReasonSyntax, "reading document: %v", err)
		}
		return b, nil
	}
	b, err := io.ReadAll(io.LimitReader(r, max+1))
	if err != nil {
		return nil, rejectDoc(ReasonSyntax, "reading document: %v", err)
	}
	if int64(len(b)) > max {
		return nil, rejectDoc(ReasonTooLarge, "document exceeds the %d-byte limit", max)
	}
	return b, nil
}

// decodeError classifies a json.Decoder failure: unknown fields get
// their own reason (with the field name preserved), everything else is
// a syntax rejection.
func decodeError(err error) error {
	msg := err.Error()
	if strings.Contains(msg, "unknown field") {
		return rejectDoc(ReasonUnknownField, "%s", strings.TrimPrefix(msg, "json: "))
	}
	return rejectDoc(ReasonSyntax, "%s", strings.TrimPrefix(msg, "json: "))
}

// checkOp validates one node's operator payload against every local
// assumption the optimizer makes, returning the node's output footprint
// for the cumulative byte budget.
func checkOp(pos int, n nodeDoc, lim Limits) (int64, error) {
	op := n.Op
	if !ops.IsRegistered(op.Kind) {
		return 0, reject(ReasonUnknownOp, pos, n.ID, "unregistered operator kind %q", op.Kind)
	}
	if lim.MaxAttrLen > 0 && len(op.Attr) > lim.MaxAttrLen {
		return 0, reject(ReasonTooLarge, pos, n.ID, "attr of %d bytes over the %d-byte limit", len(op.Attr), lim.MaxAttrLen)
	}
	if !op.DType.Valid() {
		return 0, reject(ReasonDType, pos, n.ID, "dtype %d outside the allowlist", op.DType)
	}
	checkShape := func(what string, s tensor.Shape) (int64, error) {
		if lim.MaxRank > 0 && s.Rank() > lim.MaxRank {
			return 0, reject(ReasonBadShape, pos, n.ID, "%s rank %d over the %d limit", what, s.Rank(), lim.MaxRank)
		}
		for d, ext := range s {
			if ext < 1 {
				return 0, reject(ReasonBadShape, pos, n.ID, "%s dimension %d has extent %d, want >= 1", what, d+1, ext)
			}
		}
		b, ok := tensor.BytesChecked(s, op.DType)
		if !ok {
			return 0, reject(ReasonBadShape, pos, n.ID, "%s shape %v overflows the byte accounting", what, s)
		}
		if lim.MaxTensorBytes > 0 && b > lim.MaxTensorBytes {
			return 0, reject(ReasonTooLarge, pos, n.ID, "%s tensor of %d bytes over the %d-byte limit", what, b, lim.MaxTensorBytes)
		}
		return b, nil
	}
	outBytes, err := checkShape("output", op.Out)
	if err != nil {
		return 0, err
	}
	for i, in := range op.Ins {
		if _, err := checkShape(fmt.Sprintf("input %d", i), in); err != nil {
			return 0, err
		}
	}
	for r, ext := range op.Reduce {
		if ext < 1 {
			return 0, reject(ReasonBadShape, pos, n.ID, "reduce axis %d has extent %d, want >= 1", r+1, ext)
		}
	}
	// The node's wiring arity must match the operator's declared inputs;
	// graph.Validate would also catch this, but here the error carries
	// the file position.
	if len(n.Ins) != len(op.Ins) {
		return 0, reject(ReasonInvariant, pos, n.ID, "wires %d producers, op declares %d input shapes", len(n.Ins), len(op.Ins))
	}
	// Dimension links are indexed by input position and dereferenced
	// without bounds checks on the hot fission path; a link outside its
	// tensor's rank is a remote panic.
	if len(op.Links) != 0 && len(op.Links) != len(op.Ins) {
		return 0, reject(ReasonBadLink, pos, n.ID, "declares links for %d inputs, has %d", len(op.Links), len(op.Ins))
	}
	if len(op.Ins) > 0 && len(op.Links) == 0 {
		return 0, reject(ReasonBadLink, pos, n.ID, "declares no dimension links for %d inputs", len(op.Ins))
	}
	for i, links := range op.Links {
		rank := op.Ins[i].Rank()
		for _, lk := range links {
			if lk.In < 1 || lk.In > rank {
				return 0, reject(ReasonBadLink, pos, n.ID, "link input dim %d outside input %d rank %d", lk.In, i, rank)
			}
			switch {
			case lk.Out > 0:
				if lk.Out > op.Out.Rank() {
					return 0, reject(ReasonBadLink, pos, n.ID, "link output dim %d outside output rank %d", lk.Out, op.Out.Rank())
				}
			case lk.Out < 0:
				if -lk.Out > len(op.Reduce) {
					return 0, reject(ReasonBadLink, pos, n.ID, "link reduce axis %d outside %d reduce axes", lk.Out, len(op.Reduce))
				}
			default:
				return 0, reject(ReasonBadLink, pos, n.ID, "link output axis 0 is invalid")
			}
		}
	}
	return outBytes, nil
}

// Preflight classifies an accepted graph's search cost before any
// optimizer state is built for it: depth, fan-out, and the predicted
// wall-clock of a single expansion (the irreducible unit of search
// progress) must all fit the limits, or the graph is rejected as a
// search bomb. o carries the request's search shape (workers matter:
// expansion cost divides across them).
func Preflight(g *graph.Graph, o opt.Options, lim Limits) error {
	lim = lim.withDefaults()
	if lim.MaxFanOut > 0 {
		for _, v := range g.NodeIDs() {
			if n := len(g.Suc(v)); n > lim.MaxFanOut {
				return rejectDoc(ReasonSearchBomb, "node %d fans out to %d consumers, over the %d limit (rewrite-site enumeration is fan-out bounded)", v, n, lim.MaxFanOut)
			}
		}
	}
	if lim.MaxDepth > 0 {
		if d := depth(g); d > lim.MaxDepth {
			return rejectDoc(ReasonSearchBomb, "producer-chain depth %d over the %d limit", d, lim.MaxDepth)
		}
	}
	if lim.MaxExpansionCost > 0 {
		one := opt.EstimateSearchTime(g.Len(), opt.Options{
			TimeBudget:    -1, // uncapped: the single-expansion term is the point
			Workers:       o.Workers,
			MaxIterations: 1,
		})
		if one > lim.MaxExpansionCost {
			return rejectDoc(ReasonSearchBomb, "a single search expansion is predicted to take %v, over the %v ceiling", one, lim.MaxExpansionCost)
		}
	}
	return nil
}

// depth computes the longest producer chain (in nodes) over the DAG.
func depth(g *graph.Graph) int {
	longest := make(map[graph.NodeID]int, g.Len())
	max := 0
	for _, v := range g.Topo() {
		d := 1
		for _, in := range g.Node(v).Ins {
			if pd := longest[in]; pd+1 > d {
				d = pd + 1
			}
		}
		longest[v] = d
		if d > max {
			max = d
		}
	}
	return max
}
