package ingest

import (
	"bytes"
	"errors"
	"strings"
	"testing"
	"time"

	"magis/internal/cost"
	"magis/internal/graph"
	"magis/internal/graphio"
	"magis/internal/models"
	"magis/internal/ops"
	"magis/internal/opt"
	"magis/internal/tensor"
)

// TestDecodeMatchesLoad pins the trust boundary's fidelity contract: on
// bytes graphio.Save produced, the strict ingestion decoder and the
// legacy lenient loader build identical graphs — same node count, same
// structural hash, same schedule. Hardening must change what is
// rejected, never what an accepted graph means.
func TestDecodeMatchesLoad(t *testing.T) {
	for _, w := range models.SmallSuite() {
		var buf bytes.Buffer
		if err := graphio.Save(&buf, w.G, nil); err != nil {
			t.Fatalf("%s: save: %v", w.Name, err)
		}
		doc := buf.Bytes()
		gi, _, err := Decode(bytes.NewReader(doc), Limits{})
		if err != nil {
			t.Fatalf("%s: strict decode rejected a Save output: %v", w.Name, err)
		}
		gl, _, err := graphio.Load(bytes.NewReader(doc))
		if err != nil {
			t.Fatalf("%s: load: %v", w.Name, err)
		}
		if gi.Len() != gl.Len() {
			t.Fatalf("%s: %d nodes via ingest, %d via graphio", w.Name, gi.Len(), gl.Len())
		}
		if gi.WLHash() != gl.WLHash() {
			t.Errorf("%s: structural hash differs between ingest and graphio", w.Name)
		}
		// The canonicalized ID assignment must agree node for node.
		it, lt := gi.Topo(), gl.Topo()
		for i := range it {
			if it[i] != lt[i] {
				t.Fatalf("%s: topo order diverges at %d: %d vs %d", w.Name, i, it[i], lt[i])
			}
		}
	}
}

// TestPlanEquivalence is the acceptance pin for the whole pipeline: a
// well-formed graph admitted through ingestion optimizes to a plan
// bit-identical to the same graph admitted through the pre-ingest path,
// under fixed work (iteration-capped, single worker).
func TestPlanEquivalence(t *testing.T) {
	w := models.MLP(32, 16, 32, 10, 2)
	var buf bytes.Buffer
	if err := graphio.Save(&buf, w.G, nil); err != nil {
		t.Fatal(err)
	}
	doc := buf.Bytes()
	gi, _, err := Decode(bytes.NewReader(doc), Limits{})
	if err != nil {
		t.Fatal(err)
	}
	gl, _, err := graphio.Load(bytes.NewReader(doc))
	if err != nil {
		t.Fatal(err)
	}
	model := cost.NewModel(cost.RTX3090())
	run := func(g *graph.Graph) *opt.Result {
		base := opt.Baseline(g, model)
		res, err := opt.Optimize(g, model, opt.Options{
			MaxIterations: 30,
			Workers:       1,
			TimeBudget:    -1,
			LatencyLimit:  base.Latency * 1.10,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(gi), run(gl)
	if a.Best.PeakMem != b.Best.PeakMem {
		t.Errorf("peak memory diverges: %d via ingest, %d via graphio", a.Best.PeakMem, b.Best.PeakMem)
	}
	if a.Best.Latency != b.Best.Latency {
		t.Errorf("latency diverges: %g via ingest, %g via graphio", a.Best.Latency, b.Best.Latency)
	}
	if a.Stats.Iterations != b.Stats.Iterations {
		t.Errorf("iterations diverge: %d vs %d", a.Stats.Iterations, b.Stats.Iterations)
	}
	if a.Best.G.WLHash() != b.Best.G.WLHash() {
		t.Error("winning graphs differ structurally")
	}
}

// decodeReason runs Decode and returns the rejection's machine-readable
// reason (failing the test on acceptance or an untyped error).
func decodeReason(t *testing.T, doc string, lim Limits) *Error {
	t.Helper()
	_, _, err := Decode(strings.NewReader(doc), lim)
	if err == nil {
		t.Fatalf("hostile document accepted: %s", doc)
	}
	ie := AsError(err)
	if ie == nil {
		t.Fatalf("rejection is not a typed ingest error: %v", err)
	}
	return ie
}

func TestDecodeRejectsHostileDocuments(t *testing.T) {
	valid := `{"version":1,"nodes":[{"id":0,"op":{"kind":"Input","out":[4],"dtype":0}}]}`
	cases := []struct {
		name   string
		doc    string
		lim    Limits
		reason Reason
		status int
	}{
		{"truncated json", `{"version":1,"nodes":[{"id":0,`, Limits{}, ReasonSyntax, 400},
		{"trailing garbage", valid + `{"version":1}`, Limits{}, ReasonSyntax, 400},
		{"unknown top-level field", `{"version":1,"nodes":[],"exploit":1}`, Limits{}, ReasonUnknownField, 400},
		{"unknown node field", `{"version":1,"nodes":[{"id":0,"op":{"kind":"Input","out":[4],"dtype":0},"shell":"x"}]}`, Limits{}, ReasonUnknownField, 400},
		{"unknown op field", `{"version":1,"nodes":[{"id":0,"op":{"kind":"Input","out":[4],"dtype":0,"smuggle":[]}}]}`, Limits{}, ReasonUnknownField, 400},
		{"bad magic", `{"magic":"not-magis","version":1,"nodes":[]}`, Limits{}, ReasonHeader, 400},
		{"future version", `{"version":9,"nodes":[]}`, Limits{}, ReasonHeader, 400},
		{"duplicate id", `{"version":1,"nodes":[
			{"id":1,"op":{"kind":"Input","out":[4],"dtype":0}},
			{"id":1,"op":{"kind":"Input","out":[4],"dtype":0}}]}`, Limits{}, ReasonDuplicateID, 400},
		{"dangling input", `{"version":1,"nodes":[
			{"id":0,"op":{"kind":"ReLU","ins":[[4]],"out":[4],"dtype":0,"links":[[{"In":1,"Out":1}]]},"ins":[9]}]}`, Limits{}, ReasonDanglingInput, 400},
		{"unknown op kind", `{"version":1,"nodes":[{"id":0,"op":{"kind":"Backdoor","out":[4],"dtype":0}}]}`, Limits{}, ReasonUnknownOp, 400},
		{"unknown dtype", `{"version":1,"nodes":[{"id":0,"op":{"kind":"Input","out":[4],"dtype":200}}]}`, Limits{}, ReasonDType, 400},
		{"negative dim", `{"version":1,"nodes":[{"id":0,"op":{"kind":"Input","out":[-8],"dtype":0}}]}`, Limits{}, ReasonBadShape, 400},
		{"overflowing shape", `{"version":1,"nodes":[
			{"id":0,"op":{"kind":"Input","out":[2147483647,2147483647,2147483647],"dtype":0}}]}`, Limits{}, ReasonBadShape, 400},
		{"absurd rank", `{"version":1,"nodes":[
			{"id":0,"op":{"kind":"Input","out":[1,1,1,1,1,1,1,1,1,1,1,1,1,1,1,1,1,1,1,1],"dtype":0}}]}`, Limits{}, ReasonBadShape, 400},
		{"node bomb", `{"version":1,"nodes":[
			{"id":0,"op":{"kind":"Input","out":[4],"dtype":0}},
			{"id":1,"op":{"kind":"Input","out":[4],"dtype":0}},
			{"id":2,"op":{"kind":"Input","out":[4],"dtype":0}}]}`, Limits{MaxNodes: 2}, ReasonTooLarge, 413},
		{"tensor over byte cap", `{"version":1,"nodes":[
			{"id":0,"op":{"kind":"Input","out":[1048576],"dtype":0}}]}`, Limits{MaxTensorBytes: 1024}, ReasonTooLarge, 413},
		{"document over byte cap", valid, Limits{MaxBytes: 16}, ReasonTooLarge, 413},
		{"link outside rank", `{"version":1,"nodes":[
			{"id":0,"op":{"kind":"Input","out":[4],"dtype":0}},
			{"id":1,"op":{"kind":"ReLU","ins":[[4]],"out":[4],"dtype":0,"links":[[{"In":7,"Out":1}]]},"ins":[0]}]}`, Limits{}, ReasonBadLink, 400},
		{"missing links", `{"version":1,"nodes":[
			{"id":0,"op":{"kind":"Input","out":[4],"dtype":0}},
			{"id":1,"op":{"kind":"ReLU","ins":[[4]],"out":[4],"dtype":0},"ins":[0]}]}`, Limits{}, ReasonBadLink, 400},
		{"arity mismatch", `{"version":1,"nodes":[
			{"id":0,"op":{"kind":"Input","out":[4],"dtype":0}},
			{"id":1,"op":{"kind":"ReLU","ins":[[4]],"out":[4],"dtype":0,"links":[[{"In":1,"Out":1}]]},"ins":[0,0]}]}`, Limits{}, ReasonInvariant, 400},
		{"shape disagreement", `{"version":1,"nodes":[
			{"id":0,"op":{"kind":"Input","out":[8],"dtype":0}},
			{"id":1,"op":{"kind":"ReLU","ins":[[4]],"out":[4],"dtype":0,"links":[[{"In":1,"Out":1}]]},"ins":[0]}]}`, Limits{}, ReasonInvariant, 400},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			ie := decodeReason(t, tc.doc, tc.lim)
			if ie.Reason != tc.reason {
				t.Errorf("reason %q, want %q (error: %v)", ie.Reason, tc.reason, ie)
			}
			if ie.HTTPStatus() != tc.status {
				t.Errorf("status %d, want %d", ie.HTTPStatus(), tc.status)
			}
		})
	}
}

// TestDecodeErrorsArePositional pins that node-level rejections carry
// the node's declared ID and file position.
func TestDecodeErrorsArePositional(t *testing.T) {
	doc := `{"version":1,"nodes":[
		{"id":0,"op":{"kind":"Input","out":[4],"dtype":0}},
		{"id":7,"op":{"kind":"Input","out":[4],"dtype":99}}]}`
	ie := decodeReason(t, doc, Limits{})
	if ie.Index != 1 || ie.ID != 7 {
		t.Errorf("position (id %d, index %d), want (7, 1)", ie.ID, ie.Index)
	}
	for _, want := range []string{"node 7", "file index 1", "[dtype]"} {
		if !strings.Contains(ie.Error(), want) {
			t.Errorf("error %q missing %q", ie, want)
		}
	}
}

// TestErrorsUnwrap pins errors.As compatibility through wrapping.
func TestErrorsUnwrap(t *testing.T) {
	_, _, err := Decode(strings.NewReader("junk"), Limits{})
	wrapped := errors.Join(errors.New("context"), err)
	if AsError(wrapped) == nil {
		t.Error("typed rejection lost through wrapping")
	}
}

// fanOutGraph builds one producer feeding n consumers.
func fanOutGraph(n int) *graph.Graph {
	g := graph.New()
	x := g.Add(ops.NewInput(tensor.S(4, 4), tensor.F32))
	for i := 0; i < n; i++ {
		g.Add(ops.NewReLU(tensor.S(4, 4), tensor.F32), x)
	}
	return g
}

// chainGraph builds a producer chain of depth n.
func chainGraph(n int) *graph.Graph {
	g := graph.New()
	v := g.Add(ops.NewInput(tensor.S(4, 4), tensor.F32))
	for i := 1; i < n; i++ {
		v = g.Add(ops.NewReLU(tensor.S(4, 4), tensor.F32), v)
	}
	return g
}

func TestPreflightRejectsSearchBombs(t *testing.T) {
	cases := []struct {
		name string
		g    *graph.Graph
		lim  Limits
	}{
		{"fan-out bomb", fanOutGraph(64), Limits{MaxFanOut: 16}},
		{"depth bomb", chainGraph(64), Limits{MaxDepth: 16}},
		{"expansion-cost bomb", chainGraph(256), Limits{MaxExpansionCost: time.Nanosecond}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := Preflight(tc.g, opt.Options{Workers: 1}, tc.lim)
			ie := AsError(err)
			if ie == nil {
				t.Fatalf("bomb accepted (err=%v)", err)
			}
			if ie.Reason != ReasonSearchBomb {
				t.Errorf("reason %q, want %q", ie.Reason, ReasonSearchBomb)
			}
			if ie.HTTPStatus() != 422 {
				t.Errorf("status %d, want 422", ie.HTTPStatus())
			}
		})
	}
}

func TestPreflightAcceptsRealWorkloads(t *testing.T) {
	for _, w := range models.SmallSuite() {
		if err := Preflight(w.G, opt.Options{}, Limits{}); err != nil {
			t.Errorf("%s rejected by preflight: %v", w.Name, err)
		}
	}
}

// TestDefaultLimitsAdmitFullScaleWorkloads guards the serving defaults
// against over-tightening: every built-in workload at full scale must
// pass Decode and Preflight under DefaultLimits.
func TestDefaultLimitsAdmitFullScaleWorkloads(t *testing.T) {
	if testing.Short() {
		t.Skip("full-scale workload construction is slow")
	}
	for _, name := range models.Names() {
		w, err := models.ByName(name, 1)
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := graphio.Save(&buf, w.G, nil); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		g, _, err := Decode(&buf, Limits{})
		if err != nil {
			t.Errorf("%s rejected by default limits: %v", name, err)
			continue
		}
		if err := Preflight(g, opt.Options{}, Limits{}); err != nil {
			t.Errorf("%s rejected by preflight: %v", name, err)
		}
	}
}
