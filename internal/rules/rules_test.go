package rules

import (
	"testing"

	"magis/internal/graph"
	"magis/internal/ops"
	"magis/internal/sched"
	"magis/internal/tensor"
)

// skipNet: a producer with two consumers, one far away (remat/swap bait).
func skipNet() (*graph.Graph, map[string]graph.NodeID) {
	g := graph.New()
	sh := tensor.S(64, 64)
	x := g.AddNamed("x", ops.NewInput(sh, tensor.F32))
	a := g.AddNamed("a", ops.NewReLU(sh, tensor.F32), x)
	b := g.AddNamed("b", ops.NewGELU(sh, tensor.F32), a)
	c := g.AddNamed("c", ops.NewTanh(sh, tensor.F32), b)
	d := g.AddNamed("d", ops.NewAdd(sh, sh, tensor.F32), c, a) // a reused late
	return g, map[string]graph.NodeID{"x": x, "a": a, "b": b, "c": c, "d": d}
}

func allHot(g *graph.Graph) graph.Set { return graph.NewSet(g.NodeIDs()...) }

func validAll(t *testing.T, apps []Application) {
	t.Helper()
	for _, app := range apps {
		if err := sched.Schedule(app.Graph.Topo()).Validate(app.Graph); err != nil {
			t.Errorf("%s produced invalid graph: %v", app.Rule, err)
		}
		if len(app.OldMutated) == 0 {
			t.Errorf("%s reported no mutated nodes", app.Rule)
		}
	}
}

func TestRematCreatesDuplicate(t *testing.T) {
	g, n := skipNet()
	ctx := &Context{Hot: allHot(g), UseHotFilter: true}
	apps := (RematRule{}).Apply(g, ctx)
	validAll(t, apps)
	found := false
	for _, app := range apps {
		ng := app.Graph
		if ng.Len() != g.Len()+1 {
			continue
		}
		// d must now consume a recomputed copy of a, not a itself.
		for _, p := range ng.Pre(n["d"]) {
			if p != n["a"] && ng.Node(p).Op.Kind() == "ReLU" {
				found = true
				if got := ng.Pre(p); len(got) != 1 || got[0] != n["x"] {
					t.Errorf("duplicate has wrong inputs: %v", got)
				}
			}
		}
	}
	if !found {
		t.Error("no remat application detached d from a")
	}
}

func TestRematHotFilter(t *testing.T) {
	g, _ := skipNet()
	ctx := &Context{Hot: graph.Set{}, UseHotFilter: true}
	if apps := (RematRule{}).Apply(g, ctx); len(apps) != 0 {
		t.Errorf("cold tensors rematerialized: %d apps", len(apps))
	}
	ctx = &Context{Hot: graph.Set{}, UseHotFilter: false}
	if apps := (RematRule{}).Apply(g, ctx); len(apps) == 0 {
		t.Error("naive mode should ignore the hot filter")
	}
}

func TestDeRematInvertsRemat(t *testing.T) {
	g, _ := skipNet()
	ctx := &Context{Hot: allHot(g), UseHotFilter: true}
	apps := (RematRule{}).Apply(g, ctx)
	if len(apps) == 0 {
		t.Fatal("no remat sites")
	}
	g2 := apps[0].Graph
	ctx2 := &Context{Hot: allHot(g2), UseHotFilter: true}
	inv := (DeRematRule{}).Apply(g2, ctx2)
	validAll(t, inv)
	found := false
	for _, app := range inv {
		if app.Graph.WLHash() == g.WLHash() {
			found = true
		}
	}
	if !found {
		t.Error("de-remat did not recover the original graph")
	}
}

func TestSwapInsertsStoreLoad(t *testing.T) {
	g, n := skipNet()
	ctx := &Context{Hot: graph.NewSet(n["a"]), UseHotFilter: true}
	apps := (SwapRule{}).Apply(g, ctx)
	validAll(t, apps)
	if len(apps) == 0 {
		t.Fatal("no swap sites")
	}
	ng := apps[0].Graph
	var stores, loads int
	for _, v := range ng.NodeIDs() {
		switch ng.Node(v).Op.Kind() {
		case ops.KindStore:
			stores++
		case ops.KindLoad:
			loads++
		}
	}
	if stores != 1 || loads != 1 {
		t.Errorf("stores=%d loads=%d, want 1/1", stores, loads)
	}
}

func TestSwapOncePerTensor(t *testing.T) {
	g, n := skipNet()
	ctx := &Context{Hot: graph.NewSet(n["a"]), UseHotFilter: true}
	apps := (SwapRule{}).Apply(g, ctx)
	g2 := apps[0].Graph
	ctx2 := &Context{Hot: graph.NewSet(n["a"]), UseHotFilter: true}
	for _, app := range (SwapRule{}).Apply(g2, ctx2) {
		for _, v := range app.OldMutated {
			if v == n["a"] {
				t.Error("tensor swapped twice")
			}
		}
	}
}

func TestDeSwapInvertsSwap(t *testing.T) {
	g, n := skipNet()
	ctx := &Context{Hot: graph.NewSet(n["a"]), UseHotFilter: true}
	apps := (SwapRule{}).Apply(g, ctx)
	if len(apps) == 0 {
		t.Fatal("no swap sites")
	}
	g2 := apps[0].Graph
	inv := (DeSwapRule{}).Apply(g2, &Context{Hot: allHot(g2)})
	validAll(t, inv)
	found := false
	for _, app := range inv {
		if app.Graph.WLHash() == g.WLHash() {
			found = true
		}
	}
	if !found {
		t.Error("de-swap did not recover the original graph")
	}
}

func TestCoverBlocksRules(t *testing.T) {
	g, n := skipNet()
	cover := graph.NewSet(n["a"], n["b"], n["c"], n["d"])
	ctx := &Context{Hot: allHot(g), Cover: cover, UseHotFilter: true}
	if apps := (RematRule{}).Apply(g, ctx); len(apps) != 0 {
		t.Error("remat inside fission cover")
	}
	if apps := (SwapRule{}).Apply(g, ctx); len(apps) != 0 {
		t.Error("swap inside fission cover")
	}
}

func TestMergeMatmuls(t *testing.T) {
	g := graph.New()
	x := g.Add(ops.NewInput(tensor.S(8, 16), tensor.F32))
	w1 := g.Add(ops.NewParam(tensor.S(16, 32), tensor.F32))
	w2 := g.Add(ops.NewParam(tensor.S(16, 48), tensor.F32))
	m1 := g.Add(ops.NewMatmul(tensor.S(8, 16), tensor.S(16, 32), false, false, tensor.F32), x, w1)
	m2 := g.Add(ops.NewMatmul(tensor.S(8, 16), tensor.S(16, 48), false, false, tensor.F32), x, w2)
	r1 := g.Add(ops.NewReLU(tensor.S(8, 32), tensor.F32), m1)
	r2 := g.Add(ops.NewReLU(tensor.S(8, 48), tensor.F32), m2)
	_, _ = r1, r2
	apps := (MergeMatmulsRule{}).Apply(g, &Context{})
	validAll(t, apps)
	if len(apps) != 1 {
		t.Fatalf("apps = %d, want 1", len(apps))
	}
	ng := apps[0].Graph
	// One big matmul [8,80] must exist; consumers see sliced [8,32]/[8,48].
	foundBig := false
	for _, v := range ng.NodeIDs() {
		if ng.Node(v).Op.Kind() == ops.KindMatmul {
			if ng.Node(v).Op.OutShape().Equal(tensor.S(8, 80)) {
				foundBig = true
			} else {
				t.Errorf("stray matmul %v", ng.Node(v).Op.OutShape())
			}
		}
	}
	if !foundBig {
		t.Error("merged matmul missing")
	}
	if got := ng.Node(ng.Pre(r1)[0]).Op.Kind(); got != ops.KindSlice {
		t.Errorf("r1 input = %s, want Slice", got)
	}
}

func TestSliceConcatElim(t *testing.T) {
	g := graph.New()
	sh := tensor.S(8, 64)
	x := g.Add(ops.NewInput(sh, tensor.F32))
	s1 := g.Add(ops.NewSlice(sh, 2, 0, 32, tensor.F32), x)
	s2 := g.Add(ops.NewSlice(sh, 2, 32, 32, tensor.F32), x)
	c := g.Add(ops.NewConcat([]tensor.Shape{tensor.S(8, 32), tensor.S(8, 32)}, 2, tensor.F32), s1, s2)
	y := g.Add(ops.NewReLU(sh, tensor.F32), c)
	_ = y
	apps := (SliceConcatElimRule{}).Apply(g, &Context{})
	validAll(t, apps)
	if len(apps) != 1 {
		t.Fatalf("apps = %d, want 1", len(apps))
	}
	ng := apps[0].Graph
	if got := ng.Pre(y); len(got) != 1 || got[0] != x {
		t.Errorf("y should read x directly, got %v", got)
	}
	if ng.Len() != 2 {
		t.Errorf("dead slices not removed: %d nodes", ng.Len())
	}
}

func TestSliceConcatElimRejectsWrongOrder(t *testing.T) {
	g := graph.New()
	sh := tensor.S(8, 64)
	x := g.Add(ops.NewInput(sh, tensor.F32))
	s1 := g.Add(ops.NewSlice(sh, 2, 0, 32, tensor.F32), x)
	s2 := g.Add(ops.NewSlice(sh, 2, 32, 32, tensor.F32), x)
	// Reversed order: semantically a permutation, must NOT be eliminated.
	c := g.Add(ops.NewConcat([]tensor.Shape{tensor.S(8, 32), tensor.S(8, 32)}, 2, tensor.F32), s2, s1)
	g.Add(ops.NewReLU(sh, tensor.F32), c)
	if apps := (SliceConcatElimRule{}).Apply(g, &Context{}); len(apps) != 0 {
		t.Error("out-of-order concat eliminated")
	}
}

func TestAllRulesDeterministic(t *testing.T) {
	g, _ := skipNet()
	ctx := &Context{Hot: allHot(g), UseHotFilter: true}
	for _, r := range All() {
		a1 := r.Apply(g, ctx)
		a2 := r.Apply(g, ctx)
		if len(a1) != len(a2) {
			t.Fatalf("%s nondeterministic count", r.Name())
		}
		for i := range a1 {
			if a1[i].Graph.WLHash() != a2[i].Graph.WLHash() {
				t.Errorf("%s nondeterministic at %d", r.Name(), i)
			}
		}
	}
}

func TestRematChainDuplicatesProducers(t *testing.T) {
	// Chains need non-anchor producers between anchors: x -> p1 -> a (anchor)
	// -> p2 -> b (anchor) -> c, with a and b reused by late consumers.
	g := graph.New()
	sh := tensor.S(64, 64)
	x := g.AddNamed("x", ops.NewInput(sh, tensor.F32))
	p1 := g.AddNamed("p1", ops.NewScale(sh, tensor.F32), x)
	a := g.AddNamed("a", ops.NewReLU(sh, tensor.F32), p1)
	p2 := g.AddNamed("p2", ops.NewScale(sh, tensor.F32), a)
	b := g.AddNamed("b", ops.NewGELU(sh, tensor.F32), p2)
	c := g.AddNamed("c", ops.NewTanh(sh, tensor.F32), b)
	d := g.AddNamed("d", ops.NewAdd(sh, sh, tensor.F32), c, b) // b reused
	e := g.AddNamed("e", ops.NewAdd(sh, sh, tensor.F32), d, a) // a reused
	_ = e
	ctx := &Context{Hot: allHot(g), UseHotFilter: true}
	apps := (RematChainRule{}).Apply(g, ctx)
	validAll(t, apps)
	if len(apps) == 0 {
		t.Fatal("no chain applications")
	}
	// Find a composite (both anchors) application: a and b are anchors, so
	// their chains stop at each other and duplicates must chain.
	for _, app := range apps {
		if app.Rule != "RematChainBatch" {
			continue
		}
		ng := app.Graph
		// e must no longer read the original a.
		readsOriginal := false
		for _, p := range ng.Pre(e) {
			if p == a {
				readsOriginal = true
			}
		}
		if readsOriginal {
			t.Error("composite did not rewire e away from a")
		}
	}
}

func TestSwapBatchComposite(t *testing.T) {
	g := graph.New()
	sh := tensor.S(64, 64)
	x := g.Add(ops.NewInput(sh, tensor.F32))
	var reused []graph.NodeID
	h := x
	for i := 0; i < 4; i++ {
		h = g.Add(ops.NewGELU(sh, tensor.F32), h)
		reused = append(reused, h)
	}
	for _, r := range reused {
		h = g.Add(ops.NewAdd(sh, sh, tensor.F32), h, r)
	}
	ctx := &Context{Hot: allHot(g), UseHotFilter: true, MaxSites: 2}
	apps := (SwapRule{}).Apply(g, ctx)
	validAll(t, apps)
	var batch *Application
	for i := range apps {
		if apps[i].Rule == "SwapBatch" {
			batch = &apps[i]
		}
	}
	if batch == nil {
		t.Fatal("no SwapBatch composite")
	}
	stores := 0
	for _, v := range batch.Graph.NodeIDs() {
		if ops.IsStore(batch.Graph.Node(v).Op.Kind()) {
			stores++
		}
	}
	if stores < 2 {
		t.Errorf("composite should swap several tensors, got %d stores", stores)
	}
}

func TestCompositeRespectsMaxSitesForSingles(t *testing.T) {
	g := graph.New()
	sh := tensor.S(8, 8)
	x := g.Add(ops.NewInput(sh, tensor.F32))
	var reused []graph.NodeID
	h := x
	for i := 0; i < 6; i++ {
		h = g.Add(ops.NewGELU(sh, tensor.F32), h)
		reused = append(reused, h)
	}
	for _, r := range reused {
		h = g.Add(ops.NewAdd(sh, sh, tensor.F32), h, r)
	}
	ctx := &Context{Hot: allHot(g), UseHotFilter: true, MaxSites: 2}
	singles := 0
	for _, app := range (SwapRule{}).Apply(g, ctx) {
		if app.Rule == "Swap" {
			singles++
		}
	}
	if singles > 2 {
		t.Errorf("MaxSites ignored: %d single applications", singles)
	}
}

func TestMergeConvs(t *testing.T) {
	g := graph.New()
	x := g.Add(ops.NewInput(tensor.S(2, 3, 16, 16), tensor.F32))
	w1 := g.Add(ops.NewParam(tensor.S(8, 3, 3, 3), tensor.F32))
	w2 := g.Add(ops.NewParam(tensor.S(4, 3, 3, 3), tensor.F32))
	c1 := g.Add(ops.NewConv2d(tensor.S(2, 3, 16, 16), tensor.S(8, 3, 3, 3), 1, 1, tensor.F32), x, w1)
	c2 := g.Add(ops.NewConv2d(tensor.S(2, 3, 16, 16), tensor.S(4, 3, 3, 3), 1, 1, tensor.F32), x, w2)
	r1 := g.Add(ops.NewReLU(tensor.S(2, 8, 16, 16), tensor.F32), c1)
	r2 := g.Add(ops.NewReLU(tensor.S(2, 4, 16, 16), tensor.F32), c2)
	_, _ = r1, r2
	apps := (MergeConvsRule{}).Apply(g, &Context{})
	validAll(t, apps)
	if len(apps) != 1 {
		t.Fatalf("apps = %d, want 1", len(apps))
	}
	ng := apps[0].Graph
	found := false
	for _, v := range ng.NodeIDs() {
		if ng.Node(v).Op.Kind() == ops.KindConv2d {
			if !ng.Node(v).Op.OutShape().Equal(tensor.S(2, 12, 16, 16)) {
				t.Errorf("merged conv shape %v", ng.Node(v).Op.OutShape())
			}
			found = true
		}
	}
	if !found {
		t.Error("merged conv missing")
	}
	if got := ng.Node(ng.Pre(r2)[0]).Op.Kind(); got != ops.KindSlice {
		t.Errorf("r2 input = %s, want Slice", got)
	}
}

func TestMergeConvsRejectsMismatchedKernels(t *testing.T) {
	g := graph.New()
	x := g.Add(ops.NewInput(tensor.S(2, 3, 16, 16), tensor.F32))
	w1 := g.Add(ops.NewParam(tensor.S(8, 3, 3, 3), tensor.F32))
	w2 := g.Add(ops.NewParam(tensor.S(4, 3, 1, 1), tensor.F32)) // 1x1 vs 3x3
	g.Add(ops.NewConv2d(tensor.S(2, 3, 16, 16), tensor.S(8, 3, 3, 3), 1, 1, tensor.F32), x, w1)
	g.Add(ops.NewConv2d(tensor.S(2, 3, 16, 16), tensor.S(4, 3, 1, 1), 1, 0, tensor.F32), x, w2)
	if apps := (MergeConvsRule{}).Apply(g, &Context{}); len(apps) != 0 {
		t.Error("mismatched convolutions merged")
	}
}

func TestAddReassoc(t *testing.T) {
	g := graph.New()
	sh := tensor.S(8)
	a := g.Add(ops.NewInput(sh, tensor.F32))
	b := g.Add(ops.NewInput(sh, tensor.F32))
	c := g.Add(ops.NewInput(sh, tensor.F32))
	inner := g.Add(ops.NewAdd(sh, sh, tensor.F32), a, b)
	top := g.Add(ops.NewAdd(sh, sh, tensor.F32), inner, c)
	sink := g.Add(ops.NewReLU(sh, tensor.F32), top)
	apps := (AddReassocRule{}).Apply(g, &Context{})
	validAll(t, apps)
	if len(apps) != 1 {
		t.Fatalf("apps = %d, want 1", len(apps))
	}
	ng := apps[0].Graph
	if ng.Len() != g.Len() {
		t.Errorf("reassociation changed node count: %d vs %d", ng.Len(), g.Len())
	}
	// sink now reads Add(a, Add(b, c)).
	rot := ng.Pre(sink)[0]
	if ins := ng.Node(rot).Ins; ins[0] != a {
		t.Errorf("rotated tree should lead with a, got %v", ins)
	}
}

func TestAddReassocSkipsSharedInner(t *testing.T) {
	g := graph.New()
	sh := tensor.S(8)
	a := g.Add(ops.NewInput(sh, tensor.F32))
	b := g.Add(ops.NewInput(sh, tensor.F32))
	c := g.Add(ops.NewInput(sh, tensor.F32))
	inner := g.Add(ops.NewAdd(sh, sh, tensor.F32), a, b)
	g.Add(ops.NewAdd(sh, sh, tensor.F32), inner, c)
	g.Add(ops.NewReLU(sh, tensor.F32), inner) // second consumer
	if apps := (AddReassocRule{}).Apply(g, &Context{}); len(apps) != 0 {
		t.Error("shared inner Add rotated (would duplicate work)")
	}
}
