package rules

import (
	"fmt"

	"magis/internal/graph"
	"magis/internal/ops"
	"magis/internal/tensor"
)

// MergeMatmulsRule is the Aggregation Transformation of Fig. 1(a): two
// Matmuls sharing the same left operand are fused into a single Matmul
// against the concatenated weights, followed by Slices. It trades a larger
// temporary (better hardware utilization, lower latency) for memory.
type MergeMatmulsRule struct{}

// Name implements Rule.
func (MergeMatmulsRule) Name() string { return "MergeMatmuls" }

// Apply implements Rule.
func (MergeMatmulsRule) Apply(g *graph.Graph, ctx *Context) []Application {
	var out []Application
	for _, x := range g.NodeIDs() {
		if len(out) >= ctx.maxSites() {
			break
		}
		// Find two NN-Matmul consumers using x as their left operand.
		var mms []graph.NodeID
		for _, c := range g.Suc(x) {
			n := g.Node(c)
			spec, ok := n.Op.(*ops.Spec)
			if !ok || spec.Kind() != ops.KindMatmul || spec.Attr() != "NN" {
				continue
			}
			if len(n.Ins) == 2 && n.Ins[0] == x {
				mms = append(mms, c)
			}
		}
		if len(mms) < 2 {
			continue
		}
		m1, m2 := mms[0], mms[1]
		if ctx.blocked(x, m1, m2) {
			continue
		}
		w1 := g.Node(m1).Ins[1]
		w2 := g.Node(m2).Ins[1]
		if w1 == w2 || ctx.blocked(w1, w2) {
			continue
		}
		s1 := g.Node(m1).Op.(*ops.Spec)
		s2 := g.Node(m2).Op.(*ops.Spec)
		if s1.DType() != s2.DType() {
			continue
		}
		wa, wb := s1.InShape(1), s2.InShape(1)
		n1, n2 := wa.Dim(2), wb.Dim(2)
		dt := s1.DType()
		ng := ctx.clone(g)
		wc := ng.Add(ops.NewConcat([]tensor.Shape{wa, wb}, 2, dt), w1, w2)
		xs := s1.InShape(0)
		mm := ng.Add(ops.NewMatmul(xs, tensor.S(wa.Dim(1), n1+n2), false, false, dt), x, wc)
		mmShape := tensor.S(xs.Dim(1), n1+n2)
		o1 := ng.Add(ops.NewSlice(mmShape, 2, 0, n1, dt), mm)
		o2 := ng.Add(ops.NewSlice(mmShape, 2, n1, n2, dt), mm)
		ng.RedirectConsumers(m1, o1)
		ng.RedirectConsumers(m2, o2)
		if err := ng.Remove(m1); err != nil {
			continue
		}
		if err := ng.Remove(m2); err != nil {
			continue
		}
		out = append(out, Application{ng, []graph.NodeID{x, m1, m2, w1, w2}, "MergeMatmuls"})
	}
	return out
}

// SliceConcatElimRule is an Interim Transformation: a Concat whose inputs
// are contiguous slices of one tensor, in order, is the tensor itself.
// It cleans up compositions left behind by aggregation and fission.
type SliceConcatElimRule struct{}

// Name implements Rule.
func (SliceConcatElimRule) Name() string { return "SliceConcatElim" }

// Apply implements Rule.
func (SliceConcatElimRule) Apply(g *graph.Graph, ctx *Context) []Application {
	var out []Application
	for _, c := range g.NodeIDs() {
		if len(out) >= ctx.maxSites() {
			break
		}
		n := g.Node(c)
		spec, ok := n.Op.(*ops.Spec)
		if !ok || spec.Kind() != ops.KindConcat || len(n.Ins) < 2 {
			continue
		}
		var concatDim, concatN int
		if _, err := fmt.Sscanf(spec.Attr(), "d%d,n%d", &concatDim, &concatN); err != nil {
			continue
		}
		// All inputs must be slices of one source, contiguous and in order
		// along the concat dimension.
		var src graph.NodeID = graph.Invalid
		offset := 0
		valid := true
		for _, in := range n.Ins {
			sn := g.Node(in)
			ss, ok := sn.Op.(*ops.Spec)
			if !ok || len(sn.Ins) != 1 {
				valid = false
				break
			}
			dim, start, length, ok := ops.ParseSliceAttr(ss)
			if !ok || dim != concatDim || start != offset {
				valid = false
				break
			}
			offset += length
			if src == graph.Invalid {
				src = sn.Ins[0]
			} else if sn.Ins[0] != src {
				valid = false
				break
			}
		}
		if !valid || src == graph.Invalid {
			continue
		}
		if !g.Node(src).Op.OutShape().Equal(spec.OutShape()) {
			continue
		}
		if ctx.blocked(append([]graph.NodeID{c, src}, n.Ins...)...) {
			continue
		}
		ng := ctx.clone(g)
		ng.RedirectConsumers(c, src)
		if err := ng.Remove(c); err != nil {
			continue
		}
		// Anchor liveness at the ORIGINAL outputs (with c replaced by src)
		// so the now-unconsumed slices do not masquerade as outputs.
		var keep []graph.NodeID
		for _, o := range g.Outputs() {
			if o == c {
				o = src
			}
			if ng.Has(o) {
				keep = append(keep, o)
			}
		}
		ng.RemoveDead(keep)
		out = append(out, Application{ng, append([]graph.NodeID{c, src}, n.Ins...), "SliceConcatElim"})
	}
	return out
}

// MergeConvsRule is the convolutional Aggregation Transformation of
// Fig. 1(a)'s right-hand example: two Conv2d operators sharing the same
// input and hyper-parameters fuse into a single convolution over the
// concatenated filters, followed by channel Slices.
type MergeConvsRule struct{}

// Name implements Rule.
func (MergeConvsRule) Name() string { return "MergeConvs" }

// Apply implements Rule.
func (MergeConvsRule) Apply(g *graph.Graph, ctx *Context) []Application {
	var out []Application
	for _, x := range g.NodeIDs() {
		if len(out) >= ctx.maxSites() {
			break
		}
		var convs []graph.NodeID
		for _, c := range g.Suc(x) {
			n := g.Node(c)
			spec, ok := n.Op.(*ops.Spec)
			if !ok || spec.Kind() != ops.KindConv2d {
				continue
			}
			if len(n.Ins) == 2 && n.Ins[0] == x {
				convs = append(convs, c)
			}
		}
		if len(convs) < 2 {
			continue
		}
		c1, c2 := convs[0], convs[1]
		s1 := g.Node(c1).Op.(*ops.Spec)
		s2 := g.Node(c2).Op.(*ops.Spec)
		if s1.Attr() != s2.Attr() || s1.DType() != s2.DType() {
			continue
		}
		w1sh, w2sh := s1.InShape(1), s2.InShape(1)
		// Kernels must agree except in output channels.
		if w1sh[1] != w2sh[1] || w1sh[2] != w2sh[2] || w1sh[3] != w2sh[3] {
			continue
		}
		w1, w2 := g.Node(c1).Ins[1], g.Node(c2).Ins[1]
		if w1 == w2 || ctx.blocked(x, c1, c2, w1, w2) {
			continue
		}
		stride, pad := 0, 0
		fmt.Sscanf(s1.Attr(), "s%dp%d", &stride, &pad)
		dt := s1.DType()
		k1, k2 := w1sh.Dim(1), w2sh.Dim(1)
		ng := ctx.clone(g)
		wc := ng.Add(ops.NewConcat([]tensor.Shape{w1sh, w2sh}, 1, dt), w1, w2)
		big := ng.Add(ops.NewConv2d(s1.InShape(0), ng.Node(wc).Op.OutShape(), stride, pad, dt), x, wc)
		bigSh := ng.Node(big).Op.OutShape()
		o1 := ng.Add(ops.NewSlice(bigSh, 2, 0, k1, dt), big)
		o2 := ng.Add(ops.NewSlice(bigSh, 2, k1, k2, dt), big)
		ng.RedirectConsumers(c1, o1)
		ng.RedirectConsumers(c2, o2)
		if err := ng.Remove(c1); err != nil {
			continue
		}
		if err := ng.Remove(c2); err != nil {
			continue
		}
		out = append(out, Application{ng, []graph.NodeID{x, c1, c2, w1, w2}, "MergeConvs"})
	}
	return out
}

// AddReassocRule is the Interim Transformation of Fig. 1(b): it rotates an
// Add tree, Add(Add(a, b), c) -> Add(a, Add(b, c)), exposing different
// aggregation and fission opportunities without changing semantics.
type AddReassocRule struct{}

// Name implements Rule.
func (AddReassocRule) Name() string { return "AddReassoc" }

// Apply implements Rule.
func (AddReassocRule) Apply(g *graph.Graph, ctx *Context) []Application {
	var out []Application
	for _, top := range g.NodeIDs() {
		if len(out) >= ctx.maxSites() {
			break
		}
		tn := g.Node(top)
		if tn.Op.Kind() != "Add" || len(tn.Ins) != 2 {
			continue
		}
		inner := tn.Ins[0]
		c := tn.Ins[1]
		innerN := g.Node(inner)
		if innerN.Op.Kind() != "Add" || len(innerN.Ins) != 2 {
			continue
		}
		// The inner Add must have no other consumers, or rotating it would
		// duplicate work.
		if g.NumConsumers(inner) != 1 {
			continue
		}
		a, b := innerN.Ins[0], innerN.Ins[1]
		if ctx.blocked(top, inner, a, b, c) {
			continue
		}
		spec := tn.Op.(*ops.Spec)
		sh, dt := spec.OutShape(), spec.DType()
		ng := ctx.clone(g)
		right := ng.Add(ops.NewAdd(sh, sh, dt), b, c)
		rot := ng.Add(ops.NewAdd(sh, sh, dt), a, right)
		ng.RedirectConsumers(top, rot)
		if err := ng.Remove(top); err != nil {
			continue
		}
		if err := ng.Remove(inner); err != nil {
			continue
		}
		out = append(out, Application{ng, []graph.NodeID{top, inner, a, b, c}, "AddReassoc"})
	}
	return out
}
