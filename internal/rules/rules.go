// Package rules implements M-Rules (§5): the transformation catalog the
// optimizer explores. It contains the scheduling-based rules that decompose
// graph scheduling into graph transformation (Re-materialization, Swapping,
// and their duals, §5.2) and a subset of TASO-style rules (Aggregation and
// Interim transformations, §2.2). F-Tree mutation rules live in
// internal/ftree; internal/opt unifies all three families into one search
// space.
package rules

import (
	"fmt"
	"sort"

	"magis/internal/graph"
	"magis/internal/ops"
)

// Application is one concrete rule application: a transformed copy of the
// graph plus the set of original-graph nodes the transformation touched
// (consumed by incremental scheduling, Algorithm 2).
type Application struct {
	Graph      *graph.Graph
	OldMutated []graph.NodeID
	Rule       string
}

// Site describes where the application rewrote the graph, for diagnostics
// when a candidate later fails: the concrete rule variant (which can be a
// composite like "SwapBatch", distinct from the catalog rule that produced
// it) and the touched original-graph nodes.
func (a Application) Site() string {
	ids := a.OldMutated
	const maxIDs = 8
	suffix := ""
	if len(ids) > maxIDs {
		suffix = fmt.Sprintf(" +%d more", len(ids)-maxIDs)
		ids = ids[:maxIDs]
	}
	return fmt.Sprintf("%s@%v%s", a.Rule, ids, suffix)
}

// Context carries the per-state information rules use to filter sites.
type Context struct {
	// Hot is the memory hot-spot set of the current schedule. With
	// UseHotFilter, re-mat and swap rules only target hot tensors (§5.2's
	// heuristic).
	Hot graph.Set
	// Cover is the union of sub-graphs owned by enabled F-Tree nodes;
	// rules must not transform nodes inside it (§3).
	Cover graph.Set
	// MaxSites caps applications per rule (default 8).
	MaxSites int
	// UseHotFilter enables the hot-spot site filter; disabling it is the
	// naive-sch-rule ablation of §7.2.5.
	UseHotFilter bool
	// CloneGraph, when set, supplies the transformed-graph shell for each
	// application from the caller's recycler instead of the allocator. The
	// returned graph must be a deep copy of its argument with no storage
	// shared with any live graph; rules own it outright. Nil falls back to
	// graph.Clone.
	CloneGraph func(*graph.Graph) *graph.Graph
}

// clone produces the writable copy an application mutates, routed through
// CloneGraph when the optimizer supplied a recycler.
func (c *Context) clone(g *graph.Graph) *graph.Graph {
	if c != nil && c.CloneGraph != nil {
		return c.CloneGraph(g)
	}
	return g.Clone()
}

func (c *Context) maxSites() int {
	if c.MaxSites > 0 {
		return c.MaxSites
	}
	return 4
}

func (c *Context) blocked(ids ...graph.NodeID) bool {
	for _, id := range ids {
		if c.Cover[id] {
			return true
		}
	}
	return false
}

func (c *Context) isHot(id graph.NodeID) bool {
	return !c.UseHotFilter || c.Hot[id]
}

// Rule is one rewrite family.
type Rule interface {
	// Name identifies the rule in statistics.
	Name() string
	// Apply enumerates bounded, deterministic applications on g.
	Apply(g *graph.Graph, ctx *Context) []Application
}

// All returns the full rule catalog in a deterministic order.
func All() []Rule {
	return []Rule{
		RematRule{},
		RematChainRule{},
		DeRematRule{},
		SwapRule{},
		DeSwapRule{},
		MergeMatmulsRule{},
		MergeConvsRule{},
		AddReassocRule{},
		SliceConcatElimRule{},
	}
}

// SchedulingRules returns only the §5.2 scheduling-based rules.
func SchedulingRules() []Rule {
	return []Rule{RematRule{}, RematChainRule{}, DeRematRule{}, SwapRule{}, DeSwapRule{}}
}

// rematerializable reports whether v's operator may be recomputed.
func rematerializable(g *graph.Graph, v graph.NodeID) bool {
	n := g.Node(v)
	if _, ok := n.Op.(*ops.Spec); !ok {
		return false // collapsed regions and foreign payloads stay put
	}
	k := n.Op.Kind()
	return !ops.IsLeaf(k) && !ops.IsTransfer(k) && len(n.Ins) > 0
}

// RematRule separates one consumer B from a multi-consumer operator A and
// recomputes A for it (Fig. 8 a/b). The recomputation shortens the
// original tensor's lifetime at the cost of A's latency again.
type RematRule struct{}

// Name implements Rule.
func (RematRule) Name() string { return "Remat" }

// Apply implements Rule.
func (RematRule) Apply(g *graph.Graph, ctx *Context) []Application {
	var out []Application
	var sites [][2]graph.NodeID
	for _, a := range g.NodeIDs() {
		if !rematerializable(g, a) || !ctx.isHot(a) {
			continue
		}
		cons := g.Suc(a)
		if len(cons) < 2 {
			continue
		}
		// Recompute A for its last consumer (by ID — a proxy for "the
		// farthest use", which the re-ordering then exploits).
		b := cons[len(cons)-1]
		if ctx.blocked(a, b) || ops.IsStore(g.Node(b).Op.Kind()) {
			continue
		}
		sites = append(sites, [2]graph.NodeID{a, b})
		if len(out) >= ctx.maxSites() {
			continue
		}
		ng := ctx.clone(g)
		dup := ng.AddNamed(g.Node(a).Name+"'", g.Node(a).Op, g.Node(a).Ins...)
		ng.ReplaceInput(b, a, dup)
		out = append(out, Application{ng, []graph.NodeID{a, b}, "Remat"})
	}
	// Composite applications: rematerialize the largest quarter, half, and
	// all hot sites in one step, with duplicates consuming each other
	// (checkpointing: dropping every anchor's activation and recomputing
	// the forward pass during the backward). Deep stacks of single-site
	// moves are exactly what a budgeted best-first search cannot afford;
	// composites compress those paths (duds are undone later by DeRemat).
	if len(sites) >= 2 {
		var cs []chainSite
		for _, s := range sites {
			cs = append(cs, chainSite{s[0], s[1], graph.NewSet(s[0])})
		}
		sort.Slice(cs, func(i, j int) bool {
			bi, bj := g.Node(cs[i].a).OutBytes(), g.Node(cs[j].a).OutBytes()
			if bi != bj {
				return bi > bj
			}
			return cs[i].a < cs[j].a
		})
		prev := 0
		for _, frac := range []int{4, 2, 1} {
			k := (len(cs) + frac - 1) / frac
			if k < 2 || k == prev {
				continue
			}
			prev = k
			app := applyChains(g, ctx, cs[:k])
			app.Rule = "RematBatch"
			out = append(out, app)
		}
	}
	return out
}

// composites builds quarter/half/all bundles over sites, sorted by the
// producer's tensor size descending so the biggest wins come first.
func composites(g *graph.Graph, ctx *Context, sites [][2]graph.NodeID, rule string, apply func(ng *graph.Graph, a, b graph.NodeID)) []Application {
	if len(sites) < 2 {
		return nil
	}
	sorted := append([][2]graph.NodeID(nil), sites...)
	sort.Slice(sorted, func(i, j int) bool {
		bi := g.Node(sorted[i][0]).OutBytes()
		bj := g.Node(sorted[j][0]).OutBytes()
		if bi != bj {
			return bi > bj
		}
		return sorted[i][0] < sorted[j][0]
	})
	var out []Application
	prev := 0
	for _, frac := range []int{4, 2, 1} {
		k := (len(sorted) + frac - 1) / frac
		if k < 2 || k == prev {
			continue
		}
		prev = k
		ng := ctx.clone(g)
		var mutated []graph.NodeID
		for _, s := range sorted[:k] {
			apply(ng, s[0], s[1])
			mutated = append(mutated, s[0], s[1])
		}
		out = append(out, Application{ng, mutated, rule + "Batch"})
	}
	return out
}

// RematChainRule recomputes a whole producer chain for a far consumer —
// checkpoint-style re-materialization. A single-operator re-mat extends
// its inputs' lifetimes and often gains nothing; duplicating the chain up
// to cheap/leaf inputs lets every original in the segment die early, the
// classic sublinear-checkpointing move that DTR finds dynamically.
type RematChainRule struct{}

// Name implements Rule.
func (RematChainRule) Name() string { return "RematChain" }

// chainDepth bounds how far a recompute chain may reach.
const chainDepth = 8

// chainSite is one (tensor, far consumer, recompute chain) candidate.
type chainSite struct {
	a, b  graph.NodeID
	chain graph.Set
}

// chainSites enumerates checkpoint candidates: hot multi-consumer tensors
// with their bounded recomputable ancestor chains. Chains stop at other
// candidates' anchors, so composite application recomputes disjoint
// segments between checkpoints — each duplicate's lifetime spans one
// segment of the backward pass, not the whole of it.
func chainSites(g *graph.Graph, ctx *Context) []chainSite {
	type anchor struct{ a, b graph.NodeID }
	var anchors []anchor
	anchorSet := make(graph.Set)
	for _, a := range g.NodeIDs() {
		if !rematerializable(g, a) || !ctx.isHot(a) {
			continue
		}
		cons := g.Suc(a)
		if len(cons) < 2 {
			continue
		}
		b := cons[len(cons)-1]
		if ctx.blocked(a, b) || ops.IsStore(g.Node(b).Op.Kind()) {
			continue
		}
		anchors = append(anchors, anchor{a, b})
		anchorSet[a] = true
	}
	var sites []chainSite
	for _, an := range anchors {
		chain := graph.NewSet(an.a)
		frontier := []graph.NodeID{an.a}
		for d := 0; d < chainDepth && len(frontier) > 0; d++ {
			var next []graph.NodeID
			for _, v := range frontier {
				for _, p := range g.Pre(v) {
					if !chain[p] && !anchorSet[p] && rematerializable(g, p) && !ctx.blocked(p) {
						chain[p] = true
						next = append(next, p)
					}
				}
			}
			frontier = next
		}
		if len(chain) < 2 {
			continue // plain RematRule covers the single-op case
		}
		sites = append(sites, chainSite{an.a, an.b, chain})
	}
	return sites
}

// applyChains duplicates the union of the sites' chains once (shared
// duplicates — overlapping chains recompute each ancestor a single time,
// checkpoint-style) and rewires each site's far consumer.
func applyChains(g *graph.Graph, ctx *Context, sites []chainSite) Application {
	union := make(graph.Set)
	var mutated []graph.NodeID
	for _, s := range sites {
		for v := range s.chain {
			union[v] = true
		}
		mutated = append(mutated, s.a, s.b)
	}
	ng := ctx.clone(g)
	dup := make(map[graph.NodeID]graph.NodeID, len(union))
	for _, v := range topoWithin(g, union) {
		node := g.Node(v)
		ins := make([]graph.NodeID, len(node.Ins))
		for i, in := range node.Ins {
			if d, ok := dup[in]; ok {
				ins[i] = d
			} else {
				ins[i] = in
			}
		}
		dup[v] = ng.AddNamed(node.Name+"'", node.Op, ins...)
	}
	for _, s := range sites {
		ng.ReplaceInput(s.b, s.a, dup[s.a])
	}
	// Every duplicate is consumed by the duplicate of its chain consumer
	// (chains are closed towards their anchors), so no dead nodes arise.
	return Application{ng, mutated, "RematChain"}
}

// Apply implements Rule.
func (RematChainRule) Apply(g *graph.Graph, ctx *Context) []Application {
	sites := chainSites(g, ctx)
	var out []Application
	for i, s := range sites {
		if i >= ctx.maxSites() {
			break
		}
		out = append(out, applyChains(g, ctx, []chainSite{s}))
	}
	// Graduated composites over the largest tensors, like SwapRule's.
	if len(sites) >= 2 {
		sorted := append([]chainSite(nil), sites...)
		sort.Slice(sorted, func(i, j int) bool {
			bi, bj := g.Node(sorted[i].a).OutBytes(), g.Node(sorted[j].a).OutBytes()
			if bi != bj {
				return bi > bj
			}
			return sorted[i].a < sorted[j].a
		})
		prev := 0
		for _, frac := range []int{4, 2, 1} {
			k := (len(sorted) + frac - 1) / frac
			if k < 2 || k == prev {
				continue
			}
			prev = k
			app := applyChains(g, ctx, sorted[:k])
			app.Rule = "RematChainBatch"
			out = append(out, app)
		}
	}
	return out
}

func topoWithin(g *graph.Graph, s graph.Set) []graph.NodeID {
	var out []graph.NodeID
	for _, v := range g.Topo() {
		if s[v] {
			out = append(out, v)
		}
	}
	return out
}

// DeRematRule merges two operators of identical kind, attributes, and
// inputs back into one (Fig. 8 c/d) — the dual of RematRule.
type DeRematRule struct{}

// Name implements Rule.
func (DeRematRule) Name() string { return "DeRemat" }

// Apply implements Rule.
func (DeRematRule) Apply(g *graph.Graph, ctx *Context) []Application {
	// Group candidates by signature for O(V) matching.
	type sig struct {
		kind, attr string
		ins        string
	}
	groups := make(map[sig][]graph.NodeID)
	for _, v := range g.NodeIDs() {
		n := g.Node(v)
		if ops.IsLeaf(n.Op.Kind()) || ops.IsTransfer(n.Op.Kind()) {
			continue
		}
		var insKey []byte
		for _, in := range n.Ins {
			insKey = append(insKey, byte(in), byte(in>>8), byte(in>>16), byte(in>>24))
		}
		s := sig{n.Op.Kind(), n.Op.AttrKey(), string(insKey)}
		groups[s] = append(groups[s], v)
	}
	var sigs []sig
	for s, vs := range groups {
		if len(vs) >= 2 {
			sigs = append(sigs, s)
		}
	}
	sort.Slice(sigs, func(i, j int) bool {
		a, b := groups[sigs[i]][0], groups[sigs[j]][0]
		return a < b
	})
	var out []Application
	for _, s := range sigs {
		if len(out) >= ctx.maxSites() {
			break
		}
		vs := groups[s]
		keep, dup := vs[0], vs[1]
		if ctx.blocked(keep, dup) {
			continue
		}
		ng := ctx.clone(g)
		ng.RedirectConsumers(dup, keep)
		if err := ng.Remove(dup); err != nil {
			continue
		}
		out = append(out, Application{ng, []graph.NodeID{keep, dup}, "DeRemat"})
	}
	return out
}

// SwapRule inserts Store+Load between an operator A and one consumer B
// (Fig. 8 e), moving A's tensor to host memory in between.
type SwapRule struct{}

// Name implements Rule.
func (SwapRule) Name() string { return "Swap" }

// Apply implements Rule.
func (SwapRule) Apply(g *graph.Graph, ctx *Context) []Application {
	var out []Application
	var sites [][2]graph.NodeID
	for _, a := range g.NodeIDs() {
		n := g.Node(a)
		if _, ok := n.Op.(*ops.Spec); !ok {
			continue
		}
		if ops.IsTransfer(n.Op.Kind()) || !ctx.isHot(a) || n.OutBytes() == 0 {
			continue
		}
		cons := g.Suc(a)
		if len(cons) == 0 {
			continue
		}
		// One swap chain per tensor: skip if A already feeds a Store.
		hasStore := false
		for _, c := range cons {
			if ops.IsStore(g.Node(c).Op.Kind()) {
				hasStore = true
				break
			}
		}
		if hasStore {
			continue
		}
		b := cons[len(cons)-1]
		if ctx.blocked(a, b) || ops.IsLoad(g.Node(b).Op.Kind()) {
			continue
		}
		sites = append(sites, [2]graph.NodeID{a, b})
		if len(out) >= ctx.maxSites() {
			continue
		}
		ng := ctx.clone(g)
		sh, dt := n.Op.OutShape(), n.Op.DType()
		st := ng.Add(ops.NewStore(sh, dt), a)
		ld := ng.Add(ops.NewLoad(sh, dt), st)
		ng.ReplaceInput(b, a, ld)
		out = append(out, Application{ng, []graph.NodeID{a, b}, "Swap"})
	}
	// Composite applications: swap out the largest quarter/half/all hot
	// tensors at once (see RematRule); superfluous swaps are undone by
	// DeSwap.
	out = append(out, composites(g, ctx, sites, "Swap", func(ng *graph.Graph, a, b graph.NodeID) {
		sh, dt := ng.Node(a).Op.OutShape(), ng.Node(a).Op.DType()
		st := ng.Add(ops.NewStore(sh, dt), a)
		ld := ng.Add(ops.NewLoad(sh, dt), st)
		ng.ReplaceInput(b, a, ld)
	})...)
	return out
}

// DeSwapRule removes a Store/Load pair (Fig. 8 f) — the dual of SwapRule.
type DeSwapRule struct{}

// Name implements Rule.
func (DeSwapRule) Name() string { return "DeSwap" }

// Apply implements Rule.
func (DeSwapRule) Apply(g *graph.Graph, ctx *Context) []Application {
	var out []Application
	for _, ld := range g.NodeIDs() {
		if len(out) >= ctx.maxSites() {
			break
		}
		if !ops.IsLoad(g.Node(ld).Op.Kind()) {
			continue
		}
		pre := g.Pre(ld)
		if len(pre) != 1 || !ops.IsStore(g.Node(pre[0]).Op.Kind()) {
			continue
		}
		st := pre[0]
		src := g.Pre(st)
		if len(src) != 1 || ctx.blocked(ld, st, src[0]) {
			continue
		}
		ng := ctx.clone(g)
		ng.RedirectConsumers(ld, src[0])
		if err := ng.Remove(ld); err != nil {
			continue
		}
		// The store may still serve other loads; remove it only when dead.
		if len(ng.Suc(st)) == 0 {
			if err := ng.Remove(st); err != nil {
				continue
			}
		}
		out = append(out, Application{ng, []graph.NodeID{st, ld, src[0]}, "DeSwap"})
	}
	return out
}
