package opt

import (
	"container/heap"
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"math"
	"os"
	"sort"
	"time"

	"magis/internal/cost"
	"magis/internal/fission"
	"magis/internal/fsatomic"
	"magis/internal/ftree"
	"magis/internal/graph"
	"magis/internal/graphio"
	"magis/internal/rules"
	"magis/internal/sched"
	"magis/internal/sim"
)

// Checkpointing makes long searches crash-safe. At every expansion
// boundary — the top of the search loop, where the state is a consistent
// prefix of the run — the loop encodes a snapshot of everything the
// order-sensitive half owns: the frontier heap (each state's logical
// graph, F-Tree, and schedule), the duplicate-filter digests, the best
// state, Stats, History, quarantine streaks, and diagnostics counters.
// Snapshots are flushed to disk atomically (temp file + fsync + rename)
// every EveryN expansions or Interval of wall-clock, and once more when
// the search exits.
//
// The crash-consistency argument: the search is deterministic for any
// worker count (see internal/opt/parallel.go), so replaying from a
// boundary snapshot re-derives exactly the expansions that followed it.
// A SIGKILL at an arbitrary point therefore loses at most the work since
// the last flush, and Resume(run-kill-resume) produces a bit-identical
// best graph, schedule, and cost to an uninterrupted run. Measurements
// that are not inputs to any search decision (wall-clock timers, history
// timestamps) are exempt from the bit-identical guarantee.
//
// Cost metrics of restored states (PeakMem, Latency, Hot) are not stored:
// they are recomputed from (EvalG, Sched) by the same deterministic
// simulators that produced them, which keeps floating-point values exact
// without relying on decimal round-tripping.

// CheckpointVersion is the on-disk snapshot format version. A mismatch is
// a hard Resume error: snapshots embed search internals and are not
// migrated across format changes.
const CheckpointVersion = 1

// checkpointMagic distinguishes checkpoint files from other JSON.
const checkpointMagic = "magis-checkpoint"

// Checkpoint configures crash-safe snapshots of a search. The zero value
// disables checkpointing; setting Path enables it.
type Checkpoint struct {
	// Path is the snapshot file. Writes replace it atomically, so the file
	// always holds the last complete snapshot.
	Path string
	// EveryN flushes a snapshot every N completed expansions (default 16).
	EveryN int
	// Interval additionally flushes when this much wall-clock has passed
	// since the last flush (0 disables the time trigger).
	Interval time.Duration
	// Label is free-form run metadata surfaced by ReadCheckpointInfo (the
	// CLI stores its workload/mode flags here).
	Label string
	// FS is the filesystem snapshots are written through; nil means the
	// real OS. It is runtime wiring, not run state — resuming a checkpoint
	// does not restore it, so Resume callers re-inject their FS via the
	// options override.
	FS fsatomic.FS
}

// CheckpointStatus reports a run's checkpointing activity.
type CheckpointStatus struct {
	// Path is the snapshot file written.
	Path string
	// Writes counts successful snapshot flushes.
	Writes int
	// LastBytes is the size of the last flushed snapshot.
	LastBytes int
	// Err records the first encode or write failure. Checkpointing
	// degrades to best-effort on failure; the search itself continues.
	Err string
}

// checkpointer owns the snapshot lifecycle of one search incarnation. It
// runs entirely on the search goroutine.
type checkpointer struct {
	cfg    Checkpoint
	status CheckpointStatus
	// last is the most recent boundary snapshot payload. It is kept in
	// memory so the final flush can publish a consistent boundary even
	// when the search is cancelled mid-expansion (whose live state is not
	// a valid resume point).
	last       []byte
	lastWrite  time.Time
	sinceWrite int
}

func newCheckpointer(cfg Checkpoint) *checkpointer {
	if cfg.EveryN <= 0 {
		cfg.EveryN = 16
	}
	return &checkpointer{
		cfg:       cfg,
		status:    CheckpointStatus{Path: cfg.Path},
		lastWrite: time.Now(),
	}
}

// boundary snapshots the loop at an expansion boundary and flushes on the
// configured cadence.
func (c *checkpointer) boundary(l *searchLoop) {
	buf, err := encodeSnapshot(l)
	if err != nil {
		c.fail(err)
		return
	}
	c.last = buf
	c.sinceWrite++
	if c.sinceWrite >= c.cfg.EveryN ||
		(c.cfg.Interval > 0 && time.Since(c.lastWrite) >= c.cfg.Interval) {
		c.flush()
	}
}

// final publishes the last consistent snapshot when the search exits. A
// tainted exit (cancelled mid-expansion) falls back to the pre-expansion
// boundary; any other exit re-snapshots the final state, so a drained or
// converged run resumes with zero replay.
func (c *checkpointer) final(l *searchLoop, tainted bool) {
	if !tainted {
		if buf, err := encodeSnapshot(l); err == nil {
			c.last = buf
		} else {
			c.fail(err)
		}
	}
	if c.last != nil {
		c.flush()
	}
}

func (c *checkpointer) flush() {
	env, err := sealSnapshot(c.last)
	if err != nil {
		c.fail(err)
		return
	}
	if err := fsatomic.WriteFileFS(c.cfg.FS, c.cfg.Path, env, 0o644); err != nil {
		c.fail(err)
		return
	}
	c.status.Writes++
	c.status.LastBytes = len(env)
	c.sinceWrite = 0
	c.lastWrite = time.Now()
}

func (c *checkpointer) fail(err error) {
	if c.status.Err == "" {
		c.status.Err = err.Error()
	}
}

// envelope is the checkpoint file framing: a version header plus a SHA-256
// digest of the payload bytes, verified before any payload field is
// trusted.
type envelope struct {
	Magic   string          `json:"magic"`
	Version int             `json:"version"`
	SHA256  string          `json:"sha256"`
	Payload json.RawMessage `json:"payload"`
}

// sealSnapshot frames a payload with its checksum.
func sealSnapshot(payload []byte) ([]byte, error) {
	sum := sha256.Sum256(payload)
	return json.Marshal(envelope{
		Magic:   checkpointMagic,
		Version: CheckpointVersion,
		SHA256:  hex.EncodeToString(sum[:]),
		Payload: payload,
	})
}

// openSnapshot validates the envelope and returns the payload bytes.
func openSnapshot(data []byte) ([]byte, error) {
	var env envelope
	if err := json.Unmarshal(data, &env); err != nil {
		return nil, fmt.Errorf("opt: checkpoint: %w", err)
	}
	if env.Magic != checkpointMagic {
		return nil, fmt.Errorf("opt: checkpoint: not a checkpoint file (magic %q)", env.Magic)
	}
	if env.Version != CheckpointVersion {
		return nil, fmt.Errorf("opt: checkpoint: format version %d (this build reads version %d)", env.Version, CheckpointVersion)
	}
	sum := sha256.Sum256(env.Payload)
	if got := hex.EncodeToString(sum[:]); got != env.SHA256 {
		return nil, fmt.Errorf("opt: checkpoint: checksum mismatch (file %s, payload %s): truncated or corrupted snapshot", env.SHA256, got)
	}
	return env.Payload, nil
}

// snapshot is the checkpoint payload.
type snapshot struct {
	Label     string               `json:"label,omitempty"`
	ElapsedNs int64                `json:"elapsed_ns"`
	Options   optionsRec           `json:"options"`
	Input     *graphio.GraphRecord `json:"input"`
	Stats     Stats                `json:"stats"`
	History   []historyRec         `json:"history"`
	Seen      []uint64             `json:"seen"`
	Queue     []*stateRec          `json:"queue"`
	// BestIdx points the best state into Queue (preserving object identity
	// on restore); -1 means Best holds a state not on the frontier.
	BestIdx int       `json:"best_idx"`
	Best    *stateRec `json:"best,omitempty"`
	// BestPeakMem / BestLatencyBits duplicate the best state's headline
	// metrics for cheap inspection via ReadCheckpointInfo.
	BestPeakMem     int64                `json:"best_peak_mem"`
	BestLatencyBits uint64               `json:"best_latency_bits"`
	Quarantine      quarRec              `json:"quarantine"`
	Diags           map[string]*RuleDiag `json:"diags,omitempty"`
	Errors          []ruleErrRec         `json:"errors,omitempty"`
}

// optionsRec serializes Options. Floats are stored as IEEE-754 bits so
// limits round-trip exactly (LatencyLimit is +Inf in the default
// MemoryUnderLatency configuration, which plain JSON cannot carry).
type optionsRec struct {
	Mode             int      `json:"mode"`
	MemLimit         int64    `json:"mem_limit"`
	LatencyLimitBits uint64   `json:"latency_limit_bits"`
	MaxLevel         int      `json:"max_level"`
	MaxCandidates    int      `json:"max_candidates"`
	MaxSites         int      `json:"max_sites"`
	TimeBudgetNs     int64    `json:"time_budget_ns"`
	MemBudget        int64    `json:"mem_budget,omitempty"`
	MaxIterations    int      `json:"max_iterations"`
	DeltaBits        uint64   `json:"delta_bits"`
	CheckInvariants  bool     `json:"check_invariants"`
	QuarantineAfter  int      `json:"quarantine_after"`
	Workers          int      `json:"workers"`
	NaiveFission     bool     `json:"naive_fission,omitempty"`
	NaiveSchedRules  bool     `json:"naive_sched_rules,omitempty"`
	FullReschedule   bool     `json:"full_reschedule,omitempty"`
	StrictHash       bool     `json:"strict_hash,omitempty"`
	DisableFission   bool     `json:"disable_fission,omitempty"`
	Rules            []string `json:"rules"`
	CkEveryN         int      `json:"ck_every_n,omitempty"`
	CkIntervalNs     int64    `json:"ck_interval_ns,omitempty"`
	CkLabel          string   `json:"ck_label,omitempty"`
}

type historyRec struct {
	ElapsedNs   int64  `json:"elapsed_ns"`
	PeakMem     int64  `json:"peak_mem"`
	LatencyBits uint64 `json:"latency_bits"`
}

type quarRec struct {
	Streaks map[string]int `json:"streaks,omitempty"`
	Banned  []string       `json:"banned,omitempty"`
}

type ruleErrRec struct {
	Rule  string `json:"rule"`
	Site  string `json:"site"`
	Panic string `json:"panic"`
	Stack string `json:"stack,omitempty"`
}

// stateRec serializes one M-State: the logical graph (ID-exact), the
// F-Tree, and the schedule. EvalG, regions, PeakMem, Latency, and Hot are
// recomputed deterministically on restore.
type stateRec struct {
	G     *graphio.GraphRecord `json:"g"`
	FT    []*ftNodeRec         `json:"ft,omitempty"`
	Sched sched.Schedule       `json:"sched"`
	Stale bool                 `json:"stale,omitempty"`
}

// ftNodeRec serializes one F-Tree node with its resolved transformation.
type ftNodeRec struct {
	S          []graph.NodeID `json:"s"`
	ChoiceKeys []graph.NodeID `json:"ck,omitempty"`
	ChoiceVals []int          `json:"cv,omitempty"`
	TransN     int            `json:"tn"`
	N          int            `json:"n"`
	ScoreBits  uint64         `json:"score_bits"`
	Level      int            `json:"level"`
	Children   []*ftNodeRec   `json:"children,omitempty"`
}

func recordOptions(o *Options) optionsRec {
	names := make([]string, len(o.Rules))
	for i, r := range o.Rules {
		names[i] = r.Name()
	}
	return optionsRec{
		Mode:             int(o.Mode),
		MemLimit:         o.MemLimit,
		LatencyLimitBits: math.Float64bits(o.LatencyLimit),
		MaxLevel:         o.MaxLevel,
		MaxCandidates:    o.MaxCandidates,
		MaxSites:         o.MaxSites,
		TimeBudgetNs:     int64(o.TimeBudget),
		MemBudget:        o.MemBudget,
		MaxIterations:    o.MaxIterations,
		DeltaBits:        math.Float64bits(o.Delta),
		CheckInvariants:  o.CheckInvariants,
		QuarantineAfter:  o.QuarantineAfter,
		Workers:          o.Workers,
		NaiveFission:     o.NaiveFission,
		NaiveSchedRules:  o.NaiveSchedRules,
		FullReschedule:   o.FullReschedule,
		StrictHash:       o.StrictHash,
		DisableFission:   o.DisableFission,
		Rules:            names,
		CkEveryN:         o.Checkpoint.EveryN,
		CkIntervalNs:     int64(o.Checkpoint.Interval),
		CkLabel:          o.Checkpoint.Label,
	}
}

func (r optionsRec) restore() (Options, error) {
	catalog := make(map[string]rules.Rule)
	for _, rl := range rules.All() {
		catalog[rl.Name()] = rl
	}
	rs := make([]rules.Rule, len(r.Rules))
	for i, name := range r.Rules {
		rl, ok := catalog[name]
		if !ok {
			return Options{}, fmt.Errorf("opt: checkpoint references rule %q not in this build's catalog", name)
		}
		rs[i] = rl
	}
	return Options{
		Mode:            Mode(r.Mode),
		MemLimit:        r.MemLimit,
		LatencyLimit:    math.Float64frombits(r.LatencyLimitBits),
		MaxLevel:        r.MaxLevel,
		MaxCandidates:   r.MaxCandidates,
		MaxSites:        r.MaxSites,
		TimeBudget:      time.Duration(r.TimeBudgetNs),
		MemBudget:       r.MemBudget,
		MaxIterations:   r.MaxIterations,
		Delta:           math.Float64frombits(r.DeltaBits),
		CheckInvariants: r.CheckInvariants,
		QuarantineAfter: r.QuarantineAfter,
		Workers:         r.Workers,
		NaiveFission:    r.NaiveFission,
		NaiveSchedRules: r.NaiveSchedRules,
		FullReschedule:  r.FullReschedule,
		StrictHash:      r.StrictHash,
		DisableFission:  r.DisableFission,
		Rules:           rs,
		Checkpoint: Checkpoint{
			EveryN:   r.CkEveryN,
			Interval: time.Duration(r.CkIntervalNs),
			Label:    r.CkLabel,
		},
	}, nil
}

func recordTree(t *ftree.Tree) []*ftNodeRec {
	if t == nil {
		return nil
	}
	var rec func(n *ftree.Node) *ftNodeRec
	rec = func(n *ftree.Node) *ftNodeRec {
		r := &ftNodeRec{
			S:         n.T.S.Slice(),
			TransN:    n.T.N,
			N:         n.N,
			ScoreBits: math.Float64bits(n.Score),
			Level:     n.Level,
		}
		keys := make([]graph.NodeID, 0, len(n.T.Choice))
		for k := range n.T.Choice {
			keys = append(keys, k)
		}
		sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
		for _, k := range keys {
			r.ChoiceKeys = append(r.ChoiceKeys, k)
			r.ChoiceVals = append(r.ChoiceVals, n.T.Choice[k])
		}
		for _, c := range n.Children {
			r.Children = append(r.Children, rec(c))
		}
		return r
	}
	out := make([]*ftNodeRec, 0, len(t.Roots))
	for _, root := range t.Roots {
		out = append(out, rec(root))
	}
	return out
}

func restoreTree(recs []*ftNodeRec) (*ftree.Tree, error) {
	var rec func(r *ftNodeRec, parent *ftree.Node) (*ftree.Node, error)
	rec = func(r *ftNodeRec, parent *ftree.Node) (*ftree.Node, error) {
		if len(r.ChoiceKeys) != len(r.ChoiceVals) {
			return nil, fmt.Errorf("opt: checkpoint: F-Tree node has %d choice keys but %d values", len(r.ChoiceKeys), len(r.ChoiceVals))
		}
		tr := &fission.Trans{S: graph.NewSet(r.S...), Choice: make(map[graph.NodeID]int, len(r.ChoiceKeys)), N: r.TransN}
		for i, k := range r.ChoiceKeys {
			tr.Choice[k] = r.ChoiceVals[i]
		}
		n := &ftree.Node{
			T:      tr,
			N:      r.N,
			Score:  math.Float64frombits(r.ScoreBits),
			Level:  r.Level,
			Parent: parent,
		}
		for _, c := range r.Children {
			cn, err := rec(c, n)
			if err != nil {
				return nil, err
			}
			n.Children = append(n.Children, cn)
		}
		return n, nil
	}
	t := &ftree.Tree{}
	for _, r := range recs {
		n, err := rec(r, nil)
		if err != nil {
			return nil, err
		}
		t.Roots = append(t.Roots, n)
	}
	return t, nil
}

func recordState(s *State) (*stateRec, error) {
	g, err := graphio.Record(s.G)
	if err != nil {
		return nil, err
	}
	return &stateRec{
		G:     g,
		FT:    recordTree(s.FT),
		Sched: append(sched.Schedule(nil), s.Sched...),
		Stale: s.stale,
	}, nil
}

// restoreState rebuilds a State and recomputes its derived fields (EvalG,
// regions, PeakMem, Hot, Latency) with the same deterministic pipeline
// that produced them, using ev's scratch buffers without touching its
// stats counters.
func restoreState(rec *stateRec, ev *evaluator) (*State, error) {
	g, err := rec.G.Restore()
	if err != nil {
		return nil, err
	}
	ft, err := restoreTree(rec.FT)
	if err != nil {
		return nil, err
	}
	s := &State{G: g, FT: ft, stale: rec.Stale}
	if err := guard("checkpoint", "state collapse", func() error {
		return ev.collapse(s)
	}); err != nil {
		return nil, fmt.Errorf("opt: checkpoint: state collapse: %w", err)
	}
	s.Sched = append(sched.Schedule(nil), rec.Sched...)
	prof := ev.ss.Simulate(s.EvalG, s.Sched)
	s.PeakMem = prof.Peak
	s.Hot = prof.Hotspots
	r := sim.Run(s.EvalG, s.Sched, sim.Config{Model: ev.model, NodeCost: regionNodeCost})
	s.Latency = r.Latency
	return s, nil
}

// encodeSnapshot serializes the loop at an expansion boundary. Worker
// stats shards are folded into the recorded Stats (the live shards stay
// untouched for the continuing run).
func encodeSnapshot(l *searchLoop) ([]byte, error) {
	input, err := graphio.Record(l.input)
	if err != nil {
		return nil, err
	}
	stats := l.res.Stats
	for i := 1; i < len(l.pool.shards); i++ {
		stats.add(&l.pool.shards[i])
	}
	snap := snapshot{
		Label:     l.o.Checkpoint.Label,
		ElapsedNs: int64(l.elapsed()),
		Options:   recordOptions(l.o),
		Input:     input,
		Stats:     stats,
		BestIdx:   -1,
	}
	for _, h := range l.res.History {
		snap.History = append(snap.History, historyRec{
			ElapsedNs:   int64(h.Elapsed),
			PeakMem:     h.PeakMem,
			LatencyBits: math.Float64bits(h.Latency),
		})
	}
	snap.Seen = make([]uint64, 0, len(l.seen))
	for h := range l.seen {
		snap.Seen = append(snap.Seen, h)
	}
	sort.Slice(snap.Seen, func(i, j int) bool { return snap.Seen[i] < snap.Seen[j] })
	for i, s := range l.q.items {
		r, err := recordState(s)
		if err != nil {
			return nil, err
		}
		snap.Queue = append(snap.Queue, r)
		if s == l.best {
			snap.BestIdx = i
		}
	}
	if snap.BestIdx < 0 {
		r, err := recordState(l.best)
		if err != nil {
			return nil, err
		}
		snap.Best = r
	}
	snap.BestPeakMem = l.best.PeakMem
	snap.BestLatencyBits = math.Float64bits(l.best.Latency)
	snap.Quarantine = quarRec{Streaks: l.quar.streak}
	for name := range l.quar.banned {
		snap.Quarantine.Banned = append(snap.Quarantine.Banned, name)
	}
	sort.Strings(snap.Quarantine.Banned)
	snap.Diags = l.res.Diagnostics.Rules
	for _, re := range l.res.Diagnostics.Errors {
		snap.Errors = append(snap.Errors, ruleErrRec{
			Rule:  re.Rule,
			Site:  re.Site,
			Panic: fmt.Sprint(re.Panic),
			Stack: re.Stack,
		})
	}
	return json.Marshal(snap)
}

// Resume continues a checkpointed search from path. The snapshot's options
// (including the checkpoint configuration, re-pointed at path) are
// restored; override, when non-nil, may adjust them before the run — e.g.
// a service re-attaching its OnExpansion watchdog hook, or a test raising
// MaxIterations. The search continues under the remaining TimeBudget:
// total budget minus the wall-clock already consumed before the snapshot.
//
// Because the search is deterministic and snapshots are taken at expansion
// boundaries, run-kill-resume produces the same best graph, schedule, and
// cost as an uninterrupted run (wall-clock-derived fields aside).
func Resume(ctx context.Context, path string, model *cost.Model, override func(*Options)) (*Result, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("opt: checkpoint: %w", err)
	}
	payload, err := openSnapshot(data)
	if err != nil {
		return nil, err
	}
	var snap snapshot
	if err := json.Unmarshal(payload, &snap); err != nil {
		return nil, fmt.Errorf("opt: checkpoint: %w", err)
	}
	o, err := snap.Options.restore()
	if err != nil {
		return nil, err
	}
	o.Checkpoint.Path = path
	if override != nil {
		override(&o)
	}
	o.defaults()
	input, err := snap.Input.Restore()
	if err != nil {
		return nil, fmt.Errorf("opt: checkpoint: input graph: %w", err)
	}

	res := &Result{}
	if err := guard("init", "baseline evaluation", func() error {
		res.Baseline = Baseline(input, model)
		return nil
	}); err != nil {
		return nil, fmt.Errorf("%w: %w", ErrInitialEval, err)
	}
	pool := newEvalPool(o.Workers, model, o.FullReschedule, o.StrictHash, &res.Stats)
	ev := pool.primary()
	res.Stats = snap.Stats
	for _, h := range snap.History {
		res.History = append(res.History, HistoryPoint{
			Elapsed: time.Duration(h.ElapsedNs),
			PeakMem: h.PeakMem,
			Latency: math.Float64frombits(h.LatencyBits),
		})
	}
	res.Diagnostics.Rules = snap.Diags
	for _, e := range snap.Errors {
		res.Diagnostics.Errors = append(res.Diagnostics.Errors, &RuleError{
			Rule: e.Rule, Site: e.Site, Panic: e.Panic, Stack: e.Stack,
		})
	}
	quar := newQuarantine(o.QuarantineAfter)
	for name, n := range snap.Quarantine.Streaks {
		quar.streak[name] = n
	}
	for _, name := range snap.Quarantine.Banned {
		quar.banned[name] = true
	}

	q := &stateQueue{opts: &o}
	var best *State
	for i, r := range snap.Queue {
		s, err := restoreState(r, ev)
		if err != nil {
			return nil, err
		}
		q.items = append(q.items, s)
		if i == snap.BestIdx {
			best = s
		}
	}
	if best == nil {
		if snap.Best == nil {
			return nil, fmt.Errorf("opt: checkpoint: snapshot has no best state")
		}
		if best, err = restoreState(snap.Best, ev); err != nil {
			return nil, err
		}
	}
	seen := make(map[uint64]bool, len(snap.Seen))
	for _, h := range snap.Seen {
		seen[h] = true
	}

	l := &searchLoop{
		o:     &o,
		res:   res,
		quar:  quar,
		seen:  seen,
		q:     q, // items are in heap order already; pops replay identically
		best:  best,
		start: time.Now(),
		prior: time.Duration(snap.ElapsedNs),
		input: input,
		model: model,
		pool:  pool,
		gp:    &ev.gp,
		ftOpts: ftree.Options{
			MaxLevel:      o.MaxLevel,
			MaxCandidates: o.MaxCandidates,
			NaiveFission:  o.NaiveFission,
		},
	}
	heap.Init(l.q) // no-op on the already-valid heap; guards a hand-edited file
	l.run(ctx)
	return res, nil
}

// CheckpointInfo is the cheap, state-free view of a checkpoint file.
type CheckpointInfo struct {
	// Label is the run metadata stored via Checkpoint.Label.
	Label string
	// Elapsed is the search wall-clock consumed before the snapshot.
	Elapsed time.Duration
	// Iterations is the number of completed expansions.
	Iterations int
	// Frontier is the number of states on the snapshot's queue.
	Frontier int
	// BestPeakMem / BestLatency are the snapshot's best-state metrics.
	BestPeakMem int64
	BestLatency float64
	// Workers and Mode echo the snapshotted search options.
	Workers int
	Mode    Mode
}

// ReadCheckpointInfo validates a checkpoint file's envelope and returns
// its headline metadata without restoring any search state.
func ReadCheckpointInfo(path string) (*CheckpointInfo, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("opt: checkpoint: %w", err)
	}
	payload, err := openSnapshot(data)
	if err != nil {
		return nil, err
	}
	var snap struct {
		Label     string     `json:"label"`
		ElapsedNs int64      `json:"elapsed_ns"`
		Options   optionsRec `json:"options"`
		Stats     struct {
			Iterations int `json:"Iterations"`
		} `json:"stats"`
		Queue           []json.RawMessage `json:"queue"`
		BestPeakMem     int64             `json:"best_peak_mem"`
		BestLatencyBits uint64            `json:"best_latency_bits"`
	}
	if err := json.Unmarshal(payload, &snap); err != nil {
		return nil, fmt.Errorf("opt: checkpoint: %w", err)
	}
	return &CheckpointInfo{
		Label:       snap.Label,
		Elapsed:     time.Duration(snap.ElapsedNs),
		Iterations:  snap.Stats.Iterations,
		Frontier:    len(snap.Queue),
		BestPeakMem: snap.BestPeakMem,
		BestLatency: math.Float64frombits(snap.BestLatencyBits),
		Workers:     snap.Options.Workers,
		Mode:        Mode(snap.Options.Mode),
	}, nil
}
