package opt

import (
	"testing"

	"magis/internal/ftree"
	"magis/internal/graph"
)

// benchState builds an evaluated, F-Tree'd state of the benchmark MLP —
// the parent-state shape neighbors sees on every queue pop.
func benchState(b *testing.B) (*State, *Result) {
	b.Helper()
	res := &Result{}
	ev := newEvaluator(model(), false, false, &res.Stats)
	st := &State{G: fatMLP()}
	if err := ev.evaluate(st, nil, nil); err != nil {
		b.Fatal(err)
	}
	st.FT = ftree.Build(st.G, st.Hot, ftree.Options{})
	return st, res
}

// BenchmarkCore_Neighbors prices one expansion's candidate generation,
// the allocation-heavy half of every search iteration (rule matching,
// graph clones, copy-on-write F-Trees).
func BenchmarkCore_Neighbors(b *testing.B) {
	st, res := benchState(b)
	o := Options{}
	o.defaults()
	quar := newQuarantine(o.QuarantineAfter)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if cands := neighbors(st, &o, res, quar, nil); len(cands) == 0 {
			b.Fatal("no candidates")
		}
	}
}

// BenchmarkCore_WLHash prices the duplicate filter's graph hash with the
// per-evaluator scratch reuse the search uses.
func BenchmarkCore_WLHash(b *testing.B) {
	g := fatMLP()
	var hs graph.HashScratch
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if g.WLHashScratch(&hs) == 0 {
			b.Fatal("zero hash")
		}
	}
}
