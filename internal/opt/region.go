// Package opt implements M-State and M-Optimizer (§3, §6): the unified
// search over graph transformations, F-Tree mutations, and scheduling.
// Enabled F-Tree regions are never materialized during search — each is
// collapsed into a single RegionOp node whose memory and latency are
// computed analytically from one split part (the F-Tree's whole point:
// keeping complexity low, §4.3).
package opt

import (
	"fmt"

	"magis/internal/cost"
	"magis/internal/ftree"
	"magis/internal/graph"
	"magis/internal/ops"
	"magis/internal/sched"
	"magis/internal/tensor"
)

// RegionOp is the payload of a collapsed fission region in an evaluation
// graph. It implements graph.Op and sched.DeviceSizer.
type RegionOp struct {
	name      string
	outBytes  int64
	transient int64
	lat       float64
	n         int
	members   int
}

// Kind implements graph.Op.
func (r *RegionOp) Kind() string { return "FissionRegion" }

// OutShape implements graph.Op; regions carry opaque byte sizes instead.
func (r *RegionOp) OutShape() tensor.Shape { return tensor.S() }

// DType implements graph.Op.
func (r *RegionOp) DType() tensor.DType { return tensor.F32 }

// AttrKey folds the region parameters into state hashing.
func (r *RegionOp) AttrKey() string {
	return fmt.Sprintf("%s|n%d|m%d|o%d|t%d|l%.3g", r.name, r.n, r.members, r.outBytes, r.transient, r.lat)
}

// OutDeviceBytes implements sched.DeviceSizer: the merged outputs persist.
func (r *RegionOp) OutDeviceBytes() int64 { return r.outBytes }

// ExecTransientBytes implements sched.DeviceSizer: extra memory while the
// region's parts execute.
func (r *RegionOp) ExecTransientBytes() int64 { return r.transient }

// Latency is the end-to-end time of all n sequential parts plus merges.
func (r *RegionOp) Latency() float64 { return r.lat }

// Parts returns the fission number.
func (r *RegionOp) Parts() int { return r.n }

// collapser builds evaluation graphs. ss points at the owning evaluator's
// lifetime scratch (nil falls back to allocating per call), so region
// accounting shares the evaluator's buffers.
//
// Region pricing dominates evaluation cost (the beam scheduler runs over
// every region's one-part graph), yet candidates of one expansion differ by
// a single rewrite, so almost every region is identical to one priced
// before. regionOp therefore memoizes on a content key covering everything
// the accounting reads: fission number, member IDs with choices, operator
// descriptors, internal wiring, output membership, sliced inputs, and the
// recursive structure of nested enabled regions. Operator identity is
// folded via specID, a pointer-to-ordinal table — safe against address
// reuse precisely because the table retains its *Spec keys, so a mapped
// descriptor can never be collected and its address never recycled. The
// tables reset together once the memo outgrows memoLimit.
//
// A memo hit skips ValidateOn; of its checks only convexity can silently
// rot through key-invisible *external* graph edits, and that case still
// fails loudly per candidate in replaceRegion's cycle check.
type collapser struct {
	model *cost.Model
	sc    *sched.Scheduler
	ss    *sched.Scratch
	// gp, when set, recycles discarded graph shells into the evaluation
	// graph clone (see graphPool).
	gp *graphPool

	memo   map[string]*RegionOp
	specID map[*ops.Spec]int32
	keyBuf []byte
}

// memoLimit bounds the region memo; the tables reset when it is reached.
const memoLimit = 4096

func appendI32(b []byte, x int32) []byte {
	return append(b, byte(x), byte(x>>8), byte(x>>16), byte(x>>24))
}

func (c *collapser) specIdent(s *ops.Spec) int32 {
	if c.specID == nil {
		c.specID = make(map[*ops.Spec]int32)
	}
	id, ok := c.specID[s]
	if !ok {
		id = int32(len(c.specID))
		c.specID[s] = id
	}
	return id
}

// regionMemoKey folds the full accounting-relevant content of an enabled
// F-Tree node into c.keyBuf. Returns false when a member is not an
// ops.Spec (the error path re-derives it without the memo).
func (c *collapser) regionMemoKey(g *graph.Graph, n *ftree.Node) bool {
	b := appendI32(c.keyBuf, int32(n.N))
	members := n.T.S.Slice()
	outs := g.Outs(n.T.S)
	b = appendI32(b, int32(len(members)))
	for _, v := range members {
		node := g.Node(v)
		spec, ok := node.Op.(*ops.Spec)
		if !ok {
			return false
		}
		b = appendI32(b, int32(v))
		b = appendI32(b, int32(n.T.Choice[v]))
		b = appendI32(b, c.specIdent(spec))
		b = appendI32(b, int32(len(node.Ins)))
		for _, in := range node.Ins {
			b = appendI32(b, int32(in))
		}
		if outs[v] {
			b = append(b, 1)
		} else {
			b = append(b, 0)
		}
	}
	slicedIn, _ := n.T.Inputs(g)
	b = appendI32(b, int32(len(slicedIn)))
	for _, u := range slicedIn {
		spec, ok := g.Node(u).Op.(*ops.Spec)
		if !ok {
			return false
		}
		b = appendI32(b, int32(u))
		b = appendI32(b, int32(n.T.Choice[u]))
		b = appendI32(b, c.specIdent(spec))
	}
	for _, child := range directEnabledChildren(n) {
		b = append(b, 0xfe) // nesting tag
		c.keyBuf = b
		if !c.regionMemoKey(g, child) {
			return false
		}
		b = c.keyBuf
	}
	c.keyBuf = b
	return true
}

// peakOnly prices an order through the shared scratch when available.
func (c *collapser) peakOnly(g *graph.Graph, order sched.Schedule) int64 {
	if c.ss != nil {
		return c.ss.PeakOnly(g, order)
	}
	return sched.PeakOnly(g, order)
}

// Collapse returns the evaluation graph of (g, t): every outermost enabled
// F-Tree region replaced by one RegionOp node, nested enabled regions
// folded recursively into their parent's accounting. It also returns a map
// from region key (see regionKey) to the created node.
func (c *collapser) Collapse(g *graph.Graph, t *ftree.Tree) (*graph.Graph, map[string]graph.NodeID, error) {
	var eg *graph.Graph
	if c.gp != nil {
		eg = c.gp.clone(g)
	} else {
		eg = g.Clone()
	}
	regions := make(map[string]graph.NodeID)
	var outer []*ftree.Node
	if t != nil {
		for _, n := range t.EnabledNodes() {
			if !n.HasEnabledAncestor() {
				outer = append(outer, n)
			}
		}
	}
	for _, n := range outer {
		op, err := c.memoRegionOp(g, n)
		if err != nil {
			c.recycle(eg)
			return nil, nil, err
		}
		id, err := replaceRegion(eg, n.T.S, op)
		if err != nil {
			c.recycle(eg)
			return nil, nil, err
		}
		regions[regionKey(n.T.S)] = id
	}
	return eg, regions, nil
}

// recycle returns a failed collapse's half-built clone to the pool; no
// caller ever sees it.
func (c *collapser) recycle(eg *graph.Graph) {
	if c.gp != nil {
		c.gp.put(eg)
	}
}

// memoRegionOp returns the collapsed accounting of an outermost enabled
// region, reusing a previously priced identical region when the memo key
// matches. Errors are never cached: a failing region re-validates on every
// collapse, so recovery after a repairing rewrite is immediate.
func (c *collapser) memoRegionOp(g *graph.Graph, n *ftree.Node) (*RegionOp, error) {
	// Reset before key construction so every key in one memo generation is
	// built from one specID numbering (mixing generations could alias two
	// different regions onto one key).
	if len(c.memo) >= memoLimit {
		c.memo = nil
		c.specID = nil
	}
	c.keyBuf = c.keyBuf[:0]
	if !c.regionMemoKey(g, n) {
		return c.regionOp(g, n, nil)
	}
	key := string(c.keyBuf)
	if op, ok := c.memo[key]; ok {
		return op, nil
	}
	op, err := c.regionOp(g, n, nil)
	if err != nil {
		return nil, err
	}
	if c.memo == nil {
		c.memo = make(map[string]*RegionOp)
	}
	c.memo[key] = op
	return op, nil
}

// regionKey canonically identifies a region by its member set.
func regionKey(s graph.Set) string {
	ids := s.Slice()
	b := make([]byte, 0, len(ids)*4)
	for _, id := range ids {
		b = append(b, byte(id), byte(id>>8), byte(id>>16), byte(id>>24))
	}
	return string(b)
}

// regionOp computes the collapsed accounting of an enabled F-Tree node.
// overrides supplies already-split member specs when recursing into nested
// regions (nil at the outermost level).
func (c *collapser) regionOp(g *graph.Graph, n *ftree.Node, overrides map[graph.NodeID]*ops.Spec) (*RegionOp, error) {
	if overrides == nil {
		// Dormant candidates may have been invalidated by graph rewrites
		// applied since the F-Tree was built; re-check before collapsing.
		if err := n.T.ValidateOn(g); err != nil {
			return nil, err
		}
	}
	// Specs of members at this nesting level.
	base := func(v graph.NodeID) (*ops.Spec, error) {
		if overrides != nil {
			if s, ok := overrides[v]; ok {
				return s, nil
			}
		}
		s, ok := g.Node(v).Op.(*ops.Spec)
		if !ok {
			return nil, fmt.Errorf("%w: region member %d is not an ops.Spec", ErrCollapse, v)
		}
		return s, nil
	}
	// Split every member along its chosen axis.
	part := make(map[graph.NodeID]*ops.Spec, len(n.T.S))
	for v := range n.T.S {
		spec, err := base(v)
		if err != nil {
			return nil, err
		}
		ps, err := spec.SplitAxis(n.T.Choice[v], n.N)
		if err != nil {
			return nil, fmt.Errorf("%w: region split: %w", ErrCollapse, err)
		}
		part[v] = ps
	}
	// Build the one-part graph: members with split specs plus placeholder
	// inputs for sliced region inputs (their per-part slice is resident).
	pg := graph.New()
	idMap := make(map[graph.NodeID]graph.NodeID, len(n.T.S))
	var sliceLat float64
	slicedIn, _ := n.T.Inputs(g)
	for _, u := range slicedIn {
		spec, err := base(u)
		if err != nil {
			// Inputs outside overrides at nested levels: use the graph op.
			s, ok := g.Node(u).Op.(*ops.Spec)
			if !ok {
				return nil, err
			}
			spec = s
		}
		axis := n.T.Choice[u]
		full := spec.OutShape()
		sl := ops.NewSlice(full, axis, 0, full.Dim(axis)/n.N, spec.DType())
		idMap[u] = pg.Add(ops.NewInput(sl.OutShape(), spec.DType()))
		sliceLat += c.model.OpLatency(sl)
	}
	for _, v := range topoWithin(g, n.T.S) {
		var ins []graph.NodeID
		for _, in := range g.Node(v).Ins {
			if m, ok := idMap[in]; ok && (n.T.S[in] || contains(slicedIn, in)) {
				ins = append(ins, m)
			}
		}
		idMap[v] = pg.Add(part[v], ins...)
	}
	// Reduce-merged outputs accumulate eagerly: each part's partial sum is
	// added into a full-size accumulator and freed. Model the accumulator
	// as a resident placeholder and the accumulation Add inside the part,
	// so the partial's lifetime ends promptly.
	outs := g.Outs(n.T.S)
	for v := range outs {
		if n.T.Choice[v] >= 0 {
			continue
		}
		ps := part[v]
		acc := pg.Add(ops.NewInput(ps.OutShape(), ps.DType()))
		pg.Add(ops.NewAdd(ps.OutShape(), ps.OutShape(), ps.DType()), acc, idMap[v])
	}
	// Fold nested enabled regions (direct enabled descendants without an
	// intermediate enabled node).
	for _, child := range directEnabledChildren(n) {
		childOverrides := make(map[graph.NodeID]*ops.Spec, len(child.T.S))
		for v := range child.T.S {
			childOverrides[v] = part[v]
		}
		cop, err := c.regionOp(g, child, childOverrides)
		if err != nil {
			return nil, err
		}
		// Re-map member IDs into pg's ID space for replacement.
		s := make(graph.Set, len(child.T.S))
		for v := range child.T.S {
			s[idMap[v]] = true
		}
		if _, err := replaceRegion(pg, s, cop); err != nil {
			return nil, err
		}
	}
	// Accounting over the one-part graph.
	order := c.sc.ScheduleGraph(pg)
	partPeak := c.peakOnly(pg, order)
	var partLat float64
	for _, id := range pg.NodeIDs() {
		node := pg.Node(id)
		if rop, ok := node.Op.(*RegionOp); ok {
			partLat += rop.Latency()
			continue
		}
		partLat += c.model.NodeLatency(node)
	}
	// Output merging: concat-merged outs reach full size (their per-part
	// pieces accumulate in the merged buffer); reduce-merged accumulators
	// are already inside the part graph's accounting.
	var concatOut, reduceOut int64
	var mergeLat float64
	for v := range outs {
		ps := part[v]
		bytes := tensor.Bytes(ps.OutShape(), ps.DType())
		if n.T.Choice[v] > 0 {
			concatOut += bytes * int64(n.N)
			shapes := make([]tensor.Shape, n.N)
			for i := range shapes {
				shapes[i] = ps.OutShape()
			}
			mergeLat += c.model.OpLatency(ops.NewConcat(shapes, n.T.Choice[v], ps.DType()))
		} else {
			reduceOut += bytes
		}
	}
	outBytes := concatOut + reduceOut
	// While the last part runs, (n-1)/n of the concat outputs have already
	// accumulated alongside the part's live set.
	peakDuring := partPeak + concatOut*int64(n.N-1)/int64(n.N)
	transient := peakDuring - outBytes
	if transient < 0 {
		transient = 0
	}
	return &RegionOp{
		name:      fmt.Sprintf("region@%d", smallest(n.T.S)),
		outBytes:  outBytes,
		transient: transient,
		lat:       float64(n.N)*(partLat+sliceLat) + mergeLat,
		n:         n.N,
		members:   len(n.T.S),
	}, nil
}

// replaceRegion substitutes the member set s of eg with one region node.
// Consumers of any region output are rewired to the region node; the
// region node consumes every external input of s.
func replaceRegion(eg *graph.Graph, s graph.Set, op *RegionOp) (graph.NodeID, error) {
	ins := eg.Inps(s).Slice()
	id := eg.Add(op, ins...)
	for v := range eg.Outs(s) {
		// Rewire only consumers OUTSIDE the region; internal edges vanish
		// with the members below.
		for _, c := range eg.Suc(v) {
			if c != id && !s[c] {
				eg.ReplaceInput(c, v, id)
			}
		}
	}
	// Collapsing the region to one node requires that no other path runs
	// from its outputs back to its inputs (possible when two mutually
	// interleaved regions are enabled); detect and reject.
	if _, err := eg.TopoE(); err != nil {
		return graph.Invalid, fmt.Errorf("%w: region at %d: %w", ErrCollapse, smallest(s), err)
	}
	// Remove members (reverse topo within s so consumer checks pass).
	members := topoWithin(eg, s)
	for i := len(members) - 1; i >= 0; i-- {
		if err := eg.Remove(members[i]); err != nil {
			return graph.Invalid, fmt.Errorf("%w: %w", ErrCollapse, err)
		}
	}
	return id, nil
}

func directEnabledChildren(n *ftree.Node) []*ftree.Node {
	var out []*ftree.Node
	var rec func(*ftree.Node)
	rec = func(m *ftree.Node) {
		for _, c := range m.Children {
			if c.Enabled() {
				out = append(out, c)
			} else {
				rec(c)
			}
		}
	}
	rec(n)
	return out
}

func topoWithin(g *graph.Graph, s graph.Set) []graph.NodeID {
	var out []graph.NodeID
	for _, v := range g.Topo() {
		if s[v] {
			out = append(out, v)
		}
	}
	return out
}

func contains(ids []graph.NodeID, v graph.NodeID) bool {
	for _, id := range ids {
		if id == v {
			return true
		}
	}
	return false
}

func smallest(s graph.Set) graph.NodeID {
	best := graph.NodeID(1<<31 - 1)
	for v := range s {
		if v < best {
			best = v
		}
	}
	return best
}
