package opt

import (
	"context"
	"sort"
	"time"

	"magis/internal/cost"
	"magis/internal/graph"
)

// ParetoPoint is one point on the memory/latency trade-off curve, both
// axes normalized against the unoptimized baseline (Fig. 11's axes).
type ParetoPoint struct {
	// MemRatio is peak memory / baseline peak memory.
	MemRatio float64
	// LatOverhead is latency / baseline latency - 1.
	LatOverhead float64
}

// Sweep traces the Pareto boundary by optimizing latency under a sequence
// of memory-ratio constraints (plus every intermediate state visited).
// ratios are fractions of the baseline peak (e.g. 0.8, 0.6, 0.4).
func Sweep(g *graph.Graph, model *cost.Model, ratios []float64, perRun time.Duration, base Options) ([]ParetoPoint, error) {
	return SweepCtx(context.Background(), g, model, ratios, perRun, base)
}

// SweepCtx is Sweep with cooperative cancellation. Cancelling the context
// stops the current run within one candidate evaluation and returns the
// frontier traced so far (never an error once at least the baseline point
// exists), so an interrupted sweep still yields a usable partial curve.
func SweepCtx(ctx context.Context, g *graph.Graph, model *cost.Model, ratios []float64, perRun time.Duration, base Options) ([]ParetoPoint, error) {
	bl := Baseline(g, model)
	var pts []ParetoPoint
	pts = append(pts, ParetoPoint{1, 0})
	for _, r := range ratios {
		if ctx.Err() != nil {
			break // degrade to the frontier traced so far
		}
		o := base
		o.Mode = LatencyUnderMemory
		o.MemLimit = int64(r * float64(bl.PeakMem))
		o.TimeBudget = perRun
		res, err := OptimizeCtx(ctx, g, model, o)
		if err != nil {
			return nil, err
		}
		pts = append(pts, ParetoPoint{
			MemRatio:    float64(res.Best.PeakMem) / float64(bl.PeakMem),
			LatOverhead: res.Best.Latency/bl.Latency - 1,
		})
	}
	return Pareto(pts), nil
}

// Pareto filters points to the non-dominated frontier, sorted by memory
// ratio ascending.
func Pareto(pts []ParetoPoint) []ParetoPoint {
	sort.Slice(pts, func(i, j int) bool {
		if pts[i].MemRatio != pts[j].MemRatio {
			return pts[i].MemRatio < pts[j].MemRatio
		}
		return pts[i].LatOverhead < pts[j].LatOverhead
	})
	var front []ParetoPoint
	bestLat := 1e18
	for _, p := range pts {
		if p.LatOverhead < bestLat {
			front = append(front, p)
			bestLat = p.LatOverhead
		}
	}
	return front
}
