package opt

import (
	"runtime"
	"time"
)

// nodeExpansionCost is the reference per-node cost of one expansion: each
// expansion evaluates a bounded batch of candidates (MaxSites per rule,
// capped catalogs), and every candidate evaluation — scheduling, simulation,
// hashing — is linear in graph size. 50µs/node/expansion is a deliberately
// coarse single-machine constant: admission control needs relative cost
// (a 2000-node cold search is ~20x a 100-node one), not microbenchmark
// accuracy.
const nodeExpansionCost = 50 * time.Microsecond

// baselineEvalCost prices the fixed pre-search work (baseline + initial
// evaluation) per node.
const baselineEvalCost = 10 * time.Microsecond

// EstimateSearchTime predicts the wall-clock a fresh search over a
// nodes-sized graph will consume under o, for resource-aware admission
// control: the per-expansion cost model above, capped by whichever of the
// iteration bound and the time budget binds first, plus the fixed
// evaluation overhead. The estimate is intentionally pessimistic-side for
// budget-bound searches (a search that converges early costs less, never
// more) — an admission layer holding this estimate until the job settles
// over-reserves, it does not over-admit.
func EstimateSearchTime(nodes int, o Options) time.Duration {
	(&o).defaults()
	if nodes < 1 {
		nodes = 1
	}
	// Workers may be caller-supplied; more of them than cores does not make
	// expansions faster, it only drives the estimate toward zero — which
	// would let a request talk its way past cost-budget admission and the
	// deadline-feasibility check. Divide by real parallelism only.
	workers := o.Workers
	if max := runtime.GOMAXPROCS(0); workers > max {
		workers = max
	}
	perExpansion := time.Duration(nodes) * nodeExpansionCost / time.Duration(workers)
	if perExpansion <= 0 {
		perExpansion = time.Microsecond
	}
	est := time.Duration(o.MaxIterations) * perExpansion
	if o.TimeBudget > 0 && o.TimeBudget < est {
		est = o.TimeBudget
	}
	return est + time.Duration(nodes)*baselineEvalCost
}
