package opt

import (
	"fmt"
	"math/rand"

	"magis/internal/cost"
	"magis/internal/ftree"
	"magis/internal/graph"
	"magis/internal/sched"
)

// The differential evaluation oracle runs the incremental and from-scratch
// evaluation paths side by side on randomized rewrite sequences drawn from
// the real pipeline (rule application → region collapse → WL hash →
// incremental reschedule → simulation) and checks:
//
//   - hash equality (exact): WLHashFrom spliced into the parent's label
//     snapshot is bit-identical to a strict WLHashScratch of the same
//     evaluation graph;
//   - reachability equality (exact): the chained Rebase index answers
//     narrow-waist queries identically to a freshly built index;
//   - schedule validity (exact): the incremental schedule is a valid
//     execution order of the evaluation graph;
//   - peak consistency (exact): the state's recorded peak equals an
//     independent re-simulation of its schedule;
//   - peak quality (windowed): the incremental schedule's peak is within
//     Window of a full ScheduleGraph reschedule. The two are different
//     valid heuristics, so this bound is deliberately loose — it catches
//     an incremental path gone off the rails, not heuristic noise.
//
// RunOracle is the engine behind both TestDifferentialOracle and the
// magis-bench "oracle" target.

// OracleConfig parameterizes a differential oracle run.
type OracleConfig struct {
	// Model prices latencies (required).
	Model *cost.Model
	// Graphs are the seed workloads; sequence i starts from Graphs[i%len].
	Graphs []*graph.Graph
	// Sequences is the number of randomized rewrite sequences (default 100).
	Sequences int
	// Depth is the number of chained rewrite steps per sequence (default 3).
	Depth int
	// MaxCandidates bounds how many of each step's candidates are compared
	// (default 4; candidates are sampled without replacement).
	MaxCandidates int
	// Seed derives each sequence's RNG (sequence i uses Seed+i).
	Seed int64
	// Window is the allowed incremental/full peak-memory ratio (default 2).
	Window float64
}

func (c *OracleConfig) defaults() {
	if c.Sequences == 0 {
		c.Sequences = 100
	}
	if c.Depth == 0 {
		c.Depth = 3
	}
	if c.MaxCandidates == 0 {
		c.MaxCandidates = 4
	}
	if c.Window == 0 {
		c.Window = 2
	}
}

// OracleReport summarizes a differential oracle run.
type OracleReport struct {
	// Sequences and Steps count completed rewrite sequences and chained
	// steps within them.
	Sequences, Steps int
	// HashChecks counts incremental-vs-strict hash comparisons; each one
	// asserted bit equality.
	HashChecks int
	// SchedChecks counts evaluated candidates whose schedule was validated
	// and whose peak was re-simulated and window-compared.
	SchedChecks int
	// ReachChecks counts rebased-vs-fresh reachability index comparisons.
	ReachChecks int
	// Mismatches lists every violated assertion; empty means the
	// incremental and full paths agreed everywhere.
	Mismatches []string
}

// OK reports whether every comparison agreed.
func (r *OracleReport) OK() bool { return len(r.Mismatches) == 0 }

// String renders a one-screen summary.
func (r *OracleReport) String() string {
	s := fmt.Sprintf("oracle: %d sequences, %d steps, %d hash / %d sched / %d reach checks, %d mismatches\n",
		r.Sequences, r.Steps, r.HashChecks, r.SchedChecks, r.ReachChecks, len(r.Mismatches))
	for i, m := range r.Mismatches {
		if i == 10 {
			s += fmt.Sprintf("  ... %d more\n", len(r.Mismatches)-10)
			break
		}
		s += "  MISMATCH " + m + "\n"
	}
	return s
}

func (r *OracleReport) mismatch(format string, args ...interface{}) {
	r.Mismatches = append(r.Mismatches, fmt.Sprintf(format, args...))
}

// RunOracle executes the differential oracle.
func RunOracle(cfg OracleConfig) *OracleReport {
	cfg.defaults()
	rep := &OracleReport{}
	if cfg.Model == nil || len(cfg.Graphs) == 0 {
		rep.mismatch("config: Model and at least one graph are required")
		return rep
	}
	for seq := 0; seq < cfg.Sequences; seq++ {
		oracleSequence(&cfg, rep, seq)
		rep.Sequences++
	}
	return rep
}

// oracleSequence walks one randomized rewrite chain. The incremental
// evaluator carries parent WL snapshots and reach hints across steps
// exactly like the search loop; the strict evaluator re-derives everything
// from scratch for comparison.
func oracleSequence(cfg *OracleConfig, rep *OracleReport, seq int) {
	rng := rand.New(rand.NewSource(cfg.Seed + int64(seq)))
	o := &Options{Workers: 1}
	o.defaults()
	ftOpts := ftree.Options{MaxLevel: o.MaxLevel, MaxCandidates: o.MaxCandidates}

	var stats Stats
	inc := newEvaluator(cfg.Model, false, false, &stats)
	ref := newEvaluator(cfg.Model, true, true, &stats) // full reschedule, strict hash

	parent := &State{G: cfg.Graphs[seq%len(cfg.Graphs)].Clone()}
	if err := guard("oracle", "initial evaluation", func() error {
		if err := inc.evaluate(parent, nil, nil); err != nil {
			return err
		}
		inc.hash(parent, nil) // capture the WL snapshot children splice into
		parent.FT = ftree.Build(parent.G, parent.Hot, ftOpts)
		return nil
	}); err != nil {
		rep.mismatch("seq %d: initial evaluation failed: %v", seq, err)
		return
	}

	for step := 0; step < cfg.Depth; step++ {
		res := &Result{}
		quar := newQuarantine(o.QuarantineAfter)
		cands := neighbors(parent, o, res, quar, nil)
		if len(cands) == 0 {
			return
		}
		rng.Shuffle(len(cands), func(i, j int) { cands[i], cands[j] = cands[j], cands[i] })
		if len(cands) > cfg.MaxCandidates {
			cands = cands[:cfg.MaxCandidates]
		}
		rc := &reachCache{g: parent.EvalG, prev: parent.reachHint}
		parent.reachHint = nil
		inc.rc = rc

		// Reachability: the (possibly rebased) expansion index must answer
		// exactly like a fresh build over the parent's evaluation graph.
		idx, fresh := rc.index(), graph.NewReachIndex(parent.EvalG)
		for _, v := range parent.EvalG.Topo() {
			if idx.NW(v) != fresh.NW(v) || idx.NumAnc(v) != fresh.NumAnc(v) || idx.NumDes(v) != fresh.NumDes(v) {
				rep.mismatch("seq %d step %d: reach index node %d: rebased (nw=%d anc=%d des=%d) != fresh (nw=%d anc=%d des=%d)",
					seq, step, v, idx.NW(v), idx.NumAnc(v), idx.NumDes(v),
					fresh.NW(v), fresh.NumAnc(v), fresh.NumDes(v))
			}
		}
		rep.ReachChecks++

		var next *State
		for _, cand := range cands {
			if oracleCandidate(cfg, rep, seq, step, inc, ref, parent, cand) && next == nil {
				next = cand.state
				next.reachHint = rc
			}
		}
		if next == nil {
			return
		}
		if next.stale {
			if err := guard("oracle", "tree rebuild", func() error {
				next.FT = rebuildTree(next, ftOpts)
				return nil
			}); err != nil {
				next.FT = &ftree.Tree{}
			}
			next.stale = false
		}
		parent = next
		rep.Steps++
	}
}

// oracleCandidate runs both evaluation paths on one candidate and records
// any disagreement. Returns true when the candidate evaluated cleanly on
// the incremental path and may seed the next step; its state then holds
// the incremental results, exactly as the search would leave them.
func oracleCandidate(cfg *OracleConfig, rep *OracleReport, seq, step int, inc, ref *evaluator, parent *State, cand *candidate) bool {
	where := fmt.Sprintf("seq %d step %d %s[%s]", seq, step, cand.rule, cand.site)
	if err := guard(cand.rule, cand.site, func() error {
		return inc.collapse(cand.state)
	}); err != nil {
		return false // rejected candidates are not comparable, only skipped
	}
	hInc := inc.hash(cand.state, parent)
	hRef := ref.hash(cand.state, parent)
	if hInc != hRef {
		rep.mismatch("%s: incremental hash %x != strict %x", where, hInc, hRef)
	}
	rep.HashChecks++

	if err := guard(cand.rule, cand.site, func() error {
		return inc.evaluate(cand.state, parent, cand.oldMutated)
	}); err != nil {
		return false
	}
	s := cand.state
	if err := s.Sched.Validate(s.EvalG); err != nil {
		rep.mismatch("%s: incremental schedule invalid: %v", where, err)
		return false
	}
	if p := sched.Simulate(s.EvalG, s.Sched).Peak; p != s.PeakMem {
		rep.mismatch("%s: recorded peak %d != re-simulated %d", where, s.PeakMem, p)
	}

	// Full-reschedule reference: evaluate with the strict evaluator, then
	// restore the incremental results so the chained walk matches a real
	// search trajectory.
	incSched, incPeak, incLat, incHot := s.Sched, s.PeakMem, s.Latency, s.Hot
	if err := guard(cand.rule, cand.site, func() error {
		return ref.evaluate(s, parent, cand.oldMutated)
	}); err == nil {
		if err := s.Sched.Validate(s.EvalG); err != nil {
			rep.mismatch("%s: full schedule invalid: %v", where, err)
		}
		if float64(incPeak) > cfg.Window*float64(s.PeakMem) {
			rep.mismatch("%s: incremental peak %d exceeds %.1fx full-reschedule peak %d",
				where, incPeak, cfg.Window, s.PeakMem)
		}
	}
	s.Sched, s.PeakMem, s.Latency, s.Hot = incSched, incPeak, incLat, incHot
	rep.SchedChecks++
	return true
}
