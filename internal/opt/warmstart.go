package opt

import (
	"fmt"

	"magis/internal/ftree"
	"magis/internal/graph"
	"magis/internal/graphio"
	"magis/internal/sched"
)

// Warm starts let a cached plan pre-seed a fresh search: instead of
// climbing from the unoptimized graph, the frontier starts with the
// cached plan's transformation state replayed and re-evaluated, so the
// search resumes refining a known-good region of the space. The contract
// is strictly best-effort — a seed that fails to replay (missing nodes,
// stale fission choices, a panic anywhere in re-evaluation) is dropped
// with a diagnostic and the search degrades to a cold start. A seed can
// therefore never make a search wrong, only warmer.

// PlanRecord is the portable, serializable record of one optimized plan:
// the logical graph (rewrites included), the F-Tree (the fission
// transformation sequence with its enabled choices), and the schedule.
// It is the unit the plan cache persists and replays.
type PlanRecord struct {
	G     *graphio.GraphRecord `json:"g"`
	FT    []*ftNodeRec         `json:"ft,omitempty"`
	Sched sched.Schedule       `json:"sched,omitempty"`
}

// RecordPlan captures a search result's best state as a PlanRecord.
func RecordPlan(s *State) (*PlanRecord, error) {
	if s == nil || s.G == nil {
		return nil, fmt.Errorf("opt: plan record: no state")
	}
	g, err := graphio.Record(s.G)
	if err != nil {
		return nil, fmt.Errorf("opt: plan record: %w", err)
	}
	return &PlanRecord{
		G:     g,
		FT:    recordTree(s.FT),
		Sched: append(sched.Schedule(nil), s.Sched...),
	}, nil
}

// Seed restores the full recorded state — logical graph and F-Tree — for
// use against the same input graph the plan was recorded from (e.g. an
// identical request with a different search budget). The returned state
// is un-evaluated; OptimizeSeeded re-prices it with the live evaluator,
// so cached bytes can never smuggle in stale metrics.
func (r *PlanRecord) Seed() (*State, error) {
	g, err := r.G.Restore()
	if err != nil {
		return nil, fmt.Errorf("opt: warm start: %w", err)
	}
	ft, err := restoreTree(r.FT)
	if err != nil {
		return nil, fmt.Errorf("opt: warm start: %w", err)
	}
	return &State{G: g, FT: ft}, nil
}

// SeedFor replays the record's transformation state onto a different
// graph of the same topology (typically the same model at another batch
// size). Only the F-Tree half replays — fission regions are node-ID sets,
// valid wherever the same construction order produced the same IDs —
// while graph rewrites are shape-bound and are left for the search to
// rediscover. Regions referencing nodes absent from g (e.g. regions the
// recorded plan carved out of rewritten subgraphs) are pruned, their
// still-valid sub-regions promoted in their place; a fully pruned tree
// degrades the seed to the plain initial state, which the search's
// duplicate filter then discards. A seed from SeedFor can therefore warm
// the search or do nothing, but never mislead it.
func (r *PlanRecord) SeedFor(g *graph.Graph) (*State, error) {
	if g == nil {
		return nil, fmt.Errorf("opt: warm start: nil target graph")
	}
	ft, err := restoreTree(r.FT)
	if err != nil {
		return nil, fmt.Errorf("opt: warm start: %w", err)
	}
	rg, err := r.G.Restore()
	if err != nil {
		return nil, fmt.Errorf("opt: warm start: %w", err)
	}
	return &State{G: g.Clone(), FT: pruneTree(ft, g, rg)}, nil
}

// pruneTree removes F-Tree nodes whose region includes nodes g does not
// have — or whose operator kind differs from the recorded graph's, i.e.
// an ID that exists by coincidence but stands for a different operator —
// promoting valid descendants into the removed node's place so a
// partially replayable hierarchy keeps its replayable parts.
func pruneTree(t *ftree.Tree, g, recorded *graph.Graph) *ftree.Tree {
	valid := func(n *ftree.Node) bool {
		for v := range n.T.S {
			if !g.Has(v) {
				return false
			}
			if recorded.Has(v) && g.Node(v).Op.Kind() != recorded.Node(v).Op.Kind() {
				return false
			}
		}
		return true
	}
	var keep func(n, parent *ftree.Node, out *[]*ftree.Node)
	keep = func(n, parent *ftree.Node, out *[]*ftree.Node) {
		if valid(n) {
			n.Parent = parent
			kids := n.Children
			n.Children = nil
			for _, c := range kids {
				keep(c, n, &n.Children)
			}
			*out = append(*out, n)
			return
		}
		for _, c := range n.Children {
			keep(c, parent, out)
		}
	}
	nt := &ftree.Tree{}
	for _, rt := range t.Roots {
		keep(rt, nil, &nt.Roots)
	}
	return nt
}
