package opt

import (
	"context"
	"sync"
	"sync/atomic"

	"magis/internal/cost"
	"magis/internal/graph"
)

// The parallel candidate-evaluation pipeline. After neighbors generates an
// expansion's candidates, they fan out to Options.Workers goroutines, each
// owning an evaluator (scheduler, collapser, scratch buffers, stats
// shard). Everything a worker touches is either candidate-private (the
// cloned graph, the collapsed eval graph) or read-only and shared (the
// parent state and its WL-label snapshot, the cost model's lock-free
// cache, the once-built reach index, a frozen snapshot of the seen-hash
// set). All order-sensitive
// bookkeeping — the authoritative duplicate filter, quarantine streaks,
// diagnostics, best-state selection, history, heap pushes — happens on the
// search goroutine in candidate-index order (searchLoop.absorb), so the
// search result is bit-for-bit reproducible for any worker count.

// candOutcome carries one candidate's off-thread evaluation result back to
// the deterministic merge step. At most one of the failure fields is set.
type candOutcome struct {
	hash uint64
	// hashErr is a guard failure from collapse/hash; the candidate carries
	// no usable state.
	hashErr error
	// dup reports that the hash hit the seen-set snapshot taken before the
	// expansion and evaluation was skipped. The merge re-checks the live
	// set either way, which also catches duplicates arising within one
	// expansion.
	dup bool
	// badGraph: Options.CheckInvariants rejected the collapsed graph.
	badGraph bool
	// evalErr is a guard failure or plain error from evaluate.
	evalErr error
	// badSched: Options.CheckInvariants rejected the schedule.
	badSched bool
}

// processCandidate runs the per-candidate pipeline — collapse → WL-hash →
// duplicate pre-filter → graph validation → schedule + simulate → schedule
// validation — on one worker's evaluator. seen is the frozen snapshot of
// hashes committed by previous expansions; it is read, never written: the
// merge step owns the authoritative duplicate decision.
func processCandidate(ev *evaluator, cand *candidate, parent *State, o *Options, seen map[uint64]bool) *candOutcome {
	out := &candOutcome{}
	if err := guard(cand.rule, cand.site, func() error {
		if err := ev.collapse(cand.state); err != nil {
			return err
		}
		out.hash = ev.hash(cand.state, parent)
		return nil
	}); err != nil {
		out.hashErr = err
		return out
	}
	if seen[out.hash] {
		out.dup = true
		return out
	}
	// Reject corrupted candidates before they can poison the
	// measurements: a shape-broken graph can report an arbitrarily low
	// (wrong) peak and win the search.
	if o.CheckInvariants {
		if err := graph.Validate(cand.state.G); err != nil {
			out.badGraph = true
			return out
		}
	}
	if err := guard(cand.rule, cand.site, func() error {
		return ev.evaluate(cand.state, parent, cand.oldMutated)
	}); err != nil {
		out.evalErr = err
		return out
	}
	if o.CheckInvariants {
		if err := cand.state.Sched.Validate(cand.state.EvalG); err != nil {
			out.badSched = true
		}
	}
	return out
}

// evalPool owns the per-worker evaluators of one search run. Worker 0's
// evaluator doubles as the search's primary evaluator (initial evaluation,
// Workers == 1 fast path) and writes the main Stats directly; the others
// write private shards folded in by flush.
type evalPool struct {
	evs    []*evaluator
	shards []Stats
}

func newEvalPool(workers int, model *cost.Model, full, strict bool, main *Stats) *evalPool {
	p := &evalPool{shards: make([]Stats, workers)}
	for i := 0; i < workers; i++ {
		st := main
		if i > 0 {
			st = &p.shards[i]
		}
		p.evs = append(p.evs, newEvaluator(model, full, strict, st))
	}
	return p
}

// primary returns the evaluator used outside the fan-out.
func (p *evalPool) primary() *evaluator { return p.evs[0] }

// run fans cands out to the pool and returns outcomes indexed like cands.
// A nil outcome means the context was cancelled before that candidate was
// picked up; the merge stops at the first nil, mirroring the sequential
// loop's per-candidate cancellation check. guard panic containment runs
// inside each worker goroutine, so one poisoned candidate still costs only
// itself.
func (p *evalPool) run(ctx context.Context, cands []*candidate, parent *State, rc *reachCache, o *Options, seen map[uint64]bool) []*candOutcome {
	outs := make([]*candOutcome, len(cands))
	// Redistribute recycled graph shells from the central pool (worker 0's)
	// to the worker-local ones while everything is quiescent; each worker
	// will collapse roughly its share of the candidates.
	share := len(cands)/len(p.evs) + 1
	for w := 1; w < len(p.evs) && w < len(cands); w++ {
		p.evs[0].gp.give(&p.evs[w].gp, share)
	}
	var next atomic.Int64
	next.Store(-1)
	var wg sync.WaitGroup
	for w := 0; w < len(p.evs) && w < len(cands); w++ {
		ev := p.evs[w]
		ev.rc = rc
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1))
				if i >= len(cands) || ctx.Err() != nil {
					return
				}
				outs[i] = processCandidate(ev, cands[i], parent, o, seen)
			}
		}()
	}
	wg.Wait()
	return outs
}

// flush folds the worker shards into the main stats. Called once when the
// search ends.
func (p *evalPool) flush(main *Stats) {
	for i := 1; i < len(p.shards); i++ {
		main.add(&p.shards[i])
		p.shards[i] = Stats{}
	}
}
