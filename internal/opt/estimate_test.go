package opt

import (
	"runtime"
	"testing"
	"time"
)

// TestEstimateSearchTime pins the admission cost model's shape: monotone in
// graph size, capped by whichever of the time budget and the iteration
// bound binds first, and divided across workers. Absolute accuracy is a
// non-goal — relative ordering is what admission control consumes.
func TestEstimateSearchTime(t *testing.T) {
	base := Options{TimeBudget: -1, MaxIterations: 100, Workers: 1}

	small := EstimateSearchTime(10, base)
	large := EstimateSearchTime(1000, base)
	if small <= 0 || large <= 0 {
		t.Fatalf("estimates must be positive: small=%v large=%v", small, large)
	}
	if large <= small {
		t.Errorf("estimate not monotone in nodes: %d nodes -> %v, %d nodes -> %v", 10, small, 1000, large)
	}

	// A positive TimeBudget caps the expansion term.
	capped := EstimateSearchTime(1000, Options{TimeBudget: time.Second, MaxIterations: 100000, Workers: 1})
	uncapped := EstimateSearchTime(1000, Options{TimeBudget: -1, MaxIterations: 100000, Workers: 1})
	if capped >= uncapped {
		t.Errorf("budget cap did not bind: capped=%v uncapped=%v", capped, uncapped)
	}
	if capped > time.Second+time.Duration(1000)*baselineEvalCost {
		t.Errorf("capped estimate %v exceeds budget + fixed overhead", capped)
	}

	// Fewer iterations cost less when the budget does not bind.
	few := EstimateSearchTime(100, Options{TimeBudget: -1, MaxIterations: 10, Workers: 1})
	many := EstimateSearchTime(100, Options{TimeBudget: -1, MaxIterations: 1000, Workers: 1})
	if few >= many {
		t.Errorf("iteration cap did not bind: few=%v many=%v", few, many)
	}

	// More workers divide the expansion term — up to the cores that exist.
	one := EstimateSearchTime(1000, Options{TimeBudget: -1, MaxIterations: 100, Workers: 1})
	if runtime.GOMAXPROCS(0) >= 4 {
		four := EstimateSearchTime(1000, Options{TimeBudget: -1, MaxIterations: 100, Workers: 4})
		if four >= one {
			t.Errorf("workers did not divide the estimate: 1 worker=%v 4 workers=%v", one, four)
		}
	}

	// Workers beyond GOMAXPROCS are clamped: a client-supplied absurd value
	// must not drive the estimate toward zero (that would bypass cost-budget
	// admission and deadline-feasibility checks built on this estimate).
	atCap := EstimateSearchTime(1000, Options{TimeBudget: -1, MaxIterations: 100, Workers: runtime.GOMAXPROCS(0)})
	absurd := EstimateSearchTime(1000, Options{TimeBudget: -1, MaxIterations: 100, Workers: 1 << 20})
	if absurd != atCap {
		t.Errorf("oversized Workers not clamped: %d workers=%v, GOMAXPROCS workers=%v", 1<<20, absurd, atCap)
	}

	// Degenerate inputs stay sane: zero/negative node counts estimate as one
	// node, never zero or negative.
	if got := EstimateSearchTime(0, base); got <= 0 {
		t.Errorf("EstimateSearchTime(0) = %v, want positive", got)
	}
}
