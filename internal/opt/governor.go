package opt

// The memory governor: the optimizer's own defense against the resource
// it optimizes. A big frontier of retained States (each holding a graph,
// an F-Tree, a schedule, WL-label snapshots) can grow process RSS until
// the kernel OOM-kills a search whose whole job is respecting memory
// budgets. With Options.MemBudget set, live memory is sampled at every
// expansion boundary — the same consistent point checkpoints snapshot —
// and each over-budget boundary sheds one stage:
//
//	stage 1: evict the worst-scoring half of the frontier (the states
//	         least likely to ever be expanded), dropping their retained
//	         graphs and caches;
//	stage 2: halve MaxSites and MaxCandidates, shrinking every future
//	         expansion's fan-out;
//	stage 3: flush the graph recyclers' free lists and force a GC, so
//	         the next sample reflects what is actually reachable;
//	stage 4: stop gracefully with StopMemBudget, best-so-far preserved —
//	         the anytime contract, exactly like TimeBudget.
//
// A boundary back under budget resets nothing — shed capacity stays
// shed — but the ladder only advances while over budget, so a search
// that recovers after stage 1 keeps running indefinitely. When the
// budget is never exceeded the governor only reads, keeping governed
// and ungoverned runs bit-identical (the determinism contract tests
// pin down).

import (
	"container/heap"
	"runtime"
	"runtime/metrics"
	"sort"
)

// GovernorStatus reports what the memory governor observed and shed.
type GovernorStatus struct {
	// Budget echoes Options.MemBudget.
	Budget int64 `json:"budget"`
	// Samples counts boundary samples taken.
	Samples int `json:"samples"`
	// PeakBytes is the highest live-memory sample observed.
	PeakBytes int64 `json:"peak_bytes"`
	// EvictedStates counts frontier states shed by stage 1.
	EvictedStates int `json:"evicted_states"`
	// Shrinks counts stage-2 knob halvings.
	Shrinks int `json:"shrinks"`
	// Flushes counts stage-3 pool flush + forced GC passes.
	Flushes int `json:"flushes"`
	// Stage is the highest ladder stage reached (0 = never over budget).
	Stage int `json:"stage"`
}

type governor struct {
	budget  int64
	used    func() uint64
	status  GovernorStatus
	samples []metrics.Sample
}

func newGovernor(budget int64, used func() uint64) *governor {
	g := &governor{budget: budget, used: used}
	g.status.Budget = budget
	if g.used == nil {
		g.samples = []metrics.Sample{
			{Name: "/memory/classes/total:bytes"},
			{Name: "/memory/classes/heap/released:bytes"},
		}
		g.used = g.runtimeUsed
	}
	return g
}

// runtimeUsed approximates process RSS from the runtime's own accounting:
// everything the Go runtime holds from the OS minus what it has already
// released back. Reading two counters costs microseconds — noise next to
// an expansion's scheduling and simulation work.
func (g *governor) runtimeUsed() uint64 {
	metrics.Read(g.samples)
	total := g.samples[0].Value.Uint64()
	released := g.samples[1].Value.Uint64()
	if released > total {
		return 0
	}
	return total - released
}

// check samples live memory at an expansion boundary and, when over
// budget, sheds the next ladder stage. It reports true when the search
// must stop (ladder exhausted while still over budget).
func (g *governor) check(l *searchLoop) bool {
	g.status.Samples++
	used := int64(g.used())
	if used > g.status.PeakBytes {
		g.status.PeakBytes = used
	}
	if used <= g.budget {
		return false
	}
	g.status.Stage++
	d := &l.res.Diagnostics
	switch g.status.Stage {
	case 1:
		n := l.evictWorstHalf()
		g.status.EvictedStates += n
		d.Note("mem-governor: evicted worst-scoring frontier states")
	case 2:
		if l.o.MaxSites > 1 {
			l.o.MaxSites = (l.o.MaxSites + 1) / 2
		}
		if l.o.MaxCandidates > 8 {
			l.o.MaxCandidates /= 2
			l.ftOpts.MaxCandidates = l.o.MaxCandidates
		}
		g.status.Shrinks++
		d.Note("mem-governor: shrank MaxSites/MaxCandidates")
	case 3:
		l.pool.releaseMemory()
		runtime.GC()
		g.status.Flushes++
		d.Note("mem-governor: flushed graph pools and forced GC")
	default:
		d.Note("mem-governor: still over budget, stopping with best-so-far")
		return true
	}
	return false
}

// evictWorstHalf drops the worst-scoring half of the frontier, keeping at
// least the single best state. Eviction order is the search's own better()
// with stable ties, so it is deterministic for a deterministic frontier.
// Evicted states release their retained caches; their graphs are NOT
// recycled into the pools (they may share structure with live parents) —
// stage 3 hands the rest to the GC.
func (l *searchLoop) evictWorstHalf() int {
	items := l.q.items
	n := len(items)
	if n <= 1 {
		return 0
	}
	sort.SliceStable(items, func(i, j int) bool { return l.o.better(items[i], items[j], 1) })
	keep := (n + 1) / 2
	for _, s := range items[keep:] {
		s.reachHint = nil
		s.wl = nil
	}
	for i := keep; i < n; i++ {
		items[i] = nil
	}
	l.q.items = items[:keep]
	heap.Init(l.q)
	return n - keep
}

// releaseMemory empties every worker's graph free list so the shells
// become garbage; the governor calls it right before forcing a GC.
func (p *evalPool) releaseMemory() {
	for _, ev := range p.evs {
		ev.gp.free = nil
	}
}
