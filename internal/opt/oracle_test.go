package opt

import (
	"testing"
	"time"

	"magis/internal/graph"
	"magis/internal/models"
)

// TestDifferentialOracle runs the incremental and from-scratch evaluation
// paths side by side over randomized rewrite sequences through the real
// pipeline (ISSUE 7 acceptance: >= 100 sequences, identical hashes, valid
// schedules, consistent peaks).
func TestDifferentialOracle(t *testing.T) {
	seqs := 100
	if testing.Short() {
		seqs = 20
	}
	rep := RunOracle(OracleConfig{
		Model: model(),
		Graphs: []*graph.Graph{
			models.MLP(512, 64, 128, 10, 3).G,
			models.UNet(4, 64).G,
		},
		Sequences: seqs,
		Depth:     3,
		Seed:      42,
	})
	t.Log(rep.String())
	if !rep.OK() {
		t.Fatalf("differential oracle found %d mismatches:\n%s", len(rep.Mismatches), rep)
	}
	if rep.HashChecks < seqs {
		t.Fatalf("oracle compared only %d hashes over %d sequences — the walk is not exercising the pipeline", rep.HashChecks, seqs)
	}
	if rep.SchedChecks == 0 || rep.ReachChecks == 0 {
		t.Fatalf("oracle ran no schedule (%d) or reach (%d) comparisons", rep.SchedChecks, rep.ReachChecks)
	}
}

// FuzzDifferentialOracle lets the fuzzer drive the sequence seed: any
// rewrite chain the mutator discovers must keep the incremental and
// from-scratch paths in agreement. CI runs this with a short -fuzztime
// budget on top of the fixed-seed test above.
func FuzzDifferentialOracle(f *testing.F) {
	m := model()
	graphs := []*graph.Graph{models.MLP(512, 64, 128, 10, 3).G}
	f.Add(int64(1))
	f.Add(int64(-7))
	f.Fuzz(func(t *testing.T, seed int64) {
		rep := RunOracle(OracleConfig{
			Model:     m,
			Graphs:    graphs,
			Sequences: 1,
			Depth:     2,
			Seed:      seed,
		})
		if !rep.OK() {
			t.Fatalf("seed %d: %s", seed, rep)
		}
	})
}

// TestStrictHashSearchEquivalence runs the same bounded search with
// incremental and strict hashing and requires identical outcomes: the two
// hash paths are bit-identical, so the duplicate filter — and therefore
// the whole deterministic search trajectory — must not change.
func TestStrictHashSearchEquivalence(t *testing.T) {
	g := fatMLP()
	m := model()
	run := func(strict bool) *Result {
		res, err := Optimize(g, m, Options{
			Mode:            MemoryUnderLatency,
			LatencyLimit:    Baseline(g, m).Latency * 1.10,
			TimeBudget:      time.Minute, // MaxIterations is the binding bound
			MaxIterations:   12,
			Workers:         1,
			CheckInvariants: true,
			StrictHash:      strict,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(false), run(true)
	if a.Best.PeakMem != b.Best.PeakMem || a.Best.Latency != b.Best.Latency {
		t.Fatalf("incremental (peak %d, lat %g) != strict (peak %d, lat %g)",
			a.Best.PeakMem, a.Best.Latency, b.Best.PeakMem, b.Best.Latency)
	}
	if len(a.Best.Sched) != len(b.Best.Sched) {
		t.Fatalf("schedule lengths differ: %d != %d", len(a.Best.Sched), len(b.Best.Sched))
	}
	for i := range a.Best.Sched {
		if a.Best.Sched[i] != b.Best.Sched[i] {
			t.Fatalf("schedules diverge at %d: %d != %d", i, a.Best.Sched[i], b.Best.Sched[i])
		}
	}
	if a.Stats.Filtered != b.Stats.Filtered || a.Stats.Iterations != b.Stats.Iterations {
		t.Fatalf("search trajectories diverge: filtered %d/%d, iterations %d/%d",
			a.Stats.Filtered, b.Stats.Filtered, a.Stats.Iterations, b.Stats.Iterations)
	}
}
