package opt

import (
	"context"
	"testing"
	"time"

	"magis/internal/cost"
	"magis/internal/ftree"
	"magis/internal/models"
)

func warmTestOptions() Options {
	return Options{
		Mode:            MemoryUnderLatency,
		TimeBudget:      30 * time.Second,
		MaxIterations:   12,
		Workers:         1,
		CheckInvariants: true,
	}
}

// TestWarmStartRoundTrip: record a finished search's best plan, replay it
// as a seed into a fresh search on the same graph, and require (a) the
// seed to be admitted and (b) the warm result to be at least as good as
// the recorded plan — the seed bounds the search from below.
func TestWarmStartRoundTrip(t *testing.T) {
	model := cost.NewModel(cost.RTX3090())
	w := models.MLP(64, 32, 64, 16, 3)

	cold, err := Optimize(w.G, model, warmTestOptions())
	if err != nil {
		t.Fatal(err)
	}
	rec, err := RecordPlan(cold.Best)
	if err != nil {
		t.Fatal(err)
	}

	seed, err := rec.Seed()
	if err != nil {
		t.Fatal(err)
	}
	o := warmTestOptions()
	o.MaxIterations = 2 // barely any search: the seed must carry the result
	warm, err := OptimizeSeeded(context.Background(), w.G, model, o, seed)
	if err != nil {
		t.Fatal(err)
	}
	if d := warm.Diagnostics.Rules[warmRuleName]; d == nil || d.Evaluated != 1 {
		t.Fatalf("warm-start diag = %+v, want 1 evaluated seed", d)
	}
	if warm.Best.PeakMem > cold.Best.PeakMem {
		t.Errorf("warm best peak %d worse than the seeded plan's %d", warm.Best.PeakMem, cold.Best.PeakMem)
	}
}

// TestWarmStartSeedForOtherBatch replays a plan's fission state onto the
// same model built at a different batch size (same topology and node IDs,
// different shapes).
func TestWarmStartSeedForOtherBatch(t *testing.T) {
	model := cost.NewModel(cost.RTX3090())
	small := models.MLP(64, 32, 64, 16, 3)

	cold, err := Optimize(small.G, model, warmTestOptions())
	if err != nil {
		t.Fatal(err)
	}
	rec, err := RecordPlan(cold.Best)
	if err != nil {
		t.Fatal(err)
	}

	big := models.MLP(128, 32, 64, 16, 3)
	seed, err := rec.SeedFor(big.G)
	if err != nil {
		t.Fatalf("SeedFor on same-topology graph: %v", err)
	}
	// Regions carved out of rewritten subgraphs prune away; whatever
	// replays must reference only nodes of the target graph.
	seed.FT.Walk(func(n *ftree.Node) {
		for v := range n.T.S {
			if !big.G.Has(v) {
				t.Fatalf("pruned tree still references absent node %d", v)
			}
		}
	})
	warm, err := OptimizeSeeded(context.Background(), big.G, model, warmTestOptions(), seed)
	if err != nil {
		t.Fatal(err)
	}
	if warm.Best == nil || warm.Best.PeakMem <= 0 {
		t.Fatalf("warm search on replayed seed produced no result: %+v", warm.Best)
	}
}

// TestWarmStartDegradesOnBadSeed: a seed whose F-Tree references nodes
// the graph does not have must be dropped with a diagnostic, leaving the
// search to complete cold — never to crash or go wrong.
func TestWarmStartDegradesOnBadSeed(t *testing.T) {
	model := cost.NewModel(cost.RTX3090())
	w := models.MLP(64, 32, 64, 16, 3)

	// SeedFor detects the mismatch up front.
	cold, err := Optimize(w.G, model, warmTestOptions())
	if err != nil {
		t.Fatal(err)
	}
	rec, err := RecordPlan(cold.Best)
	if err != nil {
		t.Fatal(err)
	}
	// SeedFor against an unrelated tiny graph prunes to (at most) regions
	// that happen to be valid there; the result must never reference
	// absent nodes, and a search over it must still complete.
	tiny := models.MLP(4, 4, 4, 2, 1)
	pruned, err := rec.SeedFor(tiny.G)
	if err != nil {
		t.Fatal(err)
	}
	pruned.FT.Walk(func(n *ftree.Node) {
		for v := range n.T.S {
			if !tiny.G.Has(v) {
				t.Fatalf("pruned tree references node %d absent from target", v)
			}
		}
	})
	if _, err := OptimizeSeeded(context.Background(), tiny.G, model, warmTestOptions(), pruned); err != nil {
		t.Fatalf("search over pruned seed: %v", err)
	}

	// A hand-corrupted seed state that slips past construction is dropped
	// during evaluation and the search still completes.
	badG := w.G.Clone()
	bad := &State{G: badG, FT: &ftree.Tree{}}
	bad.G = nil // nil graph: rejected before any work
	res, err := OptimizeSeeded(context.Background(), w.G, model, warmTestOptions(), bad, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Best == nil {
		t.Fatal("degraded search returned no best state")
	}
}
