package opt

import (
	"context"
	"encoding/json"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// checkpointOptions mirrors deterministicOptions with checkpointing on:
// EveryN=1 flushes at every expansion boundary, so any interruption point
// has a fresh snapshot.
func checkpointOptions(workers, maxIter int, path string) Options {
	o := deterministicOptions(workers)
	o.MaxIterations = maxIter
	o.Checkpoint = Checkpoint{Path: path, EveryN: 1, Label: "test"}
	return o
}

// ckSummary is the bit-exactness fingerprint of a run: everything the
// determinism guarantee covers (no wall-clock fields).
type ckSummary struct {
	bestHash   uint64
	peakMem    int64
	latBits    uint64
	iterations int
	trans      int
	filtered   int
	sched      int
	simul      int
	stopped    StopReason
	history    [][2]uint64 // (peak, latency bits) sequence
}

func fingerprint(res *Result) ckSummary {
	s := ckSummary{
		bestHash:   res.Best.EvalG.WLHash(),
		peakMem:    res.Best.PeakMem,
		latBits:    math.Float64bits(res.Best.Latency),
		iterations: res.Stats.Iterations,
		trans:      res.Stats.Trans,
		filtered:   res.Stats.Filtered,
		sched:      res.Stats.Sched,
		simul:      res.Stats.Simul,
		stopped:    res.Stopped,
	}
	for _, h := range res.History {
		s.history = append(s.history, [2]uint64{uint64(h.PeakMem), math.Float64bits(h.Latency)})
	}
	return s
}

// TestCheckpointKillResumeDeterminism is the core crash-safety guarantee:
// a run interrupted at an expansion boundary and resumed from its
// checkpoint produces a bit-identical result — best graph, metrics,
// stats counters, history — to a run that was never interrupted, for both
// the sequential and the parallel pipeline.
func TestCheckpointKillResumeDeterminism(t *testing.T) {
	for _, workers := range []int{1, 4} {
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			const fullIter = 12
			// Reference: uninterrupted run (no checkpointing at all, so the
			// test also proves checkpoint encoding has no side effects).
			ref, err := Optimize(fatMLP(), model(), deterministicOptions(workers))
			if err != nil {
				t.Fatal(err)
			}

			// Interrupted run: stop after half the budget. StopExhausted
			// exits at an expansion boundary, standing in for a crash whose
			// last flushed snapshot was that boundary.
			path := filepath.Join(t.TempDir(), "search.ckpt")
			half, err := Optimize(fatMLP(), model(), checkpointOptions(workers, fullIter/2, path))
			if err != nil {
				t.Fatal(err)
			}
			if half.Stopped != StopExhausted {
				t.Fatalf("interrupted run stopped %v, want exhausted", half.Stopped)
			}
			if half.Checkpoint == nil || half.Checkpoint.Writes == 0 {
				t.Fatalf("interrupted run wrote no checkpoints: %+v", half.Checkpoint)
			}
			if half.Checkpoint.Err != "" {
				t.Fatalf("checkpoint error: %s", half.Checkpoint.Err)
			}

			res, err := Resume(context.Background(), path, model(), func(o *Options) {
				o.MaxIterations = fullIter
			})
			if err != nil {
				t.Fatal(err)
			}
			got, want := fingerprint(res), fingerprint(ref)
			if got.bestHash != want.bestHash {
				t.Errorf("best graph hash: resumed %x, straight %x", got.bestHash, want.bestHash)
			}
			if got.peakMem != want.peakMem || got.latBits != want.latBits {
				t.Errorf("best metrics: resumed (%d, %x), straight (%d, %x)",
					got.peakMem, got.latBits, want.peakMem, want.latBits)
			}
			if got.iterations != want.iterations || got.trans != want.trans ||
				got.filtered != want.filtered || got.sched != want.sched || got.simul != want.simul {
				t.Errorf("stats: resumed %+v, straight %+v", got, want)
			}
			if got.stopped != want.stopped {
				t.Errorf("stopped: resumed %v, straight %v", got.stopped, want.stopped)
			}
			if len(got.history) != len(want.history) {
				t.Fatalf("history length: resumed %d, straight %d", len(got.history), len(want.history))
			}
			for i := range got.history {
				if got.history[i] != want.history[i] {
					t.Errorf("history[%d]: resumed %v, straight %v", i, got.history[i], want.history[i])
				}
			}
		})
	}
}

// TestCheckpointResumeAfterCancel covers the cancellation path: a run
// cancelled via its context leaves a resumable snapshot, and resuming
// reaches the same final result as a run that was never cancelled.
func TestCheckpointResumeAfterCancel(t *testing.T) {
	ref, err := Optimize(fatMLP(), model(), deterministicOptions(1))
	if err != nil {
		t.Fatal(err)
	}

	path := filepath.Join(t.TempDir(), "search.ckpt")
	o := checkpointOptions(1, 12, path)
	ctx, cancel := context.WithCancel(context.Background())
	o.OnExpansion = func(completed int) {
		if completed == 5 {
			cancel()
		}
	}
	half, err := OptimizeCtx(ctx, fatMLP(), model(), o)
	if err != nil {
		t.Fatal(err)
	}
	if half.Stopped != StopCancelled {
		t.Fatalf("cancelled run stopped %v, want cancelled", half.Stopped)
	}

	res, err := Resume(context.Background(), path, model(), nil)
	if err != nil {
		t.Fatal(err)
	}
	got, want := fingerprint(res), fingerprint(ref)
	if got.bestHash != want.bestHash || got.peakMem != want.peakMem ||
		got.latBits != want.latBits || got.iterations != want.iterations {
		t.Errorf("resumed run diverged: %+v vs %+v", got, want)
	}
}

// TestReadCheckpointInfo verifies the cheap metadata view.
func TestReadCheckpointInfo(t *testing.T) {
	path := filepath.Join(t.TempDir(), "search.ckpt")
	res, err := Optimize(fatMLP(), model(), checkpointOptions(2, 6, path))
	if err != nil {
		t.Fatal(err)
	}
	info, err := ReadCheckpointInfo(path)
	if err != nil {
		t.Fatal(err)
	}
	if info.Label != "test" {
		t.Errorf("label %q, want %q", info.Label, "test")
	}
	if info.Iterations != res.Stats.Iterations {
		t.Errorf("iterations %d, want %d", info.Iterations, res.Stats.Iterations)
	}
	if info.Workers != 2 {
		t.Errorf("workers %d, want 2", info.Workers)
	}
	if info.BestPeakMem != res.Best.PeakMem {
		t.Errorf("best peak %d, want %d", info.BestPeakMem, res.Best.PeakMem)
	}
	if info.BestLatency != res.Best.Latency {
		t.Errorf("best latency %v, want %v", info.BestLatency, res.Best.Latency)
	}
}

// TestCheckpointRejectsCorruption verifies the envelope validation: a
// flipped payload byte, a wrong version, a wrong magic, and a missing file
// all fail with descriptive errors instead of restoring garbage.
func TestCheckpointRejectsCorruption(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "search.ckpt")
	if _, err := Optimize(fatMLP(), model(), checkpointOptions(1, 4, path)); err != nil {
		t.Fatal(err)
	}

	mutate := func(name string, f func(env map[string]json.RawMessage)) string {
		t.Helper()
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		var env map[string]json.RawMessage
		if err := json.Unmarshal(data, &env); err != nil {
			t.Fatal(err)
		}
		f(env)
		out, err := json.Marshal(env)
		if err != nil {
			t.Fatal(err)
		}
		p := filepath.Join(dir, name)
		if err := os.WriteFile(p, out, 0o644); err != nil {
			t.Fatal(err)
		}
		return p
	}

	// Corrupt a payload byte while keeping the JSON well-formed (flip one
	// character of the embedded label): only the checksum can catch this.
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	raw = []byte(strings.Replace(string(raw), `"test"`, `"tesu"`, 1))
	corrupted := filepath.Join(dir, "corrupt.ckpt")
	if err := os.WriteFile(corrupted, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Resume(context.Background(), corrupted, model(), nil); err == nil {
		t.Error("corrupted payload resumed without error")
	} else if want := "checksum mismatch"; !strings.Contains(err.Error(), want) {
		t.Errorf("corrupted payload error %q, want substring %q", err, want)
	}

	wrongVersion := mutate("version.ckpt", func(env map[string]json.RawMessage) {
		env["version"] = json.RawMessage("999")
	})
	if _, err := Resume(context.Background(), wrongVersion, model(), nil); err == nil {
		t.Error("wrong version resumed without error")
	} else if want := "format version 999"; !strings.Contains(err.Error(), want) {
		t.Errorf("version error %q, want substring %q", err, want)
	}

	wrongMagic := mutate("magic.ckpt", func(env map[string]json.RawMessage) {
		env["magic"] = json.RawMessage(`"not-a-checkpoint"`)
	})
	if _, err := Resume(context.Background(), wrongMagic, model(), nil); err == nil {
		t.Error("wrong magic resumed without error")
	} else if want := "not a checkpoint file"; !strings.Contains(err.Error(), want) {
		t.Errorf("magic error %q, want substring %q", err, want)
	}

	if _, err := Resume(context.Background(), filepath.Join(dir, "absent.ckpt"), model(), nil); err == nil {
		t.Error("missing file resumed without error")
	}
}
