package opt

import (
	"context"
	"testing"
	"time"

	"magis/internal/ftree"
)

// deterministicOptions bounds the search by iterations instead of
// wall-clock so runs are comparable across worker counts and machines.
func deterministicOptions(workers int) Options {
	return Options{
		Mode:            MemoryUnderLatency,
		TimeBudget:      -1, // disabled: MaxIterations is the only bound
		MaxIterations:   12,
		Workers:         workers,
		CheckInvariants: true,
	}
}

type runSummary struct {
	bestHash    uint64
	peakMem     int64
	latency     float64
	iterations  int
	trans       int
	filtered    int
	history     []HistoryPoint
	evaluated   map[string]int
	sched       int
	simul       int
	hash        int
	stopped     StopReason
	panics      int
	quarantined []string
}

func summarize(t *testing.T, workers int) runSummary {
	t.Helper()
	g := fatMLP()
	res, err := Optimize(g, model(), deterministicOptions(workers))
	if err != nil {
		t.Fatalf("workers=%d: %v", workers, err)
	}
	ev := make(map[string]int)
	for name, rd := range res.Diagnostics.Rules {
		ev[name] = rd.Evaluated
	}
	return runSummary{
		bestHash:    res.Best.EvalG.WLHash(),
		peakMem:     res.Best.PeakMem,
		latency:     res.Best.Latency,
		iterations:  res.Stats.Iterations,
		trans:       res.Stats.Trans,
		filtered:    res.Stats.Filtered,
		history:     res.History,
		evaluated:   ev,
		sched:       res.Stats.Sched,
		simul:       res.Stats.Simul,
		hash:        res.Stats.Hash,
		stopped:     res.Stopped,
		panics:      res.Diagnostics.Panics(),
		quarantined: res.Diagnostics.Quarantined(),
	}
}

// TestParallelDeterminism is the determinism contract: for a fixed
// workload and seed options, the best state (WL hash, peak, latency), the
// history of improvements, and the order-sensitive counters are identical
// for any worker count. Only duplicated-work counters (Sched/Simul/Hash)
// and timers may grow with parallelism.
func TestParallelDeterminism(t *testing.T) {
	ref := summarize(t, 1)
	if ref.stopped != StopExhausted {
		t.Fatalf("reference run stopped %v, want exhausted (fix MaxIterations)", ref.stopped)
	}
	for _, w := range []int{2, 4} {
		got := summarize(t, w)
		if got.bestHash != ref.bestHash {
			t.Errorf("workers=%d: best WL hash %#x, want %#x", w, got.bestHash, ref.bestHash)
		}
		if got.peakMem != ref.peakMem {
			t.Errorf("workers=%d: PeakMem %d, want %d", w, got.peakMem, ref.peakMem)
		}
		if got.latency != ref.latency {
			t.Errorf("workers=%d: Latency %v, want %v", w, got.latency, ref.latency)
		}
		if got.iterations != ref.iterations || got.trans != ref.trans || got.filtered != ref.filtered {
			t.Errorf("workers=%d: (iters, trans, filtered) = (%d, %d, %d), want (%d, %d, %d)",
				w, got.iterations, got.trans, got.filtered, ref.iterations, ref.trans, ref.filtered)
		}
		if got.stopped != ref.stopped {
			t.Errorf("workers=%d: stopped %v, want %v", w, got.stopped, ref.stopped)
		}
		if len(got.history) != len(ref.history) {
			t.Errorf("workers=%d: %d history points, want %d", w, len(got.history), len(ref.history))
		} else {
			for i := range got.history {
				if got.history[i].PeakMem != ref.history[i].PeakMem || got.history[i].Latency != ref.history[i].Latency {
					t.Errorf("workers=%d: history[%d] = (%d, %v), want (%d, %v)", w, i,
						got.history[i].PeakMem, got.history[i].Latency,
						ref.history[i].PeakMem, ref.history[i].Latency)
				}
			}
		}
		if len(got.evaluated) != len(ref.evaluated) {
			t.Errorf("workers=%d: per-rule Evaluated %v, want %v", w, got.evaluated, ref.evaluated)
		} else {
			for name, n := range ref.evaluated {
				if got.evaluated[name] != n {
					t.Errorf("workers=%d: rule %s Evaluated = %d, want %d", w, name, got.evaluated[name], n)
				}
			}
		}
		if got.panics != ref.panics {
			t.Errorf("workers=%d: %d panics, want %d", w, got.panics, ref.panics)
		}
	}
}

// TestParallelStatsConsistent checks the counter invariants that must hold
// regardless of worker count: every scheduled candidate is simulated, every
// candidate reaching the duplicate filter was hashed, and the duplicate
// filter's outcome is exact (Filtered counts merged duplicates only).
func TestParallelStatsConsistent(t *testing.T) {
	for _, w := range []int{1, 2, 4} {
		s := summarize(t, w)
		if s.sched != s.simul {
			t.Errorf("workers=%d: Sched %d != Simul %d", w, s.sched, s.simul)
		}
		if s.hash < s.sched {
			t.Errorf("workers=%d: Hash %d < Sched %d (hash filter runs first)", w, s.hash, s.sched)
		}
		if s.sched == 0 {
			t.Errorf("workers=%d: no evaluations happened", w)
		}
	}
}

// TestParallelCancellation: a deadline mid-search still returns the best
// state found so far with the pool drained cleanly.
func TestParallelCancellation(t *testing.T) {
	g := fatMLP()
	ctx, cancel := context.WithTimeout(context.Background(), 150*time.Millisecond)
	defer cancel()
	o := deterministicOptions(4)
	o.MaxIterations = 10000
	res, err := OptimizeCtx(ctx, g, model(), o)
	if err != nil {
		t.Fatal(err)
	}
	if res.Stopped != StopDeadline {
		t.Errorf("stopped %v, want deadline", res.Stopped)
	}
	if res.Best == nil || res.Best.Sched == nil {
		t.Fatal("no best state returned on cancellation")
	}
	if err := res.Best.Sched.Validate(res.Best.EvalG); err != nil {
		t.Error(err)
	}
}

// TestOptionsDefaults pins the documented defaults, in particular the
// MaxSites regression (documented as 8 but previously left to the
// rules-side fallback) and the Workers floor.
func TestOptionsDefaults(t *testing.T) {
	o := Options{}
	o.defaults()
	if o.MaxSites != 8 {
		t.Errorf("MaxSites default = %d, want 8", o.MaxSites)
	}
	if o.Workers < 1 {
		t.Errorf("Workers default = %d, want >= 1", o.Workers)
	}
	neg := Options{Workers: -3}
	neg.defaults()
	if neg.Workers != 1 {
		t.Errorf("negative Workers normalized to %d, want 1", neg.Workers)
	}
	kept := Options{MaxSites: 3, Workers: 2}
	kept.defaults()
	if kept.MaxSites != 3 || kept.Workers != 2 {
		t.Errorf("explicit options overridden: MaxSites=%d Workers=%d", kept.MaxSites, kept.Workers)
	}
}

// TestSharedFTreeIsCopyOnWrite guards the lazy-clone contract: graph-
// rewrite candidates share the parent's F-Tree, so the shared tree must
// never be mutated in place by the search.
func TestSharedFTreeIsCopyOnWrite(t *testing.T) {
	g := fatMLP()
	m := model()
	res := &Result{}
	ev := newEvaluator(m, false, false, &res.Stats)
	st := &State{G: g.Clone()}
	if err := ev.evaluate(st, nil, nil); err != nil {
		t.Fatal(err)
	}
	st.FT = ftree.Build(st.G, st.Hot, ftree.Options{})
	before := st.FT.Size()
	enabledBefore := len(st.FT.EnabledNodes())
	o := Options{}
	o.defaults()
	quar := newQuarantine(o.QuarantineAfter)
	cands := neighbors(st, &o, res, quar, nil)
	if len(cands) == 0 {
		t.Fatal("no candidates generated")
	}
	shared, cloned := 0, 0
	for _, c := range cands {
		if c.state.FT == st.FT {
			shared++
			if !c.state.stale {
				t.Error("candidate sharing the parent tree must be stale")
			}
		} else {
			cloned++
		}
	}
	if shared == 0 {
		t.Error("no graph-rewrite candidate shares the parent F-Tree (lazy clone regressed)")
	}
	if cloned == 0 {
		t.Error("no F-Tree mutation candidate cloned the tree")
	}
	if st.FT.Size() != before || len(st.FT.EnabledNodes()) != enabledBefore {
		t.Error("parent F-Tree mutated during neighbor generation")
	}
}
