package opt

import (
	"errors"
	"fmt"
)

// Sentinel errors of the optimizer. Once the initial evaluation succeeds,
// Optimize never returns an error: per-candidate failures are contained,
// recorded in Result.Diagnostics, and the best feasible state found so far
// is returned with Result.Stopped explaining why the search ended.
var (
	// ErrInitialEval wraps failures of the very first evaluation (the
	// unoptimized input graph). There is no best-so-far state to degrade
	// to before this point, so it is the one fatal error of a run.
	ErrInitialEval = errors.New("opt: initial evaluation failed")
	// ErrCollapse wraps region-collapse failures: an enabled F-Tree
	// region that can no longer be folded into one evaluation node
	// (invalidated by rewrites, or collapsing would create a cycle).
	ErrCollapse = errors.New("opt: region collapse failed")
)

// errSkip silently discards a candidate without recording a failure —
// the pre-existing contract for mutations that turn out inapplicable.
var errSkip = errors.New("opt: candidate skipped")

// RuleError is a panic recovered from rule application, candidate
// evaluation, or F-Tree mutation, converted into a diagnostic. The search
// discards the offending candidate and keeps going; after
// Options.QuarantineAfter consecutive failures the rule is quarantined
// for the rest of the run.
type RuleError struct {
	// Rule is the catalog name of the rule being applied ("Swap",
	// "Remat", ...) or "FTree" for fission-tree mutations.
	Rule string
	// Site describes what the rule was doing when it panicked.
	Site string
	// Panic is the recovered value.
	Panic any
	// Stack is the (truncated) goroutine stack at the panic site.
	Stack string
}

// Error implements error.
func (e *RuleError) Error() string {
	return fmt.Sprintf("opt: rule %s panicked at %s: %v", e.Rule, e.Site, e.Panic)
}
