package opt

import (
	"fmt"
	"reflect"
	"testing"
)

// govOptions is deterministicOptions with a memory budget and a scripted
// sampler: usedSeq[i] is the live-memory sample at boundary i (the last
// value repeats past the end).
func govOptions(workers, maxIter int, budget int64, usedSeq []uint64) Options {
	o := deterministicOptions(workers)
	o.MaxIterations = maxIter
	o.MemBudget = budget
	i := 0
	o.memUsed = func() uint64 {
		v := usedSeq[min(i, len(usedSeq)-1)]
		i++
		return v
	}
	return o
}

// TestGovernorStopsOverBudget: a search held permanently over budget
// walks the whole shed ladder — evict, shrink, flush — then stops with
// StopMemBudget and a non-nil best, like any other anytime stop.
func TestGovernorStopsOverBudget(t *testing.T) {
	o := govOptions(1, 100, 100, []uint64{200})
	res, err := Optimize(fatMLP(), model(), o)
	if err != nil {
		t.Fatal(err)
	}
	if res.Stopped != StopMemBudget {
		t.Fatalf("Stopped = %v, want mem-budget", res.Stopped)
	}
	if res.Stopped.String() != "mem-budget" {
		t.Fatalf("String() = %q", res.Stopped)
	}
	if res.Best == nil || res.Best.Sched == nil {
		t.Fatal("mem-budget stop must still return best-so-far")
	}
	g := res.Governor
	if g == nil {
		t.Fatal("Governor status missing")
	}
	if g.Stage != 4 {
		t.Fatalf("ladder stage %d, want 4 (stopped)", g.Stage)
	}
	if g.Shrinks != 1 || g.Flushes != 1 {
		t.Fatalf("shrinks=%d flushes=%d, want 1 each", g.Shrinks, g.Flushes)
	}
	if g.PeakBytes != 200 || g.Budget != 100 {
		t.Fatalf("peak=%d budget=%d", g.PeakBytes, g.Budget)
	}
	// The ladder stages each leave a deduplicated diagnostic note.
	if len(res.Diagnostics.Notes) < 3 {
		t.Fatalf("expected shed-ladder notes, got %v", res.Diagnostics.Notes)
	}
}

// TestGovernorRecoversAfterShed: when shedding brings usage back under
// budget, the search keeps running and ends for its ordinary reason.
func TestGovernorRecoversAfterShed(t *testing.T) {
	// Over budget at boundaries 2 and 3 (evict + shrink), under after.
	o := govOptions(1, 12, 100, []uint64{50, 200, 200, 50})
	res, err := Optimize(fatMLP(), model(), o)
	if err != nil {
		t.Fatal(err)
	}
	if res.Stopped == StopMemBudget {
		t.Fatal("search stopped on mem-budget despite recovering")
	}
	g := res.Governor
	if g == nil || g.Stage != 2 {
		t.Fatalf("governor = %+v, want stage 2", g)
	}
	if g.Samples == 0 || g.PeakBytes != 200 {
		t.Fatalf("samples=%d peak=%d", g.Samples, g.PeakBytes)
	}
}

// TestGovernorEvictsFrontier: stage 1 on a populated frontier records
// evicted states and the queue shrinks to the better half.
func TestGovernorEvictsFrontier(t *testing.T) {
	// Stay under budget long enough to grow a frontier, then spike once.
	seq := make([]uint64, 9)
	for i := range seq {
		seq[i] = 10
	}
	seq[8] = 900
	o := govOptions(1, 12, 100, append(seq, 10))
	res, err := Optimize(fatMLP(), model(), o)
	if err != nil {
		t.Fatal(err)
	}
	g := res.Governor
	if g == nil || g.Stage != 1 {
		t.Fatalf("governor = %+v, want stage 1", g)
	}
	if g.EvictedStates == 0 {
		t.Fatal("stage 1 evicted nothing from a grown frontier")
	}
	if res.Diagnostics.Notes["mem-governor: evicted worst-scoring frontier states"] != 1 {
		t.Fatalf("missing eviction note: %v", res.Diagnostics.Notes)
	}
}

// TestGovernorIdleIsBitIdentical is the determinism contract: a governed
// run whose budget is never exceeded produces exactly the result of an
// ungoverned run, for both pipelines.
func TestGovernorIdleIsBitIdentical(t *testing.T) {
	for _, workers := range []int{1, 4} {
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			ref, err := Optimize(fatMLP(), model(), deterministicOptions(workers))
			if err != nil {
				t.Fatal(err)
			}
			o := govOptions(workers, 12, 1<<40, []uint64{1}) // budget never hit
			gov, err := Optimize(fatMLP(), model(), o)
			if err != nil {
				t.Fatal(err)
			}
			if gov.Governor == nil || gov.Governor.Stage != 0 {
				t.Fatalf("governor should have stayed idle: %+v", gov.Governor)
			}
			fr, fg := fingerprint(ref), fingerprint(gov)
			if !reflect.DeepEqual(fr, fg) {
				t.Fatalf("governed-idle run diverged:\nref %+v\ngov %+v", fr, fg)
			}
		})
	}
}

// TestNotesDedupAndCap is the Diagnostics growth bound: repeats collapse
// to counters and distinct messages stop at the cap with an overflow
// marker.
func TestNotesDedupAndCap(t *testing.T) {
	var d Diagnostics
	for i := 0; i < 1000; i++ {
		d.Note("same event")
	}
	if d.Notes["same event"] != 1000 {
		t.Fatalf("dedup count = %d", d.Notes["same event"])
	}
	if len(d.Notes) != 1 {
		t.Fatalf("distinct notes = %d, want 1", len(d.Notes))
	}
	for i := 0; i < 200; i++ {
		d.Note(fmt.Sprintf("distinct-%03d", i))
	}
	if len(d.Notes) > maxKeptNotes+1 {
		t.Fatalf("notes map grew past cap: %d", len(d.Notes))
	}
	if d.NotesDropped == 0 {
		t.Fatal("cap never recorded dropped messages")
	}
	if d.Notes[noteOverflow] == 0 {
		t.Fatal("overflow marker missing")
	}
	// Existing messages keep counting past the cap.
	d.Note("same event")
	if d.Notes["same event"] != 1001 {
		t.Fatal("existing note stopped counting after cap")
	}
}
