package opt

import "magis/internal/graph"

// The allocation diet's recycling half. Every candidate costs two deep
// graph copies — the rewritten logical graph a rule produces and the
// collapsed evaluation graph — and the search rejects the vast majority of
// candidates (duplicates, non-improving states) within the same expansion
// that created them. graphPool keeps those discarded shells on a free list
// so graph.CloneInto can reuse their backing arrays instead of feeding the
// allocator.
//
// Ownership is strictly single-goroutine: the search goroutine owns the
// central pool (rule clones in neighbors, recycling in absorb), each
// worker's evaluator owns a private pool for its collapse clones, and
// evalPool.run redistributes shells from the central pool to the workers
// at expansion boundaries, while the workers are quiescent. Nothing here
// needs a lock.
//
// Safety rests on one invariant: a graph enters a pool only when nothing
// can reference it anymore. absorb recycles only candidates it just
// rejected, and only the graphs that candidate owned outright — the
// rewritten G of a rule candidate (F-Tree mutations share the parent's G
// and own nothing) and the collapse-fresh EvalG. Accepted states, parents
// (their G and WL/reach snapshots are shared with frontier children), and
// seeds are never recycled.

// poolCap bounds each free list so a burst of rejected candidates cannot
// pin an unbounded amount of arena memory; overflow falls to the GC.
const poolCap = 128

type graphPool struct {
	free []*graph.Graph
}

// clone returns a deep copy of src, backed by a recycled shell's arrays
// when one is available.
func (p *graphPool) clone(src *graph.Graph) *graph.Graph {
	if n := len(p.free); n > 0 {
		dst := p.free[n-1]
		p.free[n-1] = nil
		p.free = p.free[:n-1]
		src.CloneInto(dst)
		return dst
	}
	return src.Clone()
}

// put adds a dead graph to the free list (nil-safe, drops on overflow).
func (p *graphPool) put(g *graph.Graph) {
	if g == nil || len(p.free) >= poolCap {
		return
	}
	p.free = append(p.free, g)
}

// give moves up to n free shells from p into q.
func (p *graphPool) give(q *graphPool, n int) {
	for n > 0 && len(p.free) > 0 {
		last := len(p.free) - 1
		q.put(p.free[last])
		p.free[last] = nil
		p.free = p.free[:last]
		n--
	}
}
