package opt

import (
	"context"
	"errors"
	"strings"
	"testing"
	"time"

	"magis/internal/graph"
	"magis/internal/models"
	"magis/internal/ops"
	"magis/internal/rules"
	"magis/internal/tensor"
)

// panicRule is a deliberately buggy rule: every application attempt
// panics, like a rewrite with an off-by-one would.
type panicRule struct{}

func (panicRule) Name() string { return "PanicRule" }
func (panicRule) Apply(g *graph.Graph, ctx *rules.Context) []rules.Application {
	panic("deliberate test panic: slice bounds out of range")
}

// corruptRule produces structurally broken candidates: it swaps one
// intermediate node's operator for a mismatched leaf, breaking both arity
// and shape agreement. Each call corrupts a different node so candidates
// are never duplicate-filtered.
type corruptRule struct{ calls *int }

func (corruptRule) Name() string { return "Corrupt" }
func (r corruptRule) Apply(g *graph.Graph, ctx *rules.Context) []rules.Application {
	*r.calls++
	ids := g.NodeIDs()
	for i := 0; i < len(ids); i++ {
		id := ids[(i+*r.calls)%len(ids)]
		n := g.Node(id)
		if len(n.Ins) > 0 && len(g.Suc(id)) > 0 {
			ng := g.Clone()
			ng.SetOp(id, ops.NewInput(tensor.S(1), tensor.F32))
			return []rules.Application{{Graph: ng, OldMutated: []graph.NodeID{id}, Rule: "Corrupt"}}
		}
	}
	return nil
}

// TestPanickingRuleIsolated seeds a rule that panics on every application
// across the small workload suite: the search must finish, quarantine the
// rule, still improve on the baseline machinery, and return a valid
// schedule with Stopped and Diagnostics populated.
func TestPanickingRuleIsolated(t *testing.T) {
	for _, w := range models.SmallSuite() {
		t.Run(w.Name, func(t *testing.T) {
			// QuarantineAfter 1 keeps the test timing-independent: under
			// the race detector the budget may expire after one expansion.
			// Streak mechanics are covered by TestQuarantineStreaks.
			res, err := Optimize(w.G, model(), Options{
				Mode:            MemoryUnderLatency,
				TimeBudget:      700 * time.Millisecond,
				QuarantineAfter: 1,
				CheckInvariants: true,
				Rules:           append(rules.All(), panicRule{}),
			})
			if err != nil {
				t.Fatalf("search died instead of containing the panic: %v", err)
			}
			if res.Best == nil {
				t.Fatal("no best state returned")
			}
			if err := res.Best.Sched.Validate(res.Best.EvalG); err != nil {
				t.Errorf("best schedule invalid: %v", err)
			}
			if res.Stopped == StopUnknown {
				t.Error("Stopped not populated")
			}
			d := res.Diagnostics.Rules["PanicRule"]
			if d == nil || d.Panics == 0 {
				t.Fatalf("panics not diagnosed: %+v", res.Diagnostics.Rules)
			}
			if !d.Quarantined {
				t.Errorf("rule not quarantined after %d panics", d.Panics)
			}
			if len(res.Diagnostics.Errors) == 0 {
				t.Fatal("no RuleError kept")
			}
			re := res.Diagnostics.Errors[0]
			if re.Rule != "PanicRule" || !strings.Contains(re.Error(), "deliberate test panic") {
				t.Errorf("bad diagnostic: %v", re)
			}
			if re.Stack == "" {
				t.Error("no stack captured")
			}
		})
	}
}

// TestCorruptCandidatesRejected seeds a rule that emits shape-broken
// graphs: with CheckInvariants on, every such candidate must be rejected
// before it can poison the search, and the rule quarantined.
func TestCorruptCandidatesRejected(t *testing.T) {
	calls := 0
	res, err := Optimize(fatMLP(), model(), Options{
		Mode:            MemoryUnderLatency,
		TimeBudget:      700 * time.Millisecond,
		QuarantineAfter: 1,
		CheckInvariants: true,
		Rules:           append(rules.All(), corruptRule{&calls}),
	})
	if err != nil {
		t.Fatal(err)
	}
	d := res.Diagnostics.Rules["Corrupt"]
	if d == nil || d.InvariantFailures == 0 {
		t.Fatalf("invariant failures not diagnosed: %+v", res.Diagnostics.Rules)
	}
	if d.Evaluated != 0 {
		t.Errorf("%d corrupt candidates slipped past validation", d.Evaluated)
	}
	if !d.Quarantined {
		t.Errorf("corrupting rule not quarantined (failures: %d)", d.InvariantFailures)
	}
	if err := graph.Validate(res.Best.G); err != nil {
		t.Errorf("best graph corrupted: %v", err)
	}
	if err := res.Best.Sched.Validate(res.Best.EvalG); err != nil {
		t.Errorf("best schedule invalid: %v", err)
	}
}

func TestCancellationReturnsBestSoFar(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(30 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	res, err := OptimizeCtx(ctx, fatMLP(), model(), Options{
		Mode:            MemoryUnderLatency,
		TimeBudget:      30 * time.Second,
		CheckInvariants: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Errorf("cancellation took %v, want well under the 30s budget", elapsed)
	}
	if res.Stopped != StopCancelled {
		t.Errorf("Stopped = %v, want %v", res.Stopped, StopCancelled)
	}
	if res.Best == nil || res.Best.Sched == nil {
		t.Fatal("no best-so-far state on cancellation")
	}
	if err := res.Best.Sched.Validate(res.Best.EvalG); err != nil {
		t.Error(err)
	}
}

func TestDeadlineStopReason(t *testing.T) {
	ctx, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer cancel()
	res, err := OptimizeCtx(ctx, fatMLP(), model(), Options{Mode: MemoryUnderLatency})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stopped != StopDeadline {
		t.Errorf("Stopped = %v, want %v", res.Stopped, StopDeadline)
	}
	if res.Best == nil {
		t.Fatal("no state returned on expired deadline")
	}
}

func TestExhaustedStopReason(t *testing.T) {
	res, err := Optimize(fatMLP(), model(), Options{
		Mode:          MemoryUnderLatency,
		MaxIterations: 2,
		TimeBudget:    30 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stopped != StopExhausted {
		t.Errorf("Stopped = %v, want %v", res.Stopped, StopExhausted)
	}
}

func TestConvergedStopReason(t *testing.T) {
	// Only DeSwap in the catalog and no fission: an MLP has no Store/Load
	// pairs to remove, so the queue drains immediately.
	res, err := Optimize(fatMLP(), model(), Options{
		Mode:           MemoryUnderLatency,
		DisableFission: true,
		Rules:          []rules.Rule{rules.DeSwapRule{}},
		TimeBudget:     30 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stopped != StopConverged {
		t.Errorf("Stopped = %v, want %v", res.Stopped, StopConverged)
	}
}

// bombOp panics during shape queries — an unevaluable input graph.
type bombOp struct{}

func (bombOp) Kind() string           { return "Bomb" }
func (bombOp) OutShape() tensor.Shape { panic("bomb: unevaluable op") }
func (bombOp) DType() tensor.DType    { return tensor.F32 }
func (bombOp) AttrKey() string        { return "" }

func TestInitialEvaluationFailureIsFatal(t *testing.T) {
	g := graph.New()
	g.Add(bombOp{})
	_, err := Optimize(g, model(), Options{TimeBudget: 100 * time.Millisecond})
	if err == nil {
		t.Fatal("unevaluable input graph must fail fast")
	}
	if !errors.Is(err, ErrInitialEval) {
		t.Errorf("error does not wrap ErrInitialEval: %v", err)
	}
	var re *RuleError
	if !errors.As(err, &re) {
		t.Errorf("error does not expose the recovered panic: %v", err)
	}
}

func TestQuarantineStreaks(t *testing.T) {
	q := newQuarantine(3)
	if q.fail("r") || q.fail("r") {
		t.Fatal("quarantined before the limit")
	}
	q.ok("r") // success resets the streak
	if q.fail("r") || q.fail("r") {
		t.Fatal("streak not reset by success")
	}
	if !q.fail("r") {
		t.Fatal("third consecutive failure must quarantine")
	}
	if !q.active("r") {
		t.Fatal("rule not active in quarantine")
	}
	if q.fail("r") {
		t.Fatal("already-banned rule reported as newly banned")
	}
}

func TestStopReasonStrings(t *testing.T) {
	want := map[StopReason]string{
		StopUnknown:   "unknown",
		StopConverged: "converged",
		StopDeadline:  "deadline",
		StopCancelled: "cancelled",
		StopExhausted: "exhausted",
	}
	for r, s := range want {
		if r.String() != s {
			t.Errorf("%d.String() = %q, want %q", r, r.String(), s)
		}
	}
}
