package opt

import (
	"fmt"
	"sync"
	"time"

	"magis/internal/cost"
	"magis/internal/ftree"
	"magis/internal/graph"
	"magis/internal/sched"
	"magis/internal/sim"
)

// State is one M-State (§3): a computation graph, its F-Tree, the best
// schedule found for it, and the simulation results.
type State struct {
	// G is the logical graph (fission regions NOT materialized).
	G *graph.Graph
	// FT is the fission hierarchy tree over G.
	FT *ftree.Tree
	// EvalG is the evaluation graph: G with enabled regions collapsed.
	EvalG *graph.Graph
	// Sched is the execution order over EvalG.
	Sched sched.Schedule
	// PeakMem is the §2.1 peak memory of (EvalG, Sched), in bytes.
	PeakMem int64
	// Latency is the simulated makespan in seconds (copy-stream overlap
	// included).
	Latency float64
	// Hot is the memory hot-spot set of the schedule.
	Hot graph.Set
	// regions maps regionKey -> region node in EvalG (incremental
	// scheduling anchors).
	regions map[string]graph.NodeID
	// stale marks the F-Tree as needing re-analysis after a graph rewrite.
	stale bool
	// wl is the WL-label snapshot of EvalG, written once when the state is
	// hashed and read-only afterwards; children splice into it instead of
	// re-hashing their whole evaluation graph.
	wl *graph.WLLabels
	// reachHint is the parent expansion's reachability cache, letting this
	// state's own expansion derive its ReachIndex by Rebase instead of a
	// full rebuild. Cleared after first use to keep ancestor chains from
	// accumulating.
	reachHint *reachCache
}

// Summary renders the state's headline measurements for logs and the
// CLI's best-so-far report on interruption.
func (s *State) Summary() string {
	return fmt.Sprintf("peak %.2f GB, latency %.2f ms",
		float64(s.PeakMem)/(1<<30), s.Latency*1e3)
}

// Stats aggregates the optimization-time breakdown reported in Fig. 15.
// With Workers > 1 the wall-clock breakdown timers sum the per-worker
// busy times, so they can exceed elapsed time.
type Stats struct {
	Trans, Sched, Simul, Hash, Filtered int
	TransTime, SchedTime, SimulTime     time.Duration
	HashTime                            time.Duration
	Iterations                          int
	Rescheduled                         int // total ops rescheduled incrementally
}

// add accumulates o into s, merging a worker's shard after a parallel
// search.
func (s *Stats) add(o *Stats) {
	s.Trans += o.Trans
	s.Sched += o.Sched
	s.Simul += o.Simul
	s.Hash += o.Hash
	s.Filtered += o.Filtered
	s.TransTime += o.TransTime
	s.SchedTime += o.SchedTime
	s.SimulTime += o.SimulTime
	s.HashTime += o.HashTime
	s.Iterations += o.Iterations
	s.Rescheduled += o.Rescheduled
}

// reachCache lazily builds one read-only reachability index over a parent
// state's eval graph, shared by every worker of an expansion. sync.Once
// makes the build race-free; the index is immutable after construction, so
// concurrent NW queries need no further locking.
//
// prev, when set, is the grandparent expansion's cache: the build first
// attempts graph.Rebase from it — recomputing only rows downstream of the
// rewrite — and falls back to a full NewReachIndex when the delta is too
// large. prev is cleared after the build so discarded lineages do not pin
// their whole ancestor chain.
type reachCache struct {
	g    *graph.Graph
	prev *reachCache
	once sync.Once
	idx  *graph.ReachIndex
}

func (rc *reachCache) index() *graph.ReachIndex {
	rc.once.Do(func() {
		if p := rc.prev; p != nil && p.idx != nil {
			rc.idx = graph.Rebase(p.idx, p.g, rc.g)
		}
		if rc.idx == nil {
			rc.idx = graph.NewReachIndex(rc.g)
		}
		rc.prev = nil
	})
	return rc.idx
}

// evaluator prices M-States. Each search worker owns one: the scheduler
// and scratch buffers below are reused across candidates and must never be
// shared between goroutines. Read-only inputs (cost model, parent state,
// reach index) are shared across the pool.
type evaluator struct {
	model  *cost.Model
	sc     *sched.Scheduler
	col    collapser
	full   bool // force full rescheduling (ablation)
	strict bool // force full WL hashing (escape hatch / oracle)
	stats  *Stats

	// rc is the expansion-shared reachability cache over the parent's eval
	// graph, set by the search before each expansion.
	rc *reachCache

	// hs and ss are per-evaluator scratch buffers keeping the WL-hash and
	// lifetime-simulation hot paths off the allocator.
	hs graph.HashScratch
	ss sched.Scratch
	// gp recycles discarded graph shells into this evaluator's collapse
	// clones. The primary evaluator's pool doubles as the search's central
	// recycler (rule clones, absorb-time recycling); worker pools are
	// refilled from it at expansion boundaries.
	gp graphPool
}

func newEvaluator(model *cost.Model, full, strict bool, stats *Stats) *evaluator {
	e := &evaluator{
		model:  model,
		sc:     &sched.Scheduler{},
		full:   full,
		strict: strict,
		stats:  stats,
	}
	e.col = collapser{model: model, sc: e.sc, ss: &e.ss, gp: &e.gp}
	return e
}

// collapse fills in EvalG and regions for s (the cheap half of
// evaluation, sufficient for duplicate hashing).
func (e *evaluator) collapse(s *State) error {
	eg, regions, err := e.col.Collapse(s.G, s.FT)
	if err != nil {
		return err
	}
	s.EvalG = eg
	s.regions = regions
	return nil
}

// evaluate fills in EvalG, Sched, PeakMem, Latency, and Hot for s. prev is
// the parent state (nil for the initial one); oldMutated lists the parent
// EvalG nodes touched by the transformation that produced s.
func (e *evaluator) evaluate(s *State, prev *State, oldMutated []graph.NodeID) error {
	if s.EvalG == nil {
		if err := e.collapse(s); err != nil {
			return err
		}
	}
	eg := s.EvalG

	t0 := time.Now()
	if prev == nil || e.full || len(oldMutated) == 0 {
		s.Sched = e.sc.ScheduleGraph(eg)
		e.stats.Rescheduled += len(s.Sched)
	} else {
		var reach *graph.ReachIndex
		if e.rc != nil && e.rc.g == prev.EvalG {
			reach = e.rc.index()
		}
		var n int
		s.Sched, n = e.sc.IncrementalR(prev.EvalG, eg, oldMutated, prev.Sched, reach)
		e.stats.Rescheduled += n
	}
	e.stats.Sched++
	e.stats.SchedTime += time.Since(t0)

	t1 := time.Now()
	prof := e.ss.Simulate(eg, s.Sched)
	s.PeakMem = prof.Peak
	s.Hot = prof.Hotspots
	r := sim.Run(eg, s.Sched, sim.Config{
		Model:    e.model,
		NodeCost: regionNodeCost,
	})
	s.Latency = r.Latency
	e.stats.Simul++
	e.stats.SimulTime += time.Since(t1)
	return nil
}

// regionNodeCost prices collapsed fission regions by their analytically
// computed latency; every other node falls back to the cost model. Shared
// by live evaluation and checkpoint restore so both price identically.
func regionNodeCost(n *graph.Node) (float64, bool) {
	if rop, ok := n.Op.(*RegionOp); ok {
		return rop.Latency(), true
	}
	return 0, false
}

// hash returns the Weisfeiler-Lehman hash of the evaluation graph: states
// with identical collapsed structure are duplicates for the search. With a
// parent state available (and strict mode off) the hash splices into the
// parent's label snapshot, re-labelling only nodes whose defining cone the
// rewrite touched; the splice is self-verifying (see graph.WLHashFrom), so
// the result is bit-identical to the full path either way. The snapshot
// for this state's own children is captured as a side effect.
func (e *evaluator) hash(s *State, prev *State) uint64 {
	t := time.Now()
	var h uint64
	if e.strict {
		h = s.EvalG.WLHashScratch(&e.hs)
	} else {
		var pwl *graph.WLLabels
		if prev != nil {
			pwl = prev.wl
		}
		h, s.wl = s.EvalG.WLHashFrom(pwl, &e.hs)
	}
	e.stats.Hash++
	e.stats.HashTime += time.Since(t)
	return h
}
