package opt

import (
	"fmt"
	"time"

	"magis/internal/cost"
	"magis/internal/ftree"
	"magis/internal/graph"
	"magis/internal/sched"
	"magis/internal/sim"
)

// State is one M-State (§3): a computation graph, its F-Tree, the best
// schedule found for it, and the simulation results.
type State struct {
	// G is the logical graph (fission regions NOT materialized).
	G *graph.Graph
	// FT is the fission hierarchy tree over G.
	FT *ftree.Tree
	// EvalG is the evaluation graph: G with enabled regions collapsed.
	EvalG *graph.Graph
	// Sched is the execution order over EvalG.
	Sched sched.Schedule
	// PeakMem is the §2.1 peak memory of (EvalG, Sched), in bytes.
	PeakMem int64
	// Latency is the simulated makespan in seconds (copy-stream overlap
	// included).
	Latency float64
	// Hot is the memory hot-spot set of the schedule.
	Hot graph.Set
	// regions maps regionKey -> region node in EvalG (incremental
	// scheduling anchors).
	regions map[string]graph.NodeID
	// stale marks the F-Tree as needing re-analysis after a graph rewrite.
	stale bool
}

// Summary renders the state's headline measurements for logs and the
// CLI's best-so-far report on interruption.
func (s *State) Summary() string {
	return fmt.Sprintf("peak %.2f GB, latency %.2f ms",
		float64(s.PeakMem)/(1<<30), s.Latency*1e3)
}

// Stats aggregates the optimization-time breakdown reported in Fig. 15.
type Stats struct {
	Trans, Sched, Simul, Hash, Filtered int
	TransTime, SchedTime, SimulTime     time.Duration
	HashTime                            time.Duration
	Iterations                          int
	Rescheduled                         int // total ops rescheduled incrementally
}

// evaluator prices M-States.
type evaluator struct {
	model *cost.Model
	sc    *sched.Scheduler
	col   collapser
	full  bool // force full rescheduling (ablation)
	stats *Stats

	// reach caches the parent eval-graph's reachability index across the
	// candidates of one expansion.
	reach    *graph.ReachIndex
	reachFor *graph.Graph
}

func newEvaluator(model *cost.Model, full bool, stats *Stats) *evaluator {
	sc := &sched.Scheduler{}
	return &evaluator{
		model: model,
		sc:    sc,
		col:   collapser{model: model, sc: sc},
		full:  full,
		stats: stats,
	}
}

// collapse fills in EvalG and regions for s (the cheap half of
// evaluation, sufficient for duplicate hashing).
func (e *evaluator) collapse(s *State) error {
	eg, regions, err := e.col.Collapse(s.G, s.FT)
	if err != nil {
		return err
	}
	s.EvalG = eg
	s.regions = regions
	return nil
}

// evaluate fills in EvalG, Sched, PeakMem, Latency, and Hot for s. prev is
// the parent state (nil for the initial one); oldMutated lists the parent
// EvalG nodes touched by the transformation that produced s.
func (e *evaluator) evaluate(s *State, prev *State, oldMutated []graph.NodeID) error {
	if s.EvalG == nil {
		if err := e.collapse(s); err != nil {
			return err
		}
	}
	eg := s.EvalG

	t0 := time.Now()
	if prev == nil || e.full || len(oldMutated) == 0 {
		s.Sched = e.sc.ScheduleGraph(eg)
		e.stats.Rescheduled += len(s.Sched)
	} else {
		if e.reachFor != prev.EvalG {
			e.reach = graph.NewReachIndex(prev.EvalG)
			e.reachFor = prev.EvalG
		}
		var n int
		s.Sched, n = e.sc.IncrementalR(prev.EvalG, eg, oldMutated, prev.Sched, e.reach)
		e.stats.Rescheduled += n
	}
	e.stats.Sched++
	e.stats.SchedTime += time.Since(t0)

	t1 := time.Now()
	prof := sched.Simulate(eg, s.Sched)
	s.PeakMem = prof.Peak
	s.Hot = prof.Hotspots
	r := sim.Run(eg, s.Sched, sim.Config{
		Model: e.model,
		NodeCost: func(n *graph.Node) (float64, bool) {
			if rop, ok := n.Op.(*RegionOp); ok {
				return rop.Latency(), true
			}
			return 0, false
		},
	})
	s.Latency = r.Latency
	e.stats.Simul++
	e.stats.SimulTime += time.Since(t1)
	return nil
}

// hash returns the Weisfeiler-Lehman hash of the evaluation graph: states
// with identical collapsed structure are duplicates for the search.
func (e *evaluator) hash(s *State) uint64 {
	t := time.Now()
	h := s.EvalG.WLHash()
	e.stats.Hash++
	e.stats.HashTime += time.Since(t)
	return h
}
