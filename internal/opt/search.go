package opt

import (
	"container/heap"
	"context"
	"errors"
	"fmt"
	"math"
	"runtime"
	"time"

	"magis/internal/cost"
	"magis/internal/ftree"
	"magis/internal/graph"
	"magis/internal/rules"
	"magis/internal/sched"
	"magis/internal/sim"
)

// Mode selects which objective is constrained and which is minimized.
type Mode int

const (
	// LatencyUnderMemory minimizes latency subject to a memory limit
	// (Algorithm 3 as printed).
	LatencyUnderMemory Mode = iota
	// MemoryUnderLatency minimizes peak memory subject to a latency limit.
	MemoryUnderLatency
)

// Options configures M-Optimizer.
type Options struct {
	// Mode picks the optimization direction.
	Mode Mode
	// MemLimit is M in bytes (LatencyUnderMemory).
	MemLimit int64
	// LatencyLimit in seconds (MemoryUnderLatency).
	LatencyLimit float64
	// MaxLevel is the F-Tree max level L (default 4).
	MaxLevel int
	// MaxCandidates caps F-Tree size (default 64).
	MaxCandidates int
	// MaxSites caps rule applications per rule per expansion (default 8).
	MaxSites int
	// TimeBudget bounds the search wall-clock (default 3s). It is layered
	// on top of the caller's context as a deadline; set it negative to
	// disable the budget and rely solely on the context passed to
	// OptimizeCtx.
	TimeBudget time.Duration
	// MaxIterations bounds queue pops (default 10000).
	MaxIterations int
	// MemBudget is a soft RSS budget in bytes for the whole process while
	// this search runs (0 disables). Live memory is sampled at expansion
	// boundaries via runtime/metrics; past the budget the search sheds in
	// stages — evicting the worst-scoring frontier states, shrinking
	// MaxSites and MaxCandidates, flushing the graph recyclers and forcing
	// a GC — and only stops (Result.Stopped = StopMemBudget, best-so-far
	// preserved exactly like TimeBudget) when still over budget after the
	// whole ladder. A run whose governor never triggers is bit-identical
	// to one with MemBudget = 0; see Result.Governor for what happened.
	MemBudget int64
	// memUsed overrides the governor's live-memory sampler (tests only).
	memUsed func() uint64
	// Delta is the relaxed-push coefficient (default 1.1).
	Delta float64
	// CheckInvariants runs graph.Validate on every candidate that passes
	// the duplicate filter and Schedule.Validate on every evaluated one,
	// rejecting (and diagnosing) candidates a buggy rule corrupted. Tests
	// set it unconditionally; production callers pay ~O(V+E) per
	// candidate for it.
	CheckInvariants bool
	// QuarantineAfter disables a rule after this many consecutive
	// failures — recovered panics or invariant violations — with no
	// intervening success (default 3).
	QuarantineAfter int
	// Workers is the number of goroutines evaluating an expansion's
	// candidates in parallel (default runtime.GOMAXPROCS(0)). 1 keeps the
	// fully sequential pipeline. The search result is deterministic for
	// any value: candidates merge back in generation order, so best-state
	// selection, History, and queue contents are identical across worker
	// counts (only the time-stamped fields and the duplicated-work
	// portions of Stats vary).
	Workers int
	// StrictHash disables incremental WL hashing: every candidate is hashed
	// from scratch instead of splicing into the parent's label snapshot.
	// The two paths are bit-identical by construction (the splice re-labels
	// any node it cannot prove clean); this is the escape hatch for ruling
	// the incremental path out while debugging, and the reference side of
	// the differential oracle.
	StrictHash bool
	// Ablation switches (§7.2.5).
	NaiveFission    bool
	NaiveSchedRules bool
	FullReschedule  bool
	// DisableFission removes F-Trans from the search space entirely,
	// leaving a pure scheduling-rule optimizer (the Fig. 2 swap-only
	// comparison point).
	DisableFission bool
	// Rules overrides the rule catalog (default rules.All()). Checkpoints
	// persist rules by Name(), so a custom catalog is resumable only when
	// every rule is part of rules.All().
	Rules []rules.Rule
	// Checkpoint enables crash-safe snapshots of the search state (set
	// Path). See the Checkpoint type for cadence knobs and Resume for the
	// recovery path.
	Checkpoint Checkpoint
	// OnExpansion, when set, is called on the search goroutine after every
	// completed expansion with the total expansion count. Service layers
	// use it as a liveness signal for stall watchdogs; it must be fast and
	// must not retain references into the search.
	OnExpansion func(completed int)
}

func (o *Options) defaults() {
	if o.MaxLevel == 0 {
		o.MaxLevel = 4
	}
	if o.MaxCandidates == 0 {
		o.MaxCandidates = 64
	}
	if o.MaxSites == 0 {
		o.MaxSites = 8
	}
	if o.Workers == 0 {
		o.Workers = runtime.GOMAXPROCS(0)
	}
	if o.Workers < 1 {
		o.Workers = 1
	}
	if o.TimeBudget == 0 {
		o.TimeBudget = 3 * time.Second
	}
	if o.MaxIterations == 0 {
		o.MaxIterations = 10000
	}
	if o.Delta == 0 {
		o.Delta = 1.1
	}
	if o.QuarantineAfter == 0 {
		o.QuarantineAfter = 3
	}
	if o.Rules == nil {
		o.Rules = rules.All()
	}
	if o.Mode == LatencyUnderMemory && o.MemLimit == 0 {
		o.MemLimit = math.MaxInt64
	}
	if o.Mode == MemoryUnderLatency && o.LatencyLimit == 0 {
		o.LatencyLimit = math.Inf(1)
	}
}

// better implements BetterThan (Algorithm 3 lines 1-2) for both modes,
// comparing (constrained objective clamped at the limit, free objective)
// lexicographically with b's side relaxed by delta.
func (o *Options) better(a, b *State, delta float64) bool {
	switch o.Mode {
	case MemoryUnderLatency:
		al := math.Max(a.Latency, o.LatencyLimit)
		bl := math.Max(delta*b.Latency, o.LatencyLimit)
		if al != bl {
			return al < bl
		}
		return float64(a.PeakMem) < delta*float64(b.PeakMem)
	default:
		am := math.Max(float64(a.PeakMem), float64(o.MemLimit))
		bm := math.Max(delta*float64(b.PeakMem), float64(o.MemLimit))
		if am != bm {
			return am < bm
		}
		return a.Latency < delta*b.Latency
	}
}

// HistoryPoint records the best objective values over elapsed time
// (Fig. 13's convergence curves).
type HistoryPoint struct {
	Elapsed time.Duration
	PeakMem int64
	Latency float64
}

// StopReason explains why an anytime search returned.
type StopReason int

const (
	// StopUnknown is the zero value; a populated Result never carries it.
	StopUnknown StopReason = iota
	// StopConverged: the candidate queue drained — every reachable
	// non-dominated state was explored.
	StopConverged
	// StopDeadline: the TimeBudget or the context deadline expired.
	StopDeadline
	// StopCancelled: the caller cancelled the context.
	StopCancelled
	// StopExhausted: MaxIterations queue pops were spent.
	StopExhausted
	// StopMemBudget: Options.MemBudget was exceeded and the shed ladder
	// (frontier eviction, knob shrinking, pool flush + GC) could not get
	// back under it; the best state found so far is returned.
	StopMemBudget
)

// String renders the reason for logs and CLI summaries.
func (s StopReason) String() string {
	switch s {
	case StopConverged:
		return "converged"
	case StopDeadline:
		return "deadline"
	case StopCancelled:
		return "cancelled"
	case StopExhausted:
		return "exhausted"
	case StopMemBudget:
		return "mem-budget"
	default:
		return "unknown"
	}
}

// stopReason maps a context error to its StopReason.
func stopReason(err error) StopReason {
	if errors.Is(err, context.DeadlineExceeded) {
		return StopDeadline
	}
	return StopCancelled
}

// Result is the outcome of one optimization run.
type Result struct {
	// Best is the best M-State found.
	Best *State
	// Baseline is the unoptimized input: original graph, plain topological
	// order with free-after-last-use (the PyTorch baseline of §7.1).
	Baseline *State
	// Stats is the Fig. 15 time breakdown.
	Stats Stats
	// History tracks best-so-far improvements.
	History []HistoryPoint
	// Stopped is why the search ended. The search is anytime: every
	// reason still returns the best state found so far.
	Stopped StopReason
	// Diagnostics records contained failures: per-rule panic and
	// quarantine counters and the first recovered panics.
	Diagnostics Diagnostics
	// Checkpoint reports the checkpointing activity of the run (nil when
	// Options.Checkpoint was not enabled). Write failures degrade the
	// search to uncheckpointed rather than aborting it; the first error is
	// recorded here.
	Checkpoint *CheckpointStatus
	// Governor reports the memory governor's activity (nil when
	// Options.MemBudget was not set).
	Governor *GovernorStatus
}

type stateQueue struct {
	items []*State
	opts  *Options
}

func (q *stateQueue) Len() int           { return len(q.items) }
func (q *stateQueue) Less(i, j int) bool { return q.opts.better(q.items[i], q.items[j], 1) }
func (q *stateQueue) Swap(i, j int)      { q.items[i], q.items[j] = q.items[j], q.items[i] }
func (q *stateQueue) Push(x interface{}) { q.items = append(q.items, x.(*State)) }
func (q *stateQueue) Pop() interface{} {
	old := q.items
	n := len(old)
	it := old[n-1]
	q.items = old[:n-1]
	return it
}

// Baseline evaluates g unoptimized: program-order schedule with basic
// memory saving (tensors freed after last use), no transformations.
func Baseline(g *graph.Graph, model *cost.Model) *State {
	order := sched.Schedule(g.Topo())
	prof := sched.Simulate(g, order)
	r := sim.Run(g, order, sim.Config{Model: model})
	return &State{
		G:       g,
		EvalG:   g,
		Sched:   order,
		PeakMem: prof.Peak,
		Latency: r.Latency,
		Hot:     prof.Hotspots,
	}
}

// Optimize runs M-Optimizer's greedy best-first search (Algorithm 3) under
// the default background context: only TimeBudget and MaxIterations bound
// the run.
func Optimize(g *graph.Graph, model *cost.Model, o Options) (*Result, error) {
	return OptimizeCtx(context.Background(), g, model, o)
}

// OptimizeCtx is Optimize with cooperative cancellation: the context is
// checked at every queue pop and between candidate evaluations, so
// cancelling it (or its deadline expiring) returns the best state found so
// far within roughly one candidate evaluation. TimeBudget is layered on
// top of ctx as a deadline; whichever fires first stops the search.
//
// The search is anytime and degrades gracefully: once the initial
// evaluation succeeds it never returns an error. Per-candidate panics are
// contained (see RuleError), repeatedly failing rules are quarantined, and
// Result.Stopped plus Result.Diagnostics report how the run ended.
func OptimizeCtx(ctx context.Context, g *graph.Graph, model *cost.Model, o Options) (*Result, error) {
	return OptimizeSeeded(ctx, g, model, o)
}

// OptimizeSeeded is OptimizeCtx with warm-start seeds: additional initial
// frontier states replayed from cached plans (see PlanRecord). Each seed
// is validated and re-evaluated by the live pipeline before it may enter
// the frontier; a seed that fails anywhere — invalid graph, stale fission
// choices, a panic during evaluation — is dropped with a diagnostic and
// the search proceeds from whatever seeds survived (possibly none, i.e. a
// cold start). Seeds participate in best-state selection immediately, so
// an exact replay of a good plan bounds the result from below.
func OptimizeSeeded(ctx context.Context, g *graph.Graph, model *cost.Model, o Options, seeds ...*State) (*Result, error) {
	o.defaults()
	res := &Result{}
	if err := guard("init", "baseline evaluation", func() error {
		res.Baseline = Baseline(g, model)
		return nil
	}); err != nil {
		return nil, fmt.Errorf("%w: %w", ErrInitialEval, err)
	}
	pool := newEvalPool(o.Workers, model, o.FullReschedule, o.StrictHash, &res.Stats)
	ev := pool.primary()
	ftOpts := ftree.Options{
		MaxLevel:      o.MaxLevel,
		MaxCandidates: o.MaxCandidates,
		NaiveFission:  o.NaiveFission,
	}

	start := time.Now()
	init := &State{G: g.Clone()}
	if o.CheckInvariants {
		if err := graph.Validate(init.G); err != nil {
			return nil, fmt.Errorf("%w: input graph: %w", ErrInitialEval, err)
		}
	}
	if err := guard("init", "initial evaluation", func() error {
		return ev.evaluate(init, nil, nil)
	}); err != nil {
		return nil, fmt.Errorf("%w: %w", ErrInitialEval, err)
	}
	quar := newQuarantine(o.QuarantineAfter)
	if o.DisableFission {
		init.FT = &ftree.Tree{}
	} else if err := guard(ftreeRuleName, "initial F-Tree build", func() error {
		init.FT = ftree.Build(init.G, init.Hot, ftOpts)
		return nil
	}); err != nil {
		// Degrade to a fission-free search instead of dying.
		res.Diagnostics.notePanic(err, quar)
		init.FT = &ftree.Tree{}
	}

	l := &searchLoop{
		o:      &o,
		res:    res,
		quar:   quar,
		seen:   make(map[uint64]bool),
		q:      &stateQueue{opts: &o},
		best:   init,
		start:  start,
		input:  g,
		model:  model,
		pool:   pool,
		ftOpts: ftOpts,
		gp:     &ev.gp,
	}
	res.History = append(res.History, HistoryPoint{l.elapsed(), init.PeakMem, init.Latency})
	heap.Init(l.q)
	heap.Push(l.q, init)
	l.seen[ev.hash(init, nil)] = true
	for _, sd := range seeds {
		l.seed(sd)
	}
	l.run(ctx)
	return res, nil
}

// warmRuleName is the pseudo-rule seed replay failures are attributed to
// in Diagnostics (and, like any rule, quarantined after repeated failure).
const warmRuleName = "WarmStart"

// seed admits one warm-start state into the initial frontier. Everything
// runs under guard: a seed can only ever be dropped, never corrupt the
// search. Duplicate seeds (or a seed identical to the init state) are
// filtered by the same WL-hash dedup the search uses.
func (l *searchLoop) seed(sd *State) {
	if sd == nil || sd.G == nil {
		return
	}
	ev := l.pool.primary()
	if err := guard(warmRuleName, "seed graph validation", func() error {
		return graph.Validate(sd.G)
	}); err != nil {
		l.res.Diagnostics.notePanic(err, l.quar)
		return
	}
	if err := guard(warmRuleName, "seed evaluation", func() error {
		return ev.evaluate(sd, nil, nil)
	}); err != nil {
		l.res.Diagnostics.notePanic(err, l.quar)
		return
	}
	h := ev.hash(sd, nil)
	if l.seen[h] {
		l.res.Stats.Filtered++
		return
	}
	l.seen[h] = true
	heap.Push(l.q, sd)
	l.res.Diagnostics.rule(warmRuleName).Evaluated++
	if l.o.better(sd, l.best, 1) {
		l.best = sd
		l.res.History = append(l.res.History,
			HistoryPoint{l.elapsed(), sd.PeakMem, sd.Latency})
	}
}

// searchLoop is the order-sensitive half of the search: everything below
// runs on the search goroutine only, in candidate-index order, regardless
// of Options.Workers. It is also the unit of checkpointing — a snapshot at
// an expansion boundary captures exactly the fields below (plus the worker
// pool's stats shards, folded in), and Resume reconstructs them.
type searchLoop struct {
	o     *Options
	res   *Result
	quar  *quarantine
	seen  map[uint64]bool
	q     *stateQueue
	best  *State
	start time.Time
	// prior is the wall-clock consumed by earlier incarnations of this
	// search (zero for a fresh run); elapsed() adds it to the current
	// incarnation's clock for history stamps and budget accounting.
	prior time.Duration
	// input is the original input graph, embedded in checkpoints so Resume
	// can re-derive the baseline.
	input  *graph.Graph
	model  *cost.Model
	pool   *evalPool
	ftOpts ftree.Options
	// gp is the central graph recycler (the primary evaluator's pool),
	// owned by the search goroutine: rule clones draw from it and absorb
	// returns rejected candidates' graphs to it.
	gp *graphPool
}

// elapsed is the total search wall-clock across incarnations.
func (l *searchLoop) elapsed() time.Duration { return l.prior + time.Since(l.start) }

// run executes the search loop until convergence, budget exhaustion, or
// cancellation, then finalizes the result. The remaining TimeBudget (total
// minus prior incarnations) is layered on top of ctx as a deadline.
func (l *searchLoop) run(ctx context.Context) {
	o, res, pool := l.o, l.res, l.pool
	ev := pool.primary()
	if ctx == nil {
		ctx = context.Background()
	}
	if o.TimeBudget > 0 {
		remaining := o.TimeBudget - l.prior
		if remaining <= 0 {
			res.Stopped = StopDeadline
			pool.flush(&res.Stats)
			res.Best = l.best
			return
		}
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, remaining)
		defer cancel()
	}
	var ck *checkpointer
	if o.Checkpoint.Path != "" {
		ck = newCheckpointer(o.Checkpoint)
		res.Checkpoint = &ck.status
	}
	var gov *governor
	if o.MemBudget > 0 {
		gov = newGovernor(o.MemBudget, o.memUsed)
		res.Governor = &gov.status
	}
	// tainted marks an exit in the middle of an expansion: the live state
	// has absorbed only a prefix of the expansion's candidates, so it is
	// NOT a valid resume point; the last boundary snapshot is.
	tainted := false
	res.Stopped = StopConverged
	for l.q.Len() > 0 {
		if ck != nil {
			// Expansion boundary: the state right now is a consistent
			// prefix of the run. Snapshot it (and flush to disk on the
			// configured cadence).
			ck.boundary(l)
		}
		if err := ctx.Err(); err != nil {
			res.Stopped = stopReason(err)
			break
		}
		if res.Stats.Iterations >= o.MaxIterations {
			res.Stopped = StopExhausted
			break
		}
		// Memory governor: sample at the expansion boundary (the state is
		// consistent and the checkpoint above is already taken) and shed
		// one stage per over-budget boundary; stop only when the whole
		// ladder is spent. When the budget is never exceeded the check is
		// read-only, so governed and ungoverned runs stay bit-identical.
		if gov != nil && gov.check(l) {
			res.Stopped = StopMemBudget
			break
		}
		res.Stats.Iterations++
		s := heap.Pop(l.q).(*State)
		if s.stale {
			if o.DisableFission {
				s.FT = &ftree.Tree{}
			} else if err := guard(ftreeRuleName, "tree rebuild", func() error {
				s.FT = rebuildTree(s, l.ftOpts)
				return nil
			}); err != nil {
				// A state whose tree cannot be re-analyzed still explores
				// graph rewrites; it just loses its fission moves.
				res.Diagnostics.notePanic(err, l.quar)
				s.FT = &ftree.Tree{}
			}
			s.stale = false
		}
		cands := neighbors(s, o, res, l.quar, l.gp)
		// One reachability index per parent state, built lazily on the
		// first incremental reschedule and shared read-only by every
		// worker of the expansion. Chained through reachHint, the build
		// rebases the grandparent expansion's index instead of starting
		// from scratch whenever the delta is small enough.
		rc := &reachCache{g: s.EvalG, prev: s.reachHint}
		s.reachHint = nil
		if o.Workers == 1 || len(cands) == 1 {
			// Sequential pipeline: process-then-merge one candidate at a
			// time, so the duplicate pre-filter sees every previously
			// merged hash and no candidate is ever evaluated wastefully —
			// today's exact behavior.
			ev.rc = rc
			for _, cand := range cands {
				if err := ctx.Err(); err != nil {
					res.Stopped = stopReason(err)
					break
				}
				l.absorb(cand, processCandidate(ev, cand, s, o, l.seen), rc)
			}
		} else {
			outs := pool.run(ctx, cands, s, rc, o, l.seen)
			for i, out := range outs {
				if out == nil {
					res.Stopped = stopReason(ctx.Err())
					break
				}
				l.absorb(cands[i], out, rc)
			}
		}
		if res.Stopped != StopConverged {
			tainted = true
			break // the candidate loop was interrupted mid-expansion
		}
		if o.OnExpansion != nil {
			o.OnExpansion(res.Stats.Iterations)
		}
	}
	pool.flush(&res.Stats)
	res.Best = l.best
	if ck != nil {
		ck.final(l, tainted)
	}
}

// absorb merges one candidate's evaluation outcome, reproducing the
// sequential per-candidate decisions exactly: diagnostics and quarantine
// advancement, the authoritative duplicate filter (first candidate in
// generation order wins; later equal-hash candidates count as Filtered
// even if a worker already evaluated them), best-state selection, history
// points, and delta-relaxed heap pushes. Rejected candidates' private
// graphs return to the central recycler here — the only place the search
// can prove nothing references them anymore.
func (l *searchLoop) absorb(cand *candidate, out *candOutcome, rc *reachCache) {
	res, quar := l.res, l.quar
	if out.hashErr != nil {
		res.Diagnostics.notePanic(out.hashErr, quar)
		l.recycle(cand)
		return
	}
	// Hash-filter BEFORE the expensive scheduling + simulation — the
	// Fig. 15 pipeline, where most generated graphs are duplicates and
	// (on the sequential path) never reach the scheduler.
	if out.dup || l.seen[out.hash] {
		res.Stats.Filtered++
		l.recycle(cand)
		return
	}
	l.seen[out.hash] = true
	if out.badGraph {
		res.Diagnostics.noteInvariant(cand.rule, quar)
		l.recycle(cand)
		return
	}
	if out.evalErr != nil {
		// Recovered panics are diagnosed; plain evaluation errors (e.g. a
		// stale region) skip silently, matching the pre-hardening
		// contract.
		res.Diagnostics.notePanic(out.evalErr, quar)
		l.recycle(cand)
		return
	}
	if out.badSched {
		res.Diagnostics.noteInvariant(cand.rule, quar)
		l.recycle(cand)
		return
	}
	quar.ok(cand.rule)
	res.Diagnostics.rule(cand.rule).Evaluated++
	if l.o.better(cand.state, l.best, 1) {
		l.best = cand.state
		res.History = append(res.History,
			HistoryPoint{time.Since(l.start), l.best.PeakMem, l.best.Latency})
	}
	if l.o.better(cand.state, l.best, l.o.Delta) {
		// Only states entering the frontier can ever be expanded, so only
		// they keep a handle on this expansion's reach cache.
		cand.state.reachHint = rc
		heap.Push(l.q, cand.state)
	} else if cand.state != l.best {
		// Evaluated but neither frontier nor best: dead on arrival.
		l.recycle(cand)
	}
}

// recycle returns a rejected candidate's private graphs to the central
// pool: its evaluation graph (always collapse-fresh) and, for rule
// candidates, the rewritten logical graph. Contained-panic paths are safe
// to recycle too: EvalG is only assigned after Collapse returns whole, G
// is fully built before the candidate exists, and a panic downstream of
// either (hashing, scheduling, simulation) retains no reference to them —
// CloneInto resets the shell on reuse regardless.
func (l *searchLoop) recycle(cand *candidate) {
	if l.gp == nil {
		return
	}
	s := cand.state
	if s.EvalG != nil && s.EvalG != s.G {
		l.gp.put(s.EvalG)
		s.EvalG = nil
		s.wl = nil
	}
	if cand.ownsG {
		l.gp.put(s.G)
		s.G = nil
	}
}

// ftreeRuleName is the pseudo-rule name F-Tree mutations and rebuilds are
// attributed to in Diagnostics and quarantine.
const ftreeRuleName = "FTree"

type candidate struct {
	state      *State
	oldMutated []graph.NodeID
	// rule and site attribute failures during this candidate's collapse,
	// hashing, and evaluation to the transformation that produced it.
	rule string
	site string
	// ownsG marks the state's logical graph as private to this candidate
	// (a rule-produced rewrite), making it recyclable on rejection. F-Tree
	// mutation candidates share the parent's graph and never own it.
	ownsG bool
}

// neighbors generates new M-States by applying M-Rules: graph rewrite
// rules on the logical graph and mutation rules on the F-Tree. Every rule
// application runs under guard; a panicking rule loses its candidates for
// this expansion and advances toward quarantine instead of crashing the
// search.
func neighbors(s *State, o *Options, res *Result, quar *quarantine, gp *graphPool) []*candidate {
	st := &res.Stats
	var out []*candidate
	t0 := time.Now()
	ctx := &rules.Context{
		Hot:          s.Hot,
		Cover:        s.FT.EnabledCover(),
		MaxSites:     o.MaxSites,
		UseHotFilter: !o.NaiveSchedRules,
	}
	if gp != nil {
		ctx.CloneGraph = gp.clone
	}
	for _, r := range o.Rules {
		name := r.Name()
		if quar.active(name) {
			continue
		}
		var apps []rules.Application
		if err := guard(name, "Apply", func() error {
			apps = r.Apply(s.G, ctx)
			return nil
		}); err != nil {
			res.Diagnostics.notePanic(err, quar)
			continue
		}
		for _, app := range apps {
			// Copy-on-write F-Tree: a graph-rewrite candidate never
			// mutates the tree — it is marked stale and rebuilds a fresh
			// one when popped — so it shares the parent's tree instead of
			// cloning it. Trees referenced by candidate states are
			// treated as immutable everywhere (F-Tree mutations below
			// clone before Apply), which also makes the shared reads safe
			// across evaluation workers.
			out = append(out, &candidate{
				state:      &State{G: app.Graph, FT: s.FT, stale: true},
				oldMutated: mapToEval(s, app.OldMutated),
				rule:       name,
				site:       app.Site(),
				ownsG:      true,
			})
			res.Diagnostics.rule(name).Applications++
			st.Trans++
		}
	}
	if !quar.active(ftreeRuleName) {
		var muts []ftree.Mutation
		if err := guard(ftreeRuleName, "Mutations", func() error {
			muts = s.FT.Mutations(s.G)
			return nil
		}); err != nil {
			res.Diagnostics.notePanic(err, quar)
		}
		for _, m := range muts {
			var cand *candidate
			site := fmt.Sprintf("mutation %v@%v", m.Kind, m.Path)
			if err := guard(ftreeRuleName, site, func() error {
				ft := s.FT.Clone()
				target := ft.NodeAt(m.Path)
				if err := ft.Apply(m); err != nil || target == nil {
					return errSkip
				}
				mut := regionAnchors(s, target)
				if m.Kind == ftree.Lift && target.Parent != nil {
					mut = append(mut, regionAnchors(s, target.Parent)...)
				}
				cand = &candidate{
					state:      &State{G: s.G, FT: ft},
					oldMutated: mut,
					rule:       ftreeRuleName,
					site:       site,
				}
				return nil
			}); err != nil {
				res.Diagnostics.notePanic(err, quar)
				continue
			}
			out = append(out, cand)
			res.Diagnostics.rule(ftreeRuleName).Applications++
			st.Trans++
		}
	}
	st.TransTime += time.Since(t0)
	return out
}

// mapToEval keeps only mutated nodes visible in the parent's eval graph,
// adding the region nodes covering collapsed ones.
func mapToEval(s *State, ids []graph.NodeID) []graph.NodeID {
	var out []graph.NodeID
	for _, id := range ids {
		if s.EvalG.Has(id) {
			out = append(out, id)
		}
	}
	if len(out) < len(ids) {
		// Some were collapsed: anchor at every region node (coarse but
		// safe; Incremental widens/falls back as needed).
		for _, rid := range s.regions {
			out = append(out, rid)
		}
	}
	return out
}

// regionAnchors returns the parent-eval-graph nodes standing for an F-Tree
// node's region: the members if expanded, the region node if collapsed.
func regionAnchors(s *State, n *ftree.Node) []graph.NodeID {
	if id, ok := s.regions[regionKey(n.T.S)]; ok {
		return []graph.NodeID{id}
	}
	var out []graph.NodeID
	for v := range n.T.S {
		if s.EvalG.Has(v) {
			out = append(out, v)
		}
	}
	if len(out) == 0 {
		// Fully nested inside another region: anchor there.
		for _, rid := range s.regions {
			out = append(out, rid)
		}
	}
	return out
}

// rebuildTree re-analyzes the F-Tree after a graph rewrite (Algorithm 3
// line 13-14), preserving enabled regions by set identity. The rebuild is
// warm-started from the parent tree's cached dominator computations: one
// rewrite leaves most of the graph's ancestor cones untouched, so most
// immediate dominators carry over verbatim (see graph.DominatorsFrom).
func rebuildTree(s *State, o ftree.Options) *ftree.Tree {
	nt := ftree.BuildFrom(s.G, s.Hot, o, s.FT)
	enabled := s.FT.EnabledNodes()
	matched := make(map[string]int, len(enabled))
	for _, en := range enabled {
		matched[regionKey(en.T.S)] = en.N
	}
	nt.Walk(func(n *ftree.Node) {
		if nn, ok := matched[regionKey(n.T.S)]; ok {
			n.N = nn
			delete(matched, regionKey(n.T.S))
		}
	})
	// Enabled regions absent from the fresh tree survive as extra roots.
	for _, en := range enabled {
		if _, missing := matched[regionKey(en.T.S)]; missing {
			keep := &ftree.Node{T: en.T, N: en.N, Score: en.Score, Level: en.Level}
			nt.Roots = append(nt.Roots, keep)
		}
	}
	return nt
}
