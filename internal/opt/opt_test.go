package opt

import (
	"testing"
	"time"

	"magis/internal/cost"
	"magis/internal/ftree"
	"magis/internal/graph"
	"magis/internal/models"
	"magis/internal/ops"
	"magis/internal/sched"
	"magis/internal/tensor"
)

func model() *cost.Model { return cost.NewModel(cost.RTX3090()) }

// fatMLP is a small training graph whose activations dominate its weights
// (large batch, modest hidden width) — the memory profile of the paper's
// workloads, with room for fission and scheduling to cut the peak.
func fatMLP() *graph.Graph {
	return models.MLP(8192, 256, 512, 10, 4).G
}

func TestBaselineMatchesTopo(t *testing.T) {
	g := fatMLP()
	b := Baseline(g, model())
	if b.PeakMem != sched.PeakOnly(g, g.Topo()) {
		t.Error("baseline peak should use plain topo order")
	}
	if b.Latency <= 0 {
		t.Error("baseline latency must be positive")
	}
}

func TestOptimizeMemoryUnderLatency(t *testing.T) {
	g := fatMLP()
	m := model()
	bl := Baseline(g, m)
	res, err := Optimize(g, m, Options{
		Mode:            MemoryUnderLatency,
		LatencyLimit:    bl.Latency * 1.10,
		TimeBudget:      1500 * time.Millisecond,
		CheckInvariants: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Best.PeakMem >= bl.PeakMem {
		t.Errorf("no memory reduction: %d -> %d", bl.PeakMem, res.Best.PeakMem)
	}
	ratio := float64(res.Best.PeakMem) / float64(bl.PeakMem)
	t.Logf("memory ratio %.2f, latency overhead %.2f%%",
		ratio, 100*(res.Best.Latency/bl.Latency-1))
	if ratio > 0.9 {
		t.Errorf("memory ratio %.2f too weak for this fission-friendly graph", ratio)
	}
	if err := res.Best.Sched.Validate(res.Best.EvalG); err != nil {
		t.Fatal(err)
	}
}

func TestOptimizeLatencyUnderMemory(t *testing.T) {
	g := fatMLP()
	m := model()
	bl := Baseline(g, m)
	limit := int64(float64(bl.PeakMem) * 0.6)
	res, err := Optimize(g, m, Options{
		Mode:            LatencyUnderMemory,
		MemLimit:        limit,
		TimeBudget:      1500 * time.Millisecond,
		CheckInvariants: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Best.PeakMem > limit {
		t.Errorf("memory constraint violated: %d > %d", res.Best.PeakMem, limit)
	}
	t.Logf("latency overhead %.2f%% at 60%% memory",
		100*(res.Best.Latency/bl.Latency-1))
}

func TestStatsPopulated(t *testing.T) {
	g := fatMLP()
	res, err := Optimize(g, model(), Options{
		Mode:            MemoryUnderLatency,
		TimeBudget:      500 * time.Millisecond,
		CheckInvariants: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	s := res.Stats
	if s.Iterations == 0 || s.Trans == 0 || s.Sched == 0 || s.Simul == 0 || s.Hash == 0 {
		t.Errorf("stats incomplete: %+v", s)
	}
	if len(res.History) == 0 {
		t.Error("no history recorded")
	}
}

func TestBetterThanModes(t *testing.T) {
	a := &State{PeakMem: 100, Latency: 2}
	b := &State{PeakMem: 200, Latency: 1}
	lat := Options{Mode: LatencyUnderMemory, MemLimit: 300}
	lat.defaults()
	// Both under the limit: compare latency.
	if lat.better(a, b, 1) {
		t.Error("a (slower) should not beat b under a loose memory limit")
	}
	tight := Options{Mode: LatencyUnderMemory, MemLimit: 150}
	tight.defaults()
	// b violates the limit: a wins on clamped memory.
	if !tight.better(a, b, 1) {
		t.Error("a (within limit) should beat b (violating)")
	}
	mem := Options{Mode: MemoryUnderLatency, LatencyLimit: 3}
	mem.defaults()
	if !mem.better(a, b, 1) {
		t.Error("a (smaller) should beat b under a loose latency limit")
	}
}

func TestCollapseRegionAccounting(t *testing.T) {
	g := fatMLP()
	m := model()
	prof := sched.Simulate(g, g.Topo())
	tr := ftree.Build(g, prof.Hotspots, ftree.Options{})
	if tr.Size() == 0 {
		t.Fatal("no candidates")
	}
	// Enable the biggest candidate (an Enable mutation exists for any free
	// candidate).
	var target *ftree.Node
	var chosen ftree.Mutation
	for _, mu := range tr.Mutations(g) {
		n := tr.NodeAt(mu.Path)
		if mu.Kind == ftree.Enable && (target == nil || len(n.T.S) > len(target.T.S)) {
			target = n
			chosen = mu
		}
	}
	if target == nil {
		t.Fatal("no enable mutation")
	}
	if err := tr.Apply(chosen); err != nil {
		t.Fatal(err)
	}
	c := collapser{model: m, sc: &sched.Scheduler{}}
	eg, regions, err := c.Collapse(g, tr)
	if err != nil {
		t.Fatal(err)
	}
	if len(regions) != 1 {
		t.Fatalf("regions = %d, want 1", len(regions))
	}
	if want := g.Len() - len(target.T.S) + 1; eg.Len() != want {
		t.Errorf("collapsed graph has %d nodes, want %d", eg.Len(), want)
	}
	rid := regions[regionKey(target.T.S)]
	rop := eg.Node(rid).Op.(*RegionOp)
	if rop.Latency() <= 0 {
		t.Error("region latency must be positive")
	}
	if rop.OutDeviceBytes() <= 0 {
		t.Error("region output bytes must be positive")
	}
	// Splitting costs latency: region latency exceeds the unsplit members'.
	var orig float64
	for v := range target.T.S {
		orig += m.NodeLatency(g.Node(v))
	}
	if rop.Latency() <= orig {
		t.Errorf("region latency %g should exceed unsplit latency %g", rop.Latency(), orig)
	}
	// The collapsed graph must still schedule.
	if err := sched.Schedule(eg.Topo()).Validate(eg); err != nil {
		t.Fatal(err)
	}
}

func TestParetoFilter(t *testing.T) {
	pts := []ParetoPoint{
		{1.0, 0}, {0.8, 0.05}, {0.9, 0.5}, {0.6, 0.2}, {0.6, 0.4}, {0.4, 0.1},
	}
	front := Pareto(pts)
	for i := 1; i < len(front); i++ {
		if front[i].MemRatio <= front[i-1].MemRatio {
			t.Error("front not sorted by memory")
		}
		if front[i].LatOverhead >= front[i-1].LatOverhead {
			t.Error("dominated point on front")
		}
	}
	// (0.9, 0.5) and (0.6, 0.4) are dominated.
	for _, p := range front {
		if p == (ParetoPoint{0.9, 0.5}) || p == (ParetoPoint{0.6, 0.4}) {
			t.Errorf("dominated point %v kept", p)
		}
	}
}

func TestRegionOpInterfaceCompliance(t *testing.T) {
	var op graph.Op = &RegionOp{}
	if op.Kind() != "FissionRegion" {
		t.Error("kind wrong")
	}
	var _ sched.DeviceSizer = &RegionOp{}
	if !op.OutShape().Equal(tensor.S()) {
		t.Error("region out shape should be opaque scalar")
	}
	_ = ops.KindStore // keep ops import for the compile-time assertions
}
