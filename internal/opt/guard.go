package opt

import (
	"errors"
	"runtime/debug"
	"sort"
)

// maxStack bounds the stack text kept per recovered panic.
const maxStack = 4 << 10

// maxKeptErrors bounds Diagnostics.Errors; counters keep counting beyond.
const maxKeptErrors = 16

// maxKeptNotes bounds the distinct messages Diagnostics.Notes holds;
// NotesDropped counts what the cap discarded.
const maxKeptNotes = 64

// noteOverflow is the marker entry standing in for messages dropped past
// maxKeptNotes.
const noteOverflow = "(diagnostics overflow: further distinct messages dropped)"

// guard runs fn and converts a panic into a *RuleError attributed to the
// given rule and site, so one buggy rewrite (a fission slice off-by-one, a
// bad transpose permutation) costs the search a single candidate instead
// of the whole run. A non-panic error from fn passes through unchanged.
func guard(rule, site string, fn func() error) (err error) {
	defer func() {
		if r := recover(); r != nil {
			stack := debug.Stack()
			if len(stack) > maxStack {
				stack = stack[:maxStack]
			}
			err = &RuleError{Rule: rule, Site: site, Panic: r, Stack: string(stack)}
		}
	}()
	return fn()
}

// Guard runs fn with the same panic containment the search applies to
// rules: a panic comes back as a *RuleError attributed to (component,
// site) with a bounded stack, a plain error passes through unchanged.
// Service layers wrap whole jobs in it so one poisoned request cannot
// take down the process.
func Guard(component, site string, fn func() error) error {
	return guard(component, site, fn)
}

// quarantine tracks per-rule failure streaks. A rule whose applications
// fail (panic or invariant violation) limit times in a row with no
// intervening success is quarantined: skipped for the rest of the run.
type quarantine struct {
	limit  int
	streak map[string]int
	banned map[string]bool
}

func newQuarantine(limit int) *quarantine {
	return &quarantine{
		limit:  limit,
		streak: make(map[string]int),
		banned: make(map[string]bool),
	}
}

// ok resets the rule's failure streak after a successful evaluation.
func (q *quarantine) ok(rule string) { q.streak[rule] = 0 }

// fail records one failure and reports whether the rule just crossed the
// quarantine threshold.
func (q *quarantine) fail(rule string) bool {
	if q.banned[rule] {
		return false
	}
	q.streak[rule]++
	if q.streak[rule] >= q.limit {
		q.banned[rule] = true
		return true
	}
	return false
}

// active reports whether the rule is quarantined.
func (q *quarantine) active(rule string) bool { return q.banned[rule] }

// RuleDiag is one rule's health record for a run.
type RuleDiag struct {
	// Applications counts candidate states the rule produced.
	Applications int
	// Evaluated counts candidates that survived to a full evaluation.
	Evaluated int
	// Panics counts recovered panics attributed to the rule.
	Panics int
	// InvariantFailures counts candidates rejected by graph.Validate or
	// Schedule.Validate (Options.CheckInvariants).
	InvariantFailures int
	// Quarantined reports whether the rule was disabled mid-run after
	// Options.QuarantineAfter consecutive failures.
	Quarantined bool
}

// Diagnostics is the failure-containment record of one optimization run.
// A clean run has zero panics and no quarantined rules.
type Diagnostics struct {
	// Rules maps rule name to its counters. Only rules that produced at
	// least one candidate or failure appear.
	Rules map[string]*RuleDiag
	// Errors holds the first recovered panics (capped; Panics counters
	// keep counting beyond the cap).
	Errors []*RuleError
	// Notes deduplicates free-form diagnostic events by message: each
	// distinct message maps to how many times it occurred. A week-long run
	// emitting the same event every expansion costs one map entry plus a
	// counter, and the map itself is capped at maxKeptNotes distinct
	// messages — past that, occurrences land on the noteOverflow marker
	// and NotesDropped counts the distinct messages lost.
	Notes map[string]int
	// NotesDropped counts distinct messages the Notes cap discarded.
	NotesDropped int
}

// Note records one occurrence of a diagnostic event, deduplicating by
// message. Callers must use stable message strings (no timestamps or
// counters interpolated) or the dedup degenerates.
func (d *Diagnostics) Note(msg string) {
	if d.Notes == nil {
		d.Notes = make(map[string]int)
	}
	if _, ok := d.Notes[msg]; !ok && len(d.Notes) >= maxKeptNotes {
		d.NotesDropped++
		d.Notes[noteOverflow]++
		return
	}
	d.Notes[msg]++
}

// rule returns (allocating if needed) the named rule's counters.
func (d *Diagnostics) rule(name string) *RuleDiag {
	if d.Rules == nil {
		d.Rules = make(map[string]*RuleDiag)
	}
	rd := d.Rules[name]
	if rd == nil {
		rd = &RuleDiag{}
		d.Rules[name] = rd
	}
	return rd
}

// Panics sums recovered panics across all rules.
func (d *Diagnostics) Panics() int {
	n := 0
	for _, rd := range d.Rules {
		n += rd.Panics
	}
	return n
}

// Quarantined lists the quarantined rule names in sorted order.
func (d *Diagnostics) Quarantined() []string {
	var out []string
	for name, rd := range d.Rules {
		if rd.Quarantined {
			out = append(out, name)
		}
	}
	sort.Strings(out)
	return out
}

// notePanic records a recovered panic (ignoring plain skip errors) and
// advances the rule's quarantine streak. It reports whether err was a
// recovered panic.
func (d *Diagnostics) notePanic(err error, q *quarantine) bool {
	var re *RuleError
	if !errors.As(err, &re) {
		return false
	}
	rd := d.rule(re.Rule)
	rd.Panics++
	if len(d.Errors) < maxKeptErrors {
		d.Errors = append(d.Errors, re)
	}
	if q.fail(re.Rule) {
		rd.Quarantined = true
	}
	return true
}

// noteInvariant records a candidate rejected by invariant validation and
// advances the rule's quarantine streak.
func (d *Diagnostics) noteInvariant(rule string, q *quarantine) {
	rd := d.rule(rule)
	rd.InvariantFailures++
	if q.fail(rule) {
		rd.Quarantined = true
	}
}
