package baselines

import (
	"magis/internal/cost"
	"magis/internal/graph"
	"magis/internal/ops"
	"magis/internal/sched"
)

// DTR models Dynamic Tensor Rematerialization (Kirisame et al., ICLR'21):
// a runtime that executes the program order under a hard memory cap,
// evicting the tensor with the smallest heuristic value
//
//	h(t) = cost(t) / (size(t) * staleness(t))
//
// on allocation failure, and transparently recomputing evicted tensors
// (recursively) when an operator needs them. Latency accumulates every
// recomputation. A runaway recomputation cascade — the paper's "DTR's
// processes take too long" failure — is reported as OK = false.
type DTR struct{}

// Name implements Optimizer.
func (DTR) Name() string { return "DTR" }

// OptimizeMem implements Optimizer.
func (DTR) OptimizeMem(g *graph.Graph, m *cost.Model, memLimit int64) Result {
	order := g.Topo()
	st := &dtrState{
		g:           g,
		m:           m,
		limit:       memLimit,
		resident:    make(map[graph.NodeID]bool),
		lastUse:     make(map[graph.NodeID]int),
		remaining:   make(map[graph.NodeID]int),
		budget:      20 * len(order), // recompute cascade cap ("takes too long")
		evictBudget: 20 * len(order),
	}
	for _, v := range order {
		st.remaining[v] = len(g.Suc(v))
	}
	for _, v := range order {
		if !st.execute(v) {
			return Result{0, 0, false}
		}
		// Basic memory saving: free tensors with no future uses.
		for _, u := range g.Pre(v) {
			st.remaining[u]--
			if st.remaining[u] == 0 && st.resident[u] {
				st.free(u)
			}
		}
	}
	if st.peak > memLimit {
		return Result{st.peak, st.latency, false}
	}
	return Result{st.peak, st.latency, true}
}

type dtrState struct {
	g     *graph.Graph
	m     *cost.Model
	limit int64

	resident    map[graph.NodeID]bool
	lastUse     map[graph.NodeID]int
	remaining   map[graph.NodeID]int
	bytes       int64
	peak        int64
	clock       int
	latency     float64
	budget      int
	evictBudget int
}

func (st *dtrState) size(v graph.NodeID) int64 {
	return sched.OutDeviceBytes(st.g.Node(v))
}

// execute materializes v's output, recomputing evicted inputs first, then
// frees recomputed temporaries that have no remaining program uses.
func (st *dtrState) execute(v graph.NodeID) bool {
	if !st.compute(v, make(map[graph.NodeID]int)) {
		return false
	}
	for t := range st.resident {
		if st.resident[t] && st.remaining[t] == 0 && len(st.g.Suc(t)) > 0 && t != v {
			st.free(t)
		}
	}
	return true
}

// compute recursively materializes v. pinned is a reference-counted set of
// tensors locked by the active recursion frames: each frame pins its
// operands only while it runs, so siblings stay evictable (DTR's argument
// locking).
func (st *dtrState) compute(v graph.NodeID, pinned map[graph.NodeID]int) bool {
	if st.budget--; st.budget < 0 {
		return false
	}
	node := st.g.Node(v)
	pinned[v]++
	defer unpin(pinned, v)
	preds := st.g.Pre(v)
	pinnedHere := 0
	defer func() {
		for _, u := range preds[:pinnedHere] {
			unpin(pinned, u)
		}
	}()
	for _, u := range preds {
		if !st.resident[u] {
			if ops.IsLeaf(st.g.Node(u).Op.Kind()) {
				// Weights/inputs reload from host storage.
				if !st.alloc(st.size(u), pinned) {
					return false
				}
				st.resident[u] = true
				st.bytes += st.size(u)
				st.latency += st.m.TransferLatency(st.size(u))
			} else if !st.compute(u, pinned) {
				return false
			}
		}
		pinned[u]++
		pinnedHere++
		st.touch(u)
	}
	if !st.alloc(st.size(v), pinned) {
		return false
	}
	st.latency += st.m.NodeLatency(node)
	st.clock++
	st.resident[v] = true
	st.bytes += st.size(v)
	if st.bytes > st.peak {
		st.peak = st.bytes
	}
	st.touch(v)
	return true
}

func unpin(pinned map[graph.NodeID]int, v graph.NodeID) {
	if pinned[v]--; pinned[v] <= 0 {
		delete(pinned, v)
	}
}

func (st *dtrState) touch(v graph.NodeID) { st.lastUse[v] = st.clock }

func (st *dtrState) free(v graph.NodeID) {
	if st.resident[v] {
		delete(st.resident, v)
		st.bytes -= st.size(v)
	}
}

// alloc makes room for need bytes, evicting by the DTR heuristic.
func (st *dtrState) alloc(need int64, pinned map[graph.NodeID]int) bool {
	for st.bytes+need > st.limit {
		victim := graph.Invalid
		bestH := 0.0
		for t := range st.resident {
			if !st.resident[t] || pinned[t] > 0 {
				continue
			}
			if ops.IsLeaf(st.g.Node(t).Op.Kind()) {
				continue // not recomputable
			}
			staleness := float64(st.clock-st.lastUse[t]) + 1
			h := st.m.NodeLatency(st.g.Node(t)) / (float64(st.size(t)) * staleness)
			if victim == graph.Invalid || h < bestH {
				victim = t
				bestH = h
			}
		}
		if victim == graph.Invalid {
			return false
		}
		if st.evictBudget--; st.evictBudget < 0 {
			return false // thrashing: the paper's "takes too long" failure
		}
		st.free(victim)
	}
	return true
}
