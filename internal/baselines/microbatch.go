package baselines

import (
	"fmt"

	"magis/internal/cost"
	"magis/internal/dgraph"
	"magis/internal/fission"
	"magis/internal/graph"
)

// MicroBatch pre-splits the whole graph along the batch dimension into
// `Factor` sequential micro-batches — the simple whole-graph F-Trans the
// paper uses in §7.2.4 to augment POFO (Fig. 12) — then runs an inner
// baseline on the expanded graph.
type MicroBatch struct {
	Inner  Optimizer
	Factor int
}

// Name implements Optimizer.
func (mb MicroBatch) Name() string {
	return fmt.Sprintf("%s(mb=%d)", mb.Inner.Name(), mb.Factor)
}

// OptimizeMem implements Optimizer.
func (mb MicroBatch) OptimizeMem(g *graph.Graph, m *cost.Model, memLimit int64) Result {
	ng, err := SplitBatch(g, mb.Factor)
	if err != nil {
		return Result{OK: false}
	}
	return mb.Inner.OptimizeMem(ng, m, memLimit)
}

// SplitBatch materializes a whole-graph batch fission with the given
// factor. The batch dimension is identified as the largest D-graph
// component whose member set admits a valid fission covering most of the
// graph's non-leaf nodes.
func SplitBatch(g *graph.Graph, factor int) (*graph.Graph, error) {
	d := dgraph.Build(g)
	var bestTr *fission.Trans
	bestSize := 0
	for _, comp := range d.Components() {
		members := make(graph.Set)
		for _, v := range comp.GraphNodes() {
			if len(g.Pre(v)) > 0 { // exclude leaves: they are sliced inputs
				members[v] = true
			}
		}
		if len(members) <= bestSize {
			continue
		}
		tr, err := fission.Resolve(g, d, comp, members, factor)
		if err != nil {
			continue
		}
		bestTr = tr
		bestSize = len(members)
	}
	if bestTr == nil {
		return nil, fmt.Errorf("baselines: no batch dimension admits factor %d", factor)
	}
	res, err := bestTr.Apply(g)
	if err != nil {
		return nil, err
	}
	return res.Graph, nil
}
