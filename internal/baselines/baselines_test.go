package baselines

import (
	"math"
	"testing"

	"magis/internal/cost"
	"magis/internal/graph"
	"magis/internal/models"
)

func model() *cost.Model { return cost.NewModel(cost.RTX3090()) }

func testGraph() *graph.Graph { return models.MLP(4096, 256, 512, 10, 4).G }

func TestPyTorchUnconstrained(t *testing.T) {
	g := testGraph()
	r := (PyTorch{}).OptimizeMem(g, model(), math.MaxInt64)
	if !r.OK || r.PeakMem <= 0 || r.Latency <= 0 {
		t.Fatalf("bad baseline result: %+v", r)
	}
	tight := (PyTorch{}).OptimizeMem(g, model(), r.PeakMem/2)
	if tight.OK {
		t.Error("PyTorch cannot meet a tighter limit")
	}
}

func TestCompilerBaselinesAreFaster(t *testing.T) {
	g := testGraph()
	m := model()
	pt := (PyTorch{}).OptimizeMem(g, m, math.MaxInt64)
	tvm := (TVM{}).OptimizeMem(g, m, math.MaxInt64)
	ti := (TorchInductor{}).OptimizeMem(g, m, math.MaxInt64)
	if tvm.Latency >= pt.Latency || ti.Latency >= tvm.Latency {
		t.Errorf("fusion ordering wrong: pt=%g tvm=%g ti=%g", pt.Latency, tvm.Latency, ti.Latency)
	}
	if tvm.PeakMem != pt.PeakMem {
		t.Error("TVM performs only basic memory saving")
	}
}

func TestXLAMeetsModerateLimit(t *testing.T) {
	g := testGraph()
	m := model()
	pt := (PyTorch{}).OptimizeMem(g, m, math.MaxInt64)
	limit := int64(float64(pt.PeakMem) * 0.8)
	r := (XLA{}).OptimizeMem(g, m, limit)
	if !r.OK {
		t.Fatalf("XLA failed at 80%%: %+v", r)
	}
	if r.PeakMem > limit {
		t.Errorf("limit violated: %d > %d", r.PeakMem, limit)
	}
	if r.Latency < pt.Latency {
		t.Error("rematerialization cannot be free")
	}
}

func TestDTRMeetsModerateLimit(t *testing.T) {
	g := testGraph()
	m := model()
	pt := (PyTorch{}).OptimizeMem(g, m, math.MaxInt64)
	limit := int64(float64(pt.PeakMem) * 0.7)
	r := (DTR{}).OptimizeMem(g, m, limit)
	if !r.OK {
		t.Fatalf("DTR failed at 70%%: %+v", r)
	}
	if r.PeakMem > limit {
		t.Errorf("limit violated: %d > %d", r.PeakMem, limit)
	}
	if r.Latency <= pt.Latency*0.99 {
		t.Errorf("DTR latency %g suspiciously below baseline %g", r.Latency, pt.Latency)
	}
	// Tighter limit: more recomputation, more latency.
	r2 := (DTR{}).OptimizeMem(g, m, int64(float64(pt.PeakMem)*0.5))
	if r2.OK && r2.Latency < r.Latency {
		t.Error("tighter limit should not be faster")
	}
}

func TestDTRImpossibleLimit(t *testing.T) {
	g := testGraph()
	r := (DTR{}).OptimizeMem(g, model(), 1024) // 1 KB: hopeless
	if r.OK {
		t.Error("DTR met an impossible limit")
	}
}

func TestPOFOMeetsModerateLimit(t *testing.T) {
	g := testGraph()
	m := model()
	pt := (PyTorch{}).OptimizeMem(g, m, math.MaxInt64)
	limit := int64(float64(pt.PeakMem) * 0.7)
	r := (POFO{}).OptimizeMem(g, m, limit)
	if !r.OK {
		t.Fatalf("POFO failed at 70%%: %+v", r)
	}
	if r.PeakMem > limit {
		t.Errorf("limit violated: %d > %d", r.PeakMem, limit)
	}
}

func TestMinimizeMemUnderLatency(t *testing.T) {
	g := testGraph()
	m := model()
	pt := (PyTorch{}).OptimizeMem(g, m, math.MaxInt64)
	r := MinimizeMemUnderLatency(DTR{}, g, m, pt.Latency*1.10)
	if !r.OK {
		t.Fatal("DTR found nothing under +10% latency")
	}
	if r.Latency > pt.Latency*1.10 {
		t.Error("latency bound violated")
	}
	if r.PeakMem >= pt.PeakMem {
		t.Error("no memory saved")
	}
}

func TestMicroBatchSplit(t *testing.T) {
	g := testGraph()
	ng, err := SplitBatch(g, 4)
	if err != nil {
		t.Fatal(err)
	}
	if ng.Len() <= g.Len() {
		t.Error("micro-batching should expand the graph")
	}
	m := model()
	pt := (PyTorch{}).OptimizeMem(g, m, math.MaxInt64)
	mb := (PyTorch{}).OptimizeMem(ng, m, math.MaxInt64)
	if mb.PeakMem >= pt.PeakMem {
		t.Errorf("micro-batching did not reduce memory: %d vs %d", mb.PeakMem, pt.PeakMem)
	}
	if mb.Latency <= pt.Latency {
		t.Error("micro-batching cannot be free")
	}
}

func TestMicroBatchPOFOComposition(t *testing.T) {
	g := testGraph()
	m := model()
	pt := (PyTorch{}).OptimizeMem(g, m, math.MaxInt64)
	limit := int64(float64(pt.PeakMem) * 0.4)
	plain := (POFO{}).OptimizeMem(g, m, limit)
	mb := (MicroBatch{Inner: POFO{}, Factor: 4}).OptimizeMem(g, m, limit)
	if !mb.OK {
		t.Fatal("POFO(mb=4) failed at 40%")
	}
	// Fig. 12's point: micro-batching extends POFO's reach under tight
	// limits (plain POFO may fail or pay more).
	if plain.OK && mb.PeakMem > plain.PeakMem && mb.Latency > plain.Latency {
		t.Error("micro-batching should help under tight limits")
	}
}
