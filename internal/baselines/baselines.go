// Package baselines implements the comparison systems of §7.1: the
// unoptimized PyTorch baseline (plain program order with basic memory
// saving), the TVM / Torch-Inductor compiler baselines (basic memory
// saving plus fusion speedups), XLA's greedy re-materialization, DTR's
// heuristic dynamic re-materialization, POFO's combined
// re-materialization + offloading, and POFO over micro-batched graphs
// (Fig. 12). Every baseline runs on the same graph IR, cost model, and
// simulator as MAGIS, so relative numbers are apples-to-apples.
package baselines

import (
	"math"

	"magis/internal/cost"
	"magis/internal/graph"
	"magis/internal/sched"
	"magis/internal/sim"
)

// Result is the outcome of one baseline optimization.
type Result struct {
	// PeakMem is the achieved peak device memory in bytes.
	PeakMem int64
	// Latency is the simulated epoch latency in seconds.
	Latency float64
	// OK is false when the baseline cannot meet the constraint ("OOM" /
	// "FAILURE" in the paper's figures).
	OK bool
}

// Optimizer is a memory-optimization baseline: minimize latency subject to
// a peak-memory limit (pass math.MaxInt64 for unconstrained).
type Optimizer interface {
	Name() string
	OptimizeMem(g *graph.Graph, m *cost.Model, memLimit int64) Result
}

// All returns the baseline set of §7.1 in the paper's order.
func All() []Optimizer {
	return []Optimizer{POFO{}, DTR{}, XLA{}, TVM{}, TorchInductor{}}
}

// measure evaluates a graph+schedule on the shared simulator.
func measure(g *graph.Graph, order sched.Schedule, m *cost.Model) (int64, float64) {
	peak := sched.PeakOnly(g, order)
	r := sim.Run(g, order, sim.Config{Model: m})
	return peak, r.Latency
}

// PyTorch is the unoptimized reference: program order, tensors freed after
// their last use, no transformations.
type PyTorch struct{}

// Name implements Optimizer.
func (PyTorch) Name() string { return "PyTorch" }

// OptimizeMem implements Optimizer. PyTorch applies no optimization: the
// result is the baseline itself, failing if it exceeds the limit.
func (PyTorch) OptimizeMem(g *graph.Graph, m *cost.Model, memLimit int64) Result {
	peak, lat := measure(g, g.Topo(), m)
	return Result{peak, lat, peak <= memLimit}
}

// TVM models the Relay baseline: basic memory saving identical to PyTorch
// plus whole-graph kernel fusion reducing latency (§7.2.3 shows TVM below
// the PyTorch latency line).
type TVM struct{}

// Name implements Optimizer.
func (TVM) Name() string { return "TVM" }

// FusionFactor is the latency multiplier from operator fusion.
const tvmFusionFactor = 0.92

// OptimizeMem implements Optimizer.
func (TVM) OptimizeMem(g *graph.Graph, m *cost.Model, memLimit int64) Result {
	peak, lat := measure(g, g.Topo(), m)
	return Result{peak, lat * tvmFusionFactor, peak <= memLimit}
}

// TorchInductor models torch.compile: like TVM with stronger fusion.
type TorchInductor struct{}

// Name implements Optimizer.
func (TorchInductor) Name() string { return "TI" }

const tiFusionFactor = 0.88

// OptimizeMem implements Optimizer.
func (TorchInductor) OptimizeMem(g *graph.Graph, m *cost.Model, memLimit int64) Result {
	peak, lat := measure(g, g.Topo(), m)
	return Result{peak, lat * tiFusionFactor, peak <= memLimit}
}

// MinimizeMemUnderLatency adapts an Optimizer to the Fig. 9 direction:
// the smallest peak memory achievable while keeping latency within
// latLimit. Latency grows as the memory limit tightens for all these
// systems, so a binary search over the limit suffices.
func MinimizeMemUnderLatency(o Optimizer, g *graph.Graph, m *cost.Model, latLimit float64) Result {
	base := (PyTorch{}).OptimizeMem(g, m, math.MaxInt64)
	lo, hi := 0.05, 1.0
	best := Result{OK: false}
	// hi is feasible iff the system works at all under this latency bound.
	if r := o.OptimizeMem(g, m, int64(hi*float64(base.PeakMem))); r.OK && r.Latency <= latLimit {
		best = r
	} else {
		return Result{OK: false}
	}
	for iter := 0; iter < 7; iter++ {
		mid := (lo + hi) / 2
		r := o.OptimizeMem(g, m, int64(mid*float64(base.PeakMem)))
		if r.OK && r.Latency <= latLimit {
			hi = mid
			if r.PeakMem < best.PeakMem {
				best = r
			}
		} else {
			lo = mid
		}
	}
	return best
}
