package baselines

import (
	"math"
	"sort"

	"magis/internal/cost"
	"magis/internal/graph"
	"magis/internal/ops"
	"magis/internal/sched"
	"magis/internal/sim"
)

// POFO models Beaumont et al. (NeurIPS'21): optimal combination of
// re-materialization and offloading for training. The decision variables
// are the long-lived "stash" tensors — forward activations whose consumers
// include backward operators. For each stash tensor POFO chooses keep /
// offload (Store early, Load before the backward use) / recompute, via a
// dynamic program over memory quanta minimizing added latency subject to
// the peak-memory limit.
type POFO struct{}

// Name implements Optimizer.
func (POFO) Name() string { return "POFO" }

// stash is one candidate long-lived activation.
type stash struct {
	id        graph.NodeID
	bytes     int64
	swapCost  float64 // exposed transfer latency estimate
	rematCost float64 // recomputation latency
	canRemat  bool
}

// OptimizeMem implements Optimizer.
func (POFO) OptimizeMem(g *graph.Graph, m *cost.Model, memLimit int64) Result {
	order := sched.Schedule(g.Topo())
	prof := sched.Simulate(g, order)
	if prof.Peak <= memLimit {
		peak, lat := measure(g, order, m)
		return Result{peak, lat, true}
	}
	// The freed-bytes target is an estimate (a stashed tensor only lowers
	// the peak while its lifetime spans it), so refine upward, keep the
	// best attempt, and finish with a greedy per-tensor top-up.
	need := prof.Peak - memLimit
	best := Result{PeakMem: prof.Peak, Latency: math.Inf(1), OK: false}
	bestG, bestOrder := g, order
	for attempt := 0; attempt < 6; attempt++ {
		r, ng, no := pofoOnce(g, m, memLimit, need, order)
		if r.OK && (!best.OK || r.Latency < best.Latency) {
			best, bestG, bestOrder = r, ng, no
		} else if !best.OK && r.PeakMem < best.PeakMem {
			best, bestG, bestOrder = r, ng, no
		}
		need = need * 5 / 4
	}
	if best.OK {
		return best
	}
	return pofoTopUp(bestG, m, memLimit, bestOrder, best)
}

// pofoTopUp swaps additional hot tensors one at a time until the limit is
// met or no further progress is possible.
func pofoTopUp(g *graph.Graph, m *cost.Model, memLimit int64, order sched.Schedule, cur Result) Result {
	for iter := 0; iter < 16; iter++ {
		prof := sched.Simulate(g, order)
		if prof.Peak <= memLimit {
			peak, lat := measure(g, order, m)
			return Result{peak, lat, true}
		}
		cands := stashTensors(g, m, order)
		// Pick the largest unstashed hot candidate.
		var pick *stash
		for i := range cands {
			c := &cands[i]
			if !prof.Hotspots[c.id] || alreadySwapped(g, c.id) {
				continue
			}
			if pick == nil || c.bytes > pick.bytes {
				pick = c
			}
		}
		if pick == nil {
			break
		}
		actions := make([]int, len(cands))
		for i := range cands {
			if cands[i].id == pick.id {
				actions[i] = 1
			}
		}
		g, order = applyStash(g, cands, actions, order)
	}
	peak, lat := measure(g, order, m)
	return Result{peak, lat, peak <= memLimit}
}

func alreadySwapped(g *graph.Graph, v graph.NodeID) bool {
	for _, c := range g.Suc(v) {
		if ops.IsStore(g.Node(c).Op.Kind()) {
			return true
		}
	}
	return false
}

func pofoOnce(g *graph.Graph, m *cost.Model, memLimit, need int64, order sched.Schedule) (Result, *graph.Graph, sched.Schedule) {
	cands := stashTensors(g, m, order)
	if len(cands) == 0 {
		peak, lat := measure(g, order, m)
		return Result{peak, lat, false}, g, order
	}
	// Knapsack-style DP over quantized bytes: minimize added latency to
	// free at least `need` bytes. Quantum = need/256.
	quantum := need / 256
	if quantum < 1 {
		quantum = 1
	}
	target := int((need + quantum - 1) / quantum)
	const inf = 1e18
	dp := make([]float64, target+1)
	choice := make([][]int, target+1) // per state: chosen action per cand
	for i := 1; i <= target; i++ {
		dp[i] = inf
	}
	for ci, c := range cands {
		q := int(c.bytes / quantum)
		if q == 0 {
			q = 1
		}
		costs := []struct {
			action int
			lat    float64
		}{{1, c.swapCost}}
		if c.canRemat {
			costs = append(costs, struct {
				action int
				lat    float64
			}{2, c.rematCost})
		}
		// 0/1 knapsack, iterate states descending.
		for s := target; s >= 0; s-- {
			if dp[s] >= inf {
				continue
			}
			for _, ch := range costs {
				ns := s + q
				if ns > target {
					ns = target
				}
				if dp[s]+ch.lat < dp[ns] {
					dp[ns] = dp[s] + ch.lat
					sel := append([]int(nil), choice[s]...)
					for len(sel) < ci {
						sel = append(sel, 0)
					}
					sel = append(sel, ch.action)
					choice[ns] = sel
				}
			}
		}
	}
	if dp[target] >= inf {
		// Even stashing everything is not enough.
		peak, lat := measure(g, order, m)
		return Result{peak, lat, false}, g, order
	}
	// Apply the chosen actions as graph transformations and re-measure.
	ng, norder := applyStash(g, cands, choice[target], order)
	peak := sched.PeakOnly(ng, norder)
	r := sim.Run(ng, norder, sim.Config{Model: m})
	return Result{peak, r.Latency, peak <= memLimit}, ng, norder
}

// stashTensors finds forward activations consumed after the loss point,
// with their offload and recompute costs.
func stashTensors(g *graph.Graph, m *cost.Model, order sched.Schedule) []stash {
	pos := make(map[graph.NodeID]int, len(order))
	for i, v := range order {
		pos[v] = i
	}
	var out []stash
	for _, v := range order {
		node := g.Node(v)
		k := node.Op.Kind()
		if ops.IsTransfer(k) || node.OutBytes() == 0 {
			continue
		}
		cons := g.Suc(v)
		if len(cons) == 0 {
			continue
		}
		firstUse, lastUse := len(order), 0
		for _, c := range cons {
			if pos[c] < firstUse {
				firstUse = pos[c]
			}
			if pos[c] > lastUse {
				lastUse = pos[c]
			}
		}
		// Long-lived: the gap between production and last use spans at
		// least a quarter of the program.
		if lastUse-pos[v] < len(order)/4 {
			continue
		}
		tr := m.TransferLatency(node.OutBytes())
		// Offload overlaps compute; assume the paper's placement policy
		// hides most of it, leaving ~20% exposed plus sync overhead.
		sw := 0.2 * 2 * tr
		s := stash{id: v, bytes: sched.OutDeviceBytes(node), swapCost: sw}
		if !ops.IsLeaf(k) && len(node.Ins) > 0 {
			s.canRemat = true
			s.rematCost = m.NodeLatency(node)
		}
		out = append(out, s)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].id < out[j].id })
	return out
}

// applyStash rewrites g with the chosen swap/remat per stash tensor and
// splices the new operators into the program order.
func applyStash(g *graph.Graph, cands []stash, actions []int, order sched.Schedule) (*graph.Graph, sched.Schedule) {
	ng := g.Clone()
	pos := make(map[graph.NodeID]int, len(order))
	for i, v := range order {
		pos[v] = i
	}
	var after []insertion  // right after producer
	var before []insertion // right before consumer
	for i, c := range cands {
		if i >= len(actions) || actions[i] == 0 {
			continue
		}
		node := ng.Node(c.id)
		cons := ng.Suc(c.id)
		last := cons[0]
		for _, x := range cons {
			if pos[x] > pos[last] {
				last = x
			}
		}
		switch actions[i] {
		case 1: // swap
			sh, dt := node.Op.OutShape(), node.Op.DType()
			st := ng.Add(ops.NewStore(sh, dt), c.id)
			ld := ng.Add(ops.NewLoad(sh, dt), st)
			// Every consumer in the last half of the lifetime reads the
			// reloaded copy.
			mid := (pos[c.id] + pos[last]) / 2
			for _, x := range cons {
				if pos[x] > mid {
					ng.ReplaceInput(x, c.id, ld)
				}
			}
			after = append(after, insertion{c.id, st})
			before = append(before, insertion{earliestConsumer(ng, ld, pos), ld})
		case 2: // remat
			dup := ng.AddNamed(node.Name+"'", node.Op, node.Ins...)
			ng.ReplaceInput(last, c.id, dup)
			before = append(before, insertion{last, dup})
		}
	}
	var no sched.Schedule
	afterOf := groupBy(after)
	beforeOf := groupBy(before)
	for _, v := range order {
		no = append(no, beforeOf[v]...)
		no = append(no, v)
		no = append(no, afterOf[v]...)
	}
	if err := no.Validate(ng); err != nil {
		no = ng.Topo()
	}
	return ng, no
}

func earliestConsumer(g *graph.Graph, v graph.NodeID, pos map[graph.NodeID]int) graph.NodeID {
	cons := g.Suc(v)
	best := cons[0]
	for _, c := range cons {
		if pos[c] < pos[best] {
			best = c
		}
	}
	return best
}

// insertion pins a new operator's position relative to an existing one.
type insertion struct {
	anchor graph.NodeID
	node   graph.NodeID
}

func groupBy(ins []insertion) map[graph.NodeID][]graph.NodeID {
	out := make(map[graph.NodeID][]graph.NodeID)
	for _, i := range ins {
		out[i.anchor] = append(out[i.anchor], i.node)
	}
	return out
}
