package baselines

import (
	"magis/internal/cost"
	"magis/internal/graph"
	"magis/internal/ops"
	"magis/internal/sched"
)

// XLA models XLA's greedy re-materialization pass: while over the memory
// limit, pick the hot-spot tensor whose re-computation is cheapest per
// byte saved and recompute it for its farthest consumer. §7.2.3 notes its
// latency blows up under tight limits because re-computing one operator
// may force re-computing its (re-materialized) producers too — the greedy
// chain our loop reproduces naturally.
type XLA struct{}

// Name implements Optimizer.
func (XLA) Name() string { return "XLA" }

// OptimizeMem implements Optimizer.
func (XLA) OptimizeMem(g *graph.Graph, m *cost.Model, memLimit int64) Result {
	cur := g.Clone()
	order := sched.Schedule(cur.Topo())
	sc := &sched.Scheduler{}
	for iter := 0; iter < 400; iter++ {
		prof := sched.Simulate(cur, order)
		if prof.Peak <= memLimit {
			peak, lat := measure(cur, order, m)
			return Result{peak, lat, true}
		}
		v := pickGreedy(cur, m, prof, order)
		if v == graph.Invalid {
			break
		}
		// Recompute v for its last-scheduled consumer.
		pos := make(map[graph.NodeID]int, len(order))
		for i, x := range order {
			pos[x] = i
		}
		cons := cur.Suc(v)
		last := cons[0]
		for _, c := range cons {
			if pos[c] > pos[last] {
				last = c
			}
		}
		node := cur.Node(v)
		dup := cur.AddNamed(node.Name+"'", node.Op, node.Ins...)
		cur.ReplaceInput(last, v, dup)
		// Keep the program order, inserting the recompute right before its
		// consumer.
		newOrder := make(sched.Schedule, 0, len(order)+1)
		for _, x := range order {
			if x == last {
				newOrder = append(newOrder, dup)
			}
			newOrder = append(newOrder, x)
		}
		order = newOrder
		if err := order.Validate(cur); err != nil {
			order = sc.ScheduleGraph(cur)
		}
	}
	peak, lat := measure(cur, order, m)
	return Result{peak, lat, peak <= memLimit}
}

// pickGreedy chooses the hot tensor with the best bytes-saved per
// recompute-second ratio that has at least two distinct consumers.
func pickGreedy(g *graph.Graph, m *cost.Model, prof *sched.MemProfile, order sched.Schedule) graph.NodeID {
	best := graph.Invalid
	bestScore := 0.0
	for v := range prof.Hotspots {
		node := g.Node(v)
		k := node.Op.Kind()
		if ops.IsLeaf(k) || ops.IsTransfer(k) || len(node.Ins) == 0 {
			continue
		}
		if len(g.Suc(v)) < 2 {
			continue
		}
		c := m.NodeLatency(node)
		if c <= 0 {
			continue
		}
		score := float64(sched.OutDeviceBytes(node)) / c
		if score > bestScore {
			bestScore = score
			best = v
		}
	}
	return best
}
