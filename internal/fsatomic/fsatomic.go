// Package fsatomic provides crash-consistent file replacement: readers of
// a path observe either the previous complete content or the new complete
// content, never a torn write. Checkpoints, manifests, and cached plans
// are written through it so a SIGKILL mid-write cannot corrupt the last
// good snapshot.
//
// Beyond plain atomic replacement, the package offers a sealed envelope
// format (WriteSealed/ReadSealed): payloads framed with a magic string, a
// format version, and a SHA-256 digest, so a reader can tell a truncated
// or bit-flipped file from a healthy one before trusting a single payload
// byte. Failures are classified with sentinel errors (ErrChecksum,
// ErrVersion, ErrShortWrite, ErrDiskFull) so callers can route corrupt
// files to quarantine and full disks to graceful degradation instead of
// treating every failure alike.
package fsatomic

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"syscall"
)

// Sentinel errors classifying why a write or sealed read failed. Match
// with errors.Is.
var (
	// ErrShortWrite: the OS accepted fewer bytes than requested without
	// reporting an error — the temp file was discarded.
	ErrShortWrite = errors.New("fsatomic: short write")
	// ErrChecksum: a sealed file's payload digest does not match its
	// header — the file is truncated or corrupted.
	ErrChecksum = errors.New("fsatomic: checksum mismatch")
	// ErrVersion: a sealed file carries a format version this build does
	// not read.
	ErrVersion = errors.New("fsatomic: format version mismatch")
	// ErrDiskFull: the filesystem is out of space (ENOSPC/EDQUOT). The
	// target path is untouched; callers can degrade (skip the write, evict,
	// alert) instead of crashing.
	ErrDiskFull = errors.New("fsatomic: disk full")
)

// TestHookWriteErr, when non-nil, is invoked after the temp file's bytes
// are written but before the rename publishes them; returning an error
// aborts the write as if the OS had failed at that point. It exists so
// tests can prove that a failed atomic write never leaves a partial file
// visible. Set it only from tests, and never while writes are in flight.
var TestHookWriteErr func(path string) error

// classify wraps err with the matching sentinel when the underlying
// errno says the filesystem is out of space/quota (persistent) or out of
// file descriptors (transient).
func classify(err error) error {
	if errors.Is(err, syscall.ENOSPC) || errors.Is(err, syscall.EDQUOT) {
		return fmt.Errorf("%w: %w", ErrDiskFull, err)
	}
	if errors.Is(err, syscall.EMFILE) || errors.Is(err, syscall.ENFILE) {
		return fmt.Errorf("%w: %w", ErrFDExhausted, err)
	}
	return err
}

// WriteFile atomically replaces path with data: the bytes are written to a
// temporary file in the same directory, fsynced, and renamed over path.
// On any error the temporary file is removed and path is left untouched.
func WriteFile(path string, data []byte, perm os.FileMode) error {
	return WriteFileFS(OS, path, data, perm)
}

// sealedEnvelope is the on-disk framing of WriteSealed: the payload bytes
// plus everything needed to reject the file before trusting them.
type sealedEnvelope struct {
	Magic   string          `json:"magic"`
	Version int             `json:"version"`
	SHA256  string          `json:"sha256"`
	Payload json.RawMessage `json:"payload"`
}

// seal frames payload in a checksummed envelope; unseal validates and
// unwraps one. WriteSealed/ReadSealed and their FS variants share them.
func seal(magic string, version int, payload []byte) ([]byte, error) {
	sum := sha256.Sum256(payload)
	env, err := json.Marshal(sealedEnvelope{
		Magic:   magic,
		Version: version,
		SHA256:  hex.EncodeToString(sum[:]),
		Payload: payload,
	})
	if err != nil {
		return nil, fmt.Errorf("fsatomic: seal: %w", err)
	}
	return env, nil
}

func unseal(path, magic string, version int, data []byte) ([]byte, error) {
	var env sealedEnvelope
	if err := json.Unmarshal(data, &env); err != nil {
		return nil, fmt.Errorf("fsatomic: %s: not a sealed file: %w", filepath.Base(path), err)
	}
	if env.Magic != magic {
		return nil, fmt.Errorf("fsatomic: %s: magic %q (want %q)", filepath.Base(path), env.Magic, magic)
	}
	if env.Version != version {
		return nil, fmt.Errorf("%w: %s: version %d (this build reads %d)", ErrVersion, filepath.Base(path), env.Version, version)
	}
	sum := sha256.Sum256(env.Payload)
	if got := hex.EncodeToString(sum[:]); got != env.SHA256 {
		return nil, fmt.Errorf("%w: %s: header %s, payload %s", ErrChecksum, filepath.Base(path), env.SHA256, got)
	}
	return env.Payload, nil
}

// WriteSealed atomically writes payload to path inside a checksummed
// envelope carrying magic and version. The payload must be valid JSON
// (it is embedded verbatim).
func WriteSealed(path, magic string, version int, payload []byte, perm os.FileMode) error {
	return WriteSealedFS(OS, path, magic, version, payload, perm)
}

// ReadSealed reads a file written by WriteSealed and returns its payload
// after validating the magic, version, and digest. Mismatches return
// errors matching ErrVersion or ErrChecksum; anything unparsable is a
// plain error. Callers treat any failure as "this file cannot be
// trusted" — typically by quarantining it.
func ReadSealed(path, magic string, version int) ([]byte, error) {
	return ReadSealedFS(OS, path, magic, version)
}
