// Package fsatomic provides crash-consistent file replacement: readers of
// a path observe either the previous complete content or the new complete
// content, never a torn write. Checkpoints and manifests are written
// through it so a SIGKILL mid-write cannot corrupt the last good snapshot.
package fsatomic

import (
	"fmt"
	"os"
	"path/filepath"
)

// WriteFile atomically replaces path with data: the bytes are written to a
// temporary file in the same directory, fsynced, and renamed over path.
// On any error the temporary file is removed and path is left untouched.
func WriteFile(path string, data []byte, perm os.FileMode) error {
	dir, base := filepath.Split(path)
	if dir == "" {
		dir = "."
	}
	f, err := os.CreateTemp(dir, base+".tmp-*")
	if err != nil {
		return fmt.Errorf("fsatomic: %w", err)
	}
	tmp := f.Name()
	cleanup := func(err error) error {
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("fsatomic: %w", err)
	}
	if _, err := f.Write(data); err != nil {
		return cleanup(err)
	}
	// Flush to stable storage before the rename publishes the file, so a
	// power loss cannot leave a renamed-but-empty checkpoint behind.
	if err := f.Sync(); err != nil {
		return cleanup(err)
	}
	if err := f.Chmod(perm); err != nil {
		return cleanup(err)
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("fsatomic: %w", err)
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("fsatomic: %w", err)
	}
	return nil
}
