package fsatomic

// The FS seam: every persistence path in the repo (plan cache entries,
// search checkpoints, ladder manifests) funnels its filesystem calls
// through this small interface instead of the os package directly. The
// default implementation is the real OS; internal/errfs wraps any FS and
// injects deterministic storage faults (ENOSPC, short writes, sync
// failures, fd exhaustion, rename failures), which is how the chaos
// suites prove that storage failure degrades service instead of
// corrupting state.

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"syscall"
)

// File is the subset of *os.File the atomic-write protocol needs.
type File interface {
	Write(p []byte) (int, error)
	Sync() error
	Chmod(mode os.FileMode) error
	Close() error
	Name() string
}

// FS is the filesystem surface persistence goes through. Implementations
// must keep CreateTemp+Rename atomic-replacement semantics: a file
// renamed over a path is observed either wholly old or wholly new.
type FS interface {
	CreateTemp(dir, pattern string) (File, error)
	Rename(oldpath, newpath string) error
	Remove(name string) error
	ReadFile(name string) ([]byte, error)
	ReadDir(name string) ([]os.DirEntry, error)
	MkdirAll(path string, perm os.FileMode) error
	Stat(name string) (os.FileInfo, error)
}

// OS is the real filesystem, the default everywhere a Config.FS or
// function parameter is left nil.
var OS FS = osFS{}

type osFS struct{}

func (osFS) CreateTemp(dir, pattern string) (File, error) { return os.CreateTemp(dir, pattern) }
func (osFS) Rename(oldpath, newpath string) error         { return os.Rename(oldpath, newpath) }
func (osFS) Remove(name string) error                     { return os.Remove(name) }
func (osFS) ReadFile(name string) ([]byte, error)         { return os.ReadFile(name) }
func (osFS) ReadDir(name string) ([]os.DirEntry, error)   { return os.ReadDir(name) }
func (osFS) MkdirAll(path string, perm os.FileMode) error { return os.MkdirAll(path, perm) }
func (osFS) Stat(name string) (os.FileInfo, error)        { return os.Stat(name) }

// ErrFDExhausted: the process or system is out of file descriptors
// (EMFILE/ENFILE). Unlike a full disk this clears on its own as other
// descriptors close, so it is classified transient.
var ErrFDExhausted = errors.New("fsatomic: file descriptors exhausted")

// Transient reports whether a storage failure is worth retrying shortly:
// fd exhaustion and short writes clear on their own, while disk-full,
// quota, and corruption persist until an operator intervenes. Serving
// layers use this to pick between retry and degrade.
func Transient(err error) bool {
	return errors.Is(err, ErrFDExhausted) ||
		errors.Is(err, ErrShortWrite) ||
		errors.Is(err, syscall.EINTR) ||
		errors.Is(err, syscall.EAGAIN)
}

// Or returns fsys, defaulting to the real filesystem when nil. Callers
// thread optional FS config fields through this so "zero value" means
// "the real OS".
func Or(fsys FS) FS {
	if fsys == nil {
		return OS
	}
	return fsys
}

// WriteFileFS is WriteFile against an arbitrary FS.
func WriteFileFS(fsys FS, path string, data []byte, perm os.FileMode) error {
	fsys = Or(fsys)
	dir, base := filepath.Split(path)
	if dir == "" {
		dir = "."
	}
	f, err := fsys.CreateTemp(dir, base+".tmp-*")
	if err != nil {
		return fmt.Errorf("fsatomic: %w", classify(err))
	}
	tmp := f.Name()
	cleanup := func(err error) error {
		f.Close()
		fsys.Remove(tmp)
		return fmt.Errorf("fsatomic: %w", classify(err))
	}
	n, err := f.Write(data)
	if err != nil {
		return cleanup(err)
	}
	if n != len(data) {
		return cleanup(fmt.Errorf("%w: wrote %d of %d bytes", ErrShortWrite, n, len(data)))
	}
	if TestHookWriteErr != nil {
		if err := TestHookWriteErr(path); err != nil {
			return cleanup(err)
		}
	}
	// Flush to stable storage before the rename publishes the file, so a
	// power loss cannot leave a renamed-but-empty checkpoint behind.
	if err := f.Sync(); err != nil {
		return cleanup(err)
	}
	if err := f.Chmod(perm); err != nil {
		return cleanup(err)
	}
	if err := f.Close(); err != nil {
		fsys.Remove(tmp)
		return fmt.Errorf("fsatomic: %w", classify(err))
	}
	if err := fsys.Rename(tmp, path); err != nil {
		fsys.Remove(tmp)
		return fmt.Errorf("fsatomic: %w", classify(err))
	}
	return nil
}

// WriteSealedFS is WriteSealed against an arbitrary FS.
func WriteSealedFS(fsys FS, path, magic string, version int, payload []byte, perm os.FileMode) error {
	env, err := seal(magic, version, payload)
	if err != nil {
		return err
	}
	return WriteFileFS(fsys, path, env, perm)
}

// ReadSealedFS is ReadSealed against an arbitrary FS.
func ReadSealedFS(fsys FS, path, magic string, version int) ([]byte, error) {
	data, err := Or(fsys).ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("fsatomic: %w", classify(err))
	}
	return unseal(path, magic, version, data)
}

// IsTemp reports whether a directory entry name is an atomic-write
// temporary (the CreateTemp pattern used by WriteFileFS).
func IsTemp(name string) bool {
	return strings.Contains(name, ".tmp-")
}

// SweepTemps removes orphaned atomic-write temporaries from dir. A
// crashed or fault-interrupted writer can leave its temp file behind
// when even the removal fails (full disk, SIGKILL between write and
// cleanup); persistence directories sweep on open so the debris is
// bounded by one crash, not accumulated forever. Returns how many
// temporaries were removed; sweep errors are best-effort and ignored —
// the next open tries again.
func SweepTemps(fsys FS, dir string) int {
	fsys = Or(fsys)
	ents, err := fsys.ReadDir(dir)
	if err != nil {
		return 0
	}
	n := 0
	for _, e := range ents {
		if e.IsDir() || !IsTemp(e.Name()) {
			continue
		}
		if fsys.Remove(filepath.Join(dir, e.Name())) == nil {
			n++
		}
	}
	return n
}
