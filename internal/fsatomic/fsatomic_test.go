package fsatomic

import (
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestWriteFileAtomicOnFailure pins the package's core promise: a write
// that fails at any injectable point leaves (a) no partial target file
// and (b) the previous content intact, with no temp debris behind.
func TestWriteFileAtomicOnFailure(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "data.json")
	if err := WriteFile(path, []byte(`{"gen":1}`), 0o644); err != nil {
		t.Fatal(err)
	}

	boom := errors.New("injected device error")
	TestHookWriteErr = func(string) error { return boom }
	defer func() { TestHookWriteErr = nil }()

	err := WriteFile(path, []byte(`{"gen":2,"junk":"partial"}`), 0o644)
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want injected failure", err)
	}
	got, rerr := os.ReadFile(path)
	if rerr != nil || string(got) != `{"gen":1}` {
		t.Fatalf("target after failed write: %q, %v — want previous content intact", got, rerr)
	}
	ents, _ := os.ReadDir(dir)
	for _, e := range ents {
		if strings.Contains(e.Name(), ".tmp-") {
			t.Errorf("temp debris left behind: %s", e.Name())
		}
	}
}

// TestWriteFileFreshTargetFailure: when the target did not exist yet, a
// failed write must not create it at all.
func TestWriteFileFreshTargetFailure(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "fresh.json")
	TestHookWriteErr = func(string) error { return errors.New("injected") }
	defer func() { TestHookWriteErr = nil }()
	if err := WriteFile(path, []byte("x"), 0o644); err == nil {
		t.Fatal("write unexpectedly succeeded")
	}
	if _, err := os.Stat(path); !os.IsNotExist(err) {
		t.Fatalf("failed write created the target (stat err=%v)", err)
	}
}

func TestSealedRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "entry.plan")
	payload := []byte(`{"hello":"world","n":42}`)
	if err := WriteSealed(path, "magis-test", 3, payload, 0o644); err != nil {
		t.Fatal(err)
	}
	got, err := ReadSealed(path, "magis-test", 3)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != string(payload) {
		t.Fatalf("payload = %s, want %s", got, payload)
	}
}

// TestSealedRejections: every way a sealed file can be untrustworthy is
// classified — wrong magic, wrong version (ErrVersion), flipped payload
// byte or truncation (ErrChecksum), and non-JSON garbage.
func TestSealedRejections(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "entry.plan")
	if err := WriteSealed(path, "magis-test", 1, []byte(`{"v":1}`), 0o644); err != nil {
		t.Fatal(err)
	}

	if _, err := ReadSealed(path, "other-magic", 1); err == nil || errors.Is(err, ErrChecksum) {
		t.Errorf("wrong magic: err = %v, want plain rejection", err)
	}
	if _, err := ReadSealed(path, "magis-test", 2); !errors.Is(err, ErrVersion) {
		t.Errorf("wrong version: err = %v, want ErrVersion", err)
	}

	// Flip one payload byte inside the envelope.
	raw, _ := os.ReadFile(path)
	flipped := append([]byte(nil), raw...)
	i := strings.LastIndexByte(string(flipped), '1') // the payload's "1"
	flipped[i] ^= 0x02                               // '1' -> '3': still JSON, wrong digest
	bad := filepath.Join(dir, "flipped.plan")
	if err := os.WriteFile(bad, flipped, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadSealed(bad, "magis-test", 1); !errors.Is(err, ErrChecksum) {
		t.Errorf("flipped payload byte: err = %v, want ErrChecksum", err)
	}

	// Truncation (a torn write that bypassed the atomic path).
	trunc := filepath.Join(dir, "trunc.plan")
	if err := os.WriteFile(trunc, raw[:len(raw)/2], 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadSealed(trunc, "magis-test", 1); err == nil {
		t.Error("truncated file not rejected")
	}

	// Garbage.
	junk := filepath.Join(dir, "junk.plan")
	if err := os.WriteFile(junk, []byte("\x00\xff not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadSealed(junk, "magis-test", 1); err == nil {
		t.Error("garbage file not rejected")
	}
}

func TestShortWriteSentinel(t *testing.T) {
	// The sentinel must survive the wrapping applied on the failure path.
	err := error(nil)
	func() {
		defer func() { TestHookWriteErr = nil }()
		TestHookWriteErr = func(string) error { return ErrShortWrite }
		err = WriteFile(filepath.Join(t.TempDir(), "f"), []byte("abc"), 0o644)
	}()
	if !errors.Is(err, ErrShortWrite) {
		t.Fatalf("err = %v, want ErrShortWrite to be matchable", err)
	}
}
