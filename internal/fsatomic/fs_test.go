package fsatomic_test

// errfs-driven tests for the FS seam: these live in an external test
// package because errfs itself imports fsatomic.

import (
	"fmt"
	"os"
	"path/filepath"
	"syscall"
	"testing"

	"magis/internal/errfs"
	"magis/internal/fsatomic"
)

func countTemps(t *testing.T, dir string) int {
	t.Helper()
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	n := 0
	for _, e := range ents {
		if !e.IsDir() && fsatomic.IsTemp(e.Name()) {
			n++
		}
	}
	return n
}

// TestNoTempDebrisAfterFailedWrites hammers WriteFileFS with every
// write-path fault class and asserts no orphaned *.tmp-* files
// accumulate: the failed write's own cleanup removes them.
func TestNoTempDebrisAfterFailedWrites(t *testing.T) {
	dir := t.TempDir()
	fsys := errfs.New(nil, 0,
		errfs.Rule{Class: errfs.ENOSPC, After: 1, Every: 4},
		errfs.Rule{Class: errfs.ShortWrite, After: 2, Every: 4},
		errfs.Rule{Class: errfs.SyncFail, After: 1, Every: 3},
		errfs.Rule{Class: errfs.RenameFail, After: 1, Every: 2},
	)
	fails := 0
	for i := 0; i < 40; i++ {
		p := filepath.Join(dir, fmt.Sprintf("f%02d.dat", i%5))
		if err := fsatomic.WriteFileFS(fsys, p, []byte("payload-payload"), 0o644); err != nil {
			fails++
		}
	}
	if fails == 0 {
		t.Fatal("no writes failed; fault rules did not engage")
	}
	if n := countTemps(t, dir); n != 0 {
		t.Fatalf("%d orphaned temp files after %d failed writes", n, fails)
	}
	// Surviving *.dat files must hold complete payloads (atomicity).
	ents, _ := os.ReadDir(dir)
	for _, e := range ents {
		data, err := os.ReadFile(filepath.Join(dir, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		if string(data) != "payload-payload" {
			t.Fatalf("%s holds torn content %q", e.Name(), data)
		}
	}
}

// TestSweepTemps: when even the temp removal fails (RemoveFail after a
// rename failure), debris is left behind — and SweepTemps clears it on
// the next startup.
func TestSweepTemps(t *testing.T) {
	dir := t.TempDir()
	fsys := errfs.New(nil, 0,
		errfs.Rule{Class: errfs.RenameFail, After: 1, Every: 1},
		errfs.Rule{Class: errfs.RemoveFail, After: 1, Every: 1},
	)
	for i := 0; i < 3; i++ {
		p := filepath.Join(dir, "x.dat")
		if err := fsatomic.WriteFileFS(fsys, p, []byte("d"), 0o644); err == nil {
			t.Fatal("write succeeded despite rename fault")
		}
	}
	if n := countTemps(t, dir); n != 3 {
		t.Fatalf("expected 3 orphaned temps (cleanup faulted), got %d", n)
	}
	// Subdirectories and regular files survive the sweep.
	if err := os.Mkdir(filepath.Join(dir, "sub.tmp-dir"), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "keep.dat"), []byte("k"), 0o644); err != nil {
		t.Fatal(err)
	}
	if n := fsatomic.SweepTemps(nil, dir); n != 3 {
		t.Fatalf("SweepTemps removed %d, want 3", n)
	}
	if n := countTemps(t, dir); n != 0 {
		t.Fatalf("%d temps remain after sweep", n)
	}
	if _, err := os.Stat(filepath.Join(dir, "keep.dat")); err != nil {
		t.Fatalf("sweep removed a regular file: %v", err)
	}
	if _, err := os.Stat(filepath.Join(dir, "sub.tmp-dir")); err != nil {
		t.Fatalf("sweep removed a directory: %v", err)
	}
}

// TestTransientClassification: fd exhaustion and short writes are
// transient; disk-full is not.
func TestTransientClassification(t *testing.T) {
	dir := t.TempDir()
	p := filepath.Join(dir, "t.dat")

	fdfs := errfs.New(nil, 0, errfs.Rule{Class: errfs.FDExhaust, After: 1})
	err := fsatomic.WriteFileFS(fdfs, p, []byte("d"), 0o644)
	if err == nil || !fsatomic.Transient(err) {
		t.Fatalf("fd exhaustion should be transient, got %v", err)
	}

	swfs := errfs.New(nil, 0, errfs.Rule{Class: errfs.ShortWrite, After: 1})
	err = fsatomic.WriteFileFS(swfs, p, []byte("dd"), 0o644)
	if err == nil || !fsatomic.Transient(err) {
		t.Fatalf("short write should be transient, got %v", err)
	}

	nospc := errfs.New(nil, 0, errfs.Rule{Class: errfs.ENOSPC, After: 1})
	err = fsatomic.WriteFileFS(nospc, p, []byte("d"), 0o644)
	if err == nil || fsatomic.Transient(err) {
		t.Fatalf("disk-full should be persistent, got %v", err)
	}
	if !fsatomic.Transient(fmt.Errorf("wrap: %w", syscall.EINTR)) {
		t.Fatal("EINTR should be transient")
	}
}

// TestSealedRoundTripThroughFaultyFS: a sealed write that survives
// faults round-trips; reads through an fd-exhausted FS surface the
// transient sentinel.
func TestSealedRoundTripThroughFaultyFS(t *testing.T) {
	dir := t.TempDir()
	p := filepath.Join(dir, "s.plan")
	fsys := errfs.New(nil, 0, errfs.Rule{Class: errfs.FDExhaust, After: 2})
	if err := fsatomic.WriteSealedFS(fsys, p, "magic", 1, []byte(`{"a":1}`), 0o644); err != nil {
		t.Fatal(err)
	}
	// Op 2 on the FDExhaust counter is this ReadFile.
	if _, err := fsatomic.ReadSealedFS(fsys, p, "magic", 1); err == nil || !fsatomic.Transient(err) {
		t.Fatalf("read under fd exhaustion: %v", err)
	}
	got, err := fsatomic.ReadSealedFS(fsys, p, "magic", 1)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != `{"a":1}` {
		t.Fatalf("payload %q", got)
	}
}
