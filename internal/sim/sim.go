// Package sim is the discrete-event execution simulator standing in for
// the paper's GPU measurement backend (§7.1). It models a compute stream
// and an asynchronous copy stream (PyTorch CUDA-Stream style): Store/Load
// transfers overlap with computation, a Load placed a few operators before
// its consumer hides its PCIe latency, and memory is accounted
// continuously — tensors are allocated when their producer starts and
// freed when their last consumer finishes.
package sim

import (
	"sort"

	"magis/internal/cost"
	"magis/internal/graph"
	"magis/internal/ops"
	"magis/internal/sched"
)

// Config controls a simulation run.
type Config struct {
	// Model prices operator latencies.
	Model *cost.Model
	// NodeCost overrides the latency of specific nodes (used by the
	// optimizer to price collapsed fission regions). Return ok=false to
	// fall back to Model.
	NodeCost func(n *graph.Node) (lat float64, ok bool)
	// Timeline requests a memory-over-time trace (Fig. 16).
	Timeline bool
	// Faults perturbs the execution (fault-injection replay); nil runs the
	// pristine simulation with zero overhead.
	Faults *FaultHooks
}

// FaultHooks lets a fault injector perturb a simulated execution. All hooks
// must be deterministic functions of the node for a replay to be
// reproducible; internal/faults derives them from a seeded scenario.
type FaultHooks struct {
	// LatencyScale returns a multiplicative factor on the node's modeled
	// latency (1 = unperturbed). It models cost-model error on compute
	// operators and degraded host-link bandwidth on transfers.
	LatencyScale func(n *graph.Node) float64
	// TransferFailures returns how many transient failures a Store/Load
	// suffers before succeeding. Failures are absorbed by a bounded
	// retry-with-backoff model: each failed attempt costs the transfer's
	// latency plus an exponentially growing backoff delay. A transfer still
	// failing after MaxRetries aborts (counted in Result.TransferAborts).
	TransferFailures func(n *graph.Node) int
	// MaxRetries bounds absorbed failures per transfer (default 3).
	MaxRetries int
	// RetryBackoff is the base backoff delay in seconds, doubling per
	// attempt (default 50µs).
	RetryBackoff float64
	// RetryJitter spreads each backoff delay by a multiplicative factor
	// drawn deterministically from [1-RetryJitter, 1+RetryJitter]. Pure
	// exponential doubling synchronizes retries across transfers that
	// failed together — the classic thundering-herd shape — so real retry
	// stacks always jitter; 0 keeps the legacy synchronized model.
	// Values are clamped to [0, 0.9].
	RetryJitter float64
	// JitterSeed seeds the jitter stream. The factor for a given
	// (seed, node, attempt) is a pure hash, never a function of execution
	// order, so a seeded replay reproduces bit-identical timelines.
	JitterSeed int64
}

func (h *FaultHooks) maxRetries() int {
	if h.MaxRetries <= 0 {
		return 3
	}
	return h.MaxRetries
}

func (h *FaultHooks) backoff() float64 {
	if h.RetryBackoff <= 0 {
		return 50e-6
	}
	return h.RetryBackoff
}

// jitterFactor returns the deterministic backoff spread for one retry
// attempt of one node: a factor in [1-RetryJitter, 1+RetryJitter] that is
// a pure splitmix64-style hash of (JitterSeed, node, attempt).
func (h *FaultHooks) jitterFactor(node graph.NodeID, attempt int) float64 {
	j := h.RetryJitter
	if j <= 0 {
		return 1
	}
	if j > 0.9 {
		j = 0.9
	}
	x := uint64(h.JitterSeed) ^ 0x6A09E667F3BCC909
	x += uint64(int64(node)+1) * 0x9E3779B97F4A7C15
	x += uint64(attempt+1) * 0xBF58476D1CE4E5B9
	z := x
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	z ^= z >> 31
	u := float64(z>>11) / float64(1<<53) // uniform [0,1)
	return 1 + j*(2*u-1)
}

// FaultPoint records one absorbed (or aborted) transfer fault on the
// simulated timeline.
type FaultPoint struct {
	// Time is when the faulty transfer was issued.
	Time float64
	// Node is the transfer operator that faulted.
	Node graph.NodeID
	// Retries is the number of extra attempts the copy stream absorbed.
	Retries int
	// Aborted reports that the transfer still failed after MaxRetries.
	Aborted bool
}

// SelfCosted marks node payloads that price their own execution (e.g.
// collapsed fission regions); the simulator uses their latency directly.
type SelfCosted interface {
	Latency() float64
}

// Point is one sample of the memory timeline.
type Point struct {
	Time float64 // seconds since start
	Mem  int64   // device bytes in use
}

// Result summarizes one simulated execution.
type Result struct {
	// Latency is the makespan in seconds.
	Latency float64
	// Peak is the peak device memory in bytes.
	Peak int64
	// ComputeBusy and CopyBusy are per-stream busy times.
	ComputeBusy float64
	CopyBusy    float64
	// Timeline is the memory trace (only when Config.Timeline).
	Timeline []Point
	// Retries counts transfer attempts repeated after transient faults
	// (only with Config.Faults).
	Retries int
	// RetryTime is the extra copy-stream time spent re-running failed
	// transfers, backoff included.
	RetryTime float64
	// TransferAborts counts transfers that still failed after MaxRetries —
	// a nonzero value means the plan did not complete under the scenario.
	TransferAborts int
	// Faults lists the absorbed transfer faults in schedule order.
	Faults []FaultPoint
}

// Run simulates executing g in the given order under cfg.
func Run(g *graph.Graph, order sched.Schedule, cfg Config) *Result {
	n := len(order)
	res := &Result{}
	// Dense ID-indexed timing tables: a valid schedule covers every node,
	// so every producer/consumer looked up below appears in order.
	bound := graph.NodeID(0)
	for _, v := range order {
		if v >= bound {
			bound = v + 1
		}
	}
	start := make([]float64, bound)
	finish := make([]float64, bound)

	latency := func(node *graph.Node) float64 {
		if cfg.NodeCost != nil {
			if l, ok := cfg.NodeCost(node); ok {
				return l
			}
		}
		// Payloads may carry their own latency (collapsed fission regions).
		if sc, ok := node.Op.(SelfCosted); ok {
			return sc.Latency()
		}
		return cfg.Model.NodeLatency(node)
	}

	var computeFree, copyFree float64
	var prevComputeStart float64
	for _, v := range order {
		node := g.Node(v)
		lat := latency(node)
		if cfg.Faults != nil && cfg.Faults.LatencyScale != nil {
			if f := cfg.Faults.LatencyScale(node); f > 0 {
				lat *= f
			}
		}
		ready := 0.0
		for _, p := range node.Ins {
			if p < bound {
				if f := finish[p]; f > ready {
					ready = f
				}
			}
		}
		if ops.IsTransfer(node.Op.Kind()) {
			// Transfers are issued when the preceding compute operator in
			// the schedule is dispatched, then run as the copy stream and
			// their producers allow.
			s := ready
			if copyFree > s {
				s = copyFree
			}
			if prevComputeStart > s {
				s = prevComputeStart
			}
			// Transient faults: each failed attempt re-pays the transfer
			// latency plus an exponential backoff before the retry.
			dur := lat
			if h := cfg.Faults; h != nil && h.TransferFailures != nil {
				if k := h.TransferFailures(node); k > 0 {
					maxR := h.maxRetries()
					absorbed := k
					if absorbed > maxR {
						absorbed = maxR
					}
					var extra float64
					for i := 0; i < absorbed; i++ {
						extra += lat + h.backoff()*float64(int64(1)<<i)*h.jitterFactor(v, i)
					}
					dur += extra
					res.Retries += absorbed
					res.RetryTime += extra
					aborted := k > maxR
					if aborted {
						res.TransferAborts++
					}
					res.Faults = append(res.Faults, FaultPoint{
						Time: s, Node: v, Retries: absorbed, Aborted: aborted,
					})
				}
			}
			start[v] = s
			finish[v] = s + dur
			copyFree = finish[v]
			res.CopyBusy += dur
		} else {
			s := ready
			if computeFree > s {
				s = computeFree
			}
			start[v] = s
			finish[v] = s + lat
			computeFree = finish[v]
			prevComputeStart = s
			res.ComputeBusy += lat
		}
	}
	for _, v := range order {
		if finish[v] > res.Latency {
			res.Latency = finish[v]
		}
	}

	// Continuous-time memory accounting.
	type event struct {
		t     float64
		delta int64
	}
	events := make([]event, 0, 2*n)
	for _, v := range order {
		node := g.Node(v)
		bytes := sched.OutDeviceBytes(node)
		trans := sched.ExecTransientBytes(node)
		if trans > 0 {
			events = append(events, event{start[v], trans}, event{finish[v], -trans})
		}
		if bytes == 0 {
			continue
		}
		freeAt := res.Latency
		if g.SucEdges(v) > 0 {
			freeAt = 0
			g.EachSucEdge(v, func(c graph.NodeID) {
				if c < bound {
					if f := finish[c]; f > freeAt {
						freeAt = f
					}
				}
			})
		}
		events = append(events, event{start[v], bytes}, event{freeAt, -bytes})
	}
	sort.Slice(events, func(i, j int) bool {
		if events[i].t != events[j].t {
			return events[i].t < events[j].t
		}
		return events[i].delta < events[j].delta // frees before allocs at ties
	})
	var cur int64
	for _, e := range events {
		cur += e.delta
		if cur > res.Peak {
			res.Peak = cur
		}
		if cfg.Timeline {
			res.Timeline = append(res.Timeline, Point{e.t, cur})
		}
	}
	return res
}
