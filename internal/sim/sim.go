// Package sim is the discrete-event execution simulator standing in for
// the paper's GPU measurement backend (§7.1). It models a compute stream
// and an asynchronous copy stream (PyTorch CUDA-Stream style): Store/Load
// transfers overlap with computation, a Load placed a few operators before
// its consumer hides its PCIe latency, and memory is accounted
// continuously — tensors are allocated when their producer starts and
// freed when their last consumer finishes.
package sim

import (
	"sort"

	"magis/internal/cost"
	"magis/internal/graph"
	"magis/internal/ops"
	"magis/internal/sched"
)

// Config controls a simulation run.
type Config struct {
	// Model prices operator latencies.
	Model *cost.Model
	// NodeCost overrides the latency of specific nodes (used by the
	// optimizer to price collapsed fission regions). Return ok=false to
	// fall back to Model.
	NodeCost func(n *graph.Node) (lat float64, ok bool)
	// Timeline requests a memory-over-time trace (Fig. 16).
	Timeline bool
}

// SelfCosted marks node payloads that price their own execution (e.g.
// collapsed fission regions); the simulator uses their latency directly.
type SelfCosted interface {
	Latency() float64
}

// Point is one sample of the memory timeline.
type Point struct {
	Time float64 // seconds since start
	Mem  int64   // device bytes in use
}

// Result summarizes one simulated execution.
type Result struct {
	// Latency is the makespan in seconds.
	Latency float64
	// Peak is the peak device memory in bytes.
	Peak int64
	// ComputeBusy and CopyBusy are per-stream busy times.
	ComputeBusy float64
	CopyBusy    float64
	// Timeline is the memory trace (only when Config.Timeline).
	Timeline []Point
}

// Run simulates executing g in the given order under cfg.
func Run(g *graph.Graph, order sched.Schedule, cfg Config) *Result {
	n := len(order)
	res := &Result{}
	start := make(map[graph.NodeID]float64, n)
	finish := make(map[graph.NodeID]float64, n)

	latency := func(node *graph.Node) float64 {
		if cfg.NodeCost != nil {
			if l, ok := cfg.NodeCost(node); ok {
				return l
			}
		}
		// Payloads may carry their own latency (collapsed fission regions).
		if sc, ok := node.Op.(SelfCosted); ok {
			return sc.Latency()
		}
		return cfg.Model.NodeLatency(node)
	}

	var computeFree, copyFree float64
	var prevComputeStart float64
	for _, v := range order {
		node := g.Node(v)
		lat := latency(node)
		ready := 0.0
		for _, p := range g.Pre(v) {
			if f := finish[p]; f > ready {
				ready = f
			}
		}
		if ops.IsTransfer(node.Op.Kind()) {
			// Transfers are issued when the preceding compute operator in
			// the schedule is dispatched, then run as the copy stream and
			// their producers allow.
			s := ready
			if copyFree > s {
				s = copyFree
			}
			if prevComputeStart > s {
				s = prevComputeStart
			}
			start[v] = s
			finish[v] = s + lat
			copyFree = finish[v]
			res.CopyBusy += lat
		} else {
			s := ready
			if computeFree > s {
				s = computeFree
			}
			start[v] = s
			finish[v] = s + lat
			computeFree = finish[v]
			prevComputeStart = s
			res.ComputeBusy += lat
		}
	}
	for _, v := range order {
		if finish[v] > res.Latency {
			res.Latency = finish[v]
		}
	}

	// Continuous-time memory accounting.
	type event struct {
		t     float64
		delta int64
	}
	events := make([]event, 0, 2*n)
	for _, v := range order {
		node := g.Node(v)
		bytes := sched.OutDeviceBytes(node)
		trans := sched.ExecTransientBytes(node)
		if trans > 0 {
			events = append(events, event{start[v], trans}, event{finish[v], -trans})
		}
		if bytes == 0 {
			continue
		}
		freeAt := res.Latency
		if cs := g.Suc(v); len(cs) > 0 {
			freeAt = 0
			for _, c := range cs {
				if f := finish[c]; f > freeAt {
					freeAt = f
				}
			}
		}
		events = append(events, event{start[v], bytes}, event{freeAt, -bytes})
	}
	sort.Slice(events, func(i, j int) bool {
		if events[i].t != events[j].t {
			return events[i].t < events[j].t
		}
		return events[i].delta < events[j].delta // frees before allocs at ties
	})
	var cur int64
	for _, e := range events {
		cur += e.delta
		if cur > res.Peak {
			res.Peak = cur
		}
		if cfg.Timeline {
			res.Timeline = append(res.Timeline, Point{e.t, cur})
		}
	}
	return res
}
