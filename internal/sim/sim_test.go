package sim

import (
	"testing"

	"magis/internal/cost"
	"magis/internal/graph"
	"magis/internal/ops"
	"magis/internal/sched"
	"magis/internal/tensor"
)

func model() *cost.Model { return cost.NewModel(cost.RTX3090()) }

func TestComputeChainLatencyIsSum(t *testing.T) {
	g := graph.New()
	x := g.Add(ops.NewInput(tensor.S(1024, 1024), tensor.F32))
	a := g.Add(ops.NewReLU(tensor.S(1024, 1024), tensor.F32), x)
	b := g.Add(ops.NewGELU(tensor.S(1024, 1024), tensor.F32), a)
	m := model()
	r := Run(g, sched.Schedule{x, a, b}, Config{Model: m})
	want := m.NodeLatency(g.Node(a)) + m.NodeLatency(g.Node(b))
	if diff := r.Latency - want; diff < -1e-12 || diff > 1e-12 {
		t.Errorf("latency = %g, want %g", r.Latency, want)
	}
	if r.ComputeBusy != want || r.CopyBusy != 0 {
		t.Errorf("busy times wrong: %g/%g", r.ComputeBusy, r.CopyBusy)
	}
}

func TestAsyncStoreOverlaps(t *testing.T) {
	// A small tensor is swapped out and back while a much longer compute
	// chain runs: the copies overlap compute, so latency ~= compute time.
	g := graph.New()
	big := tensor.S(1024, 1024)
	small := tensor.S(256, 1024) // 1 MB: ~40us each way over PCIe
	x := g.Add(ops.NewInput(small, tensor.F32))
	c0 := g.Add(ops.NewInput(big, tensor.F32))
	st := g.Add(ops.NewStore(small, tensor.F32), x)
	prev := c0
	var chain []graph.NodeID
	for i := 0; i < 16; i++ {
		prev = g.Add(ops.NewGELU(big, tensor.F32), prev)
		chain = append(chain, prev)
	}
	ld := g.Add(ops.NewLoad(small, tensor.F32), st)
	fin := g.Add(ops.NewReduce("Sum", small, 1, tensor.F32), ld)

	m := model()
	order := sched.Schedule{x, c0, st}
	order = append(order, chain[:8]...)
	order = append(order, ld)
	order = append(order, chain[8:]...)
	order = append(order, fin)
	r := Run(g, order, Config{Model: m})

	computeOnly := 0.0
	for _, c := range append(chain, fin) {
		computeOnly += m.NodeLatency(g.Node(c))
	}
	if r.Latency > computeOnly*1.05 {
		t.Errorf("transfers not hidden: latency %g vs compute %g", r.Latency, computeOnly)
	}
}

func TestExposedTransferWhenNoOverlap(t *testing.T) {
	// Store; Load immediately before the only consumer, with no compute in
	// between: the transfer is fully exposed.
	g := graph.New()
	sh := tensor.S(4096, 4096)
	x := g.Add(ops.NewInput(sh, tensor.F32))
	st := g.Add(ops.NewStore(sh, tensor.F32), x)
	ld := g.Add(ops.NewLoad(sh, tensor.F32), st)
	y := g.Add(ops.NewReLU(sh, tensor.F32), ld)
	m := model()
	r := Run(g, sched.Schedule{x, st, ld, y}, Config{Model: m})
	transfer := m.NodeLatency(g.Node(st)) + m.NodeLatency(g.Node(ld))
	if r.Latency < transfer {
		t.Errorf("latency %g must include exposed transfers %g", r.Latency, transfer)
	}
}

func TestSwapReducesPeakMemory(t *testing.T) {
	// x (16 MB) is needed only at the very end. A long filler chain of
	// small ops gives the Store time to complete; a big temporary t then
	// spikes memory; x is reloaded only after t dies. Swapping therefore
	// removes x from the spike.
	build := func(swap bool) (*graph.Graph, sched.Schedule) {
		g := graph.New()
		xSh := tensor.S(2048, 2048) // 16 MB
		tSh := tensor.S(2048, 1536) // 12 MB
		fSh := tensor.S(512, 512)   // 1 MB filler
		x := g.Add(ops.NewInput(xSh, tensor.F32))
		f := g.Add(ops.NewInput(fSh, tensor.F32))
		order := sched.Schedule{x, f}
		var st, ld graph.NodeID
		if swap {
			st = g.Add(ops.NewStore(xSh, tensor.F32), x)
			order = append(order, st)
		}
		prev := f
		for i := 0; i < 150; i++ {
			prev = g.Add(ops.NewGELU(fSh, tensor.F32), prev)
			order = append(order, prev)
		}
		tmp := g.Add(ops.NewInput(tSh, tensor.F32))
		// Model the spike as a compute producing tSh from the filler.
		spike := g.Add(ops.NewGELU(tSh, tensor.F32), tmp)
		red := g.Add(ops.NewReduce("Sum", tSh, 1, tensor.F32), spike)
		gap := g.Add(ops.NewGELU(fSh, tensor.F32), prev)
		order = append(order, tmp, spike, red, gap)
		xSrc := x
		if swap {
			ld = g.Add(ops.NewLoad(xSh, tensor.F32), st)
			xSrc = ld
			order = append(order, ld)
		}
		fin := g.Add(ops.NewReduce("Sum", xSh, 1, tensor.F32), xSrc)
		order = append(order, fin)
		return g, order
	}
	m := model()
	gn, on := build(false)
	gs, os := build(true)
	rn := Run(gn, on, Config{Model: m})
	rs := Run(gs, os, Config{Model: m})
	if rs.Peak >= rn.Peak {
		t.Errorf("swap did not reduce peak: %d vs %d", rs.Peak, rn.Peak)
	}
	// Sanity: the non-swap peak includes x plus the spike.
	if rn.Peak < 16<<20+12<<20 {
		t.Errorf("non-swap peak %d unexpectedly small", rn.Peak)
	}
}

func TestTimelineMonotoneTime(t *testing.T) {
	g := graph.New()
	x := g.Add(ops.NewInput(tensor.S(256, 256), tensor.F32))
	a := g.Add(ops.NewReLU(tensor.S(256, 256), tensor.F32), x)
	r := Run(g, sched.Schedule{x, a}, Config{Model: model(), Timeline: true})
	if len(r.Timeline) == 0 {
		t.Fatal("no timeline")
	}
	last := -1.0
	var maxMem int64
	for _, p := range r.Timeline {
		if p.Time < last {
			t.Fatal("timeline not sorted")
		}
		last = p.Time
		if p.Mem > maxMem {
			maxMem = p.Mem
		}
	}
	if maxMem != r.Peak {
		t.Errorf("timeline max %d != peak %d", maxMem, r.Peak)
	}
}

func TestNodeCostOverride(t *testing.T) {
	g := graph.New()
	x := g.Add(ops.NewInput(tensor.S(16), tensor.F32))
	a := g.Add(ops.NewReLU(tensor.S(16), tensor.F32), x)
	r := Run(g, sched.Schedule{x, a}, Config{
		Model: model(),
		NodeCost: func(n *graph.Node) (float64, bool) {
			if n.ID == a {
				return 42, true
			}
			return 0, false
		},
	})
	if r.Latency != 42 {
		t.Errorf("override ignored: latency = %g", r.Latency)
	}
}

func TestPeakMatchesStepSimulationOrderOfMagnitude(t *testing.T) {
	// The continuous-time peak can differ from the §2.1 step model (async
	// allocation), but for a pure compute chain they agree exactly.
	g := graph.New()
	x := g.Add(ops.NewInput(tensor.S(512, 512), tensor.F32))
	a := g.Add(ops.NewReLU(tensor.S(512, 512), tensor.F32), x)
	b := g.Add(ops.NewGELU(tensor.S(512, 512), tensor.F32), a)
	order := sched.Schedule{x, a, b}
	r := Run(g, order, Config{Model: model()})
	if p := sched.PeakOnly(g, order); p != r.Peak {
		t.Errorf("sim peak %d != lifetime peak %d", r.Peak, p)
	}
}
