package sim

import (
	"math"
	"testing"

	"magis/internal/graph"
	"magis/internal/ops"
	"magis/internal/sched"
	"magis/internal/tensor"
)

// The retry-with-backoff model of FaultHooks runs on the simulator's
// virtual clock, so every test here is deterministic: time only advances
// when the model says it does.

// transferScenario is one Store whose transfer faults, followed by a
// consumer — the minimal graph that exercises the retry path.
func transferScenario() (*graph.Graph, sched.Schedule, graph.NodeID) {
	g := graph.New()
	sh := tensor.S(1024, 1024)
	x := g.Add(ops.NewInput(sh, tensor.F32))
	st := g.Add(ops.NewStore(sh, tensor.F32), x)
	ld := g.Add(ops.NewLoad(sh, tensor.F32), st)
	y := g.Add(ops.NewReLU(sh, tensor.F32), ld)
	return g, sched.Schedule{x, st, ld, y}, st
}

// failStore returns hooks that fail the given transfer k times.
func failStore(target graph.NodeID, k int) *FaultHooks {
	return &FaultHooks{
		TransferFailures: func(n *graph.Node) int {
			if n.ID == target {
				return k
			}
			return 0
		},
	}
}

// TestRetryCountIsBounded: failures beyond MaxRetries are not absorbed one
// by one — the transfer aborts after exactly MaxRetries extra attempts.
func TestRetryCountIsBounded(t *testing.T) {
	g, order, st := transferScenario()
	h := failStore(st, 10)
	h.MaxRetries = 4
	r := Run(g, order, Config{Model: model(), Faults: h})
	if r.Retries != 4 {
		t.Errorf("Retries = %d, want exactly MaxRetries (4)", r.Retries)
	}
	if r.TransferAborts != 1 {
		t.Errorf("TransferAborts = %d, want 1", r.TransferAborts)
	}
	if len(r.Faults) != 1 || !r.Faults[0].Aborted || r.Faults[0].Node != st {
		t.Errorf("fault points %+v, want one aborted fault at node %d", r.Faults, st)
	}

	// Failures within the bound are absorbed and the plan completes.
	h = failStore(st, 2)
	h.MaxRetries = 4
	r = Run(g, order, Config{Model: model(), Faults: h})
	if r.Retries != 2 || r.TransferAborts != 0 {
		t.Errorf("absorbed run: Retries=%d aborts=%d, want 2/0", r.Retries, r.TransferAborts)
	}
	if len(r.Faults) != 1 || r.Faults[0].Aborted || r.Faults[0].Retries != 2 {
		t.Errorf("fault points %+v, want one absorbed 2-retry fault", r.Faults)
	}
}

// TestBackoffGrowsMonotonically: each extra attempt costs the transfer
// latency plus an exponentially doubling backoff, so the marginal cost of
// attempt i+1 strictly exceeds that of attempt i.
func TestBackoffGrowsMonotonically(t *testing.T) {
	g, order, st := transferScenario()
	m := model()
	backoff := 100e-6
	lat := m.NodeLatency(g.Node(st))

	// Marginal retry cost per extra failure, measured via RetryTime.
	var prevTotal, prevMarginal float64
	for k := 1; k <= 4; k++ {
		h := failStore(st, k)
		h.MaxRetries = 8
		h.RetryBackoff = backoff
		r := Run(g, order, Config{Model: m, Faults: h})
		marginal := r.RetryTime - prevTotal
		want := lat + backoff*math.Pow(2, float64(k-1))
		if diff := marginal - want; diff < -1e-12 || diff > 1e-12 {
			t.Errorf("attempt %d marginal cost %g, want lat+backoff*2^%d = %g", k, marginal, k-1, want)
		}
		if k > 1 && marginal <= prevMarginal {
			t.Errorf("attempt %d cost %g not greater than attempt %d cost %g",
				k, marginal, k-1, prevMarginal)
		}
		prevTotal = r.RetryTime
		prevMarginal = marginal
	}
}

// TestRetryTimeExtendsTheTimeline: absorbed retries push the makespan by
// exactly RetryTime when the transfer is on the critical path.
func TestRetryTimeExtendsTheTimeline(t *testing.T) {
	g, order, st := transferScenario()
	m := model()
	clean := Run(g, order, Config{Model: m})
	h := failStore(st, 3)
	faulty := Run(g, order, Config{Model: m, Faults: h})
	want := clean.Latency + faulty.RetryTime
	if diff := faulty.Latency - want; diff < -1e-9 || diff > 1e-9 {
		t.Errorf("faulty latency %g, want clean+RetryTime = %g", faulty.Latency, want)
	}
	if faulty.RetryTime <= 0 {
		t.Error("RetryTime not recorded")
	}
}

// TestPermanentFaultAbortsInsteadOfLooping: a transfer that fails
// "forever" (a permanent fault) terminates the simulation in bounded time
// with an abort — the retry loop must never chase the failure count.
func TestPermanentFaultAbortsInsteadOfLooping(t *testing.T) {
	g, order, st := transferScenario()
	h := failStore(st, math.MaxInt32)
	r := Run(g, order, Config{Model: model(), Faults: h})
	if r.TransferAborts != 1 {
		t.Fatalf("TransferAborts = %d, want 1", r.TransferAborts)
	}
	if r.Retries != 3 {
		t.Errorf("Retries = %d, want the default MaxRetries (3)", r.Retries)
	}
	if math.IsInf(r.Latency, 0) || math.IsNaN(r.Latency) || r.Latency <= 0 {
		t.Errorf("latency after permanent fault = %g, want finite positive", r.Latency)
	}
}

// TestRetryJitterDistribution pins the seeded backoff jitter: factors stay
// inside [1-J, 1+J], are centred near 1 over many (node, attempt) draws,
// actually spread (not constant), and are bit-identical for a fixed seed —
// the property a deterministic replay depends on.
func TestRetryJitterDistribution(t *testing.T) {
	const J = 0.25
	h := &FaultHooks{RetryJitter: J, JitterSeed: 42}
	again := &FaultHooks{RetryJitter: J, JitterSeed: 42}
	other := &FaultHooks{RetryJitter: J, JitterSeed: 43}

	var sum float64
	var n int
	lo, hi := math.Inf(1), math.Inf(-1)
	differs := false
	for node := graph.NodeID(0); node < 256; node++ {
		for attempt := 0; attempt < 4; attempt++ {
			f := h.jitterFactor(node, attempt)
			if f < 1-J || f > 1+J {
				t.Fatalf("jitter(%d,%d) = %v outside [%v,%v]", node, attempt, f, 1-J, 1+J)
			}
			if f != again.jitterFactor(node, attempt) {
				t.Fatalf("jitter(%d,%d) not deterministic for a fixed seed", node, attempt)
			}
			if f != other.jitterFactor(node, attempt) {
				differs = true
			}
			sum += f
			n++
			lo, hi = math.Min(lo, f), math.Max(hi, f)
		}
	}
	if mean := sum / float64(n); math.Abs(mean-1) > 0.02 {
		t.Errorf("jitter mean %v, want within 2%% of 1", mean)
	}
	if hi-lo < J {
		t.Errorf("jitter spread [%v,%v] too narrow for J=%v — retries still synchronized", lo, hi, J)
	}
	if !differs {
		t.Error("seeds 42 and 43 produced identical jitter everywhere")
	}

	// Zero jitter is exactly the legacy synchronized model.
	if f := (&FaultHooks{}).jitterFactor(7, 1); f != 1 {
		t.Errorf("zero-jitter factor = %v, want exactly 1", f)
	}
}

// TestRetryJitterPerturbsBackoffDeterministically: with jitter enabled the
// absorbed retry cost moves off the pure-doubling value but two runs with
// the same seed agree bit-for-bit, and the factor stays within the
// documented envelope of the un-jittered cost.
func TestRetryJitterPerturbsBackoffDeterministically(t *testing.T) {
	g, order, st := transferScenario()
	m := model()
	mk := func(seed int64, jitter float64) *Result {
		h := failStore(st, 3)
		h.RetryBackoff = 1e-4
		h.RetryJitter = jitter
		h.JitterSeed = seed
		return Run(g, order, Config{Model: m, Faults: h})
	}
	plain := mk(1, 0)
	a := mk(1, 0.3)
	b := mk(1, 0.3)
	if a.RetryTime != b.RetryTime || a.Latency != b.Latency {
		t.Fatalf("jittered replay not deterministic: %v/%v vs %v/%v",
			a.RetryTime, a.Latency, b.RetryTime, b.Latency)
	}
	if a.RetryTime == plain.RetryTime {
		t.Error("jitter left the backoff schedule bit-identical to pure doubling")
	}
	// Only the backoff portion jitters, so total retry time stays inside
	// the [1-J, 1+J] envelope of the un-jittered backoff sum.
	lat := m.NodeLatency(g.Node(st))
	backoffPlain := plain.RetryTime - 3*lat
	backoffJit := a.RetryTime - 3*lat
	if backoffJit < backoffPlain*0.7-1e-12 || backoffJit > backoffPlain*1.3+1e-12 {
		t.Errorf("jittered backoff %v outside ±30%% of %v", backoffJit, backoffPlain)
	}
}

// TestRetryDefaults pins the documented defaults: MaxRetries 3 and a 50µs
// base backoff.
func TestRetryDefaults(t *testing.T) {
	h := &FaultHooks{}
	if h.maxRetries() != 3 {
		t.Errorf("default MaxRetries = %d, want 3", h.maxRetries())
	}
	if h.backoff() != 50e-6 {
		t.Errorf("default RetryBackoff = %g, want 50e-6", h.backoff())
	}

	g, order, st := transferScenario()
	m := model()
	lat := m.NodeLatency(g.Node(st))
	r := Run(g, order, Config{Model: m, Faults: failStore(st, 1)})
	want := lat + 50e-6
	if diff := r.RetryTime - want; diff < -1e-12 || diff > 1e-12 {
		t.Errorf("single retry cost %g, want lat+50µs = %g", r.RetryTime, want)
	}
}
