package sim

import (
	"math"
	"testing"

	"magis/internal/graph"
	"magis/internal/ops"
	"magis/internal/sched"
	"magis/internal/tensor"
)

// The retry-with-backoff model of FaultHooks runs on the simulator's
// virtual clock, so every test here is deterministic: time only advances
// when the model says it does.

// transferScenario is one Store whose transfer faults, followed by a
// consumer — the minimal graph that exercises the retry path.
func transferScenario() (*graph.Graph, sched.Schedule, graph.NodeID) {
	g := graph.New()
	sh := tensor.S(1024, 1024)
	x := g.Add(ops.NewInput(sh, tensor.F32))
	st := g.Add(ops.NewStore(sh, tensor.F32), x)
	ld := g.Add(ops.NewLoad(sh, tensor.F32), st)
	y := g.Add(ops.NewReLU(sh, tensor.F32), ld)
	return g, sched.Schedule{x, st, ld, y}, st
}

// failStore returns hooks that fail the given transfer k times.
func failStore(target graph.NodeID, k int) *FaultHooks {
	return &FaultHooks{
		TransferFailures: func(n *graph.Node) int {
			if n.ID == target {
				return k
			}
			return 0
		},
	}
}

// TestRetryCountIsBounded: failures beyond MaxRetries are not absorbed one
// by one — the transfer aborts after exactly MaxRetries extra attempts.
func TestRetryCountIsBounded(t *testing.T) {
	g, order, st := transferScenario()
	h := failStore(st, 10)
	h.MaxRetries = 4
	r := Run(g, order, Config{Model: model(), Faults: h})
	if r.Retries != 4 {
		t.Errorf("Retries = %d, want exactly MaxRetries (4)", r.Retries)
	}
	if r.TransferAborts != 1 {
		t.Errorf("TransferAborts = %d, want 1", r.TransferAborts)
	}
	if len(r.Faults) != 1 || !r.Faults[0].Aborted || r.Faults[0].Node != st {
		t.Errorf("fault points %+v, want one aborted fault at node %d", r.Faults, st)
	}

	// Failures within the bound are absorbed and the plan completes.
	h = failStore(st, 2)
	h.MaxRetries = 4
	r = Run(g, order, Config{Model: model(), Faults: h})
	if r.Retries != 2 || r.TransferAborts != 0 {
		t.Errorf("absorbed run: Retries=%d aborts=%d, want 2/0", r.Retries, r.TransferAborts)
	}
	if len(r.Faults) != 1 || r.Faults[0].Aborted || r.Faults[0].Retries != 2 {
		t.Errorf("fault points %+v, want one absorbed 2-retry fault", r.Faults)
	}
}

// TestBackoffGrowsMonotonically: each extra attempt costs the transfer
// latency plus an exponentially doubling backoff, so the marginal cost of
// attempt i+1 strictly exceeds that of attempt i.
func TestBackoffGrowsMonotonically(t *testing.T) {
	g, order, st := transferScenario()
	m := model()
	backoff := 100e-6
	lat := m.NodeLatency(g.Node(st))

	// Marginal retry cost per extra failure, measured via RetryTime.
	var prevTotal, prevMarginal float64
	for k := 1; k <= 4; k++ {
		h := failStore(st, k)
		h.MaxRetries = 8
		h.RetryBackoff = backoff
		r := Run(g, order, Config{Model: m, Faults: h})
		marginal := r.RetryTime - prevTotal
		want := lat + backoff*math.Pow(2, float64(k-1))
		if diff := marginal - want; diff < -1e-12 || diff > 1e-12 {
			t.Errorf("attempt %d marginal cost %g, want lat+backoff*2^%d = %g", k, marginal, k-1, want)
		}
		if k > 1 && marginal <= prevMarginal {
			t.Errorf("attempt %d cost %g not greater than attempt %d cost %g",
				k, marginal, k-1, prevMarginal)
		}
		prevTotal = r.RetryTime
		prevMarginal = marginal
	}
}

// TestRetryTimeExtendsTheTimeline: absorbed retries push the makespan by
// exactly RetryTime when the transfer is on the critical path.
func TestRetryTimeExtendsTheTimeline(t *testing.T) {
	g, order, st := transferScenario()
	m := model()
	clean := Run(g, order, Config{Model: m})
	h := failStore(st, 3)
	faulty := Run(g, order, Config{Model: m, Faults: h})
	want := clean.Latency + faulty.RetryTime
	if diff := faulty.Latency - want; diff < -1e-9 || diff > 1e-9 {
		t.Errorf("faulty latency %g, want clean+RetryTime = %g", faulty.Latency, want)
	}
	if faulty.RetryTime <= 0 {
		t.Error("RetryTime not recorded")
	}
}

// TestPermanentFaultAbortsInsteadOfLooping: a transfer that fails
// "forever" (a permanent fault) terminates the simulation in bounded time
// with an abort — the retry loop must never chase the failure count.
func TestPermanentFaultAbortsInsteadOfLooping(t *testing.T) {
	g, order, st := transferScenario()
	h := failStore(st, math.MaxInt32)
	r := Run(g, order, Config{Model: model(), Faults: h})
	if r.TransferAborts != 1 {
		t.Fatalf("TransferAborts = %d, want 1", r.TransferAborts)
	}
	if r.Retries != 3 {
		t.Errorf("Retries = %d, want the default MaxRetries (3)", r.Retries)
	}
	if math.IsInf(r.Latency, 0) || math.IsNaN(r.Latency) || r.Latency <= 0 {
		t.Errorf("latency after permanent fault = %g, want finite positive", r.Latency)
	}
}

// TestRetryDefaults pins the documented defaults: MaxRetries 3 and a 50µs
// base backoff.
func TestRetryDefaults(t *testing.T) {
	h := &FaultHooks{}
	if h.maxRetries() != 3 {
		t.Errorf("default MaxRetries = %d, want 3", h.maxRetries())
	}
	if h.backoff() != 50e-6 {
		t.Errorf("default RetryBackoff = %g, want 50e-6", h.backoff())
	}

	g, order, st := transferScenario()
	m := model()
	lat := m.NodeLatency(g.Node(st))
	r := Run(g, order, Config{Model: m, Faults: failStore(st, 1)})
	want := lat + 50e-6
	if diff := r.RetryTime - want; diff < -1e-12 || diff > 1e-12 {
		t.Errorf("single retry cost %g, want lat+50µs = %g", r.RetryTime, want)
	}
}
