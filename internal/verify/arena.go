package verify

import (
	"fmt"
	"strings"

	"magis/internal/graph"
	"magis/internal/memplan"
	"magis/internal/ops"
	"magis/internal/refexec"
	"magis/internal/sched"
)

// Trap records one arena-safety violation observed while executing a
// graph against its memory plan's concrete offsets.
type Trap struct {
	Step   int          `json:"step"`
	Node   graph.NodeID `json:"node"`
	Kind   string       `json:"kind"` // read-freed | read-overwritten | read-uninitialized | write-out-of-lifetime | out-of-arena
	Detail string       `json:"detail"`
}

func (t Trap) String() string {
	return fmt.Sprintf("step %d node %d %s: %s", t.Step, t.Node, t.Kind, t.Detail)
}

const maxTraps = 32

// Report is the structured result of plan-level verification. It is
// JSON-serializable so CLIs and the service can emit it directly.
type Report struct {
	Workload       string     `json:"workload,omitempty"`
	Nodes          int        `json:"nodes"`
	Blocks         int        `json:"blocks"`
	ArenaBytes     int64      `json:"arena_bytes"`
	StaticErr      string     `json:"static_err,omitempty"` // memplan.Plan.Verify on the checked plan
	Traps          []Trap     `json:"traps,omitempty"`      // first maxTraps violations
	TrapsTotal     int        `json:"traps_total"`
	OutputsChecked int        `json:"outputs_checked"`
	Mismatches     []Mismatch `json:"mismatches,omitempty"`
	MaxAbsErr      float64    `json:"max_abs_err"`
	Err            string     `json:"err,omitempty"` // hard failure before/during execution
}

// OK reports whether the plan passed every check.
func (r *Report) OK() bool {
	return r.Err == "" && r.StaticErr == "" && r.TrapsTotal == 0 && len(r.Mismatches) == 0
}

// String renders the report one line per finding, prefixed so scripts can
// grep for "trap:" / "mismatch:" / "error:".
func (r *Report) String() string {
	var b strings.Builder
	status := "OK"
	if !r.OK() {
		status = "FAIL"
	}
	name := r.Workload
	if name != "" {
		name = " " + name
	}
	fmt.Fprintf(&b, "verify%s: %s — %d nodes, %d arena blocks, %d bytes, %d output(s) checked, max |err| %.3g\n",
		name, status, r.Nodes, r.Blocks, r.ArenaBytes, r.OutputsChecked, r.MaxAbsErr)
	if r.Err != "" {
		fmt.Fprintf(&b, "  error: %s\n", r.Err)
	}
	if r.StaticErr != "" {
		fmt.Fprintf(&b, "  static: %s\n", r.StaticErr)
	}
	for _, t := range r.Traps {
		fmt.Fprintf(&b, "  trap: %s\n", t)
	}
	if r.TrapsTotal > len(r.Traps) {
		fmt.Fprintf(&b, "  trap: ... %d more\n", r.TrapsTotal-len(r.Traps))
	}
	for _, m := range r.Mismatches {
		fmt.Fprintf(&b, "  mismatch: output %d (ref %d) elem %d: got %g, want %g\n", m.Node, m.Ref, m.Index, m.Got, m.Want)
	}
	return b.String()
}

// Check schedules and memory-plans the optimized graph, then runs full
// plan-level verification against the input graph. input may be nil (no
// original available, e.g. a resumed search): the cross-check then
// compares against a plain reference execution of the optimized graph
// itself, which still proves the arena execution corrupts nothing.
// optimized must be materialized (no fission-region payloads) — exactly
// what ftree.Tree.Materialize returns.
func Check(input, optimized *graph.Graph, seed uint64) *Report {
	sc := &sched.Scheduler{}
	order := sc.ScheduleGraph(optimized)
	plan, err := memplan.Build(optimized, order)
	if err != nil {
		return &Report{Nodes: optimized.Len(), Err: fmt.Sprintf("memplan: %v", err)}
	}
	return CheckPlan(input, optimized, order, plan, seed)
}

// CheckPlan verifies one concrete (graph, schedule, plan) triple: it
// executes the optimized graph in schedule order reading and writing
// every tensor through the plan's arena offsets (recording traps), then
// cross-checks the surviving outputs against a plain reference execution
// of input (or of optimized itself when input is nil).
func CheckPlan(input, optimized *graph.Graph, order sched.Schedule, plan *memplan.Plan, seed uint64) *Report {
	rep := &Report{Nodes: optimized.Len(), Blocks: len(plan.Blocks), ArenaBytes: plan.ArenaSize}
	if err := plan.Verify(); err != nil {
		rep.StaticErr = err.Error()
	}
	leaves := refexec.SeedLeaves(optimized, seed)
	outs, err := execArena(optimized, order, plan, leaves, rep)
	if err != nil {
		rep.Err = err.Error()
		return rep
	}
	refG, refVals := input, refexec.Values(nil)
	if refG != nil {
		refVals, err = refexec.Run(refG, nil, seed)
	} else {
		refG = optimized
		refVals, err = refexec.Exec(refG, order, leaves)
	}
	if err != nil {
		rep.Err = fmt.Sprintf("reference execution: %v", err)
		return rep
	}
	mms, maxErr, err := MatchOutputs(refG, refVals, optimized, outs)
	if err != nil {
		rep.Err = err.Error()
		return rep
	}
	rep.Mismatches = mms
	rep.MaxAbsErr = maxErr
	rep.OutputsChecked = len(optimized.Outputs())
	return rep
}

// execArena executes g step by step against the plan: every tensor value
// is encoded into its block's bytes on write and decoded back on read,
// with per-byte ownership tracking. Store outputs live in a simulated
// host arena instead (they own no device block), and Loads read them
// back — the actual round-trip a swap performs. Violations are recorded
// as traps and execution continues, so one bad offset yields a report,
// not a crash. Returns the values of g's outputs, decoded at the final
// step.
func execArena(g *graph.Graph, order sched.Schedule, plan *memplan.Plan, leaves map[graph.NodeID][]float64, rep *Report) (refexec.Values, error) {
	blockOf := make(map[graph.NodeID]int, len(plan.Blocks))
	for i, b := range plan.Blocks {
		blockOf[b.Node] = i
	}
	arena := make([]byte, plan.ArenaSize)
	owner := make([]int32, plan.ArenaSize)
	for i := range owner {
		owner[i] = -1
	}
	host := make(map[graph.NodeID][]float64)
	trap := func(step int, v graph.NodeID, kind, detail string) {
		rep.TrapsTotal++
		if len(rep.Traps) < maxTraps {
			rep.Traps = append(rep.Traps, Trap{Step: step, Node: v, Kind: kind, Detail: detail})
		}
	}
	// decode reads node in's value through the arena at the given step,
	// trapping lifetime and ownership violations but still returning the
	// bytes found there so execution can continue.
	decode := func(step int, consumer, in graph.NodeID) []float64 {
		n := g.Node(in)
		if ops.IsStore(n.Op.Kind()) {
			return host[in]
		}
		bi, ok := blockOf[in]
		if !ok {
			return nil
		}
		b := plan.Blocks[bi]
		if step > b.End {
			trap(step, consumer, "read-freed", fmt.Sprintf("input %d's block was freed at step %d", in, b.End))
		}
		dt := n.Op.DType()
		es := int(dt.Size())
		elems := int(n.Op.OutShape().Elems())
		buf := make([]float64, elems)
		trapped := false
		for e := 0; e < elems; e++ {
			off := b.Offset + int64(e*es)
			if off+int64(es) > int64(len(arena)) {
				if !trapped {
					trapped = true
					trap(step, consumer, "out-of-arena", fmt.Sprintf("input %d byte %d beyond arena size %d", in, off, len(arena)))
				}
				continue
			}
			for by := int64(0); by < int64(es); by++ {
				if o := owner[off+by]; o != int32(bi) && !trapped {
					trapped = true
					if o < 0 {
						trap(step, consumer, "read-uninitialized", fmt.Sprintf("input %d byte %d was never written", in, off+by))
					} else {
						trap(step, consumer, "read-overwritten", fmt.Sprintf("input %d byte %d now owned by block %d (node %d)", in, off+by, o, plan.Blocks[o].Node))
					}
				}
			}
			buf[e] = dt.GetElem(arena[off : off+int64(es)])
		}
		return buf
	}
	for step, v := range order {
		out, err := refexec.EvalNode(g, v, leaves, func(in graph.NodeID) []float64 { return decode(step, v, in) })
		if err != nil {
			return nil, err
		}
		n := g.Node(v)
		if ops.IsStore(n.Op.Kind()) {
			host[v] = out
			continue
		}
		bi, ok := blockOf[v]
		if !ok {
			if sched.OutDeviceBytes(n) > 0 {
				return nil, fmt.Errorf("node %d (%s) produces %d device bytes but has no arena block", v, n.Op.Kind(), sched.OutDeviceBytes(n))
			}
			continue
		}
		b := plan.Blocks[bi]
		if step < b.Start || step > b.End {
			trap(step, v, "write-out-of-lifetime", fmt.Sprintf("block live [%d,%d]", b.Start, b.End))
		}
		dt := n.Op.DType()
		es := int(dt.Size())
		if need := int64(len(out) * es); b.Size < need {
			return nil, fmt.Errorf("node %d (%s): block size %d < value size %d", v, n.Op.Kind(), b.Size, need)
		}
		for e, val := range out {
			off := b.Offset + int64(e*es)
			if off+int64(es) > int64(len(arena)) {
				trap(step, v, "out-of-arena", fmt.Sprintf("write byte %d beyond arena size %d", off, len(arena)))
				break
			}
			dt.PutElem(arena[off:off+int64(es)], val)
			for by := int64(0); by < int64(es); by++ {
				owner[off+by] = int32(bi)
			}
		}
	}
	final := len(order) - 1
	outs := make(refexec.Values)
	for _, id := range g.Outputs() {
		if ops.IsStore(g.Node(id).Op.Kind()) {
			outs[id] = host[id]
			continue
		}
		outs[id] = decode(final, id, id)
	}
	return outs, nil
}

// InjectOffsetFault deliberately corrupts plan in place — the mutation
// the smoke test uses to prove the checker detects real bugs. It shifts
// one block's offset so it overlaps a concurrently-live block by one
// byte (preferring a literally adjacent pair, falling back to a full
// alias). Returns a description of the injected fault, or ok=false if no
// two blocks are ever live at once.
func InjectOffsetFault(plan *memplan.Plan) (string, bool) {
	// b must be born strictly inside a's lifetime so a is still read (or
	// decoded as an output) after b's write stamps the stolen byte.
	overlapping := func(a, b memplan.Block) bool {
		return b.Start > a.Start && b.Start < a.End
	}
	for j := range plan.Blocks {
		b := plan.Blocks[j]
		for i := range plan.Blocks {
			a := plan.Blocks[i]
			if i == j || !overlapping(a, b) {
				continue
			}
			if b.Offset == a.Offset+a.Size && b.Offset > 0 {
				plan.Blocks[j].Offset--
				return fmt.Sprintf("block %d (node %d) offset %d -> %d: overlaps live block %d (node %d) by one byte",
					j, b.Node, b.Offset, b.Offset-1, i, a.Node), true
			}
		}
	}
	for j := range plan.Blocks {
		b := plan.Blocks[j]
		for i := range plan.Blocks {
			a := plan.Blocks[i]
			if i == j || !overlapping(a, b) || a.Offset == b.Offset {
				continue
			}
			plan.Blocks[j].Offset = a.Offset
			return fmt.Sprintf("block %d (node %d) offset %d -> %d: aliases live block %d (node %d)",
				j, b.Node, b.Offset, a.Offset, i, a.Node), true
		}
	}
	return "", false
}
