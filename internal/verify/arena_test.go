package verify

import (
	"strings"
	"testing"

	"magis/internal/memplan"
	"magis/internal/models"
	"magis/internal/rules"
	"magis/internal/sched"
)

// TestCheckCleanPlan: a freshly planned, untransformed training graph
// passes every arena check, and because quantization happens at every
// step the arena execution agrees with plain refexec bitwise.
func TestCheckCleanPlan(t *testing.T) {
	w := models.MLP(4, 6, 8, 3, 2)
	rep := Check(w.G, w.G, 11)
	if !rep.OK() {
		t.Fatalf("clean plan fails verification:\n%s", rep)
	}
	if rep.MaxAbsErr != 0 {
		t.Errorf("arena execution diverges from plain execution by %g; identical graphs must agree bitwise", rep.MaxAbsErr)
	}
	if rep.OutputsChecked == 0 {
		t.Error("no outputs were checked")
	}
	if rep.Blocks == 0 || rep.ArenaBytes == 0 {
		t.Errorf("implausible plan stats: %d blocks, %d bytes", rep.Blocks, rep.ArenaBytes)
	}
}

// TestCheckSwappedGraph: a graph transformed with Store/Load pairs
// round-trips tensors through the simulated host arena and still
// matches the untransformed original.
func TestCheckSwappedGraph(t *testing.T) {
	g := GenGraph("Swap", 3)
	apps := rules.SwapRule{}.Apply(g, &rules.Context{})
	if len(apps) == 0 {
		t.Fatal("SwapRule found no site on its generated graph")
	}
	rep := Check(g, apps[0].Graph, 3)
	if !rep.OK() {
		t.Fatalf("swapped graph fails verification:\n%s", rep)
	}
}

// TestInjectOffsetFault: corrupting one block offset by one byte must
// trip the arena checker — this is the detection guarantee the
// mutation smoke test (scripts/verify_mutation.sh) relies on.
func TestInjectOffsetFault(t *testing.T) {
	w := models.MLP(4, 6, 8, 3, 2)
	sc := &sched.Scheduler{}
	order := sc.ScheduleGraph(w.G)
	plan, err := memplan.Build(w.G, order)
	if err != nil {
		t.Fatal(err)
	}
	desc, ok := InjectOffsetFault(plan)
	if !ok {
		t.Fatal("no two concurrently-live blocks to corrupt")
	}
	rep := CheckPlan(w.G, w.G, order, plan, 11)
	if rep.OK() {
		t.Fatalf("injected fault (%s) went undetected:\n%s", desc, rep)
	}
	if rep.TrapsTotal == 0 {
		t.Fatalf("fault %q detected without any trap:\n%s", desc, rep)
	}
	if s := rep.String(); !strings.Contains(s, "trap:") || !strings.Contains(s, "FAIL") {
		t.Errorf("report not greppable:\n%s", s)
	}
}

// TestReportString: the clean-report rendering scripts parse.
func TestReportString(t *testing.T) {
	rep := &Report{Workload: "mlp", Nodes: 3, OutputsChecked: 1}
	if s := rep.String(); !strings.Contains(s, "OK") || !strings.Contains(s, "mlp") {
		t.Errorf("unexpected report rendering: %q", s)
	}
}
