package verify

import (
	"testing"

	"magis/internal/rules"
)

// FuzzRuleEquivalence drives rule-level equivalence checking from the
// fuzzer: each input picks a rule and a seed, generates a graph
// embedding that rule's trigger pattern, applies the rule, and demands
// numerically equivalent outputs. Run bounded in CI with
// -fuzztime (see .github/workflows); failures minimize to a
// (rule, seed) pair that reproduces deterministically.
func FuzzRuleEquivalence(f *testing.F) {
	all := rules.All()
	for i := range all {
		f.Add(uint8(i), uint64(1))
		f.Add(uint8(i), uint64(42))
	}
	f.Fuzz(func(t *testing.T, ri uint8, seed uint64) {
		rule := all[int(ri)%len(all)]
		g := GenGraph(rule.Name(), seed)
		if err := CheckRule(rule, g, seed); err != nil {
			t.Fatalf("rule %s seed %d: %v", rule.Name(), seed, err)
		}
	})
}
