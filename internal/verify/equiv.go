// Package verify proves — numerically, on real data — that the
// optimizer's output computes the same function as its input. It layers
// two checks on the reference interpreter (internal/refexec):
//
//   - Rule-level equivalence (this file): every rewrite rule is applied
//     to seeded random graphs embedding its trigger pattern, and the
//     transformed graph's outputs must match the original's within a
//     dtype-aware tolerance. Run table-driven (TestRuleEquivalence) and
//     as a fuzz target (FuzzRuleEquivalence), following the differential
//     testing TASO applies to its substitution rules.
//
//   - Plan-level arena safety (arena.go): the optimized graph is executed
//     in schedule order against the memplan's concrete offsets, trapping
//     reads of freed or overwritten regions and out-of-lifetime writes,
//     and its final outputs are cross-checked against the unoptimized
//     graph.
package verify

import (
	"fmt"
	"math"
	"sort"

	"magis/internal/graph"
	"magis/internal/ops"
	"magis/internal/refexec"
	"magis/internal/rules"
	"magis/internal/tensor"
)

// Tolerance returns the (rtol, atol) pair for comparing values of the
// given dtype. Quantization happens after every operator in refexec, so
// structurally identical graphs match bitwise; tolerance only has to
// absorb genuine reassociation introduced by merges, reassociation
// rewrites, and batch fission. Low-precision floats get loose bounds
// (one bf16 ulp at magnitude 1 is ~4e-3); integers and booleans must be
// exact.
func Tolerance(dt tensor.DType) (rtol, atol float64) {
	switch dt {
	case tensor.BF16:
		return 3e-2, 1e-2
	case tensor.F16:
		return 1e-2, 1e-3
	case tensor.I64, tensor.I32, tensor.Bool:
		return 0, 0
	default: // F32, TF32
		return 1e-4, 1e-5
	}
}

// Mismatch records one output element that diverged beyond tolerance.
type Mismatch struct {
	// Node is the diverging output in the transformed graph; Ref is the
	// node it was matched against in the reference graph.
	Node  graph.NodeID `json:"node"`
	Ref   graph.NodeID `json:"ref"`
	Index int          `json:"index"`
	Got   float64      `json:"got"`
	Want  float64      `json:"want"`
}

const maxMismatches = 32

// MatchOutputs compares a transformed graph's outputs against reference
// values. Node IDs are never reused and rewrites clone the graph, so an
// output whose ID exists in the reference compares directly; outputs new
// to the transformed graph (introduced by a rewrite) are paired with the
// reference outputs that vanished, in ascending ID order. A count
// mismatch between the two leftover sets is a structural failure.
// Returns at most maxMismatches mismatches plus the max absolute error
// over all compared elements.
func MatchOutputs(ref *graph.Graph, rv refexec.Values, tg *graph.Graph, tv refexec.Values) ([]Mismatch, float64, error) {
	var (
		mismatches []Mismatch
		maxErr     float64
		fresh      []graph.NodeID
	)
	compare := func(tid, rid graph.NodeID) error {
		got, want := tv[tid], rv[rid]
		if got == nil || want == nil {
			return fmt.Errorf("output %d (ref %d) has no value (transformed %v, reference %v)", tid, rid, got != nil, want != nil)
		}
		if len(got) != len(want) {
			return fmt.Errorf("output %d has %d elements, reference node %d has %d", tid, len(got), rid, len(want))
		}
		rtol, atol := Tolerance(ref.Node(rid).Op.DType())
		for i := range got {
			d := got[i] - want[i]
			if d < 0 {
				d = -d
			}
			if d > maxErr {
				maxErr = d
			}
			lim := atol + rtol*math.Max(math.Abs(got[i]), math.Abs(want[i]))
			if d > lim || d != d { // NaN disagreement also lands here
				if len(mismatches) < maxMismatches {
					mismatches = append(mismatches, Mismatch{Node: tid, Ref: rid, Index: i, Got: got[i], Want: want[i]})
				}
			}
		}
		return nil
	}
	for _, id := range tg.Outputs() {
		if ref.Has(id) {
			if err := compare(id, id); err != nil {
				return nil, maxErr, err
			}
		} else {
			fresh = append(fresh, id)
		}
	}
	var vanished []graph.NodeID
	for _, id := range ref.Outputs() {
		if !tg.Has(id) {
			vanished = append(vanished, id)
		}
	}
	if len(fresh) != len(vanished) {
		return nil, maxErr, fmt.Errorf("output sets do not correspond: transformed gained %d output(s) %v, reference lost %d %v",
			len(fresh), fresh, len(vanished), vanished)
	}
	sort.Slice(fresh, func(i, j int) bool { return fresh[i] < fresh[j] })
	sort.Slice(vanished, func(i, j int) bool { return vanished[i] < vanished[j] })
	for i := range fresh {
		if err := compare(fresh[i], vanished[i]); err != nil {
			return nil, maxErr, err
		}
	}
	return mismatches, maxErr, nil
}

// CheckRule generates nothing itself: it applies rule to g (which must
// embed the rule's trigger pattern — see GenGraph), executes the original
// and every transformed candidate on the same seeded leaves, and returns
// an error describing the first divergence. Rules clone the graph and
// preserve leaf IDs, so both executions see identical inputs.
func CheckRule(rule rules.Rule, g *graph.Graph, seed uint64) error {
	apps := rule.Apply(g, &rules.Context{})
	if len(apps) == 0 {
		return fmt.Errorf("verify: rule %s produced no application on its generated graph", rule.Name())
	}
	base, err := refexec.Run(g, nil, seed)
	if err != nil {
		return fmt.Errorf("verify: reference execution: %w", err)
	}
	for _, app := range apps {
		if err := graph.Validate(app.Graph); err != nil {
			return fmt.Errorf("verify: %s: invalid graph: %w", app.Site(), err)
		}
		nv, err := refexec.Run(app.Graph, nil, seed)
		if err != nil {
			return fmt.Errorf("verify: %s: transformed execution: %w", app.Site(), err)
		}
		mms, _, err := MatchOutputs(g, base, app.Graph, nv)
		if err != nil {
			return fmt.Errorf("verify: %s: %w", app.Site(), err)
		}
		if len(mms) > 0 {
			m := mms[0]
			return fmt.Errorf("verify: %s: output %d diverges from reference %d at elem %d: got %g, want %g (%d element(s) out of tolerance)",
				app.Site(), m.Node, m.Ref, m.Index, m.Got, m.Want, len(mms))
		}
	}
	return nil
}

// GenGraph builds a small random graph that embeds the trigger pattern of
// the named rule, with dimensions, dtype, and incidental structure drawn
// from seed. Every rule in rules.All() is guaranteed at least one
// application site on its generated graph.
func GenGraph(rule string, seed uint64) *graph.Graph {
	r := &genRNG{s: seed}
	dt := []tensor.DType{tensor.F32, tensor.TF32, tensor.BF16}[r.intn(3)]
	m, k, n := 2+r.intn(3), 2+r.intn(3), 2+r.intn(3)
	g := graph.New()
	switch rule {
	case "MergeMatmuls":
		x := g.Add(ops.NewInput(tensor.S(m, k), dt))
		w1 := g.Add(ops.NewParam(tensor.S(k, n), dt))
		w2 := g.Add(ops.NewParam(tensor.S(k, n+1), dt))
		m1 := g.Add(ops.NewMatmul(tensor.S(m, k), tensor.S(k, n), false, false, dt), x, w1)
		m2 := g.Add(ops.NewMatmul(tensor.S(m, k), tensor.S(k, n+1), false, false, dt), x, w2)
		g.Add(ops.NewReLU(tensor.S(m, n), dt), m1)
		g.Add(ops.NewGELU(tensor.S(m, n+1), dt), m2)
	case "MergeConvs":
		c, h := 1+r.intn(2), 3+r.intn(3)
		k1, k2 := 1+r.intn(2), 1+r.intn(2)
		xs := tensor.S(1, c, h, h)
		x := g.Add(ops.NewInput(xs, dt))
		w1 := g.Add(ops.NewParam(tensor.S(k1, c, 3, 3), dt))
		w2 := g.Add(ops.NewParam(tensor.S(k2, c, 3, 3), dt))
		c1 := g.Add(ops.NewConv2d(xs, tensor.S(k1, c, 3, 3), 1, 1, dt), x, w1)
		c2 := g.Add(ops.NewConv2d(xs, tensor.S(k2, c, 3, 3), 1, 1, dt), x, w2)
		g.Add(ops.NewReLU(tensor.S(1, k1, h, h), dt), c1)
		g.Add(ops.NewTanh(tensor.S(1, k2, h, h), dt), c2)
	case "AddReassoc":
		sh := tensor.S(m, n)
		a := g.Add(ops.NewInput(sh, dt))
		b := g.Add(ops.NewInput(sh, dt))
		c := g.Add(ops.NewInput(sh, dt))
		inner := g.Add(ops.NewAdd(sh, sh, dt), a, b)
		top := g.Add(ops.NewAdd(sh, sh, dt), inner, c)
		g.Add(ops.NewReLU(sh, dt), top)
	case "SliceConcatElim":
		w := 2 + r.intn(4)
		cut := 1 + r.intn(w-1)
		sh := tensor.S(m, w)
		src := g.Add(ops.NewInput(sh, dt))
		s1 := g.Add(ops.NewSlice(sh, 2, 0, cut, dt), src)
		s2 := g.Add(ops.NewSlice(sh, 2, cut, w-cut, dt), src)
		cc := g.Add(ops.NewConcat([]tensor.Shape{tensor.S(m, cut), tensor.S(m, w-cut)}, 2, dt), s1, s2)
		g.Add(ops.NewReLU(sh, dt), cc)
	case "DeRemat":
		sh := tensor.S(m, n)
		x := g.Add(ops.NewInput(sh, dt))
		r1 := g.Add(ops.NewReLU(sh, dt), x)
		r2 := g.Add(ops.NewReLU(sh, dt), x)
		g1 := g.Add(ops.NewGELU(sh, dt), r1)
		g2 := g.Add(ops.NewTanh(sh, dt), r2)
		g.Add(ops.NewAdd(sh, sh, dt), g1, g2)
	case "DeSwap":
		sh := tensor.S(m, n)
		x := g.Add(ops.NewInput(sh, dt))
		rl := g.Add(ops.NewReLU(sh, dt), x)
		st := g.Add(ops.NewStore(sh, dt), rl)
		ld := g.Add(ops.NewLoad(sh, dt), st)
		g.Add(ops.NewGELU(sh, dt), ld)
	default:
		// Remat, RematChain, Swap (and any future scheduling rule): a
		// linear chain ending in a multi-consumer tensor.
		x := g.Add(ops.NewInput(tensor.S(m, k), dt))
		w := g.Add(ops.NewParam(tensor.S(k, n), dt))
		sh := tensor.S(m, n)
		cur := g.Add(ops.NewLinear(tensor.S(m, k), tensor.S(k, n), false, dt), x, w)
		// At least one unary keeps the multi-consumer tensor's ancestor
		// chain ≥2 ops deep, which RematChain requires.
		for i, depth := 0, 1+r.intn(2); i < depth; i++ {
			switch r.intn(3) {
			case 0:
				cur = g.Add(ops.NewTanh(sh, dt), cur)
			case 1:
				cur = g.Add(ops.NewSigmoid(sh, dt), cur)
			default:
				cur = g.Add(ops.NewReLU(sh, dt), cur)
			}
		}
		b1 := g.Add(ops.NewGELU(sh, dt), cur)
		b2 := g.Add(ops.NewScale(sh, dt), cur)
		sum := g.Add(ops.NewAdd(sh, sh, dt), b1, b2)
		g.Add(ops.NewTanh(sh, dt), sum)
	}
	return g
}

// genRNG is a tiny splitmix64 for generator choices, independent of the
// leaf-seeding stream.
type genRNG struct{ s uint64 }

func (r *genRNG) next() uint64 {
	r.s += 0x9E3779B97F4A7C15
	z := r.s
	z = (z ^ z>>30) * 0xBF58476D1CE4E5B9
	z = (z ^ z>>27) * 0x94D049BB133111EB
	return z ^ z>>31
}

func (r *genRNG) intn(n int) int { return int(r.next() % uint64(n)) }
