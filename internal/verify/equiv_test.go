package verify

import (
	"testing"

	"magis/internal/graph"
	"magis/internal/ops"
	"magis/internal/refexec"
	"magis/internal/rules"
)

// TestRuleEquivalence is the table-driven face of the equivalence
// fuzzer: every enabled rewrite rule is applied to 50 seeded random
// graphs embedding its trigger pattern, and each transformed graph must
// compute the same outputs as the original within dtype tolerance.
func TestRuleEquivalence(t *testing.T) {
	for _, rule := range rules.All() {
		rule := rule
		t.Run(rule.Name(), func(t *testing.T) {
			t.Parallel()
			for seed := uint64(0); seed < 50; seed++ {
				g := GenGraph(rule.Name(), seed)
				if err := graph.Validate(g); err != nil {
					t.Fatalf("seed %d: generated graph invalid: %v", seed, err)
				}
				if err := CheckRule(rule, g, seed); err != nil {
					t.Fatalf("seed %d: %v", seed, err)
				}
			}
		})
	}
}

// TestGenGraphCoversEveryRule guards the generator itself: a rule whose
// generated graph stops triggering it would silently drop out of the
// fuzzing corpus.
func TestGenGraphCoversEveryRule(t *testing.T) {
	for _, rule := range rules.All() {
		g := GenGraph(rule.Name(), 1)
		if apps := rule.Apply(g, &rules.Context{}); len(apps) == 0 {
			t.Errorf("GenGraph(%q) yields no application site", rule.Name())
		}
	}
}

// TestCatalogGraph: the shared coverage fixture really contains every
// registered operator kind, validates, and executes under refexec.
func TestCatalogGraph(t *testing.T) {
	g := CatalogGraph()
	if err := graph.Validate(g); err != nil {
		t.Fatalf("catalog graph invalid: %v", err)
	}
	present := map[string]bool{}
	for _, id := range g.NodeIDs() {
		present[g.Node(id).Op.Kind()] = true
	}
	for _, k := range ops.Kinds() {
		if !present[k] {
			t.Errorf("catalog graph is missing operator kind %q", k)
		}
	}
	vals, err := refexec.Run(g, nil, 9)
	if err != nil {
		t.Fatalf("catalog graph does not execute: %v", err)
	}
	if len(vals) != g.Len() {
		t.Fatalf("executed %d of %d nodes", len(vals), g.Len())
	}
}
