package verify

import (
	"magis/internal/graph"
	"magis/internal/ops"
	"magis/internal/tensor"
)

// CatalogGraph builds one valid graph containing at least one node of
// every registered operator kind (ops.Kinds()). It is the shared
// coverage fixture: refexec must execute it, codegen must emit it, and
// the arena checker must plan and verify it. Kept as disconnected
// islands so each operator family stays at its natural rank.
func CatalogGraph() *graph.Graph {
	dt := tensor.F32
	g := graph.New()

	// Spatial island: conv, batchnorm, pooling, upsampling and their
	// backwards, all around a 1×2×4×4 activation.
	xs := tensor.S(1, 2, 4, 4)
	ws := tensor.S(3, 2, 3, 3)
	ys := tensor.S(1, 3, 4, 4)
	x := g.Add(ops.NewInput(xs, dt))
	w := g.Add(ops.NewParam(ws, dt))
	conv := g.Add(ops.NewConv2d(xs, ws, 1, 1, dt), x, w)
	gammaBN := g.Add(ops.NewParam(tensor.S(3), dt))
	bn := g.Add(ops.NewBatchNorm2d(ys, tensor.S(3), dt), conv, gammaBN)
	pool := g.Add(ops.NewPool2d(ys, "max", 2, 2, dt), bn)
	up := g.Add(ops.NewUpsample2d(tensor.S(1, 3, 2, 2), 2, dt), pool)
	g.Add(ops.NewConvBwdData(ys, ws, xs, 1, 1, dt), up, w)
	g.Add(ops.NewConvBwdFilter(xs, ys, ws, 1, 1, dt), x, up)
	g.Add(ops.NewPoolBwd(ys, tensor.S(1, 3, 2, 2), "max", 2, 2, dt), bn, pool)
	g.Add(ops.NewUpsampleBwd(tensor.S(1, 3, 2, 2), ys, 2, dt), up)
	g.Add(ops.NewBatchNorm2dBwdX(ys, ys, dt), conv, up)
	g.Add(ops.NewBatchNorm2dBwdP(ys, ys, dt), conv, up)

	// Dense island: matmul/linear, bias, softmax, layernorm and their
	// backwards on [2,4] activations.
	x2 := g.Add(ops.NewInput(tensor.S(2, 3), dt))
	w2 := g.Add(ops.NewParam(tensor.S(3, 4), dt))
	mm := g.Add(ops.NewMatmul(tensor.S(2, 3), tensor.S(3, 4), false, false, dt), x2, w2)
	lin := g.Add(ops.NewLinear(tensor.S(2, 3), tensor.S(3, 4), false, dt), x2, w2)
	g.Add(ops.NewLinearBwdW(tensor.S(2, 3), tensor.S(2, 4), dt), x2, mm)
	bias := g.Add(ops.NewParam(tensor.S(4), dt))
	ba := g.Add(ops.NewBiasAdd(tensor.S(2, 4), tensor.S(4), dt), lin, bias)
	g.Add(ops.NewBiasBwd(tensor.S(2, 4), dt), ba)
	sm := g.Add(ops.NewSoftmax(tensor.S(2, 4), 2, dt), ba)
	g.Add(ops.NewSoftmaxBwd(tensor.S(2, 4), tensor.S(2, 4), 2, dt), sm, mm)
	gamma := g.Add(ops.NewParam(tensor.S(4), dt))
	beta := g.Add(ops.NewParam(tensor.S(4), dt))
	g.Add(ops.NewLayerNorm(tensor.S(2, 4), tensor.S(4), tensor.S(4), dt), ba, gamma, beta)
	g.Add(ops.NewLayerNormBwdX(tensor.S(2, 4), tensor.S(2, 4), tensor.S(4), dt), ba, mm, gamma)
	g.Add(ops.NewLayerNormBwdParams(tensor.S(2, 4), tensor.S(2, 4), dt), ba, mm)
	bx := g.Add(ops.NewInput(tensor.S(2, 2, 3), dt))
	by := g.Add(ops.NewInput(tensor.S(2, 3, 2), dt))
	g.Add(ops.NewBatchMatmul(tensor.S(2, 2, 3), tensor.S(2, 3, 2), false, false, dt), bx, by)

	// Elementwise island: the six unaries, their backwards, and the
	// binaries, all on [2,3].
	es := tensor.S(2, 3)
	e := g.Add(ops.NewInput(es, dt))
	relu := g.Add(ops.NewReLU(es, dt), e)
	gelu := g.Add(ops.NewGELU(es, dt), e)
	tnh := g.Add(ops.NewTanh(es, dt), e)
	sig := g.Add(ops.NewSigmoid(es, dt), e)
	drp := g.Add(ops.NewDropout(es, dt), e)
	scl := g.Add(ops.NewScale(es, dt), e)
	g.Add(ops.NewEltwiseBwd("ReLUBwd", es, es, dt, 2), e, relu)
	g.Add(ops.NewEltwiseBwd("GELUBwd", es, es, dt, 2), e, gelu)
	g.Add(ops.NewEltwiseBwd("TanhBwd", es, es, dt, 2), tnh, relu)
	g.Add(ops.NewEltwiseBwd("SigmoidBwd", es, es, dt, 2), sig, relu)
	g.Add(ops.NewEltwiseBwd("DropoutBwd", es, es, dt, 2), drp, relu)
	g.Add(ops.NewEltwiseBwd("ScaleBwd", es, es, dt, 2), scl, relu)
	add := g.Add(ops.NewAdd(es, es, dt), relu, gelu)
	g.Add(ops.NewMul(es, es, dt), tnh, sig)

	// Layout island: reduce/broadcast, slice/concat/pad, transpose,
	// reshape.
	r := g.Add(ops.NewInput(tensor.S(2, 4), dt))
	red := g.Add(ops.NewReduce("Mean", tensor.S(2, 4), 2, dt), r)
	g.Add(ops.NewBroadcast(tensor.S(2), 2, 4, dt), red)
	s1 := g.Add(ops.NewSlice(tensor.S(2, 4), 2, 0, 2, dt), r)
	s2 := g.Add(ops.NewSlice(tensor.S(2, 4), 2, 2, 2, dt), r)
	g.Add(ops.NewConcat([]tensor.Shape{tensor.S(2, 2), tensor.S(2, 2)}, 2, dt), s1, s2)
	g.Add(ops.NewPad(tensor.S(2, 2), 2, 1, 4, dt), s1)
	g.Add(ops.NewTranspose(tensor.S(2, 4), []int{1, 0}, dt), r)
	g.Add(ops.NewReshape(tensor.S(2, 4), tensor.S(4, 2), dt), r)

	// Attention-head reshapes.
	h := g.Add(ops.NewInput(tensor.S(2, 4, 6), dt))
	split := g.Add(ops.NewSplitHeads(tensor.S(2, 4, 6), 2, dt), h)
	g.Add(ops.NewMergeHeads(tensor.S(2, 2, 4, 3), dt), split)

	// Index island: embedding and cross-entropy with their backwards.
	ids := g.Add(ops.NewInput(tensor.S(3), dt))
	table := g.Add(ops.NewParam(tensor.S(5, 4), dt))
	emb := g.Add(ops.NewEmbedding(tensor.S(3), tensor.S(5, 4), dt), ids, table)
	g.Add(ops.NewEmbeddingBwd(tensor.S(3), tensor.S(3, 4), tensor.S(5, 4), dt), ids, emb)
	logits := g.Add(ops.NewInput(tensor.S(2, 5), dt))
	labels := g.Add(ops.NewInput(tensor.S(2), dt))
	g.Add(ops.NewCrossEntropy(tensor.S(2, 5), tensor.S(2), dt), logits, labels)
	g.Add(ops.NewCrossEntropyBwd(tensor.S(2, 5), tensor.S(2), dt), logits, labels)

	// Optimizer step and host transfer.
	w3 := g.Add(ops.NewParam(es, dt))
	gw := g.Add(ops.NewInput(es, dt))
	g.Add(ops.NewApplySGD(es, es, dt), w3, gw)
	st := g.Add(ops.NewStore(es, dt), add)
	ld := g.Add(ops.NewLoad(es, dt), st)
	g.Add(ops.NewTanh(es, dt), ld)

	return g
}
