package plancache

// Single-flight request coalescing: when N identical requests miss the
// cache at once, only the first (the leader) runs the search; the rest
// wait on its Flight and share the result. The cache's own Put/Get are
// untouched — a Flight is purely an in-memory rendezvous keyed by the
// same key the on-disk entry would use.

// Flight is one in-progress computation for a cache key. The leader
// computes, calls Finish exactly once, and every waiter unblocks with the
// shared result.
type Flight struct {
	c    *Cache
	key  string
	done chan struct{}
	val  any
	err  error
}

// Join returns the flight for key and whether the caller leads it. The
// leader must eventually call Finish — deferring it around the
// computation, so even a panicking search releases the waiters.
func (c *Cache) Join(key string) (*Flight, bool) {
	c.fmu.Lock()
	defer c.fmu.Unlock()
	if f, ok := c.flights[key]; ok {
		c.flightsShared.Add(1)
		return f, false
	}
	f := &Flight{c: c, key: key, done: make(chan struct{})}
	c.flights[key] = f
	return f, true
}

// Finish publishes the leader's result and releases all waiters. It is
// idempotent only in the sense that the flight is deregistered first, so
// a duplicate call on a stale Flight cannot corrupt a newer one.
func (f *Flight) Finish(val any, err error) {
	f.c.fmu.Lock()
	if f.c.flights[f.key] == f {
		delete(f.c.flights, f.key)
	}
	f.c.fmu.Unlock()
	f.val, f.err = val, err
	close(f.done)
}

// Done is closed once the leader finished; read the result afterwards
// with Result.
func (f *Flight) Done() <-chan struct{} { return f.done }

// Result returns the leader's outcome. Only valid after Done is closed.
func (f *Flight) Result() (any, error) { return f.val, f.err }
