package plancache_test

// Storage-fault recovery tests (external package so they can drive the
// cache through internal/errfs): under every injected write-path fault
// class a Put fails with ErrStorage, the cache stays consistent — a
// subsequent Get is a miss or a healthy hit, never a torn plan — and a
// reopen self-heals whatever debris the fault left behind. These extend
// the PR 6 quarantine tests from corrupt-at-rest to corrupt-in-flight.

import (
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"magis/internal/cost"
	"magis/internal/errfs"
	"magis/internal/fsatomic"
	"magis/internal/graph"
	"magis/internal/models"
	"magis/internal/opt"
	"magis/internal/plancache"
)

func storageTestOptions() opt.Options {
	return opt.Options{
		Mode:            opt.MemoryUnderLatency,
		TimeBudget:      30 * time.Second,
		MaxIterations:   8,
		Workers:         1,
		CheckInvariants: true,
	}
}

type storageRig struct {
	model *cost.Model
	g     *graph.Graph
	fp    plancache.Fingerprint
	best  *opt.State
}

func newStorageRig(t *testing.T) *storageRig {
	t.Helper()
	model := cost.NewModel(cost.RTX3090())
	w := models.MLP(4, 8, 8, 4, 1)
	res, err := opt.Optimize(w.G, model, storageTestOptions())
	if err != nil {
		t.Fatal(err)
	}
	return &storageRig{
		model: model,
		g:     w.G,
		fp:    plancache.FingerprintFor(model, storageTestOptions()),
		best:  res.Best,
	}
}

func openFaulty(t *testing.T, dir string, fsys fsatomic.FS) *plancache.Cache {
	t.Helper()
	c, err := plancache.Open(plancache.Config{Dir: dir, Logf: t.Logf, FS: fsys})
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// TestPutFaultsDegradeToConsistentMiss drives Put through each injected
// fault class: the error matches ErrStorage (distinct from ErrRejected),
// the lookup stays a miss, and a later un-faulted Put succeeds.
func TestPutFaultsDegradeToConsistentMiss(t *testing.T) {
	classes := []errfs.Class{errfs.ENOSPC, errfs.ShortWrite, errfs.SyncFail, errfs.RenameFail, errfs.FDExhaust}
	for _, cl := range classes {
		t.Run(cl.String(), func(t *testing.T) {
			rig := newStorageRig(t)
			dir := t.TempDir()
			// After:2 skips the FDExhaust hits Open's own scan would eat.
			rule := errfs.Rule{Class: cl, After: 1}
			fsys := errfs.New(nil, 0, rule)
			c := openFaulty(t, dir, fsys)

			err := c.Put(rig.g, rig.fp, rig.best)
			if err == nil {
				t.Fatalf("%s: Put succeeded despite fault", cl)
			}
			if !errors.Is(err, plancache.ErrStorage) {
				t.Fatalf("%s: Put error %v does not match ErrStorage", cl, err)
			}
			if errors.Is(err, plancache.ErrRejected) {
				t.Fatalf("%s: storage fault misreported as verification rejection", cl)
			}
			if _, ok := c.Get(rig.g, rig.fp); ok {
				t.Fatalf("%s: hit after failed Put — torn plan served", cl)
			}
			if s := c.Stats(); s.PutErrors != 1 || s.Entries != 0 {
				t.Fatalf("%s: stats %+v after failed Put", cl, s)
			}
			// The fault is spent; the same cache self-heals to a working Put.
			if err := c.Put(rig.g, rig.fp, rig.best); err != nil {
				t.Fatalf("%s: Put after fault cleared: %v", cl, err)
			}
			if _, ok := c.Get(rig.g, rig.fp); !ok {
				t.Fatalf("%s: miss after healthy Put", cl)
			}
		})
	}
}

// TestEnospcMidRenameLeavesNoDebris: ENOSPC on the write plus a failing
// cleanup (the disk-full worst case: even Remove fails) leaves a temp
// file behind; reopening the cache sweeps it and serves consistently.
func TestEnospcMidRenameLeavesNoDebris(t *testing.T) {
	rig := newStorageRig(t)
	dir := t.TempDir()
	fsys := errfs.New(nil, 0,
		errfs.Rule{Class: errfs.RenameFail, After: 1},
		errfs.Rule{Class: errfs.RemoveFail, After: 1},
	)
	c := openFaulty(t, dir, fsys)
	if err := c.Put(rig.g, rig.fp, rig.best); err == nil {
		t.Fatal("Put survived rename fault")
	}
	temps := countCacheTemps(t, dir)
	if temps != 1 {
		t.Fatalf("expected 1 orphaned temp (cleanup faulted too), got %d", temps)
	}
	// Reopen with a healthy FS: the startup sweep clears the debris and
	// the cache state is an ordinary miss.
	c2 := openFaulty(t, dir, nil)
	if n := countCacheTemps(t, dir); n != 0 {
		t.Fatalf("%d temp files survive reopen", n)
	}
	if c2.Len() != 0 {
		t.Fatalf("reopened cache indexed %d entries from debris", c2.Len())
	}
	if _, ok := c2.Get(rig.g, rig.fp); ok {
		t.Fatal("hit served from a torn write")
	}
	if err := c2.Put(rig.g, rig.fp, rig.best); err != nil {
		t.Fatalf("healthy Put after recovery: %v", err)
	}
}

// TestPartialWriteNeverServesTornPlan: a short write that somehow gets
// published (simulated by truncating the entry file in place, the
// at-rest equivalent) is quarantined on lookup — a miss, never a torn
// plan — and the quarantined file leaves the main dir consistent.
func TestPartialWriteNeverServesTornPlan(t *testing.T) {
	rig := newStorageRig(t)
	dir := t.TempDir()
	c := openFaulty(t, dir, nil)
	if err := c.Put(rig.g, rig.fp, rig.best); err != nil {
		t.Fatal(err)
	}
	// Truncate the published entry to half: the sealed envelope's digest
	// no longer matches.
	ents, _ := os.ReadDir(dir)
	var entry string
	for _, e := range ents {
		if strings.HasSuffix(e.Name(), ".plan") {
			entry = filepath.Join(dir, e.Name())
		}
	}
	if entry == "" {
		t.Fatal("no entry file written")
	}
	data, err := os.ReadFile(entry)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(entry, data[:len(data)/2], 0o644); err != nil {
		t.Fatal(err)
	}
	if _, ok := c.Get(rig.g, rig.fp); ok {
		t.Fatal("truncated entry served as a hit")
	}
	if s := c.Stats(); s.Quarantined != 1 {
		t.Fatalf("truncated entry not quarantined: %+v", s)
	}
	if _, err := os.Stat(entry); !os.IsNotExist(err) {
		t.Fatal("truncated entry still in the main dir")
	}
	// Self-heal: the next Put re-admits and serves.
	if err := c.Put(rig.g, rig.fp, rig.best); err != nil {
		t.Fatal(err)
	}
	if _, ok := c.Get(rig.g, rig.fp); !ok {
		t.Fatal("miss after re-admission")
	}
}

// TestTransientVsPersistentClassification: serve layers retry transient
// faults and degrade on persistent ones; the Put error carries enough to
// tell them apart.
func TestTransientVsPersistentClassification(t *testing.T) {
	rig := newStorageRig(t)

	fd := errfs.New(nil, 0, errfs.Rule{Class: errfs.FDExhaust, After: 1})
	err := openFaulty(t, t.TempDir(), fd).Put(rig.g, rig.fp, rig.best)
	if err == nil || !fsatomic.Transient(err) {
		t.Fatalf("fd-exhaustion Put should classify transient: %v", err)
	}

	full := errfs.New(nil, 0, errfs.Rule{Class: errfs.ENOSPC, After: 1})
	err = openFaulty(t, t.TempDir(), full).Put(rig.g, rig.fp, rig.best)
	if err == nil || fsatomic.Transient(err) {
		t.Fatalf("disk-full Put should classify persistent: %v", err)
	}
	if !errors.Is(err, fsatomic.ErrDiskFull) {
		t.Fatalf("disk-full Put lost its sentinel: %v", err)
	}
}

func countCacheTemps(t *testing.T, dir string) int {
	t.Helper()
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	n := 0
	for _, e := range ents {
		if !e.IsDir() && fsatomic.IsTemp(e.Name()) {
			n++
		}
	}
	return n
}
