package plancache

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"magis/internal/cost"
	"magis/internal/graph"
	"magis/internal/models"
	"magis/internal/opt"
)

func testOptions() opt.Options {
	return opt.Options{
		Mode:            opt.MemoryUnderLatency,
		TimeBudget:      30 * time.Second,
		MaxIterations:   8,
		Workers:         1,
		CheckInvariants: true,
	}
}

// optimized runs a quick search over w and returns its best state.
func optimized(t *testing.T, g *graph.Graph, model *cost.Model) *opt.State {
	t.Helper()
	res, err := opt.Optimize(g, model, testOptions())
	if err != nil {
		t.Fatal(err)
	}
	return res.Best
}

func openCache(t *testing.T, dir string, mut ...func(*Config)) *Cache {
	t.Helper()
	cfg := Config{Dir: dir, Logf: t.Logf}
	for _, m := range mut {
		m(&cfg)
	}
	c, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestPutGetRoundTrip(t *testing.T) {
	model := cost.NewModel(cost.RTX3090())
	w := models.MLP(4, 8, 8, 4, 1)
	fp := FingerprintFor(model, testOptions())
	dir := t.TempDir()

	c := openCache(t, dir)
	if _, ok := c.Get(w.G, fp); ok {
		t.Fatal("hit on empty cache")
	}
	best := optimized(t, w.G, model)
	if err := c.Put(w.G, fp, best); err != nil {
		t.Fatalf("Put of a verified plan: %v", err)
	}
	h, ok := c.Get(w.G, fp)
	if !ok {
		t.Fatal("exact request missed after Put")
	}
	if h.PeakMem != best.PeakMem {
		t.Errorf("hit peak %d, want %d", h.PeakMem, best.PeakMem)
	}
	seed, err := h.Plan.Seed()
	if err != nil || seed.G == nil {
		t.Fatalf("cached plan does not replay: %v", err)
	}

	// Another fingerprint (tighter budget) must not share the entry.
	o2 := testOptions()
	o2.MaxIterations = 3
	if _, ok := c.Get(w.G, FingerprintFor(model, o2)); ok {
		t.Error("hit across differing fingerprints")
	}

	// Entries persist: a fresh Open over the same dir serves the plan.
	c2 := openCache(t, dir)
	if c2.Len() != 1 {
		t.Fatalf("reopened cache has %d entries, want 1", c2.Len())
	}
	if _, ok := c2.Get(w.G, fp); !ok {
		t.Error("reopened cache missed a healthy entry")
	}
	if s := c2.Stats(); s.Quarantined != 0 {
		t.Errorf("healthy reopen quarantined %d entries", s.Quarantined)
	}
}

// TestCollisionDegradesToMiss pins the central safety property: when two
// non-identical graphs are forced onto the same cache key, lookups answer
// with a miss — never with the other graph's plan. The two MLP widths
// share a topology, so only the full canonical comparison can tell them
// apart.
func TestCollisionDegradesToMiss(t *testing.T) {
	model := cost.NewModel(cost.RTX3090())
	a := models.MLP(4, 8, 8, 4, 1)
	b := models.MLP(4, 16, 16, 4, 1)
	fp := FingerprintFor(model, testOptions())

	c := openCache(t, t.TempDir(), func(cfg *Config) {
		cfg.HashFunc = func(*graph.Graph) uint64 { return 0xdeadbeef }
	})
	if c.Key(a.G, fp) != c.Key(b.G, fp) {
		t.Fatal("test premise broken: keys must collide")
	}
	if err := c.Put(a.G, fp, optimized(t, a.G, model)); err != nil {
		t.Fatal(err)
	}
	if h, ok := c.Get(b.G, fp); ok {
		t.Fatalf("collision served a wrong plan: %+v", h)
	}
	if s := c.Stats(); s.Collisions == 0 {
		t.Error("collision not counted")
	}
	// The colliding entry is still valid for its own graph.
	if _, ok := c.Get(a.G, fp); !ok {
		t.Error("original graph no longer hits after collision probe")
	}
}

// TestScanQuarantinesCorruption: every flavor of on-disk damage — flipped
// byte, truncation, zero-byte file, garbage, an entry renamed to another
// key — is moved to quarantine on Open while healthy entries keep serving.
func TestScanQuarantinesCorruption(t *testing.T) {
	model := cost.NewModel(cost.RTX3090())
	w := models.MLP(4, 8, 8, 4, 1)
	fp := FingerprintFor(model, testOptions())
	dir := t.TempDir()

	c := openCache(t, dir)
	if err := c.Put(w.G, fp, optimized(t, w.G, model)); err != nil {
		t.Fatal(err)
	}
	key := c.Key(w.G, fp)
	healthy := filepath.Join(dir, key+suffix)
	raw, err := os.ReadFile(healthy)
	if err != nil {
		t.Fatal(err)
	}

	// Flipped byte deep in the payload.
	flipped := append([]byte(nil), raw...)
	flipped[len(flipped)/2] ^= 0x40
	writeEntry(t, dir, "1111111111111111-0000000000000000", flipped)
	// Torn write (truncation that bypassed the atomic path).
	writeEntry(t, dir, "2222222222222222-0000000000000000", raw[:len(raw)/3])
	// Zero-byte file.
	writeEntry(t, dir, "3333333333333333-0000000000000000", nil)
	// Garbage.
	writeEntry(t, dir, "4444444444444444-0000000000000000", []byte("\x00\xffnot a cache entry"))
	// A healthy entry renamed to a different key (fingerprint flip).
	writeEntry(t, dir, "5555555555555555-0000000000000000", raw)

	c2 := openCache(t, dir)
	if got := c2.Stats().Quarantined; got != 5 {
		t.Errorf("quarantined %d entries, want 5", got)
	}
	if c2.Len() != 1 {
		t.Errorf("indexed %d entries, want only the healthy one", c2.Len())
	}
	if _, ok := c2.Get(w.G, fp); !ok {
		t.Error("healthy entry lost in the sweep")
	}
	qents, _ := os.ReadDir(c2.QuarantinePath())
	if len(qents) != 5 {
		t.Errorf("quarantine dir holds %d files, want 5", len(qents))
	}
	ents, _ := os.ReadDir(dir)
	for _, e := range ents {
		if !e.IsDir() && e.Name() != key+suffix {
			t.Errorf("damaged file %s left in the serving dir", e.Name())
		}
	}
}

func writeEntry(t *testing.T, dir, key string, data []byte) {
	t.Helper()
	if err := os.WriteFile(filepath.Join(dir, key+suffix), data, 0o644); err != nil {
		t.Fatal(err)
	}
}

// TestGetQuarantinesLiveCorruption: damage that lands after the startup
// scan (bit rot, an operator's stray edit) is caught by the read-back on
// the hit path: the lookup misses and the file is quarantined.
func TestGetQuarantinesLiveCorruption(t *testing.T) {
	model := cost.NewModel(cost.RTX3090())
	w := models.MLP(4, 8, 8, 4, 1)
	fp := FingerprintFor(model, testOptions())
	dir := t.TempDir()

	c := openCache(t, dir)
	if err := c.Put(w.G, fp, optimized(t, w.G, model)); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, c.Key(w.G, fp)+suffix)
	raw, _ := os.ReadFile(path)
	raw[len(raw)-2] ^= 0x01
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}

	if _, ok := c.Get(w.G, fp); ok {
		t.Fatal("tampered entry served as a hit")
	}
	if _, err := os.Stat(path); !os.IsNotExist(err) {
		t.Error("tampered entry still in the serving dir")
	}
	if s := c.Stats(); s.Quarantined != 1 || s.Entries != 0 {
		t.Errorf("stats after live quarantine: %+v", s)
	}
	// And the miss is recoverable: a fresh Put re-admits.
	if err := c.Put(w.G, fp, optimized(t, w.G, model)); err != nil {
		t.Fatal(err)
	}
	if _, ok := c.Get(w.G, fp); !ok {
		t.Error("cache did not recover after quarantine + re-Put")
	}
}

// TestPutRejectsUnverifiable: the admission gate. A "best state" whose
// graph does not compute the input's function (here: a different hidden
// width) must never be admitted.
func TestPutRejectsUnverifiable(t *testing.T) {
	model := cost.NewModel(cost.RTX3090())
	w := models.MLP(4, 8, 8, 4, 1)
	other := models.MLP(4, 16, 16, 4, 1)
	fp := FingerprintFor(model, testOptions())

	c := openCache(t, t.TempDir())
	err := c.Put(w.G, fp, &opt.State{G: other.G.Clone()})
	if !errors.Is(err, ErrRejected) {
		t.Fatalf("Put of a wrong plan: err = %v, want ErrRejected", err)
	}
	if c.Len() != 0 {
		t.Error("rejected plan reached the index")
	}
	ents, _ := os.ReadDir(c.Dir())
	for _, e := range ents {
		if strings.HasSuffix(e.Name(), suffix) {
			t.Errorf("rejected plan reached disk: %s", e.Name())
		}
	}
	if s := c.Stats(); s.PutRejected != 1 {
		t.Errorf("PutRejected = %d, want 1", s.PutRejected)
	}
}

// TestNearMiss: entries with the same topology on the same device are
// offered as warm-start seeds — SameGraph when only the budget differed,
// plain topology match when the batch size did.
func TestNearMiss(t *testing.T) {
	model := cost.NewModel(cost.RTX3090())
	small := models.MLP(4, 8, 8, 4, 1)
	big := models.MLP(16, 8, 8, 4, 1)
	fp := FingerprintFor(model, testOptions())
	c := openCache(t, t.TempDir())
	if err := c.Put(small.G, fp, optimized(t, small.G, model)); err != nil {
		t.Fatal(err)
	}

	// Same graph, different budget: the full plan replays.
	o2 := testOptions()
	o2.MaxIterations = 3
	nh := c.Near(small.G, FingerprintFor(model, o2))
	if len(nh) != 1 || !nh[0].SameGraph {
		t.Fatalf("Near(same graph, other budget) = %+v, want one SameGraph hit", nh)
	}

	// Different batch: topology matches, graph does not.
	nh = c.Near(big.G, fp)
	if len(nh) != 1 || nh[0].SameGraph {
		t.Fatalf("Near(other batch) = %+v, want one topology-only hit", nh)
	}
	if seed, err := nh[0].Plan.SeedFor(big.G); err != nil || seed == nil {
		t.Fatalf("near-miss plan does not replay onto the bigger batch: %v", err)
	}

	// A different device must not feed warm starts.
	fpOther := fp
	fpOther.Device = "other-device"
	if nh := c.Near(big.G, fpOther); len(nh) != 0 {
		t.Errorf("Near across devices = %+v, want none", nh)
	}
}

func TestEviction(t *testing.T) {
	model := cost.NewModel(cost.RTX3090())
	fp := FingerprintFor(model, testOptions())
	c := openCache(t, t.TempDir(), func(cfg *Config) { cfg.MaxEntries = 2 })
	ws := []*models.Workload{
		models.MLP(4, 8, 8, 4, 1),
		models.MLP(8, 8, 8, 4, 1),
		models.MLP(16, 8, 8, 4, 1),
	}
	for _, w := range ws {
		if err := c.Put(w.G, fp, optimized(t, w.G, model)); err != nil {
			t.Fatal(err)
		}
	}
	if c.Len() != 2 {
		t.Fatalf("cache holds %d entries, want 2 after eviction", c.Len())
	}
	if s := c.Stats(); s.Evictions != 1 {
		t.Errorf("Evictions = %d, want 1", s.Evictions)
	}
	// The newest entries survive.
	if _, ok := c.Get(ws[2].G, fp); !ok {
		t.Error("newest entry evicted")
	}
}

// TestSingleFlightStampede: N concurrent requests for one key produce
// exactly one leader; every follower observes the leader's result. Run
// with -race in CI.
func TestSingleFlightStampede(t *testing.T) {
	c := openCache(t, t.TempDir())
	const n = 16
	var (
		leaders  int32
		leaderMu sync.Mutex
		wg       sync.WaitGroup
		results  [n]any
	)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			f, leader := c.Join("stampede-key")
			if leader {
				leaderMu.Lock()
				leaders++
				leaderMu.Unlock()
				time.Sleep(10 * time.Millisecond) // let followers pile up
				f.Finish("the-plan", nil)
			}
			<-f.Done()
			v, err := f.Result()
			if err != nil {
				t.Errorf("waiter %d: %v", i, err)
			}
			results[i] = v
		}(i)
	}
	wg.Wait()
	if leaders != 1 {
		t.Fatalf("%d leaders, want exactly 1", leaders)
	}
	for i, v := range results {
		if v != "the-plan" {
			t.Errorf("waiter %d got %v", i, v)
		}
	}
	if s := c.Stats(); s.FlightsShared != n-1 {
		t.Errorf("FlightsShared = %d, want %d", s.FlightsShared, n-1)
	}
	// The flight is deregistered: a new Join leads again.
	if _, leader := c.Join("stampede-key"); !leader {
		t.Error("finished flight still registered")
	}
}

// TestQuarantineCap: a junk-flood of corrupt entries must not grow
// quarantine/ without bound — the oldest quarantined files are swept past
// MaxQuarantine and the eviction is counted.
func TestQuarantineCap(t *testing.T) {
	dir := t.TempDir()
	const cap = 4
	const junk = 11
	for i := 0; i < junk; i++ {
		name := fmt.Sprintf("%016x-0000000000000000", i+1)
		writeEntry(t, dir, name, []byte("junk entry"))
		// Distinct, ordered mtimes so "oldest-first" is well defined.
		mt := time.Now().Add(time.Duration(i-junk) * time.Hour)
		if err := os.Chtimes(filepath.Join(dir, name+suffix), mt, mt); err != nil {
			t.Fatal(err)
		}
	}

	c := openCache(t, dir, func(cfg *Config) { cfg.MaxQuarantine = cap })
	s := c.Stats()
	if s.Quarantined != junk {
		t.Fatalf("quarantined %d, want %d", s.Quarantined, junk)
	}
	if s.QuarantineEvicted != junk-cap {
		t.Errorf("QuarantineEvicted = %d, want %d", s.QuarantineEvicted, junk-cap)
	}
	qents, _ := os.ReadDir(c.QuarantinePath())
	if len(qents) != cap {
		t.Fatalf("quarantine dir holds %d files, want %d", len(qents), cap)
	}
	// The survivors are the newest junk (quarantine keeps the freshest
	// evidence for the operator).
	for _, e := range qents {
		var id int
		if _, err := fmt.Sscanf(e.Name(), "%016x-", &id); err != nil {
			t.Fatalf("unexpected quarantine file %s", e.Name())
		}
		if id <= junk-cap {
			t.Errorf("old junk %s survived the sweep", e.Name())
		}
	}

	// Live quarantines keep respecting the cap: corrupting a healthy
	// entry and hitting it sends one more file through quarantine, and
	// the directory still holds at most cap files.
	model := cost.NewModel(cost.RTX3090())
	w := models.MLP(4, 8, 8, 4, 1)
	fp := FingerprintFor(model, testOptions())
	if err := c.Put(w.G, fp, optimized(t, w.G, model)); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, c.Key(w.G, fp)+suffix)
	raw, _ := os.ReadFile(path)
	raw[len(raw)-2] ^= 0x01
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, ok := c.Get(w.G, fp); ok {
		t.Fatal("tampered entry served")
	}
	qents, _ = os.ReadDir(c.QuarantinePath())
	if len(qents) > cap {
		t.Errorf("quarantine grew past the cap: %d files", len(qents))
	}
}

// TestProbeClasses: the index-only admission probe distinguishes exact
// hits, same-topology warm candidates, and cold requests without touching
// disk or moving the hit/miss counters.
func TestProbeClasses(t *testing.T) {
	model := cost.NewModel(cost.RTX3090())
	small := models.MLP(4, 8, 8, 4, 1)
	big := models.MLP(16, 8, 8, 4, 1)
	deep := models.MLP(4, 8, 8, 4, 3)
	fp := FingerprintFor(model, testOptions())

	c := openCache(t, t.TempDir())
	probe := func(w *models.Workload, f Fingerprint) Class {
		return c.Probe(w.G.WLHash(), TopoHash(w.G), f)
	}
	if got := probe(small, fp); got != ClassCold {
		t.Fatalf("empty cache probe = %v, want cold", got)
	}
	if err := c.Put(small.G, fp, optimized(t, small.G, model)); err != nil {
		t.Fatal(err)
	}
	if got := probe(small, fp); got != ClassHit {
		t.Errorf("exact probe = %v, want hit", got)
	}
	// Same graph, different budget: warm (the entry seeds a warm start).
	o2 := testOptions()
	o2.MaxIterations = 3
	if got := probe(small, FingerprintFor(model, o2)); got != ClassWarm {
		t.Errorf("other-budget probe = %v, want warm", got)
	}
	// Same topology, different batch: warm.
	if got := probe(big, fp); got != ClassWarm {
		t.Errorf("other-batch probe = %v, want warm", got)
	}
	// Different topology: cold. Different device: cold.
	if got := probe(deep, fp); got != ClassCold {
		t.Errorf("other-topology probe = %v, want cold", got)
	}
	fpOther := fp
	fpOther.Device = "other-device"
	if got := probe(big, fpOther); got != ClassCold {
		t.Errorf("other-device probe = %v, want cold", got)
	}
	// Probing is free: no hit/miss stats movement.
	if s := c.Stats(); s.Hits != 0 || s.Misses != 0 {
		t.Errorf("probe moved hit/miss counters: %+v", s)
	}
	// Labels for metrics.
	if ClassHit.String() != "hit" || ClassWarm.String() != "warm" || ClassCold.String() != "cold" {
		t.Error("class labels changed; metrics names depend on them")
	}
}
