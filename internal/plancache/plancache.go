// Package plancache is the self-healing persistent plan cache in front of
// the optimization service: optimized plans that passed numeric
// verification are persisted, keyed by the input graph's structural hash
// plus a device/budget fingerprint, and served back to identical requests
// without re-running the search.
//
// Safety comes before hit rate, in three layers:
//
//   - Admission gating: Put re-materializes the plan and runs the
//     internal/verify pipeline against the input graph. A plan that fails
//     verification never enters the cache, so a hit never needs to re-prove
//     correctness at serve time.
//   - Tamper evidence: entries are sealed envelopes (internal/fsatomic)
//     with a magic string, format version, and SHA-256 digest, written
//     atomically. Any entry that fails to read back — truncated, bit-
//     flipped, wrong version, renamed to a different key — is moved to a
//     quarantine directory and the lookup degrades to a miss.
//   - Collision immunity: the WL hash is a filter, not the proof. Every hit
//     re-compares the full canonical encoding of the request graph against
//     the entry's recorded input; a forced or accidental hash collision
//     degrades to a miss, never to serving a plan for a different graph.
//
// Near misses — same topology on the same device at a different shape or
// budget — are surfaced separately (Near) so the caller can warm-start a
// fresh search from the cached plan instead of starting cold.
package plancache

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"magis/internal/cost"
	"magis/internal/fsatomic"
	"magis/internal/ftree"
	"magis/internal/graph"
	"magis/internal/opt"
	"magis/internal/verify"
)

const (
	// Magic and Version frame every cache entry on disk.
	Magic   = "magis-plan"
	Version = 1
	// suffix is the cache entry filename extension.
	suffix = ".plan"
	// quarantineDir is the subdirectory untrusted entries are moved to.
	quarantineDir = "quarantine"
)

// ErrRejected marks a Put whose plan failed the verification gate.
var ErrRejected = errors.New("plancache: plan failed verification, not admitted")

// ErrStorage marks a Put that passed verification but could not be
// persisted (full disk, failed rename, fd exhaustion). The cache on disk
// is untouched; servers treat this as a storage-health signal, distinct
// from a rejected plan. Check fsatomic.Transient(err) to decide between
// retry and degrade.
var ErrStorage = errors.New("plancache: storage failure")

// Fingerprint captures everything besides the input graph that a plan's
// validity or quality depends on: the device it was costed for and the
// search configuration that produced it. Two requests with equal graphs
// but different fingerprints must not share an exact cache entry (a plan
// tuned for a 24 GiB budget is not the answer to an 8 GiB one).
type Fingerprint struct {
	Device           string `json:"device"`
	Mode             int    `json:"mode"`
	MemLimit         int64  `json:"mem_limit,omitempty"`
	LatencyLimitBits uint64 `json:"latency_limit_bits,omitempty"`
	BudgetNs         int64  `json:"budget_ns,omitempty"`
	MaxIterations    int    `json:"max_iterations,omitempty"`
	// MemBudget is the search's soft RSS budget: a governed search can
	// shed frontier states and knobs, so its plan must not answer an
	// ungoverned request (omitempty keeps pre-governor keys stable).
	MemBudget int64 `json:"mem_budget,omitempty"`
}

// FingerprintFor derives the Fingerprint of a request from its cost model
// and search options.
func FingerprintFor(model *cost.Model, o opt.Options) Fingerprint {
	fp := Fingerprint{
		Mode:          int(o.Mode),
		MemLimit:      o.MemLimit,
		BudgetNs:      int64(o.TimeBudget),
		MaxIterations: o.MaxIterations,
		MemBudget:     o.MemBudget,
	}
	if o.LatencyLimit != 0 {
		fp.LatencyLimitBits = math.Float64bits(o.LatencyLimit)
	}
	if model != nil && model.Dev != nil {
		fp.Device = DeviceString(model.Dev)
	}
	return fp
}

// DeviceString renders a device's cost-relevant characteristics into a
// stable identity string. Two devices with the same name but different
// capacities (or a re-tuned cost model) fingerprint differently, so plans
// never leak across hardware revisions.
func DeviceString(d *cost.Device) string {
	return fmt.Sprintf("%s|f%x|m%x|h%x|l%x|c%d|oe%x|ob%x",
		d.Name, math.Float64bits(d.PeakFLOPS), math.Float64bits(d.MemBW),
		math.Float64bits(d.HostBW), math.Float64bits(d.Launch),
		d.Capacity, math.Float64bits(d.OccElems), math.Float64bits(d.OccBytes))
}

// hash64 folds s into an FNV-1a digest seeded by h.
func hash64(h uint64, s string) uint64 {
	if h == 0 {
		h = 14695981039346656037
	}
	for i := 0; i < len(s); i++ {
		h = (h ^ uint64(s[i])) * 1099511628211
	}
	return h
}

// hash returns the fingerprint's 64-bit digest (part of the entry key).
func (f Fingerprint) hash() uint64 {
	b, _ := json.Marshal(f)
	return hash64(0, string(b))
}

// Config configures Open.
type Config struct {
	// Dir is the cache directory; it (and its quarantine subdirectory)
	// are created if absent.
	Dir string
	// Logf receives diagnostic output (default: discard).
	Logf func(format string, args ...any)
	// MaxEntries bounds the cache; the oldest entries are evicted past it
	// (default 4096).
	MaxEntries int
	// MaxQuarantine bounds the quarantine subdirectory; the oldest
	// quarantined files are removed past it so a junk-flood cannot fill
	// the disk (default 64).
	MaxQuarantine int
	// VerifySeed seeds the admission-gate verification inputs (default 1).
	VerifySeed uint64
	// FS is the filesystem the cache persists through; nil means the real
	// OS. Chaos tests inject storage faults here (internal/errfs).
	FS fsatomic.FS
	// HashFunc overrides the structural hash used in entry keys. It
	// exists so tests can force key collisions and prove lookups degrade
	// to misses; production callers leave it nil (graph.WLHash).
	HashFunc func(*graph.Graph) uint64
}

// Stats is a point-in-time snapshot of cache counters.
type Stats struct {
	Entries     int   `json:"entries"`
	Hits        int64 `json:"hits"`
	Misses      int64 `json:"misses"`
	NearHits    int64 `json:"near_hits"`
	Puts        int64 `json:"puts"`
	PutRejected int64 `json:"put_rejected"`
	PutErrors   int64 `json:"put_errors"`
	Quarantined int64 `json:"quarantined"`
	// QuarantineEvicted counts quarantined files removed by the oldest-
	// first sweep that caps quarantine/ growth.
	QuarantineEvicted int64 `json:"quarantine_evicted"`
	Collisions        int64 `json:"collisions"`
	Evictions         int64 `json:"evictions"`
	// FlightsShared counts lookups that joined another request's
	// in-flight search instead of starting their own.
	FlightsShared int64 `json:"flights_shared"`
}

// meta is the in-memory index entry for one on-disk plan.
type meta struct {
	key     string
	topoKey uint64
	added   int64 // unix nanos, eviction order
}

// Cache is a persistent, verification-gated plan cache. All methods are
// safe for concurrent use.
type Cache struct {
	dir           string
	qdir          string
	logf          func(string, ...any)
	maxEntries    int
	maxQuarantine int
	verifySeed    uint64
	hashFn        func(*graph.Graph) uint64
	fsys          fsatomic.FS

	mu      sync.Mutex
	entries map[string]*meta
	topo    map[uint64][]string // topoKey -> entry keys

	fmu     sync.Mutex
	flights map[string]*Flight

	hits, misses, nearHits       atomic.Int64
	puts, putRejected, putErrors atomic.Int64
	quarantined, collisions      atomic.Int64
	evictions, flightsShared     atomic.Int64
	quarantineEvicted            atomic.Int64
}

// entryPayload is the sealed JSON payload of one cache entry.
type entryPayload struct {
	// Key echoes the entry's filename stem. A file renamed to another
	// key — the cheapest way to make the cache lie — fails this check
	// and is quarantined.
	Key         string      `json:"key"`
	WL          uint64      `json:"wl"`
	TopoHash    uint64      `json:"topo"`
	Fingerprint Fingerprint `json:"fp"`
	// Canon is the canonical encoding of the input graph the plan was
	// recorded for; every hit re-compares it against the request.
	Canon json.RawMessage `json:"canon"`
	Plan  *opt.PlanRecord `json:"plan"`
	// PeakMem/LatencyBits are the verified plan's evaluated metrics, so
	// a hit can answer without re-evaluating.
	PeakMem     int64  `json:"peak_mem"`
	LatencyBits uint64 `json:"latency_bits"`
	Verified    bool   `json:"verified"`
}

// Open opens (creating if needed) the cache at cfg.Dir and runs the
// startup scan: every entry is read back through its sealed envelope, and
// entries that are unreadable, checksum-failing, version-mismatched, or
// mis-keyed are moved to the quarantine subdirectory. Open never fails
// because of a bad entry — only because the directory itself is unusable.
func Open(cfg Config) (*Cache, error) {
	if cfg.Dir == "" {
		return nil, errors.New("plancache: empty cache dir")
	}
	c := &Cache{
		dir:           cfg.Dir,
		qdir:          filepath.Join(cfg.Dir, quarantineDir),
		logf:          cfg.Logf,
		maxEntries:    cfg.MaxEntries,
		maxQuarantine: cfg.MaxQuarantine,
		verifySeed:    cfg.VerifySeed,
		hashFn:        cfg.HashFunc,
		fsys:          fsatomic.Or(cfg.FS),
		entries:       make(map[string]*meta),
		topo:          make(map[uint64][]string),
		flights:       make(map[string]*Flight),
	}
	if c.logf == nil {
		c.logf = func(string, ...any) {}
	}
	if c.maxEntries <= 0 {
		c.maxEntries = 4096
	}
	if c.maxQuarantine <= 0 {
		c.maxQuarantine = 64
	}
	if c.verifySeed == 0 {
		c.verifySeed = 1
	}
	if c.hashFn == nil {
		c.hashFn = (*graph.Graph).WLHash
	}
	if err := c.fsys.MkdirAll(c.qdir, 0o755); err != nil {
		return nil, fmt.Errorf("plancache: %w", err)
	}
	// Clear atomic-write debris a crashed or fault-interrupted writer left
	// behind before indexing, so temp files never accumulate across runs.
	if n := fsatomic.SweepTemps(c.fsys, c.dir); n > 0 {
		c.logf("plancache: swept %d orphaned temp file(s)", n)
	}
	c.scan()
	c.sweepQuarantine()
	return c, nil
}

// Dir returns the cache directory.
func (c *Cache) Dir() string { return c.dir }

// QuarantinePath returns the quarantine directory.
func (c *Cache) QuarantinePath() string { return c.qdir }

// Len returns the number of healthy indexed entries.
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}

// Stats returns a snapshot of the cache counters.
func (c *Cache) Stats() Stats {
	return Stats{
		Entries:           c.Len(),
		Hits:              c.hits.Load(),
		Misses:            c.misses.Load(),
		NearHits:          c.nearHits.Load(),
		Puts:              c.puts.Load(),
		PutRejected:       c.putRejected.Load(),
		PutErrors:         c.putErrors.Load(),
		Quarantined:       c.quarantined.Load(),
		QuarantineEvicted: c.quarantineEvicted.Load(),
		Collisions:        c.collisions.Load(),
		Evictions:         c.evictions.Load(),
		FlightsShared:     c.flightsShared.Load(),
	}
}

// Key returns the cache key for a request: the structural hash of its
// graph joined with the fingerprint digest.
func (c *Cache) Key(g *graph.Graph, fp Fingerprint) string {
	return KeyFromHashes(c.hashFn(g), fp)
}

// KeyFromHashes builds a cache key from a precomputed structural hash.
// Callers that probe the cache repeatedly for the same workload (the
// serving admission path) hash the graph once and reuse it.
func KeyFromHashes(wl uint64, fp Fingerprint) string {
	return fmt.Sprintf("%016x-%016x", wl, fp.hash())
}

// scan indexes every healthy entry and quarantines the rest.
func (c *Cache) scan() {
	ents, err := c.fsys.ReadDir(c.dir)
	if err != nil {
		c.logf("plancache: scan: %v", err)
		return
	}
	healthy := 0
	for _, e := range ents {
		if e.IsDir() || !strings.HasSuffix(e.Name(), suffix) {
			continue
		}
		p, err := c.load(filepath.Join(c.dir, e.Name()))
		if err != nil {
			c.quarantine(e.Name(), err)
			continue
		}
		added := time.Now().UnixNano()
		if info, ierr := e.Info(); ierr == nil {
			added = info.ModTime().UnixNano()
		}
		c.index(p, added)
		healthy++
	}
	if s := c.quarantined.Load(); s > 0 || healthy > 0 {
		c.logf("plancache: opened %s: %d entries indexed, %d quarantined", c.dir, healthy, s)
	}
}

// load reads and vets one entry file without touching the index.
func (c *Cache) load(path string) (*entryPayload, error) {
	raw, err := fsatomic.ReadSealedFS(c.fsys, path, Magic, Version)
	if err != nil {
		return nil, err
	}
	var p entryPayload
	if err := json.Unmarshal(raw, &p); err != nil {
		return nil, fmt.Errorf("plancache: %s: %w", filepath.Base(path), err)
	}
	if want := strings.TrimSuffix(filepath.Base(path), suffix); p.Key != want {
		return nil, fmt.Errorf("plancache: %s: entry key %q does not match filename", filepath.Base(path), p.Key)
	}
	if !p.Verified || p.Plan == nil || len(p.Canon) == 0 {
		return nil, fmt.Errorf("plancache: %s: unverified or incomplete entry", filepath.Base(path))
	}
	return &p, nil
}

// index adds a vetted entry to the in-memory maps. Caller must not hold c.mu.
func (c *Cache) index(p *entryPayload, added int64) {
	tk := topoIndexKey(p.TopoHash, p.Fingerprint.Device)
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.entries[p.Key]; ok {
		return
	}
	c.entries[p.Key] = &meta{key: p.Key, topoKey: tk, added: added}
	c.topo[tk] = append(c.topo[tk], p.Key)
}

// drop removes key from the in-memory maps. Caller must not hold c.mu.
func (c *Cache) drop(key string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	m, ok := c.entries[key]
	if !ok {
		return
	}
	delete(c.entries, key)
	keys := c.topo[m.topoKey]
	for i, k := range keys {
		if k == key {
			c.topo[m.topoKey] = append(keys[:i], keys[i+1:]...)
			break
		}
	}
	if len(c.topo[m.topoKey]) == 0 {
		delete(c.topo, m.topoKey)
	}
}

// quarantine moves an untrusted entry file aside and logs why. The file
// keeps its name (suffixed on collision) so an operator can inspect it.
func (c *Cache) quarantine(name string, cause error) {
	c.quarantined.Add(1)
	src := filepath.Join(c.dir, name)
	dst := filepath.Join(c.qdir, name)
	for i := 1; ; i++ {
		if _, err := c.fsys.Stat(dst); os.IsNotExist(err) {
			break
		}
		dst = filepath.Join(c.qdir, fmt.Sprintf("%s.%d", name, i))
	}
	if err := c.fsys.Rename(src, dst); err != nil {
		c.logf("plancache: quarantine %s failed (%v); removing (cause: %v)", name, err, cause)
		c.fsys.Remove(src)
		return
	}
	c.logf("plancache: quarantined %s -> %s: %v", name, dst, cause)
	c.sweepQuarantine()
}

// sweepQuarantine removes the oldest quarantined files past MaxQuarantine.
// Quarantine exists for operator inspection, not as an archive — under a
// junk-flood (an attacker or a bad deploy writing corrupt entries in a
// loop) an unbounded quarantine would fill the disk and take the healthy
// cache down with it.
func (c *Cache) sweepQuarantine() {
	ents, err := c.fsys.ReadDir(c.qdir)
	if err != nil {
		return
	}
	type qf struct {
		name string
		mod  int64
	}
	files := make([]qf, 0, len(ents))
	for _, e := range ents {
		if e.IsDir() {
			continue
		}
		mod := int64(0)
		if info, ierr := e.Info(); ierr == nil {
			mod = info.ModTime().UnixNano()
		}
		files = append(files, qf{e.Name(), mod})
	}
	if len(files) <= c.maxQuarantine {
		return
	}
	sort.Slice(files, func(i, j int) bool {
		if files[i].mod != files[j].mod {
			return files[i].mod < files[j].mod
		}
		return files[i].name < files[j].name
	})
	for _, f := range files[:len(files)-c.maxQuarantine] {
		if err := c.fsys.Remove(filepath.Join(c.qdir, f.name)); err == nil {
			c.quarantineEvicted.Add(1)
		}
	}
}

// Hit is a successful exact lookup: a verified plan recorded for a
// byte-identical canonical graph under the same fingerprint.
type Hit struct {
	Key     string
	Plan    *opt.PlanRecord
	PeakMem int64
	Latency float64
}

// Get looks up an exact entry for (g, fp). The WL-keyed index is only the
// first filter; the entry's recorded canonical graph is compared in full
// against g, so a hash collision returns (nil, false) — a miss — rather
// than a wrong plan. Entries that fail to read back are quarantined on
// the spot and also degrade to a miss.
func (c *Cache) Get(g *graph.Graph, fp Fingerprint) (*Hit, bool) {
	key := c.Key(g, fp)
	c.mu.Lock()
	_, ok := c.entries[key]
	c.mu.Unlock()
	if !ok {
		c.misses.Add(1)
		return nil, false
	}
	p, err := c.load(filepath.Join(c.dir, key+suffix))
	if err != nil {
		c.drop(key)
		c.quarantine(key+suffix, err)
		c.misses.Add(1)
		return nil, false
	}
	canon, err := canonicalBytes(g)
	if err != nil {
		c.logf("plancache: canonical encoding: %v", err)
		c.misses.Add(1)
		return nil, false
	}
	if !bytes.Equal(canon, p.Canon) || p.Fingerprint != fp {
		// Key collision: same 128-bit key, different request. Serving
		// would be wrong; a miss is merely slow.
		c.collisions.Add(1)
		c.misses.Add(1)
		c.logf("plancache: key %s collided (graphs differ); degrading to miss", key)
		return nil, false
	}
	c.hits.Add(1)
	return &Hit{
		Key:     key,
		Plan:    p.Plan,
		PeakMem: p.PeakMem,
		Latency: math.Float64frombits(p.LatencyBits),
	}, true
}

// NearHit is a same-topology entry usable as a warm-start seed.
type NearHit struct {
	Key  string
	Plan *opt.PlanRecord
	// SameGraph reports that the entry's input graph is byte-identical
	// to the request (only the fingerprint differed — e.g. another
	// budget). The full plan, graph rewrites included, replays soundly;
	// otherwise only the shape-independent fission state should.
	SameGraph bool
}

// nearProbeLimit caps how many candidate entries one Near call reads back
// from disk.
const nearProbeLimit = 8

// Near returns up to two warm-start candidates for (g, fp): entries
// sharing g's topology fingerprint (operator structure, ranks, dtypes —
// not dimension sizes) on the same device. A SameGraph candidate is
// preferred. Unreadable candidates are quarantined and skipped.
func (c *Cache) Near(g *graph.Graph, fp Fingerprint) []NearHit {
	exact := c.Key(g, fp)
	tk := topoIndexKey(topoHash(g), fp.Device)
	c.mu.Lock()
	keys := append([]string(nil), c.topo[tk]...)
	c.mu.Unlock()
	canon, err := canonicalBytes(g)
	if err != nil {
		return nil
	}
	var same, near *NearHit
	probed := 0
	// Newest entries first: recent plans reflect the current workload mix.
	sort.Sort(sort.Reverse(sort.StringSlice(keys)))
	for _, key := range keys {
		if key == exact || probed >= nearProbeLimit {
			continue
		}
		probed++
		p, err := c.load(filepath.Join(c.dir, key+suffix))
		if err != nil {
			c.drop(key)
			c.quarantine(key+suffix, err)
			continue
		}
		h := &NearHit{Key: key, Plan: p.Plan, SameGraph: bytes.Equal(canon, p.Canon)}
		if h.SameGraph {
			if same == nil {
				same = h
			}
		} else if near == nil {
			near = h
		}
		if same != nil && near != nil {
			break
		}
	}
	var out []NearHit
	if same != nil {
		out = append(out, *same)
	}
	if near != nil {
		out = append(out, *near)
	}
	if len(out) > 0 {
		c.nearHits.Add(1)
	}
	return out
}

// Put admits a search result into the cache — if it survives the
// verification gate. The plan is re-materialized and checked against the
// input graph with internal/verify; a failing report returns ErrRejected
// and writes nothing. The entry is written atomically through a sealed
// envelope, then indexed; the oldest entries are evicted past MaxEntries.
func (c *Cache) Put(input *graph.Graph, fp Fingerprint, best *opt.State) error {
	if input == nil || best == nil || best.G == nil {
		return errors.New("plancache: nothing to admit")
	}
	ft := best.FT
	if ft == nil {
		ft = &ftree.Tree{}
	}
	mg, err := ft.Materialize(best.G)
	if err != nil {
		c.putErrors.Add(1)
		return fmt.Errorf("plancache: materialize: %w", err)
	}
	rep := verify.Check(input, mg, c.verifySeed)
	if !rep.OK() {
		c.putRejected.Add(1)
		return fmt.Errorf("%w: %s", ErrRejected, strings.TrimSpace(rep.String()))
	}
	plan, err := opt.RecordPlan(best)
	if err != nil {
		c.putErrors.Add(1)
		return fmt.Errorf("plancache: %w", err)
	}
	canon, err := canonicalBytes(input)
	if err != nil {
		c.putErrors.Add(1)
		return fmt.Errorf("plancache: %w", err)
	}
	key := c.Key(input, fp)
	p := &entryPayload{
		Key:         key,
		WL:          c.hashFn(input),
		TopoHash:    topoHash(input),
		Fingerprint: fp,
		Canon:       canon,
		Plan:        plan,
		PeakMem:     best.PeakMem,
		LatencyBits: math.Float64bits(best.Latency),
		Verified:    true,
	}
	payload, err := json.Marshal(p)
	if err != nil {
		c.putErrors.Add(1)
		return fmt.Errorf("plancache: %w", err)
	}
	if err := fsatomic.WriteSealedFS(c.fsys, filepath.Join(c.dir, key+suffix), Magic, Version, payload, 0o644); err != nil {
		c.putErrors.Add(1)
		return fmt.Errorf("%w: %w", ErrStorage, err)
	}
	c.index(p, time.Now().UnixNano())
	c.puts.Add(1)
	c.evict()
	return nil
}

// evict removes the oldest entries until the cache fits MaxEntries.
func (c *Cache) evict() {
	for {
		c.mu.Lock()
		if len(c.entries) <= c.maxEntries {
			c.mu.Unlock()
			return
		}
		var oldest *meta
		for _, m := range c.entries {
			if oldest == nil || m.added < oldest.added ||
				(m.added == oldest.added && m.key < oldest.key) {
				oldest = m
			}
		}
		c.mu.Unlock()
		if oldest == nil {
			return
		}
		c.drop(oldest.key)
		c.fsys.Remove(filepath.Join(c.dir, oldest.key+suffix))
		c.evictions.Add(1)
	}
}
