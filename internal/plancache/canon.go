package plancache

import (
	"encoding/json"
	"fmt"

	"magis/internal/graph"
	"magis/internal/ops"
)

// canonicalBytes returns a deterministic, ID-normalized encoding of g:
// nodes in topological order with IDs remapped densely (graph.Topo breaks
// ties by ID, so identical construction yields identical bytes), each
// carrying its full serialized operator and remapped input list. Two
// graphs encode equal iff they are the same computation — this is the
// ground truth a hash-keyed hit is checked against.
func canonicalBytes(g *graph.Graph) ([]byte, error) {
	type cnode struct {
		Name string  `json:"n,omitempty"`
		Op   ops.Raw `json:"op"`
		Ins  []int   `json:"ins,omitempty"`
	}
	topo := g.Topo()
	remap := make(map[graph.NodeID]int, len(topo))
	for i, v := range topo {
		remap[v] = i
	}
	out := make([]cnode, 0, len(topo))
	for _, v := range topo {
		n := g.Node(v)
		spec, ok := n.Op.(*ops.Spec)
		if !ok {
			return nil, fmt.Errorf("plancache: node %d: operator %T is not serializable", v, n.Op)
		}
		ins := make([]int, len(n.Ins))
		for j, in := range n.Ins {
			ins[j] = remap[in]
		}
		out = append(out, cnode{Name: n.Name, Op: spec.Marshal(), Ins: ins})
	}
	return json.Marshal(out)
}

// topoHash is the shape-insensitive sibling of graph.WLHash: it hashes
// operator kinds, dtypes, output ranks, and wiring — but not dimension
// sizes or attributes — so the same model built at different batch sizes
// collides on purpose. It keys the near-miss index that feeds warm starts.
func topoHash(g *graph.Graph) uint64 {
	labels := make(map[graph.NodeID]uint64, g.Len())
	var sum uint64
	for _, v := range g.Topo() {
		n := g.Node(v)
		h := hash64(0, n.Op.Kind())
		h = (h ^ uint64(len(n.Op.OutShape()))) * 1099511628211
		h = (h ^ uint64(n.Op.DType())) * 1099511628211
		for _, in := range n.Ins {
			h = (h ^ labels[in]) * 1099511628211
		}
		labels[v] = h
		sum += h
	}
	return (sum ^ 14695981039346656037) * 1099511628211
}

// TopoHash exposes the shape-insensitive topology hash for callers that
// precompute probe keys (see Probe).
func TopoHash(g *graph.Graph) uint64 { return topoHash(g) }

// topoIndexKey folds the topology hash with the device identity: warm
// starts only make sense for plans costed on the same hardware.
func topoIndexKey(topo uint64, device string) uint64 {
	return hash64(topo, device)
}
