package plancache

// Class buckets a request by how much search it is likely to need, judged
// from the cache index alone. The serving layer prices admission with it:
// a hit answers from disk in milliseconds, a warm start converges in a
// fraction of a cold search's budget, and a cold search pays full price.
type Class int

const (
	// ClassCold has no usable cache state: a full search.
	ClassCold Class = iota
	// ClassWarm has a same-topology entry to warm-start from.
	ClassWarm
	// ClassHit has an exact entry indexed (subject to the collision
	// re-check a real Get performs).
	ClassHit
)

// String renders the class for metrics labels.
func (c Class) String() string {
	switch c {
	case ClassHit:
		return "hit"
	case ClassWarm:
		return "warm"
	default:
		return "cold"
	}
}

// Probe classifies (wl, topo, fp) against the in-memory index only: no
// disk reads, no stats movement, no quarantining — cheap enough to run on
// every admission decision. The answer is advisory: a ClassHit can still
// degrade to a miss at Get time (collision, tampered entry), which only
// makes the admission estimate conservative in the wrong direction for
// one request, never unsafe.
func (c *Cache) Probe(wl, topo uint64, fp Fingerprint) Class {
	key := KeyFromHashes(wl, fp)
	tk := topoIndexKey(topo, fp.Device)
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.entries[key]; ok {
		return ClassHit
	}
	if len(c.topo[tk]) > 0 {
		return ClassWarm
	}
	return ClassCold
}
