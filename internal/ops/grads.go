package ops

import (
	"fmt"

	"magis/internal/tensor"
)

// Backward operators. Matmul/BatchMatmul gradients reuse the forward
// constructors with transpose flags, so only operators with genuinely
// different backward kernels appear here.

// NewConvBwdData computes dX from dY[N,K,H2,W2] and w[K,C,R,S], producing
// x's shape [N,C,H,W].
func NewConvBwdData(dy, w, xShape tensor.Shape, stride, pad int, dt tensor.DType) *Spec {
	if dy.Rank() != 4 || w.Rank() != 4 || xShape.Rank() != 4 {
		panic(fmt.Sprintf("ops: ConvBwdData shapes %v %v %v", dy, w, xShape))
	}
	return &Spec{
		kind:   "ConvBwdData",
		attr:   fmt.Sprintf("s%dp%d", stride, pad),
		ins:    []tensor.Shape{dy.Clone(), w.Clone()},
		out:    xShape.Clone(),
		dt:     dt,
		reduce: []int{dy[1]}, // contraction over output channels K
		links: [][]DimLink{
			{{1, 1}, {2, -1}},
			{{1, -1}, {2, 2}},
		},
		flops: func(s *Spec) float64 {
			return 2 * float64(s.ins[0].Elems()) * float64(s.ins[1][1]) *
				float64(s.ins[1][2]) * float64(s.ins[1][3])
		},
	}
}

// NewConvBwdFilter computes dW[K,C,R,S] from x[N,C,H,W] and dY[N,K,H2,W2].
// The batch dimension is a reduce axis: batch fission produces partial
// filter gradients merged by addition (the Fig. 5 v8 pattern).
func NewConvBwdFilter(x, dy, wShape tensor.Shape, stride, pad int, dt tensor.DType) *Spec {
	if x.Rank() != 4 || dy.Rank() != 4 || wShape.Rank() != 4 {
		panic(fmt.Sprintf("ops: ConvBwdFilter shapes %v %v %v", x, dy, wShape))
	}
	return &Spec{
		kind:   "ConvBwdFilter",
		attr:   fmt.Sprintf("s%dp%d", stride, pad),
		ins:    []tensor.Shape{x.Clone(), dy.Clone()},
		out:    wShape.Clone(),
		dt:     dt,
		reduce: []int{x[0]},
		links: [][]DimLink{
			{{1, -1}, {2, 2}},
			{{1, -1}, {2, 1}},
		},
		flops: func(s *Spec) float64 {
			return 2 * float64(s.ins[1].Elems()) * float64(s.out[1]) *
				float64(s.out[2]) * float64(s.out[3])
		},
	}
}

// NewPoolBwd routes dY back through a pooling window, producing x's shape.
func NewPoolBwd(x, dy tensor.Shape, poolKind string, k, stride int, dt tensor.DType) *Spec {
	return &Spec{
		kind: "PoolBwd",
		attr: fmt.Sprintf("%s,k%ds%d", poolKind, k, stride),
		ins:  []tensor.Shape{x.Clone(), dy.Clone()},
		out:  x.Clone(),
		dt:   dt,
		links: [][]DimLink{
			{{1, 1}, {2, 2}},
			{{1, 1}, {2, 2}},
		},
		flops: func(s *Spec) float64 { return float64(s.ins[1].Elems()) * float64(k*k) },
	}
}

// NewUpsampleBwd reduces dY back to the pre-upsample shape.
func NewUpsampleBwd(x, dy tensor.Shape, f int, dt tensor.DType) *Spec {
	return &Spec{
		kind: "UpsampleBwd",
		attr: fmt.Sprintf("f%d", f),
		ins:  []tensor.Shape{dy.Clone()},
		out:  x.Clone(),
		dt:   dt,
		links: [][]DimLink{
			{{1, 1}, {2, 2}},
		},
		flops: func(s *Spec) float64 { return float64(s.ins[0].Elems()) },
	}
}

// NewEltwiseBwd is the generic backward of a unary elementwise op: it
// combines the saved forward value (or input) with dY elementwise.
func NewEltwiseBwd(kind string, saved, dy tensor.Shape, dt tensor.DType, flopsPerElem float64) *Spec {
	if !saved.Equal(dy) {
		panic(fmt.Sprintf("ops: %s shapes differ %v vs %v", kind, saved, dy))
	}
	return &Spec{
		kind:  kind,
		ins:   []tensor.Shape{saved.Clone(), dy.Clone()},
		out:   dy.Clone(),
		dt:    dt,
		links: [][]DimLink{identityLinks(saved), identityLinks(dy)},
		flops: func(s *Spec) float64 { return flopsPerElem * float64(s.out.Elems()) },
	}
}

// NewSoftmaxBwd computes dX from the forward output y and dY; the
// normalized axis is excluded from dimension links.
func NewSoftmaxBwd(y, dy tensor.Shape, axis int, dt tensor.DType) *Spec {
	s := NewEltwiseBwd("SoftmaxBwd", y, dy, dt, 4)
	s.attr = fmt.Sprintf("a%d", axis)
	s.links = [][]DimLink{identityLinks(y, axis), identityLinks(dy, axis)}
	return s
}

// NewLayerNormBwdX computes dX from x, dY and gamma; the normalized (last)
// dimension is excluded from links.
func NewLayerNormBwdX(x, dy, gamma tensor.Shape, dt tensor.DType) *Spec {
	return &Spec{
		kind: "LayerNormBwdX",
		ins:  []tensor.Shape{x.Clone(), dy.Clone(), gamma.Clone()},
		out:  x.Clone(),
		dt:   dt,
		links: [][]DimLink{
			identityLinks(x, x.Rank()),
			identityLinks(dy, dy.Rank()),
			nil,
		},
		flops: func(s *Spec) float64 { return 10 * float64(s.out.Elems()) },
	}
}

// NewLayerNormBwdParams computes d(gamma) (or d(beta)) [C] from x and dY;
// every leading dimension is a reduce axis.
func NewLayerNormBwdParams(x, dy tensor.Shape, dt tensor.DType) *Spec {
	c := x[x.Rank()-1]
	var reduce []int
	var lx, ly []DimLink
	for d := 1; d < x.Rank(); d++ {
		reduce = append(reduce, x[d-1])
		lx = append(lx, DimLink{d, -d})
		ly = append(ly, DimLink{d, -d})
	}
	return &Spec{
		kind:   "LayerNormBwdP",
		ins:    []tensor.Shape{x.Clone(), dy.Clone()},
		out:    tensor.S(c),
		dt:     dt,
		reduce: reduce,
		links:  [][]DimLink{lx, ly},
		flops:  func(s *Spec) float64 { return 4 * float64(s.ins[0].Elems()) },
	}
}

// NewBiasBwd reduces dY[..., C] over all leading dims into db[C].
func NewBiasBwd(dy tensor.Shape, dt tensor.DType) *Spec {
	c := dy[dy.Rank()-1]
	var reduce []int
	var ly []DimLink
	for d := 1; d < dy.Rank(); d++ {
		reduce = append(reduce, dy[d-1])
		ly = append(ly, DimLink{d, -d})
	}
	return &Spec{
		kind:   "BiasBwd",
		ins:    []tensor.Shape{dy.Clone()},
		out:    tensor.S(c),
		dt:     dt,
		reduce: reduce,
		links:  [][]DimLink{ly},
		flops:  func(s *Spec) float64 { return float64(s.ins[len(s.ins)-1].Elems()) },
	}
}

// NewEmbeddingBwd scatter-adds dY[B,...,C] by ids into d(table)[V,C];
// the gathered dims are reduce axes.
func NewEmbeddingBwd(ids, dy, table tensor.Shape, dt tensor.DType) *Spec {
	var reduce []int
	var li, ly []DimLink
	for d := 1; d <= ids.Rank(); d++ {
		reduce = append(reduce, ids[d-1])
		li = append(li, DimLink{d, -d})
		ly = append(ly, DimLink{d, -d})
	}
	ly = append(ly, DimLink{dy.Rank(), 2})
	return &Spec{
		kind:   "EmbeddingBwd",
		ins:    []tensor.Shape{ids.Clone(), dy.Clone()},
		out:    table.Clone(),
		dt:     dt,
		reduce: reduce,
		links:  [][]DimLink{li, ly},
		flops:  func(s *Spec) float64 { return float64(s.ins[len(s.ins)-1].Elems()) },
	}
}

// NewCrossEntropyBwd produces d(logits) from logits and labels (the
// constant upstream gradient of a scalar mean loss is folded in).
func NewCrossEntropyBwd(logits, labels tensor.Shape, dt tensor.DType) *Spec {
	var ll, bl []DimLink
	for d := 1; d <= labels.Rank(); d++ {
		ll = append(ll, DimLink{d, d})
		bl = append(bl, DimLink{d, d})
	}
	return &Spec{
		kind:  "CrossEntropyBwd",
		ins:   []tensor.Shape{logits.Clone(), labels.Clone()},
		out:   logits.Clone(),
		dt:    dt,
		links: [][]DimLink{ll, bl},
		flops: func(s *Spec) float64 { return 4 * float64(s.out.Elems()) },
	}
}

// NewBroadcast expands dy by re-inserting dimension axis with extent n
// (the backward of Reduce). For Mean reductions the 1/n scale is folded in.
func NewBroadcast(dy tensor.Shape, axis, n int, dt tensor.DType) *Spec {
	out := make(tensor.Shape, 0, dy.Rank()+1)
	out = append(out, dy[:axis-1]...)
	out = append(out, n)
	out = append(out, dy[axis-1:]...)
	var links []DimLink
	for d := 1; d <= dy.Rank(); d++ {
		if d < axis {
			links = append(links, DimLink{d, d})
		} else {
			links = append(links, DimLink{d, d + 1})
		}
	}
	return &Spec{
		kind:  "Broadcast",
		attr:  fmt.Sprintf("a%d,n%d", axis, n),
		ins:   []tensor.Shape{dy.Clone()},
		out:   out,
		dt:    dt,
		links: [][]DimLink{links},
		flops: func(s *Spec) float64 { return float64(s.out.Elems()) },
	}
}

// NewPad zero-pads dy along dim so it occupies [start, start+len) of a
// dimension of extent total (the backward of Slice).
func NewPad(dy tensor.Shape, dim, start, total int, dt tensor.DType) *Spec {
	out := dy.WithDim(dim, total)
	return &Spec{
		kind:  "Pad",
		attr:  fmt.Sprintf("d%d,%d+%d", dim, start, total),
		ins:   []tensor.Shape{dy.Clone()},
		out:   out,
		dt:    dt,
		links: [][]DimLink{identityLinks(dy, dim)},
		flops: func(s *Spec) float64 { return float64(s.out.Elems()) },
	}
}

// NewBatchNorm2dBwdX computes dX for a channelwise norm over x[N,C,H,W].
func NewBatchNorm2dBwdX(x, dy tensor.Shape, dt tensor.DType) *Spec {
	return &Spec{
		kind: "BatchNormBwdX",
		ins:  []tensor.Shape{x.Clone(), dy.Clone()},
		out:  x.Clone(),
		dt:   dt,
		links: [][]DimLink{
			{{1, 1}, {2, 2}},
			{{1, 1}, {2, 2}},
		},
		flops: func(s *Spec) float64 { return 6 * float64(s.out.Elems()) },
	}
}

// NewBatchNorm2dBwdP computes d(gamma)[C] for a channelwise norm; N, H, W
// are reduce axes.
func NewBatchNorm2dBwdP(x, dy tensor.Shape, dt tensor.DType) *Spec {
	return &Spec{
		kind:   "BatchNormBwdP",
		ins:    []tensor.Shape{x.Clone(), dy.Clone()},
		out:    tensor.S(x[1]),
		dt:     dt,
		reduce: []int{x[0]},
		links: [][]DimLink{
			{{1, -1}, {2, 1}},
			{{1, -1}, {2, 1}},
		},
		flops: func(s *Spec) float64 { return 2 * float64(s.ins[0].Elems()) },
	}
}

// NewApplySGD consumes a weight and its gradient, producing the updated
// weight. Including the update step in training graphs gives gradients a
// consumer, ending their lifetimes realistically.
func NewApplySGD(w, gw tensor.Shape, dt tensor.DType) *Spec {
	if !w.Equal(gw) {
		panic(fmt.Sprintf("ops: ApplySGD shapes differ %v vs %v", w, gw))
	}
	return &Spec{
		kind:  "ApplySGD",
		ins:   []tensor.Shape{w.Clone(), gw.Clone()},
		out:   w.Clone(),
		dt:    dt,
		links: [][]DimLink{nil, nil}, // weights are never fission-split
		flops: func(s *Spec) float64 { return 2 * float64(s.out.Elems()) },
	}
}
