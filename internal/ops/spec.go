// Package ops is the operator catalog: every DNN operator MAGIS
// manipulates, with shape inference, FLOP/byte accounting for the cost
// model, dimension links for Dimension-Graph construction (§4.1), and axis
// splitting for Fission Transformation (§4.2).
//
// All operators share one immutable descriptor type, Spec. Constructors
// (NewMatmul, NewConv2d, ...) validate input shapes and fill in the
// dimension links; fission derives split operators generically through
// SplitAxis, which divides a chosen output dimension or reduce axis and
// shrinks every linked input dimension.
package ops

import (
	"fmt"
	"strings"
	"sync/atomic"

	"magis/internal/tensor"
)

// DimLink declares that input dimension In (1-based) and output axis Out
// correspond to the same spatial axis. Out > 0 names an output dimension;
// Out < 0 names reduce axis -Out of the operator's computation. These links
// are exactly the E(D) edges of the paper's Dimension Graph.
type DimLink struct {
	In  int // 1-based input dimension
	Out int // 1-based output dimension, or negative reduce axis
}

// Spec is the single concrete operator type. It is immutable after
// construction; transformations create new Specs.
type Spec struct {
	kind   string
	attr   string
	ins    []tensor.Shape
	out    tensor.Shape
	dt     tensor.DType
	reduce []int       // extent of each reduce axis (index i = axis -(i+1))
	links  [][]DimLink // per input
	flops  func(s *Spec) float64

	// Memoized derived strings. The descriptor is immutable, but AttrKey
	// and SigKey sit on the optimizer's hottest paths (hashing and the
	// latency cache), so they are built once on first use. Concurrent first
	// uses race benignly: both compute the same value.
	akey atomic.Pointer[string]
	skey atomic.Pointer[string]
}

// Kind returns the operator name ("Matmul", "Conv2d", ...).
func (s *Spec) Kind() string { return s.kind }

// OutShape returns the output tensor shape.
func (s *Spec) OutShape() tensor.Shape { return s.out }

// DType returns the output element type.
func (s *Spec) DType() tensor.DType { return s.dt }

// AttrKey distinguishes operators of the same kind with different
// semantics; it folds in attributes, input shapes, and reduce extents.
// The string is memoized on the descriptor.
func (s *Spec) AttrKey() string {
	if p := s.akey.Load(); p != nil {
		return *p
	}
	var b strings.Builder
	b.WriteString(s.attr)
	for _, in := range s.ins {
		b.WriteString(in.String())
	}
	if len(s.reduce) > 0 {
		fmt.Fprintf(&b, "r%v", s.reduce)
	}
	k := b.String()
	s.akey.Store(&k)
	return k
}

// SigKey returns the full operator signature — kind, attributes, input
// shapes, output shape, and element type — memoized on the descriptor. Two
// Specs with equal SigKeys have identical cost and hashing behaviour; the
// latency cache keys on it.
func (s *Spec) SigKey() string {
	if p := s.skey.Load(); p != nil {
		return *p
	}
	k := s.kind + "|" + s.AttrKey() + "|" + s.out.String() + "|" + s.dt.String()
	s.skey.Store(&k)
	return k
}

// Attr returns the raw attribute string (without shape suffixes).
func (s *Spec) Attr() string { return s.attr }

// NumIns returns the number of input tensors.
func (s *Spec) NumIns() int { return len(s.ins) }

// InShape returns the shape of input i.
func (s *Spec) InShape(i int) tensor.Shape { return s.ins[i] }

// NumReduceAxes returns the number of reduce axes in the computation.
func (s *Spec) NumReduceAxes() int { return len(s.reduce) }

// ReduceLen returns the extent of reduce axis -axis (axis must be < 0).
func (s *Spec) ReduceLen(axis int) int {
	if axis >= 0 || -axis > len(s.reduce) {
		panic(fmt.Sprintf("ops: bad reduce axis %d", axis))
	}
	return s.reduce[-axis-1]
}

// DimLinks returns the dimension links of input i.
func (s *Spec) DimLinks(i int) []DimLink { return s.links[i] }

// FLOPs returns the floating-point operations to compute the output once.
func (s *Spec) FLOPs() float64 {
	if s.flops == nil {
		return 0
	}
	return s.flops(s)
}

// OutBytes returns the output tensor footprint in bytes.
func (s *Spec) OutBytes() int64 { return tensor.Bytes(s.out, s.dt) }

// InBytes returns the total bytes read from input tensors.
func (s *Spec) InBytes() int64 {
	var n int64
	for _, in := range s.ins {
		n += tensor.Bytes(in, s.dt)
	}
	return n
}

// AxisLen returns the extent of the given axis: a 1-based output dimension
// when axis > 0, or a reduce axis when axis < 0.
func (s *Spec) AxisLen(axis int) int {
	if axis > 0 {
		if axis > len(s.out) {
			return 0
		}
		return s.out.Dim(axis)
	}
	if -axis <= len(s.reduce) {
		return s.reduce[-axis-1]
	}
	return 0
}

// HasAxis reports whether axis names an existing output dim or reduce axis.
func (s *Spec) HasAxis(axis int) bool { return s.AxisLen(axis) > 0 }

// SplitAxis returns a copy of the operator whose chosen axis extent is
// divided by n, shrinking every input dimension linked to that axis. It
// returns an error when the axis does not exist or its extent is not
// divisible by n. This is the per-operator primitive of F-Trans: the
// returned Spec describes one of the n sequentially executed parts.
func (s *Spec) SplitAxis(axis, n int) (*Spec, error) {
	l := s.AxisLen(axis)
	if l == 0 {
		return nil, fmt.Errorf("ops: %s has no axis %d", s.kind, axis)
	}
	if n <= 1 || l%n != 0 {
		return nil, fmt.Errorf("ops: axis %d of %s has extent %d, not divisible by %d", axis, s.kind, l, n)
	}
	c := s.clone()
	if axis > 0 {
		c.out = c.out.WithDim(axis, l/n)
	} else {
		c.reduce[-axis-1] = l / n
	}
	for i := range c.ins {
		for _, lk := range c.links[i] {
			if lk.Out == axis {
				c.ins[i] = c.ins[i].WithDim(lk.In, c.ins[i].Dim(lk.In)/n)
			}
		}
	}
	return c, nil
}

func (s *Spec) clone() *Spec {
	c := &Spec{
		kind:   s.kind,
		attr:   s.attr,
		ins:    make([]tensor.Shape, len(s.ins)),
		out:    s.out.Clone(),
		dt:     s.dt,
		reduce: append([]int(nil), s.reduce...),
		links:  s.links, // immutable, shared
		flops:  s.flops,
	}
	for i, in := range s.ins {
		c.ins[i] = in.Clone()
	}
	return c
}

// String renders "Kind[attr] shapes -> out".
func (s *Spec) String() string {
	var b strings.Builder
	b.WriteString(s.kind)
	if s.attr != "" {
		fmt.Fprintf(&b, "[%s]", s.attr)
	}
	b.WriteByte(' ')
	for i, in := range s.ins {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(in.String())
	}
	b.WriteString(" -> ")
	b.WriteString(s.out.String())
	return b.String()
}

// Raw is the serializable form of a Spec (see Marshal/FromRaw). The flops
// function is re-derived from Kind on load via the registry in flops.go.
type Raw struct {
	Kind   string         `json:"kind"`
	Attr   string         `json:"attr,omitempty"`
	Ins    []tensor.Shape `json:"ins,omitempty"`
	Out    tensor.Shape   `json:"out"`
	DType  tensor.DType   `json:"dtype"`
	Reduce []int          `json:"reduce,omitempty"`
	Links  [][]DimLink    `json:"links,omitempty"`
}

// Marshal returns the serializable form of the operator.
func (s *Spec) Marshal() Raw {
	return Raw{
		Kind:   s.kind,
		Attr:   s.attr,
		Ins:    s.ins,
		Out:    s.out,
		DType:  s.dt,
		Reduce: s.reduce,
		Links:  s.links,
	}
}

// FromRaw reconstructs an operator from its serialized form, re-attaching
// the cost function for its kind.
func FromRaw(r Raw) *Spec {
	return &Spec{
		kind:   r.Kind,
		attr:   r.Attr,
		ins:    r.Ins,
		out:    r.Out,
		dt:     r.DType,
		reduce: r.Reduce,
		links:  r.Links,
		flops:  flopsFor(r.Kind),
	}
}

// identityLinks builds (i,i) links for every dimension of shape, excluding
// the 1-based dims listed in except.
func identityLinks(shape tensor.Shape, except ...int) []DimLink {
	skip := make(map[int]bool, len(except))
	for _, e := range except {
		skip[e] = true
	}
	var ls []DimLink
	for d := 1; d <= len(shape); d++ {
		if !skip[d] {
			ls = append(ls, DimLink{d, d})
		}
	}
	return ls
}
