package ops

import (
	"fmt"

	"magis/internal/tensor"
)

// Linear-family operators: rank-N matrix products and head split/merge
// views. Unlike flatten+Matmul compositions, these keep every batch and
// sequence dimension linked in the Dimension Graph, so fission can run
// through entire transformer blocks (Fig. 4).

// NewLinear multiplies x[..., k] by w[k, n] into [..., n]. With transW the
// weight is [n, k] and used transposed (the dX gradient form).
func NewLinear(x, w tensor.Shape, transW bool, dt tensor.DType) *Spec {
	if w.Rank() != 2 || x.Rank() < 2 {
		panic(fmt.Sprintf("ops: Linear shapes %v x %v", x, w))
	}
	r := x.Rank()
	k, n := w[0], w[1]
	wK, wN := 1, 2
	if transW {
		k, n = w[1], w[0]
		wK, wN = 2, 1
	}
	if x[r-1] != k {
		panic(fmt.Sprintf("ops: Linear contraction mismatch %v x %v (transW=%v)", x, w, transW))
	}
	out := x.Clone()
	out[r-1] = n
	var lx []DimLink
	for d := 1; d < r; d++ {
		lx = append(lx, DimLink{d, d})
	}
	lx = append(lx, DimLink{r, -1})
	attr := "N"
	if transW {
		attr = "T"
	}
	return &Spec{
		kind:   "Linear",
		attr:   attr,
		ins:    []tensor.Shape{x.Clone(), w.Clone()},
		out:    out,
		dt:     dt,
		reduce: []int{k},
		links: [][]DimLink{
			lx,
			{{wK, -1}, {wN, r}},
		},
		flops: func(s *Spec) float64 {
			return 2 * float64(s.out.Elems()) * float64(s.reduce[0])
		},
	}
}

// NewLinearBwdW computes dW[k, n] from x[..., k] and dy[..., n], reducing
// over every leading dimension (batch fission yields partial weight
// gradients merged by Add).
func NewLinearBwdW(x, dy tensor.Shape, dt tensor.DType) *Spec {
	r := x.Rank()
	if dy.Rank() != r {
		panic(fmt.Sprintf("ops: LinearBwdW shapes %v vs %v", x, dy))
	}
	var reduce []int
	var lx, ly []DimLink
	for d := 1; d < r; d++ {
		if x[d-1] != dy[d-1] {
			panic(fmt.Sprintf("ops: LinearBwdW leading dims differ %v vs %v", x, dy))
		}
		reduce = append(reduce, x[d-1])
		lx = append(lx, DimLink{d, -d})
		ly = append(ly, DimLink{d, -d})
	}
	lx = append(lx, DimLink{r, 1})
	ly = append(ly, DimLink{r, 2})
	return &Spec{
		kind:   "LinearBwdW",
		ins:    []tensor.Shape{x.Clone(), dy.Clone()},
		out:    tensor.S(x[r-1], dy[r-1]),
		dt:     dt,
		reduce: reduce,
		links:  [][]DimLink{lx, ly},
		flops: func(s *Spec) float64 {
			lead := 1.0
			for _, e := range s.reduce {
				lead *= float64(e)
			}
			return 2 * lead * float64(s.out.Elems())
		},
	}
}

// NewSplitHeads views x[B, T, H*h] as [B, H, T, h]. The hidden dimension
// is consumed, so only batch and sequence remain linked.
func NewSplitHeads(x tensor.Shape, heads int, dt tensor.DType) *Spec {
	if x.Rank() != 3 || x[2]%heads != 0 {
		panic(fmt.Sprintf("ops: SplitHeads %v with %d heads", x, heads))
	}
	out := tensor.S(x[0], heads, x[1], x[2]/heads)
	return &Spec{
		kind:  "SplitHeads",
		attr:  fmt.Sprintf("h%d", heads),
		ins:   []tensor.Shape{x.Clone()},
		out:   out,
		dt:    dt,
		links: [][]DimLink{{{1, 1}, {2, 3}}},
		flops: func(s *Spec) float64 { return 0 },
	}
}

// NewMergeHeads views x[B, H, T, h] as [B, T, H*h] — the inverse of
// NewSplitHeads.
func NewMergeHeads(x tensor.Shape, dt tensor.DType) *Spec {
	if x.Rank() != 4 {
		panic(fmt.Sprintf("ops: MergeHeads %v", x))
	}
	out := tensor.S(x[0], x[2], x[1]*x[3])
	return &Spec{
		kind:  "MergeHeads",
		ins:   []tensor.Shape{x.Clone()},
		out:   out,
		dt:    dt,
		links: [][]DimLink{{{1, 1}, {3, 2}}},
		flops: func(s *Spec) float64 { return 0 },
	}
}
