package ops

import (
	"fmt"

	"magis/internal/tensor"
)

// Operator kind names used across the framework. Using exported constants
// keeps string literals out of the other packages.
const (
	KindInput     = "Input"
	KindParam     = "Param"
	KindMatmul    = "Matmul"
	KindBatchMM   = "BatchMatmul"
	KindConv2d    = "Conv2d"
	KindPool2d    = "Pool2d"
	KindSoftmax   = "Softmax"
	KindLayerNorm = "LayerNorm"
	KindReduce    = "Reduce"
	KindSlice     = "Slice"
	KindConcat    = "Concat"
	KindTranspose = "Transpose"
	KindReshape   = "Reshape"
	KindEmbedding = "Embedding"
	KindCrossEnt  = "CrossEntropy"
	KindStore     = "Store"
	KindLoad      = "Load"
)

// NewInput returns a graph entry holding an externally provided tensor
// (activations, labels). Inputs have no FLOPs and no producers.
func NewInput(shape tensor.Shape, dt tensor.DType) *Spec {
	return &Spec{kind: KindInput, out: shape.Clone(), dt: dt}
}

// NewParam returns a model weight tensor. Params behave like Inputs but
// are distinguishable so analyses can treat weights specially (e.g. shared,
// not sliced, by fission).
func NewParam(shape tensor.Shape, dt tensor.DType) *Spec {
	return &Spec{kind: KindParam, out: shape.Clone(), dt: dt}
}

// IsLeaf reports whether the op is a graph entry (Input or Param).
func IsLeaf(kind string) bool { return kind == KindInput || kind == KindParam }

// NewMatmul multiplies a[m,k] by b[k,n] into [m,n]. ta/tb transpose the
// respective operand first, so gradient matmuls need no explicit Transpose
// nodes.
func NewMatmul(a, b tensor.Shape, ta, tb bool, dt tensor.DType) *Spec {
	if a.Rank() != 2 || b.Rank() != 2 {
		panic(fmt.Sprintf("ops: Matmul needs rank-2 operands, got %v x %v", a, b))
	}
	m, k1 := a[0], a[1]
	if ta {
		m, k1 = k1, m
	}
	k2, n := b[0], b[1]
	if tb {
		k2, n = n, k2
	}
	if k1 != k2 {
		panic(fmt.Sprintf("ops: Matmul contraction mismatch %v x %v (ta=%v tb=%v)", a, b, ta, tb))
	}
	// Links for a: the m dim -> out dim 1, the k dim -> reduce axis 1.
	aM, aK := 1, 2
	if ta {
		aM, aK = 2, 1
	}
	bK, bN := 1, 2
	if tb {
		bK, bN = 2, 1
	}
	return &Spec{
		kind:   KindMatmul,
		attr:   transAttr(ta, tb),
		ins:    []tensor.Shape{a.Clone(), b.Clone()},
		out:    tensor.S(m, n),
		dt:     dt,
		reduce: []int{k1},
		links: [][]DimLink{
			{{aM, 1}, {aK, -1}},
			{{bK, -1}, {bN, 2}},
		},
		flops: func(s *Spec) float64 {
			return 2 * float64(s.out.Elems()) * float64(s.reduce[0])
		},
	}
}

// NewBatchMatmul multiplies [B..., m, k] by [B..., k, n] into [B..., m, n];
// leading batch dimensions must match exactly.
func NewBatchMatmul(a, b tensor.Shape, ta, tb bool, dt tensor.DType) *Spec {
	if a.Rank() != b.Rank() || a.Rank() < 3 {
		panic(fmt.Sprintf("ops: BatchMatmul rank mismatch %v x %v", a, b))
	}
	r := a.Rank()
	for i := 0; i < r-2; i++ {
		if a[i] != b[i] {
			panic(fmt.Sprintf("ops: BatchMatmul batch dims differ %v x %v", a, b))
		}
	}
	m, k1 := a[r-2], a[r-1]
	if ta {
		m, k1 = k1, m
	}
	k2, n := b[r-2], b[r-1]
	if tb {
		k2, n = n, k2
	}
	if k1 != k2 {
		panic(fmt.Sprintf("ops: BatchMatmul contraction mismatch %v x %v", a, b))
	}
	out := a.Clone()
	out[r-2], out[r-1] = m, n
	aM, aK := r-1, r
	if ta {
		aM, aK = r, r-1
	}
	bK, bN := r-1, r
	if tb {
		bK, bN = r, r-1
	}
	var la, lb []DimLink
	for i := 1; i <= r-2; i++ {
		la = append(la, DimLink{i, i})
		lb = append(lb, DimLink{i, i})
	}
	la = append(la, DimLink{aM, r - 1}, DimLink{aK, -1})
	lb = append(lb, DimLink{bK, -1}, DimLink{bN, r})
	return &Spec{
		kind:   KindBatchMM,
		attr:   transAttr(ta, tb),
		ins:    []tensor.Shape{a.Clone(), b.Clone()},
		out:    out,
		dt:     dt,
		reduce: []int{k1},
		links:  [][]DimLink{la, lb},
		flops: func(s *Spec) float64 {
			return 2 * float64(s.out.Elems()) * float64(s.reduce[0])
		},
	}
}

func transAttr(ta, tb bool) string {
	switch {
	case ta && tb:
		return "TT"
	case ta:
		return "TN"
	case tb:
		return "NT"
	}
	return "NN"
}

func conv2dOutDim(in, kernel, stride, pad int) int {
	return (in+2*pad-kernel)/stride + 1
}

// NewConv2d convolves x[N,C,H,W] with w[K,C,R,S]. Spatial axes use a
// sliding window so they carry no dimension links (paper footnote 2);
// fission may split the batch dimension or the channel reduce axis.
func NewConv2d(x, w tensor.Shape, stride, pad int, dt tensor.DType) *Spec {
	if x.Rank() != 4 || w.Rank() != 4 || x[1] != w[1] {
		panic(fmt.Sprintf("ops: Conv2d shape mismatch %v * %v", x, w))
	}
	h2 := conv2dOutDim(x[2], w[2], stride, pad)
	w2 := conv2dOutDim(x[3], w[3], stride, pad)
	out := tensor.S(x[0], w[0], h2, w2)
	return &Spec{
		kind:   KindConv2d,
		attr:   fmt.Sprintf("s%dp%d", stride, pad),
		ins:    []tensor.Shape{x.Clone(), w.Clone()},
		out:    out,
		dt:     dt,
		reduce: []int{x[1]},
		links: [][]DimLink{
			{{1, 1}, {2, -1}},
			{{1, 2}, {2, -1}},
		},
		flops: func(s *Spec) float64 {
			// 2 * N*K*H2*W2 * C*R*S
			return 2 * float64(s.out.Elems()) * float64(s.reduce[0]) *
				float64(s.ins[1][2]) * float64(s.ins[1][3])
		},
	}
}

// NewPool2d applies max/avg pooling with square kernel k and the given
// stride over x[N,C,H,W].
func NewPool2d(x tensor.Shape, poolKind string, k, stride int, dt tensor.DType) *Spec {
	if x.Rank() != 4 {
		panic(fmt.Sprintf("ops: Pool2d needs NCHW, got %v", x))
	}
	out := tensor.S(x[0], x[1], conv2dOutDim(x[2], k, stride, 0), conv2dOutDim(x[3], k, stride, 0))
	return &Spec{
		kind:  KindPool2d,
		attr:  fmt.Sprintf("%s,k%ds%d", poolKind, k, stride),
		ins:   []tensor.Shape{x.Clone()},
		out:   out,
		dt:    dt,
		links: [][]DimLink{{{1, 1}, {2, 2}}},
		flops: func(s *Spec) float64 {
			return float64(s.out.Elems()) * float64(k*k)
		},
	}
}

// NewUpsample2d nearest-neighbour upsamples x[N,C,H,W] by factor f.
func NewUpsample2d(x tensor.Shape, f int, dt tensor.DType) *Spec {
	out := tensor.S(x[0], x[1], x[2]*f, x[3]*f)
	return &Spec{
		kind:  "Upsample2d",
		attr:  fmt.Sprintf("f%d", f),
		ins:   []tensor.Shape{x.Clone()},
		out:   out,
		dt:    dt,
		links: [][]DimLink{{{1, 1}, {2, 2}}},
		flops: func(s *Spec) float64 { return float64(s.out.Elems()) },
	}
}

// NewEltwise builds a unary elementwise op (ReLU, GELU, Exp, Scale, ...).
// flopsPerElem captures the per-element arithmetic cost.
func NewEltwise(kind string, x tensor.Shape, dt tensor.DType, flopsPerElem float64) *Spec {
	return &Spec{
		kind:  kind,
		ins:   []tensor.Shape{x.Clone()},
		out:   x.Clone(),
		dt:    dt,
		links: [][]DimLink{identityLinks(x)},
		flops: func(s *Spec) float64 { return flopsPerElem * float64(s.out.Elems()) },
	}
}

// Common unary constructors.
func NewReLU(x tensor.Shape, dt tensor.DType) *Spec    { return NewEltwise("ReLU", x, dt, 1) }
func NewGELU(x tensor.Shape, dt tensor.DType) *Spec    { return NewEltwise("GELU", x, dt, 8) }
func NewTanh(x tensor.Shape, dt tensor.DType) *Spec    { return NewEltwise("Tanh", x, dt, 6) }
func NewSigmoid(x tensor.Shape, dt tensor.DType) *Spec { return NewEltwise("Sigmoid", x, dt, 4) }
func NewDropout(x tensor.Shape, dt tensor.DType) *Spec { return NewEltwise("Dropout", x, dt, 2) }
func NewScale(x tensor.Shape, dt tensor.DType) *Spec   { return NewEltwise("Scale", x, dt, 1) }

// NewBinary builds a same-shape elementwise binary op (Add, Mul, Sub, Div).
func NewBinary(kind string, a, b tensor.Shape, dt tensor.DType) *Spec {
	if !a.Equal(b) {
		panic(fmt.Sprintf("ops: %s operand shapes differ: %v vs %v", kind, a, b))
	}
	return &Spec{
		kind:  kind,
		ins:   []tensor.Shape{a.Clone(), b.Clone()},
		out:   a.Clone(),
		dt:    dt,
		links: [][]DimLink{identityLinks(a), identityLinks(b)},
		flops: func(s *Spec) float64 { return float64(s.out.Elems()) },
	}
}

// NewAdd adds two same-shape tensors.
func NewAdd(a, b tensor.Shape, dt tensor.DType) *Spec { return NewBinary("Add", a, b, dt) }

// NewMul multiplies two same-shape tensors elementwise.
func NewMul(a, b tensor.Shape, dt tensor.DType) *Spec { return NewBinary("Mul", a, b, dt) }

// NewBiasAdd adds bias b[C] to every row of x[..., C].
func NewBiasAdd(x, b tensor.Shape, dt tensor.DType) *Spec {
	if b.Rank() != 1 || b[0] != x[x.Rank()-1] {
		panic(fmt.Sprintf("ops: BiasAdd bias %v incompatible with %v", b, x))
	}
	return &Spec{
		kind: "BiasAdd",
		ins:  []tensor.Shape{x.Clone(), b.Clone()},
		out:  x.Clone(),
		dt:   dt,
		links: [][]DimLink{
			identityLinks(x),
			{{1, x.Rank()}},
		},
		flops: func(s *Spec) float64 { return float64(s.out.Elems()) },
	}
}

// NewSoftmax normalizes along the 1-based axis. The normalized axis carries
// no dimension link: splitting it would change semantics.
func NewSoftmax(x tensor.Shape, axis int, dt tensor.DType) *Spec {
	if axis < 1 || axis > x.Rank() {
		panic(fmt.Sprintf("ops: Softmax axis %d out of range for %v", axis, x))
	}
	return &Spec{
		kind:  KindSoftmax,
		attr:  fmt.Sprintf("a%d", axis),
		ins:   []tensor.Shape{x.Clone()},
		out:   x.Clone(),
		dt:    dt,
		links: [][]DimLink{identityLinks(x, axis)},
		flops: func(s *Spec) float64 { return 5 * float64(s.out.Elems()) },
	}
}

// NewLayerNorm normalizes x over its last dimension with scale gamma[C] and
// shift beta[C].
func NewLayerNorm(x, gamma, beta tensor.Shape, dt tensor.DType) *Spec {
	c := x[x.Rank()-1]
	if gamma.Rank() != 1 || gamma[0] != c || beta.Rank() != 1 || beta[0] != c {
		panic(fmt.Sprintf("ops: LayerNorm params %v/%v incompatible with %v", gamma, beta, x))
	}
	return &Spec{
		kind: KindLayerNorm,
		ins:  []tensor.Shape{x.Clone(), gamma.Clone(), beta.Clone()},
		out:  x.Clone(),
		dt:   dt,
		links: [][]DimLink{
			identityLinks(x, x.Rank()),
			nil,
			nil,
		},
		flops: func(s *Spec) float64 { return 8 * float64(s.out.Elems()) },
	}
}

// NewBatchNorm2d normalizes x[N,C,H,W] per channel (inference-style fused
// scale/shift; statistics dims are treated like LayerNorm's).
func NewBatchNorm2d(x, gamma tensor.Shape, dt tensor.DType) *Spec {
	if x.Rank() != 4 || gamma.Rank() != 1 || gamma[0] != x[1] {
		panic(fmt.Sprintf("ops: BatchNorm2d params %v incompatible with %v", gamma, x))
	}
	return &Spec{
		kind: "BatchNorm2d",
		ins:  []tensor.Shape{x.Clone(), gamma.Clone()},
		out:  x.Clone(),
		dt:   dt,
		links: [][]DimLink{
			// Statistics run over N,H,W; splitting the batch yields
			// per-part ("ghost") statistics, the standard micro-batching
			// behaviour, so both batch and channel dims stay linked.
			{{1, 1}, {2, 2}},
			{{1, 2}},
		},
		flops: func(s *Spec) float64 { return 4 * float64(s.out.Elems()) },
	}
}

// NewReduce sums or averages x over the 1-based axis, dropping it.
func NewReduce(redKind string, x tensor.Shape, axis int, dt tensor.DType) *Spec {
	if axis < 1 || axis > x.Rank() {
		panic(fmt.Sprintf("ops: Reduce axis %d out of range for %v", axis, x))
	}
	out := make(tensor.Shape, 0, x.Rank()-1)
	var links []DimLink
	for d := 1; d <= x.Rank(); d++ {
		switch {
		case d < axis:
			out = append(out, x[d-1])
			links = append(links, DimLink{d, d})
		case d == axis:
			links = append(links, DimLink{d, -1})
		default:
			out = append(out, x[d-1])
			links = append(links, DimLink{d, d - 1})
		}
	}
	return &Spec{
		kind:   KindReduce,
		attr:   fmt.Sprintf("%s,a%d", redKind, axis),
		ins:    []tensor.Shape{x.Clone()},
		out:    out,
		dt:     dt,
		reduce: []int{x[axis-1]},
		links:  [][]DimLink{links},
		flops:  func(s *Spec) float64 { return float64(s.ins[0].Elems()) },
	}
}

// NewSlice extracts length elements starting at start along dim.
func NewSlice(x tensor.Shape, dim, start, length int, dt tensor.DType) *Spec {
	if dim < 1 || dim > x.Rank() || start < 0 || start+length > x[dim-1] {
		panic(fmt.Sprintf("ops: Slice [%d:%d+%d] out of range on %v", dim, start, length, x))
	}
	return &Spec{
		kind:  KindSlice,
		attr:  fmt.Sprintf("d%d,%d:%d", dim, start, start+length),
		ins:   []tensor.Shape{x.Clone()},
		out:   x.WithDim(dim, length),
		dt:    dt,
		links: [][]DimLink{identityLinks(x, dim)},
		flops: func(s *Spec) float64 { return 0 },
	}
}

// ParseSliceAttr recovers the (dim, start, length) parameters of a Slice
// spec; ok is false for non-Slice operators.
func ParseSliceAttr(s *Spec) (dim, start, length int, ok bool) {
	if s.kind != KindSlice {
		return 0, 0, 0, false
	}
	var end int
	if _, err := fmt.Sscanf(s.attr, "d%d,%d:%d", &dim, &start, &end); err != nil {
		return 0, 0, 0, false
	}
	return dim, start, end - start, true
}

// NewConcat concatenates the inputs along dim; all other dims must match.
func NewConcat(ins []tensor.Shape, dim int, dt tensor.DType) *Spec {
	if len(ins) == 0 {
		panic("ops: Concat of nothing")
	}
	out := ins[0].Clone()
	total := 0
	for _, in := range ins {
		if in.Rank() != out.Rank() {
			panic(fmt.Sprintf("ops: Concat rank mismatch %v", ins))
		}
		for d := 1; d <= in.Rank(); d++ {
			if d != dim && in.Dim(d) != out.Dim(d) {
				panic(fmt.Sprintf("ops: Concat dim %d mismatch %v", d, ins))
			}
		}
		total += in.Dim(dim)
	}
	out[dim-1] = total
	links := make([][]DimLink, len(ins))
	cins := make([]tensor.Shape, len(ins))
	for i, in := range ins {
		links[i] = identityLinks(in, dim)
		cins[i] = in.Clone()
	}
	return &Spec{
		kind:  KindConcat,
		attr:  fmt.Sprintf("d%d,n%d", dim, len(ins)),
		ins:   cins,
		out:   out,
		dt:    dt,
		links: links,
		flops: func(s *Spec) float64 { return 0 },
	}
}

// NewTranspose permutes dimensions; perm is 0-based into the input shape.
func NewTranspose(x tensor.Shape, perm []int, dt tensor.DType) *Spec {
	if len(perm) != x.Rank() {
		panic(fmt.Sprintf("ops: Transpose perm %v rank mismatch %v", perm, x))
	}
	out := make(tensor.Shape, len(perm))
	links := make([]DimLink, len(perm))
	for j, p := range perm {
		out[j] = x[p]
		links[j] = DimLink{p + 1, j + 1}
	}
	return &Spec{
		kind:  KindTranspose,
		attr:  fmt.Sprintf("p%v", perm),
		ins:   []tensor.Shape{x.Clone()},
		out:   out,
		dt:    dt,
		links: [][]DimLink{links},
		flops: func(s *Spec) float64 { return 0 },
	}
}

// NewReshape reinterprets x with a new shape of equal element count.
// Dimension links are established only for leading and trailing dimensions
// whose extents are preserved, which keeps fission sound across reshapes.
func NewReshape(x, to tensor.Shape, dt tensor.DType) *Spec {
	if x.Elems() != to.Elems() {
		panic(fmt.Sprintf("ops: Reshape %v -> %v changes element count", x, to))
	}
	var links []DimLink
	for d := 0; d < x.Rank() && d < to.Rank(); d++ {
		if x[d] != to[d] {
			break
		}
		links = append(links, DimLink{d + 1, d + 1})
	}
	lead := len(links)
	for d := 0; d < x.Rank() && d < to.Rank(); d++ {
		id, od := x.Rank()-1-d, to.Rank()-1-d
		if id < lead || od < lead || x[id] != to[od] {
			break
		}
		links = append(links, DimLink{id + 1, od + 1})
	}
	return &Spec{
		kind:  KindReshape,
		attr:  fmt.Sprintf("to%v", to),
		ins:   []tensor.Shape{x.Clone()},
		out:   to.Clone(),
		dt:    dt,
		links: [][]DimLink{links},
		flops: func(s *Spec) float64 { return 0 },
	}
}

// NewEmbedding gathers rows of table[V,C] by ids[B,...] into [B,...,C].
func NewEmbedding(ids, table tensor.Shape, dt tensor.DType) *Spec {
	if table.Rank() != 2 {
		panic(fmt.Sprintf("ops: Embedding table must be [V,C], got %v", table))
	}
	out := append(ids.Clone(), table[1])
	var idLinks []DimLink
	for d := 1; d <= ids.Rank(); d++ {
		idLinks = append(idLinks, DimLink{d, d})
	}
	return &Spec{
		kind: KindEmbedding,
		ins:  []tensor.Shape{ids.Clone(), table.Clone()},
		out:  out,
		dt:   dt,
		links: [][]DimLink{
			idLinks,
			{{2, out.Rank()}},
		},
		flops: func(s *Spec) float64 { return float64(s.out.Elems()) },
	}
}

// NewCrossEntropy computes mean softmax cross-entropy of logits[..., V]
// against integer labels [...] (same leading dims), producing a scalar
// loss. Leading dims become reduce axes (batch fission accumulates losses).
func NewCrossEntropy(logits, labels tensor.Shape, dt tensor.DType) *Spec {
	if logits.Rank() != labels.Rank()+1 {
		panic(fmt.Sprintf("ops: CrossEntropy shapes %v vs %v", logits, labels))
	}
	var reduce []int
	var ll, bl []DimLink
	for d := 1; d <= labels.Rank(); d++ {
		if logits[d-1] != labels[d-1] {
			panic(fmt.Sprintf("ops: CrossEntropy leading dims differ %v vs %v", logits, labels))
		}
		reduce = append(reduce, labels[d-1])
		ll = append(ll, DimLink{d, -d})
		bl = append(bl, DimLink{d, -d})
	}
	return &Spec{
		kind:   KindCrossEnt,
		ins:    []tensor.Shape{logits.Clone(), labels.Clone()},
		out:    tensor.S(),
		dt:     dt,
		reduce: reduce,
		links:  [][]DimLink{ll, bl},
		flops:  func(s *Spec) float64 { return 6 * float64(s.ins[0].Elems()) },
	}
}
