package ops

import (
	"strconv"
	"sync"

	"magis/internal/tensor"
)

// Store and Load are the explicit swapping operators of §5.2. A Store
// copies a tensor to external (host) storage; its output lives off-device,
// so it occupies zero device memory. A Load copies it back.
//
// The optimizer creates one Store/Load descriptor per swap candidate, and
// a budgeted search generates tens of thousands of those over a handful of
// distinct tensor shapes, so the constructors intern: Specs are immutable,
// making one shared descriptor per (kind, shape, dtype) both safe and
// profitable — the pointer-keyed memo tables downstream (region pricing,
// WL clean checks) see stable identities, and the per-candidate fan-out of
// shape clones, link tables, and attr-key strings disappears.

var transferCache sync.Map // string -> *Spec

func internTransfer(kind string, x tensor.Shape, dt tensor.DType, mk func() *Spec) *Spec {
	var buf [64]byte
	kb := append(buf[:0], kind...)
	kb = append(kb, '|', byte(dt))
	for _, d := range x {
		kb = append(kb, '|')
		kb = strconv.AppendInt(kb, int64(d), 10)
	}
	key := string(kb)
	if v, ok := transferCache.Load(key); ok {
		return v.(*Spec)
	}
	v, _ := transferCache.LoadOrStore(key, mk())
	return v.(*Spec)
}

// NewStore copies a device tensor of the given shape to external storage.
func NewStore(x tensor.Shape, dt tensor.DType) *Spec {
	return internTransfer(KindStore, x, dt, func() *Spec {
		return &Spec{
			kind:  KindStore,
			ins:   []tensor.Shape{x.Clone()},
			out:   x.Clone(),
			dt:    dt,
			links: [][]DimLink{identityLinks(x)},
			flops: func(s *Spec) float64 { return 0 },
		}
	})
}

// NewLoad copies a stored tensor back into device memory.
func NewLoad(x tensor.Shape, dt tensor.DType) *Spec {
	return internTransfer(KindLoad, x, dt, func() *Spec {
		return &Spec{
			kind:  KindLoad,
			ins:   []tensor.Shape{x.Clone()},
			out:   x.Clone(),
			dt:    dt,
			links: [][]DimLink{identityLinks(x)},
			flops: func(s *Spec) float64 { return 0 },
		}
	})
}

// IsStore reports whether kind names the Store operator.
func IsStore(kind string) bool { return kind == KindStore }

// IsLoad reports whether kind names the Load operator.
func IsLoad(kind string) bool { return kind == KindLoad }

// IsTransfer reports whether kind is a host<->device copy.
func IsTransfer(kind string) bool { return IsStore(kind) || IsLoad(kind) }

// TransferBytes returns the bytes moved over the host link by a transfer
// op, or 0 for compute ops.
func TransferBytes(s *Spec) int64 {
	if !IsTransfer(s.kind) {
		return 0
	}
	return tensor.Bytes(s.out, s.dt)
}
