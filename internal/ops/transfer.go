package ops

import "magis/internal/tensor"

// Store and Load are the explicit swapping operators of §5.2. A Store
// copies a tensor to external (host) storage; its output lives off-device,
// so it occupies zero device memory. A Load copies it back.

// NewStore copies a device tensor of the given shape to external storage.
func NewStore(x tensor.Shape, dt tensor.DType) *Spec {
	return &Spec{
		kind:  KindStore,
		ins:   []tensor.Shape{x.Clone()},
		out:   x.Clone(),
		dt:    dt,
		links: [][]DimLink{identityLinks(x)},
		flops: func(s *Spec) float64 { return 0 },
	}
}

// NewLoad copies a stored tensor back into device memory.
func NewLoad(x tensor.Shape, dt tensor.DType) *Spec {
	return &Spec{
		kind:  KindLoad,
		ins:   []tensor.Shape{x.Clone()},
		out:   x.Clone(),
		dt:    dt,
		links: [][]DimLink{identityLinks(x)},
		flops: func(s *Spec) float64 { return 0 },
	}
}

// IsStore reports whether kind names the Store operator.
func IsStore(kind string) bool { return kind == KindStore }

// IsLoad reports whether kind names the Load operator.
func IsLoad(kind string) bool { return kind == KindLoad }

// IsTransfer reports whether kind is a host<->device copy.
func IsTransfer(kind string) bool { return IsStore(kind) || IsLoad(kind) }

// TransferBytes returns the bytes moved over the host link by a transfer
// op, or 0 for compute ops.
func TransferBytes(s *Spec) int64 {
	if !IsTransfer(s.kind) {
		return 0
	}
	return tensor.Bytes(s.out, s.dt)
}
