package ops

import "fmt"

// flopsFor returns the cost function for a serialized operator kind,
// recomputing every constructor's formula from the Spec's own fields so
// that deserialized operators price identically to freshly built ones.
func flopsFor(kind string) func(*Spec) float64 {
	if f, ok := flopsRegistry[kind]; ok {
		return f
	}
	return func(*Spec) float64 { return 0 }
}

func outTimesReduce(s *Spec) float64 {
	return 2 * float64(s.out.Elems()) * float64(s.reduce[0])
}

func leadReduceProduct(s *Spec) float64 {
	lead := 1.0
	for _, e := range s.reduce {
		lead *= float64(e)
	}
	return 2 * lead * float64(s.out.Elems())
}

func perElem(f float64) func(*Spec) float64 {
	return func(s *Spec) float64 { return f * float64(s.out.Elems()) }
}

func perIn0(f float64) func(*Spec) float64 {
	return func(s *Spec) float64 { return f * float64(s.ins[0].Elems()) }
}

func perLastIn(s *Spec) float64 {
	return float64(s.ins[len(s.ins)-1].Elems())
}

var flopsRegistry = map[string]func(*Spec) float64{
	KindMatmul:   outTimesReduce,
	KindBatchMM:  outTimesReduce,
	"Linear":     outTimesReduce,
	"LinearBwdW": leadReduceProduct,
	KindConv2d: func(s *Spec) float64 {
		return 2 * float64(s.out.Elems()) * float64(s.reduce[0]) *
			float64(s.ins[1][2]) * float64(s.ins[1][3])
	},
	"ConvBwdData": func(s *Spec) float64 {
		return 2 * float64(s.ins[0].Elems()) * float64(s.ins[1][1]) *
			float64(s.ins[1][2]) * float64(s.ins[1][3])
	},
	"ConvBwdFilter": func(s *Spec) float64 {
		return 2 * float64(s.ins[1].Elems()) * float64(s.out[1]) *
			float64(s.out[2]) * float64(s.out[3])
	},
	KindPool2d: func(s *Spec) float64 {
		var k, st int
		var pk string
		fmt.Sscanf(s.attr, "%[^,],k%ds%d", &pk, &k, &st)
		return float64(s.out.Elems()) * float64(k*k)
	},
	"PoolBwd": func(s *Spec) float64 {
		var k, st int
		var pk string
		fmt.Sscanf(s.attr, "%[^,],k%ds%d", &pk, &k, &st)
		return float64(s.ins[1].Elems()) * float64(k*k)
	},
	"Upsample2d":      perElem(1),
	"UpsampleBwd":     perIn0(1),
	"ReLU":            perElem(1),
	"GELU":            perElem(8),
	"Tanh":            perElem(6),
	"Sigmoid":         perElem(4),
	"Dropout":         perElem(2),
	"Scale":           perElem(1),
	"ReLUBwd":         perElem(2),
	"GELUBwd":         perElem(2),
	"TanhBwd":         perElem(2),
	"SigmoidBwd":      perElem(2),
	"DropoutBwd":      perElem(2),
	"ScaleBwd":        perElem(2),
	"Add":             perElem(1),
	"Mul":             perElem(1),
	"BiasAdd":         perElem(1),
	KindSoftmax:       perElem(5),
	"SoftmaxBwd":      perElem(4),
	KindLayerNorm:     perElem(8),
	"LayerNormBwdX":   perElem(10),
	"LayerNormBwdP":   perIn0(4),
	"BatchNorm2d":     perElem(4),
	"BatchNormBwdX":   perElem(6),
	"BatchNormBwdP":   perIn0(2),
	KindReduce:        perIn0(1),
	"Broadcast":       perElem(1),
	"Pad":             perElem(1),
	KindEmbedding:     perElem(1),
	"EmbeddingBwd":    func(s *Spec) float64 { return perLastIn(s) },
	"BiasBwd":         func(s *Spec) float64 { return perLastIn(s) },
	KindCrossEnt:      perIn0(6),
	"CrossEntropyBwd": perElem(4),
	"ApplySGD":        perElem(2),
}
