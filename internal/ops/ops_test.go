package ops

import (
	"testing"
	"testing/quick"

	"magis/internal/graph"
	"magis/internal/tensor"
)

// Compile-time check: *Spec satisfies the graph node payload interface.
var _ graph.Op = (*Spec)(nil)

func TestMatmulShapesAndFlops(t *testing.T) {
	m := NewMatmul(tensor.S(8, 16), tensor.S(16, 32), false, false, tensor.F32)
	if !m.OutShape().Equal(tensor.S(8, 32)) {
		t.Fatalf("out = %v", m.OutShape())
	}
	if got, want := m.FLOPs(), 2.0*8*32*16; got != want {
		t.Errorf("FLOPs = %g, want %g", got, want)
	}
	// Transposed variants.
	mt := NewMatmul(tensor.S(16, 8), tensor.S(16, 32), true, false, tensor.F32)
	if !mt.OutShape().Equal(tensor.S(8, 32)) {
		t.Errorf("TN out = %v", mt.OutShape())
	}
	nt := NewMatmul(tensor.S(8, 16), tensor.S(32, 16), false, true, tensor.F32)
	if !nt.OutShape().Equal(tensor.S(8, 32)) {
		t.Errorf("NT out = %v", nt.OutShape())
	}
}

func TestMatmulDimLinks(t *testing.T) {
	m := NewMatmul(tensor.S(8, 16), tensor.S(16, 32), false, false, tensor.F32)
	a := m.DimLinks(0)
	if len(a) != 2 || a[0] != (DimLink{1, 1}) || a[1] != (DimLink{2, -1}) {
		t.Errorf("a links = %v", a)
	}
	b := m.DimLinks(1)
	if len(b) != 2 || b[0] != (DimLink{1, -1}) || b[1] != (DimLink{2, 2}) {
		t.Errorf("b links = %v", b)
	}
	if m.NumReduceAxes() != 1 || m.ReduceLen(-1) != 16 {
		t.Errorf("reduce = %d len %d", m.NumReduceAxes(), m.ReduceLen(-1))
	}
}

func TestMatmulMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic on contraction mismatch")
		}
	}()
	NewMatmul(tensor.S(8, 16), tensor.S(17, 32), false, false, tensor.F32)
}

func TestSplitAxisOutputDim(t *testing.T) {
	m := NewMatmul(tensor.S(8, 16), tensor.S(16, 32), false, false, tensor.F32)
	half, err := m.SplitAxis(1, 2) // split m dimension
	if err != nil {
		t.Fatal(err)
	}
	if !half.OutShape().Equal(tensor.S(4, 32)) {
		t.Errorf("split out = %v", half.OutShape())
	}
	if !half.InShape(0).Equal(tensor.S(4, 16)) {
		t.Errorf("split a = %v", half.InShape(0))
	}
	if !half.InShape(1).Equal(tensor.S(16, 32)) {
		t.Errorf("b should be untouched, got %v", half.InShape(1))
	}
	if half.FLOPs() != m.FLOPs()/2 {
		t.Errorf("split FLOPs = %g, want half of %g", half.FLOPs(), m.FLOPs())
	}
	// Original untouched.
	if !m.OutShape().Equal(tensor.S(8, 32)) {
		t.Error("SplitAxis mutated the original")
	}
}

func TestSplitAxisReduce(t *testing.T) {
	m := NewMatmul(tensor.S(8, 16), tensor.S(16, 32), false, false, tensor.F32)
	part, err := m.SplitAxis(-1, 4)
	if err != nil {
		t.Fatal(err)
	}
	if part.ReduceLen(-1) != 4 {
		t.Errorf("reduce len = %d", part.ReduceLen(-1))
	}
	if !part.InShape(0).Equal(tensor.S(8, 4)) || !part.InShape(1).Equal(tensor.S(4, 32)) {
		t.Errorf("reduce-split inputs = %v, %v", part.InShape(0), part.InShape(1))
	}
	if !part.OutShape().Equal(tensor.S(8, 32)) {
		t.Error("reduce split must keep output shape")
	}
}

func TestSplitAxisErrors(t *testing.T) {
	m := NewMatmul(tensor.S(8, 16), tensor.S(16, 32), false, false, tensor.F32)
	if _, err := m.SplitAxis(1, 3); err == nil {
		t.Error("8 not divisible by 3: want error")
	}
	if _, err := m.SplitAxis(5, 2); err == nil {
		t.Error("no axis 5: want error")
	}
}

func TestConv2dShapes(t *testing.T) {
	c := NewConv2d(tensor.S(4, 3, 32, 32), tensor.S(16, 3, 3, 3), 1, 1, tensor.F32)
	if !c.OutShape().Equal(tensor.S(4, 16, 32, 32)) {
		t.Fatalf("out = %v", c.OutShape())
	}
	s2 := NewConv2d(tensor.S(4, 3, 32, 32), tensor.S(16, 3, 3, 3), 2, 1, tensor.F32)
	if !s2.OutShape().Equal(tensor.S(4, 16, 16, 16)) {
		t.Errorf("strided out = %v", s2.OutShape())
	}
	// Batch split.
	half, err := c.SplitAxis(1, 2)
	if err != nil {
		t.Fatal(err)
	}
	if !half.InShape(0).Equal(tensor.S(2, 3, 32, 32)) {
		t.Errorf("batch-split x = %v", half.InShape(0))
	}
	if !half.InShape(1).Equal(tensor.S(16, 3, 3, 3)) {
		t.Error("weights must not shrink on batch split")
	}
}

func TestConvBwdShapes(t *testing.T) {
	x, w := tensor.S(4, 3, 32, 32), tensor.S(16, 3, 3, 3)
	fwd := NewConv2d(x, w, 1, 1, tensor.F32)
	dy := fwd.OutShape()
	bd := NewConvBwdData(dy, w, x, 1, 1, tensor.F32)
	if !bd.OutShape().Equal(x) {
		t.Errorf("bwd data out = %v", bd.OutShape())
	}
	bf := NewConvBwdFilter(x, dy, w, 1, 1, tensor.F32)
	if !bf.OutShape().Equal(w) {
		t.Errorf("bwd filter out = %v", bf.OutShape())
	}
	// Batch fission of the filter gradient goes through the reduce axis.
	part, err := bf.SplitAxis(-1, 2)
	if err != nil {
		t.Fatal(err)
	}
	if !part.InShape(0).Equal(tensor.S(2, 3, 32, 32)) {
		t.Errorf("batch reduce-split x = %v", part.InShape(0))
	}
	if !part.OutShape().Equal(w) {
		t.Error("filter grad parts keep full shape (merged by Add)")
	}
}

func TestSoftmaxExcludesAxis(t *testing.T) {
	s := NewSoftmax(tensor.S(2, 4, 8), 3, tensor.F32)
	for _, l := range s.DimLinks(0) {
		if l.In == 3 || l.Out == 3 {
			t.Errorf("softmax axis must not be linked: %v", l)
		}
	}
	if len(s.DimLinks(0)) != 2 {
		t.Errorf("links = %v", s.DimLinks(0))
	}
}

func TestConcatAndSlice(t *testing.T) {
	c := NewConcat([]tensor.Shape{tensor.S(2, 3), tensor.S(2, 5)}, 2, tensor.F32)
	if !c.OutShape().Equal(tensor.S(2, 8)) {
		t.Fatalf("concat out = %v", c.OutShape())
	}
	sl := NewSlice(tensor.S(2, 8), 2, 3, 5, tensor.F32)
	if !sl.OutShape().Equal(tensor.S(2, 5)) {
		t.Fatalf("slice out = %v", sl.OutShape())
	}
	// Sliced dim carries no link.
	for _, l := range sl.DimLinks(0) {
		if l.In == 2 {
			t.Errorf("sliced dim linked: %v", l)
		}
	}
}

func TestReshapeLinkMatching(t *testing.T) {
	r := NewReshape(tensor.S(2, 3, 4), tensor.S(2, 12), tensor.F32)
	links := r.DimLinks(0)
	if len(links) != 1 || links[0] != (DimLink{1, 1}) {
		t.Errorf("links = %v (only leading dim preserved)", links)
	}
	r2 := NewReshape(tensor.S(2, 12), tensor.S(2, 3, 4), tensor.F32)
	if len(r2.DimLinks(0)) != 1 {
		t.Errorf("links = %v", r2.DimLinks(0))
	}
	r3 := NewReshape(tensor.S(2, 3, 4), tensor.S(6, 4), tensor.F32)
	links = r3.DimLinks(0)
	if len(links) != 1 || links[0] != (DimLink{3, 2}) {
		t.Errorf("trailing link = %v", links)
	}
}

func TestBatchMatmul(t *testing.T) {
	b := NewBatchMatmul(tensor.S(2, 4, 8, 16), tensor.S(2, 4, 16, 32), false, false, tensor.F32)
	if !b.OutShape().Equal(tensor.S(2, 4, 8, 32)) {
		t.Fatalf("out = %v", b.OutShape())
	}
	// Split a batch dim: both inputs shrink.
	h, err := b.SplitAxis(2, 2)
	if err != nil {
		t.Fatal(err)
	}
	if !h.InShape(0).Equal(tensor.S(2, 2, 8, 16)) || !h.InShape(1).Equal(tensor.S(2, 2, 16, 32)) {
		t.Errorf("batch split inputs = %v %v", h.InShape(0), h.InShape(1))
	}
	// Split the m dim: only input a shrinks (FlashAttention-style rows).
	h2, err := b.SplitAxis(3, 2)
	if err != nil {
		t.Fatal(err)
	}
	if !h2.InShape(0).Equal(tensor.S(2, 4, 4, 16)) {
		t.Errorf("row split a = %v", h2.InShape(0))
	}
	if !h2.InShape(1).Equal(tensor.S(2, 4, 16, 32)) {
		t.Errorf("row split must keep b, got %v", h2.InShape(1))
	}
}

func TestCrossEntropyReduceAxes(t *testing.T) {
	ce := NewCrossEntropy(tensor.S(32, 512, 50257), tensor.S(32, 512), tensor.BF16)
	if ce.OutShape().Rank() != 0 {
		t.Errorf("loss should be scalar, got %v", ce.OutShape())
	}
	if ce.NumReduceAxes() != 2 || ce.ReduceLen(-1) != 32 || ce.ReduceLen(-2) != 512 {
		t.Errorf("reduce axes wrong: %d", ce.NumReduceAxes())
	}
}

func TestTransferOps(t *testing.T) {
	st := NewStore(tensor.S(1024), tensor.F32)
	ld := NewLoad(tensor.S(1024), tensor.F32)
	if !IsStore(st.Kind()) || !IsLoad(ld.Kind()) || IsTransfer(KindMatmul) {
		t.Error("kind predicates wrong")
	}
	if TransferBytes(st) != 4096 || TransferBytes(ld) != 4096 {
		t.Error("transfer bytes wrong")
	}
	m := NewMatmul(tensor.S(2, 2), tensor.S(2, 2), false, false, tensor.F32)
	if TransferBytes(m) != 0 {
		t.Error("compute op has no transfer bytes")
	}
}

func TestEmbedding(t *testing.T) {
	e := NewEmbedding(tensor.S(32, 512), tensor.S(50257, 2048), tensor.BF16)
	if !e.OutShape().Equal(tensor.S(32, 512, 2048)) {
		t.Fatalf("out = %v", e.OutShape())
	}
	eb := NewEmbeddingBwd(tensor.S(32, 512), tensor.S(32, 512, 2048), tensor.S(50257, 2048), tensor.BF16)
	if !eb.OutShape().Equal(tensor.S(50257, 2048)) {
		t.Fatalf("bwd out = %v", eb.OutShape())
	}
	if eb.NumReduceAxes() != 2 {
		t.Error("embedding bwd reduces over gathered dims")
	}
}

func TestAttrKeyDistinguishes(t *testing.T) {
	a := NewMatmul(tensor.S(8, 16), tensor.S(16, 32), false, false, tensor.F32)
	b := NewMatmul(tensor.S(16, 8), tensor.S(16, 32), true, false, tensor.F32)
	if a.AttrKey() == b.AttrKey() {
		t.Error("transpose variants must differ in AttrKey")
	}
}

// Property: splitting any splittable output axis by any divisor keeps
// FLOPs proportional and preserves shape consistency with DimLinks.
func TestQuickSplitConsistency(t *testing.T) {
	f := func(mRaw, kRaw, nRaw uint8) bool {
		m := 2 * (int(mRaw)%16 + 1)
		k := 2 * (int(kRaw)%16 + 1)
		n := 2 * (int(nRaw)%16 + 1)
		op := NewMatmul(tensor.S(m, k), tensor.S(k, n), false, false, tensor.F32)
		half, err := op.SplitAxis(1, 2)
		if err != nil {
			return false
		}
		if half.OutShape().Dim(1) != m/2 {
			return false
		}
		// The split part's FLOPs must be exactly half.
		return half.FLOPs()*2 == op.FLOPs()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: identityLinks-based unary ops survive splitting any dimension.
func TestQuickEltwiseSplitAnyDim(t *testing.T) {
	f := func(aRaw, bRaw, cRaw, dimRaw uint8) bool {
		dims := tensor.S(2*(int(aRaw)%8+1), 2*(int(bRaw)%8+1), 2*(int(cRaw)%8+1))
		op := NewReLU(dims, tensor.F32)
		dim := int(dimRaw)%3 + 1
		half, err := op.SplitAxis(dim, 2)
		if err != nil {
			return false
		}
		return half.OutShape().Dim(dim) == dims.Dim(dim)/2 &&
			half.InShape(0).Dim(dim) == dims.Dim(dim)/2
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
