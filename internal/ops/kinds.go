package ops

import "sort"

// structuralKinds are the operator kinds that carry no FLOPs and therefore
// do not appear in the flops registry: graph leaves, pure data-movement
// reshapes, and the host-transfer pair.
var structuralKinds = []string{
	KindInput, KindParam,
	KindSlice, KindConcat, KindTranspose, KindReshape,
	"SplitHeads", "MergeHeads",
	KindStore, KindLoad,
}

// Kinds enumerates every registered operator kind — compute kinds from the
// flops registry plus the zero-FLOP structural kinds — in sorted order.
// Coverage tests (codegen emission, reference execution) iterate this list
// so a newly registered operator cannot silently miss a backend.
func Kinds() []string {
	seen := make(map[string]bool, len(flopsRegistry)+len(structuralKinds))
	out := make([]string, 0, len(flopsRegistry)+len(structuralKinds))
	for k := range flopsRegistry {
		if !seen[k] {
			seen[k] = true
			out = append(out, k)
		}
	}
	for _, k := range structuralKinds {
		if !seen[k] {
			seen[k] = true
			out = append(out, k)
		}
	}
	sort.Strings(out)
	return out
}

// IsRegistered reports whether kind names a registered operator.
func IsRegistered(kind string) bool {
	if _, ok := flopsRegistry[kind]; ok {
		return true
	}
	for _, k := range structuralKinds {
		if k == kind {
			return true
		}
	}
	return false
}
