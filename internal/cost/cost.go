// Package cost provides the analytic operator latency model and the
// operator performance cache (§6.2). It stands in for the paper's measured
// cuDNN/cuBLAS kernel timings: every algorithm in MAGIS consumes only
// per-operator latencies, and this model reproduces the effects those
// algorithms trade on — small operators run at lower hardware utilization
// (so fission costs latency), per-kernel launch overhead penalizes
// fine-grained splitting, and host transfers are bandwidth-limited (so
// swapping costs latency unless hidden by overlap).
package cost

import (
	"sync"
	"sync/atomic"

	"magis/internal/graph"
	"magis/internal/ops"
)

// Device models the relevant characteristics of an accelerator.
type Device struct {
	Name string
	// PeakFLOPS is the peak compute throughput in FLOP/s.
	PeakFLOPS float64
	// MemBW is device-memory bandwidth in bytes/s.
	MemBW float64
	// HostBW is host-link (PCIe) bandwidth in bytes/s, used by Store/Load.
	HostBW float64
	// Launch is the fixed per-kernel launch overhead in seconds.
	Launch float64
	// Capacity is device memory in bytes.
	Capacity int64
	// OccElems is the number of output elements at which compute
	// utilization reaches 50%; smaller tensors run proportionally slower.
	OccElems float64
	// OccBytes is the byte count at which memory-bandwidth utilization
	// reaches 50%.
	OccBytes float64
}

// RTX3090 returns a device resembling the paper's evaluation platform
// (NVIDIA GeForce RTX 3090, tf32 workloads, PCIe 4.0 x16).
func RTX3090() *Device {
	return &Device{
		Name:      "RTX3090",
		PeakFLOPS: 35.6e12,
		MemBW:     936e9,
		HostBW:    25e9,
		Launch:    5e-6,
		Capacity:  24 << 30,
		OccElems:  1 << 17,
		OccBytes:  1 << 20,
	}
}

// Model computes operator latencies against one Device, memoizing results
// in a performance cache keyed by operator signature — mirroring the
// paper's simulator with operator performance cache. The cache is a
// sync.Map read concurrently by every search worker; the previous
// mutex-guarded map serialized the workers (every candidate evaluation
// prices hundreds of operators) and was a measured cause of the pool's
// flat scaling.
type Model struct {
	Dev *Device

	cache sync.Map // Spec.SigKey() -> float64 seconds
	hits  atomic.Int64
	miss  atomic.Int64
}

// NewModel returns a Model for dev.
func NewModel(dev *Device) *Model {
	return &Model{Dev: dev}
}

// OpLatency returns the latency of one execution of s, in seconds.
// Leaf nodes (Input/Param) cost nothing; transfers are sized by HostBW;
// compute ops follow a roofline with occupancy-dependent utilization.
func (m *Model) OpLatency(s *ops.Spec) float64 {
	if ops.IsLeaf(s.Kind()) {
		return 0
	}
	key := s.SigKey()
	if v, ok := m.cache.Load(key); ok {
		m.hits.Add(1)
		return v.(float64)
	}
	m.miss.Add(1)
	v := m.rawLatency(s)
	m.cache.Store(key, v)
	return v
}

func (m *Model) rawLatency(s *ops.Spec) float64 {
	d := m.Dev
	if ops.IsTransfer(s.Kind()) {
		return float64(ops.TransferBytes(s))/d.HostBW + d.Launch
	}
	// Parallelism proxy: reductions (loss, bias/weight-grad sums) expose
	// their input elements as parallel work even when the output is tiny.
	elems := float64(s.OutShape().Elems())
	var inElems float64
	for i := 0; i < s.NumIns(); i++ {
		inElems += float64(s.InShape(i).Elems())
	}
	if inElems > elems {
		elems = inElems
	}
	bytes := float64(s.OutBytes() + s.InBytes())
	utilC := elems / (elems + d.OccElems)
	utilM := bytes / (bytes + d.OccBytes)
	tc := 0.0
	if f := s.FLOPs(); f > 0 {
		tc = f / (d.PeakFLOPS * utilC)
	}
	tm := bytes / (d.MemBW * utilM)
	t := tc
	if tm > t {
		t = tm
	}
	return t + d.Launch
}

// TransferLatency returns the host-link time to move n bytes.
func (m *Model) TransferLatency(n int64) float64 {
	return float64(n)/m.Dev.HostBW + m.Dev.Launch
}

// CacheStats returns (hits, misses) of the performance cache.
func (m *Model) CacheStats() (hits, misses int64) {
	return m.hits.Load(), m.miss.Load()
}

// NodeLatency returns the latency of a graph node's operator. Nodes whose
// payload is not an *ops.Spec cost nothing.
func (m *Model) NodeLatency(n *graph.Node) float64 {
	if s, ok := n.Op.(*ops.Spec); ok {
		return m.OpLatency(s)
	}
	return 0
}

// GraphComputeLatency returns the paper's §2.1 latency estimate
// cost(G) = sum over v of cost(v), counting compute-stream operators only;
// Store/Load run on the copy stream and contribute through overlap, which
// internal/sim models exactly.
func (m *Model) GraphComputeLatency(g *graph.Graph) float64 {
	var t float64
	for _, id := range g.NodeIDs() {
		n := g.Node(id)
		if ops.IsTransfer(n.Op.Kind()) {
			continue
		}
		t += m.NodeLatency(n)
	}
	return t
}

// GraphTransferLatency returns the total copy-stream busy time of g.
func (m *Model) GraphTransferLatency(g *graph.Graph) float64 {
	var t float64
	for _, id := range g.NodeIDs() {
		n := g.Node(id)
		if ops.IsTransfer(n.Op.Kind()) {
			t += m.NodeLatency(n)
		}
	}
	return t
}
