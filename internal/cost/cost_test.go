package cost

import (
	"testing"

	"magis/internal/ops"
	"magis/internal/tensor"
)

func TestLeafAndTransferLatency(t *testing.T) {
	m := NewModel(RTX3090())
	in := ops.NewInput(tensor.S(1024, 1024), tensor.F32)
	if m.OpLatency(in) != 0 {
		t.Error("inputs cost nothing")
	}
	st := ops.NewStore(tensor.S(1024, 1024), tensor.F32)
	want := 4.0 * 1024 * 1024 / m.Dev.HostBW
	got := m.OpLatency(st)
	if got < want || got > want+2*m.Dev.Launch {
		t.Errorf("store latency = %g, want ~%g", got, want)
	}
}

func TestComputeRoofline(t *testing.T) {
	m := NewModel(RTX3090())
	// Large matmul: compute-bound, near peak.
	big := ops.NewMatmul(tensor.S(4096, 4096), tensor.S(4096, 4096), false, false, tensor.F32)
	tBig := m.OpLatency(big)
	ideal := big.FLOPs() / m.Dev.PeakFLOPS
	if tBig < ideal {
		t.Errorf("latency %g below ideal %g", tBig, ideal)
	}
	if tBig > 2*ideal {
		t.Errorf("big matmul should be near peak: %g vs ideal %g", tBig, ideal)
	}
	// Elementwise op: memory-bound.
	relu := ops.NewReLU(tensor.S(4096, 4096), tensor.F32)
	tRelu := m.OpLatency(relu)
	memIdeal := float64(relu.OutBytes()+relu.InBytes()) / m.Dev.MemBW
	if tRelu < memIdeal {
		t.Errorf("relu %g below memory roofline %g", tRelu, memIdeal)
	}
}

func TestFissionUtilizationPenalty(t *testing.T) {
	m := NewModel(RTX3090())
	full := ops.NewMatmul(tensor.S(256, 1024), tensor.S(1024, 1024), false, false, tensor.F32)
	part, err := full.SplitAxis(1, 8)
	if err != nil {
		t.Fatal(err)
	}
	tFull := m.OpLatency(full)
	tParts := 8 * m.OpLatency(part)
	if tParts <= tFull {
		t.Errorf("8 split parts (%g) must be slower than one op (%g)", tParts, tFull)
	}
	// But not catastrophically so for this size.
	if tParts > 10*tFull {
		t.Errorf("penalty too extreme: %g vs %g", tParts, tFull)
	}
}

func TestPerformanceCache(t *testing.T) {
	m := NewModel(RTX3090())
	op := ops.NewMatmul(tensor.S(64, 64), tensor.S(64, 64), false, false, tensor.F32)
	a := m.OpLatency(op)
	b := m.OpLatency(op)
	if a != b {
		t.Error("cache must return identical latencies")
	}
	hits, misses := m.CacheStats()
	if hits != 1 || misses != 1 {
		t.Errorf("cache stats = %d hits %d misses", hits, misses)
	}
}

func TestMonotoneInN(t *testing.T) {
	// Total latency of n sequential parts grows with n.
	m := NewModel(RTX3090())
	full := ops.NewMatmul(tensor.S(512, 512), tensor.S(512, 512), false, false, tensor.F32)
	prev := m.OpLatency(full)
	for _, n := range []int{2, 4, 8} {
		part, err := full.SplitAxis(1, n)
		if err != nil {
			t.Fatal(err)
		}
		total := float64(n) * m.OpLatency(part)
		if total < prev {
			t.Errorf("n=%d total %g not monotone (prev %g)", n, total, prev)
		}
		prev = total
	}
}
