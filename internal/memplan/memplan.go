// Package memplan is an offline memory planner: it assigns concrete arena
// offsets to every tensor given a schedule, reusing addresses across
// disjoint lifetimes (the static allocation pass DNN compilers such as TVM
// run, whose "memory planner" the paper instruments for its measurements).
// The resulting arena size is the allocator-level peak — the §2.1 lifetime
// peak plus fragmentation — and quantifies how realistic the idealized
// lifetime model is for a given schedule.
package memplan

import (
	"fmt"
	"sort"

	"magis/internal/graph"
	"magis/internal/sched"
)

// Block is one tensor's placement in the arena.
type Block struct {
	Node   graph.NodeID
	Offset int64
	Size   int64
	// Start and End are the schedule steps of the lifetime [Start, End].
	Start, End int
}

// Plan is a complete arena layout.
type Plan struct {
	// ArenaSize is the bytes the arena must span (allocator peak).
	ArenaSize int64
	// LifetimePeak is the idealized §2.1 peak (sum of concurrently live
	// tensors), a lower bound on ArenaSize.
	LifetimePeak int64
	Blocks       []Block
}

// Fragmentation is the allocator overhead beyond the idealized peak, as a
// fraction of the idealized peak (0 = perfect reuse).
func (p *Plan) Fragmentation() float64 {
	if p.LifetimePeak == 0 {
		return 0
	}
	return float64(p.ArenaSize-p.LifetimePeak) / float64(p.LifetimePeak)
}

// Build computes an arena layout for executing g in the given order using
// greedy best-fit on tensors sorted by size descending (the standard
// offline planning heuristic; optimal layout is NP-hard).
func Build(g *graph.Graph, order sched.Schedule) (*Plan, error) {
	if err := order.Validate(g); err != nil {
		return nil, fmt.Errorf("memplan: %w", err)
	}
	pos := make(map[graph.NodeID]int, len(order))
	for i, v := range order {
		pos[v] = i
	}
	var blocks []Block
	for i, v := range order {
		size := sched.OutDeviceBytes(g.Node(v))
		if size == 0 {
			continue
		}
		end := i
		for _, c := range g.Suc(v) {
			if p, ok := pos[c]; ok && p > end {
				end = p
			}
		}
		if len(g.Suc(v)) == 0 {
			end = len(order) - 1
		}
		blocks = append(blocks, Block{Node: v, Size: size, Start: i, End: end})
	}
	// Idealized lifetime peak.
	prof := sched.Simulate(g, order)

	// Greedy best-fit: place big tensors first; each goes to the lowest
	// offset where it fits without overlapping any lifetime-conflicting
	// placed block.
	idx := make([]int, len(blocks))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool {
		ba, bb := blocks[idx[a]], blocks[idx[b]]
		if ba.Size != bb.Size {
			return ba.Size > bb.Size
		}
		return ba.Start < bb.Start
	})
	var arena int64
	placed := make([]int, 0, len(blocks))
	for _, bi := range idx {
		b := &blocks[bi]
		// Collect conflicting intervals sorted by offset.
		type iv struct{ lo, hi int64 }
		var busy []iv
		for _, pj := range placed {
			p := &blocks[pj]
			if p.Start <= b.End && b.Start <= p.End {
				busy = append(busy, iv{p.Offset, p.Offset + p.Size})
			}
		}
		sort.Slice(busy, func(i, j int) bool { return busy[i].lo < busy[j].lo })
		var offset int64
		for _, window := range busy {
			if offset+b.Size <= window.lo {
				break
			}
			if window.hi > offset {
				offset = window.hi
			}
		}
		b.Offset = offset
		if offset+b.Size > arena {
			arena = offset + b.Size
		}
		placed = append(placed, bi)
	}
	return &Plan{ArenaSize: arena, LifetimePeak: prof.Peak, Blocks: blocks}, nil
}

// Verify checks the invariant that no two lifetime-overlapping blocks
// overlap in address space.
func (p *Plan) Verify() error {
	for i := range p.Blocks {
		for j := i + 1; j < len(p.Blocks); j++ {
			a, b := &p.Blocks[i], &p.Blocks[j]
			timeOverlap := a.Start <= b.End && b.Start <= a.End
			addrOverlap := a.Offset < b.Offset+b.Size && b.Offset < a.Offset+a.Size
			if timeOverlap && addrOverlap {
				return fmt.Errorf("memplan: blocks %d and %d overlap in time and space", a.Node, b.Node)
			}
		}
	}
	return nil
}
