package memplan

import (
	"math/rand"
	"testing"

	"magis/internal/graph"
	"magis/internal/models"
	"magis/internal/ops"
	"magis/internal/sched"
	"magis/internal/tensor"
)

// checkPlan asserts the planner invariants the differential audit relies
// on: lifetime-overlapping blocks never share addresses, the arena always
// covers the idealized lifetime peak, and every block lies inside the
// arena span.
func checkPlan(t *testing.T, g *graph.Graph, order sched.Schedule) {
	t.Helper()
	p, err := Build(g, order)
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	if err := p.Verify(); err != nil {
		t.Fatal(err)
	}
	if p.ArenaSize < p.LifetimePeak {
		t.Fatalf("arena %d below lifetime peak %d", p.ArenaSize, p.LifetimePeak)
	}
	for _, b := range p.Blocks {
		if b.Offset < 0 || b.Offset+b.Size > p.ArenaSize {
			t.Fatalf("block %d [%d,%d) outside arena %d", b.Node, b.Offset, b.Offset+b.Size, p.ArenaSize)
		}
		if b.Start > b.End {
			t.Fatalf("block %d has inverted lifetime [%d,%d]", b.Node, b.Start, b.End)
		}
	}
}

// FuzzBuild drives byte-programs of DAG construction against the planner,
// in the style of graph's FuzzValidate. Each byte pair is one instruction:
// opcode (mod 4) + operand. The properties under test: Build never panics
// or errors on a valid topological order, no two blocks with intersecting
// lifetimes overlap in address space (Plan.Verify), and the arena never
// undercuts the lifetime peak.
func FuzzBuild(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0, 10, 1, 0, 1, 1})       // chain of eltwise ops
	f.Add([]byte{0, 5, 0, 5, 2, 0, 2, 1})  // diamond of adds
	f.Add([]byte{0, 9, 3, 0, 1, 2, 3, 1})  // swap (Store/Load) pairs
	f.Add([]byte{0, 200, 0, 3, 1, 1, 2, 2, 3, 0, 1, 4, 2, 5, 3, 6})
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) > 64 {
			data = data[:64]
		}
		g := graph.New()
		var ids []graph.NodeID
		shape := func(v graph.NodeID) tensor.Shape { return g.Node(v).Op.OutShape() }
		for i := 0; i+1 < len(data); i += 2 {
			op, arg := data[i]%4, int(data[i+1])
			switch {
			case op == 0 || len(ids) == 0:
				ids = append(ids, g.Add(ops.NewInput(tensor.S(1+arg), tensor.F32)))
			case op == 1: // unary eltwise on an existing node
				in := ids[arg%len(ids)]
				ids = append(ids, g.Add(ops.NewEltwise("Op", shape(in), tensor.F32, 1), in))
			case op == 2: // binary add of two same-shape nodes, if any pair exists
				a := ids[arg%len(ids)]
				for _, b := range ids {
					if shape(b).Equal(shape(a)) {
						ids = append(ids, g.Add(ops.NewAdd(shape(a), shape(b), tensor.F32), a, b))
						break
					}
				}
			case op == 3: // swap an existing tensor out and back in
				in := ids[arg%len(ids)]
				if ops.IsTransfer(g.Node(in).Op.Kind()) {
					continue
				}
				st := g.Add(ops.NewStore(shape(in), tensor.F32), in)
				ld := g.Add(ops.NewLoad(shape(in), tensor.F32), st)
				ids = append(ids, g.Add(ops.NewEltwise("Op", shape(ld), tensor.F32, 1), ld))
			}
		}
		if g.Len() == 0 {
			return
		}
		checkPlan(t, g, g.Topo())
	})
}

// TestRandomNASNetPlansSatisfyInvariants is the property test over
// realistic irregular DAGs: a single injected *rand.Rand generates a batch
// of NASNet-like workloads (reproducible as one deterministic stream), and
// every plan must satisfy the arena invariants under both the plain
// topological order and the memory-aware schedule.
func TestRandomNASNetPlansSatisfyInvariants(t *testing.T) {
	r := rand.New(rand.NewSource(37))
	for trial := 0; trial < 5; trial++ {
		w := models.RandomNASNetRand(r, 3, 8, 16, 2)
		checkPlan(t, w.G, w.G.Topo())
		var sc sched.Scheduler
		checkPlan(t, w.G, sc.ScheduleGraph(w.G))
	}
}
