package memplan

import (
	"math/rand"
	"testing"

	"magis/internal/graph"
	"magis/internal/models"
	"magis/internal/ops"
	"magis/internal/sched"
	"magis/internal/tensor"
)

func TestChainReusesAddresses(t *testing.T) {
	// A chain of equal tensors: only two need be live at once, so the
	// arena should be ~2 tensors, not N.
	g := graph.New()
	sh := tensor.S(256)
	prev := g.Add(ops.NewInput(sh, tensor.F32))
	for i := 0; i < 10; i++ {
		prev = g.Add(ops.NewReLU(sh, tensor.F32), prev)
	}
	p, err := Build(g, g.Topo())
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Verify(); err != nil {
		t.Fatal(err)
	}
	one := int64(256 * 4)
	if p.ArenaSize > 3*one {
		t.Errorf("arena %d should reuse addresses (~%d)", p.ArenaSize, 2*one)
	}
	if p.ArenaSize < p.LifetimePeak {
		t.Error("arena below the lifetime lower bound")
	}
}

func TestPlanMatchesLifetimeOnWorkload(t *testing.T) {
	w := models.MLP(64, 32, 64, 10, 2)
	p, err := Build(w.G, w.G.Topo())
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Verify(); err != nil {
		t.Fatal(err)
	}
	if p.ArenaSize < p.LifetimePeak {
		t.Fatalf("arena %d < lifetime peak %d", p.ArenaSize, p.LifetimePeak)
	}
	if f := p.Fragmentation(); f > 0.5 {
		t.Errorf("fragmentation %.2f unreasonably high", f)
	}
}

func TestStoreOutputsNotPlaced(t *testing.T) {
	g := graph.New()
	sh := tensor.S(64)
	x := g.Add(ops.NewInput(sh, tensor.F32))
	st := g.Add(ops.NewStore(sh, tensor.F32), x)
	ld := g.Add(ops.NewLoad(sh, tensor.F32), st)
	g.Add(ops.NewReLU(sh, tensor.F32), ld)
	p, err := Build(g, g.Topo())
	if err != nil {
		t.Fatal(err)
	}
	for _, b := range p.Blocks {
		if b.Node == st {
			t.Error("host-resident Store output placed in the device arena")
		}
	}
}

func TestRandomPlansAlwaysValid(t *testing.T) {
	r := rand.New(rand.NewSource(21))
	for trial := 0; trial < 10; trial++ {
		g := graph.New()
		var ids []graph.NodeID
		for i := 0; i < 40; i++ {
			size := 1 + r.Intn(100)
			if len(ids) == 0 || r.Intn(4) == 0 {
				ids = append(ids, g.Add(ops.NewInput(tensor.S(size), tensor.F32)))
				continue
			}
			in := ids[r.Intn(len(ids))]
			ids = append(ids, g.Add(ops.NewEltwise("Op", g.Node(in).Op.OutShape(), tensor.F32, 1), in))
		}
		var sc sched.Scheduler
		order := sc.ScheduleGraph(g)
		p, err := Build(g, order)
		if err != nil {
			t.Fatal(err)
		}
		if err := p.Verify(); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if p.ArenaSize < p.LifetimePeak {
			t.Fatalf("trial %d: arena below lifetime bound", trial)
		}
	}
}

func TestInvalidScheduleRejected(t *testing.T) {
	g := graph.New()
	x := g.Add(ops.NewInput(tensor.S(4), tensor.F32))
	a := g.Add(ops.NewReLU(tensor.S(4), tensor.F32), x)
	if _, err := Build(g, sched.Schedule{a, x}); err == nil {
		t.Error("invalid schedule accepted")
	}
}
