package graph

import "sort"

// DomTree is the dominator tree T(G) of a computation graph (§2.1). Because
// computation graphs have many entry nodes (input, label, and weight
// tensors), the tree is rooted at a virtual entry that dominates them all;
// the virtual root is represented by Invalid.
type DomTree struct {
	// Parent maps each node to its immediate dominator; nodes dominated
	// only by the virtual root map to Invalid.
	Parent map[NodeID]NodeID

	children map[NodeID][]NodeID
	order    []NodeID // reverse postorder, for deterministic iteration
}

// Internal index sentinels for the iterative solver.
const (
	domVirtual   int32 = -2 // the virtual root
	domUndefined int32 = -3
)

// Dominators computes the dominator tree of g using the iterative
// Cooper-Harvey-Kennedy algorithm over reverse postorder.
func Dominators(g *Graph) *DomTree {
	topo := g.Topo() // a reverse postorder of the DAG from the virtual root
	idx := make([]int32, len(g.nodes))
	for i, v := range topo {
		idx[v] = int32(i)
	}
	idom := make([]int32, len(topo))
	for i := range idom {
		idom[i] = domUndefined
	}
	g.solveIdom(topo, idx, idom, nil)
	return buildDomTree(topo, idom)
}

// DominatorsFrom computes the dominator tree of g by delta from prev, the
// tree of prevG. A node whose entire ancestor cone is unchanged — it
// exists in prevG with element-wise equal Ins and every producer is itself
// clean — keeps its previous immediate dominator exactly: dominance of v
// depends only on the paths from the entries to v, and an unchanged cone
// means unchanged paths. Only dirty nodes re-enter the fix-point
// iteration, with the clean idoms as exact boundary values. Falls back to
// a full computation when prev is nil or more than half the nodes are
// dirty (the warm start would not pay for its bookkeeping).
func DominatorsFrom(prev *DomTree, prevG, g *Graph) *DomTree {
	if prev == nil || prevG == nil {
		return Dominators(g)
	}
	topo := g.Topo()
	n := len(topo)
	idx := make([]int32, len(g.nodes))
	for i, v := range topo {
		idx[v] = int32(i)
	}
	clean := make([]bool, len(g.nodes))
	dirty := make([]bool, n)
	dirtyCnt := 0
	for i, v := range topo {
		node := g.nodes[v]
		ok := prevG.Has(v) && idsEqual(prevG.nodes[v].Ins, node.Ins)
		if ok {
			for _, in := range node.Ins {
				if !clean[in] {
					ok = false
					break
				}
			}
		}
		if ok {
			clean[v] = true
		} else {
			dirty[i] = true
			dirtyCnt++
		}
	}
	if 2*dirtyCnt > n {
		idom := make([]int32, n)
		for i := range idom {
			idom[i] = domUndefined
		}
		g.solveIdom(topo, idx, idom, nil)
		return buildDomTree(topo, idom)
	}
	idom := make([]int32, n)
	for i, v := range topo {
		if dirty[i] {
			idom[i] = domUndefined
			continue
		}
		p, ok := prev.Parent[v]
		switch {
		case !ok:
			// Defensive: clean implies membership in prev's topo, but a
			// malformed prev must degrade to recomputation, not corruption.
			dirty[i] = true
			idom[i] = domUndefined
		case p == Invalid:
			idom[i] = domVirtual
		case !g.Has(p) || idx[p] >= int32(i):
			dirty[i] = true
			idom[i] = domUndefined
		default:
			idom[i] = idx[p]
		}
	}
	g.solveIdom(topo, idx, idom, dirty)
	return buildDomTree(topo, idom)
}

// solveIdom runs the CHK convergence loop in place. topo is a reverse
// postorder, idx maps NodeID to its topo position, and idom holds the
// seeded solution (domUndefined where unknown). When dirty is non-nil only
// those positions are re-examined — their seeds must be domUndefined and
// every other position must already hold its exact final value; the
// monotone iteration then converges to the same fixed point as a full
// solve. Predecessors come straight from Ins (duplicates are harmless: the
// intersection meet is idempotent), keeping the inner loop allocation-free.
func (g *Graph) solveIdom(topo []NodeID, idx, idom []int32, dirty []bool) {
	intersect := func(a, b int32) int32 {
		for a != b {
			for a > b {
				if idom[a] == domVirtual {
					return domVirtual
				}
				a = idom[a]
			}
			for b > a {
				if idom[b] == domVirtual {
					return domVirtual
				}
				b = idom[b]
			}
			if a == domVirtual || b == domVirtual {
				return domVirtual
			}
		}
		return a
	}
	changed := true
	for changed {
		changed = false
		for i, v := range topo {
			if dirty != nil && !dirty[i] {
				continue
			}
			ins := g.nodes[v].Ins
			newIdom := domUndefined
			if len(ins) == 0 {
				newIdom = domVirtual
			} else {
				for _, p := range ins {
					pi := idx[p]
					if idom[pi] == domUndefined {
						continue
					}
					if newIdom == domUndefined {
						newIdom = pi
					} else {
						newIdom = intersect(newIdom, pi)
					}
				}
				if newIdom == domUndefined {
					newIdom = domVirtual
				}
			}
			if idom[i] != newIdom {
				idom[i] = newIdom
				changed = true
			}
		}
	}
}

// buildDomTree materializes the solved idom array into the map-based
// public structure.
func buildDomTree(topo []NodeID, idom []int32) *DomTree {
	t := &DomTree{
		Parent:   make(map[NodeID]NodeID, len(topo)),
		children: make(map[NodeID][]NodeID),
		order:    topo,
	}
	for i, v := range topo {
		if idom[i] == domVirtual {
			t.Parent[v] = Invalid
			t.children[Invalid] = append(t.children[Invalid], v)
		} else {
			p := topo[idom[i]]
			t.Parent[v] = p
			t.children[p] = append(t.children[p], v)
		}
	}
	for _, cs := range t.children {
		sort.Slice(cs, func(i, j int) bool { return cs[i] < cs[j] })
	}
	return t
}

// Children returns T.suc(v): the tree children of v (pass Invalid for the
// virtual root).
func (t *DomTree) Children(v NodeID) []NodeID { return t.children[v] }

// Des returns the strict descendants of v in the dominator tree, i.e. all
// nodes dominated by v other than v itself.
func (t *DomTree) Des(v NodeID) Set {
	out := make(Set)
	stack := append([]NodeID(nil), t.children[v]...)
	for len(stack) > 0 {
		u := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if out[u] {
			continue
		}
		out[u] = true
		stack = append(stack, t.children[u]...)
	}
	return out
}

// DesWith returns Des(v) plus v itself: the full sub-tree dominated by v.
func (t *DomTree) DesWith(v NodeID) Set {
	s := t.Des(v)
	s[v] = true
	return s
}

// Nodes returns the tree's nodes in reverse postorder of the graph.
func (t *DomTree) Nodes() []NodeID { return t.order }
