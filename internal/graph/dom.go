package graph

import "sort"

// DomTree is the dominator tree T(G) of a computation graph (§2.1). Because
// computation graphs have many entry nodes (input, label, and weight
// tensors), the tree is rooted at a virtual entry that dominates them all;
// the virtual root is represented by Invalid.
type DomTree struct {
	// Parent maps each node to its immediate dominator; nodes dominated
	// only by the virtual root map to Invalid.
	Parent map[NodeID]NodeID

	children map[NodeID][]NodeID
	order    []NodeID // reverse postorder, for deterministic iteration
}

// Dominators computes the dominator tree of g using the iterative
// Cooper-Harvey-Kennedy algorithm over reverse postorder.
func Dominators(g *Graph) *DomTree {
	topo := g.Topo() // a reverse postorder of the DAG from the virtual root
	idx := make(map[NodeID]int, len(topo))
	for i, v := range topo {
		idx[v] = i
	}
	const virtual = -2 // internal index sentinel for the virtual root
	idom := make([]int, len(topo))
	for i := range idom {
		idom[i] = -3 // undefined
	}
	intersect := func(a, b int) int {
		for a != b {
			for a > b {
				if idom[a] == virtual {
					return virtual
				}
				a = idom[a]
			}
			for b > a {
				if idom[b] == virtual {
					return virtual
				}
				b = idom[b]
			}
			if a == virtual || b == virtual {
				return virtual
			}
		}
		return a
	}
	changed := true
	for changed {
		changed = false
		for i, v := range topo {
			preds := g.Pre(v)
			newIdom := -3
			if len(preds) == 0 {
				newIdom = virtual
			} else {
				for _, p := range preds {
					pi := idx[p]
					if idom[pi] == -3 {
						continue
					}
					if newIdom == -3 {
						newIdom = pi
					} else {
						newIdom = intersect(newIdom, pi)
					}
				}
				if newIdom == -3 {
					newIdom = virtual
				}
			}
			if idom[i] != newIdom {
				idom[i] = newIdom
				changed = true
			}
		}
	}
	t := &DomTree{
		Parent:   make(map[NodeID]NodeID, len(topo)),
		children: make(map[NodeID][]NodeID),
		order:    topo,
	}
	for i, v := range topo {
		if idom[i] == virtual {
			t.Parent[v] = Invalid
			t.children[Invalid] = append(t.children[Invalid], v)
		} else {
			p := topo[idom[i]]
			t.Parent[v] = p
			t.children[p] = append(t.children[p], v)
		}
	}
	for _, cs := range t.children {
		sort.Slice(cs, func(i, j int) bool { return cs[i] < cs[j] })
	}
	return t
}

// Children returns T.suc(v): the tree children of v (pass Invalid for the
// virtual root).
func (t *DomTree) Children(v NodeID) []NodeID { return t.children[v] }

// Des returns the strict descendants of v in the dominator tree, i.e. all
// nodes dominated by v other than v itself.
func (t *DomTree) Des(v NodeID) Set {
	out := make(Set)
	stack := append([]NodeID(nil), t.children[v]...)
	for len(stack) > 0 {
		u := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if out[u] {
			continue
		}
		out[u] = true
		stack = append(stack, t.children[u]...)
	}
	return out
}

// DesWith returns Des(v) plus v itself: the full sub-tree dominated by v.
func (t *DomTree) DesWith(v NodeID) Set {
	s := t.Des(v)
	s[v] = true
	return s
}

// Nodes returns the tree's nodes in reverse postorder of the graph.
func (t *DomTree) Nodes() []NodeID { return t.order }
