package graph

import (
	"errors"
	"testing"

	"magis/internal/tensor"
)

// shapedOp is an Op that also records its expected input shapes, like
// ops.Spec does, so shape-agreement checks fire in graph-level tests.
type shapedOp struct {
	testOp
	ins []tensor.Shape
}

func (s shapedOp) NumIns() int                { return len(s.ins) }
func (s shapedOp) InShape(i int) tensor.Shape { return s.ins[i] }

func TestValidateAcceptsWellFormed(t *testing.T) {
	g, _ := diamond()
	if err := Validate(g); err != nil {
		t.Fatal(err)
	}
	if err := Validate(New()); err != nil {
		t.Fatalf("empty graph: %v", err)
	}
}

func TestValidateNil(t *testing.T) {
	if err := Validate(nil); !errors.Is(err, ErrInvariant) {
		t.Fatalf("nil graph: %v", err)
	}
}

func TestValidateDetectsCycle(t *testing.T) {
	g, n := diamond()
	// Hand-craft a back edge d -> a (impossible through the public API).
	g.nodes[n[0]].Ins = append(g.nodes[n[0]].Ins, n[3])
	g.suc[n[3]] = append(g.suc[n[3]], n[0])
	if err := Validate(g); !errors.Is(err, ErrInvariant) {
		t.Fatalf("cycle not flagged: %v", err)
	}
}

func TestValidateDetectsDanglingInput(t *testing.T) {
	g, n := diamond()
	g.nodes[n[3]].Ins[0] = NodeID(999)
	if err := Validate(g); !errors.Is(err, ErrInvariant) {
		t.Fatalf("dangling producer not flagged: %v", err)
	}
}

func TestValidateDetectsConsumerListDrift(t *testing.T) {
	g, n := diamond()
	// Consumer list says a->d, input list does not.
	g.suc[n[0]] = append(g.suc[n[0]], n[3])
	if err := Validate(g); !errors.Is(err, ErrInvariant) {
		t.Fatalf("suc/ins drift not flagged: %v", err)
	}
}

func TestValidateDetectsShapeMismatch(t *testing.T) {
	g := New()
	a := g.Add(op("In", 4))
	g.Add(shapedOp{testOp{"B", tensor.S(4)}, []tensor.Shape{tensor.S(4)}}, a)
	if err := Validate(g); err != nil {
		t.Fatalf("matching shapes rejected: %v", err)
	}
	// Producer shape silently changed out from under the consumer.
	g.SetOp(a, op("In", 8))
	if err := Validate(g); !errors.Is(err, ErrInvariant) {
		t.Fatalf("shape mismatch not flagged: %v", err)
	}
}

func TestValidateDetectsArityMismatch(t *testing.T) {
	g := New()
	a := g.Add(op("In", 4))
	b := g.Add(op("In", 4))
	g.Add(shapedOp{testOp{"B", tensor.S(4)}, []tensor.Shape{tensor.S(4)}}, a, b)
	if err := Validate(g); !errors.Is(err, ErrInvariant) {
		t.Fatalf("arity mismatch not flagged: %v", err)
	}
}

func TestValidateStoreLoadPairing(t *testing.T) {
	g := New()
	a := g.Add(op("In", 4))
	st := g.Add(op(kindStore, 4), a)
	ld := g.Add(op(kindLoad, 4), st)
	g.Add(op("B", 4), ld)
	if err := Validate(g); err != nil {
		t.Fatalf("well-formed swap chain rejected: %v", err)
	}

	// A Load consuming a non-Store producer.
	g2 := New()
	a2 := g2.Add(op("In", 4))
	g2.Add(op(kindLoad, 4), a2)
	if err := Validate(g2); !errors.Is(err, ErrInvariant) {
		t.Fatalf("Load without Store not flagged: %v", err)
	}

	// A Store feeding device compute directly.
	g3 := New()
	a3 := g3.Add(op("In", 4))
	st3 := g3.Add(op(kindStore, 4), a3)
	g3.Add(op("B", 4), st3)
	if err := Validate(g3); !errors.Is(err, ErrInvariant) {
		t.Fatalf("Store feeding compute not flagged: %v", err)
	}

	// A Store with no consumers (leaked host tensor).
	g4 := New()
	a4 := g4.Add(op("In", 4))
	g4.Add(op(kindStore, 4), a4)
	if err := Validate(g4); !errors.Is(err, ErrInvariant) {
		t.Fatalf("dangling Store not flagged: %v", err)
	}
}

func TestValidateOpaqueRegionExemptions(t *testing.T) {
	// op("Region") is not InputShaped and declares no output shape —
	// exactly the profile of a collapsed fission region in an evaluation
	// graph. Validate must accept it on either end of a transfer pair,
	// because the matching Store or Load lives among the region's members.

	// A Store feeding a region (the Load is inside the region).
	g := New()
	a := g.Add(op("In", 4))
	st := g.Add(op(kindStore, 4), a)
	g.Add(op("Region"), st)
	if err := Validate(g); err != nil {
		t.Fatalf("Store feeding opaque region rejected: %v", err)
	}

	// A Load consuming a region (the Store is inside the region).
	g2 := New()
	r2 := g2.Add(op("Region"))
	ld2 := g2.Add(op(kindLoad, 4), r2)
	g2.Add(op("B", 4), ld2)
	if err := Validate(g2); err != nil {
		t.Fatalf("Load consuming opaque region rejected: %v", err)
	}

	// A shaped consumer of a region skips the shape check on that edge.
	g3 := New()
	r3 := g3.Add(op("Region"))
	g3.Add(shapedOp{testOp{"B", tensor.S(4)}, []tensor.Shape{tensor.S(4)}}, r3)
	if err := Validate(g3); err != nil {
		t.Fatalf("shaped consumer of opaque region rejected: %v", err)
	}

	// The exemption is narrow: a shaped non-transfer op still cannot
	// consume a Store.
	g4 := New()
	a4 := g4.Add(op("In", 4))
	st4 := g4.Add(op(kindStore, 4), a4)
	g4.Add(op("B", 4), st4)
	if err := Validate(g4); !errors.Is(err, ErrInvariant) {
		t.Fatalf("Store feeding shaped compute not flagged: %v", err)
	}
}
