// Package graph implements the computation-graph IR used throughout MAGIS:
// a directed acyclic multigraph of operators with ordered inputs, plus the
// graph analyses the paper relies on — topological ordering, ancestor and
// descendant sets, induced sub-graphs with their inps/outs boundaries,
// convexity and weak-connectivity tests, dominator trees, narrow-waist
// values, and Weisfeiler-Lehman structural hashing.
//
// The package corresponds to the rustworkx substrate of the original
// implementation (§7.1) but is written from scratch on the Go standard
// library only.
package graph

import (
	"fmt"
	"sort"

	"magis/internal/tensor"
)

// NodeID identifies a node within one Graph. IDs are never reused, so they
// stay stable across clones and transformations of the same lineage.
type NodeID int

// Invalid is the zero-ish sentinel for "no node".
const Invalid NodeID = -1

// Op is the behaviour a node payload must provide. The richer operator
// interfaces (cost, dimension maps, splitting) live in internal/ops and are
// reached by type assertion, keeping this package dependency-free.
type Op interface {
	// Kind is the operator name, e.g. "Matmul".
	Kind() string
	// OutShape is the shape of the single output tensor.
	OutShape() tensor.Shape
	// DType is the element type of the output tensor.
	DType() tensor.DType
	// AttrKey returns a string that, together with Kind and OutShape,
	// uniquely identifies the operator's semantics (used for hashing and
	// de-re-materialization matching).
	AttrKey() string
}

// Node is one operator instance in a Graph.
type Node struct {
	ID   NodeID
	Op   Op
	Ins  []NodeID // ordered producer list; duplicates allowed
	Name string   // optional human label
}

// OutBytes returns the device-memory footprint of the node's output tensor,
// i.e. size(v) in the paper's notation.
func (n *Node) OutBytes() int64 {
	return tensor.Bytes(n.Op.OutShape(), n.Op.DType())
}

// Graph is a mutable DAG of operator nodes.
type Graph struct {
	nodes map[NodeID]*Node
	suc   map[NodeID][]NodeID // consumer lists (with multiplicity)
	next  NodeID
}

// New returns an empty graph.
func New() *Graph {
	return &Graph{
		nodes: make(map[NodeID]*Node),
		suc:   make(map[NodeID][]NodeID),
	}
}

// Len returns the number of nodes.
func (g *Graph) Len() int { return len(g.nodes) }

// Add inserts a new node computing op from the given producers and returns
// its ID. All producers must already exist.
func (g *Graph) Add(op Op, ins ...NodeID) NodeID {
	return g.AddNamed("", op, ins...)
}

// AddNamed is Add with a human-readable label.
func (g *Graph) AddNamed(name string, op Op, ins ...NodeID) NodeID {
	for _, in := range ins {
		if _, ok := g.nodes[in]; !ok {
			panic(fmt.Sprintf("graph: input %d does not exist", in))
		}
	}
	id := g.next
	g.next++
	n := &Node{ID: id, Op: op, Ins: append([]NodeID(nil), ins...), Name: name}
	g.nodes[id] = n
	for _, in := range ins {
		g.suc[in] = append(g.suc[in], id)
	}
	return id
}

// AddWithID inserts a node under a caller-chosen ID, used by snapshot
// restore to rebuild a graph bit-identically (rewrites leave ID gaps that a
// compacting loader would close, changing iteration order downstream). The
// ID must be fresh and non-negative; all producers must already exist.
func (g *Graph) AddWithID(id NodeID, name string, op Op, ins ...NodeID) error {
	if id < 0 {
		return fmt.Errorf("graph: AddWithID: negative id %d", id)
	}
	if _, ok := g.nodes[id]; ok {
		return fmt.Errorf("graph: AddWithID: id %d already exists", id)
	}
	for _, in := range ins {
		if _, ok := g.nodes[in]; !ok {
			return fmt.Errorf("graph: AddWithID: input %d does not exist", in)
		}
	}
	n := &Node{ID: id, Op: op, Ins: append([]NodeID(nil), ins...), Name: name}
	g.nodes[id] = n
	for _, in := range ins {
		g.suc[in] = append(g.suc[in], id)
	}
	if id >= g.next {
		g.next = id + 1
	}
	return nil
}

// NextID returns the ID the next Add will assign. IDs are never reused, so
// this is strictly greater than every ID ever allocated in the lineage.
func (g *Graph) NextID() NodeID { return g.next }

// SetNextID raises the next fresh ID, so a restored graph keeps allocating
// in the same sequence as the snapshotted original even when the highest
// IDs belonged to since-removed nodes. It cannot move backwards past an
// existing node.
func (g *Graph) SetNextID(next NodeID) error {
	for id := range g.nodes {
		if id >= next {
			return fmt.Errorf("graph: SetNextID(%d): node %d already exists", next, id)
		}
	}
	if next > g.next {
		g.next = next
	}
	return nil
}

// Node returns the node with the given ID, or nil if absent.
func (g *Graph) Node(id NodeID) *Node { return g.nodes[id] }

// Has reports whether id is present.
func (g *Graph) Has(id NodeID) bool { _, ok := g.nodes[id]; return ok }

// NodeIDs returns all node IDs in ascending order.
func (g *Graph) NodeIDs() []NodeID {
	ids := make([]NodeID, 0, len(g.nodes))
	for id := range g.nodes {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

// Pre returns the distinct predecessors of v, ascending.
func (g *Graph) Pre(v NodeID) []NodeID {
	n := g.nodes[v]
	if n == nil {
		return nil
	}
	seen := make(map[NodeID]bool, len(n.Ins))
	out := make([]NodeID, 0, len(n.Ins))
	for _, in := range n.Ins {
		if !seen[in] {
			seen[in] = true
			out = append(out, in)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Suc returns the distinct successors of v, ascending.
func (g *Graph) Suc(v NodeID) []NodeID {
	seen := make(map[NodeID]bool)
	out := make([]NodeID, 0, len(g.suc[v]))
	for _, s := range g.suc[v] {
		if !seen[s] {
			seen[s] = true
			out = append(out, s)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// NumConsumers returns the number of distinct consumers of v.
func (g *Graph) NumConsumers(v NodeID) int { return len(g.Suc(v)) }

// SucEdges returns the number of consumer edges of v, with multiplicity.
func (g *Graph) SucEdges(v NodeID) int { return len(g.suc[v]) }

// EachSucEdge calls f for every consumer edge of v, duplicates included —
// the allocation-free alternative to Suc for callers that tolerate
// multiplicity (e.g. max-position scans in the schedule simulators).
func (g *Graph) EachSucEdge(v NodeID, f func(NodeID)) {
	for _, s := range g.suc[v] {
		f(s)
	}
}

// Remove deletes a node that has no consumers. It returns an error if the
// node is still consumed or does not exist.
func (g *Graph) Remove(v NodeID) error {
	n := g.nodes[v]
	if n == nil {
		return fmt.Errorf("graph: node %d does not exist", v)
	}
	if len(g.suc[v]) > 0 {
		return fmt.Errorf("graph: node %d still has %d consumers", v, len(g.suc[v]))
	}
	for _, in := range n.Ins {
		g.suc[in] = removeOne(g.suc[in], v)
	}
	delete(g.nodes, v)
	delete(g.suc, v)
	return nil
}

// RemoveDead removes all nodes unreachable (forward) to any node in keep,
// i.e. nodes whose output no live node transitively consumes. Nodes in keep
// are always retained. It returns the number of removed nodes.
func (g *Graph) RemoveDead(keep []NodeID) int {
	live := make(map[NodeID]bool, len(g.nodes))
	stack := append([]NodeID(nil), keep...)
	for len(stack) > 0 {
		v := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if live[v] || g.nodes[v] == nil {
			continue
		}
		live[v] = true
		stack = append(stack, g.nodes[v].Ins...)
	}
	removed := 0
	// Delete in reverse topological order so Remove's consumer check holds.
	topo := g.Topo()
	for i := len(topo) - 1; i >= 0; i-- {
		v := topo[i]
		if !live[v] {
			if err := g.Remove(v); err == nil {
				removed++
			}
		}
	}
	return removed
}

// ReplaceInput rewires node v so occurrences of producer old become new.
func (g *Graph) ReplaceInput(v, old, new NodeID) {
	n := g.nodes[v]
	if n == nil {
		panic(fmt.Sprintf("graph: node %d does not exist", v))
	}
	changed := 0
	for i, in := range n.Ins {
		if in == old {
			n.Ins[i] = new
			changed++
		}
	}
	for i := 0; i < changed; i++ {
		g.suc[old] = removeOne(g.suc[old], v)
		g.suc[new] = append(g.suc[new], v)
	}
}

// ReplaceInputAt rewires the idx-th input slot of v to new.
func (g *Graph) ReplaceInputAt(v NodeID, idx int, new NodeID) {
	n := g.nodes[v]
	old := n.Ins[idx]
	n.Ins[idx] = new
	g.suc[old] = removeOne(g.suc[old], v)
	g.suc[new] = append(g.suc[new], v)
}

// RedirectConsumers makes every consumer of old consume new instead.
// Consumers listed in except are left alone.
func (g *Graph) RedirectConsumers(old, new NodeID, except ...NodeID) {
	skip := make(map[NodeID]bool, len(except))
	for _, e := range except {
		skip[e] = true
	}
	for _, c := range g.Suc(old) {
		if !skip[c] {
			g.ReplaceInput(c, old, new)
		}
	}
}

// SetOp replaces the operator payload of v in place.
func (g *Graph) SetOp(v NodeID, op Op) { g.nodes[v].Op = op }

// Inputs returns the graph's entry nodes (no predecessors), ascending.
func (g *Graph) Inputs() []NodeID {
	var out []NodeID
	for id, n := range g.nodes {
		if len(n.Ins) == 0 {
			out = append(out, id)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Outputs returns the graph's exit nodes (no successors), ascending.
func (g *Graph) Outputs() []NodeID {
	var out []NodeID
	for id := range g.nodes {
		if len(g.suc[id]) == 0 {
			out = append(out, id)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Topo returns a deterministic topological order (ties broken by ID).
// It panics on a cycle; use TopoE where cycles are an expected outcome.
func (g *Graph) Topo() []NodeID {
	order, err := g.TopoE()
	if err != nil {
		panic(err.Error())
	}
	return order
}

// TopoE returns a deterministic topological order, or an error if the
// graph contains a cycle (which region collapsing can legitimately
// produce and must detect).
func (g *Graph) TopoE() ([]NodeID, error) {
	indeg := make(map[NodeID]int, len(g.nodes))
	for id, n := range g.nodes {
		_ = id
		for _, in := range n.Ins {
			_ = in
		}
	}
	for id := range g.nodes {
		indeg[id] = len(g.Pre(id))
	}
	// Min-heap by ID, implemented with a sorted frontier for determinism.
	var frontier []NodeID
	for id, d := range indeg {
		if d == 0 {
			frontier = append(frontier, id)
		}
	}
	sort.Slice(frontier, func(i, j int) bool { return frontier[i] < frontier[j] })
	order := make([]NodeID, 0, len(g.nodes))
	for len(frontier) > 0 {
		v := frontier[0]
		frontier = frontier[1:]
		order = append(order, v)
		for _, s := range g.Suc(v) {
			indeg[s]--
			if indeg[s] == 0 {
				frontier = insertSorted(frontier, s)
			}
		}
	}
	if len(order) != len(g.nodes) {
		return nil, fmt.Errorf("graph: cycle detected in Topo")
	}
	return order, nil
}

// Clone returns a deep copy of the graph. Node IDs are preserved, so
// schedules and ID sets remain valid across the copy. Op payloads are
// shared (they are immutable by convention).
func (g *Graph) Clone() *Graph {
	c := &Graph{
		nodes: make(map[NodeID]*Node, len(g.nodes)),
		suc:   make(map[NodeID][]NodeID, len(g.suc)),
		next:  g.next,
	}
	for id, n := range g.nodes {
		c.nodes[id] = &Node{
			ID:   n.ID,
			Op:   n.Op,
			Ins:  append([]NodeID(nil), n.Ins...),
			Name: n.Name,
		}
	}
	for id, s := range g.suc {
		if len(s) > 0 {
			c.suc[id] = append([]NodeID(nil), s...)
		}
	}
	return c
}

// String renders a compact multi-line description, topologically ordered.
func (g *Graph) String() string {
	var b []byte
	for _, id := range g.Topo() {
		n := g.nodes[id]
		b = append(b, fmt.Sprintf("%4d %-14s %-18s ins=%v", id, n.Op.Kind(), n.Op.OutShape().String(), n.Ins)...)
		if n.Name != "" {
			b = append(b, ("  # " + n.Name)...)
		}
		b = append(b, '\n')
	}
	return string(b)
}

func removeOne(s []NodeID, v NodeID) []NodeID {
	for i, x := range s {
		if x == v {
			return append(s[:i], s[i+1:]...)
		}
	}
	return s
}

func insertSorted(s []NodeID, v NodeID) []NodeID {
	i := sort.Search(len(s), func(i int) bool { return s[i] >= v })
	s = append(s, 0)
	copy(s[i+1:], s[i:])
	s[i] = v
	return s
}
